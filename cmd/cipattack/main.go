// Command cipattack mounts a membership inference attack against a model
// artifact saved by ciptrain, reporting attack accuracy, precision,
// recall, F1 and AUC. The attacker never uses the artifact's saved
// perturbation: CIP models are queried with the zero perturbation, exactly
// like the paper's external adversary.
//
// Usage:
//
//	cipattack -model model.gob -attack malt
//	cipattack -model model.gob -attack all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/experiments"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cipattack:", err)
		os.Exit(1)
	}
}

func run() error {
	modelPath := flag.String("model", "model.gob", "artifact from ciptrain")
	attackName := flag.String("attack", "malt", "attack: label, malt, nn, blindmi, pbbayes, or all")
	seed := flag.Int64("seed", 7, "random seed")
	shadowEpochs := flag.Int("shadow-epochs", 25, "shadow model training epochs (nn, pbbayes)")
	flag.Parse()

	a, err := experiments.LoadArtifact(*modelPath)
	if err != nil {
		return err
	}
	d, err := a.Data()
	if err != nil {
		return err
	}
	// The attacker's view: for CIP artifacts this queries with zero t.
	net, err := a.Net(false)
	if err != nil {
		return err
	}

	// Standard attack layout: half the train/test sets for the target,
	// half for the attacker's shadow machinery.
	tt, st := d.Train.Split(d.Train.Len() / 2)
	nm, sx := d.Test.Split(d.Test.Len() / 2)
	n := tt.Len()
	if nm.Len() < n {
		n = nm.Len()
	}
	members, _ := tt.Split(n)
	nonMembers, _ := nm.Split(n)

	rng := rand.New(rand.NewSource(*seed))
	var shadow attacks.ShadowBundle
	needShadow := *attackName == "nn" || *attackName == "pbbayes" || *attackName == "all"
	if needShadow {
		build := func() nn.Layer {
			return model.NewClassifier(rand.New(rand.NewSource(*seed+1)), shadowArch(a),
				d.Train.In, d.Train.NumClasses)
		}
		shadow, err = attacks.TrainShadow(build, st, sx, *shadowEpochs, 0.05,
			rand.New(rand.NewSource(*seed+2)))
		if err != nil {
			return err
		}
	}

	runners := map[string]func() attacks.Result{
		"label":   func() attacks.Result { return attacks.ObLabel(net, members, nonMembers) },
		"malt":    func() attacks.Result { return attacks.ObMALT(net, members, nonMembers) },
		"nn":      func() attacks.Result { return attacks.ObNN(net, members, nonMembers, shadow, rng) },
		"blindmi": func() attacks.Result { return attacks.ObBlindMI(net, members, nonMembers, rng) },
		"pbbayes": func() attacks.Result { return attacks.PbBayes(net, members, nonMembers, shadow, rng) },
	}
	names := []string{*attackName}
	if *attackName == "all" {
		names = []string{"label", "malt", "nn", "blindmi", "pbbayes"}
	}
	for _, name := range names {
		r, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown attack %q (want %s)", name,
				strings.Join([]string{"label", "malt", "nn", "blindmi", "pbbayes", "all"}, ", "))
		}
		res := r()
		fmt.Printf("%-8s %s\n", name, res)
	}
	return nil
}

func shadowArch(a *experiments.Artifact) model.Arch {
	if a.Preset == datasets.Purchase50 {
		return model.MLP
	}
	return model.VGG
}
