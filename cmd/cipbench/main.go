// Command cipbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cipbench -exp fig4 [-preset quick|full] [-seed 1]
//	cipbench -exp all
//	cipbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/experiments"
	"github.com/cip-fl/cip/internal/flcli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cipbench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	preset := flag.String("preset", "quick", "scale: quick or full")
	seed := flag.Int64("seed", 1, "base random seed")
	repeat := flag.Int("repeat", 1, "run each experiment N times and report mean±std")
	cacheDir := flag.String("cache-dir", "",
		"persist each completed (experiment, scale, seed) cell here and reuse it on rerun, "+
			"so an interrupted sweep resumes from the finished cells; empty disables caching")
	list := flag.Bool("list", false, "list experiment ids and exit")
	benchFilter := flag.String("bench", "",
		"run tracked perf workloads ('|'-separated substring match, 'all' for every one) and emit a BENCH json report")
	benchOut := flag.String("bench-out", "", "write the bench report to this file (default stdout)")
	baseline := flag.String("baseline", "",
		"previous bench report whose numbers become each op's 'before'")
	benchNote := flag.String("bench-note", "", "free-form note embedded in the bench report")
	wireGateFlag := flag.Bool("wire-gate", false,
		"enforce the wire-path lines on the bench run: ≥10x byte reduction for topk8 vs gob "+
			"and binary decode no slower than gob")
	scaleGateFlag := flag.Bool("scale-gate", false,
		"run the 10k-client streaming-vs-buffered load pair and fail unless the streaming "+
			"fold's peak heap is ≥5x below the buffered baseline's")
	treeGateFlag := flag.Bool("tree-gate", false,
		"run the aggregation-tree gate: depth-2 robust sketch error within the documented "+
			"DKW envelope (bit-exact below capacity) and depth-3 tree p99 round latency "+
			"within 5x the flat federation's; emits a BENCH json report")
	precisionGateFlag := flag.Bool("precision-gate", false,
		"enforce the float32 tier's lines on the bench run: MatMul256-f32 ≥2x faster than "+
			"MatMul256, the f32 federation sweep faster than f64, and Fig. 4 quick accuracy "+
			"within tolerance across precisions")
	precisionFlag := flcli.RegisterPrecisionFlag()
	flag.Parse()

	if _, err := flcli.ApplyPrecisionFlag(*precisionFlag); err != nil {
		return err
	}

	if *scaleGateFlag {
		if err := runScaleGate(); err != nil {
			return err
		}
		if *benchFilter == "" && !*treeGateFlag {
			return nil
		}
	}
	if *treeGateFlag {
		if err := runTreeGate(*benchOut, *benchNote); err != nil {
			return err
		}
		if *benchFilter == "" {
			return nil
		}
	}
	if *benchFilter != "" {
		return runBench(*benchFilter, *baseline, *benchOut, *benchNote, *wireGateFlag, *precisionGateFlag)
	}

	if *list || *exp == "" {
		fmt.Println("experiments (DESIGN.md §4 maps each to its paper artifact):")
		for _, id := range experiments.IDs() {
			fmt.Println("  " + id)
		}
		return nil
	}

	scale := datasets.Quick
	switch *preset {
	case "quick":
	case "full":
		scale = datasets.Full
	default:
		return fmt.Errorf("unknown preset %q (want quick or full)", *preset)
	}
	cfg := experiments.Config{Scale: scale, Seed: *seed}

	var store *experiments.Store // nil disables cell caching
	if *cacheDir != "" {
		store = &experiments.Store{Dir: *cacheDir}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		var (
			t   *experiments.Table
			err error
		)
		switch {
		case *repeat > 1 && store != nil:
			t, err = store.Repeat(id, cfg, *repeat)
		case *repeat > 1:
			t, err = experiments.Repeat(id, cfg, *repeat)
		case store != nil:
			t, err = store.Run(id, cfg)
		default:
			t, err = experiments.Run(id, cfg)
		}
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
