package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"github.com/cip-fl/cip/internal/bench"
	"github.com/cip-fl/cip/internal/tensor"
)

// The perf-regression harness behind `make bench`: runs the tracked
// workloads from internal/bench via testing.Benchmark and emits a
// BENCH_*.json report. A previous report passed with -baseline becomes each
// op's "before", so successive perf PRs chain their measurements.

// benchNumbers are one measurement's regression-tracked quantities.
type benchNumbers struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GFLOPS      float64 `json:"gflops,omitempty"`
	// WireBytesPerOp is the per-update transfer size the wire workloads
	// report (b.ReportMetric "wire-bytes/op"); 0 for non-wire workloads.
	WireBytesPerOp float64 `json:"wire_bytes_per_op,omitempty"`
}

// benchResult is one workload's entry in the report.
type benchResult struct {
	Op string `json:"op"`
	benchNumbers
	Before  *benchNumbers `json:"before,omitempty"`
	Speedup float64       `json:"speedup,omitempty"`
}

// benchReport is the BENCH_*.json schema. A report is a valid -baseline
// input for the next one. The host block records what actually produced
// the numbers — architecture, CPU count, and the SIMD features the active
// micro-kernels dispatched to — so cross-machine comparisons are explicit
// rather than accidental.
type benchReport struct {
	Note        string        `json:"note,omitempty"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	GoArch      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	CPUFeatures []string      `json:"cpu_features,omitempty"`
	FMAKernel   bool          `json:"fma_kernel"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

func loadBaseline(path string) (map[string]benchNumbers, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	out := make(map[string]benchNumbers, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Op] = b.benchNumbers
	}
	return out, nil
}

// wireGate enforces the wire-path regression lines on a finished report:
// the headline compressed mode must move ≥10x fewer bytes per update than
// the gob baseline, and the binary decoder must be no slower than gob's.
func wireGate(rep *benchReport) error {
	byOp := make(map[string]benchNumbers, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byOp[b.Op] = b.benchNumbers
	}
	gob, okG := byOp["WireGobDecode"]
	bin, okB := byOp["WireBinaryDecode"]
	topk8, okT := byOp["WireTopK8Decode"]
	if !okG || !okB || !okT {
		return fmt.Errorf("wire gate needs WireGobDecode, WireBinaryDecode, and WireTopK8Decode in the run (filter too narrow?)")
	}
	if topk8.WireBytesPerOp <= 0 || gob.WireBytesPerOp <= 0 {
		return fmt.Errorf("wire gate: missing wire-bytes/op metrics")
	}
	ratio := gob.WireBytesPerOp / topk8.WireBytesPerOp
	if ratio < 10 {
		return fmt.Errorf("wire gate: topk8 moves %.0f B/update vs gob's %.0f — %.1fx reduction, need ≥10x",
			topk8.WireBytesPerOp, gob.WireBytesPerOp, ratio)
	}
	if bin.NsPerOp > gob.NsPerOp {
		return fmt.Errorf("wire gate: binary decode %.0f ns/op is slower than gob's %.0f ns/op",
			bin.NsPerOp, gob.NsPerOp)
	}
	fmt.Fprintf(os.Stderr, "wire gate: %.1fx byte reduction (topk8 vs gob), binary decode %.2fx faster than gob\n",
		ratio, gob.NsPerOp/bin.NsPerOp)
	return nil
}

// fig4AccuracyTolerance bounds |acc_f64 - acc_f32| on the quick Fig. 4
// federation. The quick-scale run lands around 0.3 accuracy; float32
// rounding perturbs individual SGD trajectories, so the two precisions
// are compared as experiments, not bit patterns.
const fig4AccuracyTolerance = 0.05

// precisionGate enforces the float32 compute tier's regression lines on a
// finished report: the headline f32 GEMM must run ≥2x faster than the f64
// one (the 8-lane kernel doubles FLOPs per register over the 4-lane f64
// kernel, so anything under 2x means the kernel lost its shape), the f32
// federation sweep must be faster than the f64 sweep, and a fresh
// accuracy-parity run must land both precisions within tolerance on the
// quick Fig. 4 federation.
func precisionGate(rep *benchReport) error {
	byOp := make(map[string]benchNumbers, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byOp[b.Op] = b.benchNumbers
	}
	mm64, ok64 := byOp["MatMul256"]
	mm32, ok32 := byOp["MatMul256-f32"]
	if !ok64 || !ok32 {
		return fmt.Errorf("precision gate needs MatMul256 and MatMul256-f32 in the run (filter too narrow?)")
	}
	if mm32.NsPerOp <= 0 {
		return fmt.Errorf("precision gate: MatMul256-f32 reported no time")
	}
	ratio := mm64.NsPerOp / mm32.NsPerOp
	if ratio < 2 {
		return fmt.Errorf("precision gate: MatMul256-f32 is only %.2fx faster than MatMul256, need ≥2x", ratio)
	}
	fmt.Fprintf(os.Stderr, "precision gate: MatMul256 f32 %.2fx faster than f64 (%.2f vs %.2f GFLOP/s)\n",
		ratio, 2*256*256*256/mm32.NsPerOp, 2*256*256*256/mm64.NsPerOp)
	sweep64, okS64 := byOp["Fig4ClientsSweep"]
	sweep32, okS32 := byOp["Fig4ClientsSweep-f32"]
	if !okS64 || !okS32 {
		return fmt.Errorf("precision gate needs Fig4ClientsSweep and Fig4ClientsSweep-f32 in the run")
	}
	if sweep32.NsPerOp >= sweep64.NsPerOp {
		return fmt.Errorf("precision gate: f32 federation sweep (%.0f ns/op) is not faster than f64's (%.0f ns/op)",
			sweep32.NsPerOp, sweep64.NsPerOp)
	}
	fmt.Fprintf(os.Stderr, "precision gate: Fig4ClientsSweep f32 %.2fx faster than f64\n",
		sweep64.NsPerOp/sweep32.NsPerOp)

	fmt.Fprintln(os.Stderr, "precision gate: training quick Fig. 4 federation at both precisions...")
	acc64, acc32, err := bench.Fig4AccuracyParity()
	if err != nil {
		return fmt.Errorf("precision gate: %w", err)
	}
	if diff := math.Abs(acc64 - acc32); diff > fig4AccuracyTolerance {
		return fmt.Errorf("precision gate: Fig. 4 accuracy diverges across precisions: f64 %.4f vs f32 %.4f (|Δ|=%.4f > %.2f)",
			acc64, acc32, diff, fig4AccuracyTolerance)
	}
	fmt.Fprintf(os.Stderr, "precision gate: Fig. 4 accuracy f64 %.4f, f32 %.4f (|Δ| ≤ %.2f)\n",
		acc64, acc32, fig4AccuracyTolerance)
	return nil
}

// runScaleGate is the coordinator-memory regression line: at 10k clients
// the streaming fold's peak heap footprint must be ≥5x below the
// buffered baseline's, or the O(roster × params) materialization has
// crept back in.
func runScaleGate() error {
	const clients, dim, rounds = 10_000, 32_768, 2
	fmt.Fprintf(os.Stderr, "scale gate: %d clients × %d params, streaming fold vs buffered baseline...\n",
		clients, dim)
	streaming, buffered, ratio, err := bench.ScaleGate(clients, dim, rounds)
	if err != nil {
		return fmt.Errorf("scale gate: %w", err)
	}
	fmt.Fprintf(os.Stderr, "scale gate: streaming peak heap %.1f MiB, buffered %.1f MiB\n",
		float64(streaming.PeakHeapBytes)/(1<<20), float64(buffered.PeakHeapBytes)/(1<<20))
	if ratio < 5 {
		return fmt.Errorf("scale gate: buffered peak heap is only %.1fx the streaming fold's, need ≥5x", ratio)
	}
	fmt.Fprintf(os.Stderr, "scale gate: %.1fx peak-heap reduction (need ≥5x)\n", ratio)
	return nil
}

// runTreeGate is the aggregation-tree regression line: the depth-2
// robust sketch merge must be bit-exact below the reservoir capacity and
// inside the documented DKW quantile envelope above it, and a depth-3
// tree at load must keep p99 round latency within 5x the flat
// federation's. The measurements land in a BENCH json report.
func runTreeGate(outPath, note string) error {
	fmt.Fprintln(os.Stderr, "tree gate: depth-2 sketch error vs DKW envelope, then flat vs depth-3 latency pair...")
	rep, err := bench.TreeGate(true)
	if err != nil {
		return err
	}
	rep.Note = note
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	for _, g := range rep.Rules {
		fmt.Fprintf(os.Stderr, "tree gate: %-8s %d rows via cap-%d reservoirs: max err %.4f ≤ bound %.4f\n",
			g.Rule, g.Rows, g.SketchCap, g.MaxAbsErr, g.MaxBound)
	}
	fmt.Fprintf(os.Stderr, "tree gate: flat p99 %.1fms, depth-3 tree p99 %.1fms (limit 5x+50ms)\n",
		rep.Flat.P99RoundMs, rep.Tree.P99RoundMs)
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(outPath, raw, 0o644)
}

// matchesFilter reports whether a benchmark name passes the -bench
// filter: "all" passes everything, otherwise the filter is a
// '|'-separated list of substrings and any one match suffices.
func matchesFilter(name, filter string) bool {
	if filter == "all" {
		return true
	}
	for _, part := range strings.Split(filter, "|") {
		if strings.Contains(name, part) {
			return true
		}
	}
	return false
}

func runBench(filter, baselinePath, outPath, note string, gate, precGate bool) error {
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	rep := benchReport{
		Note:        note,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		CPUFeatures: tensor.KernelFeatures(),
		FMAKernel:   tensor.HasFMAKernel(),
	}
	for _, s := range bench.Specs() {
		if !matchesFilter(s.Name, filter) {
			continue
		}
		r := testing.Benchmark(s.Fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed to run", s.Name)
		}
		res := benchResult{Op: s.Name, benchNumbers: benchNumbers{
			NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
			WireBytesPerOp: r.Extra["wire-bytes/op"],
		}}
		if s.FLOPs > 0 && res.NsPerOp > 0 {
			res.GFLOPS = s.FLOPs / res.NsPerOp // FLOP/ns == GFLOP/s
		}
		if b, ok := base[s.Name]; ok {
			before := b
			res.Before = &before
			if res.NsPerOp > 0 {
				res.Speedup = before.NsPerOp / res.NsPerOp
			}
		}
		line := fmt.Sprintf("%-22s %12.0f ns/op %8d B/op %5d allocs/op",
			s.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if res.GFLOPS > 0 {
			line += fmt.Sprintf("  %6.2f GFLOP/s", res.GFLOPS)
		}
		if res.WireBytesPerOp > 0 {
			line += fmt.Sprintf("  %10.0f wire-B/op", res.WireBytesPerOp)
		}
		if res.Speedup > 0 {
			line += fmt.Sprintf("  %5.2fx vs baseline", res.Speedup)
		}
		fmt.Fprintln(os.Stderr, line)
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no tracked benchmark matches %q", filter)
	}
	if gate {
		if err := wireGate(&rep); err != nil {
			return err
		}
	}
	if precGate {
		if err := precisionGate(&rep); err != nil {
			return err
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}
