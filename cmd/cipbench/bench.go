package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"github.com/cip-fl/cip/internal/bench"
	"github.com/cip-fl/cip/internal/tensor"
)

// The perf-regression harness behind `make bench`: runs the tracked
// workloads from internal/bench via testing.Benchmark and emits a
// BENCH_*.json report. A previous report passed with -baseline becomes each
// op's "before", so successive perf PRs chain their measurements.

// benchNumbers are one measurement's regression-tracked quantities.
type benchNumbers struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GFLOPS      float64 `json:"gflops,omitempty"`
}

// benchResult is one workload's entry in the report.
type benchResult struct {
	Op      string        `json:"op"`
	benchNumbers
	Before  *benchNumbers `json:"before,omitempty"`
	Speedup float64       `json:"speedup,omitempty"`
}

// benchReport is the BENCH_*.json schema. A report is a valid -baseline
// input for the next one.
type benchReport struct {
	Note       string        `json:"note,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs"`
	FMAKernel  bool          `json:"fma_kernel"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func loadBaseline(path string) (map[string]benchNumbers, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	out := make(map[string]benchNumbers, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Op] = b.benchNumbers
	}
	return out, nil
}

func runBench(filter, baselinePath, outPath, note string) error {
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	rep := benchReport{
		Note:       note,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FMAKernel:  tensor.HasFMAKernel(),
	}
	for _, s := range bench.Specs() {
		if filter != "all" && !strings.Contains(s.Name, filter) {
			continue
		}
		r := testing.Benchmark(s.Fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed to run", s.Name)
		}
		res := benchResult{Op: s.Name, benchNumbers: benchNumbers{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}}
		if s.FLOPs > 0 && res.NsPerOp > 0 {
			res.GFLOPS = s.FLOPs / res.NsPerOp // FLOP/ns == GFLOP/s
		}
		if b, ok := base[s.Name]; ok {
			before := b
			res.Before = &before
			if res.NsPerOp > 0 {
				res.Speedup = before.NsPerOp / res.NsPerOp
			}
		}
		line := fmt.Sprintf("%-22s %12.0f ns/op %8d B/op %5d allocs/op",
			s.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if res.GFLOPS > 0 {
			line += fmt.Sprintf("  %6.2f GFLOP/s", res.GFLOPS)
		}
		if res.Speedup > 0 {
			line += fmt.Sprintf("  %5.2fx vs baseline", res.Speedup)
		}
		fmt.Fprintln(os.Stderr, line)
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no tracked benchmark matches %q", filter)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}
