// Command flclient joins a multi-process CIP federation coordinated by
// cmd/flserver. It loads its shard of the dataset (shard -id of -of),
// initializes its secret perturbation, and participates until the server
// signals completion. The perturbation never leaves the process.
//
//	flclient -addr localhost:9000 -id 0 -of 2 -dataset chmnist -alpha 0.9
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/transport"
	"github.com/cip-fl/cip/internal/flcli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flclient:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:9000", "server address")
	id := flag.Int("id", 0, "this client's index")
	of := flag.Int("of", 2, "total number of clients")
	dataset := flag.String("dataset", "chmnist", "preset (must match the server)")
	scaleName := flag.String("preset", "quick", "scale: quick or full (must match the server)")
	seed := flag.Int64("seed", 1, "seed (must match the server)")
	alpha := flag.Float64("alpha", 0.9, "CIP blending parameter")
	lambdaM := flag.Float64("lambda-m", 0.3, "Eq. 4 original-loss weight")
	dialRetries := flag.Int("dial-retries", 10,
		"connection attempts before giving up (exponential backoff + jitter)")
	retryBase := flag.Duration("retry-base", 200*time.Millisecond,
		"initial backoff delay between connection attempts")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /debug/vars, and /debug/pprof on this address; empty disables telemetry")
	codecFlag := flcli.RegisterCodecFlag()
	compressFlags := flcli.RegisterCompressFlags()
	flag.Parse()

	if *id < 0 || *id >= *of {
		return fmt.Errorf("id %d out of range for %d clients", *id, *of)
	}
	codec, err := flcli.ParseCodec(*codecFlag)
	if err != nil {
		return err
	}
	ccfg, err := compressFlags.Config()
	if err != nil {
		return err
	}
	p, scale, err := flcli.ParseDataset(*dataset, *scaleName)
	if err != nil {
		return err
	}
	d, err := datasets.Load(p, scale, *seed)
	if err != nil {
		return err
	}
	// Every process derives the same partition from the shared seed and
	// takes its own shard.
	shards := datasets.PartitionIID(d.Train, *of, rand.New(rand.NewSource(*seed)))
	shard := shards[*id]

	reg, stopTelemetry, err := flcli.StartTelemetry(*metricsAddr)
	if err != nil {
		return err
	}
	defer stopTelemetry()

	arch := flcli.ArchFor(p)
	dual := core.NewDualChannelModel(rand.New(rand.NewSource(*seed+1)), arch,
		d.Train.In, d.Train.NumClasses)
	cfg := core.TrainConfig{
		Alpha:     *alpha,
		LambdaT:   1e-6,
		LambdaM:   *lambdaM,
		PerturbLR: 0.02,
		BatchSize: 16,
		LR:        fl.DecaySchedule(0.04, 40),
		Momentum:  0.9,
		Metrics:   core.NewMetrics(reg),
	}
	// Stateful construction keeps the client resumable: if the server
	// restarts from a snapshot mid-federation, this client rolls its local
	// state back to the server's resume round and continues.
	client := core.NewStatefulClient(*id, dual, shard, cfg, core.BlendSeed(*seed, *id),
		*seed+int64(100+*id))

	fmt.Printf("client %d/%d joining %s (%d local samples, alpha=%g)\n",
		*id, *of, *addr, shard.Len(), *alpha)
	retry := transport.RetryConfig{
		MaxAttempts: *dialRetries,
		BaseDelay:   *retryBase,
		Rng:         rand.New(rand.NewSource(*seed + int64(1000+*id))),
		Stop:        flcli.ShutdownSignal(),
		Metrics:     transport.NewMetrics(reg),
		Codec:       codec,
	}
	if ccfg.Mode != compress.None {
		// The offer travels in canonical form; setting Compress implies
		// the binary-codec offer even without -codec.
		retry.Compress = ccfg.Mode.String()
		retry.TopKFrac = ccfg.TopKFrac
		fmt.Printf("offering %s update compression (top-k frac %g)\n", ccfg.Mode, ccfg.TopKFrac)
	}
	if err := transport.RunClientRetry(*addr, client, retry); err != nil {
		if errors.Is(err, transport.ErrClientStopped) {
			fmt.Println("stopped")
			return nil
		}
		return err
	}
	fmt.Printf("done; local test accuracy with own t: %.3f\n",
		fl.Evaluate(client.Model(), d.Test, 64))
	return nil
}
