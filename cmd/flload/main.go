// Command flload is the million-client-scale load generator: it hosts a
// coordinator and 10⁵+ lightweight in-process clients over in-memory
// pipes (no sockets, no per-connection file descriptors) and reports
// round throughput, tail latency, and memory into a BENCH json file.
//
// Three phases, each skippable:
//
//	flat — one streaming-fold coordinator over the full roster
//	tree — the same roster sharded across -leaves leaf aggregators
//	       forwarding weighted partials to a root
//	gate — a streaming-vs-buffered pair at -gate-clients, measuring the
//	       peak-heap reduction the streaming fold buys
//
// Usage:
//
//	flload -out BENCH_PR8.json
//	flload -clients 100000 -dim 1024 -rounds 5 -phases flat,gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/cip-fl/cip/internal/bench"
	"github.com/cip-fl/cip/internal/flcli"
)

type loadReport struct {
	Note       string `json:"note,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Flat and Tree are the full-roster streaming runs; GateStreaming and
	// GateBuffered are the paired memory comparison at the gate size.
	Flat              *bench.ScaleResult `json:"flat,omitempty"`
	Tree              *bench.ScaleResult `json:"tree,omitempty"`
	GateStreaming     *bench.ScaleResult `json:"gate_streaming,omitempty"`
	GateBuffered      *bench.ScaleResult `json:"gate_buffered,omitempty"`
	GateHeapReduction float64            `json:"gate_heap_reduction,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flload:", err)
		os.Exit(1)
	}
}

func describe(tag string, r *bench.ScaleResult) {
	fmt.Fprintf(os.Stderr,
		"%-14s %7d clients × %5d params, %d rounds: %6.2f rounds/s, p50 %7.1f ms, p99 %7.1f ms, peak heap %6.1f MiB, rss hwm %6.1f MiB\n",
		tag, r.Clients, r.Dim, r.Rounds, r.RoundsPerSec, r.P50RoundMs, r.P99RoundMs,
		float64(r.PeakHeapBytes)/(1<<20), float64(r.PeakRSSBytes)/(1<<20))
}

func run() error {
	clients := flag.Int("clients", 100000, "roster size of the flat and tree phases")
	dim := flag.Int("dim", 1024, "parameter-vector length (one dense update is 8·dim bytes)")
	rounds := flag.Int("rounds", 5, "communication rounds per phase")
	leavesN := flag.Int("leaves", 4, "leaf aggregators in the tree phase")
	interiorsN := flag.Int("interiors", 0,
		"interior aggregators between root and leaves in the tree phase (0 = depth-2 tree)")
	window := flag.Int("window", 0, "streaming admission window (0 keeps the transport default)")
	readBuf := flag.Int("readbuf", 256, "per-connection read-buffer bytes (0 keeps bufio's 4 KiB)")
	gateClients := flag.Int("gate-clients", 10000, "roster size of the gate phase")
	gateDim := flag.Int("gate-dim", 32768, "parameter-vector length of the gate phase")
	gateRounds := flag.Int("gate-rounds", 2, "rounds per gate run")
	phases := flag.String("phases", "flat,tree,gate", "comma-separated phases to run")
	out := flag.String("out", "", "write the json report here (default stdout)")
	note := flag.String("note", "", "free-form note embedded in the report")
	treeFlags := flcli.RegisterTreePolicyFlags()
	flag.Parse()

	if err := treeFlags.Validate("flat"); err != nil {
		return err
	}

	want := map[string]bool{}
	for _, p := range strings.Split(*phases, ",") {
		switch p = strings.TrimSpace(p); p {
		case "flat", "tree", "gate":
			want[p] = true
		case "":
		default:
			return fmt.Errorf("unknown phase %q (want flat, tree, gate)", p)
		}
	}

	rep := loadReport{Note: *note, GoMaxProcs: runtime.GOMAXPROCS(0)}
	var err error
	if want["flat"] {
		cfg := bench.ScaleConfig{Clients: *clients, Dim: *dim, Rounds: *rounds,
			Window: *window, ReadBuf: *readBuf}
		if rep.Flat, err = bench.RunScaleLoad(cfg); err != nil {
			return fmt.Errorf("flat phase: %w", err)
		}
		describe("flat", rep.Flat)
	}
	if want["tree"] {
		cfg := bench.ScaleConfig{Clients: *clients, Dim: *dim, Rounds: *rounds,
			Window: *window, ReadBuf: *readBuf, Leaves: *leavesN, Interiors: *interiorsN,
			SubtreeQuorum: *treeFlags.SubtreeQuorum, CoverageFloor: *treeFlags.CoverageFloor}
		if rep.Tree, err = bench.RunScaleLoad(cfg); err != nil {
			return fmt.Errorf("tree phase: %w", err)
		}
		tag := fmt.Sprintf("tree(%d)", *leavesN)
		if *interiorsN > 0 {
			tag = fmt.Sprintf("tree(%d/%d)", *interiorsN, *leavesN)
		}
		describe(tag, rep.Tree)
	}
	if want["gate"] {
		rep.GateStreaming, rep.GateBuffered, rep.GateHeapReduction, err =
			bench.ScaleGate(*gateClients, *gateDim, *gateRounds)
		if err != nil {
			return fmt.Errorf("gate phase: %w", err)
		}
		describe("gate:stream", rep.GateStreaming)
		describe("gate:buffered", rep.GateBuffered)
		fmt.Fprintf(os.Stderr, "gate: buffered peak heap is %.1fx the streaming fold's\n",
			rep.GateHeapReduction)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(*out, raw, 0o644)
}
