// Command ciptrain trains a federated model — CIP-defended or the
// undefended legacy baseline — on one of the benchmark presets and saves
// the resulting global model as an artifact cipattack can target.
//
// Usage:
//
//	ciptrain -dataset cifar100 -clients 2 -rounds 25 -alpha 0.9 -out model.gob
//	ciptrain -dataset chmnist -alpha 0 -out legacy.gob   # no defense
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/experiments"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/flcli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ciptrain:", err)
		os.Exit(1)
	}
}

func parsePreset(name string) (datasets.Preset, error) {
	switch strings.ToLower(name) {
	case "cifar100", "cifar-100":
		return datasets.CIFAR100, nil
	case "cifaraug", "cifar-aug":
		return datasets.CIFARAUG, nil
	case "chmnist", "ch-mnist":
		return datasets.CHMNIST, nil
	case "purchase50", "purchase-50":
		return datasets.Purchase50, nil
	default:
		return 0, fmt.Errorf("unknown dataset %q (want cifar100, cifaraug, chmnist, purchase50)", name)
	}
}

func run() error {
	dataset := flag.String("dataset", "cifar100", "preset: cifar100, cifaraug, chmnist, purchase50")
	clients := flag.Int("clients", 1, "number of FL clients")
	rounds := flag.Int("rounds", 25, "communication rounds")
	alpha := flag.Float64("alpha", 0.9, "CIP blending parameter; 0 trains the undefended baseline")
	seed := flag.Int64("seed", 1, "random seed")
	scaleName := flag.String("preset", "quick", "scale: quick or full")
	out := flag.String("out", "model.gob", "artifact output path")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /debug/vars, and /debug/pprof on this address; empty disables telemetry")
	ckptPath := flag.String("checkpoint", "",
		"write durable training snapshots here; empty disables checkpointing")
	ckptEvery := flag.Int("checkpoint-every", 1, "snapshot cadence in rounds")
	resume := flag.Bool("resume", false,
		"resume from the snapshot at -checkpoint (fresh start if none exists)")
	quorum := flag.Int("quorum", 0,
		"minimum valid updates per round; >0 enables quorum-based partial aggregation")
	robustFlags := flcli.RegisterRobustFlags()
	compressFlags := flcli.RegisterCompressFlags()
	sampleFlags := flcli.RegisterSampleFlags()
	precisionFlag := flcli.RegisterPrecisionFlag()
	flag.Parse()

	p, err := parsePreset(*dataset)
	if err != nil {
		return err
	}
	prec, err := flcli.ApplyPrecisionFlag(*precisionFlag)
	if err != nil {
		return err
	}
	if err := sampleFlags.Validate(); err != nil {
		return err
	}
	scale := datasets.Quick
	if *scaleName == "full" {
		scale = datasets.Full
	}

	reg, stopTelemetry, err := flcli.StartTelemetry(*metricsAddr)
	if err != nil {
		return err
	}
	defer stopTelemetry()

	fmt.Printf("training %s on %s (%s): %d clients, %d rounds, alpha=%g, precision=%s\n",
		map[bool]string{true: "CIP", false: "legacy (no defense)"}[*alpha > 0],
		p, scale, *clients, *rounds, *alpha, prec)

	var spec *experiments.CheckpointSpec
	if *ckptPath != "" {
		spec = &experiments.CheckpointSpec{
			Path:    *ckptPath,
			Every:   *ckptEvery,
			Resume:  *resume,
			Stop:    flcli.ShutdownSignal(),
			Metrics: checkpoint.NewMetrics(reg),
		}
	}
	robustAgg, reputation, err := robustFlags.Build(0)
	if err != nil {
		return err
	}
	bank, err := compressFlags.Bank()
	if err != nil {
		return err
	}
	var policy *fl.RoundPolicy
	if robustAgg != nil || reputation != nil || *quorum > 0 || bank != nil || *sampleFlags.Frac > 0 {
		policy = &fl.RoundPolicy{MinQuorum: *quorum, Robust: robustAgg, Reputation: reputation,
			Compress: bank, SampleFraction: *sampleFlags.Frac}
		if *sampleFlags.Frac > 0 && *sampleFlags.Frac < 1 {
			fmt.Printf("client sampling: %.0f%% of the roster per round\n", 100**sampleFlags.Frac)
		}
		if robustAgg != nil {
			fmt.Printf("robust aggregation: %s\n", robustAgg.Name())
		}
		if bank != nil {
			fmt.Printf("update compression: %s (error-feedback residuals ride the checkpoint)\n",
				bank.Cfg.Mode)
		}
	}
	a, err := experiments.TrainArtifactDurable(p, scale, *seed, *clients, *rounds, *alpha, reg, spec, policy)
	if errors.Is(err, fl.ErrStopped) {
		fmt.Printf("stopped at a round boundary; snapshot saved to %s — rerun with -resume to continue\n",
			*ckptPath)
		return nil
	}
	if err != nil {
		return err
	}
	d, err := a.Data()
	if err != nil {
		return err
	}
	net, err := a.Net(true)
	if err != nil {
		return err
	}
	fmt.Printf("train accuracy: %.3f\n", fl.Evaluate(net, d.Train, 64))
	fmt.Printf("test accuracy:  %.3f\n", fl.Evaluate(net, d.Test, 64))
	if err := a.Save(*out); err != nil {
		return err
	}
	fmt.Printf("saved artifact to %s\n", *out)
	return nil
}
