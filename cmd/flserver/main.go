// Command flserver runs the FedAvg coordination server of a multi-process
// CIP federation over TCP: it waits for -clients connections, runs -rounds
// communication rounds, and writes the final global model artifact.
// Clients connect with cmd/flclient.
//
// Usage (three terminals):
//
//	flserver -addr :9000 -clients 2 -rounds 20 -dataset chmnist -out global.gob
//	flclient -addr localhost:9000 -id 0 -of 2 -dataset chmnist -alpha 0.9
//	flclient -addr localhost:9000 -id 1 -of 2 -dataset chmnist -alpha 0.9
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/transport"
	"github.com/cip-fl/cip/internal/flcli"
	"github.com/cip-fl/cip/internal/nn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":9000", "listen address")
	clients := flag.Int("clients", 2, "number of clients to wait for")
	rounds := flag.Int("rounds", 20, "communication rounds")
	dataset := flag.String("dataset", "chmnist", "preset (determines the model shape)")
	scaleName := flag.String("preset", "quick", "scale: quick or full")
	seed := flag.Int64("seed", 1, "model-initialization seed (must match clients)")
	out := flag.String("out", "global.gob", "write the final global parameters here")
	quorum := flag.Int("quorum", 0,
		"minimum clients per round; >0 enables fault-tolerant partial aggregation, 0 is fail-stop")
	roundTimeout := flag.Duration("round-timeout", 0,
		"per-round client deadline (send+train+receive); 0 disables deadlines")
	acceptWindow := flag.Duration("accept-window", 0,
		"how long to wait for the full roster before starting with ≥quorum clients; 0 waits forever")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /debug/vars, and /debug/pprof on this address; empty disables telemetry")
	ckptPath := flag.String("checkpoint", "",
		"write durable federation snapshots here; empty disables checkpointing")
	ckptEvery := flag.Int("checkpoint-every", 1, "snapshot cadence in rounds")
	resume := flag.Bool("resume", false,
		"resume from the snapshot at -checkpoint (fresh start if none exists)")
	maxUpdateNorm := flag.Float64("max-update-norm", 0,
		"reject client updates whose L2 norm exceeds this; 0 disables the bound")
	role := flag.String("role", "flat",
		"topology role: flat (own the whole client roster), leaf (aggregate a client shard and "+
			"forward one weighted partial per round to -parent), interior (aggregate partials "+
			"from child nodes and forward one partial to -parent), or root (accept one partial "+
			"per child and own the global model)")
	rootAddr := flag.String("root", "", "legacy alias for -parent (with -role leaf)")
	leafID := flag.Int("leaf-id", 0, "this node's ID in its parent's roster (with -role leaf or interior)")
	leaves := flag.Int("leaves", 0, "child roster size (with -role root or interior; 0 means -clients)")
	robustFlags := flcli.RegisterRobustFlags()
	codecFlag := flcli.RegisterCodecFlag()
	sampleFlags := flcli.RegisterSampleFlags()
	treeFlags := flcli.RegisterTreeFlags()
	flag.Parse()

	codec, err := flcli.ParseCodec(*codecFlag)
	if err != nil {
		return err
	}
	if err := sampleFlags.Validate(); err != nil {
		return err
	}
	if err := treeFlags.Validate(*role); err != nil {
		return err
	}
	p, scale, err := flcli.ParseDataset(*dataset, *scaleName)
	if err != nil {
		return err
	}
	d, err := datasets.Load(p, scale, *seed)
	if err != nil {
		return err
	}
	arch := flcli.ArchFor(p)
	dual := core.NewDualChannelModel(rand.New(rand.NewSource(*seed+1)), arch,
		d.Train.In, d.Train.NumClasses)

	reg, stopTelemetry, err := flcli.StartTelemetry(*metricsAddr)
	if err != nil {
		return err
	}
	defer stopTelemetry()

	robustAgg, reputation, err := robustFlags.Build(*maxUpdateNorm)
	if err != nil {
		return err
	}
	coord := &transport.Coordinator{
		NumClients:     *clients,
		Rounds:         *rounds,
		Initial:        nn.FlattenParams(dual.Params()),
		MinQuorum:      *quorum,
		RoundTimeout:   *roundTimeout,
		AcceptWindow:   *acceptWindow,
		MaxUpdateNorm:  *maxUpdateNorm,
		Codec:          codec,
		Robust:         robustAgg,
		Reputation:     reputation,
		SampleFraction: *sampleFlags.Frac,
		SampleSeed:     *sampleFlags.Seed,
		Metrics:        transport.NewMetrics(reg),
		RoundMetrics:   fl.NewMetrics(reg),
	}
	switch *role {
	case "flat":
	case "root":
		// The root of an aggregation tree: every roster slot is a child
		// aggregator sending one weighted partial per round, and killed
		// children may rejoin at a round boundary.
		if codec != "binary" {
			return fmt.Errorf("-role root requires -codec binary (partial frames have no gob spelling)")
		}
		coord.AcceptPartials = true
		coord.AcceptRejoins = true
		if *leaves > 0 {
			coord.NumClients = *leaves
		}
		if *treeFlags.SubtreeQuorum > 0 {
			coord.MinQuorum = *treeFlags.SubtreeQuorum
		}
		coord.CoverageFloor = *treeFlags.CoverageFloor
	case "leaf", "interior":
		parent := treeFlags.ParentAddr(*rootAddr)
		if parent == "" {
			return fmt.Errorf("-role %s requires -parent (the upstream aggregator's address)", *role)
		}
		if *ckptPath != "" {
			return fmt.Errorf("-role %s cannot checkpoint; tree nodes are stateless — checkpoint the root", *role)
		}
		if *role == "interior" {
			if codec != "binary" {
				return fmt.Errorf("-role interior requires -codec binary (partial frames have no gob spelling)")
			}
			coord.AcceptPartials = true
			coord.AcceptRejoins = true
			if *leaves > 0 {
				coord.NumClients = *leaves
			}
			coord.CoverageFloor = *treeFlags.CoverageFloor
		}
		if *treeFlags.SubtreeQuorum > 0 {
			coord.MinQuorum = *treeFlags.SubtreeQuorum
		}
		leaf := &transport.Leaf{
			ID:         *leafID,
			Root:       parent,
			AltParents: treeFlags.AltList(),
			Local:      *coord,
			Retry: transport.RetryConfig{
				MaxAttempts: 10,
				Stop:        flcli.ShutdownSignal(),
			},
		}
		what := "shard clients"
		if *role == "interior" {
			what = "child aggregators"
		}
		fmt.Printf("%s %d: waiting for %d %s, forwarding partials to %s\n",
			*role, *leafID, coord.NumClients, what, parent)
		global, err := leaf.ListenAndRun(*addr, func(a string) {
			fmt.Printf("listening on %s\n", a)
		})
		if err != nil {
			return err
		}
		// Only save when -out was given explicitly: the root owns the
		// canonical global, and co-located leaves left on the default
		// path would race each other's atomic rename.
		outSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "out" {
				outSet = true
			}
		})
		if outSet {
			if err := flcli.SaveGlobal(*out, p, scale, *seed, arch, global); err != nil {
				return err
			}
			fmt.Printf("tree federation complete; final root broadcast saved to %s\n", *out)
		} else {
			fmt.Println("tree federation complete (the root saves the global; pass -out for a leaf-side copy)")
		}
		return nil
	default:
		return fmt.Errorf("unknown -role %q (want flat, leaf, interior, or root)", *role)
	}
	if robustAgg != nil {
		fmt.Printf("robust aggregation: %s\n", robustAgg.Name())
	}
	if codec != "" {
		fmt.Printf("wire codec: %s (clients negotiate per-connection; compression follows their offer)\n", codec)
	}
	if *ckptPath != "" {
		coord.Checkpoint = &checkpoint.Manager{Path: *ckptPath, Metrics: checkpoint.NewMetrics(reg)}
		coord.CheckpointEvery = *ckptEvery
		coord.Stop = flcli.ShutdownSignal()
		if *resume {
			snap, err := coord.Checkpoint.Load()
			switch {
			case err == nil:
				coord.Restore = snap
				fmt.Printf("resuming from %s at round %d\n", *ckptPath, snap.State.NextRound)
			case errors.Is(err, os.ErrNotExist):
				fmt.Printf("no snapshot at %s; starting fresh\n", *ckptPath)
			default:
				return err
			}
		}
	}
	if *quorum > 0 {
		fmt.Printf("waiting for %d clients (quorum %d), %d rounds...\n", *clients, *quorum, *rounds)
	} else {
		fmt.Printf("waiting for %d clients, %d rounds...\n", *clients, *rounds)
	}
	global, err := coord.ListenAndRun(*addr, func(a string) {
		fmt.Printf("listening on %s\n", a)
	})
	if errors.Is(err, fl.ErrStopped) {
		fmt.Printf("stopped at a round boundary; snapshot saved to %s — rerun with -resume to continue\n",
			*ckptPath)
		return nil
	}
	if err != nil {
		return err
	}
	if err := flcli.SaveGlobal(*out, p, scale, *seed, arch, global); err != nil {
		return err
	}
	fmt.Printf("federation complete; global model saved to %s\n", *out)
	return nil
}
