GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector slows the heavyweight experiment replays ~10-20x past
# the default go-test timeout; they honor -short and are covered without
# race by `make test`. Every concurrency path (fl, transport, chaos tests)
# still runs under race here.
race:
	$(GO) test -race -short -timeout 20m ./...

# check is the full CI gate: static analysis plus the race-enabled suite.
check: vet race
