GO ?= go
FUZZTIME ?= 10s
# Pinned staticcheck release; CI installs exactly this, local runs use
# whatever `staticcheck` is on PATH (and skip cleanly when there is none).
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: build test race vet staticcheck crosscheck fuzz chaos treechaos chaossmoke byzantine byzsmoke bench benchrobust benchsmoke wirecheck benchwire benchscale scalegate benchprecision benchtree check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH and skips (successfully)
# when it is not, so `make check` works in hermetic containers; CI
# installs the pinned $(STATICCHECK_VERSION) so the gate is enforced
# there (see .github/workflows/ci.yml).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

# crosscheck compiles and vets the arm64 build without needing arm64
# hardware: the NEON micro-kernels (kernel_arm64.s) only assemble under
# GOARCH=arm64, so an amd64-only CI pass would let them rot.
crosscheck:
	GOARCH=arm64 $(GO) build ./...
	GOARCH=arm64 $(GO) vet ./...

# The race detector slows the heavyweight experiment replays ~10-20x past
# the default go-test timeout; they honor -short and are covered without
# race by `make test`. Every concurrency path (fl, transport, chaos tests)
# still runs under race here.
race:
	$(GO) test -race -short -timeout 20m ./...

# chaos runs the crash-injection harness under the race detector: kill the
# federation mid-run (in-process and over TCP), restart from the durable
# snapshot, and require bit-identical results — plus the torn-write /
# bit-flip fallback and graceful-shutdown paths.
chaos: treechaos
	$(GO) test -race -count=1 \
		-run 'CrashResume|StopResume|CoordinatorRestart|ClientStops|Manager|WriteFileAtomic' \
		./internal/fl/checkpoint ./internal/fl/transport ./internal/fl/faults

# treechaos runs the depth-3 aggregation-tree chaos harness under the race
# detector: seeded leaf and interior kills (failure-domain restarts), a
# partition in front of the first replacement, mid-partial-frame link
# kills, parent failover, and bit-identical root kill→restart→resume.
treechaos:
	$(GO) test -race -count=1 -timeout 10m \
		-run 'TestTreeChaos|TestMidPartialFrame|TestLeafFailsOver|TestTreeRootRestart|TestDegradedPartial|TestCoverageFloor' \
		./internal/fl/transport ./internal/fl/faults

# chaossmoke is the fast no-race subset of the chaos harness that rides in
# `make check`: one in-process crash/resume bit-identity pass plus the
# snapshot fallback tests.
chaossmoke:
	$(GO) test -count=1 \
		-run 'CrashResumeBitIdenticalInProcess|ManagerTornWrite|ManagerFallsBack' \
		./internal/fl/checkpoint

# byzantine runs the adversarial chaos suite under the race detector:
# sign-flip / scaled-gradient / collusion injectors, convergence within ε
# of the attack-free baseline with f < n/3 under the robust folds
# (in-process and over TCP), reputation-driven quarantine, quarantine
# surviving coordinator kill→restart→resume, and secure-aggregation
# dropout handling.
byzantine:
	$(GO) test -race -count=1 -timeout 20m \
		-run 'Byzantine|Quarantine|Dropout|Residual|RetryJitter' \
		./internal/fl ./internal/fl/transport ./internal/fl/secagg
	$(GO) test -race -count=1 ./internal/fl/robust ./internal/fl/faults

# byzsmoke is the fast race-enabled subset that rides in `make check`: the
# TCP quarantine + restart-no-amnesty path (cheap deterministic clients)
# plus the reputation state machine and injector arithmetic.
byzsmoke:
	$(GO) test -race -count=1 -run 'TCPByzantine|RetryJitter' ./internal/fl/transport
	$(GO) test -race -count=1 ./internal/fl/robust ./internal/fl/faults

# Short fuzz bursts over the two decoders that parse untrusted bytes: the
# coordinator's byte-budgeted update decode (the path hostile clients
# reach over the wire) and the checkpoint container decode (the path a
# resuming process walks over whatever a crash left on disk), plus the
# robust aggregators (which must never panic or emit non-finite
# aggregates, whatever a hostile cohort sends). Raise FUZZTIME for a real
# campaign: make fuzz FUZZTIME=10m
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeUpdate -fuzztime=$(FUZZTIME) ./internal/fl/transport
	$(GO) test -run='^$$' -fuzz=FuzzDecodeSnapshot -fuzztime=$(FUZZTIME) ./internal/fl/checkpoint
	$(GO) test -run='^$$' -fuzz=FuzzRobustAggregate -fuzztime=$(FUZZTIME) ./internal/fl/robust
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME) ./internal/fl/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecompressUpdate -fuzztime=$(FUZZTIME) ./internal/fl/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodePartial -fuzztime=$(FUZZTIME) ./internal/fl/wire
	$(GO) test -run='^$$' -fuzz=FuzzNarrowWidenValidate -fuzztime=$(FUZZTIME) ./internal/fl

# bench regenerates the tracked perf report against the committed seed
# baseline. The same workloads run under plain `go test -bench` in
# internal/bench for ad-hoc comparisons.
bench:
	$(GO) run ./cmd/cipbench -bench all -baseline BENCH_SEED.json \
		-bench-out BENCH_PR3.json \
		-bench-note "blocked GEMM + pooling + parallel rounds PR"

# benchrobust measures the byzantine-resilience overhead: the robust
# folds against the plain mean at the aggregation level (RobustAgg*) and
# end-to-end round latency (RobustRound* — RobustRoundMean is the
# control the <15% regression budget is judged against).
benchrobust:
	$(GO) run ./cmd/cipbench -bench Robust \
		-bench-out BENCH_PR6.json \
		-bench-note "byzantine-resilient aggregation PR: robust folds + reputation vs plain mean"

# benchsmoke proves the regression harness itself still runs (one fast
# kernel workload, report to stdout) without the minutes-long full sweep.
benchsmoke:
	$(GO) run ./cmd/cipbench -bench MatMulTransB128 -baseline BENCH_SEED.json >/dev/null

# wirecheck is the wire-path conformance sweep: golden byte-exact frame
# fixtures, the codec/compression unit and property suites, the
# gob↔binary negotiation matrix and compressed e2e/restart tests, short
# fuzz bursts over both frame decoders, and the bench-backed wire gate
# (≥10x byte reduction for topk8 vs gob, binary decode no slower).
wirecheck:
	$(GO) test -count=1 ./internal/fl/wire ./internal/fl/compress
	$(GO) test -count=1 -run 'Sparse|Densify|Codec|Compressed|MixedRoster|Bank' \
		./internal/fl ./internal/fl/transport ./internal/fl/checkpoint
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=5s ./internal/fl/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecompressUpdate -fuzztime=5s ./internal/fl/wire
	$(GO) run ./cmd/cipbench -bench Wire -wire-gate >/dev/null

# benchwire regenerates the tracked wire-path report: decode ns/op and
# wire bytes per update for gob vs binary vs compressed, with the same
# gate wirecheck holds.
benchwire:
	$(GO) run ./cmd/cipbench -bench Wire -wire-gate \
		-bench-out BENCH_PR7.json \
		-bench-note "binary update codec + load-bearing compression PR: decode cost and bytes/update vs gob"

# benchscale regenerates the scale-out report: 10⁵ in-process clients
# against the streaming-fold coordinator (flat and leaf/root tree) plus
# the 10k streaming-vs-buffered memory gate. Minutes-long; not in check.
benchscale:
	$(GO) run ./cmd/flload -out BENCH_PR8.json \
		-note "streaming folds + hierarchical aggregation tier PR"

# scalegate is the coordinator-memory regression line alone: at 10k
# clients the streaming fold's peak heap must be ≥5x below the buffered
# baseline's.
scalegate:
	$(GO) run ./cmd/cipbench -scale-gate

# benchtree regenerates the aggregation-tree report and holds the tree
# gate: depth-2 robust sketch merges bit-exact below the reservoir
# capacity and inside the documented DKW quantile envelope above it, and
# the depth-3 tree's p99 round latency within 5x the flat federation's.
benchtree:
	$(GO) run ./cmd/cipbench -tree-gate \
		-bench-out BENCH_PR10.json \
		-bench-note "aggregation-tree PR: depth-2 sketch error gate + depth-3 latency pair"

# benchprecision regenerates the float32-tier report and holds the
# precision gate: MatMul256-f32 ≥2x over MatMul256, the f32 Fig. 4 sweep
# faster end-to-end, and a quick federated run per precision landing
# within the final-accuracy tolerance. Minutes-long; not in check.
benchprecision:
	$(GO) run ./cmd/cipbench -bench 'MatMul256|ConvLowering|Relu|BiasAxpy|Fig4ClientsSweep' \
		-precision-gate \
		-bench-out BENCH_PR9.json \
		-bench-note "float32 compute tier PR: dual-precision GEMM, AVX2/NEON f32 kernels"

# check is the full CI gate: static analysis, the arm64 cross-compile,
# the race-enabled suite, a short fuzz burst, the crash-harness smoke,
# the byzantine smoke, the wire-path conformance sweep, and the
# bench-harness smoke.
check: vet staticcheck crosscheck race fuzz chaossmoke byzsmoke wirecheck benchsmoke
