GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector slows the heavyweight experiment replays ~10-20x past
# the default go-test timeout; they honor -short and are covered without
# race by `make test`. Every concurrency path (fl, transport, chaos tests)
# still runs under race here.
race:
	$(GO) test -race -short -timeout 20m ./...

# A short fuzz burst over the coordinator's byte-budgeted update decode —
# the path hostile clients reach over the wire. Raise FUZZTIME for a real
# campaign: make fuzz FUZZTIME=10m
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeUpdate -fuzztime=$(FUZZTIME) ./internal/fl/transport

# check is the full CI gate: static analysis, the race-enabled suite, and
# a short fuzz burst.
check: vet race fuzz
