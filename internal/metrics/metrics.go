// Package metrics provides the evaluation measures used across the paper's
// experiments: binary-classification quality (attack accuracy, precision,
// recall, F1), ROC-AUC, the earth-mover distance between loss
// distributions (Fig. 7), the structural similarity index between
// perturbation seeds (Table VIII), and histogram utilities (Fig. 1).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// BinaryCounts accumulates a confusion matrix for a binary decision task
// where "positive" means "predicted member".
type BinaryCounts struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) pair.
func (b *BinaryCounts) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		b.TP++
	case predicted && !actual:
		b.FP++
	case !predicted && !actual:
		b.TN++
	default:
		b.FN++
	}
}

// Accuracy returns (TP+TN)/total, the paper's "attack accuracy".
func (b BinaryCounts) Accuracy() float64 {
	total := b.TP + b.FP + b.TN + b.FN
	if total == 0 {
		return 0
	}
	return float64(b.TP+b.TN) / float64(total)
}

// Precision returns TP/(TP+FP); 0 when no positive predictions were made.
func (b BinaryCounts) Precision() float64 {
	if b.TP+b.FP == 0 {
		return 0
	}
	return float64(b.TP) / float64(b.TP+b.FP)
}

// Recall returns TP/(TP+FN); 0 when there are no positives.
func (b BinaryCounts) Recall() float64 {
	if b.TP+b.FN == 0 {
		return 0
	}
	return float64(b.TP) / float64(b.TP+b.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (b BinaryCounts) F1() float64 {
	p, r := b.Precision(), b.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the four derived measures, matching Table IV's columns.
func (b BinaryCounts) String() string {
	return fmt.Sprintf("precision=%.3f recall=%.3f f1=%.3f accuracy=%.3f",
		b.Precision(), b.Recall(), b.F1(), b.Accuracy())
}

// ROCAUC computes the area under the ROC curve for scores where higher
// means "more likely member". labels[i] is true for members.
func ROCAUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores for %d labels", len(scores), len(labels)))
	}
	type pair struct {
		s float64
		m bool
	}
	ps := make([]pair, len(scores))
	pos, neg := 0, 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Rank-sum (Mann-Whitney U) with tie handling via average ranks.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var sumPos float64
	for i, p := range ps {
		if p.m {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// TPRAtFPR returns the true-positive rate achievable at (at most) the
// given false-positive rate — the low-FPR operating point Carlini et al.
// ("Membership Inference Attacks from First Principles", cited as [10])
// argue is the honest way to score MI attacks: average-case accuracy can
// hide an attack that confidently identifies a few members.
func TPRAtFPR(scores []float64, labels []bool, maxFPR float64) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores for %d labels", len(scores), len(labels)))
	}
	var negScores []float64
	pos, neg := 0, 0
	for i, m := range labels {
		if m {
			pos++
		} else {
			neg++
			negScores = append(negScores, scores[i])
		}
	}
	if pos == 0 || neg == 0 {
		return 0
	}
	// Threshold = the smallest score that keeps FPR ≤ maxFPR.
	sort.Sort(sort.Reverse(sort.Float64Slice(negScores)))
	allowed := int(maxFPR * float64(neg))
	var threshold float64
	if allowed >= len(negScores) {
		threshold = math.Inf(-1)
	} else {
		threshold = negScores[allowed]
	}
	tp := 0
	for i, m := range labels {
		if m && scores[i] > threshold {
			tp++
		}
	}
	return float64(tp) / float64(pos)
}

// EMD1D returns the earth-mover (Wasserstein-1) distance between two
// empirical 1-D distributions given as samples. For sorted samples of
// equal length it is the mean absolute difference of order statistics; for
// unequal lengths it integrates the gap between empirical CDFs.
func EMD1D(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	if len(as) == len(bs) {
		s := 0.0
		for i := range as {
			s += math.Abs(as[i] - bs[i])
		}
		return s / float64(len(as))
	}
	// General case: EMD = ∫ |F_a(x) − F_b(x)| dx over the merged support.
	// The CDFs are constant on each interval between adjacent merged
	// sample points, with value P(X ≤ left endpoint).
	merged := append(append([]float64(nil), as...), bs...)
	sort.Float64s(merged)
	total := 0.0
	for i := 0; i+1 < len(merged); i++ {
		width := merged[i+1] - merged[i]
		if width <= 0 {
			continue
		}
		fa := float64(upperBound(as, merged[i])) / float64(len(as))
		fb := float64(upperBound(bs, merged[i])) / float64(len(bs))
		total += math.Abs(fa-fb) * width
	}
	return total
}

// upperBound returns the count of elements in sorted ≤ x.
func upperBound(sorted []float64, x float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] > x })
}

// MeanPairwiseEMD returns the average EMD over all unordered pairs of the
// given sample sets — Fig. 7's heterogeneity measure across client loss
// trajectories.
func MeanPairwiseEMD(series [][]float64) float64 {
	n := len(series)
	if n < 2 {
		return 0
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += EMD1D(series[i], series[j])
			count++
		}
	}
	return sum / float64(count)
}

// SSIM computes the (global, single-window) structural similarity index
// between two equal-length signals scaled to dynamic range L. The paper
// uses SSIM to quantify how close an adversary's guessed perturbation seed
// is to the client's secret seed (Table VIII).
func SSIM(x, y []float64, dynamicRange float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("metrics: SSIM length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 1
	}
	l := dynamicRange
	if l <= 0 {
		l = 1
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var vx, vy, cov float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		vx += dx * dx
		vy += dy * dy
		cov += dx * dy
	}
	vx /= n
	vy /= n
	cov /= n
	return ((2*mx*my + c1) * (2*cov + c2)) / ((mx*mx + my*my + c1) * (vx + vy + c2))
}

// Histogram bins samples into n equal-width bins over [lo, hi] and returns
// normalized densities (summing to 1). Samples outside the range clamp to
// the boundary bins. Fig. 1's loss-distribution plots are built from this.
func Histogram(samples []float64, lo, hi float64, n int) []float64 {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad histogram spec [%v,%v] n=%d", lo, hi, n))
	}
	counts := make([]float64, n)
	if len(samples) == 0 {
		return counts
	}
	w := (hi - lo) / float64(n)
	for _, s := range samples {
		i := int((s - lo) / w)
		if i < 0 {
			i = 0
		} else if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	for i := range counts {
		counts[i] /= float64(len(samples))
	}
	return counts
}

// OverlapCoefficient returns the histogram overlap Σ min(p_i, q_i) of two
// normalized histograms — the quantitative form of Fig. 1's "distributions
// become alike" claim (1 means identical, 0 disjoint).
func OverlapCoefficient(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: overlap length mismatch %d vs %d", len(p), len(q)))
	}
	s := 0.0
	for i := range p {
		s += math.Min(p[i], q[i])
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
