package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestTPRAtFPRPerfectSeparation(t *testing.T) {
	scores := []float64{10, 9, 8, 1, 2, 3}
	labels := []bool{true, true, true, false, false, false}
	if got := TPRAtFPR(scores, labels, 0.0); got != 1 {
		t.Fatalf("TPR@FPR=0 on separable scores = %v, want 1", got)
	}
}

func TestTPRAtFPRRandomScoresIsLow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = i%2 == 0
	}
	got := TPRAtFPR(scores, labels, 0.01)
	if got > 0.05 {
		t.Fatalf("TPR@1%%FPR with random scores = %v, want ≈0.01", got)
	}
}

func TestTPRAtFPRMonotoneInFPR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		labels[i] = i%2 == 0
		scores[i] = rng.NormFloat64()
		if labels[i] {
			scores[i] += 1 // partial separation
		}
	}
	prev := -1.0
	for _, f := range []float64{0.01, 0.05, 0.1, 0.5} {
		got := TPRAtFPR(scores, labels, f)
		if got < prev {
			t.Fatalf("TPR not monotone in FPR budget: %v after %v", got, prev)
		}
		prev = got
	}
	if prev < 0.5 {
		t.Fatalf("TPR@50%%FPR on shifted Gaussians = %v, want well above 0.5", prev)
	}
}

func TestTPRAtFPRDegenerate(t *testing.T) {
	if got := TPRAtFPR([]float64{1, 2}, []bool{true, true}, 0.1); got != 0 {
		t.Fatalf("no negatives should yield 0, got %v", got)
	}
	if got := TPRAtFPR(nil, nil, 0.1); got != 0 {
		t.Fatalf("empty input should yield 0, got %v", got)
	}
}

func TestTPRAtFPRFullBudget(t *testing.T) {
	// With FPR budget 1.0 every member can be flagged.
	scores := []float64{1, 2, 3, 4}
	labels := []bool{true, false, true, false}
	if got := TPRAtFPR(scores, labels, 1.0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TPR@FPR=1 = %v, want 1", got)
	}
}
