package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinaryCounts(t *testing.T) {
	var b BinaryCounts
	// 3 TP, 1 FP, 4 TN, 2 FN.
	for i := 0; i < 3; i++ {
		b.Add(true, true)
	}
	b.Add(true, false)
	for i := 0; i < 4; i++ {
		b.Add(false, false)
	}
	for i := 0; i < 2; i++ {
		b.Add(false, true)
	}
	if got := b.Accuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.7", got)
	}
	if got := b.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Precision = %v, want 0.75", got)
	}
	if got := b.Recall(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Recall = %v, want 0.6", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / 1.35
	if got := b.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
}

func TestBinaryCountsEmpty(t *testing.T) {
	var b BinaryCounts
	if b.Accuracy() != 0 || b.Precision() != 0 || b.Recall() != 0 || b.F1() != 0 {
		t.Fatal("empty counts should yield zeros, not NaN")
	}
}

func TestROCAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := ROCAUC(scores, labels); got != 1 {
		t.Errorf("perfect AUC = %v, want 1", got)
	}
	inv := []bool{false, false, true, true}
	if got := ROCAUC(scores, inv); got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
}

func TestROCAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	if got := ROCAUC(scores, labels); math.Abs(got-0.5) > 0.03 {
		t.Errorf("random AUC = %v, want ≈0.5", got)
	}
}

func TestROCAUCTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if got := ROCAUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("all-tied AUC = %v, want 0.5", got)
	}
}

func TestEMD1DIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		a := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		return EMD1D(a, a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestEMD1DSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := make([]float64, 1+r.Intn(20))
		b := make([]float64, 1+r.Intn(20))
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		return math.Abs(EMD1D(a, b)-EMD1D(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestEMD1DShift(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{2, 3, 4, 5} // a shifted by +2
	if got := EMD1D(a, b); math.Abs(got-2) > 1e-12 {
		t.Errorf("EMD of 2-shift = %v, want 2", got)
	}
}

func TestEMD1DUnequalLengthsMatchesEqualCase(t *testing.T) {
	// {0,0,1,1} vs {0,1} describe the same distribution; EMD should be 0.
	if got := EMD1D([]float64{0, 0, 1, 1}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("EMD of equal distributions (different sample counts) = %v, want 0", got)
	}
	// Degenerate distributions at 0 and at 3 are 3 apart.
	if got := EMD1D([]float64{0, 0, 0}, []float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("EMD of point masses = %v, want 3", got)
	}
}

func TestMeanPairwiseEMD(t *testing.T) {
	series := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	// Pairs: (0,1)=1, (0,2)=2, (1,2)=1; mean = 4/3.
	if got := MeanPairwiseEMD(series); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MeanPairwiseEMD = %v, want 4/3", got)
	}
	if got := MeanPairwiseEMD(series[:1]); got != 0 {
		t.Errorf("single-series EMD = %v, want 0", got)
	}
}

func TestSSIMSelfIsOneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 2+r.Intn(40))
		for i := range x {
			x[i] = r.Float64()
		}
		return math.Abs(SSIM(x, x, 1)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSSIMDecreasesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.Float64()
	}
	noisy := func(std float64) []float64 {
		out := make([]float64, len(x))
		for i := range out {
			out[i] = x[i] + rng.NormFloat64()*std
		}
		return out
	}
	s1 := SSIM(x, noisy(0.05), 1)
	s2 := SSIM(x, noisy(0.5), 1)
	if !(1 > s1 && s1 > s2) {
		t.Fatalf("SSIM should fall with noise: 1 > %v > %v violated", s1, s2)
	}
}

func TestSSIMBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		s := SSIM(x, y, 1)
		return s <= 1+1e-9 && s >= -1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNormalized(t *testing.T) {
	samples := []float64{0.1, 0.2, 0.9, -5, 10}
	h := Histogram(samples, 0, 1, 4)
	s := 0.0
	for _, v := range h {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("histogram sums to %v, want 1", s)
	}
	// Out-of-range samples clamp to boundary bins.
	if h[0] < 0.2 || h[3] < 0.2 {
		t.Fatalf("boundary clamping failed: %v", h)
	}
}

func TestOverlapCoefficient(t *testing.T) {
	p := []float64{0.5, 0.5, 0, 0}
	q := []float64{0, 0, 0.5, 0.5}
	if got := OverlapCoefficient(p, q); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
	if got := OverlapCoefficient(p, p); math.Abs(got-1) > 1e-12 {
		t.Errorf("self overlap = %v, want 1", got)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Std(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty Mean/Std should be 0")
	}
}
