package attacks

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/nn"
)

// ShadowBundle is an attacker-trained stand-in for the target model: a
// model trained on data the attacker controls, with known member and
// non-member sets. Shadow-based attacks (Ob-NN, Pb-Bayes) fit their attack
// model on a shadow bundle and transfer it to the target.
type ShadowBundle struct {
	Net        nn.Layer
	Members    *datasets.Dataset
	NonMembers *datasets.Dataset
}

// TrainShadow trains a shadow model: build constructs an architecture
// matching the target's, shadowTrain becomes the shadow member set and
// shadowTest the shadow non-member set.
func TrainShadow(build func() nn.Layer, shadowTrain, shadowTest *datasets.Dataset,
	epochs int, lr float64, rng *rand.Rand) (ShadowBundle, error) {
	net := build()
	opt := &nn.SGD{LR: lr, Momentum: 0.9}
	cfg := fl.ClientConfig{BatchSize: 32}
	train := shadowTrain.Clone()
	for e := 0; e < epochs; e++ {
		if _, err := fl.TrainEpochs(net, opt, nil, train, cfg, rng); err != nil {
			return ShadowBundle{}, fmt.Errorf("attacks: shadow training epoch %d: %w", e, err)
		}
	}
	return ShadowBundle{Net: net, Members: shadowTrain, NonMembers: shadowTest}, nil
}
