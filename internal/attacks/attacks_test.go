package attacks

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// fixture holds an overfit target model, a shadow bundle from the same
// distribution, and member/non-member evaluation sets. Building it is
// expensive, so tests share one instance.
type fixture struct {
	target     nn.Layer
	shadow     ShadowBundle
	members    *datasets.Dataset
	nonMembers *datasets.Dataset
	in         model.Input
	classes    int
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
			Classes: 10, Train: 160, Test: 160, C: 3, H: 8, W: 8,
			Signal: 0.4, Noise: 0.5, Seed: 31,
		})
		if err != nil {
			panic(err)
		}
		targetTrain, shadowTrain := train.Split(80)
		targetTest, shadowTest := test.Split(80)

		rng := rand.New(rand.NewSource(1))
		build := func() nn.Layer {
			return model.NewClassifier(rand.New(rand.NewSource(2)), model.VGG,
				train.In, train.NumClasses)
		}
		target := build()
		opt := &nn.SGD{LR: 0.04, Momentum: 0.9}
		for e := 0; e < 60; e++ {
			if _, err := fl.TrainEpochs(target, opt, nil, targetTrain, fl.ClientConfig{BatchSize: 16}, rng); err != nil {
				panic(err)
			}
		}
		shadow, err := TrainShadow(build, shadowTrain, shadowTest, 60, 0.04,
			rand.New(rand.NewSource(3)))
		if err != nil {
			panic(err)
		}
		fix = &fixture{
			target:     target,
			shadow:     shadow,
			members:    targetTrain,
			nonMembers: targetTest,
			in:         train.In,
			classes:    train.NumClasses,
		}
	})
	return fix
}

func freshNet(f *fixture) nn.Layer {
	return model.NewClassifier(rand.New(rand.NewSource(99)), model.VGG, f.in, f.classes)
}

func TestThresholdResultSeparable(t *testing.T) {
	r := ThresholdResult([]float64{3, 4, 5}, []float64{0, 1, 2})
	if r.Accuracy() != 1 {
		t.Fatalf("separable threshold accuracy = %v, want 1", r.Accuracy())
	}
	if r.AUC() != 1 {
		t.Fatalf("separable AUC = %v, want 1", r.AUC())
	}
}

func TestThresholdResultOverlapping(t *testing.T) {
	r := ThresholdResult([]float64{0, 1}, []float64{0, 1})
	if acc := r.Accuracy(); acc < 0.45 || acc > 0.80 {
		t.Fatalf("identical-distribution accuracy = %v, want ≈0.5-0.75", acc)
	}
}

func TestExtractFeaturesShapes(t *testing.T) {
	f := getFixture(t)
	feats := ExtractFeatures(f.target, f.members, 32)
	if len(feats.Loss) != f.members.Len() {
		t.Fatalf("got %d losses for %d samples", len(feats.Loss), f.members.Len())
	}
	for i := range feats.Loss {
		if feats.Loss[i] < 0 {
			t.Fatalf("loss[%d] = %v < 0", i, feats.Loss[i])
		}
		if feats.MaxProb[i] < 1.0/float64(f.classes)-1e-9 || feats.MaxProb[i] > 1 {
			t.Fatalf("maxprob[%d] = %v out of range", i, feats.MaxProb[i])
		}
		if feats.Entropy[i] < -1e-9 || feats.Entropy[i] > math.Log(float64(f.classes))+1e-9 {
			t.Fatalf("entropy[%d] = %v out of range", i, feats.Entropy[i])
		}
	}
}

func TestSortedTopK(t *testing.T) {
	got := sortedTopK([]float64{0.1, 0.6, 0.3}, 3)
	want := []float64{0.6, 0.3, 0.1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedTopK = %v, want %v", got, want)
		}
	}
	if padded := sortedTopK([]float64{0.9, 0.1}, 3); padded[2] != 0 {
		t.Fatalf("short vectors should pad with zeros, got %v", padded)
	}
}

func TestLogisticLearnsSeparableFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []bool
	for i := 0; i < 200; i++ {
		member := i%2 == 0
		base := 0.0
		if member {
			base = 2
		}
		xs = append(xs, []float64{base + rng.NormFloat64()*0.3, rng.NormFloat64()})
		ys = append(ys, member)
	}
	clf := FitLogistic(xs, ys, 200, 0.3)
	correct := 0
	for i, x := range xs {
		if (clf.Predict(x) >= 0.5) == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Fatalf("logistic accuracy = %v, want ≥0.95 on separable data", acc)
	}
}

// TestExternalAttacksBeatChanceOnOverfitModel verifies every external
// attack extracts membership signal from an overfit undefended model —
// the precondition for all of the paper's defense evaluations.
func TestExternalAttacksBeatChanceOnOverfitModel(t *testing.T) {
	f := getFixture(t)
	rng := rand.New(rand.NewSource(5))

	tests := []struct {
		name string
		run  func() Result
		min  float64
	}{
		{"Ob-Label", func() Result { return ObLabel(f.target, f.members, f.nonMembers) }, 0.60},
		{"Ob-MALT", func() Result { return ObMALT(f.target, f.members, f.nonMembers) }, 0.65},
		{"Ob-NN", func() Result { return ObNN(f.target, f.members, f.nonMembers, f.shadow, rng) }, 0.55},
		{"Ob-BlindMI", func() Result { return ObBlindMI(f.target, f.members, f.nonMembers, rng) }, 0.55},
		{"Pb-Bayes", func() Result { return PbBayes(f.target, f.members, f.nonMembers, f.shadow, rng) }, 0.60},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := tt.run()
			if acc := r.Accuracy(); acc < tt.min {
				t.Fatalf("%s accuracy = %v, want ≥ %v on overfit model", tt.name, acc, tt.min)
			}
		})
	}
}

// TestAttacksNearChanceOnUntrainedModel: an untrained model carries no
// membership signal, so every attack must hover near 0.5 (DESIGN.md
// invariant).
func TestAttacksNearChanceOnUntrainedModel(t *testing.T) {
	f := getFixture(t)
	rng := rand.New(rand.NewSource(6))
	blank := freshNet(f)

	tests := []struct {
		name string
		run  func() Result
	}{
		{"Ob-Label", func() Result { return ObLabel(blank, f.members, f.nonMembers) }},
		{"Ob-MALT", func() Result { return ObMALT(blank, f.members, f.nonMembers) }},
		{"Pb-Bayes", func() Result { return PbBayes(blank, f.members, f.nonMembers, f.shadow, rng) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := tt.run()
			// Oracle-threshold attacks retain a small optimism bias, so
			// allow a loose band around 0.5.
			if acc := r.Accuracy(); acc > 0.68 {
				t.Fatalf("%s accuracy = %v on an untrained model, want ≈0.5", tt.name, acc)
			}
		})
	}
}

func TestObMALTPerfectOnSyntheticGap(t *testing.T) {
	// Direct unit check of the threshold logic via a hand-built loss gap.
	ms := []float64{1, 1, 1}
	ns := []float64{0, 0, 0}
	r := ThresholdResult(ms, ns)
	if r.Accuracy() != 1 {
		t.Fatalf("accuracy = %v, want 1", r.Accuracy())
	}
}

func TestInternalPassiveAttack(t *testing.T) {
	f := getFixture(t)
	// Run a 2-client federation in the overfit regime, recording the last
	// rounds like the paper's malicious server.
	shards := datasets.PartitionIID(f.members, 2, rand.New(rand.NewSource(7)))
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(8)), model.VGG, f.in, f.classes)
	}
	const rounds = 30
	rec := &fl.HistoryRecorder{KeepParams: true,
		OnlyRounds: map[int]bool{rounds - 3: true, rounds - 2: true, rounds - 1: true}}
	clients := make([]fl.Client, 2)
	var initial []float64
	for i := range clients {
		net := build()
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients[i] = fl.NewLegacyClient(i, net, shards[i], fl.ClientConfig{
			BatchSize: 16, LocalEpochs: 2, LR: func(int) float64 { return 0.04 }, Momentum: 0.9,
		}, nil, rand.New(rand.NewSource(int64(40+i))))
	}
	srv := fl.NewServer(initial, clients...)
	srv.Observers = append(srv.Observers, rec)
	if err := srv.Run(rounds); err != nil {
		t.Fatal(err)
	}

	attack := InternalPassive{BuildNet: build, VictimIndex: 0}
	res, err := attack.Run(rec.KeptRounds(), shards[0], f.nonMembers.Subset(rangeInts(shards[0].Len())),
		rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(); acc < 0.55 {
		t.Fatalf("internal passive accuracy = %v, want ≥0.55 in overfit regime", acc)
	}
}

func TestInternalPassiveNeedsRounds(t *testing.T) {
	f := getFixture(t)
	attack := InternalPassive{BuildNet: func() nn.Layer { return freshNet(f) }}
	if _, err := attack.Run(nil, f.members, f.nonMembers, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error with no observed rounds")
	}
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestActiveAttacker(t *testing.T) {
	f := getFixture(t)
	shards := datasets.PartitionIID(f.members, 2, rand.New(rand.NewSource(10)))
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(11)), model.VGG, f.in, f.classes)
	}

	// Targets: victim's members plus an equal count of non-members.
	nTargets := 20
	targets := datasets.Concat(
		shards[0].Subset(rangeInts(nTargets)),
		f.nonMembers.Subset(rangeInts(nTargets)))

	const rounds = 24
	attacker := &ActiveAttacker{
		BuildNet:    build,
		Targets:     targets,
		NumMembers:  nTargets,
		VictimID:    0,
		StartRound:  rounds - 5,
		AscentLR:    0.05,
		AscentSteps: 2,
	}
	clients := make([]fl.Client, 2)
	var initial []float64
	for i := range clients {
		net := build()
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients[i] = fl.NewLegacyClient(i, net, shards[i], fl.ClientConfig{
			BatchSize: 16, LocalEpochs: 2, LR: func(int) float64 { return 0.04 }, Momentum: 0.9,
		}, nil, rand.New(rand.NewSource(int64(50+i))))
	}
	srv := fl.NewServer(initial, clients...)
	srv.Alter = attacker.Alter
	srv.Observers = append(srv.Observers, attacker)
	if err := srv.Run(rounds); err != nil {
		t.Fatal(err)
	}
	res, err := attacker.Result()
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(); acc < 0.6 {
		t.Fatalf("active attack accuracy = %v, want ≥0.6 (it is the strongest insider attack)", acc)
	}
}

func TestActiveAttackerNoObservations(t *testing.T) {
	a := &ActiveAttacker{}
	if _, err := a.Result(); err == nil {
		t.Fatal("expected error with no observations")
	}
}

// cipFixture trains a single-client CIP federation (the paper's external
// worst case) for adaptive-attack tests.
type cipFixtureT struct {
	client     *core.Client
	evalModel  *core.CIPModel
	members    *datasets.Dataset
	nonMembers *datasets.Dataset
	shadow     *datasets.Dataset
}

var (
	cipOnce sync.Once
	cipFix  *cipFixtureT
)

func getCIPFixture(t *testing.T) *cipFixtureT {
	t.Helper()
	cipOnce.Do(func() {
		train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
			Classes: 10, Train: 80, Test: 160, C: 3, H: 8, W: 8,
			Signal: 0.4, Noise: 0.5, Seed: 77,
		})
		if err != nil {
			panic(err)
		}
		nonMembers, shadow := test.Split(80)

		cfg := core.TrainConfig{
			Alpha: 0.7, LambdaT: 1e-6, LambdaM: 0.3, PerturbLR: 0.02,
			BatchSize: 16, LR: func(int) float64 { return 0.04 }, Momentum: 0.9,
		}
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(12)), model.VGG, train.In, train.NumClasses)
		client := core.NewClient(0, dual, train, cfg, core.BlendSeed(5, 0), rand.New(rand.NewSource(13)))
		srv := fl.NewServer(nn.FlattenParams(dual.Params()), client)
		if err := srv.Run(30); err != nil {
			panic(err)
		}
		evalDual := core.NewDualChannelModel(rand.New(rand.NewSource(12)), model.VGG, train.In, train.NumClasses)
		if err := nn.SetFlatParams(evalDual.Params(), srv.Global()); err != nil {
			panic(err)
		}
		cipFix = &cipFixtureT{
			client:     client,
			evalModel:  core.NewCIPModel(evalDual, client.Perturbation().T, cfg.Alpha),
			members:    client.Data(), // the calibration split is NOT a member
			nonMembers: nonMembers,
			shadow:     shadow,
		}
	})
	return cipFix
}

func TestAdaptiveOptimization1(t *testing.T) {
	f := getCIPFixture(t)
	rng := rand.New(rand.NewSource(14))
	res := Optimization1(f.evalModel, f.shadow, f.members, f.nonMembers, 3, 0.02, rng)
	// The adaptive attack should do no better than modestly above chance —
	// and far worse than an attacker holding the true t.
	trueT := ObMALT(f.evalModel, f.members, f.nonMembers)
	if res.Accuracy() > trueT.Accuracy()+0.02 {
		t.Fatalf("adaptive t′ attack (%v) should not beat the true-t attack (%v)",
			res.Accuracy(), trueT.Accuracy())
	}
}

func TestAdaptiveKnowledge1SSIMMonotone(t *testing.T) {
	f := getCIPFixture(t)
	rng := rand.New(rand.NewSource(15))
	trueSeed := core.NewPerturbation(f.client.Perturbation().Seed, f.client.Perturbation().T.Shape, 0, 1).T

	_, sLow := Knowledge1(f.evalModel, trueSeed, 0.1, f.shadow, f.members, f.nonMembers, 2, 0.02, rng)
	_, sHigh := Knowledge1(f.evalModel, trueSeed, 0.9, f.shadow, f.members, f.nonMembers, 2, 0.02, rng)
	if !(sLow < sHigh) {
		t.Fatalf("achieved SSIMs should order with targets: %v vs %v", sLow, sHigh)
	}
	if math.Abs(sHigh-0.9) > 0.15 {
		t.Fatalf("achieved SSIM %v too far from target 0.9", sHigh)
	}
}

func TestAdaptiveKnowledge2(t *testing.T) {
	f := getCIPFixture(t)
	rng := rand.New(rand.NewSource(16))
	known, unknown := f.members.Split(f.members.Len() / 2)
	res := Knowledge2(f.evalModel, known, unknown, f.nonMembers.Subset(rangeInts(unknown.Len())), 3, 0.02, rng)
	trueT := ObMALT(f.evalModel, unknown, f.nonMembers.Subset(rangeInts(unknown.Len())))
	// Knowing part of the training data must not yield a BETTER attack than
	// holding the true t (§V-D: "the training data does not provide more
	// information than what the adversary obtains from the target model").
	if res.Accuracy() > trueT.Accuracy()+0.02 {
		t.Fatalf("partial-data attack (%v) should not beat the true-t attack (%v)",
			res.Accuracy(), trueT.Accuracy())
	}
}

func TestAdaptiveKnowledge3(t *testing.T) {
	f := getCIPFixture(t)
	// A substitute perturbation from a different seed.
	other := core.NewPerturbation(999, f.client.Perturbation().T.Shape, 0, 1)
	res := Knowledge3(f.evalModel, other.T, f.members, f.nonMembers)
	trueT := ObMALT(f.evalModel, f.members, f.nonMembers)
	if res.Accuracy() >= trueT.Accuracy() {
		t.Fatalf("substitute-t attack (%v) should underperform the true-t attack (%v)",
			res.Accuracy(), trueT.Accuracy())
	}
}

func TestAdaptiveKnowledge4Inverted(t *testing.T) {
	f := getCIPFixture(t)
	res := Knowledge4(f.evalModel, f.members, f.nonMembers)
	// The inverse attack commits to "high loss ⇒ member"; since CIP keeps
	// member zero-t losses below non-member losses, it lands at or below
	// chance (Table X).
	if acc := res.Accuracy(); acc > 0.58 {
		t.Fatalf("inverse MI accuracy = %v, want ≤ 0.58", acc)
	}
}

func TestOptimizeTPrimeImprovesShadowFit(t *testing.T) {
	f := getCIPFixture(t)
	rng := rand.New(rand.NewSource(17))
	tRand := f.evalModel.ZeroT()
	tRand.RandUniform(rng, 0, 1)
	before := fl.MeanLoss(f.evalModel.WithT(tRand), f.shadow, 64)
	tPrime := OptimizeTPrime(f.evalModel, tRand, f.shadow, 5, 0.02, rng)
	after := fl.MeanLoss(f.evalModel.WithT(tPrime), f.shadow, 64)
	if after >= before {
		t.Fatalf("optimizing t′ should reduce shadow loss: %v -> %v", before, after)
	}
}
