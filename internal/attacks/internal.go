package attacks

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// InternalPassive is the malicious-server passive attack (Nasr et al.):
// the server records the victim client's local model at several of the
// last training rounds (Table I's "attacking iterations"), computes each
// candidate sample's loss under every observed snapshot, and fits an
// attack model on a supervised subset whose membership it knows, then
// scores the rest. Multi-round observation is what makes the FL insider
// strictly stronger than a one-shot external attacker.
type InternalPassive struct {
	// BuildNet constructs an architecture into which observed parameter
	// vectors are loaded (it must match the clients' architecture).
	BuildNet func() nn.Layer
	// VictimIndex selects which client's local updates to use.
	VictimIndex int
	// KnownFraction is the share of each evaluation set whose membership
	// the attacker already knows and trains its attack model on
	// (default 0.5, Nasr's supervised setting).
	KnownFraction float64
}

// Run executes the attack over the recorded rounds.
func (a InternalPassive) Run(kept []fl.RoundRecord, members, nonMembers *datasets.Dataset,
	rng *rand.Rand) (Result, error) {
	if len(kept) == 0 {
		return Result{}, fmt.Errorf("attacks: internal passive attack needs observed rounds")
	}
	frac := a.KnownFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}

	net := a.BuildNet()
	// Per-sample loss under each observed snapshot of the victim's model.
	featuresOf := func(d *datasets.Dataset) ([][]float64, error) {
		feats := make([][]float64, d.Len())
		for i := range feats {
			feats[i] = make([]float64, 0, len(kept))
		}
		for _, rec := range kept {
			if a.VictimIndex >= len(rec.LocalParams) {
				return nil, fmt.Errorf("attacks: victim index %d out of range", a.VictimIndex)
			}
			if err := nn.SetFlatParams(net.Params(), rec.LocalParams[a.VictimIndex]); err != nil {
				return nil, fmt.Errorf("attacks: loading round %d params: %w", rec.Round, err)
			}
			losses := fl.Losses(net, d, 64)
			for i, l := range losses {
				feats[i] = append(feats[i], l)
			}
		}
		return feats, nil
	}

	mf, err := featuresOf(members)
	if err != nil {
		return Result{}, err
	}
	nf, err := featuresOf(nonMembers)
	if err != nil {
		return Result{}, err
	}

	// Supervised split: attacker trains on the known part, scores the rest.
	mSplit := int(float64(len(mf)) * frac)
	nSplit := int(float64(len(nf)) * frac)
	var trainX [][]float64
	var trainY []bool
	trainX = append(trainX, mf[:mSplit]...)
	for range mf[:mSplit] {
		trainY = append(trainY, true)
	}
	trainX = append(trainX, nf[:nSplit]...)
	for range nf[:nSplit] {
		trainY = append(trainY, false)
	}
	clf := FitLogistic(trainX, trainY, 300, 0.2)

	score := func(fs [][]float64) []float64 {
		out := make([]float64, len(fs))
		for i, f := range fs {
			out[i] = clf.Predict(f)
		}
		return out
	}
	return newResult(score(mf[mSplit:]), score(nf[nSplit:]), 0.5), nil
}

// ActiveAttacker is the malicious-server active attack (Nasr et al.) and,
// run in descent mode against CIP, the paper's adaptive Optimization-2.
// Each round from StartRound on, the server alters the model sent to the
// victim by running gradient steps on the attack's target samples
// (ascent for the classic attack, descent for Optimization-2), then
// watches the loss of those samples under the victim's returned local
// model. Members behave differently from non-members because the victim's
// local training only counteracts the alteration on samples it actually
// trains on.
type ActiveAttacker struct {
	// BuildNet constructs the architecture used to load/alter parameters.
	BuildNet func() nn.Layer
	// Targets holds candidate samples, members first.
	Targets    *datasets.Dataset
	NumMembers int
	// VictimID is the client whose download is altered and whose update
	// is observed.
	VictimID int
	// StartRound is the first attacked round (the paper starts "from the
	// last fifth rounds").
	StartRound int
	// AscentLR is the alteration step size.
	AscentLR float64
	// AscentSteps is how many alteration gradient steps run per round.
	AscentSteps int
	// Descend flips the alteration to gradient descent (Optimization-2).
	Descend bool

	victimIdx   int
	lossRecords [][]float64 // per observed round: per-target loss
}

// Alter implements fl.AlterFunc: gradient-ascend (or descend) the target
// samples in the parameters the victim receives.
func (a *ActiveAttacker) Alter(round, clientID int, global []float64) []float64 {
	if clientID != a.VictimID || round < a.StartRound {
		return nil
	}
	net := a.BuildNet()
	if err := nn.SetFlatParams(net.Params(), global); err != nil {
		return nil
	}
	steps := a.AscentSteps
	if steps <= 0 {
		steps = 1
	}
	lr := a.AscentLR
	if lr <= 0 {
		lr = 0.05
	}
	x, y := a.Targets.Batch(0, a.Targets.Len())
	for s := 0; s < steps; s++ {
		nn.ZeroGrads(net.Params())
		logits, cache := net.Forward(x, true)
		res := nn.SoftmaxCrossEntropy(logits, y)
		grad := res.Grad
		if !a.Descend {
			grad = tensor.Scale(grad, -1) // ascend: maximize target loss
		}
		net.Backward(cache, grad)
		(&nn.SGD{LR: lr}).Step(net.Params())
	}
	return nn.FlattenParams(net.Params())
}

// ObserveRound implements fl.RoundObserver: record the victim's
// post-training loss on every target sample.
func (a *ActiveAttacker) ObserveRound(round int, _ []float64, updates []fl.Update) {
	if round < a.StartRound {
		return
	}
	idx := a.VictimID
	if idx >= len(updates) {
		return
	}
	net := a.BuildNet()
	if err := nn.SetFlatParams(net.Params(), updates[idx].Params); err != nil {
		return
	}
	a.lossRecords = append(a.lossRecords, fl.Losses(net, a.Targets, 64))
}

// Result scores the attack. In ascent mode members are the samples whose
// loss the victim kept LOW despite the server pushing it up; in descent
// mode (Optimization-2 against CIP) members are the samples whose loss
// ends HIGH, because CIP's Step II raises loss on original member data.
func (a *ActiveAttacker) Result() (Result, error) {
	if len(a.lossRecords) == 0 {
		return Result{}, fmt.Errorf("attacks: active attack observed no rounds")
	}
	n := a.Targets.Len()
	mean := make([]float64, n)
	for _, rec := range a.lossRecords {
		for i, l := range rec {
			mean[i] += l / float64(len(a.lossRecords))
		}
	}
	scores := make([]float64, n)
	for i, m := range mean {
		if a.Descend {
			scores[i] = m // high loss ⇒ member
		} else {
			scores[i] = -m // low loss ⇒ member
		}
	}
	return ThresholdResult(scores[:a.NumMembers], scores[a.NumMembers:]), nil
}
