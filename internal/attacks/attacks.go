// Package attacks implements the membership inference attacks the paper
// evaluates CIP against:
//
// External (white-box access to the final global model, §IV-B):
//   - Ob-Label — label-only attack (Yeom et al.): member iff classified
//     correctly.
//   - Ob-MALT — Bayes-optimal loss-threshold attack (Sablayrolles et al.).
//   - Ob-NN — shadow-model + attack-network attack (Shokri/Salem et al.).
//   - Ob-BlindMI — differential-comparison attack (Hui et al.).
//   - Pb-Bayes — parameter-based white-box attack using gradient features
//     (Leino & Fredrikson).
//
// Internal (malicious server, Nasr et al. S&P'19):
//   - Passive — observes clients' local models over several rounds.
//   - Active — gradient-ascends target samples in the model sent to the
//     victim and watches whether local training undoes the damage.
//
// Adaptive (§V-D, aware of CIP's mechanism): Optimization-1/2 and
// Knowledge-1/2/3/4, implemented in adaptive.go.
package attacks

import (
	"fmt"
	"math"
	"sort"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/metrics"
	"github.com/cip-fl/cip/internal/nn"
)

// Result is the outcome of running an attack on equal member/non-member
// evaluation sets.
type Result struct {
	// Scores holds per-sample membership scores (higher = more member-
	// like), members first, then non-members.
	Scores []float64
	// Labels holds the ground truth aligned with Scores.
	Labels []bool
	// Preds holds the attack's binary membership decisions.
	Preds []bool
	// Counts is the confusion matrix of Preds vs Labels.
	Counts metrics.BinaryCounts
}

// Accuracy returns the attack accuracy (the paper's headline metric).
func (r Result) Accuracy() float64 { return r.Counts.Accuracy() }

// AUC returns the threshold-free ROC-AUC of the attack scores.
func (r Result) AUC() float64 { return metrics.ROCAUC(r.Scores, r.Labels) }

// TPRAtFPR returns the attack's true-positive rate at the given
// false-positive rate — the low-FPR regime Carlini et al. recommend for
// honest MI evaluation.
func (r Result) TPRAtFPR(maxFPR float64) float64 {
	return metrics.TPRAtFPR(r.Scores, r.Labels, maxFPR)
}

// String summarizes the result in Table IV's terms.
func (r Result) String() string {
	return fmt.Sprintf("acc=%.3f auc=%.3f %s", r.Accuracy(), r.AUC(), r.Counts)
}

// newResult assembles a Result from member/non-member scores and a
// decision threshold (predict member when score ≥ threshold).
func newResult(memberScores, nonScores []float64, threshold float64) Result {
	r := Result{}
	for _, s := range memberScores {
		r.Scores = append(r.Scores, s)
		r.Labels = append(r.Labels, true)
	}
	for _, s := range nonScores {
		r.Scores = append(r.Scores, s)
		r.Labels = append(r.Labels, false)
	}
	r.Preds = make([]bool, len(r.Scores))
	for i, s := range r.Scores {
		r.Preds[i] = s >= threshold
		r.Counts.Add(r.Preds[i], r.Labels[i])
	}
	return r
}

// bestThreshold returns the score threshold maximizing attack accuracy —
// the Bayes-optimal decision rule given the evaluation sets, which is how
// threshold attacks are customarily scored (an upper bound favoring the
// attacker, hence conservative for the defense).
func bestThreshold(memberScores, nonScores []float64) float64 {
	all := make([]float64, 0, len(memberScores)+len(nonScores)+1)
	all = append(all, memberScores...)
	all = append(all, nonScores...)
	sort.Float64s(all)
	best := math.Inf(-1)
	bestAcc := -1.0
	try := func(th float64) {
		correct := 0
		for _, s := range memberScores {
			if s >= th {
				correct++
			}
		}
		for _, s := range nonScores {
			if s < th {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(memberScores)+len(nonScores)); acc > bestAcc {
			bestAcc, best = acc, th
		}
	}
	for i, v := range all {
		try(v)
		if i+1 < len(all) {
			try((v + all[i+1]) / 2)
		}
	}
	try(all[len(all)-1] + 1)
	return best
}

// ThresholdResult scores a generic threshold attack with the attacker-
// optimal threshold.
func ThresholdResult(memberScores, nonScores []float64) Result {
	return newResult(memberScores, nonScores, bestThreshold(memberScores, nonScores))
}

// Features bundles the per-sample observables attacks consume.
type Features struct {
	Loss    []float64 // per-sample cross-entropy
	Correct []bool    // argmax == label
	Probs   [][]float64
	MaxProb []float64
	Entropy []float64
}

// ExtractFeatures runs the model over d and collects output-side features.
func ExtractFeatures(net nn.Layer, d *datasets.Dataset, batch int) Features {
	if batch <= 0 {
		batch = 64
	}
	f := Features{}
	for start := 0; start < d.Len(); start += batch {
		end := start + batch
		if end > d.Len() {
			end = d.Len()
		}
		x, y := d.Batch(start, end)
		logits, _ := net.Forward(x, false)
		res := nn.SoftmaxCrossEntropy(logits, y)
		k := logits.Shape[1]
		for i := 0; i < end-start; i++ {
			row := res.Probs.Data[i*k : (i+1)*k]
			p := make([]float64, k)
			copy(p, row)
			f.Probs = append(f.Probs, p)
			f.Loss = append(f.Loss, res.PerSample[i])
			maxP, arg := row[0], 0
			ent := 0.0
			for j, v := range row {
				if v > maxP {
					maxP, arg = v, j
				}
				if v > 1e-12 {
					ent -= v * math.Log(v)
				}
			}
			f.MaxProb = append(f.MaxProb, maxP)
			f.Entropy = append(f.Entropy, ent)
			f.Correct = append(f.Correct, arg == y[i])
		}
	}
	return f
}

// sortedTopK returns the k largest softmax probabilities in descending
// order — Ob-NN's attack-model input representation (Salem et al.).
func sortedTopK(probs []float64, k int) []float64 {
	cp := append([]float64(nil), probs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	if len(cp) < k {
		padded := make([]float64, k)
		copy(padded, cp)
		return padded
	}
	return cp[:k]
}

// GradientNorms computes the per-sample L2 norm of the full parameter
// gradient — the white-box signal Pb-Bayes adds on top of outputs.
func GradientNorms(net nn.Layer, d *datasets.Dataset) []float64 {
	out := make([]float64, 0, d.Len())
	params := net.Params()
	for i := 0; i < d.Len(); i++ {
		x, y := d.Batch(i, i+1)
		nn.ZeroGrads(params)
		logits, cache := net.Forward(x, true)
		res := nn.SoftmaxCrossEntropy(logits, y)
		net.Backward(cache, res.Grad)
		var sq float64
		for _, p := range params {
			for _, g := range p.Grad.Data {
				sq += g * g
			}
		}
		out = append(out, math.Sqrt(sq))
	}
	nn.ZeroGrads(params)
	return out
}

// lossesOf is a convenience wrapper shared by the threshold attacks.
func lossesOf(net nn.Layer, d *datasets.Dataset) []float64 {
	return fl.Losses(net, d, 64)
}
