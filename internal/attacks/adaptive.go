package attacks

import (
	"math/rand"
	"sort"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/metrics"
	"github.com/cip-fl/cip/internal/tensor"
)

// This file implements the paper's six adaptive adversaries (§V-D), which
// know CIP's mechanism and try to defeat the secret perturbation.

// OptimizeTPrime runs the adaptive perturbation recovery shared by the
// optimization- and knowledge-based attacks: starting from init (or a
// fresh random draw when init is nil), optimize a guessed perturbation t′
// to minimize the target model's loss on data the attacker holds —
// exactly the procedure a client uses in Step I, but driven by probing.
func OptimizeTPrime(m *core.CIPModel, initT *tensor.Tensor, probe *datasets.Dataset,
	iters int, lr float64, rng *rand.Rand) *tensor.Tensor {
	var t *tensor.Tensor
	if initT != nil {
		t = initT.Clone()
	} else {
		t = tensor.New(m.T.Shape...)
		t.RandUniform(rng, 0, 1)
	}
	guess := m.WithT(t)
	cfg := core.TrainConfig{
		Alpha:         m.Alpha,
		PerturbLR:     lr,
		PerturbEpochs: iters,
		BatchSize:     32,
	}
	core.StepIGeneratePerturbation(guess, probe.Clone(), cfg, rng)
	return guess.T
}

// Optimization1 is the passive probe attack ([Optimization-1], Table VI):
// the adversary probes the target model with its own shadow data, optimizes
// a perturbation t′ that maximizes the model's performance on that data,
// and mounts the loss-threshold attack through t′.
func Optimization1(m *core.CIPModel, shadow, members, nonMembers *datasets.Dataset,
	iters int, lr float64, rng *rand.Rand) Result {
	tPrime := OptimizeTPrime(m, nil, shadow, iters, lr, rng)
	return ObMALT(m.WithT(tPrime), members, nonMembers)
}

// Optimization2 is realized by ActiveAttacker with Descend=true (see
// internal.go); the experiments harness wires it into a CIP federation.

// Knowledge1 is the public-seed attack ([Knowledge-1], Table VIII): the
// adversary knows α and (approximately) the seed perturbation the client
// initialized from, reconstructs a starting point with the given SSIM to
// the true seed, optimizes t′ from it on shadow data, and attacks through
// t′. It returns the attack result and the achieved seed SSIM.
func Knowledge1(m *core.CIPModel, trueSeed *tensor.Tensor, targetSSIM float64,
	shadow, members, nonMembers *datasets.Dataset,
	iters int, lr float64, rng *rand.Rand) (Result, float64) {
	adversarySeed := seedWithSSIM(trueSeed, targetSSIM, rng)
	actual := metrics.SSIM(adversarySeed.Data, trueSeed.Data, 1)
	tPrime := OptimizeTPrime(m, adversarySeed, shadow, iters, lr, rng)
	return ObMALT(m.WithT(tPrime), members, nonMembers), actual
}

// seedWithSSIM mixes the true seed with fresh noise, searching the mixing
// weight so the result's SSIM to the true seed approximates target.
func seedWithSSIM(trueSeed *tensor.Tensor, target float64, rng *rand.Rand) *tensor.Tensor {
	noise := tensor.New(trueSeed.Shape...)
	noise.RandUniform(rng, 0, 1)
	mix := func(w float64) *tensor.Tensor {
		out := tensor.New(trueSeed.Shape...)
		for i := range out.Data {
			out.Data[i] = w*trueSeed.Data[i] + (1-w)*noise.Data[i]
		}
		return out
	}
	lo, hi := 0.0, 1.0
	var best *tensor.Tensor
	for i := 0; i < 30; i++ {
		w := (lo + hi) / 2
		best = mix(w)
		s := metrics.SSIM(best.Data, trueSeed.Data, 1)
		if s < target {
			lo = w
		} else {
			hi = w
		}
	}
	return best
}

// Knowledge2 is the partial-training-data attack ([Knowledge-2],
// Table IX): the adversary holds a known fraction of the victim's training
// samples, optimizes t′ against the target model using that part, and
// attacks the membership of the UNKNOWN remainder.
func Knowledge2(m *core.CIPModel, knownMembers, unknownMembers, nonMembers *datasets.Dataset,
	iters int, lr float64, rng *rand.Rand) Result {
	tPrime := OptimizeTPrime(m, nil, knownMembers, iters, lr, rng)
	return ObMALT(m.WithT(tPrime), unknownMembers, nonMembers)
}

// Knowledge3 is the substitute-perturbation attack ([Knowledge-3]): a
// malicious FL client reuses its OWN optimized perturbation t′ against
// another client's data under an iid distribution. The result carries the
// attack outcome; callers also typically report SSIM(t, t′) and the
// accuracy gap, as §V-D does.
func Knowledge3(m *core.CIPModel, attackerT *tensor.Tensor,
	members, nonMembers *datasets.Dataset) Result {
	return ObMALT(m.WithT(attackerT), members, nonMembers)
}

// Knowledge4 is the inverse membership inference attack ([Knowledge-4],
// Table X): knowing CIP deliberately RAISES the loss on original member
// data, the adversary classifies samples with abnormally HIGH
// zero-perturbation loss as members. The attacker commits to the
// high-loss-is-member rule with a median-calibrated threshold; when
// members in fact sit below the median the attack scores below 0.5,
// reproducing the inverted accuracies of Table X.
func Knowledge4(m *core.CIPModel, members, nonMembers *datasets.Dataset) Result {
	probe := m.WithT(m.ZeroT())
	ms := lossesOf(probe, members)
	ns := lossesOf(probe, nonMembers)
	all := append(append([]float64(nil), ms...), ns...)
	sort.Float64s(all)
	median := all[len(all)/2]
	return newResult(ms, ns, median)
}
