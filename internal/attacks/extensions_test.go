package attacks

import (
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

type nnLayer = nn.Layer

// freshCIPShadowNet matches the CIP fixture's data geometry with a plain
// classifier — what an external attacker without the dual-channel secret
// would train as its shadow.
func freshCIPShadowNet() nn.Layer {
	return model.NewClassifier(rand.New(rand.NewSource(22)), model.VGG,
		model.Input{C: 3, H: 8, W: 8}, 10)
}

func TestObMALTCalibratedOnOverfitModel(t *testing.T) {
	f := getFixture(t)
	res := ObMALTCalibrated(f.target, f.members, f.nonMembers, f.shadow)
	if acc := res.Accuracy(); acc < 0.6 {
		t.Fatalf("calibrated MALT accuracy = %v, want ≥0.6 on overfit model", acc)
	}
	// The oracle threshold upper-bounds the calibrated one.
	oracle := ObMALT(f.target, f.members, f.nonMembers)
	if res.Accuracy() > oracle.Accuracy()+1e-9 {
		t.Fatalf("calibrated (%v) must not beat the oracle threshold (%v)",
			res.Accuracy(), oracle.Accuracy())
	}
}

func TestObLabelRobustOnOverfitModel(t *testing.T) {
	f := getFixture(t)
	rng := rand.New(rand.NewSource(31))
	// Use small evaluation subsets: the attack forwards trials× per sample.
	m := f.members.Subset(seq(30))
	n := f.nonMembers.Subset(seq(30))
	res := ObLabelRobust(f.target, m, n, 0.1, 6, rng)
	if acc := res.Accuracy(); acc < 0.6 {
		t.Fatalf("label-only robustness attack accuracy = %v, want ≥0.6 on overfit model", acc)
	}
}

func TestObLabelRobustNearChanceOnUntrained(t *testing.T) {
	f := getFixture(t)
	rng := rand.New(rand.NewSource(32))
	blank := freshNet(f)
	m := f.members.Subset(seq(30))
	n := f.nonMembers.Subset(seq(30))
	res := ObLabelRobust(blank, m, n, 0.1, 6, rng)
	if acc := res.Accuracy(); acc > 0.7 {
		t.Fatalf("label-only robustness attack on untrained model = %v, want ≈0.5", acc)
	}
}

func TestObCalibratedOnOverfitModel(t *testing.T) {
	f := getFixture(t)
	res := ObCalibrated(f.target, f.members, f.nonMembers, f.shadow)
	if acc := res.Accuracy(); acc < 0.6 {
		t.Fatalf("calibrated-difficulty attack accuracy = %v, want ≥0.6", acc)
	}
}

func TestObCalibratedNearChanceOnUntrained(t *testing.T) {
	f := getFixture(t)
	blank := freshNet(f)
	res := ObCalibrated(blank, f.members, f.nonMembers, f.shadow)
	if acc := res.Accuracy(); acc > 0.68 {
		t.Fatalf("calibrated attack on untrained model = %v, want ≈0.5", acc)
	}
}

func TestObCalibratedAgainstCIP(t *testing.T) {
	f := getCIPFixture(t)
	shadowTrain, shadowTest := f.shadow.Clone().Split(f.shadow.Len() / 2)
	sh, err := TrainShadow(func() nnLayer { return freshCIPShadowNet() },
		shadowTrain, shadowTest, 40, 0.04, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	probe := f.evalModel.WithT(f.evalModel.ZeroT())
	res := ObCalibrated(probe, f.members, f.nonMembers, sh)
	trueT := ObMALT(f.evalModel, f.members, f.nonMembers)
	if res.Accuracy() >= trueT.Accuracy() {
		t.Fatalf("calibrated attack without t (%v) should stay below the true-t attack (%v)",
			res.Accuracy(), trueT.Accuracy())
	}
}

func TestResultTPRAtFPR(t *testing.T) {
	f := getFixture(t)
	res := ObMALT(f.target, f.members, f.nonMembers)
	low := res.TPRAtFPR(0.01)
	high := res.TPRAtFPR(0.5)
	if low > high {
		t.Fatalf("TPR must grow with the FPR budget: %v vs %v", low, high)
	}
	// On a fully overfit model some members are identifiable even at 1% FPR.
	if high < 0.5 {
		t.Fatalf("TPR@50%%FPR = %v, want ≥0.5 on overfit model", high)
	}
}

func TestTPRAtFPRNearZeroOnUntrained(t *testing.T) {
	f := getFixture(t)
	blank := freshNet(f)
	res := ObMALT(blank, f.members, f.nonMembers)
	if got := res.TPRAtFPR(0.05); got > 0.35 {
		t.Fatalf("TPR@5%%FPR on untrained model = %v, want small", got)
	}
}

func TestCalibratedMALTAgainstCIP(t *testing.T) {
	f := getCIPFixture(t)
	// The deployable external attacker: a shadow model trained on data
	// from the same distribution calibrates the loss threshold, then the
	// CIP model is queried without the secret t.
	shadowTrain, shadowTest := f.shadow.Clone().Split(f.shadow.Len() / 2)
	sh, err := TrainShadow(func() nnLayer {
		return freshCIPShadowNet()
	}, shadowTrain, shadowTest, 40, 0.04, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	probe := f.evalModel.WithT(f.evalModel.ZeroT())
	res := ObMALTCalibrated(probe, f.members, f.nonMembers, sh)
	oracle := ObMALT(probe, f.members, f.nonMembers)
	if res.Accuracy() > oracle.Accuracy()+1e-9 {
		t.Fatalf("calibrated attack (%v) must not beat oracle (%v) against CIP",
			res.Accuracy(), oracle.Accuracy())
	}
}
