package attacks

import (
	"math"
	"math/rand"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// ObLabel is the label-only output attack (Yeom et al.): predict member
// exactly when the model classifies the sample correctly. Overfit models
// are right on members far more often than on non-members.
func ObLabel(net nn.Layer, members, nonMembers *datasets.Dataset) Result {
	score := func(d *datasets.Dataset) []float64 {
		f := ExtractFeatures(net, d, 64)
		out := make([]float64, len(f.Correct))
		for i, c := range f.Correct {
			if c {
				out[i] = 1
			}
		}
		return out
	}
	return newResult(score(members), score(nonMembers), 0.5)
}

// ObMALT is the Bayes-optimal loss-threshold attack (Sablayrolles et al.,
// "MALT"): predict member when the sample's loss falls below a threshold.
// The threshold is chosen attacker-optimally over the evaluation sets,
// matching the attack's Bayes-optimality framing.
func ObMALT(net nn.Layer, members, nonMembers *datasets.Dataset) Result {
	ms := negate(lossesOf(net, members))
	ns := negate(lossesOf(net, nonMembers))
	return ThresholdResult(ms, ns)
}

func negate(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = -x
	}
	return out
}

// ObMALTCalibrated is Ob-MALT with a threshold calibrated on a shadow
// bundle instead of the attacker-optimal oracle: the attacker thresholds
// at the midpoint between the shadow model's mean member loss and mean
// non-member loss. This is the deployable form of the attack; the oracle
// form (ObMALT) upper-bounds it.
func ObMALTCalibrated(net nn.Layer, members, nonMembers *datasets.Dataset,
	shadow ShadowBundle) Result {
	shadowMember := meanOf(lossesOf(shadow.Net, shadow.Members))
	shadowNon := meanOf(lossesOf(shadow.Net, shadow.NonMembers))
	threshold := -(shadowMember + shadowNon) / 2 // scores are negated losses
	ms := negate(lossesOf(net, members))
	ns := negate(lossesOf(net, nonMembers))
	return newResult(ms, ns, threshold)
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ObLabelRobust is the boundary-distance label-only attack (Choquette-Choo
// et al., ICML'21, the paper's [12]): with only hard labels available, the
// attacker perturbs each input with Gaussian noise several times and
// scores membership by how ROBUSTLY the model keeps classifying it
// correctly — members sit farther from the decision boundary.
func ObLabelRobust(net nn.Layer, members, nonMembers *datasets.Dataset,
	noiseStd float64, trials int, rng *rand.Rand) Result {
	if trials < 1 {
		trials = 8
	}
	score := func(d *datasets.Dataset) []float64 {
		out := make([]float64, d.Len())
		for i := 0; i < d.Len(); i++ {
			x, y := d.Batch(i, i+1)
			robust := 0
			for trial := 0; trial < trials; trial++ {
				xp := x.Clone()
				for j := range xp.Data {
					xp.Data[j] += rng.NormFloat64() * noiseStd
				}
				tensor.ClampInPlace(xp, 0, 1)
				logits, _ := net.Forward(xp, false)
				if nn.Accuracy(logits, y) == 1 {
					robust++
				}
			}
			out[i] = float64(robust) / float64(trials)
		}
		return out
	}
	return ThresholdResult(score(members), score(nonMembers))
}

// ObCalibrated is the difficulty-calibrated loss attack (Watson et al.,
// in the lineage of Carlini et al.'s first-principles critique): instead
// of thresholding the raw loss, it thresholds the GAP between a sample's
// loss under the target and under a shadow model trained on disjoint data
// from the same distribution. Intrinsically hard samples have high loss
// everywhere; members are the samples the target fits unusually well
// relative to their difficulty.
func ObCalibrated(net nn.Layer, members, nonMembers *datasets.Dataset,
	shadow ShadowBundle) Result {
	score := func(d *datasets.Dataset) []float64 {
		target := lossesOf(net, d)
		reference := lossesOf(shadow.Net, d)
		out := make([]float64, len(target))
		for i := range out {
			out[i] = reference[i] - target[i] // high ⇒ easier on target ⇒ member
		}
		return out
	}
	return ThresholdResult(score(members), score(nonMembers))
}

// ObNN is the shadow-model attack with a neural attack head (Shokri et
// al., Salem et al.): an attack network is trained to tell the shadow
// model's member outputs from its non-member outputs — represented as the
// top-3 sorted softmax probabilities — and then applied to the target.
func ObNN(net nn.Layer, members, nonMembers *datasets.Dataset,
	shadow ShadowBundle, rng *rand.Rand) Result {
	const topK = 3

	repr := func(model nn.Layer, d *datasets.Dataset) [][]float64 {
		f := ExtractFeatures(model, d, 64)
		out := make([][]float64, len(f.Probs))
		for i, p := range f.Probs {
			out[i] = sortedTopK(p, topK)
		}
		return out
	}

	// Train the attack network on the shadow bundle.
	trainX := append(repr(shadow.Net, shadow.Members), repr(shadow.Net, shadow.NonMembers)...)
	trainY := make([]int, len(trainX))
	for i := 0; i < shadow.Members.Len(); i++ {
		trainY[i] = 1
	}
	attack := nn.NewSequential(
		nn.NewDense(rng, topK, 32),
		nn.ReLU{},
		nn.NewDense(rng, 32, 2),
	)
	opt := nn.NewAdam(5e-3)
	x := tensor.New(len(trainX), topK)
	for i, f := range trainX {
		copy(x.Data[i*topK:], f)
	}
	for e := 0; e < 150; e++ {
		nn.ZeroGrads(attack.Params())
		logits, cache := attack.Forward(x, true)
		res := nn.SoftmaxCrossEntropy(logits, trainY)
		attack.Backward(cache, res.Grad)
		opt.Step(attack.Params())
	}

	// Apply to the target model's outputs.
	score := func(d *datasets.Dataset) []float64 {
		feats := repr(net, d)
		xt := tensor.New(len(feats), topK)
		for i, f := range feats {
			copy(xt.Data[i*topK:], f)
		}
		logits, _ := attack.Forward(xt, false)
		probs := nn.Softmax(logits)
		out := make([]float64, len(feats))
		for i := range out {
			out[i] = probs.At(i, 1)
		}
		return out
	}
	return newResult(score(members), score(nonMembers), 0.5)
}

// ObBlindMI is the differential-comparison attack (Hui et al., NDSS'21),
// in its DIFF-w/o form: the attacker generates sure non-members (random
// probe inputs), embeds everything through the target's softmax layer, and
// iteratively moves samples out of the suspected-member set whenever doing
// so increases the distance between the two sets' embedding means — the
// differential comparison. Samples still in the member set at convergence
// are predicted members.
func ObBlindMI(net nn.Layer, members, nonMembers *datasets.Dataset, rng *rand.Rand) Result {
	embed := func(d *datasets.Dataset) [][]float64 {
		f := ExtractFeatures(net, d, 64)
		out := make([][]float64, len(f.Probs))
		for i, p := range f.Probs {
			cp := append([]float64(nil), p...)
			// Sorted probabilities make the embedding label-agnostic.
			sortDescending(cp)
			out[i] = cp
		}
		return out
	}

	// Sure non-members: uniform-noise probes of the same shape.
	probe := members.Clone()
	probe.X.RandUniform(rng, 0, 1)
	nonEmb := embed(probe)

	targets := append(embed(members), embed(nonMembers)...)
	inMember := make([]bool, len(targets))
	for i := range inMember {
		inMember[i] = true
	}

	const maxIters = 10
	for it := 0; it < maxIters; it++ {
		moved := false
		base := mmdLinear(nonEmb, selectEmb(targets, inMember, true))
		for i := range targets {
			if !inMember[i] {
				continue
			}
			inMember[i] = false
			with := mmdLinear(append(nonEmb, targets[i]), selectEmb(targets, inMember, true))
			if with > base {
				// Moving i to the non-member side sharpened the split.
				moved = true
				base = with
			} else {
				inMember[i] = true
			}
		}
		if !moved {
			break
		}
	}

	ms := make([]float64, members.Len())
	ns := make([]float64, nonMembers.Len())
	for i := range ms {
		if inMember[i] {
			ms[i] = 1
		}
	}
	for i := range ns {
		if inMember[members.Len()+i] {
			ns[i] = 1
		}
	}
	return newResult(ms, ns, 0.5)
}

func sortDescending(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func selectEmb(embs [][]float64, mask []bool, want bool) [][]float64 {
	var out [][]float64
	for i, e := range embs {
		if mask[i] == want {
			out = append(out, e)
		}
	}
	return out
}

// mmdLinear is the linear-kernel MMD: the distance between set means.
func mmdLinear(a, b [][]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	d := len(a[0])
	diff := make([]float64, d)
	for _, e := range a {
		for j := range diff {
			diff[j] += e[j] / float64(len(a))
		}
	}
	for _, e := range b {
		for j := range diff {
			diff[j] -= e[j] / float64(len(b))
		}
	}
	s := 0.0
	for _, v := range diff {
		s += v * v
	}
	return math.Sqrt(s)
}

// PbBayes is the parameter-based white-box attack (Leino & Fredrikson):
// per-sample features combine the model outputs (loss, confidence,
// entropy, correctness) with the L2 norm of the full parameter gradient —
// information only a white-box attacker has — and a Bayes-style classifier
// (logistic regression) fit on a shadow bundle scores membership.
func PbBayes(net nn.Layer, members, nonMembers *datasets.Dataset,
	shadow ShadowBundle, rng *rand.Rand) Result {
	feats := func(model nn.Layer, d *datasets.Dataset) [][]float64 {
		f := ExtractFeatures(model, d, 64)
		gn := GradientNorms(model, d)
		out := make([][]float64, d.Len())
		for i := range out {
			c := 0.0
			if f.Correct[i] {
				c = 1
			}
			out[i] = []float64{f.Loss[i], f.MaxProb[i], f.Entropy[i], gn[i], c}
		}
		return out
	}

	trainX := append(feats(shadow.Net, shadow.Members), feats(shadow.Net, shadow.NonMembers)...)
	trainY := make([]bool, len(trainX))
	for i := 0; i < shadow.Members.Len(); i++ {
		trainY[i] = true
	}
	clf := FitLogistic(trainX, trainY, 300, 0.2)

	score := func(d *datasets.Dataset) []float64 {
		fs := feats(net, d)
		out := make([]float64, len(fs))
		for i, f := range fs {
			out[i] = clf.Predict(f)
		}
		return out
	}
	return newResult(score(members), score(nonMembers), 0.5)
}
