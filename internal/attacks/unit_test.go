package attacks

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestSortDescending(t *testing.T) {
	xs := []float64{0.2, 0.9, 0.1, 0.5}
	sortDescending(xs)
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(xs))) {
		t.Fatalf("not sorted descending: %v", xs)
	}
}

func TestMMDLinear(t *testing.T) {
	a := [][]float64{{0, 0}, {2, 2}} // mean (1,1)
	b := [][]float64{{1, 1}}         // mean (1,1)
	if got := mmdLinear(a, b); math.Abs(got) > 1e-12 {
		t.Fatalf("equal-mean MMD = %v, want 0", got)
	}
	c := [][]float64{{4, 1}}
	if got := mmdLinear(a, c); math.Abs(got-3) > 1e-12 {
		t.Fatalf("MMD = %v, want 3", got)
	}
	if got := mmdLinear(nil, b); got != 0 {
		t.Fatalf("empty-set MMD = %v, want 0", got)
	}
}

func TestBestThresholdSeparatesOptimally(t *testing.T) {
	// Members at {2,3,4}, non-members at {0,1,5}: the best threshold is in
	// (1,2], classifying 5 of 6 correctly.
	th := bestThreshold([]float64{2, 3, 4}, []float64{0, 1, 5})
	correct := 0
	for _, s := range []float64{2, 3, 4} {
		if s >= th {
			correct++
		}
	}
	for _, s := range []float64{0, 1, 5} {
		if s < th {
			correct++
		}
	}
	if correct != 5 {
		t.Fatalf("best threshold %v yields %d/6 correct, want 5", th, correct)
	}
}

func TestResultStringMentionsMetrics(t *testing.T) {
	r := ThresholdResult([]float64{1, 2}, []float64{-1, 0})
	s := r.String()
	for _, want := range []string{"acc=", "auc=", "precision=", "recall="} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String() missing %q: %s", want, s)
		}
	}
}

func TestGradientNormsPositiveAndPerSample(t *testing.T) {
	f := getFixture(t)
	sub := f.members.Subset([]int{0, 1, 2})
	norms := GradientNorms(f.target, sub)
	if len(norms) != 3 {
		t.Fatalf("got %d norms for 3 samples", len(norms))
	}
	for i, n := range norms {
		if n < 0 || math.IsNaN(n) {
			t.Fatalf("norm[%d] = %v", i, n)
		}
	}
}

func TestGradientNormsMembersSmallerOnOverfit(t *testing.T) {
	// A fully memorized member has near-zero loss gradient; non-members
	// do not — the raw signal behind Pb-Bayes.
	f := getFixture(t)
	m := GradientNorms(f.target, f.members.Subset(seq(20)))
	n := GradientNorms(f.target, f.nonMembers.Subset(seq(20)))
	var ms, ns float64
	for i := range m {
		ms += m[i]
		ns += n[i]
	}
	if ms >= ns {
		t.Fatalf("member mean grad norm (%v) should be below non-members' (%v)", ms/20, ns/20)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNewResultThresholdSemantics(t *testing.T) {
	r := newResult([]float64{1}, []float64{0}, 0.5)
	if !r.Preds[0] || r.Preds[1] {
		t.Fatalf("preds = %v, want [true false]", r.Preds)
	}
	if r.Counts.TP != 1 || r.Counts.TN != 1 {
		t.Fatalf("counts = %+v", r.Counts)
	}
}
