package attacks

import (
	"math"
)

// Logistic is a tiny binary logistic-regression classifier used as the
// attack model head by Pb-Bayes and the internal passive attack. Features
// are standardized internally (fit on the training set).
type Logistic struct {
	W    []float64
	B    float64
	mean []float64
	std  []float64
}

// FitLogistic trains a logistic regression with gradient descent.
func FitLogistic(features [][]float64, labels []bool, epochs int, lr float64) *Logistic {
	if len(features) == 0 {
		return &Logistic{}
	}
	d := len(features[0])
	m := &Logistic{W: make([]float64, d), mean: make([]float64, d), std: make([]float64, d)}

	// Standardize.
	n := float64(len(features))
	for j := 0; j < d; j++ {
		for _, f := range features {
			m.mean[j] += f[j]
		}
		m.mean[j] /= n
		for _, f := range features {
			diff := f[j] - m.mean[j]
			m.std[j] += diff * diff
		}
		m.std[j] = math.Sqrt(m.std[j]/n) + 1e-8
	}
	std := make([][]float64, len(features))
	for i, f := range features {
		row := make([]float64, d)
		for j := range row {
			row[j] = (f[j] - m.mean[j]) / m.std[j]
		}
		std[i] = row
	}

	if epochs <= 0 {
		epochs = 200
	}
	if lr <= 0 {
		lr = 0.1
	}
	for e := 0; e < epochs; e++ {
		gw := make([]float64, d)
		gb := 0.0
		for i, f := range std {
			p := m.predictStd(f)
			t := 0.0
			if labels[i] {
				t = 1
			}
			diff := p - t
			for j := range gw {
				gw[j] += diff * f[j]
			}
			gb += diff
		}
		for j := range m.W {
			m.W[j] -= lr * gw[j] / n
		}
		m.B -= lr * gb / n
	}
	return m
}

func (m *Logistic) predictStd(f []float64) float64 {
	z := m.B
	for j, w := range m.W {
		z += w * f[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict returns the membership probability for a raw feature vector.
func (m *Logistic) Predict(f []float64) float64 {
	if len(m.W) == 0 {
		return 0.5
	}
	std := make([]float64, len(f))
	for j := range f {
		std[j] = (f[j] - m.mean[j]) / m.std[j]
	}
	return m.predictStd(std)
}
