package bench

// The tree-robustness gate: the robust tree's correctness rests on the
// bottom-K row reservoir (internal/fl/robust.Sketch), which is exact up
// to its capacity and a uniform K-subsample above it. This gate measures
// the actual depth-2 merge error of Median and TrimmedMean against the
// flat rule over the full row set and enforces the documented DKW
// quantile envelope (DESIGN.md §15), then compares depth-3 tree round
// tail latency against the flat federation at the same roster.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/cip-fl/cip/internal/fl/robust"
)

// TreeRuleGate is one rule's measured depth-2 sketch error next to its
// theoretical envelope.
type TreeRuleGate struct {
	Rule      string `json:"rule"`
	Rows      int    `json:"rows"`
	SketchCap int    `json:"sketch_cap"`
	Exact     bool   `json:"exact"`
	// MaxAbsErr is the worst per-coordinate |tree − flat| deviation;
	// MaxBound is the worst per-coordinate allowance from the quantile
	// envelope. Every coordinate is checked against its own bound — the
	// maxima are recorded for the report only.
	MaxAbsErr float64 `json:"max_abs_err"`
	MaxBound  float64 `json:"max_bound"`
}

// TreeGateReport is the BENCH_PR10 artifact: sketch-error lines per rule
// plus the flat-vs-depth-3-tree latency pair.
type TreeGateReport struct {
	Note       string `json:"note,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// RankEps is the DKW rank-error ε = sqrt(ln(2/δ)/2K) backing the
	// envelopes, at the recorded confidence δ.
	RankEps    float64        `json:"rank_eps"`
	Delta      float64        `json:"delta"`
	Rules      []TreeRuleGate `json:"rules"`
	ExactRules []TreeRuleGate `json:"exact_rules"`
	Flat       *ScaleResult   `json:"flat"`
	Tree       *ScaleResult   `json:"tree"`
}

// quantile returns the empirical q-quantile of sorted (ascending) vals,
// widened outward to the enclosing order statistic so the envelope never
// under-covers from rank rounding.
func quantile(sorted []float64, q float64, up bool) float64 {
	n := len(sorted)
	r := q * float64(n-1)
	var i int
	if up {
		i = int(math.Ceil(r))
	} else {
		i = int(math.Floor(r))
	}
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	return sorted[i]
}

// treeRows synthesizes n heavy-tailed client rows: a per-coordinate
// offset plus unit noise, with 5% gross outliers — the population the
// robust rules exist for.
func treeRows(rng *rand.Rand, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, dim)
		for j := range row {
			row[j] = 0.1*float64(j) + rng.NormFloat64()
			if rng.Float64() < 0.05 {
				row[j] += 50 * (rng.Float64()*2 - 1)
			}
		}
		rows[i] = row
	}
	return rows
}

// mergeThroughTree pushes rows through a depth-2 sketch tree: `leaves`
// client-facing reservoirs, merged into one root reservoir — exactly the
// algebra the transport layer runs per round.
func mergeThroughTree(rows [][]float64, leaves, capRows int) (*robust.Sketch, error) {
	root := robust.NewSketch(capRows)
	per := (len(rows) + leaves - 1) / leaves
	for l := 0; l < leaves; l++ {
		lo, hi := l*per, (l+1)*per
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			continue
		}
		sk := robust.NewSketch(capRows)
		for i := lo; i < hi; i++ {
			sk.Add(robust.KeyClient(i), rows[i])
		}
		if err := root.Merge(sk); err != nil {
			return nil, err
		}
	}
	return root, nil
}

// gateRule measures one rule's tree-vs-flat deviation and checks each
// coordinate against its quantile envelope: for the median, the true
// (½±ε)-quantile window; for an f-trimmed mean, ε/(1−2f) of the kept
// window's width (the largest shift replacing an ε rank-fraction of the
// kept mass can induce).
func gateRule(name string, agg robust.Aggregator, rows [][]float64, leaves, capRows int, eps float64, trimFrac float64) (TreeRuleGate, error) {
	g := TreeRuleGate{Rule: name, Rows: len(rows), SketchCap: capRows}
	dim := len(rows[0])
	center := make([]float64, dim)

	flat, _, err := agg.Aggregate(center, rows, nil)
	if err != nil {
		return g, fmt.Errorf("flat %s: %w", name, err)
	}
	sk, err := mergeThroughTree(rows, leaves, capRows)
	if err != nil {
		return g, err
	}
	g.Exact = sk.Exact()
	tree, _, err := agg.Aggregate(center, sk.RowsView(), nil)
	if err != nil {
		return g, fmt.Errorf("tree %s: %w", name, err)
	}

	col := make([]float64, len(rows))
	for j := 0; j < dim; j++ {
		for i, r := range rows {
			col[i] = r[j]
		}
		sort.Float64s(col)
		errAbs := math.Abs(tree[j] - flat[j])
		var bound float64
		if g.Exact {
			bound = 0
		} else if trimFrac > 0 {
			bound = eps / (1 - 2*trimFrac) * (quantile(col, 1-trimFrac, true) - quantile(col, trimFrac, false))
		} else {
			lo, hi := quantile(col, 0.5-eps, false), quantile(col, 0.5+eps, true)
			bound = hi - lo
			if tree[j] < lo-1e-12 || tree[j] > hi+1e-12 {
				return g, fmt.Errorf(
					"tree gate: %s coordinate %d: tree estimate %v outside the (½±ε) envelope [%v, %v]",
					name, j, tree[j], lo, hi)
			}
		}
		if errAbs > g.MaxAbsErr {
			g.MaxAbsErr = errAbs
		}
		if bound > g.MaxBound {
			g.MaxBound = bound
		}
		if errAbs > bound+1e-12 {
			return g, fmt.Errorf(
				"tree gate: %s coordinate %d: tree-vs-flat error %v exceeds the documented bound %v",
				name, j, errAbs, bound)
		}
	}
	return g, nil
}

// TreeGate runs the full gate. latency=false skips the scale-load
// latency pair (tests exercise the sketch-error lines alone).
func TreeGate(latency bool) (*TreeGateReport, error) {
	const (
		dim      = 32
		nApprox  = 256
		nExact   = 48
		leaves   = 8
		capRows  = 64
		delta    = 1e-6
		trimFrac = 0.2
	)
	rep := &TreeGateReport{
		Delta:   delta,
		RankEps: robust.SampleRankError(capRows, delta),
	}
	rng := rand.New(rand.NewSource(41))
	approx := treeRows(rng, nApprox, dim)
	exact := treeRows(rng, nExact, dim)

	rules := []struct {
		name string
		agg  robust.Aggregator
		frac float64
	}{
		{"median", robust.Median{}, 0},
		{"trimmed", robust.TrimmedMean{Frac: trimFrac}, trimFrac},
	}
	for _, r := range rules {
		g, err := gateRule(r.name, r.agg, approx, leaves, capRows, rep.RankEps, r.frac)
		if err != nil {
			return rep, err
		}
		if g.Exact {
			return rep, fmt.Errorf("tree gate: %d rows under cap %d stayed exact; the approximate regime went unexercised", nApprox, capRows)
		}
		rep.Rules = append(rep.Rules, g)

		ge, err := gateRule(r.name, r.agg, exact, leaves, capRows, rep.RankEps, r.frac)
		if err != nil {
			return rep, err
		}
		if !ge.Exact || ge.MaxAbsErr != 0 {
			return rep, fmt.Errorf("tree gate: %s with %d rows under cap %d must be bit-exact (err %v)",
				r.name, nExact, capRows, ge.MaxAbsErr)
		}
		rep.ExactRules = append(rep.ExactRules, ge)
	}

	if !latency {
		return rep, nil
	}
	flatCfg := ScaleConfig{Clients: 2000, Dim: 256, Rounds: 3}
	flat, err := RunScaleLoad(flatCfg)
	if err != nil {
		return rep, fmt.Errorf("tree gate: flat load: %w", err)
	}
	treeCfg := flatCfg
	treeCfg.Leaves, treeCfg.Interiors = leaves, 2
	tree, err := RunScaleLoad(treeCfg)
	if err != nil {
		return rep, fmt.Errorf("tree gate: tree load: %w", err)
	}
	rep.Flat, rep.Tree = flat, tree
	// The tree adds two store-and-forward hops per round; the line is a
	// generous relative bound so a loaded CI machine doesn't flake it,
	// while still catching a quadratic or stalling regression.
	if limit := 5*flat.P99RoundMs + 50; tree.P99RoundMs > limit {
		return rep, fmt.Errorf(
			"tree gate: depth-3 tree p99 round latency %.1fms exceeds %.1fms (5x flat p99 %.1fms + 50ms)",
			tree.P99RoundMs, limit, flat.P99RoundMs)
	}
	return rep, nil
}
