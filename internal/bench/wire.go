package bench

// Wire-path workloads: decode cost and bytes-per-update for the legacy
// gob stream versus the binary frame codec, at the same 200k-parameter
// model dimensionality the robust-aggregation benchmarks use. Each spec
// reports wire-bytes/op — the per-update transfer size the compression
// work drives down — alongside ns/op, so cmd/cipbench's -wire-gate can
// hold the ≥10x byte-reduction and decode-speed lines.

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/wire"
)

const wireDim = 200_000

func wireUpdate() (fl.Update, []float64) {
	rng := rand.New(rand.NewSource(9))
	global := make([]float64, wireDim)
	params := make([]float64, wireDim)
	for i := range params {
		global[i] = rng.NormFloat64()
		params[i] = global[i] + 0.01*rng.NormFloat64()
	}
	return fl.Update{ClientID: 1, NumSamples: 64, TrainLoss: 0.5, Params: params}, global
}

// WireGobDecode is the legacy inbound path: gob-decode one dense update
// from a pre-encoded stream, exactly the bytes-per-update the old
// protocol moves.
func WireGobDecode(b *testing.B) {
	u, _ := wireUpdate()
	var encoded bytes.Buffer
	if err := gob.NewEncoder(&encoded).Encode(u); err != nil {
		b.Fatal(err)
	}
	raw := encoded.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Gob streams carry type info once per encoder, so decode
		// symmetry requires a fresh decoder per op — matching the
		// coordinator, which keeps one decoder per connection but pays
		// the reflection walk on every update.
		var got fl.Update
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&got); err != nil {
			b.Fatal(err)
		}
		if len(got.Params) != wireDim {
			b.Fatal("short decode")
		}
	}
	b.ReportMetric(float64(len(raw)), "wire-bytes/op")
}

// wireFrameDecode benchmarks ReadFrame + DecodeUpdate + Densify for one
// pre-encoded update frame — the full binary inbound path.
func wireFrameDecode(b *testing.B, cfg compress.Config) {
	u, global := wireUpdate()
	var frame []byte
	var err error
	if cfg.Mode == compress.None {
		frame, err = wire.AppendUpdateFrame(nil, u, nil, compress.None)
	} else {
		delta := make([]float64, wireDim)
		for i := range delta {
			delta[i] = u.Params[i] - global[i]
		}
		var d *compress.Delta
		d, err = cfg.Compress(delta)
		if err == nil {
			head := u
			head.Params = nil
			frame, err = wire.AppendUpdateFrame(nil, head, d, cfg.Mode)
		}
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := wire.ReadFrame(bytes.NewReader(frame), len(frame))
		if err != nil {
			b.Fatal(err)
		}
		got, err := wire.DecodeUpdate(f.Mode, f.Payload)
		if err != nil {
			b.Fatal(err)
		}
		dense, err := fl.Densify(got, global)
		if err != nil {
			b.Fatal(err)
		}
		if len(dense.Params) != wireDim {
			b.Fatal("short decode")
		}
		f.Release()
	}
	b.ReportMetric(float64(len(frame)), "wire-bytes/op")
}

// WireBinaryDecode is the uncompressed binary frame: same dense payload
// as WireGobDecode, zero reflection.
func WireBinaryDecode(b *testing.B) {
	wireFrameDecode(b, compress.Config{Mode: compress.None})
}

// WireTopK8Decode is the headline compressed shape: top-k (default 1%)
// with int8 quantization — the mode the ≥10x byte-reduction gate holds
// against the gob baseline.
func WireTopK8Decode(b *testing.B) {
	wireFrameDecode(b, compress.Config{Mode: compress.TopKQ8}.WithDefaults())
}

// WireTopK16Decode is the conservative compressed shape: top-k with
// int16 quantization.
func WireTopK16Decode(b *testing.B) {
	wireFrameDecode(b, compress.Config{Mode: compress.TopKQ16}.WithDefaults())
}
