package bench

import "testing"

// Small-roster smoke coverage for the scale harness: every topology the
// load generator exercises must run to completion in-process.
func TestScaleLoadFlat(t *testing.T) {
	for _, cfg := range []ScaleConfig{
		{Clients: 40, Dim: 64, Rounds: 3},
		{Clients: 40, Dim: 64, Rounds: 3, Buffered: true},
		{Clients: 40, Dim: 64, Rounds: 3, Window: 4, ReadBuf: 256},
	} {
		res, err := RunScaleLoad(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Mode != cfg.mode() || res.RoundsPerSec <= 0 {
			t.Fatalf("%+v: implausible result %+v", cfg, res)
		}
	}
}

func TestScaleLoadTree(t *testing.T) {
	res, err := RunScaleLoad(ScaleConfig{Clients: 30, Dim: 64, Rounds: 3, Leaves: 3, ReadBuf: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "tree" || res.Leaves != 3 {
		t.Fatalf("implausible result %+v", res)
	}
}

func TestScaleConfigValidation(t *testing.T) {
	if _, err := RunScaleLoad(ScaleConfig{Clients: 0, Dim: 1, Rounds: 1}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := RunScaleLoad(ScaleConfig{Clients: 10, Dim: 8, Rounds: 1, Leaves: 3, Buffered: true}); err == nil {
		t.Fatal("buffered tree accepted")
	}
	if _, err := RunScaleLoad(ScaleConfig{Clients: 3, Dim: 8, Rounds: 1, Leaves: 3}); err == nil {
		t.Fatal("starved leaves accepted")
	}
}
