package bench

import "testing"

// go-bench entry points for the tracked workloads, so regressions surface
// in ordinary `go test -bench` runs as well as in `make bench`.

func BenchmarkMatMul256(b *testing.B)           { MatMul256(b) }
func BenchmarkMatMul256F32(b *testing.B)        { MatMul256F32(b) }
func BenchmarkMatMulTransB128(b *testing.B)     { MatMulTransB128(b) }
func BenchmarkConvLowering(b *testing.B)        { ConvLowering(b) }
func BenchmarkConvLoweringF32(b *testing.B)     { ConvLoweringF32(b) }
func BenchmarkConvForwardBackward(b *testing.B) { ConvForwardBackward(b) }
func BenchmarkReluFwd1M(b *testing.B)           { ReluFwd1M(b) }
func BenchmarkReluFwd1MF32(b *testing.B)        { ReluFwd1MF32(b) }
func BenchmarkReluGate1M(b *testing.B)          { ReluGate1M(b) }
func BenchmarkReluGate1MF32(b *testing.B)       { ReluGate1MF32(b) }
func BenchmarkBiasAxpy1M(b *testing.B)          { BiasAxpy1M(b) }
func BenchmarkBiasAxpy1MF32(b *testing.B)       { BiasAxpy1MF32(b) }
func BenchmarkFig4ClientsSweep(b *testing.B)    { Fig4ClientsSweep(b) }
func BenchmarkFig4ClientsSweepF32(b *testing.B) { Fig4ClientsSweepF32(b) }
func BenchmarkRobustAggMean(b *testing.B)       { RobustAggMean(b) }
func BenchmarkRobustAggMedian(b *testing.B)     { RobustAggMedian(b) }
func BenchmarkRobustAggTrimmed(b *testing.B)    { RobustAggTrimmed(b) }
func BenchmarkRobustAggClipped(b *testing.B)    { RobustAggClipped(b) }
func BenchmarkRobustRoundMean(b *testing.B)     { RobustRoundMean(b) }
func BenchmarkRobustRoundMedian(b *testing.B)   { RobustRoundMedian(b) }
func BenchmarkRobustRoundTrimmed(b *testing.B)  { RobustRoundTrimmed(b) }
func BenchmarkWireGobDecode(b *testing.B)       { WireGobDecode(b) }
func BenchmarkWireBinaryDecode(b *testing.B)    { WireBinaryDecode(b) }
func BenchmarkWireTopK8Decode(b *testing.B)     { WireTopK8Decode(b) }
func BenchmarkWireTopK16Decode(b *testing.B)    { WireTopK16Decode(b) }
