package bench

import "testing"

// go-bench entry points for the tracked workloads, so regressions surface
// in ordinary `go test -bench` runs as well as in `make bench`.

func BenchmarkMatMul256(b *testing.B)           { MatMul256(b) }
func BenchmarkMatMulTransB128(b *testing.B)     { MatMulTransB128(b) }
func BenchmarkConvLowering(b *testing.B)        { ConvLowering(b) }
func BenchmarkConvForwardBackward(b *testing.B) { ConvForwardBackward(b) }
func BenchmarkFig4ClientsSweep(b *testing.B)    { Fig4ClientsSweep(b) }
