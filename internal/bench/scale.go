package bench

// The million-client scale harness: federations over in-memory net.Pipe
// connections, so a single process can host a coordinator (or a
// leaf/root tree) plus 10⁵ lightweight clients with no sockets, no file
// descriptors, and no kernel buffers. It measures what the streaming
// fold is for — peak aggregator memory versus roster size — alongside
// round throughput and tail latency.
//
// Memory accounting caveat: clients live in the same process as the
// coordinator, so absolute numbers include client-side state (goroutine
// stacks, per-conn gob codecs, read buffers). The comparison that
// matters is relative: the same client fleet under BufferRounds versus
// the streaming fold isolates the coordinator's update buffering, which
// is the only O(roster × params) term. PeakRSSBytes (VmHWM) is
// process-monotonic — run the streaming phase before the buffered one.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/transport"
)

// memAddr is the placeholder address of an in-memory listener.
type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// memListener hands out net.Pipe connections: Dial synthesizes a pipe
// and queues the server end for Accept. Close is idempotent (the
// coordinator's rejoin loop and the harness teardown may both close it).
type memListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newMemListener(backlog int) *memListener {
	return &memListener{conns: make(chan net.Conn, backlog), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{} }

// Dial is the client-side counterpart, shaped to drop into
// transport.RetryConfig.Dial (the addr is ignored).
func (l *memListener) Dial(string) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		server.Close() //nolint:errcheck
		client.Close() //nolint:errcheck
		return nil, net.ErrClosed
	}
}

// loadClient is the cheapest possible federation participant: its update
// aliases the decoded global instead of copying it, and nothing persists
// between rounds, so an idle client holds no parameter state — exactly
// the property that lets one process host 10⁵ of them.
type loadClient struct{ id int }

func (c *loadClient) ID() int         { return c.id }
func (c *loadClient) NumSamples() int { return 1 }
func (c *loadClient) TrainLocal(round int, global []float64) (fl.Update, error) {
	return fl.Update{Params: global, NumSamples: 1, TrainLoss: 1}, nil
}

// ScaleConfig parameterizes one load-harness federation.
type ScaleConfig struct {
	// Clients is the roster size (split evenly across Leaves in tree mode).
	Clients int
	// Dim is the parameter-vector length; one dense update is 8·Dim bytes.
	Dim int
	// Rounds is the federation length.
	Rounds int
	// Buffered forces the legacy materialize-then-aggregate round path —
	// the baseline the streaming fold is measured against.
	Buffered bool
	// Window is the streaming fold's admission window
	// (Coordinator.MaxInflightUpdates); 0 keeps the default.
	Window int
	// Leaves, when > 0, runs a leaf/root tree with this many in-process
	// leaf aggregators instead of a flat coordinator.
	Leaves int
	// Interiors, when > 0 in tree mode, inserts this many interior
	// aggregators between the root and the leaves (a depth-3 tree);
	// leaves attach to interiors round-robin.
	Interiors int
	// SubtreeQuorum sets MinQuorum on every leaf and interior node
	// (0 keeps the nodes fail-stop).
	SubtreeQuorum int
	// CoverageFloor sets Coordinator.CoverageFloor on every partial-
	// accepting node (root and interiors).
	CoverageFloor float64
	// ReadBuf shrinks every per-connection read buffer
	// (Coordinator.ReadBufSize); 0 keeps bufio's 4 KiB default.
	ReadBuf int
}

// ScaleResult is one harness run's report, JSON-shaped for BENCH files.
type ScaleResult struct {
	Mode         string  `json:"mode"` // streaming | buffered | tree
	Clients      int     `json:"clients"`
	Dim          int     `json:"dim"`
	Rounds       int     `json:"rounds"`
	Leaves       int     `json:"leaves,omitempty"`
	Interiors    int     `json:"interiors,omitempty"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// P50/P99 are over per-round wall times after the first round (round
	// 0 absorbs the roster accept and would dominate the tail).
	P50RoundMs float64 `json:"p50_round_ms"`
	P99RoundMs float64 `json:"p99_round_ms"`
	// PeakHeapBytes is the sampled max of runtime HeapInuse during the
	// run minus the pre-run level: the federation's heap footprint.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// PeakRSSBytes is VmHWM from /proc/self/status at run end. It is
	// monotonic over the process lifetime; 0 when unreadable.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
}

func (c ScaleConfig) mode() string {
	switch {
	case c.Leaves > 0:
		return "tree"
	case c.Buffered:
		return "buffered"
	default:
		return "streaming"
	}
}

// roundClock turns Coordinator.AfterRound callbacks into per-round wall
// times, skipping round 0 (it includes the accept phase).
type roundClock struct {
	prev      time.Time
	durations []time.Duration
}

func (rc *roundClock) afterRound(int) error {
	now := time.Now()
	if !rc.prev.IsZero() {
		rc.durations = append(rc.durations, now.Sub(rc.prev))
	}
	rc.prev = now
	return nil
}

func percentile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(len(s))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// samplePeakHeap polls HeapInuse until stop closes, tracking the max.
func samplePeakHeap(stop <-chan struct{}, peak *uint64) {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	var ms runtime.MemStats
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		runtime.ReadMemStats(&ms)
		if ms.HeapInuse > atomic.LoadUint64(peak) {
			atomic.StoreUint64(peak, ms.HeapInuse)
		}
	}
}

// vmHWMBytes reads the process peak RSS from /proc/self/status; 0 when
// the file or field is unavailable (non-Linux).
func vmHWMBytes() uint64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseUint(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// firstErr collects the first failure across a client fleet.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) set(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// RunScaleLoad runs one in-process federation per cfg and reports
// throughput, tail latency, and memory. Flat (Leaves == 0) or tree.
func RunScaleLoad(cfg ScaleConfig) (*ScaleResult, error) {
	if cfg.Clients < 1 || cfg.Dim < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("scale: Clients, Dim, and Rounds must be positive (got %d, %d, %d)",
			cfg.Clients, cfg.Dim, cfg.Rounds)
	}
	if cfg.Leaves > 0 {
		if cfg.Buffered {
			return nil, fmt.Errorf("scale: tree mode has no buffered baseline (the root always streams partials)")
		}
		if cfg.Clients < 2*cfg.Leaves {
			return nil, fmt.Errorf("scale: %d clients cannot cover %d leaves", cfg.Clients, cfg.Leaves)
		}
		if cfg.Interiors > cfg.Leaves {
			return nil, fmt.Errorf("scale: %d leaves cannot cover %d interiors", cfg.Leaves, cfg.Interiors)
		}
	} else if cfg.Interiors > 0 {
		return nil, fmt.Errorf("scale: Interiors requires tree mode (Leaves > 0)")
	}

	// Settle the heap so PeakHeapBytes measures this run, not leftovers
	// from a previous phase in the same process.
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	stopSampling := make(chan struct{})
	peak := before.HeapInuse
	go samplePeakHeap(stopSampling, &peak)

	clock := &roundClock{}
	start := time.Now()
	var err error
	if cfg.Leaves > 0 {
		err = runScaleTree(cfg, clock)
	} else {
		err = runScaleFlat(cfg, clock)
	}
	elapsed := time.Since(start)
	close(stopSampling)
	if err != nil {
		return nil, err
	}

	heap := atomic.LoadUint64(&peak)
	if heap > before.HeapInuse {
		heap -= before.HeapInuse
	} else {
		heap = 0
	}
	res := &ScaleResult{
		Mode:          cfg.mode(),
		Clients:       cfg.Clients,
		Dim:           cfg.Dim,
		Rounds:        cfg.Rounds,
		Leaves:        cfg.Leaves,
		Interiors:     cfg.Interiors,
		ElapsedSec:    elapsed.Seconds(),
		RoundsPerSec:  float64(cfg.Rounds) / elapsed.Seconds(),
		P50RoundMs:    float64(percentile(clock.durations, 0.50)) / float64(time.Millisecond),
		P99RoundMs:    float64(percentile(clock.durations, 0.99)) / float64(time.Millisecond),
		PeakHeapBytes: heap,
		PeakRSSBytes:  vmHWMBytes(),
	}
	return res, nil
}

// launchClients starts n loadClients (ids id0..id0+n-1) against dial and
// returns a wait func.
func launchClients(dial func(string) (net.Conn, error), id0, n int, errs *firstErr) func() {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs.set(transport.RunClientRetry("mem", &loadClient{id: id}, transport.RetryConfig{
				MaxAttempts: 1, Codec: "binary", Dial: dial,
			}))
		}(id0 + i)
	}
	return wg.Wait
}

func runScaleFlat(cfg ScaleConfig, clock *roundClock) error {
	ln := newMemListener(cfg.Clients)
	defer ln.Close() //nolint:errcheck
	coord := &transport.Coordinator{
		NumClients:         cfg.Clients,
		Rounds:             cfg.Rounds,
		Initial:            make([]float64, cfg.Dim),
		Codec:              "binary",
		BufferRounds:       cfg.Buffered,
		MaxInflightUpdates: cfg.Window,
		ReadBufSize:        cfg.ReadBuf,
		AfterRound:         clock.afterRound,
	}
	var (
		coordErr error
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, coordErr = coord.RunWithListener(ln, nil)
	}()
	var errs firstErr
	waitClients := launchClients(ln.Dial, 0, cfg.Clients, &errs)
	wg.Wait()
	waitClients()
	if coordErr != nil {
		return fmt.Errorf("scale: coordinator: %w", coordErr)
	}
	if errs.err != nil {
		return fmt.Errorf("scale: client: %w", errs.err)
	}
	return nil
}

func runScaleTree(cfg ScaleConfig, clock *roundClock) error {
	top := cfg.Leaves
	if cfg.Interiors > 0 {
		top = cfg.Interiors
	}
	rootLn := newMemListener(top)
	defer rootLn.Close() //nolint:errcheck
	root := &transport.Coordinator{
		NumClients:         top,
		Rounds:             cfg.Rounds,
		Initial:            make([]float64, cfg.Dim),
		Codec:              "binary",
		AcceptPartials:     true,
		MinQuorum:          cfg.SubtreeQuorum,
		CoverageFloor:      cfg.CoverageFloor,
		MaxInflightUpdates: cfg.Window,
		ReadBufSize:        cfg.ReadBuf,
		AfterRound:         clock.afterRound,
	}
	var (
		rootErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, rootErr = root.RunWithListener(rootLn, nil)
	}()

	var errs firstErr
	waits := make([]func(), 0, 2*cfg.Leaves+cfg.Interiors)

	// Optional interior tier: leaves attach to interiors round-robin, so
	// interior i serves the leaves with ID ≡ i (mod Interiors).
	parentDial := rootLn.Dial
	leafDial := func(int) func(string) (net.Conn, error) { return parentDial }
	if cfg.Interiors > 0 {
		dials := make([]func(string) (net.Conn, error), cfg.Interiors)
		for i := 0; i < cfg.Interiors; i++ {
			kids := (cfg.Leaves - i + cfg.Interiors - 1) / cfg.Interiors
			iln := newMemListener(kids)
			defer iln.Close() //nolint:errcheck
			dials[i] = iln.Dial
			interior := &transport.Leaf{
				ID:   i,
				Root: "mem",
				Local: transport.Coordinator{
					NumClients:         kids,
					Initial:            make([]float64, cfg.Dim),
					Codec:              "binary",
					AcceptPartials:     true,
					MinQuorum:          cfg.SubtreeQuorum,
					CoverageFloor:      cfg.CoverageFloor,
					MaxInflightUpdates: cfg.Window,
					ReadBufSize:        cfg.ReadBuf,
				},
				Retry: transport.RetryConfig{MaxAttempts: 1, Dial: rootLn.Dial},
			}
			var iwg sync.WaitGroup
			iwg.Add(1)
			go func(interior *transport.Leaf, iln *memListener) {
				defer iwg.Done()
				if _, err := interior.RunWithListener(iln, nil); err != nil {
					errs.set(fmt.Errorf("interior %d: %w", interior.ID, err))
				}
			}(interior, iln)
			waits = append(waits, iwg.Wait)
		}
		leafDial = func(l int) func(string) (net.Conn, error) { return dials[l%cfg.Interiors] }
	}

	share := cfg.Clients / cfg.Leaves
	for l := 0; l < cfg.Leaves; l++ {
		n := share
		if l == cfg.Leaves-1 {
			n = cfg.Clients - share*(cfg.Leaves-1)
		}
		ln := newMemListener(n)
		defer ln.Close() //nolint:errcheck
		leaf := &transport.Leaf{
			ID:   l / max(cfg.Interiors, 1),
			Root: "mem",
			Local: transport.Coordinator{
				NumClients:         n,
				Initial:            make([]float64, cfg.Dim),
				Codec:              "binary",
				MinQuorum:          cfg.SubtreeQuorum,
				MaxInflightUpdates: cfg.Window,
				ReadBufSize:        cfg.ReadBuf,
			},
			Retry: transport.RetryConfig{MaxAttempts: 1, Dial: leafDial(l)},
		}
		var lwg sync.WaitGroup
		lwg.Add(1)
		go func(leaf *transport.Leaf, ln *memListener) {
			defer lwg.Done()
			if _, err := leaf.RunWithListener(ln, nil); err != nil {
				errs.set(fmt.Errorf("leaf %d: %w", leaf.ID, err))
			}
		}(leaf, ln)
		waits = append(waits, lwg.Wait, launchClients(ln.Dial, l*share, n, &errs))
	}

	wg.Wait()
	for _, wait := range waits {
		wait()
	}
	if rootErr != nil {
		return fmt.Errorf("scale: root: %w", rootErr)
	}
	if errs.err != nil {
		return fmt.Errorf("scale: %w", errs.err)
	}
	return nil
}

// ScaleGate runs the streaming-vs-buffered pair at one roster size and
// returns both results plus the heap-footprint reduction factor. The
// streaming phase runs first so the monotonic VmHWM still reflects it.
// Both runs shrink per-connection read buffers the way a real large
// roster would; the parameter dimension must be large enough that the
// O(roster × params) buffered column dominates the fixed per-connection
// overhead (goroutine stacks, handshake codecs) or the ratio measures
// that overhead instead.
func ScaleGate(clients, dim, rounds int) (streaming, buffered *ScaleResult, ratio float64, err error) {
	cfg := ScaleConfig{Clients: clients, Dim: dim, Rounds: rounds, ReadBuf: 256}
	streaming, err = RunScaleLoad(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg.Buffered = true
	buffered, err = RunScaleLoad(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if streaming.PeakHeapBytes > 0 {
		ratio = float64(buffered.PeakHeapBytes) / float64(streaming.PeakHeapBytes)
	}
	return streaming, buffered, ratio, nil
}
