// Package bench defines the repository's tracked performance workloads in
// one place, so `go test -bench` (see bench_test.go) and the cmd/cipbench
// regression harness (`make bench` → BENCH_PR3.json) measure the same code.
// Kernel-level shapes mirror the canonical micro-benchmarks in
// internal/tensor and internal/nn; Fig4ClientsSweep is the end-to-end
// federation workload the compute runtime exists for.
package bench

import (
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/robust"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// Spec is one tracked workload: a benchmark body plus the floating-point
// work per op, so the harness can report GFLOP/s (0 disables the rate).
type Spec struct {
	Name  string
	FLOPs float64
	Fn    func(b *testing.B)
}

// convLoweringFLOPs counts the three GEMMs in one ConvLowering op:
// rows = 16·16·16 output positions, k = 8·3·3, 16 output channels.
const convLoweringFLOPs = 3 * 2 * (16 * 16 * 16) * (8 * 3 * 3) * 16

// Specs returns the tracked workloads in reporting order. The -f32
// variants run the same shapes through the float32 compute tier; the
// precision gate in cmd/cipbench compares each pair.
func Specs() []Spec {
	return []Spec{
		{"MatMul256", 2 * 256 * 256 * 256, MatMul256},
		{"MatMul256-f32", 2 * 256 * 256 * 256, MatMul256F32},
		{"MatMulTransB128", 2 * 128 * 128 * 128, MatMulTransB128},
		{"ConvLowering", convLoweringFLOPs, ConvLowering},
		{"ConvLowering-f32", convLoweringFLOPs, ConvLoweringF32},
		{"ConvForwardBackward", 0, ConvForwardBackward},
		{"ReluFwd1M", 0, ReluFwd1M},
		{"ReluFwd1M-f32", 0, ReluFwd1MF32},
		{"ReluGate1M", 0, ReluGate1M},
		{"ReluGate1M-f32", 0, ReluGate1MF32},
		{"BiasAxpy1M", 0, BiasAxpy1M},
		{"BiasAxpy1M-f32", 0, BiasAxpy1MF32},
		{"Fig4ClientsSweep", 0, Fig4ClientsSweep},
		{"Fig4ClientsSweep-f32", 0, Fig4ClientsSweepF32},
		{"RobustAggMean", 0, RobustAggMean},
		{"RobustAggMedian", 0, RobustAggMedian},
		{"RobustAggTrimmed", 0, RobustAggTrimmed},
		{"RobustAggClipped", 0, RobustAggClipped},
		{"RobustRoundMean", 0, RobustRoundMean},
		{"RobustRoundMedian", 0, RobustRoundMedian},
		{"RobustRoundTrimmed", 0, RobustRoundTrimmed},
		{"WireGobDecode", 0, WireGobDecode},
		{"WireBinaryDecode", 0, WireBinaryDecode},
		{"WireTopK8Decode", 0, WireTopK8Decode},
		{"WireTopK16Decode", 0, WireTopK16Decode},
	}
}

func benchMats(n int) (*tensor.Tensor, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(1))
	a, b := tensor.New(n, n), tensor.New(n, n)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)
	return a, b
}

func benchMats32(n int) (*tensor.Tensor32, *tensor.Tensor32) {
	rng := rand.New(rand.NewSource(1))
	a, b := tensor.New32(n, n), tensor.New32(n, n)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)
	return a, b
}

// withF32 runs a tracked workload under the float32 compute tier,
// restoring the f64 default afterwards so neighboring workloads are
// unaffected.
func withF32(fn func(b *testing.B)) func(b *testing.B) {
	return func(b *testing.B) {
		tensor.SetPrecision(tensor.F32)
		defer tensor.SetPrecision(tensor.F64)
		fn(b)
	}
}

// MatMul256 is the headline dense GEMM: 256×256 · 256×256.
func MatMul256(b *testing.B) {
	x, y := benchMats(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// MatMul256F32 is the same headline GEMM on the float32 tier — the
// precision gate asserts it runs ≥2x faster than MatMul256.
func MatMul256F32(b *testing.B) {
	x, y := benchMats32(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul32(x, y)
	}
}

// MatMulTransB128 is the dense layer's forward shape: a · bᵀ at 128.
func MatMulTransB128(b *testing.B) {
	x, y := benchMats(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTransB(x, y)
	}
}

// ConvLowering is the conv layer's full compute pipeline on pooled buffers
// (im2col, forward GEMM with fused bias, weight-gradient GEMM,
// input-gradient GEMM, col2im). Steady state allocates nothing.
func ConvLowering(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := tensor.ConvGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	const n, outC = 16, 16
	k := g.InC * g.KH * g.KW
	rows := n * g.OutH() * g.OutW()
	x := tensor.New(n, g.InC, g.InH, g.InW)
	x.RandNormal(rng, 0, 1)
	w := tensor.New(outC, k)
	w.RandNormal(rng, 0, 1)
	bias := make([]float64, outC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols := tensor.GetTensor(rows, k)
		tensor.Im2ColInto(cols, x, g)
		prod := tensor.GetTensor(rows, outC)
		tensor.MatMulTransBBiasInto(prod, cols, w, bias)
		dW := tensor.GetTensor(outC, k)
		tensor.MatMulTransAInto(dW, prod, cols)
		tensor.PutTensor(dW)
		tensor.MatMulInto(cols, prod, w) // reuse cols as grad-columns dst
		dx := tensor.GetTensor(n, g.InC, g.InH, g.InW)
		tensor.Col2ImInto(dx, cols, n, g)
		tensor.PutTensor(dx)
		tensor.PutTensor(prod)
		tensor.PutTensor(cols)
	}
}

// ConvLoweringF32 is ConvLowering under the F32 policy: identical f64
// tensors, but every GEMM narrows to the float32 kernel internally — the
// mixed path a conv net actually exercises when trained with -precision f32.
func ConvLoweringF32(b *testing.B) { withF32(ConvLowering)(b) }

// reluBench1M builds the 1M-element activation tensors the elementwise
// micro-benchmarks share.
const reluLen = 1 << 20

// ReluFwd1M is the f64 rectifier forward pass over 1M elements.
func ReluFwd1M(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, dst := tensor.New(reluLen), tensor.New(reluLen)
	x.RandNormal(rng, 0, 1)
	b.SetBytes(reluLen * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.ReluInto(dst, x)
	}
}

// ReluFwd1MF32 is the float32 rectifier forward pass over 1M elements.
func ReluFwd1MF32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, dst := tensor.New32(reluLen), tensor.New32(reluLen)
	x.RandNormal(rng, 0, 1)
	b.SetBytes(reluLen * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Relu32Into(dst, x)
	}
}

// ReluGate1M is the f64 ReLU backward gate over 1M elements.
func ReluGate1M(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	y, g, dst := tensor.New(reluLen), tensor.New(reluLen), tensor.New(reluLen)
	y.RandNormal(rng, 0, 1)
	g.RandNormal(rng, 0, 1)
	b.SetBytes(reluLen * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.ReluGateInto(dst, y, g)
	}
}

// ReluGate1MF32 is the float32 ReLU backward gate over 1M elements.
func ReluGate1MF32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	y, g, dst := tensor.New32(reluLen), tensor.New32(reluLen), tensor.New32(reluLen)
	y.RandNormal(rng, 0, 1)
	g.RandNormal(rng, 0, 1)
	b.SetBytes(reluLen * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.ReluGate32Into(dst, y, g)
	}
}

// BiasAxpy1M is the f64 fused axpy (a += α·b) over 1M elements — the
// SGD-step and bias-gradient shape.
func BiasAxpy1M(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := tensor.New(reluLen), tensor.New(reluLen)
	x.RandNormal(rng, 0, 1)
	y.RandNormal(rng, 0, 1)
	b.SetBytes(reluLen * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.AxpyInPlace(x, 1e-9, y)
	}
}

// BiasAxpy1MF32 is the float32 fused axpy over 1M elements.
func BiasAxpy1MF32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := tensor.New32(reluLen), tensor.New32(reluLen)
	x.RandNormal(rng, 0, 1)
	y.RandNormal(rng, 0, 1)
	b.SetBytes(reluLen * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Axpy32InPlace(x, 1e-9, y)
	}
}

// ConvForwardBackward is one Conv2D layer's train-mode forward + backward,
// the path the scratch arena exists for.
func ConvForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := tensor.ConvGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c := nn.NewConv2D(rng, g, 16)
	x := tensor.New(16, 8, 16, 16)
	x.RandNormal(rng, 0, 1)
	grad := tensor.New(16, 16, 16, 16)
	grad.RandNormal(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(c.Params())
		_, cache := c.Forward(x, true)
		c.Backward(cache, grad)
	}
}

// Fig4ClientsSweep trains the non-iid FedAvg federations at the core of
// Figure 4's client-count sweep at quick scale — the end-to-end workload
// the kernel, pooling, and parallel-round layers all feed.
func Fig4ClientsSweep(b *testing.B) {
	d, err := datasets.Load(datasets.CIFAR100, datasets.Quick, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 5} {
			if _, err := sweepFederation(d, k, 6); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Fig4ClientsSweepF32 is the same federation sweep under the F32 policy —
// every client's GEMMs run on the float32 tier while updates cross the FL
// boundary as float64.
func Fig4ClientsSweepF32(b *testing.B) { withF32(Fig4ClientsSweep)(b) }

// Fig4AccuracyParity trains the quick 2-client federation once per
// precision and evaluates both global models on the held-out test set.
// cmd/cipbench's precision gate asserts the accuracies agree within
// tolerance, so the f32 tier's speed never comes at Fig. 4 fidelity.
func Fig4AccuracyParity() (acc64, acc32 float64, err error) {
	d, err := datasets.Load(datasets.CIFAR100, datasets.Quick, 1)
	if err != nil {
		return 0, 0, err
	}
	run := func() (float64, error) {
		global, err := sweepFederation(d, 2, 6)
		if err != nil {
			return 0, err
		}
		eval := model.NewClassifier(rand.New(rand.NewSource(2)), model.VGG,
			d.Train.In, d.Train.NumClasses)
		nn.SetFlatParams(eval.Params(), global)
		return fl.Evaluate(eval, d.Test, 32), nil
	}
	if acc64, err = run(); err != nil {
		return 0, 0, err
	}
	tensor.SetPrecision(tensor.F32)
	defer tensor.SetPrecision(tensor.F64)
	if acc32, err = run(); err != nil {
		return 0, 0, err
	}
	return acc64, acc32, nil
}

// robustAggBench measures one robust fold over a 12-client cohort at a
// realistic model dimensionality (200k parameters) — the per-round
// aggregation cost the Byzantine-resilience PR adds on top of training.
func robustAggBench(rule robust.Aggregator) func(b *testing.B) {
	return func(b *testing.B) {
		const n, dim = 12, 200_000
		rng := rand.New(rand.NewSource(5))
		center := make([]float64, dim)
		params := make([][]float64, n)
		weights := make([]float64, n)
		for i := range params {
			row := make([]float64, dim)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			params[i] = row
			weights[i] = 1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := rule.Aggregate(center, params, weights); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// RobustAggMean is the aggregation-cost control: the unweighted mean over
// the same cohort the robust rules fold.
func RobustAggMean(b *testing.B) { robustAggBench(robust.Mean{})(b) }

// RobustAggMedian folds the cohort with the coordinate-wise median.
func RobustAggMedian(b *testing.B) { robustAggBench(robust.Median{})(b) }

// RobustAggTrimmed folds the cohort with the 25%-per-tail trimmed mean.
func RobustAggTrimmed(b *testing.B) { robustAggBench(robust.TrimmedMean{Frac: 0.25})(b) }

// RobustAggClipped folds the cohort with the norm-clipped mean.
func RobustAggClipped(b *testing.B) { robustAggBench(robust.ClippedMean{MaxNorm: 10})(b) }

// robustRound runs an identical 6-client quick-scale federation for 3
// rounds under the given policy; comparing the Robust rounds against
// RobustRoundMean isolates the end-to-end round-latency overhead of the
// robust fold plus reputation scoring.
func robustRound(b *testing.B, policy *fl.RoundPolicy) {
	d, err := datasets.Load(datasets.CIFAR100, datasets.Quick, 1)
	if err != nil {
		b.Fatal(err)
	}
	const k, rounds = 6, 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		shards := datasets.PartitionIID(d.Train, k, rng)
		clients := make([]fl.Client, k)
		var initial []float64
		for j := 0; j < k; j++ {
			net := model.NewClassifier(rand.New(rand.NewSource(2)), model.VGG,
				d.Train.In, d.Train.NumClasses)
			if initial == nil {
				initial = nn.FlattenParams(net.Params())
			}
			clients[j] = fl.NewLegacyClient(j, net, shards[j], fl.ClientConfig{
				BatchSize:   16,
				LocalEpochs: 1,
				LR:          fl.DecaySchedule(0.05, rounds),
				Momentum:    0.9,
			}, nil, rand.New(rand.NewSource(int64(10+j))))
		}
		srv := fl.NewServer(initial, clients...)
		srv.Policy = policy
		if err := srv.Run(rounds); err != nil {
			b.Fatal(err)
		}
	}
}

// RobustRoundMean is the round-latency control: the same federation under
// plain sample-weighted FedAvg.
func RobustRoundMean(b *testing.B) { robustRound(b, nil) }

// RobustRoundMedian runs the full defense stack (median fold + reputation
// scoring) the byzantine deployments use.
func RobustRoundMedian(b *testing.B) {
	robustRound(b, &fl.RoundPolicy{
		MinQuorum:  3,
		Robust:     robust.Median{},
		Reputation: robust.NewReputation(robust.ReputationConfig{}),
	})
}

// RobustRoundTrimmed is RobustRoundMedian under the trimmed mean.
func RobustRoundTrimmed(b *testing.B) {
	robustRound(b, &fl.RoundPolicy{
		MinQuorum:  3,
		Robust:     robust.TrimmedMean{Frac: 0.25},
		Reputation: robust.NewReputation(robust.ReputationConfig{}),
	})
}

func sweepFederation(d *datasets.Data, k, rounds int) ([]float64, error) {
	ncc := d.Train.NumClasses / 5
	if ncc < 2 {
		ncc = 2
	}
	rng := rand.New(rand.NewSource(1))
	shards := datasets.PartitionByClass(d.Train, k, ncc, rng)
	clients := make([]fl.Client, k)
	var initial []float64
	for i := 0; i < k; i++ {
		net := model.NewClassifier(rand.New(rand.NewSource(2)), model.VGG,
			d.Train.In, d.Train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients[i] = fl.NewLegacyClient(i, net, shards[i], fl.ClientConfig{
			BatchSize:   16,
			LocalEpochs: 1,
			LR:          fl.DecaySchedule(0.05, rounds),
			Momentum:    0.9,
		}, nil, rand.New(rand.NewSource(int64(10+i))))
	}
	srv := fl.NewServer(initial, clients...)
	if err := srv.Run(rounds); err != nil {
		return nil, err
	}
	return srv.Global(), nil
}
