package bench

import "testing"

// TestTreeGateSketchLines runs the sketch-error half of the tree gate:
// exactness below capacity and the DKW envelope above it.
func TestTreeGateSketchLines(t *testing.T) {
	rep, err := TreeGate(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rules) != 2 || len(rep.ExactRules) != 2 {
		t.Fatalf("gate covered %d approximate and %d exact rules, want 2+2", len(rep.Rules), len(rep.ExactRules))
	}
	for _, g := range rep.Rules {
		if g.MaxAbsErr <= 0 {
			t.Fatalf("%s: approximate regime measured zero error — the subsample path did not run", g.Rule)
		}
		if g.MaxAbsErr > g.MaxBound {
			t.Fatalf("%s: max error %v above max bound %v", g.Rule, g.MaxAbsErr, g.MaxBound)
		}
	}
}
