package datasets

import (
	"fmt"
	"math/rand"
)

// PartitionIID splits d into k equally sized client shards after a shuffle.
func PartitionIID(d *Dataset, k int, rng *rand.Rand) []*Dataset {
	if k <= 0 {
		panic(fmt.Sprintf("datasets: PartitionIID with %d clients", k))
	}
	idx := rng.Perm(d.Len())
	per := d.Len() / k
	out := make([]*Dataset, k)
	for i := 0; i < k; i++ {
		out[i] = d.Subset(idx[i*per : (i+1)*per])
	}
	return out
}

// PartitionByClass implements the paper's non-iid setting (following Naseri
// et al., §V-A): each client is assigned classesPerClient random classes and
// receives an equal number of samples drawn uniformly at random from those
// classes. classesPerClient equal to NumClasses reduces to an iid draw.
func PartitionByClass(d *Dataset, k, classesPerClient int, rng *rand.Rand) []*Dataset {
	if k <= 0 {
		panic(fmt.Sprintf("datasets: PartitionByClass with %d clients", k))
	}
	if classesPerClient <= 0 || classesPerClient > d.NumClasses {
		panic(fmt.Sprintf("datasets: classesPerClient %d out of range (1..%d)",
			classesPerClient, d.NumClasses))
	}
	byClass := d.ClassIndices()
	per := d.Len() / k
	out := make([]*Dataset, k)
	for i := 0; i < k; i++ {
		classes := rng.Perm(d.NumClasses)[:classesPerClient]
		var pool []int
		for _, c := range classes {
			pool = append(pool, byClass[c]...)
		}
		take := make([]int, per)
		if len(pool) >= per {
			perm := rng.Perm(len(pool))
			for j := 0; j < per; j++ {
				take[j] = pool[perm[j]]
			}
		} else {
			// Not enough distinct samples in the chosen classes: draw with
			// replacement, matching the paper's equal-shard-size constraint.
			for j := 0; j < per; j++ {
				take[j] = pool[rng.Intn(len(pool))]
			}
		}
		out[i] = d.Subset(take)
	}
	return out
}

// MembershipSplit builds the attack evaluation sets the paper uses: an
// equal number of members (training samples) and non-members (test
// samples). It returns subsets of size n each.
func MembershipSplit(train, test *Dataset, n int, rng *rand.Rand) (members, nonMembers *Dataset) {
	if n > train.Len() {
		n = train.Len()
	}
	if n > test.Len() {
		n = test.Len()
	}
	mi := rng.Perm(train.Len())[:n]
	ni := rng.Perm(test.Len())[:n]
	return train.Subset(mi), test.Subset(ni)
}
