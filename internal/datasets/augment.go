package datasets

import (
	"math/rand"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/tensor"
)

// AugmentBatch applies the paper's CIFAR-AUG pipeline, scaled to our
// resolution: random crop after zero padding by pad pixels, then a random
// horizontal flip, independently per sample. Tabular inputs are returned
// unchanged.
func AugmentBatch(rng *rand.Rand, x *tensor.Tensor, in model.Input, pad int) *tensor.Tensor {
	if !in.IsImage() || pad < 0 {
		return x
	}
	n := x.Shape[0]
	out := tensor.New(x.Shape...)
	c, h, w := in.C, in.H, in.W
	for b := 0; b < n; b++ {
		dy := rng.Intn(2*pad+1) - pad
		dx := rng.Intn(2*pad+1) - pad
		flip := rng.Intn(2) == 1
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for y := 0; y < h; y++ {
				sy := y + dy
				for xx := 0; xx < w; xx++ {
					sx := xx + dx
					if flip {
						sx = w - 1 - sx
					}
					var v float64
					if sy >= 0 && sy < h && sx >= 0 && sx < w {
						v = x.Data[base+sy*w+sx]
					}
					out.Data[base+y*w+xx] = v
				}
			}
		}
	}
	return out
}

// FlipHorizontal returns a horizontally mirrored copy of every image.
func FlipHorizontal(x *tensor.Tensor, in model.Input) *tensor.Tensor {
	if !in.IsImage() {
		return x.Clone()
	}
	n := x.Shape[0]
	out := tensor.New(x.Shape...)
	c, h, w := in.C, in.H, in.W
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					out.Data[base+y*w+xx] = x.Data[base+y*w+(w-1-xx)]
				}
			}
		}
	}
	return out
}
