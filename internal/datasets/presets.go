package datasets

import "fmt"

// Preset names one of the paper's four evaluation datasets.
type Preset int

// The paper's four benchmark datasets (Section IV-A).
const (
	CIFAR100 Preset = iota + 1
	CIFARAUG
	CHMNIST
	Purchase50
)

// String returns the paper's dataset name.
func (p Preset) String() string {
	switch p {
	case CIFAR100:
		return "CIFAR-100"
	case CIFARAUG:
		return "CIFAR-AUG"
	case CHMNIST:
		return "CH-MNIST"
	case Purchase50:
		return "Purchase-50"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// AllPresets lists the four presets in the paper's order.
func AllPresets() []Preset {
	return []Preset{CIFAR100, CIFARAUG, CHMNIST, Purchase50}
}

// Scale selects the size of a preset instantiation.
type Scale int

// Quick keeps experiments in CI territory (seconds); Full scales sample
// counts and resolution up for longer, closer-to-paper sweeps.
const (
	Quick Scale = iota + 1
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Data bundles a loaded preset: the train/test sets and whether the
// training loop should apply augmentation (CIFAR-AUG).
type Data struct {
	Name    string
	Preset  Preset
	Train   *Dataset
	Test    *Dataset
	Augment bool
}

// Load instantiates a preset at the given scale. Seed controls the whole
// generation, so equal seeds give byte-identical datasets.
func Load(p Preset, s Scale, seed int64) (*Data, error) {
	var (
		train, test *Dataset
		err         error
		augment     bool
	)
	switch p {
	case CIFAR100, CIFARAUG:
		cfg := ImageConfig{
			Classes: 20, Train: 320, Test: 320,
			C: 3, H: 8, W: 8,
			Signal: 0.4, Noise: 0.45,
			Seed: seed,
		}
		if s == Full {
			cfg.Classes, cfg.Train, cfg.Test = 100, 4000, 2000
			cfg.H, cfg.W = 12, 12
		}
		train, test, err = SyntheticImages(cfg)
		augment = p == CIFARAUG
	case CHMNIST:
		cfg := ImageConfig{
			Classes: 8, Train: 320, Test: 320,
			C: 1, H: 8, W: 8,
			Signal: 0.5, Noise: 0.18,
			Seed: seed,
		}
		if s == Full {
			cfg.Train, cfg.Test = 2500, 2500
			cfg.H, cfg.W = 12, 12
		}
		train, test, err = SyntheticImages(cfg)
	case Purchase50:
		cfg := TabularConfig{
			Classes: 20, Train: 600, Test: 600,
			Features: 120, Sharpness: 0.7,
			Seed: seed,
		}
		if s == Full {
			cfg.Classes, cfg.Train, cfg.Test, cfg.Features = 50, 10000, 10000, 600
		}
		train, test, err = SyntheticTabular(cfg)
	default:
		return nil, fmt.Errorf("datasets: unknown preset %v", p)
	}
	if err != nil {
		return nil, fmt.Errorf("datasets: loading %v: %w", p, err)
	}
	return &Data{Name: p.String(), Preset: p, Train: train, Test: test, Augment: augment}, nil
}
