package datasets

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/tensor"
)

func TestCSVRoundTripTabular(t *testing.T) {
	train, _, err := SyntheticTabular(TabularConfig{
		Classes: 4, Train: 20, Test: 4, Features: 12, Sharpness: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := train.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, train.In, train.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(back.X, train.X, 0) {
		t.Fatal("CSV round trip changed features")
	}
	for i := range train.Y {
		if back.Y[i] != train.Y[i] {
			t.Fatalf("label %d changed: %d -> %d", i, train.Y[i], back.Y[i])
		}
	}
}

func TestCSVRoundTripImages(t *testing.T) {
	train, _, err := SyntheticImages(ImageConfig{
		Classes: 3, Train: 9, Test: 3, C: 2, H: 4, W: 4,
		Signal: 0.4, Noise: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := train.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), train.In, train.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if !back.In.IsImage() || !tensor.Equal(back.X, train.X, 0) {
		t.Fatal("image CSV round trip changed data")
	}
}

func TestReadCSVValidation(t *testing.T) {
	in := model.Input{C: 2}
	tests := []struct {
		name string
		csv  string
	}{
		{"bad label", "x,0.1,0.2\n"},
		{"label out of range", "9,0.1,0.2\n"},
		{"bad feature", "0,zz,0.2\n"},
		{"wrong width", "0,0.1\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.csv), in, 3); err == nil {
				t.Fatalf("ReadCSV accepted %q", tt.csv)
			}
		})
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "nope.csv"), model.Input{C: 2}, 2); err == nil {
		t.Fatal("expected error for missing file")
	}
}
