package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/tensor"
)

// WriteCSV serializes a tabular dataset as CSV: one row per sample, the
// label in the first column and the features after it. Image datasets are
// written the same way with pixels flattened row-major; ReadCSV restores
// them when given the image shape.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	ss := d.SampleSize()
	row := make([]string, 1+ss)
	for i := 0; i < d.Len(); i++ {
		row[0] = strconv.Itoa(d.Y[i])
		for j, v := range d.X.Data[i*ss : (i+1)*ss] {
			row[1+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("datasets: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("datasets: flushing CSV: %w", err)
	}
	return nil
}

// SaveCSV writes the dataset to a file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("datasets: creating %s: %w", path, err)
	}
	defer f.Close()
	return d.WriteCSV(f)
}

// ReadCSV parses a dataset from CSV as written by WriteCSV. in describes
// the per-sample shape and numClasses the label range; rows must agree.
// This is the bridge for users who want to run the library on their own
// (e.g. real Purchase-100-style) data.
func ReadCSV(r io.Reader, in model.Input, numClasses int) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 1 + in.Size()
	var (
		feats  []float64
		labels []int
	)
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: reading CSV line %d: %w", line, err)
		}
		y, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("datasets: CSV line %d label %q: %w", line, rec[0], err)
		}
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("datasets: CSV line %d label %d out of range [0,%d)",
				line, y, numClasses)
		}
		for _, cell := range rec[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: CSV line %d feature %q: %w", line, cell, err)
			}
			feats = append(feats, v)
		}
		labels = append(labels, y)
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("datasets: CSV contained no samples")
	}
	shape := []int{len(labels), in.C}
	if in.IsImage() {
		shape = []int{len(labels), in.C, in.H, in.W}
	}
	return &Dataset{
		X:          tensor.FromSlice(feats, shape...),
		Y:          labels,
		NumClasses: numClasses,
		In:         in,
	}, nil
}

// LoadCSV reads a dataset from a file.
func LoadCSV(path string, in model.Input, numClasses int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datasets: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(f, in, numClasses)
}
