package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/tensor"
)

// ImageConfig parameterizes the synthetic image generator.
type ImageConfig struct {
	Classes     int
	Train, Test int // total sample counts
	C, H, W     int
	// Signal is the prototype amplitude; Noise is the per-pixel Gaussian
	// noise std. Their ratio sets task difficulty: a low ratio yields the
	// overfit low-test-accuracy regime (CIFAR-100 in the paper), a high
	// ratio the well-generalized regime (CH-MNIST).
	Signal, Noise float64
	Seed          int64
}

// Validate reports configuration errors.
func (c ImageConfig) Validate() error {
	if c.Classes <= 1 {
		return fmt.Errorf("datasets: need at least 2 classes, got %d", c.Classes)
	}
	if c.Train <= 0 || c.Test <= 0 {
		return fmt.Errorf("datasets: non-positive sample counts train=%d test=%d", c.Train, c.Test)
	}
	if c.C <= 0 || c.H <= 0 || c.W <= 0 {
		return fmt.Errorf("datasets: non-positive image dims %dx%dx%d", c.C, c.H, c.W)
	}
	return nil
}

// classPrototypes draws one smooth random pattern per class. Smoothness
// (a sum of random 2-D cosine waves) gives conv backbones spatial structure
// to latch onto, like natural-image class features. The horizontal factor
// is an even function around the image center, so prototypes — like
// natural photographs — keep their class identity under horizontal flips;
// without this the CIFAR-AUG flip augmentation would amount to label noise.
func classPrototypes(rng *rand.Rand, classes, c, h, w int, amp float64) []*tensor.Tensor {
	protos := make([]*tensor.Tensor, classes)
	for k := range protos {
		p := tensor.New(c, h, w)
		const waves = 4
		cx := float64(w-1) / 2
		for wv := 0; wv < waves; wv++ {
			// Low spatial frequencies keep prototypes stable under the
			// ±1-pixel crops of the augmentation pipeline, the way natural
			// image content is shift-tolerant.
			fy := 0.5 + rng.Float64()
			fx := 0.5 + rng.Float64()
			phy := rng.Float64() * 2 * math.Pi
			chAmp := make([]float64, c)
			for ch := range chAmp {
				chAmp[ch] = amp * (0.5 + rng.Float64())
			}
			for ch := 0; ch < c; ch++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						v := chAmp[ch] * math.Cos(fy*float64(y)/float64(h)*2*math.Pi+phy) *
							math.Cos(fx*(float64(x)-cx)/float64(w)*2*math.Pi)
						p.Data[(ch*h+y)*w+x] += v
					}
				}
			}
		}
		// Center into [0,1] around 0.5.
		for i := range p.Data {
			p.Data[i] = 0.5 + p.Data[i]/float64(waves)
		}
		protos[k] = p
	}
	return protos
}

// SyntheticImages generates train and test image datasets from per-class
// prototypes plus Gaussian pixel noise, clipped to [0,1].
func SyntheticImages(cfg ImageConfig) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := classPrototypes(rng, cfg.Classes, cfg.C, cfg.H, cfg.W, cfg.Signal)

	gen := func(n int) *Dataset {
		in := model.Input{C: cfg.C, H: cfg.H, W: cfg.W}
		x := tensor.New(n, cfg.C, cfg.H, cfg.W)
		y := make([]int, n)
		ss := in.Size()
		for i := 0; i < n; i++ {
			k := i % cfg.Classes // balanced classes
			y[i] = k
			dst := x.Data[i*ss : (i+1)*ss]
			src := protos[k].Data
			for j := range dst {
				v := src[j] + rng.NormFloat64()*cfg.Noise
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				dst[j] = v
			}
		}
		d := &Dataset{X: x, Y: y, NumClasses: cfg.Classes, In: in}
		d.Shuffle(rng)
		return d
	}
	return gen(cfg.Train), gen(cfg.Test), nil
}

// TabularConfig parameterizes the synthetic Purchase-50-style generator.
type TabularConfig struct {
	Classes     int
	Train, Test int
	Features    int
	// Sharpness controls how far class Bernoulli templates are from 0.5;
	// higher is easier.
	Sharpness float64
	Seed      int64
}

// Validate reports configuration errors.
func (c TabularConfig) Validate() error {
	if c.Classes <= 1 {
		return fmt.Errorf("datasets: need at least 2 classes, got %d", c.Classes)
	}
	if c.Train <= 0 || c.Test <= 0 {
		return fmt.Errorf("datasets: non-positive sample counts train=%d test=%d", c.Train, c.Test)
	}
	if c.Features <= 0 {
		return fmt.Errorf("datasets: non-positive feature count %d", c.Features)
	}
	return nil
}

// SyntheticTabular generates binary feature vectors from per-class
// Bernoulli templates, mirroring the Kaggle purchase-history data the
// paper's Purchase-50 task uses.
func SyntheticTabular(cfg TabularConfig) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Class templates: per-feature probability of a 1.
	templates := make([][]float64, cfg.Classes)
	for k := range templates {
		tpl := make([]float64, cfg.Features)
		for j := range tpl {
			// Sparse base rate with class-specific hot features.
			p := 0.05
			if rng.Float64() < 0.15 {
				p = 0.5 + cfg.Sharpness*(rng.Float64()-0.5)
				if p > 0.95 {
					p = 0.95
				} else if p < 0.05 {
					p = 0.05
				}
			}
			tpl[j] = p
		}
		templates[k] = tpl
	}

	gen := func(n int) *Dataset {
		in := model.Input{C: cfg.Features}
		x := tensor.New(n, cfg.Features)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			k := i % cfg.Classes
			y[i] = k
			row := x.Data[i*cfg.Features : (i+1)*cfg.Features]
			tpl := templates[k]
			for j := range row {
				if rng.Float64() < tpl[j] {
					row[j] = 1
				}
			}
		}
		d := &Dataset{X: x, Y: y, NumClasses: cfg.Classes, In: in}
		d.Shuffle(rng)
		return d
	}
	return gen(cfg.Train), gen(cfg.Test), nil
}
