package datasets

import (
	"math/rand"
	"testing"
)

func orderFixture(t *testing.T) *Dataset {
	t.Helper()
	train, _, err := SyntheticImages(ImageConfig{
		Classes: 2, Train: 12, Test: 4, C: 1, H: 2, W: 2,
		Signal: 0.5, Noise: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train
}

func sameSamples(a, b *Dataset) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			return false
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	return true
}

// TestApplyOrderRestoresShuffledPosition is the checkpoint/restore story:
// a shard shuffled N times mid-training is reconstructed pristine after a
// crash, and ApplyOrder with the captured permutation must put every
// sample back in its exact pre-crash position.
func TestApplyOrderRestoresShuffledPosition(t *testing.T) {
	live := orderFixture(t)
	live.TrackOrder()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3; i++ {
		live.Shuffle(rng)
	}
	captured := live.Order()

	rebuilt := orderFixture(t) // pristine, as a restarted process would load it
	rebuilt.TrackOrder()
	if err := rebuilt.ApplyOrder(captured); err != nil {
		t.Fatal(err)
	}
	if !sameSamples(live, rebuilt) {
		t.Fatal("ApplyOrder did not reproduce the shuffled sample positions")
	}
	// The adopted permutation must keep composing with later shuffles:
	// both datasets shuffled with the same stream stay in lockstep.
	r1, r2 := rand.New(rand.NewSource(4)), rand.New(rand.NewSource(4))
	live.Shuffle(r1)
	rebuilt.Shuffle(r2)
	if !sameSamples(live, rebuilt) {
		t.Fatal("datasets diverged after a post-restore shuffle")
	}
}

func TestApplyOrderRejectsBadInput(t *testing.T) {
	d := orderFixture(t)
	if err := d.ApplyOrder([]int{0}); err == nil {
		t.Fatal("ApplyOrder on an untracked dataset succeeded")
	}
	d.TrackOrder()
	if err := d.ApplyOrder([]int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	bad := make([]int, d.Len())
	for i := range bad {
		bad[i] = 0 // repeated index
	}
	if err := d.ApplyOrder(bad); err == nil {
		t.Fatal("repeated index accepted")
	}
	oob := d.Order()
	oob[0] = d.Len() // out of range
	if err := d.ApplyOrder(oob); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestOrderNilWhenUntracked(t *testing.T) {
	d := orderFixture(t)
	if d.Order() != nil {
		t.Fatal("untracked dataset reported an order")
	}
}
