// Package datasets generates the synthetic stand-ins for the paper's four
// evaluation datasets (CIFAR-100, CIFAR-AUG, CH-MNIST, Purchase-50) and
// provides the partitioning utilities (iid and classes-per-client non-iid)
// used by the federated-learning experiments.
//
// The real datasets are not shippable in an offline, stdlib-only build, so
// each preset is a generator whose *regime* matches the paper's use of the
// dataset: CIFAR-100 is many-class and hard (the overfit, high-attack-
// accuracy regime), CH-MNIST is few-class and easy (the well-generalized
// regime), CIFAR-AUG is CIFAR-100 plus augmentation, and Purchase-50 is
// sparse binary tabular data. Membership inference attacks consume only the
// loss geometry of a model trained on the data, which these regimes control
// directly. See DESIGN.md §2 for the substitution rationale.
package datasets

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/tensor"
)

// Dataset is a labeled sample collection stored as one batched tensor.
type Dataset struct {
	// X holds all samples: [N, C, H, W] for images, [N, D] for tabular.
	X *tensor.Tensor
	// Y holds the integer class label of each sample.
	Y []int
	// NumClasses is the total number of classes in the task (not just the
	// classes present in this subset).
	NumClasses int
	// In describes a single sample's shape.
	In model.Input

	// order, when non-nil, tracks the composed permutation of every
	// Shuffle relative to the order the dataset had when TrackOrder was
	// called: order[i] is the pristine index of the sample now at position
	// i. Checkpointable clients use it to persist their shard's data order
	// (Shuffle composes in place, so the order at round r depends on every
	// earlier shuffle).
	order []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// SampleSize returns the number of scalars per sample.
func (d *Dataset) SampleSize() int { return d.In.Size() }

// Batch copies samples [start, end) into a fresh tensor and label slice.
func (d *Dataset) Batch(start, end int) (*tensor.Tensor, []int) {
	if start < 0 || end > d.Len() || start > end {
		panic(fmt.Sprintf("datasets: batch [%d,%d) out of range for %d samples", start, end, d.Len()))
	}
	ss := d.SampleSize()
	n := end - start
	shape := append([]int{n}, d.sampleShape()...)
	x := tensor.New(shape...)
	copy(x.Data, d.X.Data[start*ss:end*ss])
	y := make([]int, n)
	copy(y, d.Y[start:end])
	return x, y
}

func (d *Dataset) sampleShape() []int {
	if d.In.IsImage() {
		return []int{d.In.C, d.In.H, d.In.W}
	}
	return []int{d.In.C}
}

// Subset returns a new dataset containing the samples at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	ss := d.SampleSize()
	shape := append([]int{len(idx)}, d.sampleShape()...)
	x := tensor.New(shape...)
	y := make([]int, len(idx))
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			panic(fmt.Sprintf("datasets: subset index %d out of range for %d samples", j, d.Len()))
		}
		copy(x.Data[i*ss:(i+1)*ss], d.X.Data[j*ss:(j+1)*ss])
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y, NumClasses: d.NumClasses, In: d.In}
}

// Shuffle permutes the samples in place.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	ss := d.SampleSize()
	tmp := make([]float64, ss)
	rng.Shuffle(d.Len(), func(i, j int) {
		a := d.X.Data[i*ss : (i+1)*ss]
		b := d.X.Data[j*ss : (j+1)*ss]
		copy(tmp, a)
		copy(a, b)
		copy(b, tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
		if d.order != nil {
			d.order[i], d.order[j] = d.order[j], d.order[i]
		}
	})
}

// TrackOrder starts recording the dataset's sample order: the current
// order becomes the pristine reference, and every later Shuffle composes
// into the tracked permutation.
func (d *Dataset) TrackOrder() {
	d.order = make([]int, d.Len())
	for i := range d.order {
		d.order[i] = i
	}
}

// Order returns a copy of the tracked permutation (nil when TrackOrder was
// never called): the pristine index of the sample at each position.
func (d *Dataset) Order() []int {
	if d.order == nil {
		return nil
	}
	out := make([]int, len(d.order))
	copy(out, d.order)
	return out
}

// ApplyOrder rearranges the samples so that position i holds the sample
// that pristine position order[i] held, and adopts order as the tracked
// permutation. Restoring a checkpointed shard is the intended use: rebuild
// the shard deterministically (pristine order), TrackOrder, then ApplyOrder
// with the captured permutation.
func (d *Dataset) ApplyOrder(order []int) error {
	if d.order == nil {
		return fmt.Errorf("datasets: ApplyOrder on an untracked dataset (call TrackOrder first)")
	}
	if len(order) != d.Len() {
		return fmt.Errorf("datasets: ApplyOrder got %d indices for %d samples", len(order), d.Len())
	}
	// pos[p] is the current position of pristine sample p.
	pos := make([]int, d.Len())
	for i, p := range d.order {
		if p < 0 || p >= d.Len() {
			return fmt.Errorf("datasets: tracked order holds invalid index %d", p)
		}
		pos[p] = i
	}
	idx := make([]int, len(order))
	seen := make([]bool, d.Len())
	for i, p := range order {
		if p < 0 || p >= d.Len() || seen[p] {
			return fmt.Errorf("datasets: ApplyOrder index %d at position %d is out of range or repeated", p, i)
		}
		seen[p] = true
		idx[i] = pos[p]
	}
	re := d.Subset(idx)
	d.X = re.X
	d.Y = re.Y
	d.order = make([]int, len(order))
	copy(d.order, order)
	return nil
}

// Split divides the dataset into a prefix of n samples and the remainder.
func (d *Dataset) Split(n int) (*Dataset, *Dataset) {
	if n < 0 || n > d.Len() {
		panic(fmt.Sprintf("datasets: split point %d out of range for %d samples", n, d.Len()))
	}
	first := make([]int, n)
	second := make([]int, d.Len()-n)
	for i := range first {
		first[i] = i
	}
	for i := range second {
		second[i] = n + i
	}
	return d.Subset(first), d.Subset(second)
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	y := make([]int, len(d.Y))
	copy(y, d.Y)
	return &Dataset{X: d.X.Clone(), Y: y, NumClasses: d.NumClasses, In: d.In}
}

// Concat returns the concatenation of a and b, which must agree on shape
// and class count.
func Concat(a, b *Dataset) *Dataset {
	if a.In != b.In || a.NumClasses != b.NumClasses {
		panic(fmt.Sprintf("datasets: Concat of incompatible datasets %+v vs %+v", a.In, b.In))
	}
	shape := append([]int{a.Len() + b.Len()}, a.sampleShape()...)
	x := tensor.New(shape...)
	copy(x.Data, a.X.Data)
	copy(x.Data[len(a.X.Data):], b.X.Data)
	y := make([]int, 0, a.Len()+b.Len())
	y = append(y, a.Y...)
	y = append(y, b.Y...)
	return &Dataset{X: x, Y: y, NumClasses: a.NumClasses, In: a.In}
}

// ClassIndices returns, for each class, the sample indices with that label.
func (d *Dataset) ClassIndices() [][]int {
	out := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		out[y] = append(out[y], i)
	}
	return out
}
