package datasets

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/tensor"
)

func mustImages(t *testing.T, cfg ImageConfig) (*Dataset, *Dataset) {
	t.Helper()
	train, test, err := SyntheticImages(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestSyntheticImagesShapesAndRange(t *testing.T) {
	cfg := ImageConfig{Classes: 5, Train: 50, Test: 30, C: 3, H: 6, W: 6,
		Signal: 0.4, Noise: 0.3, Seed: 1}
	train, test := mustImages(t, cfg)
	if train.Len() != 50 || test.Len() != 30 {
		t.Fatalf("sizes = %d/%d, want 50/30", train.Len(), test.Len())
	}
	if train.X.Shape[1] != 3 || train.X.Shape[2] != 6 || train.X.Shape[3] != 6 {
		t.Fatalf("train X shape = %v", train.X.Shape)
	}
	if train.X.Min() < 0 || train.X.Max() > 1 {
		t.Fatalf("pixels out of [0,1]: [%v, %v]", train.X.Min(), train.X.Max())
	}
	for _, y := range train.Y {
		if y < 0 || y >= 5 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestSyntheticImagesDeterministic(t *testing.T) {
	cfg := ImageConfig{Classes: 3, Train: 20, Test: 10, C: 1, H: 4, W: 4,
		Signal: 0.4, Noise: 0.2, Seed: 42}
	a1, _ := mustImages(t, cfg)
	a2, _ := mustImages(t, cfg)
	if !tensor.Equal(a1.X, a2.X, 0) {
		t.Fatal("same seed produced different data")
	}
	cfg.Seed = 43
	b, _ := mustImages(t, cfg)
	if tensor.Equal(a1.X, b.X, 0) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticImagesBalancedClasses(t *testing.T) {
	cfg := ImageConfig{Classes: 4, Train: 400, Test: 40, C: 1, H: 4, W: 4,
		Signal: 0.4, Noise: 0.2, Seed: 7}
	train, _ := mustImages(t, cfg)
	counts := make([]int, 4)
	for _, y := range train.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestSyntheticImagesConfigValidation(t *testing.T) {
	bad := []ImageConfig{
		{Classes: 1, Train: 10, Test: 10, C: 1, H: 4, W: 4},
		{Classes: 3, Train: 0, Test: 10, C: 1, H: 4, W: 4},
		{Classes: 3, Train: 10, Test: 10, C: 0, H: 4, W: 4},
	}
	for i, cfg := range bad {
		if _, _, err := SyntheticImages(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSyntheticTabularBinary(t *testing.T) {
	train, test, err := SyntheticTabular(TabularConfig{
		Classes: 5, Train: 60, Test: 40, Features: 30, Sharpness: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 60 || test.Len() != 40 {
		t.Fatalf("sizes = %d/%d", train.Len(), test.Len())
	}
	for _, v := range train.X.Data {
		if v != 0 && v != 1 {
			t.Fatalf("tabular feature %v not binary", v)
		}
	}
	if train.In.IsImage() {
		t.Fatal("tabular dataset claims to be an image")
	}
}

func TestBatchAndSubset(t *testing.T) {
	cfg := ImageConfig{Classes: 3, Train: 12, Test: 6, C: 1, H: 2, W: 2,
		Signal: 0.4, Noise: 0.2, Seed: 3}
	train, _ := mustImages(t, cfg)
	x, y := train.Batch(2, 5)
	if x.Shape[0] != 3 || len(y) != 3 {
		t.Fatalf("batch shape = %v, labels = %d", x.Shape, len(y))
	}
	sub := train.Subset([]int{0, 11})
	if sub.Len() != 2 || sub.Y[0] != train.Y[0] || sub.Y[1] != train.Y[11] {
		t.Fatal("subset labels do not match source")
	}
	// Mutating the subset must not touch the source.
	sub.X.Data[0] = 99
	if train.X.Data[0] == 99 {
		t.Fatal("Subset shares backing data with source")
	}
}

func TestSplitAndConcatRoundTrip(t *testing.T) {
	cfg := ImageConfig{Classes: 3, Train: 10, Test: 5, C: 1, H: 2, W: 2,
		Signal: 0.4, Noise: 0.2, Seed: 4}
	train, _ := mustImages(t, cfg)
	a, b := train.Split(4)
	if a.Len() != 4 || b.Len() != 6 {
		t.Fatalf("split sizes = %d/%d, want 4/6", a.Len(), b.Len())
	}
	back := Concat(a, b)
	if !tensor.Equal(back.X, train.X, 0) {
		t.Fatal("Concat(Split()) is not the identity")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	// Build a dataset where the sample content encodes the label, then
	// check shuffling keeps (x, y) pairs aligned.
	x := tensor.New(10, 1)
	y := make([]int, 10)
	for i := 0; i < 10; i++ {
		x.Data[i] = float64(i % 3)
		y[i] = i % 3
	}
	d := &Dataset{X: x, Y: y, NumClasses: 3, In: model.Input{C: 1}}
	d.Shuffle(rand.New(rand.NewSource(5)))
	for i := 0; i < 10; i++ {
		if int(d.X.Data[i]) != d.Y[i] {
			t.Fatalf("shuffle broke (x,y) pairing at %d: x=%v y=%d", i, d.X.Data[i], d.Y[i])
		}
	}
}

func TestPartitionIID(t *testing.T) {
	cfg := ImageConfig{Classes: 4, Train: 40, Test: 8, C: 1, H: 2, W: 2,
		Signal: 0.4, Noise: 0.2, Seed: 6}
	train, _ := mustImages(t, cfg)
	shards := PartitionIID(train, 4, rand.New(rand.NewSource(1)))
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	for i, s := range shards {
		if s.Len() != 10 {
			t.Fatalf("shard %d has %d samples, want 10", i, s.Len())
		}
	}
}

func TestPartitionByClassRespectsClassBudget(t *testing.T) {
	cfg := ImageConfig{Classes: 10, Train: 200, Test: 20, C: 1, H: 2, W: 2,
		Signal: 0.4, Noise: 0.2, Seed: 7}
	train, _ := mustImages(t, cfg)
	rng := rand.New(rand.NewSource(2))
	shards := PartitionByClass(train, 5, 3, rng)
	for i, s := range shards {
		if s.Len() != 40 {
			t.Fatalf("shard %d has %d samples, want 40", i, s.Len())
		}
		seen := map[int]bool{}
		for _, y := range s.Y {
			seen[y] = true
		}
		if len(seen) > 3 {
			t.Fatalf("shard %d spans %d classes, want ≤3", i, len(seen))
		}
	}
}

func TestPartitionByClassIIDEquivalent(t *testing.T) {
	cfg := ImageConfig{Classes: 5, Train: 100, Test: 20, C: 1, H: 2, W: 2,
		Signal: 0.4, Noise: 0.2, Seed: 8}
	train, _ := mustImages(t, cfg)
	shards := PartitionByClass(train, 4, 5, rand.New(rand.NewSource(3)))
	// With all classes allowed, each shard should usually span all classes.
	total := 0
	for _, s := range shards {
		seen := map[int]bool{}
		for _, y := range s.Y {
			seen[y] = true
		}
		total += len(seen)
	}
	if total < 4*4 {
		t.Fatalf("iid-equivalent partition too concentrated: %d class-slots", total)
	}
}

func TestMembershipSplit(t *testing.T) {
	cfg := ImageConfig{Classes: 3, Train: 30, Test: 30, C: 1, H: 2, W: 2,
		Signal: 0.4, Noise: 0.2, Seed: 9}
	train, test := mustImages(t, cfg)
	m, nm := MembershipSplit(train, test, 10, rand.New(rand.NewSource(4)))
	if m.Len() != 10 || nm.Len() != 10 {
		t.Fatalf("membership split sizes = %d/%d, want 10/10", m.Len(), nm.Len())
	}
}

func TestAugmentBatchPreservesShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := model.Input{C: 3, H: 6, W: 6}
	x := tensor.New(4, 3, 6, 6)
	x.RandUniform(rng, 0, 1)
	out := AugmentBatch(rng, x, in, 1)
	if !out.SameShape(x) {
		t.Fatalf("augment changed shape %v -> %v", x.Shape, out.Shape)
	}
	if out.Min() < 0 || out.Max() > 1 {
		t.Fatalf("augment left [0,1]: [%v, %v]", out.Min(), out.Max())
	}
}

func TestFlipHorizontalInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := model.Input{C: 2, H: 4, W: 5}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(2, 2, 4, 5)
		x.RandUniform(r, 0, 1)
		return tensor.Equal(FlipHorizontal(FlipHorizontal(x, in), in), x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentTabularIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.New(3, 10)
	x.RandUniform(rng, 0, 1)
	out := AugmentBatch(rng, x, model.Input{C: 10}, 2)
	if out != x {
		t.Fatal("tabular augmentation should be a no-op returning the input")
	}
}

func TestLoadPresets(t *testing.T) {
	for _, p := range AllPresets() {
		t.Run(p.String(), func(t *testing.T) {
			d, err := Load(p, Quick, 1)
			if err != nil {
				t.Fatal(err)
			}
			if d.Train.Len() == 0 || d.Test.Len() == 0 {
				t.Fatal("empty preset")
			}
			if (p == CIFARAUG) != d.Augment {
				t.Fatalf("augment flag = %v for %v", d.Augment, p)
			}
			if p == Purchase50 && d.Train.In.IsImage() {
				t.Fatal("Purchase-50 should be tabular")
			}
		})
	}
}

func TestLoadFullScalePresets(t *testing.T) {
	for _, p := range AllPresets() {
		t.Run(p.String(), func(t *testing.T) {
			d, err := Load(p, Full, 1)
			if err != nil {
				t.Fatal(err)
			}
			q, err := Load(p, Quick, 1)
			if err != nil {
				t.Fatal(err)
			}
			if d.Train.Len() <= q.Train.Len() {
				t.Fatalf("full train size %d should exceed quick %d", d.Train.Len(), q.Train.Len())
			}
			if p == CIFAR100 && d.Train.NumClasses != 100 {
				t.Fatalf("full CIFAR-100 has %d classes, want 100 (the paper's count)", d.Train.NumClasses)
			}
			if p == Purchase50 && d.Train.NumClasses != 50 {
				t.Fatalf("full Purchase-50 has %d classes, want 50", d.Train.NumClasses)
			}
		})
	}
}

func TestLoadPresetRegimes(t *testing.T) {
	// CH-MNIST preset must be easier (higher signal-to-noise) than
	// CIFAR-100: verify via within-class vs between-class distances.
	cifar, err := Load(CIFAR100, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Load(CHMNIST, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	sep := func(d *Data) float64 {
		byClass := d.Train.ClassIndices()
		ss := d.Train.SampleSize()
		sample := func(i int) []float64 { return d.Train.X.Data[i*ss : (i+1)*ss] }
		dist := func(a, b []float64) float64 {
			s := 0.0
			for i := range a {
				dd := a[i] - b[i]
				s += dd * dd
			}
			return s
		}
		var within, between float64
		var wn, bn int
		for c := 0; c < 2; c++ {
			idx := byClass[c]
			for i := 1; i < len(idx) && i < 6; i++ {
				within += dist(sample(idx[0]), sample(idx[i]))
				wn++
			}
		}
		for i := 1; i < len(byClass[1]) && i < 6; i++ {
			between += dist(sample(byClass[0][0]), sample(byClass[1][i]))
			bn++
		}
		return (between / float64(bn)) / (within / float64(wn))
	}
	if sep(ch) <= sep(cifar) {
		t.Fatalf("CH-MNIST separation ratio %v should exceed CIFAR-100's %v", sep(ch), sep(cifar))
	}
}
