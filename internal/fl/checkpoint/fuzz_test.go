package checkpoint

import (
	"testing"

	"github.com/cip-fl/cip/internal/fl"
)

// FuzzDecodeSnapshot drives the snapshot decoder with arbitrary bytes —
// the exact path a resuming process walks over whatever it finds on disk
// after a crash. The invariant: truncated, bit-flipped, oversized, or
// plain hostile input may only ever produce an error, never a panic and
// never a silently wrong snapshot (wrong payloads are caught by the CRC
// before the gob decoder sees them).
func FuzzDecodeSnapshot(f *testing.F) {
	valid, err := Encode(KindSnapshot, &Snapshot{
		Token: "cafe",
		State: fl.ServerState{
			NextRound: 3,
			Global:    []float64{1, 2, 3},
			Clients:   map[int][]byte{0: {9, 9}},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])              // torn write
	f.Add(valid[:headerSize])                // header only
	f.Add([]byte{})                          // empty file
	f.Add([]byte("CIPCKPT1"))                // bare magic
	f.Add([]byte("not a checkpoint at all")) // foreign file
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x10
	f.Add(flipped) // bit rot in the payload
	oversize := append([]byte(nil), valid...)
	oversize[20] = 0xff // claim a multi-exabyte payload
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, data []byte) {
		var snap Snapshot
		if err := DecodeBytes(data, KindSnapshot, 1<<20, &snap); err != nil {
			return // any error is fine; a panic would fail the fuzzer
		}
		// Re-encoding a successfully decoded snapshot must succeed: decode
		// never hands back a value the rest of the system cannot persist.
		if _, err := Encode(KindSnapshot, &snap); err != nil {
			t.Fatalf("decoded snapshot cannot be re-encoded: %v", err)
		}
	})
}
