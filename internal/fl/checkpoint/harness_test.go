package checkpoint_test

// End-to-end crash harness for the in-process engine: a CIP federation is
// killed mid-run (simulated process death via faults.CrashAt), rebuilt
// from scratch, restored from its durable snapshot, and run to
// completion. The acceptance bar is bit-identity — the resumed run's
// final global parameters and every client's final local state must equal
// an uninterrupted run's exactly, including when the crash lands between
// checkpoint boundaries (deterministic replay) and when the newest
// snapshot generation is torn or bit-rotted (fallback to the previous
// one).

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/rng"
)

const (
	harnessClients = 2
	harnessRounds  = 6
)

// buildFederation constructs an identically seeded durable CIP federation:
// stateful clients (serializable RNG, tracked data order, capturable
// secret t) and a server whose client sampler runs on a serializable
// source. Calling it twice yields two federations that, run the same way,
// produce bit-identical results.
func buildFederation(t *testing.T) *fl.Server {
	t.Helper()
	train, _, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 3, Train: 60, Test: 30, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := datasets.PartitionIID(train, harnessClients, rand.New(rand.NewSource(1)))
	cfg := core.TrainConfig{
		Alpha: 0.9, LambdaT: 1e-6, LambdaM: 0.3, PerturbLR: 0.02,
		BatchSize: 16, LR: fl.DecaySchedule(0.08, harnessRounds), Momentum: 0.9,
	}
	clients := make([]fl.Client, harnessClients)
	var initial []float64
	for i := 0; i < harnessClients; i++ {
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(7)), model.VGG,
			train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		clients[i] = core.NewStatefulClient(i, dual, shards[i], cfg,
			core.BlendSeed(1, i), int64(20+i))
	}
	srv := fl.NewServer(initial, clients...)
	srv.SampleFraction = 0.5
	srv.SamplerSrc = rng.NewSource(3)
	return srv
}

// finalState captures a finished server's full durable state — globals
// plus every client blob — for bit-level comparison.
func finalState(t *testing.T, srv *fl.Server) *fl.ServerState {
	t.Helper()
	st, err := srv.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func assertBitIdentical(t *testing.T, want, got *fl.ServerState) {
	t.Helper()
	if len(want.Global) != len(got.Global) {
		t.Fatalf("global length %d vs %d", len(want.Global), len(got.Global))
	}
	for i := range want.Global {
		if want.Global[i] != got.Global[i] {
			t.Fatalf("global[%d]: %v vs %v — resume is not bit-identical", i, want.Global[i], got.Global[i])
		}
	}
	if len(want.Clients) != len(got.Clients) {
		t.Fatalf("client count %d vs %d", len(want.Clients), len(got.Clients))
	}
	for id, blob := range want.Clients {
		if !bytes.Equal(blob, got.Clients[id]) {
			t.Fatalf("client %d final state diverged — local training replay is not deterministic", id)
		}
	}
	if want.SamplerState != got.SamplerState {
		t.Fatalf("sampler state %d vs %d", want.SamplerState, got.SamplerState)
	}
}

// runBaseline runs an uninterrupted durable federation to completion and
// returns its final state.
func runBaseline(t *testing.T, every int) *fl.ServerState {
	t.Helper()
	srv := buildFederation(t)
	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "base.ckpt")}
	err := srv.RunWithOptions(harnessRounds, fl.RunOptions{
		CheckpointEvery: every,
		Save: func(st *fl.ServerState) error {
			return mgr.Save(&checkpoint.Snapshot{State: *st})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return finalState(t, srv)
}

func TestCrashResumeBitIdenticalInProcess(t *testing.T) {
	cases := []struct {
		name       string
		every      int
		crashAfter int
		// resumeRound is the snapshot round the restart must land on: the
		// last checkpoint at or before the crash.
		resumeRound int
	}{
		{"crash on checkpoint boundary", 1, 3, 4},
		// With a cadence of 3, checkpoints land after rounds 2 and 5. A
		// crash after round 3 rewinds to round 3 and replays it.
		{"crash between checkpoints", 3, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runBaseline(t, tc.every)

			mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
			save := func(st *fl.ServerState) error {
				return mgr.Save(&checkpoint.Snapshot{State: *st})
			}

			crashed := buildFederation(t)
			err := crashed.RunWithOptions(harnessRounds, fl.RunOptions{
				CheckpointEvery: tc.every,
				Save:            save,
				AfterRound:      faults.CrashAt(tc.crashAfter),
			})
			if !errors.Is(err, faults.ErrCrash) {
				t.Fatalf("crashed run: got %v, want ErrCrash", err)
			}

			// Process death: everything in memory is gone. Rebuild the
			// federation from its seeds and restore from disk.
			resumed := buildFederation(t)
			snap, err := mgr.Load()
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.RestoreState(&snap.State); err != nil {
				t.Fatal(err)
			}
			if resumed.Round() != tc.resumeRound {
				t.Fatalf("restored to round %d, want %d", resumed.Round(), tc.resumeRound)
			}
			err = resumed.RunWithOptions(harnessRounds, fl.RunOptions{
				CheckpointEvery: tc.every, Save: save,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, want, finalState(t, resumed))
		})
	}
}

// TestCrashResumeSurvivesTornSnapshot corrupts the newest snapshot
// generation after the crash (bit rot / torn write discovered only at
// restart). The restore must detect it by checksum, fall back to the
// previous generation, replay the extra round deterministically, and
// still finish bit-identical.
func TestCrashResumeSurvivesTornSnapshot(t *testing.T) {
	want := runBaseline(t, 1)

	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	save := func(st *fl.ServerState) error {
		return mgr.Save(&checkpoint.Snapshot{State: *st})
	}

	crashed := buildFederation(t)
	err := crashed.RunWithOptions(harnessRounds, fl.RunOptions{
		CheckpointEvery: 1,
		Save:            save,
		AfterRound:      faults.CrashAt(3),
	})
	if !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("crashed run: got %v, want ErrCrash", err)
	}
	// The round-3 snapshot was mid-write when the process died.
	if err := faults.CorruptFile(mgr.Path, 40); err != nil {
		t.Fatal(err)
	}

	resumed := buildFederation(t)
	snap, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(&snap.State); err != nil {
		t.Fatal(err)
	}
	if resumed.Round() != 3 {
		t.Fatalf("fallback restored to round %d, want the previous generation's 3", resumed.Round())
	}
	err = resumed.RunWithOptions(harnessRounds, fl.RunOptions{CheckpointEvery: 1, Save: save})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, finalState(t, resumed))
}

// TestStopResumeBitIdentical covers the graceful path the CLI signal
// handlers use: Stop ends the run at a round boundary with a final
// snapshot, and a later resume finishes bit-identically.
func TestStopResumeBitIdentical(t *testing.T) {
	want := runBaseline(t, 2)

	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	save := func(st *fl.ServerState) error {
		return mgr.Save(&checkpoint.Snapshot{State: *st})
	}

	stop := make(chan struct{})
	stopped := buildFederation(t)
	err := stopped.RunWithOptions(harnessRounds, fl.RunOptions{
		CheckpointEvery: 2,
		Save:            save,
		AfterRound: func(round int) error {
			if round == 2 { // an odd boundary: forces the final extra snapshot
				close(stop)
			}
			return nil
		},
		Stop: stop,
	})
	if !errors.Is(err, fl.ErrStopped) {
		t.Fatalf("stopped run: got %v, want ErrStopped", err)
	}

	resumed := buildFederation(t)
	snap, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(&snap.State); err != nil {
		t.Fatal(err)
	}
	if resumed.Round() != 3 {
		t.Fatalf("resumed at round %d, want 3 (final snapshot at the stop boundary)", resumed.Round())
	}
	err = resumed.RunWithOptions(harnessRounds, fl.RunOptions{CheckpointEvery: 2, Save: save})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, finalState(t, resumed))
}
