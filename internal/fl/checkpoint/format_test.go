package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Token: "deadbeef",
		State: fl.ServerState{
			NextRound:  7,
			Global:     []float64{0.25, -1.5, 3.75},
			FailCounts: map[int]int{2: 1},
			Clients:    map[int][]byte{0: {1, 2, 3}, 1: {4, 5}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data, err := Encode(KindSnapshot, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := DecodeBytes(data, KindSnapshot, 0, &got); err != nil {
		t.Fatal(err)
	}
	if got.Token != "deadbeef" || got.State.NextRound != 7 {
		t.Fatalf("round trip mangled snapshot: %+v", got)
	}
	if len(got.State.Global) != 3 || got.State.Global[2] != 3.75 {
		t.Fatalf("round trip mangled globals: %v", got.State.Global)
	}
	if !bytes.Equal(got.State.Clients[1], []byte{4, 5}) {
		t.Fatalf("round trip mangled client blobs: %v", got.State.Clients)
	}
}

func TestDecodeRejectsForeignData(t *testing.T) {
	var v Snapshot
	for name, data := range map[string][]byte{
		"empty":   {},
		"short":   []byte("CIP"),
		"garbage": []byte("GET / HTTP/1.1\r\n\r\n"),
		"rawgob":  {0x1f, 0xff, 0x81, 0x03},
	} {
		if err := DecodeBytes(data, KindSnapshot, 0, &v); !errors.Is(err, ErrNotCheckpoint) {
			t.Errorf("%s: got %v, want ErrNotCheckpoint", name, err)
		}
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	data, err := Encode(KindSnapshot, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Truncations keeping the magic intact must read as corrupt.
	for _, n := range []int{10, headerSize - 1, headerSize, len(data) - 1} {
		var v Snapshot
		if err := DecodeBytes(data[:n], KindSnapshot, 0, &v); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
	// Every single-bit flip past the magic must be detected (flips inside
	// the magic read as a different format entirely).
	for off := len(Magic); off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x01
		var v Snapshot
		err := DecodeBytes(mut, KindSnapshot, 0, &v)
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
}

func TestDecodeEnforcesKindAndBudget(t *testing.T) {
	data, err := Encode(KindGlobal, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	var v Snapshot
	if err := DecodeBytes(data, KindSnapshot, 0, &v); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("kind mismatch: got %v, want ErrWrongKind", err)
	}
	if err := DecodeBytes(data, "", 0, &v); err != nil {
		t.Fatalf("empty kind should accept any container: %v", err)
	}
	if err := DecodeBytes(data, KindGlobal, 8, &v); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("tiny budget: got %v, want ErrTooLarge", err)
	}
}

func TestWriteFileAtomicAndPrevRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")

	first := sampleSnapshot()
	if err := WriteFile(path, KindSnapshot, first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.State.NextRound = 8
	if err := WriteFile(path, KindSnapshot, second); err != nil {
		t.Fatal(err)
	}

	var cur, prev Snapshot
	if err := ReadFile(path, KindSnapshot, 0, &cur); err != nil {
		t.Fatal(err)
	}
	if err := ReadFile(path+".prev", KindSnapshot, 0, &prev); err != nil {
		t.Fatal(err)
	}
	if cur.State.NextRound != 8 || prev.State.NextRound != 7 {
		t.Fatalf("rotation wrong: current round %d, previous %d", cur.State.NextRound, prev.State.NextRound)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestReadFileRejectsOversizedWithoutReading(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "huge")
	if err := os.WriteFile(path, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	var v Snapshot
	if err := ReadFile(path, KindSnapshot, 64, &v); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}
