package checkpoint_test

// Crash harness for the compressed in-process engine: with a
// compress.Bank on the round policy, the server-side error-feedback
// residuals become part of the durable state. A crash between
// checkpoints must restore the bank from the snapshot container and
// replay to a final state bit-identical to an uninterrupted compressed
// run — a residual lost or doubled across the restart would skew every
// subsequent reconstruction.

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/faults"
)

func bankFederation(t *testing.T) *fl.Server {
	t.Helper()
	srv := buildFederation(t)
	srv.Policy = &fl.RoundPolicy{
		MinQuorum: 1,
		Compress:  compress.NewBank(compress.Config{Mode: compress.TopKQ16, TopKFrac: 0.25}),
	}
	return srv
}

func TestCrashResumeCompressedBankBitIdentical(t *testing.T) {
	const every, crashAfter = 3, 3 // checkpoints after rounds 2 and 5; crash rewinds to round 3

	// Uninterrupted compressed durable run: the reference result.
	base := bankFederation(t)
	baseMgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "base.ckpt")}
	err := base.RunWithOptions(harnessRounds, fl.RunOptions{
		CheckpointEvery: every,
		Save: func(st *fl.ServerState) error {
			return baseMgr.Save(&checkpoint.Snapshot{State: *st})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := finalState(t, base)

	// The compression must be in the loop: a dense run of the same
	// federation lands somewhere else.
	dense := buildFederation(t)
	if err := dense.Run(harnessRounds); err != nil {
		t.Fatal(err)
	}
	if g := dense.Global(); g[0] == want.Global[0] && g[len(g)-1] == want.Global[len(g)-1] {
		t.Fatal("compressed and dense runs agree — the bank is not in the aggregation path")
	}

	// Crash mid-run, rebuild the process, restore from the container.
	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	save := func(st *fl.ServerState) error {
		return mgr.Save(&checkpoint.Snapshot{State: *st})
	}
	crashed := bankFederation(t)
	err = crashed.RunWithOptions(harnessRounds, fl.RunOptions{
		CheckpointEvery: every,
		Save:            save,
		AfterRound:      faults.CrashAt(crashAfter),
	})
	if !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("crashed run: got %v, want ErrCrash", err)
	}

	snap, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.State.Compress) == 0 {
		t.Fatal("snapshot container carries no bank state — EF residuals were not persisted")
	}
	resumed := bankFederation(t)
	if err := resumed.RestoreState(&snap.State); err != nil {
		t.Fatal(err)
	}
	err = resumed.RunWithOptions(harnessRounds, fl.RunOptions{
		CheckpointEvery: every, Save: save,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, finalState(t, resumed))
}

// TestRestoreRejectsBankConfigMismatch: restoring a snapshot whose bank
// was built under a different compression config is a hard error — a
// silently reinterpreted residual would corrupt the federation.
func TestRestoreRejectsBankConfigMismatch(t *testing.T) {
	srv := bankFederation(t)
	if err := srv.Run(2); err != nil {
		t.Fatal(err)
	}
	st, err := srv.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	other := buildFederation(t)
	other.Policy = &fl.RoundPolicy{
		MinQuorum: 1,
		Compress:  compress.NewBank(compress.Config{Mode: compress.Q8}),
	}
	if err := other.RestoreState(st); err == nil {
		t.Fatal("bank config mismatch accepted on restore")
	}
}
