// Package checkpoint persists federation state durably: a versioned,
// CRC-checksummed container format plus an atomic-write Manager that
// retains the previous snapshot, so a federated run killed at any round
// boundary can resume bit-identically — and a torn or bit-flipped write is
// detected by checksum and falls back to the last good snapshot instead of
// silently resuming from garbage.
//
// The container is deliberately dumb: a fixed 32-byte header followed by a
// gob payload.
//
//	offset  size  field
//	0       8     magic "CIPCKPT1"
//	8       8     kind (8 ASCII bytes naming the payload type)
//	16      4     format version, big-endian uint32
//	20      8     payload length, big-endian uint64
//	28      4     CRC-32C (Castagnoli) of the payload, big-endian
//	32      —     gob-encoded payload
//
// Every field is checked on read before a single payload byte reaches the
// gob decoder, and the declared payload length is bounded by the caller's
// byte budget, so a truncated, corrupted, or hostile file produces a clean
// typed error — never a panic or an unbounded allocation.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	// Magic identifies a checkpoint-container file.
	Magic = "CIPCKPT1"
	// Version is the current container format version.
	Version = 1

	headerSize = 32
)

// Payload kinds. Each is exactly 8 ASCII bytes — the width of the header's
// kind field — so no padding rules are needed.
const (
	// KindSnapshot is a full federation snapshot (Snapshot).
	KindSnapshot = "fedstate"
	// KindGlobal is a bare global parameter vector (flcli.SaveGlobal).
	KindGlobal = "flglobal"
	// KindArtifact is an experiments.Artifact.
	KindArtifact = "artifact"
	// KindTable is a persisted experiment grid-cell table.
	KindTable = "exptable"
)

// DefaultMaxBytes caps how large a payload a reader will accept when the
// caller passes no explicit budget.
const DefaultMaxBytes = 1 << 30 // 1 GiB

var (
	// ErrNotCheckpoint means the data does not begin with the container
	// magic — it is some other format entirely (readers with legacy
	// formats key their fallback on this).
	ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint container")
	// ErrCorrupt means the data claims to be a container but fails
	// validation: truncated header or payload, unknown version, length
	// mismatch, CRC mismatch, or an undecodable payload.
	ErrCorrupt = errors.New("checkpoint: corrupt container")
	// ErrWrongKind means a valid container holds a different payload kind
	// than the caller asked for.
	ErrWrongKind = errors.New("checkpoint: wrong payload kind")
	// ErrTooLarge means the container's declared payload exceeds the
	// caller's byte budget.
	ErrTooLarge = errors.New("checkpoint: payload exceeds size budget")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode wraps v, gob-encoded, in a checkpoint container of the given kind.
func Encode(kind string, v any) ([]byte, error) {
	if len(kind) != 8 {
		return nil, fmt.Errorf("checkpoint: kind %q must be exactly 8 bytes", kind)
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, headerSize))
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("checkpoint: encoding %s payload: %w", kind, err)
	}
	b := buf.Bytes()
	payload := b[headerSize:]
	copy(b[0:8], Magic)
	copy(b[8:16], kind)
	binary.BigEndian.PutUint32(b[16:20], Version)
	binary.BigEndian.PutUint64(b[20:28], uint64(len(payload)))
	binary.BigEndian.PutUint32(b[28:32], crc32.Checksum(payload, castagnoli))
	return b, nil
}

// DecodeBytes validates a container and gob-decodes its payload into v.
// maxBytes ≤ 0 selects DefaultMaxBytes.
func DecodeBytes(data []byte, kind string, maxBytes int64, v any) error {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if len(data) < 8 || string(data[0:8]) != Magic {
		return ErrNotCheckpoint
	}
	if len(data) < headerSize {
		return fmt.Errorf("%w: %d-byte file is shorter than the %d-byte header",
			ErrCorrupt, len(data), headerSize)
	}
	gotKind := string(data[8:16])
	if ver := binary.BigEndian.Uint32(data[16:20]); ver != Version {
		return fmt.Errorf("%w: unsupported version %d (have %d)", ErrCorrupt, ver, Version)
	}
	plen := binary.BigEndian.Uint64(data[20:28])
	if plen > uint64(maxBytes) {
		return fmt.Errorf("%w: declared payload of %d bytes exceeds budget %d",
			ErrTooLarge, plen, maxBytes)
	}
	if uint64(len(data)-headerSize) != plen {
		return fmt.Errorf("%w: declared payload of %d bytes, have %d",
			ErrCorrupt, plen, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(data[28:32]); got != want {
		return fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrCorrupt, got, want)
	}
	if kind != "" && gotKind != kind {
		return fmt.Errorf("%w: container holds %q, want %q", ErrWrongKind, gotKind, kind)
	}
	return decodePayload(payload, gotKind, v)
}

// decodePayload gob-decodes a checksum-verified payload, converting any
// decoder panic (gob is not panic-free on all inputs) into ErrCorrupt so
// callers — and the fuzzer — always see an error.
func decodePayload(payload []byte, kind string, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %s payload decode panicked: %v", ErrCorrupt, kind, r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("%w: decoding %s payload: %v", ErrCorrupt, kind, err)
	}
	return nil
}

// Decode reads one container from r (which must not hold trailing data
// beyond the container) and decodes its payload into v. Reads are bounded:
// at most maxBytes payload bytes are pulled from r regardless of what the
// header claims.
func Decode(r io.Reader, kind string, maxBytes int64, v any) error {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	data, err := io.ReadAll(io.LimitReader(r, maxBytes+headerSize+1))
	if err != nil {
		return fmt.Errorf("checkpoint: reading container: %w", err)
	}
	if int64(len(data)) > maxBytes+headerSize {
		return fmt.Errorf("%w: stream exceeds %d-byte budget", ErrTooLarge, maxBytes)
	}
	return DecodeBytes(data, kind, maxBytes, v)
}

// WriteFile atomically writes a container for v at path: the bytes land in
// a temp file in the same directory, are fsynced, and are renamed over
// path; the directory is fsynced so the rename itself is durable. If path
// already exists it is first rotated to path+".prev", so one prior
// generation always survives a corrupted write.
func WriteFile(path, kind string, v any) error {
	data, err := Encode(kind, v)
	if err != nil {
		return err
	}
	return writeFileBytes(path, data)
}

func writeFileBytes(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+".prev"); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("checkpoint: rotating previous snapshot: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: installing %s: %w", path, err)
	}
	return syncDir(path)
}

// syncDir fsyncs the directory containing path so the rename is durable.
// Some filesystems refuse to fsync directories; that is not fatal.
func syncDir(path string) error {
	dir := "."
	if i := lastSlash(path); i >= 0 {
		dir = path[:i]
		if dir == "" {
			dir = "/"
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == os.PathSeparator {
			return i
		}
	}
	return -1
}

// ReadFile reads and validates the container at path, decoding its payload
// into v. The file size is checked against maxBytes before the contents
// are read, so an oversized file never reaches memory.
func ReadFile(path, kind string, maxBytes int64, v any) error {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() > maxBytes+headerSize {
		return fmt.Errorf("%w: %s is %d bytes, budget %d", ErrTooLarge, path, fi.Size(), maxBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return DecodeBytes(data, kind, maxBytes, v)
}
