package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/telemetry"
)

// Snapshot is the durable unit a federation writes at round boundaries:
// the engine's complete resumable state plus the session token TCP clients
// present when they reconnect after a coordinator restart.
type Snapshot struct {
	// Token identifies the federation session across restarts; empty for
	// in-process runs.
	Token string
	// State is the engine state captured at a round boundary.
	State fl.ServerState
}

// Metrics holds the checkpoint subsystem's telemetry. All methods are safe
// on a nil receiver, so instrumentation stays optional.
type Metrics struct {
	writes        *telemetry.Counter
	writeDuration *telemetry.Histogram
	bytes         *telemetry.Gauge
	restores      *telemetry.Counter
	corruptions   *telemetry.Counter
}

// NewMetrics registers the checkpoint metrics on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		writes: reg.Counter("checkpoint_writes_total",
			"Snapshots written durably."),
		writeDuration: reg.Histogram("checkpoint_write_duration_seconds",
			"Wall time of one durable snapshot write (encode+fsync+rename).",
			telemetry.DurationBuckets()),
		bytes: reg.Gauge("checkpoint_bytes",
			"Size in bytes of the most recent snapshot."),
		restores: reg.Counter("checkpoint_restores_total",
			"Snapshots successfully loaded for resume."),
		corruptions: reg.Counter("checkpoint_corruptions_total",
			"Snapshot loads that hit a corrupt or unreadable file."),
	}
}

func (m *Metrics) recordWrite(start time.Time, n int) {
	if m == nil {
		return
	}
	m.writes.Inc()
	m.writeDuration.Observe(time.Since(start).Seconds())
	m.bytes.Set(float64(n))
}

func (m *Metrics) recordRestore() {
	if m == nil {
		return
	}
	m.restores.Inc()
}

func (m *Metrics) recordCorruption() {
	if m == nil {
		return
	}
	m.corruptions.Inc()
}

// Manager owns one snapshot path and its rotation policy: Save writes
// atomically (temp file → fsync → rename, previous generation kept at
// Path+".prev"), Load validates the newest snapshot and falls back to the
// previous one when the newest is torn or corrupt.
type Manager struct {
	// Path is where the current snapshot lives.
	Path string
	// MaxBytes bounds how large a snapshot Load will accept (≤ 0 means
	// DefaultMaxBytes).
	MaxBytes int64
	// Metrics, when non-nil, receives write/restore/corruption telemetry.
	Metrics *Metrics
	// WriteHook, when non-nil, may transform the encoded container bytes
	// immediately before they hit the disk. It exists for the
	// crash-injection harness (internal/fl/faults truncates or bit-flips
	// through it); production code leaves it nil.
	WriteHook func([]byte) []byte
}

// PrevPath returns where the previous snapshot generation is kept.
func (m *Manager) PrevPath() string { return m.Path + ".prev" }

// Save durably persists snap.
func (m *Manager) Save(snap *Snapshot) error {
	start := time.Now()
	data, err := Encode(KindSnapshot, snap)
	if err != nil {
		return err
	}
	if m.WriteHook != nil {
		data = m.WriteHook(data)
	}
	if err := writeFileBytes(m.Path, data); err != nil {
		return err
	}
	m.Metrics.recordWrite(start, len(data))
	return nil
}

// Load reads the newest valid snapshot. A corrupt or truncated current
// file is counted and skipped in favor of Path+".prev"; only when neither
// generation validates does Load fail. os.ErrNotExist (unwrapped via
// errors.Is) means no snapshot has ever been written.
func (m *Manager) Load() (*Snapshot, error) {
	snap, err := m.loadOne(m.Path)
	if err == nil {
		m.Metrics.recordRestore()
		return snap, nil
	}
	if errors.Is(err, os.ErrNotExist) {
		// Fall through: a crash between the two renames of Save leaves
		// only the .prev generation on disk.
		if snap, perr := m.loadOne(m.PrevPath()); perr == nil {
			m.Metrics.recordRestore()
			return snap, nil
		}
		return nil, err
	}
	m.Metrics.recordCorruption()
	snap, perr := m.loadOne(m.PrevPath())
	if perr != nil {
		return nil, fmt.Errorf("checkpoint: %s unusable (%v) and no valid previous snapshot: %w",
			m.Path, err, perr)
	}
	m.Metrics.recordRestore()
	return snap, nil
}

func (m *Manager) loadOne(path string) (*Snapshot, error) {
	var snap Snapshot
	if err := ReadFile(path, KindSnapshot, m.MaxBytes, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
