package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/cip-fl/cip/internal/telemetry"
)

func TestManagerSaveLoad(t *testing.T) {
	m := &Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	if _, err := m.Load(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty manager: got %v, want ErrNotExist", err)
	}
	if err := m.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State.NextRound != 7 || snap.Token != "deadbeef" {
		t.Fatalf("loaded wrong snapshot: %+v", snap)
	}
}

func TestManagerFallsBackToPrevOnCorruption(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	m := &Manager{Path: filepath.Join(t.TempDir(), "state.ckpt"), Metrics: met}

	good := sampleSnapshot()
	if err := m.Save(good); err != nil {
		t.Fatal(err)
	}
	newer := sampleSnapshot()
	newer.State.NextRound = 9
	if err := m.Save(newer); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest generation in place; Load must detect it by
	// checksum and fall back to the previous one.
	data, err := os.ReadFile(m.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(m.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := m.Load()
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if snap.State.NextRound != 7 {
		t.Fatalf("fallback loaded round %d, want the previous generation's 7", snap.State.NextRound)
	}
	if met.corruptions.Value() != 1 {
		t.Fatalf("corruptions counter = %d, want 1", met.corruptions.Value())
	}
	if met.restores.Value() != 1 {
		t.Fatalf("restores counter = %d, want 1", met.restores.Value())
	}
}

func TestManagerTornWriteFallsBack(t *testing.T) {
	m := &Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	if err := m.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Second save tears: only the first 60% of the container lands.
	m.WriteHook = func(b []byte) []byte { return b[:len(b)*6/10] }
	newer := sampleSnapshot()
	newer.State.NextRound = 12
	if err := m.Save(newer); err != nil {
		t.Fatal(err)
	}
	m.WriteHook = nil

	snap, err := m.Load()
	if err != nil {
		t.Fatalf("load after torn write: %v", err)
	}
	if snap.State.NextRound != 7 {
		t.Fatalf("loaded round %d, want the intact previous generation's 7", snap.State.NextRound)
	}
}

func TestManagerBothGenerationsCorruptErrors(t *testing.T) {
	m := &Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	for i := 0; i < 2; i++ {
		if err := m.Save(sampleSnapshot()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{m.Path, m.PrevPath()} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Load(); err == nil {
		t.Fatal("load of two corrupt generations succeeded")
	}
}

func TestManagerMetricsOnWrite(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	m := &Manager{Path: filepath.Join(t.TempDir(), "state.ckpt"), Metrics: met}
	if err := m.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if met.writes.Value() != 1 {
		t.Fatalf("writes counter = %d, want 1", met.writes.Value())
	}
	if met.writeDuration.Count() != 1 {
		t.Fatalf("write duration histogram count = %d, want 1", met.writeDuration.Count())
	}
	if met.bytes.Value() <= 0 {
		t.Fatalf("bytes gauge = %v, want > 0", met.bytes.Value())
	}
}
