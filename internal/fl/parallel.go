package fl

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel round execution. One communication round is an embarrassingly
// parallel map over the participants — every client owns its model,
// optimizer state, and RNG — so TrainLocal calls fan out over a bounded
// worker pool. Determinism is preserved structurally (DESIGN.md §9):
//
//   - AlterFunc is evaluated in a serial pre-pass in roster order. Active
//     attacks are stateful (they record which round/client they poisoned),
//     so their call order must not depend on worker interleaving.
//   - Results land in an index-addressed slice, so aggregation order — and
//     therefore every floating-point sum — matches the serial schedule
//     bit for bit regardless of worker count.
//   - Observers run serially after collection, in roster order.

// trainOutcome is one participant's result, addressed by participant index.
type trainOutcome struct {
	update Update
	err    error
}

// trainWorkers resolves the worker count for n participants: Server.Workers
// when positive, else GOMAXPROCS, clamped to n.
func (s *Server) trainWorkers(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return min(w, n)
}

// trainParticipants runs TrainLocal for every participant and returns
// index-addressed outcomes plus the worker count used and the summed
// per-client training time (for the utilization metrics). ClientID is
// filled in on every successful update.
func (s *Server) trainParticipants(round int, participants []Client) ([]trainOutcome, int, time.Duration) {
	// Serial Alter pre-pass (see package comment above).
	params := make([][]float64, len(participants))
	for i, c := range participants {
		params[i] = s.global
		if s.Alter != nil {
			if altered := s.Alter(round, c.ID(), s.Global()); altered != nil {
				params[i] = altered
			}
		}
	}

	out := make([]trainOutcome, len(participants))
	workers := s.trainWorkers(len(participants))
	var busy atomic.Int64
	trainOne := func(i int) {
		t0 := time.Now()
		u, err := participants[i].TrainLocal(round, params[i])
		busy.Add(int64(time.Since(t0)))
		if err == nil {
			u.ClientID = participants[i].ID()
		}
		out[i] = trainOutcome{update: u, err: err}
	}
	if workers < 2 {
		for i := range participants {
			trainOne(i)
		}
		return out, 1, time.Duration(busy.Load())
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				trainOne(i)
			}
		}()
	}
	for i := range participants {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, workers, time.Duration(busy.Load())
}
