package fl

import (
	"math/rand"
	"testing"
)

// countingClient records how many rounds it participated in.
type countingClient struct {
	id     int
	rounds int
	dim    int
}

func (c *countingClient) ID() int         { return c.id }
func (c *countingClient) NumSamples() int { return 10 }
func (c *countingClient) TrainLocal(_ int, global []float64) (Update, error) {
	c.rounds++
	p := make([]float64, len(global))
	copy(p, global)
	return Update{Params: p, NumSamples: 10, TrainLoss: 1}, nil
}

func TestClientSamplingFraction(t *testing.T) {
	const k, rounds = 10, 40
	clients := make([]Client, k)
	counters := make([]*countingClient, k)
	for i := range clients {
		cc := &countingClient{id: i, dim: 3}
		clients[i] = cc
		counters[i] = cc
	}
	srv := NewServer([]float64{1, 2, 3}, clients...)
	srv.SampleFraction = 0.5
	srv.SampleRng = rand.New(rand.NewSource(1))
	if err := srv.Run(rounds); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counters {
		total += c.rounds
		if c.rounds == 0 {
			t.Errorf("client %d never sampled in %d rounds", c.id, rounds)
		}
	}
	want := rounds * k / 2
	if total != want {
		t.Fatalf("total participations = %d, want exactly %d (5 of 10 per round)", total, want)
	}
}

func TestClientSamplingObserverSeesIDs(t *testing.T) {
	const k = 6
	clients := make([]Client, k)
	for i := range clients {
		clients[i] = &countingClient{id: i}
	}
	rec := &HistoryRecorder{}
	srv := NewServer([]float64{0}, clients...)
	srv.SampleFraction = 0.5
	srv.SampleRng = rand.New(rand.NewSource(2))
	srv.Observers = append(srv.Observers, rec)
	if err := srv.Run(3); err != nil {
		t.Fatal(err)
	}
	for _, r := range rec.Rounds {
		if len(r.TrainLosses) != 3 {
			t.Fatalf("round %d observed %d updates, want 3", r.Round, len(r.TrainLosses))
		}
	}
}

func TestSamplingDisabledByDefault(t *testing.T) {
	const k = 4
	clients := make([]Client, k)
	counters := make([]*countingClient, k)
	for i := range clients {
		cc := &countingClient{id: i}
		clients[i] = cc
		counters[i] = cc
	}
	srv := NewServer([]float64{0}, clients...)
	if err := srv.Run(5); err != nil {
		t.Fatal(err)
	}
	for _, c := range counters {
		if c.rounds != 5 {
			t.Fatalf("client %d trained %d rounds, want 5 (no sampling)", c.id, c.rounds)
		}
	}
}

func TestUpdateCarriesClientID(t *testing.T) {
	clients := []Client{&countingClient{id: 7}}
	rec := &HistoryRecorder{}
	srv := NewServer([]float64{0}, clients...)
	srv.Observers = append(srv.Observers, rec)
	var seen []int
	srv.Observers = append(srv.Observers, observerFunc(func(_ int, _ []float64, updates []Update) {
		for _, u := range updates {
			seen = append(seen, u.ClientID)
		}
	}))
	if err := srv.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 7 {
		t.Fatalf("observer saw client IDs %v, want [7]", seen)
	}
}

type observerFunc func(round int, global []float64, updates []Update)

func (f observerFunc) ObserveRound(round int, global []float64, updates []Update) {
	f(round, global, updates)
}
