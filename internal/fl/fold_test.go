package fl

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/fl/robust"
)

func foldUpdates(n, dim int, seed int64) []Update {
	r := rand.New(rand.NewSource(seed))
	ups := make([]Update, n)
	for j := range ups {
		p := make([]float64, dim)
		for i := range p {
			p[i] = r.NormFloat64()
		}
		ups[j] = Update{ClientID: j, Params: p, NumSamples: 1 + r.Intn(40)}
	}
	return ups
}

// TestFoldMatchesAggregateBitExact: folding updates one at a time must
// reproduce the batch Aggregate bit for bit — they are the same ordered
// sum-then-divide, which is what lets the transport coordinator stream.
func TestFoldMatchesAggregateBitExact(t *testing.T) {
	for _, n := range []int{1, 3, 16} {
		ups := foldUpdates(n, 23, int64(n))
		want, err := Aggregate(ups)
		if err != nil {
			t.Fatal(err)
		}
		f := NewFold(23)
		for _, u := range ups {
			if err := f.Fold(u); err != nil {
				t.Fatal(err)
			}
		}
		got, rep, err := f.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Contributors != n {
			t.Fatalf("contributors %d, want %d", rep.Contributors, n)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d coord %d: fold %v != aggregate %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestFoldPartialTree: splitting the updates into shards, folding each
// shard into a partial, and folding the partials at a root must agree
// with the flat weighted mean to floating-point reassociation tolerance
// (the tree changes the association, not the arithmetic).
func TestFoldPartialTree(t *testing.T) {
	const n, dim, shards = 12, 31, 4
	ups := foldUpdates(n, dim, 99)
	flat, err := Aggregate(ups)
	if err != nil {
		t.Fatal(err)
	}

	root := NewFold(dim)
	root.Begin(make([]float64, dim))
	perShard := n / shards
	for s := 0; s < shards; s++ {
		leaf := NewFold(dim)
		leaf.Begin(make([]float64, dim))
		for _, u := range ups[s*perShard : (s+1)*perShard] {
			if err := leaf.Fold(u); err != nil {
				t.Fatal(err)
			}
		}
		p := leaf.PartialView(s, 7)
		if p.LeafID != s || p.Round != 7 || p.Count != perShard {
			t.Fatalf("partial header %+v", p)
		}
		if err := ValidatePartial(p, dim, 0); err != nil {
			t.Fatalf("leaf %d partial invalid: %v", s, err)
		}
		if err := root.FoldPartial(p); err != nil {
			t.Fatal(err)
		}
	}
	if root.Count() != n {
		t.Fatalf("root count %d, want %d", root.Count(), n)
	}
	tree, _, err := root.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if diff := math.Abs(tree[i] - flat[i]); diff > 1e-12*(1+math.Abs(flat[i])) {
			t.Fatalf("coord %d: tree %v vs flat %v (diff %v)", i, tree[i], flat[i], diff)
		}
	}
}

// TestValidatePartial covers the root's acceptance filter.
func TestValidatePartial(t *testing.T) {
	good := Partial{LeafID: 1, Round: 0, Sum: []float64{2, 4}, Weight: 2, Count: 2}
	if err := ValidatePartial(good, 2, 10); err != nil {
		t.Fatalf("valid partial rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Partial
		norm float64
	}{
		{"len mismatch", Partial{Sum: []float64{1}, Weight: 1, Count: 1}, 0},
		{"zero weight", Partial{Sum: []float64{1, 1}, Weight: 0, Count: 1}, 0},
		{"nan weight", Partial{Sum: []float64{1, 1}, Weight: math.NaN(), Count: 1}, 0},
		{"inf weight", Partial{Sum: []float64{1, 1}, Weight: math.Inf(1), Count: 1}, 0},
		{"zero count", Partial{Sum: []float64{1, 1}, Weight: 1, Count: 0}, 0},
		{"nan sum", Partial{Sum: []float64{math.NaN(), 1}, Weight: 1, Count: 1}, 0},
		{"inf sum", Partial{Sum: []float64{math.Inf(-1), 1}, Weight: 1, Count: 1}, 0},
		{"norm bound", Partial{Sum: []float64{30, 40}, Weight: 1, Count: 1}, 10},
	}
	for _, tc := range cases {
		if err := ValidatePartial(tc.p, 2, tc.norm); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The norm bound applies to the implied mean Sum/Weight, not the raw
	// sums: a heavy shard with a large weight stays admissible.
	heavy := Partial{Sum: []float64{3000, 4000}, Weight: 1000, Count: 100}
	if err := ValidatePartial(heavy, 2, 10); err != nil {
		t.Fatalf("heavy shard rejected: %v", err)
	}
}

// TestFoldRejectsBadUpdates mirrors the legacy Aggregate error paths.
func TestFoldRejectsBadUpdates(t *testing.T) {
	f := NewFold(2)
	if err := f.Fold(Update{ClientID: 3, Params: []float64{1}, NumSamples: 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := f.Fold(Update{ClientID: 4, Indices: []int{0}, Params: []float64{1}, DenseLen: 2, NumSamples: 1}); err == nil {
		t.Fatal("sparse update accepted")
	}
	empty := NewFold(2)
	if _, _, err := empty.Finalize(); err == nil {
		t.Fatal("empty finalize accepted")
	}
}

// TestFoldSteadyStateZeroAllocs: the Reset→Fold→FinalizeInto cycle the
// coordinator and in-process server run every round must not allocate
// once warmed up — the pooled-accumulator satellite of the scale-out PR.
func TestFoldSteadyStateZeroAllocs(t *testing.T) {
	const dim = 256
	ups := foldUpdates(8, dim, 5)
	f := NewFold(dim)
	dst := make([]float64, dim)
	round := func() {
		f.Reset(dim)
		for _, u := range ups {
			if err := f.Fold(u); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.FinalizeInto(dst); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm up
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Fatalf("steady-state fold allocates %v objects per round, want 0", allocs)
	}
}

// TestStreamAccumulatorAdapter: NewAccumulator wraps streaming robust
// rules and refuses partials (which only compose under the weighted
// mean), while non-streaming rules stay on the buffered path.
func TestStreamAccumulatorAdapter(t *testing.T) {
	if _, ok := NewAccumulator(robust.Median{}); ok {
		t.Fatal("median must not stream")
	}
	acc, ok := NewAccumulator(robust.Mean{})
	if !ok {
		t.Fatal("mean must stream")
	}
	center := []float64{1, 1}
	acc.Begin(center)
	if err := acc.Fold(Update{ClientID: 0, Params: []float64{3, 5}, NumSamples: 4}); err != nil {
		t.Fatal(err)
	}
	if err := acc.FoldPartial(Partial{Sum: []float64{1, 1}, Weight: 1, Count: 1}); err == nil {
		t.Fatal("robust stream accepted a partial")
	}
	out, rep, err := acc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Contributors != 1 || out[0] != 3 || out[1] != 5 {
		t.Fatalf("adapter result %v %+v", out, rep)
	}
}
