package secagg

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/attacks"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// echoClient returns a fixed parameter vector, making mask cancellation
// directly checkable.
type echoClient struct {
	id     int
	params []float64
}

func (c *echoClient) ID() int         { return c.id }
func (c *echoClient) NumSamples() int { return 1 }
func (c *echoClient) TrainLocal(int, []float64) (fl.Update, error) {
	p := make([]float64, len(c.params))
	copy(p, c.params)
	return fl.Update{Params: p, NumSamples: 1}, nil
}

func TestMasksCancelInAggregate(t *testing.T) {
	const k, dim = 4, 50
	rng := rand.New(rand.NewSource(1))
	inner := make([]fl.Client, k)
	var wantMean []float64
	for i := 0; i < k; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		if wantMean == nil {
			wantMean = make([]float64, dim)
		}
		for j := range p {
			wantMean[j] += p[j] / k
		}
		inner[i] = &echoClient{id: i, params: p}
	}
	masked, err := Wrap(7, inner)
	if err != nil {
		t.Fatal(err)
	}
	srv := fl.NewServer(make([]float64, dim), masked...)
	if err := srv.Run(3); err != nil {
		t.Fatal(err)
	}
	got := srv.Global()
	for j := range wantMean {
		if math.Abs(got[j]-wantMean[j]) > 1e-6 {
			t.Fatalf("masked aggregate diverged at %d: %v vs %v", j, got[j], wantMean[j])
		}
	}
}

func TestMaskedUpdateHidesIndividual(t *testing.T) {
	const dim = 200
	rng := rand.New(rand.NewSource(2))
	p := make([]float64, dim)
	for j := range p {
		p[j] = rng.NormFloat64() * 0.01
	}
	inner := []fl.Client{
		&echoClient{id: 0, params: p},
		&echoClient{id: 1, params: p},
	}
	masked, err := Wrap(9, inner)
	if err != nil {
		t.Fatal(err)
	}
	u, err := masked[0].TrainLocal(0, make([]float64, dim))
	if err != nil {
		t.Fatal(err)
	}
	// The masked update must be dominated by the mask, i.e. essentially
	// uncorrelated with (and enormously larger than) the true update.
	var normTrue, normMasked float64
	for j := range p {
		normTrue += p[j] * p[j]
		normMasked += u.Params[j] * u.Params[j]
	}
	if math.Sqrt(normMasked) < 100*math.Sqrt(normTrue) {
		t.Fatalf("mask amplitude too small to hide the update: %v vs %v",
			math.Sqrt(normMasked), math.Sqrt(normTrue))
	}
}

func TestMasksFreshEveryRound(t *testing.T) {
	seeds := NewPairwiseSeeds(3, 2)
	m0 := seeds.maskFor(0, 0, 10)
	m1 := seeds.maskFor(0, 1, 10)
	same := true
	for i := range m0 {
		if m0[i] != m1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("masks must differ across rounds")
	}
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(1, []fl.Client{&echoClient{id: 0}}); err == nil {
		t.Fatal("expected error with one client")
	}
	bad := []fl.Client{&echoClient{id: 0}, &echoClient{id: 5}}
	if _, err := Wrap(1, bad); err == nil {
		t.Fatal("expected error for non-contiguous IDs")
	}
}

// TestSecureAggregationDoesNotStopMI reproduces the paper's §VI argument:
// a federation behind secure aggregation produces the SAME global model,
// so the loss-threshold MI attack succeeds exactly as without it. Secure
// aggregation protects the updates in transit, not the model's memory of
// its training data.
func TestSecureAggregationDoesNotStopMI(t *testing.T) {
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 8, Train: 96, Test: 96, C: 2, H: 6, W: 6,
		Signal: 0.35, Noise: 0.45, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k, rounds = 2, 35
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(5)), model.VGG,
			train.In, train.NumClasses)
	}
	makeClients := func() []fl.Client {
		shards := datasets.PartitionIID(train, k, rand.New(rand.NewSource(6)))
		clients := make([]fl.Client, k)
		for i := 0; i < k; i++ {
			clients[i] = fl.NewLegacyClient(i, build(), shards[i], fl.ClientConfig{
				BatchSize: 16, LR: func(int) float64 { return 0.04 }, Momentum: 0.9,
			}, nil, rand.New(rand.NewSource(int64(20+i))))
		}
		return clients
	}

	run := func(clients []fl.Client) nn.Layer {
		net := build()
		srv := fl.NewServer(nn.FlattenParams(net.Params()), clients...)
		if err := srv.Run(rounds); err != nil {
			t.Fatal(err)
		}
		if err := nn.SetFlatParams(net.Params(), srv.Global()); err != nil {
			t.Fatal(err)
		}
		return net
	}

	plain := run(makeClients())
	wrapped, err := Wrap(13, makeClients())
	if err != nil {
		t.Fatal(err)
	}
	secure := run(wrapped)

	members, nonMembers := datasets.MembershipSplit(train, test, 80, rand.New(rand.NewSource(7)))
	plainAttack := attacks.ObMALT(plain, members, nonMembers)
	secureAttack := attacks.ObMALT(secure, members, nonMembers)

	if plainAttack.Accuracy() < 0.65 {
		t.Fatalf("setup: expected a working attack on the overfit model, got %v",
			plainAttack.Accuracy())
	}
	if math.Abs(secureAttack.Accuracy()-plainAttack.Accuracy()) > 0.1 {
		t.Fatalf("secure aggregation changed MI attack accuracy (%v vs %v); it should not",
			secureAttack.Accuracy(), plainAttack.Accuracy())
	}
}
