// Package secagg implements pairwise-masking secure aggregation in the
// style of Bonawitz et al. (CCS'17), which the paper's related work (§VI)
// discusses: every pair of clients shares a random seed; client i adds the
// seed-derived mask for each j>i and subtracts it for each j<i, so the
// server sees only masked updates while the SUM of all updates is
// unchanged.
//
// The package exists to demonstrate the paper's point empirically: secure
// aggregation hides individual updates from the server, but the aggregated
// global model still leaks membership — a client or server can run MI
// attacks against it unimpeded, which is exactly the gap CIP fills.
// (It also shows CIP composes with secure aggregation: CIP clients report
// only model parameters, which can be masked like any other update.)
package secagg

import (
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/fl"
)

// PairwiseSeeds holds the shared secrets of every unordered client pair.
// In a deployment these come from a Diffie-Hellman exchange; here the
// trusted setup derives them from a session seed.
type PairwiseSeeds struct {
	n     int
	seeds map[[2]int]int64
}

// NewPairwiseSeeds derives seeds for n clients from a session seed.
func NewPairwiseSeeds(sessionSeed int64, n int) *PairwiseSeeds {
	rng := rand.New(rand.NewSource(sessionSeed))
	ps := &PairwiseSeeds{n: n, seeds: make(map[[2]int]int64)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ps.seeds[[2]int{i, j}] = rng.Int63()
		}
	}
	return ps
}

// maskFor returns client id's net mask for one round: + PRG(s_ij) for
// every j>id, − PRG(s_ij) for every j<id. Folding the round into the PRG
// seed gives fresh masks every round without communication.
func (ps *PairwiseSeeds) maskFor(id, round, dim int) []float64 {
	mask := make([]float64, dim)
	for other := 0; other < ps.n; other++ {
		if other == id {
			continue
		}
		lo, hi := id, other
		sign := 1.0
		if other < id {
			lo, hi = other, id
			sign = -1
		}
		seed := ps.seeds[[2]int{lo, hi}] ^ int64(round)*0x5851F42D4C957F2D
		prg := rand.New(rand.NewSource(seed))
		for k := range mask {
			// Large-amplitude masks: individual updates are buried.
			mask[k] += sign * prg.NormFloat64() * maskScale
		}
	}
	return mask
}

// maskScale sets the mask amplitude relative to typical parameter values.
const maskScale = 100.0

// Residual returns the summed mask residue left in an aggregate when only
// the listed survivors' masked updates reach the server: pairwise masks
// between two survivors cancel in the sum, but each (survivor, dropped)
// pair leaves its full-amplitude mask behind, silently skewing the round
// by ~maskScale per missing pair. The coordinator must either subtract
// this residual before averaging (the trusted-setup analogue of Bonawitz's
// unmasking round, where survivors reconstruct dropped clients' seeds) or
// abort the round via a full-roster quorum — never aggregate as-is.
func (ps *PairwiseSeeds) Residual(survivors []int, round, dim int) []float64 {
	res := make([]float64, dim)
	for _, id := range survivors {
		for k, v := range ps.maskFor(id, round, dim) {
			res[k] += v
		}
	}
	return res
}

// Client wraps an fl.Client so its reported parameters are masked.
// Masking requires unweighted averaging (the pairwise masks cancel in a
// plain sum), so all participants must hold equally sized shards — the
// standard secure-aggregation deployment constraint.
type Client struct {
	Inner fl.Client
	Seeds *PairwiseSeeds
}

// ID implements fl.Client.
func (c *Client) ID() int { return c.Inner.ID() }

// NumSamples reports 1: secure aggregation sums masked vectors, so the
// aggregate must be the unweighted mean.
func (c *Client) NumSamples() int { return 1 }

// TrainLocal trains the inner client and masks the reported parameters.
func (c *Client) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := c.Inner.TrainLocal(round, global)
	if err != nil {
		return fl.Update{}, err
	}
	mask := c.Seeds.maskFor(c.Inner.ID(), round, len(u.Params))
	masked := make([]float64, len(u.Params))
	for i := range masked {
		masked[i] = u.Params[i] + mask[i]
	}
	u.Params = masked
	u.NumSamples = 1
	// The per-round training loss would also leak; a secure-aggregation
	// deployment doesn't report it per client.
	u.TrainLoss = 0
	return u, nil
}

// Wrap masks a whole federation. It returns an error when fewer than two
// clients are given (masking needs at least one pair).
func Wrap(sessionSeed int64, clients []fl.Client) ([]fl.Client, error) {
	if len(clients) < 2 {
		return nil, fmt.Errorf("secagg: need at least 2 clients, got %d", len(clients))
	}
	seeds := NewPairwiseSeeds(sessionSeed, len(clients))
	out := make([]fl.Client, len(clients))
	for i, c := range clients {
		if c.ID() != i {
			return nil, fmt.Errorf("secagg: client at index %d has ID %d; IDs must be 0..n-1", i, c.ID())
		}
		out[i] = &Client{Inner: c, Seeds: seeds}
	}
	return out, nil
}

var _ fl.Client = (*Client)(nil)
