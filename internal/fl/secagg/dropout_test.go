package secagg

// Dropout coverage: what happens to pairwise masking when a client vanishes
// mid-round. The invariant under test is the satellite's: the masked sum
// must cancel (after residual correction) or the round must abort cleanly —
// a partial masked aggregate must never be used silently.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/faults"
)

func dropoutRoster(t *testing.T, rng *rand.Rand, k, dim int) ([]fl.Client, []float64) {
	t.Helper()
	inner := make([]fl.Client, k)
	mean := make([]float64, dim)
	for i := 0; i < k; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
			mean[j] += p[j] / float64(k)
		}
		inner[i] = &echoClient{id: i, params: p}
	}
	wrapped, err := Wrap(7, inner)
	if err != nil {
		t.Fatal(err)
	}
	return wrapped, mean
}

// A dropped client leaves ~maskScale-amplitude residue in the naive masked
// mean, and subtracting Residual restores exact-to-rounding cancellation.
func TestDropoutResidualRestoresCancellation(t *testing.T) {
	const k, dim, round = 5, 40, 3
	rng := rand.New(rand.NewSource(9))
	wrapped, _ := dropoutRoster(t, rng, k, dim)

	survivors := []int{0, 1, 3, 4} // client 2 dropped
	updates := make([]fl.Update, 0, k-1)
	for _, id := range survivors {
		u, err := wrapped[id].TrainLocal(round, make([]float64, dim))
		if err != nil {
			t.Fatal(err)
		}
		updates = append(updates, u)
	}
	naive, err := fl.Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}

	// Survivor-only honest mean, for reference.
	wantMean := make([]float64, dim)
	for _, id := range survivors {
		ec := wrapped[id].(*Client).Inner.(*echoClient)
		for j := range wantMean {
			wantMean[j] += ec.params[j] / float64(len(survivors))
		}
	}

	// Naive aggregation over the partial roster is badly skewed — this is
	// the silent corruption the round must never ship.
	var worst float64
	for j := range naive {
		if d := math.Abs(naive[j] - wantMean[j]); d > worst {
			worst = d
		}
	}
	if worst < 1 {
		t.Fatalf("dropout left max skew %.3g; expected mask-scale residue — "+
			"is the test roster actually masked?", worst)
	}

	// Residual-corrected aggregation cancels to numerical noise.
	seeds := wrapped[0].(*Client).Seeds
	res := seeds.Residual(survivors, round, dim)
	for j := range naive {
		naive[j] -= res[j] / float64(len(survivors))
	}
	for j := range naive {
		if d := math.Abs(naive[j] - wantMean[j]); d > 1e-9 {
			t.Fatalf("corrected aggregate off by %.3g at coordinate %d", d, j)
		}
	}
}

// With every client present the residual is zero: all pairs cancel.
func TestResidualZeroWithFullRoster(t *testing.T) {
	const k, dim = 4, 16
	seeds := NewPairwiseSeeds(3, k)
	res := seeds.Residual([]int{0, 1, 2, 3}, 5, dim)
	for j, v := range res {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("full-roster residual %.3g at coordinate %d, want 0", v, j)
		}
	}
}

// A full-roster quorum (MinQuorum = n) makes a mid-round dropout abort the
// round cleanly: the run fails with a quorum error and the global stays at
// its pre-round value — never a silently skewed masked aggregate.
func TestDropoutAbortsUnderFullRosterQuorum(t *testing.T) {
	const k, dim = 4, 12
	rng := rand.New(rand.NewSource(4))
	wrapped, _ := dropoutRoster(t, rng, k, dim)
	// Client 2 crashes on round 1 (round 0 completes normally).
	wrapped[2] = faults.NewFlaky(wrapped[2], faults.On(1))

	initial := make([]float64, dim)
	srv := fl.NewServer(initial, wrapped...)
	srv.Policy = &fl.RoundPolicy{MinQuorum: k}
	if err := srv.RunRound(0); err != nil {
		t.Fatalf("full-roster round 0: %v", err)
	}
	afterRound0 := srv.Global()
	err := srv.RunRound(1)
	if err == nil {
		t.Fatal("dropout round aggregated under a full-roster quorum")
	}
	for j, v := range srv.Global() {
		if v != afterRound0[j] {
			t.Fatalf("aborted round moved global[%d]: %v -> %v", j, afterRound0[j], v)
		}
	}
}
