package fl

import (
	"errors"
	"fmt"
	"math"

	"github.com/cip-fl/cip/internal/fl/robust"
)

// Streaming aggregation. The batch Aggregate materializes every update
// before folding; at large rosters that is O(roster × params) coordinator
// memory. A Fold consumes updates one at a time in a caller-fixed order
// and keeps only the running weighted sums — O(params) total — and is
// bit-identical to Aggregate by construction: both perform the same
// per-coordinate `acc += w·v` sequence followed by one divide, so folding
// updates in roster order reproduces the batch result exactly (float
// addition is order-sensitive, which is why the ORDER is part of the
// contract, not the arrival schedule).
//
// A Fold can also stop before the divide and emit its raw weighted sums as
// a Partial — the unit of hierarchical aggregation. A leaf coordinator
// folds its client shard and forwards one Partial; the root folds partials
// (FoldPartial) exactly as if it had folded every underlying update,
// because weighted sums compose associatively (up to float reassociation
// across the leaf boundary).

// Partial is one aggregation subtree's pre-division contribution: the
// weighted parameter sums of the updates it folded, the total weight, and
// the contributing client count. It is what a leaf coordinator sends its
// root each round (wire.MsgPartial).
type Partial struct {
	// LeafID identifies the producing leaf aggregator.
	LeafID int
	// Round is the communication round the partial belongs to; a root
	// rejects partials for any other round.
	Round int
	// Sum is the weighted parameter sum Σ w·v over the folded updates.
	Sum []float64
	// Weight is the total FedAvg weight Σ w behind Sum.
	Weight float64
	// Count is how many client updates were folded into Sum.
	Count int

	// The remaining fields ride the v2 partial frame (wire.MsgPartial2)
	// and are zero on v1 partials.

	// ExpectWeight is the weight the subtree PLANNED to contribute this
	// round — the summed weights of its post-sampling cohort, including
	// members that subsequently failed. The root's round coverage is
	// Σ Weight / Σ ExpectWeight over accepted partials.
	ExpectWeight float64
	// Degraded marks a partial forwarded below the subtree's MinQuorum:
	// still valid, but explicitly covering less weight than planned.
	Degraded bool
	// Sketch, when non-nil, carries the subtree's mergeable row reservoir
	// so sort-based robust rules (median, trimmed mean) can run at the
	// tree root; nil partials fall back to one implied-mean row.
	Sketch *robust.Sketch
}

// ValidatePartial rejects partials that would poison the root aggregate: a
// length mismatch, a non-positive or non-finite weight, a non-positive
// client count, any non-finite sum coordinate, or (when maxNorm > 0) an
// implied mean Sum/Weight whose L2 norm exceeds the same bound individual
// updates are held to — a mean of vectors each within the bound is itself
// within the bound, so an honest leaf can never trip it.
func ValidatePartial(p Partial, wantLen int, maxNorm float64) error {
	if len(p.Sum) != wantLen {
		return fmt.Errorf("fl: leaf %d partial has %d params, want %d", p.LeafID, len(p.Sum), wantLen)
	}
	if p.Weight <= 0 || math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) {
		return fmt.Errorf("fl: leaf %d partial has invalid weight %v", p.LeafID, p.Weight)
	}
	if p.Count <= 0 {
		return fmt.Errorf("fl: leaf %d partial claims %d contributing clients", p.LeafID, p.Count)
	}
	var ss float64
	for i, v := range p.Sum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fl: leaf %d partial has non-finite sum at param %d", p.LeafID, i)
		}
		m := v / p.Weight
		ss += m * m
	}
	if maxNorm > 0 {
		if n := math.Sqrt(ss); n > maxNorm {
			return fmt.Errorf("fl: leaf %d partial mean L2 norm %.4g exceeds bound %.4g",
				p.LeafID, n, maxNorm)
		}
	}
	if math.IsNaN(p.ExpectWeight) || math.IsInf(p.ExpectWeight, 0) || p.ExpectWeight < 0 {
		return fmt.Errorf("fl: leaf %d partial has invalid expected weight %v", p.LeafID, p.ExpectWeight)
	}
	if p.ExpectWeight > 0 && p.Weight > p.ExpectWeight*(1+1e-9) {
		return fmt.Errorf("fl: leaf %d partial weight %v exceeds its own expectation %v",
			p.LeafID, p.Weight, p.ExpectWeight)
	}
	if p.Sketch != nil {
		if err := p.Sketch.Validate(wantLen); err != nil {
			return fmt.Errorf("fl: leaf %d partial: %w", p.LeafID, err)
		}
		if p.Sketch.Rows > p.Count {
			return fmt.Errorf("fl: leaf %d partial sketch represents %d rows but claims %d clients",
				p.LeafID, p.Sketch.Rows, p.Count)
		}
		if maxNorm > 0 {
			for i, row := range p.Sketch.RowsView() {
				var rss float64
				for _, v := range row {
					rss += v * v
				}
				if n := math.Sqrt(rss); n > maxNorm {
					return fmt.Errorf("fl: leaf %d partial sketch row %d L2 norm %.4g exceeds bound %.4g",
						p.LeafID, i, n, maxNorm)
				}
			}
		}
	}
	return nil
}

// Accumulator is the streaming-fold interface the transport layer drives:
// Begin once per round with the pre-round global (the center robust rules
// measure against), Fold each valid update (or FoldPartial each leaf
// partial) in a fixed deterministic order, then Finalize. Implementations:
// *Fold (the sample-weighted FedAvg mean, nil robust rule) and the
// adapters NewAccumulator builds over robust.StreamRule.
type Accumulator interface {
	// Begin resets the accumulator for one round; center is the pre-round
	// global parameter vector (retained until Finalize — do not mutate).
	Begin(center []float64)
	// Fold folds one dense validated update. Updates must arrive in the
	// caller's fixed fold order for bit-identical results.
	Fold(u Update) error
	// FoldPartial folds one leaf partial. Only the weighted-mean
	// accumulator supports it; robust stream rules reject partials.
	FoldPartial(p Partial) error
	// Count is the number of client updates folded so far (partials
	// contribute their Count).
	Count() int
	// Finalize completes the round and returns the aggregate. The
	// accumulator must be Begin'd again before reuse.
	Finalize() ([]float64, robust.Report, error)
}

// NewAccumulator returns a streaming accumulator for the given robust rule
// (nil selects the sample-weighted FedAvg mean) and reports whether the
// rule supports streaming at all. Median and the trimmed mean need the
// full per-coordinate column and return ok=false: callers fall back to the
// buffered path for them.
func NewAccumulator(rule robust.Aggregator) (Accumulator, bool) {
	if rule == nil {
		return new(Fold), true
	}
	sr, ok := rule.(robust.StreamRule)
	if !ok {
		return nil, false
	}
	return &streamAccum{rule: sr, st: sr.NewStream()}, true
}

// Fold is the streaming sample-weighted FedAvg mean: Σ w·v accumulated in
// fold order, divided by Σ w at finalize — the exact operation sequence of
// the batch Aggregate, hence bit-identical to it. The accumulator slice is
// reused across Reset calls, so a Fold held across rounds aggregates with
// zero steady-state allocations (FinalizeInto).
type Fold struct {
	acc   []float64
	total float64
	count int
}

// NewFold returns a Fold accumulating dim-parameter updates.
func NewFold(dim int) *Fold {
	f := &Fold{}
	f.Reset(dim)
	return f
}

// Reset clears the fold for a new round of dim-parameter updates, reusing
// the accumulator's storage when it is large enough.
func (f *Fold) Reset(dim int) {
	if cap(f.acc) >= dim {
		f.acc = f.acc[:dim]
		for i := range f.acc {
			f.acc[i] = 0
		}
	} else {
		f.acc = make([]float64, dim)
	}
	f.total = 0
	f.count = 0
}

// Begin implements Accumulator: the center's values are ignored (the
// weighted mean needs no center), only its length matters.
func (f *Fold) Begin(center []float64) { f.Reset(len(center)) }

// Count implements Accumulator.
func (f *Fold) Count() int { return f.count }

// Dim returns the parameter dimension the fold accumulates.
func (f *Fold) Dim() int { return len(f.acc) }

// Fold folds one update into the running weighted sums. The validation and
// arithmetic mirror the batch Aggregate exactly (same error cases, same
// per-coordinate operation order).
func (f *Fold) Fold(u Update) error {
	if u.Sparse() {
		// A sparse or delta update folded as if it were dense would
		// silently misweight every coordinate; demand an explicit
		// Densify step instead.
		return fmt.Errorf("fl: aggregate: client %d update is sparse/delta; densify before aggregation",
			u.ClientID)
	}
	if len(u.Params) != len(f.acc) {
		return fmt.Errorf("fl: aggregate: client %d update has %d params, want %d",
			u.ClientID, len(u.Params), len(f.acc))
	}
	w := float64(u.NumSamples)
	if w <= 0 {
		w = 1
	}
	f.total += w
	acc := f.acc
	for i, v := range u.Params {
		acc[i] += w * v
	}
	f.count++
	return nil
}

// FoldPartial folds one leaf partial: weighted sums add coordinate-wise,
// weights and counts add scalar-wise. The caller is responsible for
// ValidatePartial.
func (f *Fold) FoldPartial(p Partial) error {
	if len(p.Sum) != len(f.acc) {
		return fmt.Errorf("fl: aggregate: leaf %d partial has %d params, want %d",
			p.LeafID, len(p.Sum), len(f.acc))
	}
	if p.Weight <= 0 {
		return fmt.Errorf("fl: aggregate: leaf %d partial has weight %v", p.LeafID, p.Weight)
	}
	f.total += p.Weight
	acc := f.acc
	for i, v := range p.Sum {
		acc[i] += v
	}
	f.count += p.Count
	return nil
}

// errZeroFold mirrors the batch Aggregate's zero-updates error.
var errZeroFold = errors.New("fl: aggregate of zero updates")

// FinalizeInto writes the weighted mean into dst without disturbing the
// accumulator's storage, so the fold can be Reset and reused with zero
// allocations. dst must have the fold's dimension.
func (f *Fold) FinalizeInto(dst []float64) error {
	if f.count == 0 {
		return errZeroFold
	}
	if len(dst) != len(f.acc) {
		return fmt.Errorf("fl: aggregate: finalize into %d params, want %d", len(dst), len(f.acc))
	}
	for i, v := range f.acc {
		dst[i] = v / f.total
	}
	return nil
}

// Finalize implements Accumulator: it divides the accumulator in place and
// detaches it (the returned slice is owned by the caller; the next Reset
// allocates fresh storage).
func (f *Fold) Finalize() ([]float64, robust.Report, error) {
	if f.count == 0 {
		return nil, robust.Report{}, errZeroFold
	}
	out := f.acc
	for i := range out {
		out[i] /= f.total
	}
	rep := robust.Report{Contributors: f.count}
	f.acc = nil
	return out, rep, nil
}

// PartialView packages the fold's current state as a Partial WITHOUT
// dividing. The Sum slice aliases the accumulator: consume (encode/copy)
// it before the next Reset or Fold.
func (f *Fold) PartialView(leafID, round int) Partial {
	return Partial{LeafID: leafID, Round: round, Sum: f.acc, Weight: f.total, Count: f.count}
}

// streamAccum adapts a robust.StreamRule to the Accumulator interface:
// dense validated updates become unweighted rows (robust rules ignore the
// client-claimed sample weights — see the robust package comment).
type streamAccum struct {
	rule robust.StreamRule
	st   robust.Stream
}

func (a *streamAccum) Begin(center []float64) { a.st.Reset(center) }

func (a *streamAccum) Fold(u Update) error {
	if u.Sparse() {
		return fmt.Errorf("fl: aggregate: client %d update is sparse/delta; densify before aggregation",
			u.ClientID)
	}
	return a.st.Fold(u.Params)
}

func (a *streamAccum) FoldPartial(p Partial) error {
	return fmt.Errorf("fl: %s cannot fold leaf partials; hierarchical aggregation requires the weighted-mean rule",
		a.rule.Name())
}

func (a *streamAccum) Count() int { return a.st.Count() }

func (a *streamAccum) Finalize() ([]float64, robust.Report, error) {
	out, rep, err := a.st.Finalize()
	if err != nil {
		return nil, rep, fmt.Errorf("fl: %s aggregation: %w", a.rule.Name(), err)
	}
	return out, rep, nil
}
