package fl

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/rng"
)

// ErrStopped is returned by RunWithOptions (and the transport coordinator)
// when a run is stopped at a round boundary through the Stop channel after
// writing a final snapshot. It signals a clean, resumable shutdown, not a
// failure.
var ErrStopped = errors.New("fl: run stopped at round boundary")

// StatefulClient is an optional Client extension for durable checkpointing:
// a client that can capture — and later restore — every piece of local
// state its future TrainLocal calls depend on beyond the broadcast global
// parameters (optimizer momentum, RNG position, data order, and for CIP
// clients the secret perturbation). The blob is opaque to the engine; it
// only promises that RestoreState(CaptureState()) on an identically
// constructed client resumes the training stream bit-identically.
type StatefulClient interface {
	Client
	CaptureState() ([]byte, error)
	RestoreState([]byte) error
}

// ServerState is everything the in-process engine needs to continue a
// federation deterministically after process death: the next round index,
// the global parameter vector, the client-sampler RNG state, the
// cumulative per-client failure counters a RoundPolicy accumulates, and
// each client's captured local state. internal/fl/checkpoint persists it.
type ServerState struct {
	// NextRound is the index of the first round that has not completed.
	NextRound int
	// Global is the aggregated global parameter vector after round
	// NextRound-1.
	Global []float64
	// SamplerState is the client-sampling RNG state; valid iff HasSampler.
	SamplerState uint64
	HasSampler   bool
	// FailCounts is the cumulative per-client failure count recorded under
	// a RoundPolicy (nil when no failures were recorded).
	FailCounts map[int]int
	// Reputation is the serialized reputation tracker (anomaly scores and
	// quarantine states) when the policy runs one; nil otherwise. Older
	// snapshots without the field decode with it nil — gob tolerates the
	// addition — and restore with a fresh tracker. Persisting it is what
	// keeps a restart from amnestying a quarantined attacker.
	Reputation []byte
	// Compress is the serialized error-feedback bank (per-client
	// compression residuals) when the policy routes updates through the
	// compressed wire path; nil otherwise. Older snapshots without the
	// field decode with it nil — gob tolerates the addition. Persisting
	// it is what keeps a resumed compressed run bit-identical: the
	// residual a round's compression left behind shapes every later
	// round's delta.
	Compress []byte
	// Clients maps client ID to its captured local-state blob.
	Clients map[int][]byte
	// LastCoverage is the most recent round's aggregation-tree coverage
	// (delivered / planned cohort weight; 1 on flat federations). Older
	// snapshots decode with it 0 — gob tolerates the addition — and the
	// value is forensic only: resume logic never branches on it.
	LastCoverage float64
}

// CaptureState snapshots the server at a round boundary. Every client must
// implement StatefulClient, and an active client sampler must run on a
// serializable source (SamplerSrc); otherwise the federation cannot be
// resumed bit-identically and CaptureState says so instead of writing a
// snapshot that silently would not.
func (s *Server) CaptureState() (*ServerState, error) {
	st := &ServerState{
		NextRound: s.round,
		Global:    s.Global(),
		Clients:   make(map[int][]byte, len(s.Clients)),
	}
	if s.samplingActive() {
		if s.SamplerSrc == nil {
			return nil, errors.New("fl: client sampling is active but SamplerSrc is unset; " +
				"a stock rand.Rand cannot be checkpointed")
		}
		st.SamplerState = s.SamplerSrc.State()
		st.HasSampler = true
	}
	if len(s.failCounts) > 0 {
		st.FailCounts = make(map[int]int, len(s.failCounts))
		for id, n := range s.failCounts {
			st.FailCounts[id] = n
		}
	}
	if s.Policy != nil && s.Policy.Reputation != nil {
		blob, err := s.Policy.Reputation.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("fl: capturing reputation state: %w", err)
		}
		st.Reputation = blob
	}
	if s.Policy != nil && s.Policy.Compress != nil {
		blob, err := s.Policy.Compress.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("fl: capturing compression state: %w", err)
		}
		st.Compress = blob
	}
	for _, c := range s.Clients {
		sc, ok := c.(StatefulClient)
		if !ok {
			return nil, fmt.Errorf("fl: client %d (%T) does not implement StatefulClient", c.ID(), c)
		}
		blob, err := sc.CaptureState()
		if err != nil {
			return nil, fmt.Errorf("fl: capturing client %d state: %w", c.ID(), err)
		}
		st.Clients[c.ID()] = blob
	}
	return st, nil
}

// RestoreState rewinds a freshly constructed server (same roster, same
// seeds, same configuration) to a captured boundary. After RestoreState,
// Run and RunWithOptions continue from st.NextRound.
func (s *Server) RestoreState(st *ServerState) error {
	if len(st.Global) != len(s.global) {
		return fmt.Errorf("fl: restoring %d global params onto a model with %d", len(st.Global), len(s.global))
	}
	if st.HasSampler {
		if s.SamplerSrc == nil {
			s.SamplerSrc = rng.NewSource(0)
		}
		s.SamplerSrc.SetState(st.SamplerState)
		s.SampleRng = rand.New(s.SamplerSrc)
	}
	byID := make(map[int]StatefulClient, len(s.Clients))
	for _, c := range s.Clients {
		if sc, ok := c.(StatefulClient); ok {
			byID[c.ID()] = sc
		}
	}
	for id, blob := range st.Clients {
		sc, ok := byID[id]
		if !ok {
			return fmt.Errorf("fl: snapshot holds state for client %d, which is missing or not stateful", id)
		}
		if err := sc.RestoreState(blob); err != nil {
			return fmt.Errorf("fl: restoring client %d state: %w", id, err)
		}
	}
	if st.Reputation != nil && s.Policy != nil && s.Policy.Reputation != nil {
		if err := s.Policy.Reputation.Restore(st.Reputation); err != nil {
			return fmt.Errorf("fl: restoring reputation state: %w", err)
		}
	}
	if st.Compress != nil && s.Policy != nil && s.Policy.Compress != nil {
		if err := s.Policy.Compress.Restore(st.Compress); err != nil {
			return fmt.Errorf("fl: restoring compression state: %w", err)
		}
	}
	copy(s.global, st.Global)
	s.round = st.NextRound
	if st.FailCounts != nil {
		s.failCounts = make(map[int]int, len(st.FailCounts))
		for id, n := range st.FailCounts {
			s.failCounts[id] = n
		}
	} else {
		s.failCounts = nil
	}
	return nil
}

// Round returns the index of the next round the server will run (equal to
// the number of completed rounds on a fresh or resumed server).
func (s *Server) Round() int { return s.round }

// FailureCounts returns a copy of the cumulative per-client failure
// counters accumulated under a RoundPolicy.
func (s *Server) FailureCounts() map[int]int {
	out := make(map[int]int, len(s.failCounts))
	for id, n := range s.failCounts {
		out[id] = n
	}
	return out
}

func (s *Server) samplingActive() bool {
	return s.SampleFraction > 0 && s.SampleFraction < 1 && len(s.Clients) >= 2
}

// RunOptions configures a durable run: checkpoint cadence, the snapshot
// sink, a graceful-stop channel, and a post-round hook for fault
// injection.
type RunOptions struct {
	// CheckpointEvery writes a snapshot after every N completed rounds
	// (values ≤ 1 mean every round). The final round always snapshots.
	CheckpointEvery int
	// Save persists one captured state durably; internal/fl/checkpoint's
	// Manager.Save is the intended implementation. Nil disables
	// checkpointing (RunWithOptions degenerates to Run).
	Save func(*ServerState) error
	// Stop, when signaled (closed), ends the run at the next round
	// boundary: a final snapshot is written (if Save is set) and
	// RunWithOptions returns ErrStopped.
	Stop <-chan struct{}
	// AfterRound, when non-nil, runs after each completed round and its
	// checkpoint write; returning an error aborts the run immediately —
	// the crash-injection harness (internal/fl/faults.CrashAt) simulates
	// process death through it.
	AfterRound func(round int) error
}

// RunWithOptions executes communication rounds up to totalRounds (an
// absolute round count: a restored server continues from its checkpointed
// round rather than round 0), writing durable snapshots on the configured
// cadence. A run killed at any point and resumed from its last snapshot
// produces bit-identical results to an uninterrupted run.
func (s *Server) RunWithOptions(totalRounds int, opts RunOptions) error {
	every := opts.CheckpointEvery
	if every < 1 {
		every = 1
	}
	checkpoint := func() error {
		st, err := s.CaptureState()
		if err != nil {
			return err
		}
		return opts.Save(st)
	}
	for s.round < totalRounds {
		r := s.round
		if err := s.RunRound(r); err != nil {
			return err
		}
		wrote := false
		if opts.Save != nil && ((r+1)%every == 0 || r == totalRounds-1) {
			if err := checkpoint(); err != nil {
				return fmt.Errorf("fl: checkpoint after round %d: %w", r, err)
			}
			wrote = true
		}
		if opts.AfterRound != nil {
			if err := opts.AfterRound(r); err != nil {
				return err
			}
		}
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				if opts.Save != nil && !wrote {
					if err := checkpoint(); err != nil {
						return fmt.Errorf("fl: final checkpoint after round %d: %w", r, err)
					}
				}
				return ErrStopped
			default:
			}
		}
	}
	return nil
}
