package fl_test

// In-process Byzantine chaos suite: n clients with f of them running
// sign-flip / scaled-gradient attacks, federated under the robust
// aggregators. Proves the ISSUE's acceptance bar — attacked accuracy within
// 2 points of the attack-free baseline under median and trimmed mean, with
// f < n/3 — plus the reputation tracker quarantining the attackers and a
// checkpoint/restore cycle keeping them quarantined.

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/fl/robust"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

const (
	byzN      = 12
	byzF      = 3 // f < n/3
	byzRounds = 40
)

func byzAttacker(id int) bool { return id >= byzN-byzF }

func byzData(t *testing.T) (*datasets.Dataset, *datasets.Dataset) {
	t.Helper()
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Train: 240, Test: 200, C: 1, H: 6, W: 6,
		Signal: 0.6, Noise: 0.2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

// byzServer builds a 12-client federation; attack wraps each client (nil
// inner return keeps it honest), stateful selects checkpointable clients.
func byzServer(t *testing.T, train *datasets.Dataset,
	attack func(id int, inner fl.Client) fl.Client, policy *fl.RoundPolicy,
	stateful bool) *fl.Server {
	t.Helper()
	shards := datasets.PartitionIID(train, byzN, rand.New(rand.NewSource(99)))
	clients := make([]fl.Client, byzN)
	var initial []float64
	for i := 0; i < byzN; i++ {
		net := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG,
			train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		cfg := fl.ClientConfig{
			BatchSize: 16, LocalEpochs: 1,
			LR: func(int) float64 { return 0.08 }, Momentum: 0.9,
		}
		var c fl.Client
		if stateful {
			c = fl.NewStatefulLegacyClient(i, net, shards[i], cfg, nil, int64(100+i))
		} else {
			c = fl.NewLegacyClient(i, net, shards[i], cfg, nil,
				rand.New(rand.NewSource(int64(100+i))))
		}
		if attack != nil {
			c = attack(i, c)
		}
		clients[i] = c
	}
	srv := fl.NewServer(initial, clients...)
	srv.Policy = policy
	return srv
}

func byzAccuracy(t *testing.T, train, test *datasets.Dataset, global []float64) float64 {
	t.Helper()
	eval := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG,
		train.In, train.NumClasses)
	if err := nn.SetFlatParams(eval.Params(), global); err != nil {
		t.Fatal(err)
	}
	return fl.Evaluate(eval, test, 32)
}

func signFlipAttack(id int, inner fl.Client) fl.Client {
	if !byzAttacker(id) {
		return inner
	}
	return faults.NewSignFlip(inner, 3, nil)
}

func scaledAttack(id int, inner fl.Client) fl.Client {
	if !byzAttacker(id) {
		return inner
	}
	return faults.NewScaledUpdate(inner, 25, nil)
}

func TestByzantineConvergenceWithinEpsilon(t *testing.T) {
	train, test := byzData(t)

	base := byzServer(t, train, nil, nil, false)
	if err := base.Run(byzRounds); err != nil {
		t.Fatal(err)
	}
	baseline := byzAccuracy(t, train, test, base.Global())
	if baseline < 0.6 {
		t.Fatalf("attack-free baseline accuracy %.3f too weak to compare against", baseline)
	}

	attacks := map[string]func(int, fl.Client) fl.Client{
		"signflip": signFlipAttack,
		"scaled":   scaledAttack,
	}
	rules := map[string]robust.Aggregator{
		"median":  robust.Median{},
		"trimmed": robust.TrimmedMean{Frac: 0.25},
	}
	for an, attack := range attacks {
		for rn, rule := range rules {
			t.Run(an+"/"+rn, func(t *testing.T) {
				// Full defense stack: robust fold plus reputation-driven
				// quarantine, exactly what a hardened deployment runs.
				// MinQuorum is budgeted for the trim: once the f attackers
				// are quarantined, 9 clients remain and trimmed(0.25) keeps
				// 9 − 2·⌊0.25·9⌋ = 5 contributors — a MinQuorum above that
				// would (correctly) abort with ErrQuorumAfterTrim.
				srv := byzServer(t, train, attack, &fl.RoundPolicy{
					MinQuorum:  4,
					Robust:     rule,
					Reputation: robust.NewReputation(robust.ReputationConfig{}),
				}, false)
				if err := srv.Run(byzRounds); err != nil {
					t.Fatal(err)
				}
				acc := byzAccuracy(t, train, test, srv.Global())
				if acc < baseline-0.02 {
					t.Fatalf("%s under %s: accuracy %.3f, baseline %.3f — outside the 2%% band",
						rn, an, acc, baseline)
				}
			})
		}
	}
}

// Sanity for the whole exercise: the same attack under the plain FedAvg
// mean wrecks the model, so the robust rules above are doing real work.
func TestByzantinePlainMeanCollapses(t *testing.T) {
	train, test := byzData(t)
	srv := byzServer(t, train, scaledAttack, nil, false)
	if err := srv.Run(byzRounds); err != nil {
		t.Fatal(err)
	}
	if acc := byzAccuracy(t, train, test, srv.Global()); acc > 0.5 {
		t.Fatalf("plain mean under 25x scaled attack still at accuracy %.3f — "+
			"attack harness is not biting", acc)
	}
}

// quarantineWatcher records FailQuarantined exclusions per client.
type quarantineWatcher struct {
	mu       sync.Mutex
	excluded map[int]int
}

func (q *quarantineWatcher) ObserveRound(int, []float64, []fl.Update) {}

func (q *quarantineWatcher) ObserveFailures(_ int, failures []fl.ClientFailure) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, f := range failures {
		if f.Reason == fl.FailQuarantined {
			if q.excluded == nil {
				q.excluded = make(map[int]int)
			}
			q.excluded[f.ClientID]++
		}
	}
}

func TestByzantineQuarantineSurvivesCheckpoint(t *testing.T) {
	train, test := byzData(t)
	policy := func() *fl.RoundPolicy {
		return &fl.RoundPolicy{
			MinQuorum:  byzN / 2,
			Robust:     robust.Median{},
			Reputation: robust.NewReputation(robust.ReputationConfig{}),
		}
	}

	p1 := policy()
	srv := byzServer(t, train, signFlipAttack, p1, true)
	watch := &quarantineWatcher{}
	srv.Observers = append(srv.Observers, watch)
	if err := srv.Run(10); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < byzN; id++ {
		if byzAttacker(id) && !p1.Reputation.Blocked(id) {
			t.Fatalf("attacker %d not quarantined after 10 rounds (state %v, score %.3f)",
				id, p1.Reputation.StateOf(id), p1.Reputation.ScoreOf(id))
		}
		if !byzAttacker(id) && p1.Reputation.StateOf(id) != robust.Healthy {
			t.Fatalf("honest client %d left healthy state: %v (score %.3f)",
				id, p1.Reputation.StateOf(id), p1.Reputation.ScoreOf(id))
		}
	}
	watch.mu.Lock()
	for id := range watch.excluded {
		if !byzAttacker(id) {
			t.Fatalf("honest client %d was excluded as quarantined", id)
		}
	}
	if len(watch.excluded) != byzF {
		t.Fatalf("observers saw %d quarantined clients, want %d", len(watch.excluded), byzF)
	}
	watch.mu.Unlock()

	// Checkpoint the federation and restore it into a freshly built server
	// with a FRESH reputation tracker: the snapshot, not process memory,
	// must carry the quarantine.
	st, err := srv.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	p2 := policy()
	resumed := byzServer(t, train, signFlipAttack, p2, true)
	if err := resumed.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < byzN; id++ {
		if byzAttacker(id) != p2.Reputation.Blocked(id) {
			t.Fatalf("restore changed quarantine for client %d: blocked=%v",
				id, p2.Reputation.Blocked(id))
		}
	}
	if err := resumed.Run(byzRounds); err != nil {
		t.Fatal(err)
	}
	for id := byzN - byzF; id < byzN; id++ {
		if !p2.Reputation.Blocked(id) {
			t.Fatalf("attacker %d was amnestied after resume", id)
		}
	}
	// With the attackers locked out the federation trains on clean inputs.
	if acc := byzAccuracy(t, train, test, resumed.Global()); acc < 0.6 {
		t.Fatalf("resumed federation accuracy %.3f, want ≥ 0.6", acc)
	}
}
