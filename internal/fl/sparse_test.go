package fl

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/robust"
)

func sparseUpdate(indices []int, values []float64, denseLen int) Update {
	return Update{ClientID: 1, Params: values, Indices: indices, DenseLen: denseLen, IsDelta: true}
}

func TestValidateSparseTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		u    Update
		want error
	}{
		{"index-negative", sparseUpdate([]int{-1, 2}, []float64{1, 2}, 4), ErrSparseIndexRange},
		{"index-past-end", sparseUpdate([]int{0, 4}, []float64{1, 2}, 4), ErrSparseIndexRange},
		{"duplicate", sparseUpdate([]int{1, 1}, []float64{1, 2}, 4), ErrSparseDuplicateIndex},
		{"unsorted", sparseUpdate([]int{2, 0}, []float64{1, 2}, 4), ErrSparseUnsorted},
		{"count-mismatch", sparseUpdate([]int{0, 1}, []float64{1}, 4), ErrSparseShape},
		{"dense-len-mismatch", sparseUpdate([]int{0}, []float64{1}, 5), ErrSparseShape},
		{"too-many-indices", sparseUpdate([]int{0, 1, 2, 3, 3}, []float64{1, 2, 3, 4, 5}, 4), ErrSparseShape},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateSparse(tc.u, 4); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			// ValidateUpdate must classify identically (it delegates).
			if err := ValidateUpdate(tc.u, 4); !errors.Is(err, tc.want) {
				t.Fatalf("ValidateUpdate err = %v, want %v", err, tc.want)
			}
		})
	}
	if err := ValidateSparse(sparseUpdate([]int{1, 3}, []float64{1, 2}, 4), 4); err != nil {
		t.Fatalf("valid sparse update rejected: %v", err)
	}
	if err := ValidateSparse(sparseUpdate([]int{0}, []float64{math.NaN()}, 4), 4); err == nil {
		t.Fatal("NaN sparse value accepted")
	}
	// Dense delta: length and finiteness only.
	dd := Update{ClientID: 2, Params: []float64{1, 2, 3}, IsDelta: true, DenseLen: 3}
	if err := ValidateSparse(dd, 3); err != nil {
		t.Fatalf("dense delta rejected: %v", err)
	}
	dd.Params = dd.Params[:2]
	if err := ValidateSparse(dd, 3); !errors.Is(err, ErrSparseShape) {
		t.Fatalf("short dense delta: err = %v", err)
	}
}

func TestDensify(t *testing.T) {
	global := []float64{10, 20, 30, 40}

	t.Run("sparse-delta", func(t *testing.T) {
		u := sparseUpdate([]int{1, 3}, []float64{0.5, -2}, 4)
		got, err := Densify(u, global)
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{10, 20.5, 30, 38}
		if !reflect.DeepEqual(got.Params, want) {
			t.Fatalf("Params = %v, want %v", got.Params, want)
		}
		if got.Sparse() || got.DenseLen != 0 {
			t.Fatalf("densified update still compressed: %+v", got)
		}
		if got.ClientID != u.ClientID {
			t.Fatal("densify dropped the client id")
		}
	})
	t.Run("dense-raw-passthrough", func(t *testing.T) {
		u := Update{ClientID: 3, Params: []float64{1, 2, 3, 4}}
		got, err := Densify(u, global)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, u) {
			t.Fatalf("dense raw update changed: %+v", got)
		}
	})
	t.Run("invalid-rejected", func(t *testing.T) {
		if _, err := Densify(sparseUpdate([]int{9}, []float64{1}, 4), global); !errors.Is(err, ErrSparseIndexRange) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no-global-alias", func(t *testing.T) {
		u := Update{ClientID: 4, Params: []float64{0, 0, 0, 0}, IsDelta: true, DenseLen: 4}
		got, err := Densify(u, global)
		if err != nil {
			t.Fatal(err)
		}
		got.Params[0] = -1
		if global[0] != 10 {
			t.Fatal("densified update aliases the global vector")
		}
	})
}

// TestAggregateRejectsSparse: the misfold fix — an un-densified update
// reaching either aggregation path is an explicit error, never a silent
// wrong answer.
func TestAggregateRejectsSparse(t *testing.T) {
	dense := Update{ClientID: 0, Params: []float64{1, 2}, NumSamples: 1}
	sparse := sparseUpdate([]int{0}, []float64{5}, 2)
	if _, err := Aggregate([]Update{dense, sparse}); err == nil {
		t.Fatal("Aggregate accepted a sparse update")
	}
	if _, _, err := AggregateRobust(robust.Median{}, []float64{0, 0},
		[]Update{dense, sparse}, 1); err == nil {
		t.Fatal("AggregateRobust accepted a sparse update")
	}
	// Delta-but-dense shapes are rejected too.
	delta := Update{ClientID: 2, Params: []float64{1, 2}, IsDelta: true, DenseLen: 2, NumSamples: 1}
	if _, err := Aggregate([]Update{delta}); err == nil {
		t.Fatal("Aggregate accepted a delta update")
	}
}

// TestCompressedThroughRobustFold: densified compressed updates flow
// through Median/TrimmedMean with the documented semantics — the fold
// sees the reconstructed dense vectors, so its output equals the fold
// computed directly over those reconstructions.
func TestCompressedThroughRobustFold(t *testing.T) {
	global := []float64{1, -1, 2, 0, 3, -2, 0.5, 1.5}
	cfg := compress.Config{Mode: compress.TopKQ8, TopKFrac: 0.5}
	raw := [][]float64{
		{1.5, -1, 2.25, 0, 3, -2, 0.5, 1.5},
		{0.5, -0.5, 2, 0.25, 3.5, -2, 0.25, 1.5},
		{1, -1.5, 1.75, 0, 2.5, -1.5, 0.5, 1.75},
	}
	updates := make([]Update, len(raw))
	recon := make([][]float64, len(raw))
	for i, p := range raw {
		delta := make([]float64, len(p))
		for j := range p {
			delta[j] = p[j] - global[j]
		}
		d, err := cfg.Compress(delta)
		if err != nil {
			t.Fatal(err)
		}
		dec := d.Decode()
		recon[i] = make([]float64, len(global))
		for j := range dec {
			recon[i][j] = global[j] + dec[j]
		}
		// Route the compressed shape through the real wire semantics:
		// sparse delta update, then Densify.
		u := Update{ClientID: i, NumSamples: 1, Params: append([]float64(nil), d.Decode()...), IsDelta: true, DenseLen: len(global)}
		u, err = Densify(u, global)
		if err != nil {
			t.Fatal(err)
		}
		updates[i] = u
	}
	for _, agg := range []robust.Aggregator{robust.Median{}, robust.TrimmedMean{Frac: 0.34}} {
		got, _, err := AggregateRobust(agg, global, updates, 1)
		if err != nil {
			t.Fatal(err)
		}
		weights := []float64{1, 1, 1}
		want, _, err := agg.Aggregate(global, recon, weights)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s over compressed updates = %v, over reconstructions = %v",
				agg.Name(), got, want)
		}
	}
}

// TestPolicyCompressBankRoundTrip: the in-process engine under
// RoundPolicy.Compress aggregates the lossy reconstructions (not the raw
// updates), applies error feedback across rounds, and checkpoints the
// bank through ServerState bit-identically.
func TestPolicyCompressBankRoundTrip(t *testing.T) {
	build := func() (*Server, []*vecClient) {
		clients := []*vecClient{
			newVecClient(0, 3, []float64{1, 0, -1, 0.5}),
			newVecClient(1, 3, []float64{-0.5, 1, 0, 0.25}),
		}
		srv := NewServer(make([]float64, 4), clients[0], clients[1])
		srv.Policy = &RoundPolicy{
			MinQuorum: 2,
			Compress:  compress.NewBank(compress.Config{Mode: compress.TopKQ16, TopKFrac: 0.5}),
		}
		return srv, clients
	}

	// Reference: run 6 rounds straight through.
	ref, _ := build()
	if err := ref.Run(6); err != nil {
		t.Fatal(err)
	}

	// Crash run: 3 rounds, capture, rebuild, restore, 3 more rounds.
	a, _ := build()
	if err := a.Run(3); err != nil {
		t.Fatal(err)
	}
	st, err := a.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Compress == nil {
		t.Fatal("ServerState.Compress not captured")
	}
	b, _ := build()
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(6); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Global(), b.Global()) {
		t.Fatalf("compressed resume diverged:\nref    %v\nresume %v", ref.Global(), b.Global())
	}

	// And compression must actually be lossy here (the bank is in the
	// loop): a dense run of the same federation differs.
	dense, _ := build()
	dense.Policy.Compress = nil
	if err := dense.Run(6); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ref.Global(), dense.Global()) {
		t.Fatal("compressed and dense runs agree exactly — bank is not in the aggregation path")
	}
}

// vecClient is a deterministic StatefulClient whose update is the global
// plus a fixed step scaled by (round+1) — cheap, nonlinear enough to
// expose ordering bugs, and trivially capturable.
type vecClient struct {
	id      int
	samples int
	step    []float64
	round   int
}

func newVecClient(id, samples int, step []float64) *vecClient {
	return &vecClient{id: id, samples: samples, step: step}
}

func (c *vecClient) ID() int         { return c.id }
func (c *vecClient) NumSamples() int { return c.samples }

func (c *vecClient) TrainLocal(round int, global []float64) (Update, error) {
	out := make([]float64, len(global))
	scale := 1 / float64(round+1)
	for i := range out {
		out[i] = global[i] + scale*c.step[i%len(c.step)]
	}
	c.round = round + 1
	return Update{ClientID: c.id, Params: out, NumSamples: c.samples, TrainLoss: scale}, nil
}

func (c *vecClient) CaptureState() ([]byte, error) { return []byte{byte(c.round)}, nil }
func (c *vecClient) RestoreState(b []byte) error   { c.round = int(b[0]); return nil }
