package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"

	"github.com/cip-fl/cip/internal/fl/wire"
)

// ErrFrameCut is returned by a CutConn's Write when it fires: the
// scheduled frame was truncated mid-wire and the connection closed.
var ErrFrameCut = errors.New("faults: injected mid-frame connection cut")

// CutConn wraps a net.Conn and kills it in the middle of one scheduled
// outbound wire frame: the (skip+1)-th Write that starts a frame of the
// target type is truncated to half its bytes and the connection is closed
// under it, so the peer receives a torn frame followed by EOF — the
// worst-case shape of a process killed mid-send. The sender sees
// ErrFrameCut. Frames are matched on the wire header (magic byte plus
// frame type), which works because the transport writes each frame with a
// single Write call.
type CutConn struct {
	net.Conn
	mu    sync.Mutex
	typ   byte
	skip  int
	fired bool
}

// CutFrame wraps c to cut the (skip+1)-th outbound frame of frameType
// (a wire.Msg* constant) in half.
func CutFrame(c net.Conn, frameType byte, skip int) *CutConn {
	return &CutConn{Conn: c, typ: frameType, skip: skip}
}

// Fired reports whether the cut has happened.
func (c *CutConn) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// Write implements net.Conn.
func (c *CutConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	fire := false
	if !c.fired && len(p) > wire.HeaderLen && p[0] == wire.Magic && p[2] == c.typ {
		if c.skip > 0 {
			c.skip--
		} else {
			fire = true
			c.fired = true
		}
	}
	c.mu.Unlock()
	if !fire {
		return c.Conn.Write(p)
	}
	n, _ := c.Conn.Write(p[:len(p)/2])
	c.Conn.Close()
	return n, ErrFrameCut
}

// KillPlan schedules tree-node kills by round: round index → IDs of the
// nodes killed during that round. The chaos harness consults it each
// round and cuts the victims' parent links.
type KillPlan map[int][]int

// DrawKillPlan draws a deterministic plan from rng: kills (round, victim)
// events sampled without replacement from rounds × victims, so the same
// seed always kills the same nodes at the same rounds and no node dies
// twice in one round.
func DrawKillPlan(rng *rand.Rand, rounds int, victims []int, kills int) KillPlan {
	type event struct{ round, victim int }
	all := make([]event, 0, rounds*len(victims))
	for r := 0; r < rounds; r++ {
		for _, v := range victims {
			all = append(all, event{r, v})
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if kills > len(all) {
		kills = len(all)
	}
	plan := make(KillPlan, kills)
	for _, e := range all[:kills] {
		plan[e.round] = append(plan[e.round], e.victim)
	}
	for _, vs := range plan {
		sort.Ints(vs)
	}
	return plan
}

// Victims returns the node IDs scheduled to die on round (nil when none).
func (p KillPlan) Victims(round int) []int { return p[round] }

// ErrPartitioned is the dial error behind a closed Partition gate.
var ErrPartitioned = errors.New("faults: network partitioned")

// Partition is a switchable fault domain for injected dialers: while
// partitioned, every dial through Gate fails fast, simulating a subtree
// cut off from its parent; Heal restores connectivity and lets the
// node's retry/failover logic reconnect.
type Partition struct {
	mu   sync.Mutex
	open bool
}

// Split opens the partition (dials fail).
func (p *Partition) Split() {
	p.mu.Lock()
	p.open = true
	p.mu.Unlock()
}

// Heal closes the partition (dials pass through again).
func (p *Partition) Heal() {
	p.mu.Lock()
	p.open = false
	p.mu.Unlock()
}

// Isolated reports whether the partition is currently open.
func (p *Partition) Isolated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.open
}

// Gate wraps dial (pluggable into transport.RetryConfig.Dial) with the
// partition check; a nil dial uses plain TCP.
func (p *Partition) Gate(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		if p.Isolated() {
			return nil, fmt.Errorf("%w: %s unreachable", ErrPartitioned, addr)
		}
		return dial(addr)
	}
}
