package faults

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/wire"
)

// TestCutFrameTearsScheduledFrame proves the cutter passes earlier frames
// through intact, truncates exactly the scheduled one, and closes the
// connection so the peer sees a torn frame followed by EOF.
func TestCutFrameTearsScheduledFrame(t *testing.T) {
	client, server := net.Pipe()
	cut := CutFrame(client, wire.MsgPartial, 1) // tear the 2nd partial

	frame := wire.AppendPartialFrame(nil, fl.Partial{
		LeafID: 1, Round: 0, Sum: []float64{1, 2, 3}, Weight: 4, Count: 2,
	})
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(server)
		got <- data
	}()

	if _, err := cut.Write(frame); err != nil {
		t.Fatalf("first frame should pass: %v", err)
	}
	if cut.Fired() {
		t.Fatal("cutter fired on the skipped frame")
	}
	n, err := cut.Write(frame)
	if !errors.Is(err, ErrFrameCut) {
		t.Fatalf("scheduled frame should cut, got n=%d err=%v", n, err)
	}
	if n != len(frame)/2 {
		t.Fatalf("wrote %d of a scheduled half-frame (%d)", n, len(frame)/2)
	}
	if !cut.Fired() {
		t.Fatal("cutter did not report firing")
	}
	data := <-got
	want := len(frame) + len(frame)/2
	if len(data) != want {
		t.Fatalf("peer received %d bytes, want %d (one whole + one torn frame)", len(data), want)
	}
	if !bytes.Equal(data[:len(frame)], frame) {
		t.Fatal("first frame corrupted in transit")
	}
	// A torn frame must not decode: the reader sees a valid header whose
	// declared payload never arrives.
	if _, err := wire.ReadFrame(bytes.NewReader(data[len(frame):]), len(frame)); err == nil {
		t.Fatal("torn frame decoded cleanly")
	}
	// Further writes on the cut connection fail.
	if _, err := cut.Write(frame); err == nil {
		t.Fatal("write after cut succeeded")
	}
}

// TestCutFrameIgnoresOtherTypes proves type filtering: frames of other
// types never trigger the cut.
func TestCutFrameIgnoresOtherTypes(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	go func() { io.Copy(io.Discard, server) }() //nolint:errcheck
	cut := CutFrame(client, wire.MsgPartial2, 0)
	frame := wire.AppendPartialFrame(nil, fl.Partial{
		LeafID: 1, Round: 0, Sum: []float64{1}, Weight: 1, Count: 1,
	})
	for i := 0; i < 3; i++ {
		if _, err := cut.Write(frame); err != nil {
			t.Fatalf("v1 partial %d should pass a v2-targeted cutter: %v", i, err)
		}
	}
	if cut.Fired() {
		t.Fatal("cutter fired on a non-matching frame type")
	}
}

// TestDrawKillPlanDeterministic pins the plan to its seed: same seed →
// same plan, and the event count and per-round uniqueness hold.
func TestDrawKillPlanDeterministic(t *testing.T) {
	victims := []int{100, 101, 200}
	a := DrawKillPlan(rand.New(rand.NewSource(7)), 10, victims, 5)
	b := DrawKillPlan(rand.New(rand.NewSource(7)), 10, victims, 5)
	total := 0
	for round, vs := range a {
		if round < 0 || round >= 10 {
			t.Fatalf("round %d outside the schedule", round)
		}
		seen := map[int]bool{}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("round %d kills node %d twice", round, v)
			}
			seen[v] = true
		}
		total += len(vs)
		bvs := b.Victims(round)
		if len(bvs) != len(vs) {
			t.Fatalf("plans diverged at round %d", round)
		}
		for i := range vs {
			if vs[i] != bvs[i] {
				t.Fatalf("plans diverged at round %d", round)
			}
		}
	}
	if total != 5 {
		t.Fatalf("plan schedules %d kills, want 5", total)
	}
	// Oversized requests clamp to the event space.
	c := DrawKillPlan(rand.New(rand.NewSource(1)), 2, []int{1}, 99)
	n := 0
	for _, vs := range c {
		n += len(vs)
	}
	if n != 2 {
		t.Fatalf("clamped plan schedules %d kills, want 2", n)
	}
}

// TestPartitionGate proves the dial gate fails fast while split and
// passes through after healing.
func TestPartitionGate(t *testing.T) {
	var p Partition
	dialed := 0
	dial := p.Gate(func(addr string) (net.Conn, error) {
		dialed++
		c, s := net.Pipe()
		s.Close()
		return c, nil
	})
	if _, err := dial("x"); err != nil {
		t.Fatalf("healed gate blocked: %v", err)
	}
	p.Split()
	if !p.Isolated() {
		t.Fatal("split partition not isolated")
	}
	if _, err := dial("x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("split gate passed: %v", err)
	}
	p.Heal()
	if _, err := dial("x"); err != nil {
		t.Fatalf("healed gate blocked: %v", err)
	}
	if dialed != 2 {
		t.Fatalf("inner dialer ran %d times, want 2", dialed)
	}
}
