package faults

import (
	"math"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
)

func delta(u fl.Update, global []float64) []float64 {
	d := make([]float64, len(u.Params))
	for i := range d {
		d[i] = u.Params[i] - global[i]
	}
	return d
}

// driftClient returns global + a fixed step, so attack arithmetic is easy
// to verify exactly.
type driftClient struct {
	id   int
	step []float64
}

func (c *driftClient) ID() int         { return c.id }
func (c *driftClient) NumSamples() int { return 10 }
func (c *driftClient) TrainLocal(_ int, global []float64) (fl.Update, error) {
	p := make([]float64, len(global))
	for i := range p {
		p[i] = global[i] + c.step[i%len(c.step)]
	}
	return fl.Update{ClientID: c.id, Params: p, NumSamples: 10, TrainLoss: 1}, nil
}

func TestSignFlipReversesDelta(t *testing.T) {
	global := []float64{1, 2, 3}
	c := NewSignFlip(&driftClient{id: 1, step: []float64{0.5}}, 2, On(1))
	u, err := c.TrainLocal(0, global)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range delta(u, global) {
		if d != 0.5 {
			t.Fatalf("unscheduled round altered delta[%d] = %v", i, d)
		}
	}
	u, err = c.TrainLocal(1, global)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range delta(u, global) {
		if d != -1.0 { // −Scale·(honest delta)
			t.Fatalf("flipped delta[%d] = %v, want -1.0", i, d)
		}
	}
}

func TestScaledUpdateBoostsDelta(t *testing.T) {
	global := []float64{0, 0}
	c := NewScaledUpdate(&driftClient{id: 2, step: []float64{0.1, -0.2}}, 10, nil)
	u, err := c.TrainLocal(0, global)
	if err != nil {
		t.Fatal(err)
	}
	d := delta(u, global)
	if d[0] != 1.0 || d[1] != -2.0 {
		t.Fatalf("boosted delta = %v, want [1 -2]", d)
	}
}

func TestCollusionIsCoordinated(t *testing.T) {
	global := []float64{0, 0, 0, 0}
	a := NewColluder(&driftClient{id: 1, step: []float64{0.1}}, 42, 2, nil)
	b := NewColluder(&driftClient{id: 2, step: []float64{-0.3}}, 42, 2, nil)
	other := NewColluder(&driftClient{id: 3, step: []float64{0.2}}, 43, 2, nil)
	ua, err := a.TrainLocal(5, global)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := b.TrainLocal(5, global)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed → bit-identical fabricated updates, regardless of the inner
	// client's honest output.
	for i := range ua.Params {
		if ua.Params[i] != ub.Params[i] {
			t.Fatalf("colluders diverged at %d: %v vs %v", i, ua.Params[i], ub.Params[i])
		}
	}
	// Different round → different target (the bloc moves together).
	ua2, _ := a.TrainLocal(6, global)
	same := true
	for i := range ua.Params {
		if ua.Params[i] != ua2.Params[i] {
			same = false
		}
	}
	if same {
		t.Fatal("colluder emitted the same target on different rounds")
	}
	// Different seed → different bloc.
	uo, _ := other.TrainLocal(5, global)
	same = true
	for i := range ua.Params {
		if ua.Params[i] != uo.Params[i] {
			same = false
		}
	}
	if same {
		t.Fatal("unrelated seeds colluded")
	}
	// Strength bounds the fabricated coordinates.
	for i, v := range ua.Params {
		if math.Abs(v-global[i]) > 2 {
			t.Fatalf("colluder coordinate %d = %v exceeds strength 2", i, v)
		}
	}
}

func TestLabelDriftIsPersistentAndSubtle(t *testing.T) {
	global := make([]float64, 8)
	c := NewLabelDrift(&driftClient{id: 4, step: []float64{0.1}}, 7, 0.5, nil)
	u1, err := c.TrainLocal(0, global)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := c.TrainLocal(1, global)
	if err != nil {
		t.Fatal(err)
	}
	// The drift direction is persistent: both rounds are nudged the same
	// way (honest part identical here, so the deltas match exactly).
	for i := range u1.Params {
		if u1.Params[i] != u2.Params[i] {
			t.Fatalf("drift direction changed between rounds at %d", i)
		}
	}
	// And subtle: the poisoned update stays within ~Strength of honest.
	honest, _ := (&driftClient{id: 4, step: []float64{0.1}}).TrainLocal(0, global)
	var honestNorm, attackNorm float64
	for i := range u1.Params {
		d := u1.Params[i] - honest.Params[i]
		attackNorm += d * d
		h := honest.Params[i] - global[i]
		honestNorm += h * h
	}
	if math.Sqrt(attackNorm) > 0.5*math.Sqrt(honestNorm)*1.01 {
		t.Fatalf("drift perturbation %.4f exceeds Strength x honest-delta-norm %.4f",
			math.Sqrt(attackNorm), 0.5*math.Sqrt(honestNorm))
	}
}

func TestInflateSamplesLies(t *testing.T) {
	c := NewInflateSamples(&driftClient{id: 5, step: []float64{0.1}}, 100, On(2))
	u, _ := c.TrainLocal(0, []float64{0})
	if u.NumSamples != 10 {
		t.Fatalf("unscheduled round inflated samples to %d", u.NumSamples)
	}
	u, _ = c.TrainLocal(2, []float64{0})
	if u.NumSamples != 1000 {
		t.Fatalf("inflated samples = %d, want 1000", u.NumSamples)
	}
}

func TestByzantineWrappersStayValid(t *testing.T) {
	// Byzantine updates must PASS validation — that is the point: they are
	// attacks the validity checks cannot catch.
	global := []float64{1, -1, 0.5, 2}
	inner := &driftClient{id: 6, step: []float64{0.2, -0.1}}
	for name, c := range map[string]fl.Client{
		"signflip": NewSignFlip(inner, 3, nil),
		"scaled":   NewScaledUpdate(inner, 25, nil),
		"colluder": NewColluder(inner, 9, 1, nil),
		"drift":    NewLabelDrift(inner, 9, 0.3, nil),
		"inflate":  NewInflateSamples(inner, 10, nil),
	} {
		u, err := c.TrainLocal(0, global)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := fl.ValidateUpdate(u, len(global)); err != nil {
			t.Fatalf("%s: byzantine update failed validation — wrapper is broken: %v", name, err)
		}
	}
}
