package faults

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCrashAtFiresOnlyAtItsRound(t *testing.T) {
	hook := CrashAt(3)
	for round := 0; round < 3; round++ {
		if err := hook(round); err != nil {
			t.Fatalf("round %d: unexpected crash %v", round, err)
		}
	}
	if err := hook(3); !errors.Is(err, ErrCrash) {
		t.Fatalf("round 3: got %v, want ErrCrash", err)
	}
}

func TestTruncatedClampsAndCuts(t *testing.T) {
	data := []byte("0123456789")
	if got := Truncated(0.6)(data); len(got) != 6 {
		t.Fatalf("Truncated(0.6) kept %d bytes, want 6", len(got))
	}
	if got := Truncated(-1)(data); len(got) != 0 {
		t.Fatalf("Truncated(-1) kept %d bytes, want 0", len(got))
	}
	if got := Truncated(7)(data); len(got) != len(data) {
		t.Fatalf("Truncated(7) kept %d bytes, want all %d", len(got), len(data))
	}
}

func TestBitFlipFlipsExactlyOneBitWithoutAliasing(t *testing.T) {
	data := []byte{0, 0, 0, 0}
	out := BitFlip(-2)(data)
	if bytes.Equal(out, data) {
		t.Fatal("BitFlip changed nothing")
	}
	if !bytes.Equal(data, []byte{0, 0, 0, 0}) {
		t.Fatal("BitFlip mutated its input")
	}
	if out[2] != 0x40 {
		t.Fatalf("negative offset -2 should land on byte 2, got %v", out)
	}
	if got := BitFlip(0)(nil); len(got) != 0 {
		t.Fatalf("BitFlip on empty input returned %v", got)
	}
}

func TestCorruptFileFlipsOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(path, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 2 ^ 0x40, 3}) {
		t.Fatalf("corrupted file reads %v", data)
	}
	if err := CorruptFile(filepath.Join(t.TempDir(), "missing"), 0); err == nil {
		t.Fatal("CorruptFile on a missing path succeeded")
	}
}
