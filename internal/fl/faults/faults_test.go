package faults

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/fl"
)

// echoClient returns the global parameters unchanged.
type echoClient struct{ id int }

func (c *echoClient) ID() int         { return c.id }
func (c *echoClient) NumSamples() int { return 10 }
func (c *echoClient) TrainLocal(_ int, global []float64) (fl.Update, error) {
	p := make([]float64, len(global))
	copy(p, global)
	return fl.Update{ClientID: c.id, Params: p, NumSamples: 10, TrainLoss: 1}, nil
}

func TestFlakyFailsOnlyScheduledRounds(t *testing.T) {
	c := NewFlaky(&echoClient{id: 1}, On(1, 3))
	for round := 0; round < 5; round++ {
		_, err := c.TrainLocal(round, []float64{1})
		wantFail := round == 1 || round == 3
		if wantFail && !errors.Is(err, ErrInjected) {
			t.Fatalf("round %d: err = %v, want ErrInjected", round, err)
		}
		if !wantFail && err != nil {
			t.Fatalf("round %d: unexpected err %v", round, err)
		}
	}
}

func TestSlowDelaysScheduledRounds(t *testing.T) {
	c := NewSlow(&echoClient{id: 1}, 30*time.Millisecond, On(2))
	start := time.Now()
	if _, err := c.TrainLocal(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("unscheduled round delayed %v", elapsed)
	}
	start = time.Now()
	if _, err := c.TrainLocal(2, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("scheduled round delayed only %v, want ≥30ms", elapsed)
	}
}

func TestCorruptModesAllFailValidation(t *testing.T) {
	global := []float64{1, 2, 3, 4}
	modes := []CorruptMode{CorruptNaN, CorruptInf, CorruptOversize, CorruptTruncate}
	for _, mode := range modes {
		c := NewCorrupt(&echoClient{id: 2}, mode, nil)
		u, err := c.TrainLocal(0, global)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if err := fl.ValidateUpdate(u, len(global)); err == nil {
			t.Fatalf("mode %d: corrupted update passed validation", mode)
		}
	}
	// Unscheduled rounds pass through untouched.
	c := NewCorrupt(&echoClient{id: 2}, CorruptNaN, On(5))
	u, err := c.TrainLocal(0, global)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.ValidateUpdate(u, len(global)); err != nil {
		t.Fatalf("unscheduled round corrupted: %v", err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(rand.New(rand.NewSource(9)), 50, 0.3)
	b := Schedule(rand.New(rand.NewSource(9)), 50, 0.3)
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("degenerate schedule of size %d", len(a))
	}
	for r := 0; r < 50; r++ {
		if a[r] != b[r] {
			t.Fatalf("schedules diverge at round %d", r)
		}
	}
}

func TestLimitConnDropsAfterBudget(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	lc := LimitConn(a, 10)
	if _, err := lc.Write(make([]byte, 10)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := lc.Write([]byte{1}); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("write past budget: err = %v, want ErrConnDropped", err)
	}
	if _, err := lc.Read(make([]byte, 1)); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("read past budget: err = %v, want ErrConnDropped", err)
	}
}
