package faults

import (
	"fmt"
	"math"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/rng"
)

// Byzantine injectors: clients that train honestly and then lie. Unlike the
// crash/straggler/corruption wrappers above, these emit well-formed, finite
// updates that pass validation — the attacks a plain FedAvg mean cannot
// survive and the robust aggregators in internal/fl/robust exist to absorb.
// Every wrapper is schedule-driven (nil Rounds = every round) and, where it
// needs randomness, seeded through internal/rng, so a chaos run replays
// bit-identically.

// SignFlip wraps a client that trains honestly and then reverses its
// update's direction relative to the broadcast global, scaled by Scale
// (values ≤ 0 mean 1): params ← global − Scale·(params − global). The
// classic gradient-ascent attack — each poisoned update pulls the model
// away from the honest descent direction.
type SignFlip struct {
	fl.Client
	Scale float64
	Flip  Rounds
}

// NewSignFlip wraps inner with a sign-flip attack on the scheduled rounds.
func NewSignFlip(inner fl.Client, scale float64, flip Rounds) *SignFlip {
	return &SignFlip{Client: inner, Scale: scale, Flip: flip}
}

// TrainLocal implements fl.Client.
func (s *SignFlip) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := s.Client.TrainLocal(round, global)
	if err != nil || !s.Flip.hits(round) {
		return u, err
	}
	scale := s.Scale
	if scale <= 0 {
		scale = 1
	}
	for i := range u.Params {
		g := 0.0
		if i < len(global) {
			g = global[i]
		}
		u.Params[i] = g - scale*(u.Params[i]-g)
	}
	return u, nil
}

// ScaledUpdate wraps a client that magnifies its honest delta from the
// global by Factor: params ← global + Factor·(params − global). A
// model-replacement / boosting attack — with plain FedAvg a single client
// scaled by n can overwrite the aggregate outright. Factor values in
// (0, 1) model a lazy free-rider instead.
type ScaledUpdate struct {
	fl.Client
	Factor float64
	Boost  Rounds
}

// NewScaledUpdate wraps inner, boosting its delta on the scheduled rounds.
func NewScaledUpdate(inner fl.Client, factor float64, boost Rounds) *ScaledUpdate {
	return &ScaledUpdate{Client: inner, Factor: factor, Boost: boost}
}

// TrainLocal implements fl.Client.
func (s *ScaledUpdate) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := s.Client.TrainLocal(round, global)
	if err != nil || !s.Boost.hits(round) {
		return u, err
	}
	for i := range u.Params {
		g := 0.0
		if i < len(global) {
			g = global[i]
		}
		u.Params[i] = g + s.Factor*(u.Params[i]-g)
	}
	return u, nil
}

// Colluder wraps a client that discards its honest update and submits a
// coordinated fabricated one: every colluder sharing a Seed emits the SAME
// pseudo-random target vector each round (drawn per-round from the shared
// seed, scaled by Strength). Identical values defeat outlier detectors
// that assume attackers look unusual individually, and a colluding bloc
// larger than the trim budget can shift a trimmed mean — exactly the
// f < n/3 boundary the chaos suite probes.
type Colluder struct {
	fl.Client
	Seed     uint64
	Strength float64
	Collude  Rounds
}

// NewColluder wraps inner with a same-value collusion attack.
func NewColluder(inner fl.Client, seed uint64, strength float64, collude Rounds) *Colluder {
	return &Colluder{Client: inner, Seed: seed, Strength: strength, Collude: collude}
}

// TrainLocal implements fl.Client.
func (c *Colluder) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := c.Client.TrainLocal(round, global)
	if err != nil || !c.Collude.hits(round) {
		return u, err
	}
	// Derive the shared target from (Seed, round) only — independent of
	// which colluder draws it, so the bloc agrees bit-for-bit.
	src := rng.NewSource(int64(c.Seed ^ (uint64(round)+1)*0x9e3779b97f4a7c15))
	strength := c.Strength
	if strength == 0 {
		strength = 1
	}
	for i := range u.Params {
		g := 0.0
		if i < len(global) {
			g = global[i]
		}
		u.Params[i] = g + strength*(2*float64(src.Uint64()>>11)/(1<<53)-1)
	}
	return u, nil
}

// LabelDrift wraps a client that simulates label-flipping poisoning: its
// honest update is nudged by a persistent, client-specific drift direction
// (drawn once from Seed) with magnitude Strength relative to its own delta
// norm. Unlike SignFlip it stays subtle — the update remains mostly honest,
// the attack accumulates across rounds, and per-round outlier tests barely
// fire; the EWMA reputation tracker is what catches it.
type LabelDrift struct {
	fl.Client
	Seed     uint64
	Strength float64
	Drift    Rounds

	dir []float64
}

// NewLabelDrift wraps inner with a persistent drift attack.
func NewLabelDrift(inner fl.Client, seed uint64, strength float64, drift Rounds) *LabelDrift {
	return &LabelDrift{Client: inner, Seed: seed, Strength: strength, Drift: drift}
}

// TrainLocal implements fl.Client.
func (l *LabelDrift) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := l.Client.TrainLocal(round, global)
	if err != nil || !l.Drift.hits(round) {
		return u, err
	}
	if len(l.dir) != len(u.Params) {
		src := rng.NewSource(int64(l.Seed))
		l.dir = make([]float64, len(u.Params))
		var norm float64
		for i := range l.dir {
			l.dir[i] = 2*float64(src.Uint64()>>11)/(1<<53) - 1
			norm += l.dir[i] * l.dir[i]
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for i := range l.dir {
				l.dir[i] /= norm
			}
		}
	}
	var deltaNorm float64
	for i, v := range u.Params {
		g := 0.0
		if i < len(global) {
			g = global[i]
		}
		deltaNorm += (v - g) * (v - g)
	}
	deltaNorm = math.Sqrt(deltaNorm)
	if deltaNorm == 0 {
		deltaNorm = 1
	}
	for i := range u.Params {
		u.Params[i] += l.Strength * deltaNorm * l.dir[i]
	}
	return u, nil
}

// InflateSamples wraps a client that lies about its dataset size,
// multiplying NumSamples by Factor (≥ 2) on the scheduled rounds. Against
// sample-weighted FedAvg this silently amplifies the client's influence;
// the robust rules ignore reported weights entirely, which this injector
// exists to prove.
type InflateSamples struct {
	fl.Client
	Factor  int
	Inflate Rounds
}

// NewInflateSamples wraps inner, inflating its reported sample count.
func NewInflateSamples(inner fl.Client, factor int, inflate Rounds) *InflateSamples {
	return &InflateSamples{Client: inner, Factor: factor, Inflate: inflate}
}

// TrainLocal implements fl.Client.
func (f *InflateSamples) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := f.Client.TrainLocal(round, global)
	if err != nil || !f.Inflate.hits(round) {
		return u, err
	}
	factor := f.Factor
	if factor < 2 {
		factor = 2
	}
	u.NumSamples *= factor
	return u, nil
}

// The Byzantine wrappers carry no state of their own (LabelDrift's cached
// direction is re-derived from Seed), so each forwards StatefulClient to
// its inner client. Attacked federations can therefore checkpoint and
// resume — the restart-must-not-amnesty tests depend on it.

func captureInner(c fl.Client) ([]byte, error) {
	sc, ok := c.(fl.StatefulClient)
	if !ok {
		return nil, fmt.Errorf("faults: wrapped client %d (%T) is not stateful", c.ID(), c)
	}
	return sc.CaptureState()
}

func restoreInner(c fl.Client, blob []byte) error {
	sc, ok := c.(fl.StatefulClient)
	if !ok {
		return fmt.Errorf("faults: wrapped client %d (%T) is not stateful", c.ID(), c)
	}
	return sc.RestoreState(blob)
}

// CaptureState implements fl.StatefulClient.
func (s *SignFlip) CaptureState() ([]byte, error) { return captureInner(s.Client) }

// RestoreState implements fl.StatefulClient.
func (s *SignFlip) RestoreState(b []byte) error { return restoreInner(s.Client, b) }

// CaptureState implements fl.StatefulClient.
func (s *ScaledUpdate) CaptureState() ([]byte, error) { return captureInner(s.Client) }

// RestoreState implements fl.StatefulClient.
func (s *ScaledUpdate) RestoreState(b []byte) error { return restoreInner(s.Client, b) }

// CaptureState implements fl.StatefulClient.
func (c *Colluder) CaptureState() ([]byte, error) { return captureInner(c.Client) }

// RestoreState implements fl.StatefulClient.
func (c *Colluder) RestoreState(b []byte) error { return restoreInner(c.Client, b) }

// CaptureState implements fl.StatefulClient.
func (l *LabelDrift) CaptureState() ([]byte, error) { return captureInner(l.Client) }

// RestoreState implements fl.StatefulClient.
func (l *LabelDrift) RestoreState(b []byte) error { return restoreInner(l.Client, b) }

// CaptureState implements fl.StatefulClient.
func (f *InflateSamples) CaptureState() ([]byte, error) { return captureInner(f.Client) }

// RestoreState implements fl.StatefulClient.
func (f *InflateSamples) RestoreState(b []byte) error { return restoreInner(f.Client, b) }
