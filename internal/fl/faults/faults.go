// Package faults provides deterministic, seedable fault-injection wrappers
// for chaos-testing the federation: clients that crash, straggle, or emit
// corrupt updates on scheduled rounds, and a net.Conn wrapper that dies
// after a byte budget. Every wrapper is driven by an explicit schedule (or
// an explicit *rand.Rand for drawn schedules), so injected chaos is
// reproducible run-to-run — the property the end-to-end chaos tests rely
// on.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/cip-fl/cip/internal/fl"
)

// Rounds is the set of round indices a fault fires on; a nil set fires on
// every round.
type Rounds map[int]bool

// On builds a schedule firing on exactly the given rounds.
func On(rounds ...int) Rounds {
	r := make(Rounds, len(rounds))
	for _, x := range rounds {
		r[x] = true
	}
	return r
}

func (r Rounds) hits(round int) bool { return r == nil || r[round] }

// Schedule draws a deterministic schedule from rng: each round in
// [0, rounds) fires independently with probability p.
func Schedule(rng *rand.Rand, rounds int, p float64) Rounds {
	out := make(Rounds, rounds)
	for i := 0; i < rounds; i++ {
		if rng.Float64() < p {
			out[i] = true
		}
	}
	return out
}

// ErrInjected is the error a Flaky client returns on its failing rounds.
var ErrInjected = errors.New("faults: injected client failure")

// Flaky wraps a client whose local training fails on the scheduled rounds.
// Over the TCP transport a training failure ends the client's session, so
// the first scheduled failure removes it from the federation; in-process
// (under an fl.RoundPolicy) it rejoins on the next non-failing round.
type Flaky struct {
	fl.Client
	Fail Rounds
}

// NewFlaky wraps inner with the given failure schedule.
func NewFlaky(inner fl.Client, fail Rounds) *Flaky { return &Flaky{Client: inner, Fail: fail} }

// TrainLocal implements fl.Client.
func (f *Flaky) TrainLocal(round int, global []float64) (fl.Update, error) {
	if f.Fail.hits(round) {
		return fl.Update{}, fmt.Errorf("%w: client %d round %d", ErrInjected, f.Client.ID(), round)
	}
	return f.Client.TrainLocal(round, global)
}

// Slow wraps a client that sleeps for Delay before training on the
// scheduled rounds — a straggler. With a delay beyond the coordinator's
// RoundTimeout it gets dropped; below it, it exercises the deadline path
// while staying in the federation.
type Slow struct {
	fl.Client
	Delay time.Duration
	Slow  Rounds
}

// NewSlow wraps inner with a per-round delay on the scheduled rounds.
func NewSlow(inner fl.Client, delay time.Duration, slow Rounds) *Slow {
	return &Slow{Client: inner, Delay: delay, Slow: slow}
}

// TrainLocal implements fl.Client.
func (s *Slow) TrainLocal(round int, global []float64) (fl.Update, error) {
	if s.Slow.hits(round) {
		time.Sleep(s.Delay)
	}
	return s.Client.TrainLocal(round, global)
}

// CorruptMode selects how a Corrupt client mangles its update.
type CorruptMode int

const (
	// CorruptNaN poisons parameters with NaN values.
	CorruptNaN CorruptMode = iota
	// CorruptInf poisons parameters with +Inf values.
	CorruptInf
	// CorruptOversize doubles the parameter vector's length.
	CorruptOversize
	// CorruptTruncate halves the parameter vector's length.
	CorruptTruncate
)

// Corrupt wraps a client whose updates are mangled on the scheduled
// rounds: NaN/Inf poisoning or a mis-sized parameter vector. A validating
// aggregator must reject all of them.
type Corrupt struct {
	fl.Client
	Mode    CorruptMode
	Corrupt Rounds
}

// NewCorrupt wraps inner, corrupting updates on the scheduled rounds.
func NewCorrupt(inner fl.Client, mode CorruptMode, corrupt Rounds) *Corrupt {
	return &Corrupt{Client: inner, Mode: mode, Corrupt: corrupt}
}

// TrainLocal implements fl.Client.
func (c *Corrupt) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := c.Client.TrainLocal(round, global)
	if err != nil || !c.Corrupt.hits(round) {
		return u, err
	}
	switch c.Mode {
	case CorruptNaN:
		for i := 0; i < len(u.Params); i += 1 + len(u.Params)/8 {
			u.Params[i] = math.NaN()
		}
	case CorruptInf:
		for i := 0; i < len(u.Params); i += 1 + len(u.Params)/8 {
			u.Params[i] = math.Inf(1)
		}
	case CorruptOversize:
		u.Params = append(u.Params, make([]float64, len(u.Params))...)
	case CorruptTruncate:
		u.Params = u.Params[:len(u.Params)/2]
	}
	return u, nil
}

// ErrConnDropped is returned by a budgeted Conn once its byte budget is
// exhausted.
var ErrConnDropped = errors.New("faults: injected connection drop")

// Conn wraps a net.Conn that dies deterministically after a total byte
// budget (reads + writes combined), simulating a connection lost
// mid-stream. The underlying connection is closed on exhaustion so the
// peer observes the drop too.
type Conn struct {
	net.Conn
	mu     sync.Mutex
	budget int64
}

// LimitConn wraps c with a total byte budget.
func LimitConn(c net.Conn, budget int64) *Conn {
	return &Conn{Conn: c, budget: budget}
}

func (c *Conn) dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget <= 0
}

func (c *Conn) consume(n int64) {
	c.mu.Lock()
	c.budget -= n
	exhausted := c.budget <= 0
	c.mu.Unlock()
	if exhausted {
		c.Conn.Close()
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.dead() {
		return 0, ErrConnDropped
	}
	n, err := c.Conn.Read(p)
	c.consume(int64(n))
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if c.dead() {
		return 0, ErrConnDropped
	}
	n, err := c.Conn.Write(p)
	c.consume(int64(n))
	return n, err
}

// FlakyDialer returns a dialer (pluggable into transport.RetryConfig.Dial)
// whose connections die after budget total bytes.
func FlakyDialer(budget int64) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return LimitConn(conn, budget), nil
	}
}
