package faults

import (
	"errors"
	"fmt"
	"os"
)

// ErrCrash is the sentinel a CrashAt hook returns to simulate process
// death at a round boundary. The crash-recovery harness kills the run with
// it, rebuilds the federation from scratch, resumes from the last durable
// snapshot, and asserts bit-identical final parameters.
var ErrCrash = errors.New("faults: injected crash")

// CrashAt returns an AfterRound hook (fl.RunOptions.AfterRound,
// transport.Coordinator.AfterRound) that simulates process death
// immediately after round n completes — after that round's checkpoint
// write, if the cadence scheduled one.
func CrashAt(n int) func(round int) error {
	return func(round int) error {
		if round == n {
			return fmt.Errorf("%w after round %d", ErrCrash, n)
		}
		return nil
	}
}

// Truncated returns a checkpoint.Manager WriteHook that simulates a torn
// write: only the leading frac of the encoded snapshot reaches the disk.
// frac is clamped to [0, 1].
func Truncated(frac float64) func([]byte) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return func(data []byte) []byte {
		return data[:int(frac*float64(len(data)))]
	}
}

// BitFlip returns a checkpoint.Manager WriteHook that flips one bit of the
// encoded snapshot at the given byte offset (taken modulo the snapshot
// length), simulating silent media corruption the CRC must catch.
func BitFlip(offset int) func([]byte) []byte {
	return func(data []byte) []byte {
		if len(data) == 0 {
			return data
		}
		out := append([]byte(nil), data...)
		i := offset % len(out)
		if i < 0 {
			i += len(out)
		}
		out[i] ^= 0x40
		return out
	}
}

// CorruptFile flips one bit of an existing file in place — the post-hoc
// variant of BitFlip for tests that corrupt a snapshot already on disk.
func CorruptFile(path string, offset int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faults: %s is empty", path)
	}
	i := offset % len(data)
	if i < 0 {
		i += len(data)
	}
	data[i] ^= 0x40
	return os.WriteFile(path, data, 0o644)
}
