package fl

import (
	"fmt"
	"sync"
	"time"

	"github.com/cip-fl/cip/internal/fl/robust"
	"github.com/cip-fl/cip/internal/telemetry"
)

// Metrics is the federation engine's telemetry catalogue, shared by the
// in-process Server and the TCP Coordinator so dashboards see one set of
// round metrics regardless of deployment. Construct with NewMetrics and
// attach via Server.Metrics (or Coordinator.Metrics); a nil *Metrics
// disables all recording at zero cost.
type Metrics struct {
	// RoundsTotal counts completed communication rounds.
	RoundsTotal *telemetry.Counter // fl_rounds_total
	// RoundDuration is the wall time of each communication round.
	RoundDuration *telemetry.Histogram // fl_round_duration_seconds
	// ClientsParticipating is the number of clients whose updates entered
	// the most recent aggregate.
	ClientsParticipating *telemetry.Gauge // fl_clients_participating
	// ClientsDropped counts clients excluded from rounds (all reasons).
	ClientsDropped *telemetry.Counter // fl_clients_dropped_total
	// ValidationRejections counts updates rejected by ValidateUpdate
	// (NaN/Inf values or parameter-length mismatch).
	ValidationRejections *telemetry.Counter // fl_validation_rejections_total
	// UpdateParams is the parameter count of the aggregated model.
	UpdateParams *telemetry.Gauge // fl_update_params
	// RoundWorkers is the worker-pool size used by the most recent round.
	RoundWorkers *telemetry.Gauge // fl_round_workers
	// WorkerUtilization is the fraction of the most recent round's
	// worker-seconds spent inside client training (busy / (workers·wall)).
	// Near 1.0 means the pool is saturated; low values mean stragglers or
	// too many workers for the participant count.
	WorkerUtilization *telemetry.Gauge // fl_round_worker_utilization
	// ClientTrainMillis accumulates per-client local-training wall time in
	// milliseconds across all rounds (the pool's total busy time).
	ClientTrainMillis *telemetry.Counter // fl_client_train_milliseconds_total
	// RobustTrimmed counts client contributions removed from the
	// aggregate by the robust rule (both trimmed-mean tails plus any
	// non-finite inputs a rule skipped).
	RobustTrimmed *telemetry.Counter // fl_robust_trimmed_total
	// RobustClipped counts updates whose influence was norm-clipped by
	// the clipped-mean rule.
	RobustClipped *telemetry.Counter // fl_robust_clipped_total
	// ClientsQuarantined is the number of clients currently quarantined
	// by the reputation tracker.
	ClientsQuarantined *telemetry.Gauge // fl_client_quarantined
	// CompressedUpdates counts updates that crossed the compressed wire
	// path (top-k / quantized, with error feedback).
	CompressedUpdates *telemetry.Counter // fl_compressed_updates_total
	// CompressedBytes accumulates the wire-body bytes of compressed
	// updates (what actually crossed, not the dense equivalent).
	CompressedBytes *telemetry.Counter // fl_compressed_bytes_total
	// CompressionRatio is the dense-bytes / wire-bytes ratio of the most
	// recent compressed update.
	CompressionRatio *telemetry.Gauge // fl_compression_ratio
	// RoundPeakUpdateBytes is the peak number of decoded-update bytes held
	// in aggregator memory at any instant of the most recent round: ~W ×
	// 8·params under the streaming fold (W = the in-flight window) versus
	// roster × 8·params under the buffered path — the memory win the
	// streaming refactor exists for, made observable.
	RoundPeakUpdateBytes *telemetry.Gauge // fl_round_peak_update_bytes
	// TreeShardsLost counts aggregation-tree subtrees (partial-forwarding
	// children) whose round contribution was lost after the accept window
	// opened — the previously silent whole-shard accuracy loss.
	TreeShardsLost *telemetry.Counter // fl_tree_shard_lost_total
	// RoundCoverage is the fraction of the most recent round's planned
	// cohort weight that actually reached the aggregate (1.0 = every
	// planned contributor delivered; degraded subtrees pull it down).
	RoundCoverage *telemetry.Gauge // fl_round_coverage_weight

	// reg backs the lazily registered per-client anomaly-score gauges
	// (fl_client_anomaly_score{client="N"}).
	reg *telemetry.Registry
	mu  sync.Mutex
	// anomaly maps client id to its registered score gauge.
	anomaly map[int]*telemetry.Gauge
}

// NewMetrics registers the federation metrics on reg. A nil reg returns
// nil, which disables recording.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		RoundsTotal: reg.Counter("fl_rounds_total",
			"Completed communication rounds."),
		RoundDuration: reg.Histogram("fl_round_duration_seconds",
			"Wall time of one communication round.", telemetry.DurationBuckets()),
		ClientsParticipating: reg.Gauge("fl_clients_participating",
			"Clients whose updates entered the most recent aggregate."),
		ClientsDropped: reg.Counter("fl_clients_dropped_total",
			"Clients excluded from rounds (timeouts, transport failures, invalid updates)."),
		ValidationRejections: reg.Counter("fl_validation_rejections_total",
			"Updates rejected by validation (NaN/Inf or length mismatch)."),
		UpdateParams: reg.Gauge("fl_update_params",
			"Parameter count of the aggregated model."),
		RoundWorkers: reg.Gauge("fl_round_workers",
			"Worker-pool size used by the most recent round."),
		WorkerUtilization: reg.Gauge("fl_round_worker_utilization",
			"Fraction of the most recent round's worker-seconds spent training clients."),
		ClientTrainMillis: reg.Counter("fl_client_train_milliseconds_total",
			"Accumulated per-client local-training wall time, in milliseconds."),
		RobustTrimmed: reg.Counter("fl_robust_trimmed_total",
			"Client contributions removed from aggregates by the robust rule."),
		RobustClipped: reg.Counter("fl_robust_clipped_total",
			"Updates whose influence was norm-clipped by the robust rule."),
		ClientsQuarantined: reg.Gauge("fl_client_quarantined",
			"Clients currently quarantined by the reputation tracker."),
		CompressedUpdates: reg.Counter("fl_compressed_updates_total",
			"Updates carried over the compressed wire path."),
		CompressedBytes: reg.Counter("fl_compressed_bytes_total",
			"Wire-body bytes of compressed updates."),
		CompressionRatio: reg.Gauge("fl_compression_ratio",
			"Dense-bytes / wire-bytes ratio of the most recent compressed update."),
		RoundPeakUpdateBytes: reg.Gauge("fl_round_peak_update_bytes",
			"Peak decoded-update bytes held in aggregator memory during the most recent round."),
		TreeShardsLost: reg.Counter("fl_tree_shard_lost_total",
			"Aggregation-tree subtrees whose contribution was lost after the round started."),
		RoundCoverage: reg.Gauge("fl_round_coverage_weight",
			"Fraction of the most recent round's planned cohort weight that reached the aggregate."),
		reg: reg,
	}
}

// RecordCompressedUpdate records one update crossing the compressed wire
// path: the bytes its compressed body occupies and the dense-equivalent
// byte count it replaced. Nil-safe.
func (m *Metrics) RecordCompressedUpdate(wireBytes, denseBytes int) {
	if m == nil {
		return
	}
	m.CompressedUpdates.Inc()
	m.CompressedBytes.Add(uint64(wireBytes))
	if wireBytes > 0 {
		m.CompressionRatio.Set(float64(denseBytes) / float64(wireBytes))
	}
}

// RecordTreeShardLost counts one aggregation subtree lost mid-round.
// Nil-safe.
func (m *Metrics) RecordTreeShardLost() {
	if m == nil {
		return
	}
	m.TreeShardsLost.Inc()
}

// RecordRoundCoverage records the fraction of planned cohort weight that
// reached the most recent round's aggregate. Nil-safe.
func (m *Metrics) RecordRoundCoverage(coverage float64) {
	if m == nil {
		return
	}
	m.RoundCoverage.Set(coverage)
}

// RecordRobust records one round's robust-aggregation report. Nil-safe.
func (m *Metrics) RecordRobust(rep robust.Report) {
	if m == nil {
		return
	}
	m.RobustTrimmed.Add(uint64(rep.Trimmed))
	m.RobustClipped.Add(uint64(rep.Clipped))
}

// RecordReputation publishes the reputation tracker's current quarantine
// count and per-client anomaly scores. Per-client gauges are registered
// lazily as fl_client_anomaly_score{client="N"} — the registry's raw-name
// exposition renders that as a labeled Prometheus series. Nil-safe on
// both receiver and tracker.
func (m *Metrics) RecordReputation(r *robust.Reputation) {
	if m == nil || r == nil {
		return
	}
	m.ClientsQuarantined.Set(float64(r.QuarantinedCount()))
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, rec := range r.Records() {
		g, ok := m.anomaly[id]
		if !ok {
			g = m.reg.Gauge(fmt.Sprintf("fl_client_anomaly_score{client=%q}", fmt.Sprint(id)),
				"EWMA anomaly score of one client (labeled by client id).")
			if m.anomaly == nil {
				m.anomaly = make(map[int]*telemetry.Gauge)
			}
			m.anomaly[id] = g
		}
		g.Set(rec.Score)
	}
}

// RecordRound records one completed round: its wall time since start, how
// many updates were aggregated, how many clients were dropped, and the
// model's parameter count. Nil-safe.
func (m *Metrics) RecordRound(start time.Time, participating, dropped, params int) {
	if m == nil {
		return
	}
	m.RoundsTotal.Inc()
	m.RoundDuration.Observe(time.Since(start).Seconds())
	m.ClientsParticipating.Set(float64(participating))
	m.ClientsDropped.Add(uint64(dropped))
	m.UpdateParams.Set(float64(params))
}

// RecordWorkerPool records one round's worker-pool shape: the pool size,
// the summed per-client training time (busy), and the round's wall time.
// Nil-safe.
func (m *Metrics) RecordWorkerPool(workers int, busy, wall time.Duration) {
	if m == nil {
		return
	}
	m.RoundWorkers.Set(float64(workers))
	if workers > 0 && wall > 0 {
		m.WorkerUtilization.Set(busy.Seconds() / (float64(workers) * wall.Seconds()))
	}
	m.ClientTrainMillis.Add(uint64(busy.Milliseconds()))
}

// RecordRoundPeakUpdateBytes records the peak decoded-update bytes a round
// held in aggregator memory. Nil-safe.
func (m *Metrics) RecordRoundPeakUpdateBytes(n uint64) {
	if m == nil {
		return
	}
	m.RoundPeakUpdateBytes.Set(float64(n))
}

// RecordValidationRejection counts one ValidateUpdate rejection. Nil-safe.
func (m *Metrics) RecordValidationRejection() {
	if m == nil {
		return
	}
	m.ValidationRejections.Inc()
}
