package fl

import (
	"time"

	"github.com/cip-fl/cip/internal/telemetry"
)

// Metrics is the federation engine's telemetry catalogue, shared by the
// in-process Server and the TCP Coordinator so dashboards see one set of
// round metrics regardless of deployment. Construct with NewMetrics and
// attach via Server.Metrics (or Coordinator.Metrics); a nil *Metrics
// disables all recording at zero cost.
type Metrics struct {
	// RoundsTotal counts completed communication rounds.
	RoundsTotal *telemetry.Counter // fl_rounds_total
	// RoundDuration is the wall time of each communication round.
	RoundDuration *telemetry.Histogram // fl_round_duration_seconds
	// ClientsParticipating is the number of clients whose updates entered
	// the most recent aggregate.
	ClientsParticipating *telemetry.Gauge // fl_clients_participating
	// ClientsDropped counts clients excluded from rounds (all reasons).
	ClientsDropped *telemetry.Counter // fl_clients_dropped_total
	// ValidationRejections counts updates rejected by ValidateUpdate
	// (NaN/Inf values or parameter-length mismatch).
	ValidationRejections *telemetry.Counter // fl_validation_rejections_total
	// UpdateParams is the parameter count of the aggregated model.
	UpdateParams *telemetry.Gauge // fl_update_params
	// RoundWorkers is the worker-pool size used by the most recent round.
	RoundWorkers *telemetry.Gauge // fl_round_workers
	// WorkerUtilization is the fraction of the most recent round's
	// worker-seconds spent inside client training (busy / (workers·wall)).
	// Near 1.0 means the pool is saturated; low values mean stragglers or
	// too many workers for the participant count.
	WorkerUtilization *telemetry.Gauge // fl_round_worker_utilization
	// ClientTrainMillis accumulates per-client local-training wall time in
	// milliseconds across all rounds (the pool's total busy time).
	ClientTrainMillis *telemetry.Counter // fl_client_train_milliseconds_total
}

// NewMetrics registers the federation metrics on reg. A nil reg returns
// nil, which disables recording.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		RoundsTotal: reg.Counter("fl_rounds_total",
			"Completed communication rounds."),
		RoundDuration: reg.Histogram("fl_round_duration_seconds",
			"Wall time of one communication round.", telemetry.DurationBuckets()),
		ClientsParticipating: reg.Gauge("fl_clients_participating",
			"Clients whose updates entered the most recent aggregate."),
		ClientsDropped: reg.Counter("fl_clients_dropped_total",
			"Clients excluded from rounds (timeouts, transport failures, invalid updates)."),
		ValidationRejections: reg.Counter("fl_validation_rejections_total",
			"Updates rejected by validation (NaN/Inf or length mismatch)."),
		UpdateParams: reg.Gauge("fl_update_params",
			"Parameter count of the aggregated model."),
		RoundWorkers: reg.Gauge("fl_round_workers",
			"Worker-pool size used by the most recent round."),
		WorkerUtilization: reg.Gauge("fl_round_worker_utilization",
			"Fraction of the most recent round's worker-seconds spent training clients."),
		ClientTrainMillis: reg.Counter("fl_client_train_milliseconds_total",
			"Accumulated per-client local-training wall time, in milliseconds."),
	}
}

// RecordRound records one completed round: its wall time since start, how
// many updates were aggregated, how many clients were dropped, and the
// model's parameter count. Nil-safe.
func (m *Metrics) RecordRound(start time.Time, participating, dropped, params int) {
	if m == nil {
		return
	}
	m.RoundsTotal.Inc()
	m.RoundDuration.Observe(time.Since(start).Seconds())
	m.ClientsParticipating.Set(float64(participating))
	m.ClientsDropped.Add(uint64(dropped))
	m.UpdateParams.Set(float64(params))
}

// RecordWorkerPool records one round's worker-pool shape: the pool size,
// the summed per-client training time (busy), and the round's wall time.
// Nil-safe.
func (m *Metrics) RecordWorkerPool(workers int, busy, wall time.Duration) {
	if m == nil {
		return
	}
	m.RoundWorkers.Set(float64(workers))
	if workers > 0 && wall > 0 {
		m.WorkerUtilization.Set(busy.Seconds() / (float64(workers) * wall.Seconds()))
	}
	m.ClientTrainMillis.Add(uint64(busy.Milliseconds()))
}

// RecordValidationRejection counts one ValidateUpdate rejection. Nil-safe.
func (m *Metrics) RecordValidationRejection() {
	if m == nil {
		return
	}
	m.ValidationRejections.Inc()
}
