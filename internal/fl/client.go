package fl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/rng"
	"github.com/cip-fl/cip/internal/tensor"
)

// TrainStep performs one optimizer step on a mini-batch and returns the
// batch loss. The default step minimizes softmax cross-entropy; the
// defenses package supplies alternatives (DP-SGD noise injection,
// adversarial regularization, Mixup+MMD, RelaxLoss) that plug in here, so
// every defense trains through the identical federated loop.
type TrainStep interface {
	Step(net nn.Layer, opt nn.Optimizer, x *tensor.Tensor, y []int) (loss float64)
}

// PlainStep is the undefended training step: minimize cross-entropy.
type PlainStep struct{}

// Step implements TrainStep.
func (PlainStep) Step(net nn.Layer, opt nn.Optimizer, x *tensor.Tensor, y []int) float64 {
	nn.ZeroGrads(net.Params())
	logits, cache := net.Forward(x, true)
	res := nn.SoftmaxCrossEntropy(logits, y)
	nn.TrainBackward(net, cache, res.Grad)
	opt.Step(net.Params())
	return res.Loss
}

// ClientConfig carries the local-training hyperparameters shared by all
// client kinds. The paper's batch size is 32 with one local epoch per
// communication round (Section IV-A).
type ClientConfig struct {
	BatchSize   int
	LocalEpochs int
	// LR returns the learning rate for a round; nil means a constant 0.05.
	LR func(round int) float64
	// Momentum for the local SGD optimizer.
	Momentum float64
	// Augment applies the CIFAR-AUG crop/flip pipeline each epoch.
	Augment bool
	// AugmentPad is the crop padding when Augment is set (default 1).
	AugmentPad int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LocalEpochs <= 0 {
		c.LocalEpochs = 1
	}
	if c.LR == nil {
		c.LR = func(int) float64 { return 0.05 }
	}
	if c.AugmentPad <= 0 {
		c.AugmentPad = 1
	}
	return c
}

// DecaySchedule mirrors the paper's decaying learning-rate schedule: the
// base rate for the first third of rounds, half for the second, a fifth
// for the last.
func DecaySchedule(base float64, totalRounds int) func(int) float64 {
	return func(round int) float64 {
		switch {
		case totalRounds <= 0 || round < totalRounds/3:
			return base
		case round < 2*totalRounds/3:
			return base / 2
		default:
			return base / 5
		}
	}
}

// LegacyClient is a standard FedAvg participant training a plain
// classifier — the paper's "legacy model (without defense)", also reused by
// the baseline defenses via a custom TrainStep.
type LegacyClient struct {
	id   int
	net  nn.Layer
	data *datasets.Dataset
	cfg  ClientConfig
	step TrainStep
	opt  *nn.SGD
	rng  *rand.Rand
	// src is non-nil for clients built with NewStatefulLegacyClient: the
	// serializable source behind rng, required by CaptureState.
	src *rng.Source
}

// NewLegacyClient constructs a client. step may be nil for plain training.
func NewLegacyClient(id int, net nn.Layer, data *datasets.Dataset, cfg ClientConfig,
	step TrainStep, rng *rand.Rand) *LegacyClient {
	if step == nil {
		step = PlainStep{}
	}
	cfg = cfg.withDefaults()
	return &LegacyClient{
		id:   id,
		net:  net,
		data: data,
		cfg:  cfg,
		step: step,
		opt:  &nn.SGD{LR: cfg.LR(0), Momentum: cfg.Momentum},
		rng:  rng,
	}
}

// NewStatefulLegacyClient is NewLegacyClient for durable federations: the
// client's RNG runs on a serializable source seeded with rngSeed and its
// shard's sample order is tracked, so CaptureState/RestoreState can move
// the client's exact training position across process death. The plain
// TrainStep is stateless; custom steps with hidden state (e.g. DP-SGD's
// noise RNG) are not captured.
func NewStatefulLegacyClient(id int, net nn.Layer, data *datasets.Dataset, cfg ClientConfig,
	step TrainStep, rngSeed int64) *LegacyClient {
	r, src := rng.New(rngSeed)
	c := NewLegacyClient(id, net, data, cfg, step, r)
	c.src = src
	c.data.TrackOrder()
	return c
}

// legacyClientState is the gob layout of a LegacyClient's captured state.
type legacyClientState struct {
	Order    []int
	Velocity [][]float64
	RNG      uint64
}

// CaptureState implements StatefulClient.
func (c *LegacyClient) CaptureState() ([]byte, error) {
	if c.src == nil {
		return nil, fmt.Errorf("fl: client %d was not built with NewStatefulLegacyClient", c.id)
	}
	st := legacyClientState{
		Order:    c.data.Order(),
		Velocity: c.opt.CaptureVelocity(c.net.Params()),
		RNG:      c.src.State(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("fl: encoding client %d state: %w", c.id, err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements StatefulClient.
func (c *LegacyClient) RestoreState(blob []byte) error {
	if c.src == nil {
		return fmt.Errorf("fl: client %d was not built with NewStatefulLegacyClient", c.id)
	}
	var st legacyClientState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("fl: decoding client %d state: %w", c.id, err)
	}
	if st.Order != nil {
		if err := c.data.ApplyOrder(st.Order); err != nil {
			return fmt.Errorf("fl: client %d: %w", c.id, err)
		}
	}
	if err := c.opt.RestoreVelocity(c.net.Params(), st.Velocity); err != nil {
		return fmt.Errorf("fl: client %d: %w", c.id, err)
	}
	c.src.SetState(st.RNG)
	return nil
}

// ID implements Client.
func (c *LegacyClient) ID() int { return c.id }

// NumSamples implements Client.
func (c *LegacyClient) NumSamples() int { return c.data.Len() }

// Net exposes the client's local model (attack vantage points need it).
func (c *LegacyClient) Net() nn.Layer { return c.net }

// Data exposes the client's local dataset (attack evaluation needs the
// ground-truth member set).
func (c *LegacyClient) Data() *datasets.Dataset { return c.data }

// TrainLocal implements Client: load globals, run local epochs, return the
// updated parameters.
func (c *LegacyClient) TrainLocal(round int, global []float64) (Update, error) {
	if err := nn.SetFlatParams(c.net.Params(), global); err != nil {
		return Update{}, fmt.Errorf("fl: client %d: %w", c.id, err)
	}
	// Momentum state persists across rounds on purpose: with one local
	// epoch per round it approximates server-side momentum and converges
	// noticeably faster than per-round resets on our scale.
	c.opt.LR = c.cfg.LR(round)
	loss, err := TrainEpochs(c.net, c.opt, c.step, c.data, c.cfg, c.rng)
	if err != nil {
		return Update{}, fmt.Errorf("fl: client %d: %w", c.id, err)
	}
	return Update{
		Params:     nn.FlattenParams(c.net.Params()),
		NumSamples: c.data.Len(),
		TrainLoss:  loss,
	}, nil
}

// TrainEpochs runs cfg.LocalEpochs passes of mini-batch training over data
// and returns the mean batch loss of the final epoch.
func TrainEpochs(net nn.Layer, opt nn.Optimizer, step TrainStep,
	data *datasets.Dataset, cfg ClientConfig, rng *rand.Rand) (float64, error) {
	cfg = cfg.withDefaults()
	if step == nil {
		step = PlainStep{}
	}
	if data.Len() == 0 {
		return 0, fmt.Errorf("fl: empty training set")
	}
	var lastEpochLoss float64
	for e := 0; e < cfg.LocalEpochs; e++ {
		data.Shuffle(rng)
		var sum float64
		batches := 0
		for start := 0; start < data.Len(); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > data.Len() {
				end = data.Len()
			}
			x, y := data.Batch(start, end)
			if cfg.Augment {
				x = datasets.AugmentBatch(rng, x, data.In, cfg.AugmentPad)
			}
			sum += step.Step(net, opt, x, y)
			batches++
		}
		lastEpochLoss = sum / float64(batches)
	}
	return lastEpochLoss, nil
}

// Evaluate returns the accuracy of net on d, processed in batches.
func Evaluate(net nn.Layer, d *datasets.Dataset, batchSize int) float64 {
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	for start := 0; start < d.Len(); start += batchSize {
		end := start + batchSize
		if end > d.Len() {
			end = d.Len()
		}
		x, y := d.Batch(start, end)
		logits, _ := net.Forward(x, false)
		correct += int(nn.Accuracy(logits, y)*float64(end-start) + 0.5)
	}
	if d.Len() == 0 {
		return 0
	}
	return float64(correct) / float64(d.Len())
}

// MeanLoss returns the mean per-sample cross-entropy of net on d.
func MeanLoss(net nn.Layer, d *datasets.Dataset, batchSize int) float64 {
	if batchSize <= 0 {
		batchSize = 64
	}
	var sum float64
	for start := 0; start < d.Len(); start += batchSize {
		end := start + batchSize
		if end > d.Len() {
			end = d.Len()
		}
		x, y := d.Batch(start, end)
		for _, l := range nn.PerSampleLosses(net, x, y) {
			sum += l
		}
	}
	if d.Len() == 0 {
		return 0
	}
	return sum / float64(d.Len())
}

// Losses returns the per-sample cross-entropy losses of net on d — the
// probe every loss-threshold membership inference attack builds on.
func Losses(net nn.Layer, d *datasets.Dataset, batchSize int) []float64 {
	if batchSize <= 0 {
		batchSize = 64
	}
	out := make([]float64, 0, d.Len())
	for start := 0; start < d.Len(); start += batchSize {
		end := start + batchSize
		if end > d.Len() {
			end = d.Len()
		}
		x, y := d.Batch(start, end)
		out = append(out, nn.PerSampleLosses(net, x, y)...)
	}
	return out
}
