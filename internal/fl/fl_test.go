package fl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

func TestAggregateIdentityOnEqualModels(t *testing.T) {
	p := []float64{1, 2, 3}
	updates := []Update{
		{Params: p, NumSamples: 10},
		{Params: p, NumSamples: 3},
	}
	got, err := Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if math.Abs(got[i]-p[i]) > 1e-12 {
			t.Fatalf("Aggregate of identical params diverged at %d: %v", i, got[i])
		}
	}
}

func TestAggregateWeighted(t *testing.T) {
	updates := []Update{
		{Params: []float64{0}, NumSamples: 1},
		{Params: []float64{10}, NumSamples: 3},
	}
	got, err := Aggregate(updates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-7.5) > 1e-12 {
		t.Fatalf("weighted aggregate = %v, want 7.5", got[0])
	}
}

func TestAggregatePermutationInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		dim := 1 + r.Intn(8)
		updates := make([]Update, k)
		for i := range updates {
			p := make([]float64, dim)
			for j := range p {
				p[j] = r.NormFloat64()
			}
			updates[i] = Update{Params: p, NumSamples: 1 + r.Intn(20)}
		}
		a, err := Aggregate(updates)
		if err != nil {
			return false
		}
		perm := r.Perm(k)
		shuffled := make([]Update, k)
		for i, j := range perm {
			shuffled[i] = updates[j]
		}
		b, err := Aggregate(shuffled)
		if err != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDecaySchedule(t *testing.T) {
	lr := DecaySchedule(0.1, 30)
	if got := lr(0); got != 0.1 {
		t.Errorf("lr(0) = %v, want 0.1", got)
	}
	if got := lr(15); got != 0.05 {
		t.Errorf("lr(15) = %v, want 0.05", got)
	}
	if got := lr(29); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("lr(29) = %v, want 0.02", got)
	}
}

func quickData(t *testing.T, seed int64) (*datasets.Dataset, *datasets.Dataset) {
	t.Helper()
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Train: 80, Test: 80, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func newTestClients(t *testing.T, train *datasets.Dataset, k int) ([]Client, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	shards := datasets.PartitionIID(train, k, rng)
	clients := make([]Client, k)
	var initial []float64
	for i := 0; i < k; i++ {
		crng := rand.New(rand.NewSource(int64(100 + i)))
		net := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG,
			train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients[i] = NewLegacyClient(i, net, shards[i], ClientConfig{
			BatchSize: 16, LocalEpochs: 1, LR: func(int) float64 { return 0.08 },
			Momentum: 0.9,
		}, nil, crng)
	}
	return clients, initial
}

func TestFedAvgLearns(t *testing.T) {
	train, test := quickData(t, 1)
	clients, initial := newTestClients(t, train, 3)
	srv := NewServer(initial, clients...)
	if err := srv.Run(40); err != nil {
		t.Fatal(err)
	}
	// Evaluate the aggregated global model.
	eval := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, train.In, train.NumClasses)
	if err := nn.SetFlatParams(eval.Params(), srv.Global()); err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(eval, test, 32)
	if acc < 0.5 {
		t.Fatalf("FedAvg global accuracy = %v, want ≥0.5 on easy data", acc)
	}
}

func TestServerNoClients(t *testing.T) {
	srv := NewServer([]float64{1})
	if err := srv.Run(1); err == nil {
		t.Fatal("expected error running a server with no clients")
	}
}

func TestHistoryRecorderKeepsLossesAndSelectedRounds(t *testing.T) {
	train, _ := quickData(t, 2)
	clients, initial := newTestClients(t, train, 2)
	rec := &HistoryRecorder{KeepParams: true, OnlyRounds: map[int]bool{2: true}}
	srv := NewServer(initial, clients...)
	srv.Observers = append(srv.Observers, rec)
	if err := srv.Run(4); err != nil {
		t.Fatal(err)
	}
	if len(rec.Rounds) != 4 {
		t.Fatalf("recorded %d rounds, want 4", len(rec.Rounds))
	}
	kept := rec.KeptRounds()
	if len(kept) != 1 || kept[0].Round != 2 {
		t.Fatalf("kept rounds = %+v, want only round 2", kept)
	}
	if len(kept[0].LocalParams) != 2 {
		t.Fatalf("kept %d local param sets, want 2", len(kept[0].LocalParams))
	}
	series := rec.ClientLossSeries(0)
	if len(series) != 4 {
		t.Fatalf("loss series length = %d, want 4", len(series))
	}
	for i, l := range series {
		if l <= 0 {
			t.Fatalf("round %d loss = %v, want > 0", i, l)
		}
	}
}

func TestAlterFuncTargetsOneClient(t *testing.T) {
	train, _ := quickData(t, 3)
	clients, initial := newTestClients(t, train, 2)
	altered := map[int]int{}
	srv := NewServer(initial, clients...)
	srv.Alter = func(round, clientID int, global []float64) []float64 {
		if clientID != 1 {
			return nil
		}
		altered[round]++
		out := make([]float64, len(global))
		copy(out, global)
		return out
	}
	if err := srv.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(altered) != 3 {
		t.Fatalf("alteration hook fired for %d rounds, want 3", len(altered))
	}
}

func TestTrainEpochsReducesLoss(t *testing.T) {
	train, _ := quickData(t, 4)
	rng := rand.New(rand.NewSource(5))
	net := model.NewClassifier(rng, model.VGG, train.In, train.NumClasses)
	opt := &nn.SGD{LR: 0.08, Momentum: 0.9}
	cfg := ClientConfig{BatchSize: 16, LocalEpochs: 1}
	first, err := TrainEpochs(net, opt, nil, train, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 8; i++ {
		last, err = TrainEpochs(net, opt, nil, train, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("training loss did not fall: %v -> %v", first, last)
	}
}

func TestEvaluateAndLossesConsistent(t *testing.T) {
	train, _ := quickData(t, 6)
	rng := rand.New(rand.NewSource(6))
	net := model.NewClassifier(rng, model.VGG, train.In, train.NumClasses)
	losses := Losses(net, train, 32)
	if len(losses) != train.Len() {
		t.Fatalf("got %d losses for %d samples", len(losses), train.Len())
	}
	var sum float64
	for _, l := range losses {
		sum += l
	}
	if mean := MeanLoss(net, train, 32); math.Abs(mean-sum/float64(len(losses))) > 1e-9 {
		t.Fatalf("MeanLoss %v inconsistent with Losses mean %v", mean, sum/float64(len(losses)))
	}
}

func TestClientParamSizeMismatch(t *testing.T) {
	train, _ := quickData(t, 7)
	clients, _ := newTestClients(t, train, 1)
	srv := NewServer([]float64{1, 2, 3}, clients...) // wrong size on purpose
	if err := srv.Run(1); err == nil {
		t.Fatal("expected error for mismatched global parameter size")
	}
}
