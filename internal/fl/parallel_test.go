package fl

import (
	"fmt"
	"math"
	"testing"

	"github.com/cip-fl/cip/internal/telemetry"
)

func runTestFederation(t *testing.T, workers int, policy *RoundPolicy) []float64 {
	t.Helper()
	train, _ := quickData(t, 11)
	clients, initial := newTestClients(t, train, 5)
	srv := NewServer(initial, clients...)
	srv.Workers = workers
	srv.Policy = policy
	if err := srv.Run(4); err != nil {
		t.Fatal(err)
	}
	return srv.Global()
}

func requireBitIdentical(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: param count %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: param %d differs: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// TestParallelRoundsBitIdentical pins the engine's determinism contract
// (DESIGN.md §9): the global model after training must match the serial
// schedule bit for bit no matter how many workers train clients
// concurrently.
func TestParallelRoundsBitIdentical(t *testing.T) {
	serial := runTestFederation(t, 1, nil)
	for _, workers := range []int{2, 5, 8} {
		got := runTestFederation(t, workers, nil)
		requireBitIdentical(t, fmt.Sprintf("workers=%d", workers), serial, got)
	}
}

// TestParallelQuorumBitIdentical is the same contract for the
// fault-tolerant path: quorum classification happens serially in
// participant order, so partial aggregation is also schedule-independent.
func TestParallelQuorumBitIdentical(t *testing.T) {
	serial := runTestFederation(t, 1, &RoundPolicy{MinQuorum: 3})
	got := runTestFederation(t, 4, &RoundPolicy{MinQuorum: 3})
	requireBitIdentical(t, "quorum workers=4", serial, got)
}

// TestWorkerPoolMetrics checks the utilization telemetry: a round's busy
// time is the sum of client training times, so utilization lands in (0, 1].
func TestWorkerPoolMetrics(t *testing.T) {
	train, _ := quickData(t, 12)
	clients, initial := newTestClients(t, train, 4)
	srv := NewServer(initial, clients...)
	srv.Workers = 2
	srv.Metrics = NewMetrics(telemetry.NewRegistry())
	if err := srv.Run(2); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics.RoundWorkers.Value(); got != 2 {
		t.Fatalf("fl_round_workers = %v, want 2", got)
	}
	util := srv.Metrics.WorkerUtilization.Value()
	if util <= 0 || util > 1 {
		t.Fatalf("fl_round_worker_utilization = %v, want in (0, 1]", util)
	}
	if srv.Metrics.ClientTrainMillis.Value() == 0 {
		t.Fatal("fl_client_train_milliseconds_total stayed zero across 2 rounds")
	}
}
