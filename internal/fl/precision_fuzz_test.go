package fl

import (
	"math"
	"testing"

	"github.com/cip-fl/cip/internal/tensor"
)

// FuzzNarrowWidenValidate fuzzes the f64↔f32 edge conversion at the FL
// boundary. Updates crossing internal/fl are always []float64 regardless
// of the training precision, so the property that matters is: narrowing a
// vector to float32 and widening it back must never turn a REJECTED update
// into an accepted one. NaN survives the round trip as NaN, ±Inf as ±Inf,
// and finite values beyond MaxFloat32 overflow to ±Inf — all of which
// ValidateUpdate still rejects. Values that narrow to finite float32
// (including subnormal flushes to zero) stay finite and stay accepted.
func FuzzNarrowWidenValidate(f *testing.F) {
	f.Add(1.5, -2.25, 0.0)
	f.Add(math.NaN(), 1.0, 2.0)
	f.Add(math.Inf(1), math.Inf(-1), 3.0)
	f.Add(math.MaxFloat64, -math.MaxFloat64, 1e-300)
	f.Add(float64(math.MaxFloat32), float64(math.SmallestNonzeroFloat32), -0.0)
	f.Fuzz(func(t *testing.T, x, y, z float64) {
		params := []float64{x, y, z}
		u := Update{ClientID: 1, Params: params, NumSamples: 1}
		errBefore := ValidateUpdate(u, len(params))

		round := tensor.Widen(tensor.Narrow(params))
		ur := Update{ClientID: 1, Params: round, NumSamples: 1}
		errAfter := ValidateUpdate(ur, len(round))

		if errBefore != nil && errAfter == nil {
			t.Fatalf("rejected update %v became accepted after f32 round trip: %v", params, round)
		}
		for i, v := range params {
			r := round[i]
			switch {
			case math.IsNaN(v):
				if !math.IsNaN(r) {
					t.Fatalf("param %d: NaN round-tripped to %v", i, r)
				}
			case math.IsInf(v, 0) || math.Abs(v) > math.MaxFloat32:
				// float64→float32 rounds to nearest: values within half an
				// ulp below MaxFloat32's successor stay finite, anything
				// beyond overflows to Inf with v's sign. Either way the
				// sign must hold and an overflow must be infinite.
				if math.Abs(v) >= math.MaxFloat32*(1+1.0/(1<<24)) && !math.IsInf(r, int(math.Copysign(1, v))) {
					t.Fatalf("param %d: %v should overflow to signed Inf, got %v", i, v, r)
				}
			default:
				// In-range finite values stay finite (subnormals may flush
				// toward zero but never become NaN/Inf).
				if math.IsNaN(r) || math.IsInf(r, 0) {
					t.Fatalf("param %d: finite %v became non-finite %v", i, v, r)
				}
				if math.Abs(r-v) > math.Abs(v)*1e-6+1e-38 {
					t.Fatalf("param %d: %v drifted to %v beyond f32 rounding", i, v, r)
				}
			}
		}
	})
}
