package fl

import (
	"testing"

	"github.com/cip-fl/cip/internal/telemetry"
)

// loudClient returns an update whose L2 norm is scale, regardless of the
// broadcast parameters — an outlier a norm bound should drop.
type loudClient struct {
	id     int
	scale  float64
	rounds int
}

func (c *loudClient) ID() int         { return c.id }
func (c *loudClient) NumSamples() int { return 10 }
func (c *loudClient) TrainLocal(_ int, global []float64) (Update, error) {
	c.rounds++
	p := make([]float64, len(global))
	p[0] = c.scale
	return Update{Params: p, NumSamples: 10, TrainLoss: 1}, nil
}

func TestValidateUpdateBounded(t *testing.T) {
	u := Update{ClientID: 1, Params: []float64{3, 4}, NumSamples: 1} // norm 5
	if err := ValidateUpdateBounded(u, 2, 0); err != nil {
		t.Fatalf("disabled bound rejected a finite update: %v", err)
	}
	if err := ValidateUpdateBounded(u, 2, 5.0001); err != nil {
		t.Fatalf("norm 5 rejected under bound 5.0001: %v", err)
	}
	if err := ValidateUpdateBounded(u, 2, 4.9); err == nil {
		t.Fatal("norm 5 accepted under bound 4.9")
	}
	if err := ValidateUpdateBounded(u, 3, 100); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRoundPolicyMaxUpdateNormDropsOutlier(t *testing.T) {
	const rounds = 3
	quiet := []*countingClient{{id: 0, dim: 2}, {id: 1, dim: 2}, {id: 2, dim: 2}}
	loud := &loudClient{id: 3, scale: 1e6}
	clients := []Client{quiet[0], quiet[1], quiet[2], loud}

	reg := telemetry.NewRegistry()
	srv := NewServer([]float64{1, 2}, clients...)
	srv.Policy = &RoundPolicy{MinQuorum: 3, MaxUpdateNorm: 100}
	srv.Metrics = NewMetrics(reg)
	if err := srv.Run(rounds); err != nil {
		t.Fatal(err)
	}
	// The outlier trained every round (the bound judges its output, not
	// its participation) but never entered an aggregate.
	if loud.rounds != rounds {
		t.Fatalf("outlier trained %d rounds, want %d", loud.rounds, rounds)
	}
	if got := srv.FailureCounts()[loud.id]; got != rounds {
		t.Fatalf("outlier failure count %d, want %d", got, rounds)
	}
	if got := srv.Metrics.ValidationRejections.Value(); got != rounds {
		t.Fatalf("fl_validation_rejections_total = %d, want %d", got, rounds)
	}
	// quiet clients echo the global back, so the global must be unchanged;
	// had the outlier's update been averaged in, global[0] would be huge.
	if g := srv.Global(); g[0] != 1 || g[1] != 2 {
		t.Fatalf("global drifted to %v — the outlier leaked into aggregation", g)
	}
}
