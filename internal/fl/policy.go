package fl

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/robust"
)

// FailureReason classifies why a client's contribution to a round was
// dropped. Transport-level reasons (timeout, connection loss) are produced
// by internal/fl/transport; the in-process engine produces train and
// invalid failures.
type FailureReason string

const (
	// FailTrain means the client's TrainLocal returned an error.
	FailTrain FailureReason = "train"
	// FailInvalid means the update failed validation (NaN/Inf values or a
	// parameter-length mismatch).
	FailInvalid FailureReason = "invalid"
	// FailTimeout means the client missed the round deadline.
	FailTimeout FailureReason = "timeout"
	// FailTransport means the client's connection failed mid-round.
	FailTransport FailureReason = "transport"
	// FailQuarantined means the client is serving a reputation quarantine
	// and was excluded from the round before training or exchange.
	FailQuarantined FailureReason = "quarantined"
)

// ErrQuorumAfterTrim is wrapped by AggregateRobust when a robust rule's
// trimming leaves fewer contributors than MinQuorum. The pre-validation
// quorum check can pass while this fails: n valid updates minus 2·⌊f·n⌋
// trimmed tails may fall under the quorum, and aggregating anyway would
// report a round backed by fewer honest inputs than the policy promises.
var ErrQuorumAfterTrim = errors.New("fl: quorum lost after trim")

// ClientFailure describes one client's failure in one round. Observers that
// implement FailureObserver receive these so attack analyses (and ops
// tooling) know exactly which clients were dropped from each aggregate.
type ClientFailure struct {
	ClientID int
	Round    int
	Reason   FailureReason
	Err      error
}

// RoundPolicy relaxes the engine's fail-stop rounds into quorum-based
// partial aggregation: failing or invalid clients are dropped from the
// round instead of aborting the federation, as long as enough valid
// updates survive. A nil policy on the Server keeps the legacy fail-stop
// behavior (first client error aborts the round).
type RoundPolicy struct {
	// MinQuorum is the minimum number of valid updates a round must
	// produce for aggregation to proceed. It is an absolute count checked
	// against the round's participants (the sampled subset when client
	// sampling is enabled), not the full client roster. Values < 1 are
	// treated as 1.
	MinQuorum int
	// SampleFraction, when in (0, 1), trains only that sampled fraction of
	// the roster each round (McMahan et al.'s client-sampling parameter C);
	// 0 or ≥ 1 trains everyone. It is the policy-level spelling of
	// Server.SampleFraction (the Server-level knob wins when both are set)
	// and what the flserver/ciptrain -sample-frac flag populates. MinQuorum
	// is checked against the sampled cohort, so f·roster must stay ≥ the
	// quorum for rounds to proceed.
	SampleFraction float64
	// MaxFailures, when > 0, additionally caps how many per-round client
	// failures are tolerated even if the quorum is still met. 0 means no
	// cap beyond the quorum check.
	MaxFailures int
	// MaxUpdateNorm, when > 0, drops updates whose parameter-vector L2
	// norm exceeds it as FailInvalid. Exploding or poisoned updates can
	// pass the NaN/Inf check with finite but enormous values; a norm bound
	// stops them from dominating the FedAvg aggregate. 0 disables the
	// bound.
	MaxUpdateNorm float64
	// Robust, when non-nil, replaces the sample-weighted FedAvg mean with
	// a Byzantine-resilient rule (coordinate-wise median, trimmed mean,
	// or norm-clipped mean — see internal/fl/robust). Nil keeps plain
	// Aggregate.
	Robust robust.Aggregator
	// Reputation, when non-nil, scores every participant's per-round
	// anomaly evidence (deviation from the robust aggregate, norm-bound
	// hits, validation rejections) and enforces its quarantine decisions:
	// quarantined clients are excluded from rounds before training. The
	// tracker's state rides in ServerState, so checkpoint/resume does not
	// amnesty an attacker.
	Reputation *robust.Reputation
	// Compress, when non-nil, routes every valid update through the
	// compressed wire path in-process: the update becomes a delta against
	// the broadcast global, the client's error-feedback residual is
	// folded in, and the lossy round-tripped reconstruction is what
	// observers and the aggregate actually see — the same information a
	// compressed TCP federation would carry. The bank's residuals ride in
	// ServerState, so checkpoint/resume replays compressed rounds
	// bit-identically. Validation (NaN/Inf, MaxUpdateNorm) runs on the
	// raw pre-compression update.
	Compress *compress.Bank
}

func (p *RoundPolicy) quorum() int {
	if p.MinQuorum < 1 {
		return 1
	}
	return p.MinQuorum
}

// FailureObserver is an optional extension of RoundObserver. Observers
// implementing it are told which clients were dropped each round (possibly
// an empty slice) before ObserveRound delivers the surviving updates.
type FailureObserver interface {
	ObserveFailures(round int, failures []ClientFailure)
}

// ValidateUpdate rejects parameter vectors that would poison or crash the
// aggregate: a length mismatch against the global model, or any NaN/Inf
// entry. Both the in-process engine (under a RoundPolicy) and the TCP
// transport run every update through this check. Sparse/delta updates
// delegate to ValidateSparse, which additionally enforces index
// structure (range, ordering, no duplicates).
func ValidateUpdate(u Update, wantLen int) error {
	if u.Sparse() {
		return ValidateSparse(u, wantLen)
	}
	if len(u.Params) != wantLen {
		return fmt.Errorf("fl: client %d update has %d params, want %d",
			u.ClientID, len(u.Params), wantLen)
	}
	for i, v := range u.Params {
		if math.IsNaN(v) {
			return fmt.Errorf("fl: client %d update has NaN at param %d", u.ClientID, i)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("fl: client %d update has Inf at param %d", u.ClientID, i)
		}
	}
	return nil
}

// UpdateNorm returns the L2 norm of an update's parameter vector.
func UpdateNorm(u Update) float64 {
	var ss float64
	for _, v := range u.Params {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// ValidateUpdateBounded is ValidateUpdate plus an optional L2 norm bound
// (maxNorm ≤ 0 disables it). Both the in-process engine (through
// RoundPolicy.MaxUpdateNorm) and the TCP transport (through
// Coordinator.MaxUpdateNorm) run updates through this check.
func ValidateUpdateBounded(u Update, wantLen int, maxNorm float64) error {
	if err := ValidateUpdate(u, wantLen); err != nil {
		return err
	}
	if maxNorm > 0 {
		if n := UpdateNorm(u); n > maxNorm {
			return fmt.Errorf("fl: client %d update L2 norm %.4g exceeds bound %.4g",
				u.ClientID, n, maxNorm)
		}
	}
	return nil
}

// AggregateRobust aggregates valid updates under an optional robust rule.
// A nil aggregator keeps the legacy sample-weighted FedAvg mean. With a
// rule attached, the post-trim contributor count is checked against
// minQuorum (values < 1 mean 1) BEFORE aggregating, surfacing
// ErrQuorumAfterTrim — the pre-validation count alone can satisfy the
// quorum while trimming leaves too few real contributors behind.
func AggregateRobust(agg robust.Aggregator, center []float64, updates []Update,
	minQuorum int) ([]float64, robust.Report, error) {
	if agg == nil {
		out, err := Aggregate(updates)
		return out, robust.Report{Contributors: len(updates)}, err
	}
	if len(updates) == 0 {
		return nil, robust.Report{}, errors.New("fl: aggregate of zero updates")
	}
	for _, u := range updates {
		if u.Sparse() {
			return nil, robust.Report{}, fmt.Errorf(
				"fl: robust aggregate: client %d update is sparse/delta; densify before aggregation",
				u.ClientID)
		}
	}
	if minQuorum < 1 {
		minQuorum = 1
	}
	if c := agg.Contributors(len(updates)); c < minQuorum {
		return nil, robust.Report{}, fmt.Errorf(
			"%w: %s keeps %d contributors of %d valid updates, need %d",
			ErrQuorumAfterTrim, agg.Name(), c, len(updates), minQuorum)
	}
	h := headerPool.Get().(*robustHeaders)
	params, weights := h.params[:0], h.weights[:0]
	for _, u := range updates {
		params = append(params, u.Params)
		w := float64(u.NumSamples)
		if w <= 0 {
			w = 1
		}
		weights = append(weights, w)
	}
	out, rep, err := agg.Aggregate(center, params, weights)
	for i := range params {
		params[i] = nil // drop update references before pooling
	}
	h.params, h.weights = params[:0], weights[:0]
	headerPool.Put(h)
	if err != nil {
		return nil, rep, fmt.Errorf("fl: %s aggregation: %w", agg.Name(), err)
	}
	return out, rep, nil
}

// robustHeaders is the pooled params/weights header pair AggregateRobust
// hands a robust rule; pooling it removes the two per-round header
// allocations from the steady state (rules only read the headers, so they
// are safe to recycle as soon as Aggregate returns).
type robustHeaders struct {
	params  [][]float64
	weights []float64
}

var headerPool = sync.Pool{New: func() any { return new(robustHeaders) }}

// splitQuarantined partitions participants into the clients eligible to
// train this round and the ClientFailure records of those excluded by an
// active quarantine. With no reputation tracker everything is eligible.
func (p *RoundPolicy) splitQuarantined(round int, participants []Client) ([]Client, []ClientFailure) {
	if p.Reputation == nil {
		return participants, nil
	}
	eligible := make([]Client, 0, len(participants))
	var excluded []ClientFailure
	for _, c := range participants {
		if p.Reputation.Blocked(c.ID()) {
			excluded = append(excluded, ClientFailure{
				ClientID: c.ID(), Round: round, Reason: FailQuarantined,
				Err: fmt.Errorf("fl: client %d is quarantined", c.ID()),
			})
			continue
		}
		eligible = append(eligible, c)
	}
	return eligible, excluded
}

// scoreRound feeds one completed round into the reputation tracker: each
// valid client's distance from the aggregate, then the round-boundary
// EWMA fold and state-machine advance over every non-quarantined
// participant. Violations (norm/validation rejections) were already
// observed during classification.
func (p *RoundPolicy) scoreRound(agg []float64, valid []Update, failures []ClientFailure) {
	rep := p.Reputation
	if rep == nil {
		return
	}
	ids := make([]int, len(valid))
	params := make([][]float64, len(valid))
	for i, u := range valid {
		ids[i] = u.ClientID
		params[i] = u.Params
	}
	rep.ObserveDeviations(ids, robust.Distances(agg, params))
	roundIDs := ids
	for _, f := range failures {
		if f.Reason != FailQuarantined {
			roundIDs = append(roundIDs, f.ClientID)
		}
	}
	rep.EndRound(roundIDs)
}

// runRoundQuorum is RunRound under a RoundPolicy: exclude quarantined
// clients, train every eligible participant, drop failures and invalid
// updates, and aggregate over the surviving quorum — robustly when a
// Byzantine-resilient rule is attached.
func (s *Server) runRoundQuorum(round int, start time.Time, participants []Client) error {
	eligible, failures := s.Policy.splitQuarantined(round, participants)
	outcomes, workers, busy := s.trainParticipants(round, eligible)
	// Classify outcomes serially in participant order, so the valid and
	// failure lists (and everything downstream: observers, aggregation,
	// reputation) are independent of worker interleaving.
	valid := make([]Update, 0, len(eligible))
	hardFailures := 0
	for i, c := range eligible {
		if err := outcomes[i].err; err != nil {
			failures = append(failures, ClientFailure{
				ClientID: c.ID(), Round: round, Reason: FailTrain, Err: err,
			})
			hardFailures++
			continue
		}
		u := outcomes[i].update
		if err := ValidateUpdateBounded(u, len(s.global), s.Policy.MaxUpdateNorm); err != nil {
			s.Metrics.RecordValidationRejection()
			if s.Policy.Reputation != nil {
				s.Policy.Reputation.ObserveViolation(c.ID())
			}
			failures = append(failures, ClientFailure{
				ClientID: c.ID(), Round: round, Reason: FailInvalid, Err: err,
			})
			hardFailures++
			continue
		}
		if bank := s.Policy.Compress; bank != nil {
			// Serial, roster-ordered: the error-feedback fold mutates
			// per-client residual state, and determinism at any worker
			// count requires a fixed application order.
			params, wireBytes, err := bank.RoundTrip(c.ID(), s.global, u.Params)
			if err != nil {
				return fmt.Errorf("fl: round %d: %w", round, err)
			}
			u.Params = params
			s.Metrics.RecordCompressedUpdate(wireBytes, 8*len(params))
		}
		valid = append(valid, u)
	}
	if hardFailures > 0 {
		if s.failCounts == nil {
			s.failCounts = make(map[int]int)
		}
		for _, f := range failures {
			// Quarantine exclusions are policy decisions, not client
			// failures; only genuine failures feed the cumulative counts.
			if f.Reason != FailQuarantined {
				s.failCounts[f.ClientID]++
			}
		}
	}
	if cap := s.Policy.MaxFailures; cap > 0 && hardFailures > cap {
		return fmt.Errorf("fl: round %d: %d client failures exceed cap %d",
			round, hardFailures, cap)
	}
	if q := s.Policy.quorum(); len(valid) < q {
		return fmt.Errorf("fl: round %d: quorum lost: %d valid updates from %d participants, need %d",
			round, len(valid), len(participants), q)
	}
	for _, o := range s.Observers {
		if fo, ok := o.(FailureObserver); ok {
			fo.ObserveFailures(round, failures)
		}
	}
	for _, o := range s.Observers {
		o.ObserveRound(round, s.Global(), valid)
	}
	agg, report, err := AggregateRobust(s.Policy.Robust, s.global, valid, s.Policy.quorum())
	if err != nil {
		return fmt.Errorf("fl: round %d: %w", round, err)
	}
	s.Policy.scoreRound(agg, valid, failures)
	s.global = agg
	s.Metrics.RecordRound(start, len(valid), len(failures), len(agg))
	s.Metrics.RecordRobust(report)
	s.Metrics.RecordReputation(s.Policy.Reputation)
	s.Metrics.RecordWorkerPool(workers, busy, time.Since(start))
	return nil
}
