package fl

import (
	"fmt"
	"math"
	"time"
)

// FailureReason classifies why a client's contribution to a round was
// dropped. Transport-level reasons (timeout, connection loss) are produced
// by internal/fl/transport; the in-process engine produces train and
// invalid failures.
type FailureReason string

const (
	// FailTrain means the client's TrainLocal returned an error.
	FailTrain FailureReason = "train"
	// FailInvalid means the update failed validation (NaN/Inf values or a
	// parameter-length mismatch).
	FailInvalid FailureReason = "invalid"
	// FailTimeout means the client missed the round deadline.
	FailTimeout FailureReason = "timeout"
	// FailTransport means the client's connection failed mid-round.
	FailTransport FailureReason = "transport"
)

// ClientFailure describes one client's failure in one round. Observers that
// implement FailureObserver receive these so attack analyses (and ops
// tooling) know exactly which clients were dropped from each aggregate.
type ClientFailure struct {
	ClientID int
	Round    int
	Reason   FailureReason
	Err      error
}

// RoundPolicy relaxes the engine's fail-stop rounds into quorum-based
// partial aggregation: failing or invalid clients are dropped from the
// round instead of aborting the federation, as long as enough valid
// updates survive. A nil policy on the Server keeps the legacy fail-stop
// behavior (first client error aborts the round).
type RoundPolicy struct {
	// MinQuorum is the minimum number of valid updates a round must
	// produce for aggregation to proceed. It is an absolute count checked
	// against the round's participants (the sampled subset when client
	// sampling is enabled), not the full client roster. Values < 1 are
	// treated as 1.
	MinQuorum int
	// MaxFailures, when > 0, additionally caps how many per-round client
	// failures are tolerated even if the quorum is still met. 0 means no
	// cap beyond the quorum check.
	MaxFailures int
	// MaxUpdateNorm, when > 0, drops updates whose parameter-vector L2
	// norm exceeds it as FailInvalid. Exploding or poisoned updates can
	// pass the NaN/Inf check with finite but enormous values; a norm bound
	// stops them from dominating the FedAvg aggregate. 0 disables the
	// bound.
	MaxUpdateNorm float64
}

func (p *RoundPolicy) quorum() int {
	if p.MinQuorum < 1 {
		return 1
	}
	return p.MinQuorum
}

// FailureObserver is an optional extension of RoundObserver. Observers
// implementing it are told which clients were dropped each round (possibly
// an empty slice) before ObserveRound delivers the surviving updates.
type FailureObserver interface {
	ObserveFailures(round int, failures []ClientFailure)
}

// ValidateUpdate rejects parameter vectors that would poison or crash the
// aggregate: a length mismatch against the global model, or any NaN/Inf
// entry. Both the in-process engine (under a RoundPolicy) and the TCP
// transport run every update through this check.
func ValidateUpdate(u Update, wantLen int) error {
	if len(u.Params) != wantLen {
		return fmt.Errorf("fl: client %d update has %d params, want %d",
			u.ClientID, len(u.Params), wantLen)
	}
	for i, v := range u.Params {
		if math.IsNaN(v) {
			return fmt.Errorf("fl: client %d update has NaN at param %d", u.ClientID, i)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("fl: client %d update has Inf at param %d", u.ClientID, i)
		}
	}
	return nil
}

// UpdateNorm returns the L2 norm of an update's parameter vector.
func UpdateNorm(u Update) float64 {
	var ss float64
	for _, v := range u.Params {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// ValidateUpdateBounded is ValidateUpdate plus an optional L2 norm bound
// (maxNorm ≤ 0 disables it). Both the in-process engine (through
// RoundPolicy.MaxUpdateNorm) and the TCP transport (through
// Coordinator.MaxUpdateNorm) run updates through this check.
func ValidateUpdateBounded(u Update, wantLen int, maxNorm float64) error {
	if err := ValidateUpdate(u, wantLen); err != nil {
		return err
	}
	if maxNorm > 0 {
		if n := UpdateNorm(u); n > maxNorm {
			return fmt.Errorf("fl: client %d update L2 norm %.4g exceeds bound %.4g",
				u.ClientID, n, maxNorm)
		}
	}
	return nil
}

// runRoundQuorum is RunRound under a RoundPolicy: train every participant,
// drop failures and invalid updates, and aggregate over the surviving
// quorum.
func (s *Server) runRoundQuorum(round int, start time.Time, participants []Client) error {
	outcomes, workers, busy := s.trainParticipants(round, participants)
	// Classify outcomes serially in participant order, so the valid and
	// failure lists (and everything downstream: observers, aggregation)
	// are independent of worker interleaving.
	valid := make([]Update, 0, len(participants))
	var failures []ClientFailure
	for i, c := range participants {
		if err := outcomes[i].err; err != nil {
			failures = append(failures, ClientFailure{
				ClientID: c.ID(), Round: round, Reason: FailTrain, Err: err,
			})
			continue
		}
		u := outcomes[i].update
		if err := ValidateUpdateBounded(u, len(s.global), s.Policy.MaxUpdateNorm); err != nil {
			s.Metrics.RecordValidationRejection()
			failures = append(failures, ClientFailure{
				ClientID: c.ID(), Round: round, Reason: FailInvalid, Err: err,
			})
			continue
		}
		valid = append(valid, u)
	}
	if len(failures) > 0 {
		if s.failCounts == nil {
			s.failCounts = make(map[int]int)
		}
		for _, f := range failures {
			s.failCounts[f.ClientID]++
		}
	}
	if cap := s.Policy.MaxFailures; cap > 0 && len(failures) > cap {
		return fmt.Errorf("fl: round %d: %d client failures exceed cap %d",
			round, len(failures), cap)
	}
	if q := s.Policy.quorum(); len(valid) < q {
		return fmt.Errorf("fl: round %d: quorum lost: %d valid updates from %d participants, need %d",
			round, len(valid), len(participants), q)
	}
	for _, o := range s.Observers {
		if fo, ok := o.(FailureObserver); ok {
			fo.ObserveFailures(round, failures)
		}
	}
	for _, o := range s.Observers {
		o.ObserveRound(round, s.Global(), valid)
	}
	agg, err := Aggregate(valid)
	if err != nil {
		return fmt.Errorf("fl: round %d: %w", round, err)
	}
	s.global = agg
	s.Metrics.RecordRound(start, len(valid), len(failures), len(agg))
	s.Metrics.RecordWorkerPool(workers, busy, time.Since(start))
	return nil
}
