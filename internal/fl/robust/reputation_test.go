package robust

import (
	"math"
	"testing"
)

// attackRound feeds one round where client `bad` deviates maximally and the
// rest sit at the median distance.
func attackRound(r *Reputation, ids []int, bad int) {
	dists := make([]float64, len(ids))
	for i, id := range ids {
		dists[i] = 1
		if id == bad {
			dists[i] = 100
		}
	}
	r.ObserveDeviations(ids, dists)
	r.EndRound(ids)
}

func cleanRound(r *Reputation, ids []int) {
	dists := make([]float64, len(ids))
	for i := range dists {
		dists[i] = 1 + 0.01*float64(i)
	}
	r.ObserveDeviations(ids, dists)
	r.EndRound(ids)
}

func TestQuarantineProgression(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	ids := []int{0, 1, 2, 3, 4}
	if r.StateOf(3) != Healthy {
		t.Fatalf("unknown client state = %v, want healthy", r.StateOf(3))
	}
	attackRound(r, ids, 3)
	// One round at sample 1.0 with α=0.4: score 0.4 < 0.5 → still healthy.
	if got := r.StateOf(3); got != Healthy {
		t.Fatalf("after 1 attack round: state = %v, want healthy", got)
	}
	attackRound(r, ids, 3)
	// score 0.64 ≥ 0.5 → suspect (streak 1 of QuarantineAfter=2).
	if got := r.StateOf(3); got != Suspect {
		t.Fatalf("after 2 attack rounds: state = %v, want suspect", got)
	}
	attackRound(r, ids, 3)
	if got := r.StateOf(3); got != Quarantined {
		t.Fatalf("after 3 attack rounds: state = %v, want quarantined", got)
	}
	if !r.Blocked(3) {
		t.Fatal("quarantined client not Blocked")
	}
	if r.QuarantinedCount() != 1 {
		t.Fatalf("QuarantinedCount = %d, want 1", r.QuarantinedCount())
	}
	for _, id := range []int{0, 1, 2, 4} {
		if r.StateOf(id) != Healthy {
			t.Fatalf("honest client %d state = %v, want healthy", id, r.StateOf(id))
		}
		if r.Blocked(id) {
			t.Fatalf("honest client %d is blocked", id)
		}
	}
	// Default QuarantineTerm=0: quarantine is permanent.
	for i := 0; i < 20; i++ {
		cleanRound(r, []int{0, 1, 2, 4})
	}
	if !r.Blocked(3) {
		t.Fatal("permanent quarantine released the client")
	}
}

func TestSuspectRecovers(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	ids := []int{0, 1, 2}
	attackRound(r, ids, 1)
	attackRound(r, ids, 1)
	if r.StateOf(1) != Suspect {
		t.Fatalf("state = %v, want suspect", r.StateOf(1))
	}
	// A suspect that turns clean decays below ReleaseScore and recovers
	// before reaching quarantine.
	for i := 0; i < 4; i++ {
		cleanRound(r, ids)
	}
	if got := r.StateOf(1); got != Healthy {
		t.Fatalf("after clean rounds: state = %v (score %.3f), want healthy", got, r.ScoreOf(1))
	}
	if r.QuarantinedCount() != 0 {
		t.Fatalf("QuarantinedCount = %d, want 0", r.QuarantinedCount())
	}
}

func quarantine(t *testing.T, r *Reputation, ids []int, bad int) {
	t.Helper()
	for i := 0; i < 10 && !r.Blocked(bad); i++ {
		attackRound(r, ids, bad)
	}
	if !r.Blocked(bad) {
		t.Fatalf("client %d never quarantined", bad)
	}
}

func TestProbationReleaseAndRelapse(t *testing.T) {
	cfg := ReputationConfig{QuarantineTerm: 2, ProbationRounds: 2}
	ids := []int{0, 1, 2, 3}

	// Path 1: serve the term, stay clean through probation, return healthy.
	r := NewReputation(cfg)
	quarantine(t, r, ids, 2)
	cleanRound(r, []int{0, 1, 3}) // term round 1 (not a participant)
	cleanRound(r, []int{0, 1, 3}) // term round 2 → probation
	if got := r.StateOf(2); got != Probation {
		t.Fatalf("after serving term: state = %v, want probation", got)
	}
	if r.Blocked(2) {
		t.Fatal("probationer should not be blocked")
	}
	cleanRound(r, ids)
	cleanRound(r, ids)
	if got := r.StateOf(2); got != Healthy {
		t.Fatalf("after clean probation: state = %v (score %.3f), want healthy", got, r.ScoreOf(2))
	}

	// Path 2: relapse during probation goes straight back to quarantine.
	r = NewReputation(cfg)
	quarantine(t, r, ids, 2)
	cleanRound(r, []int{0, 1, 3})
	cleanRound(r, []int{0, 1, 3})
	if r.StateOf(2) != Probation {
		t.Fatalf("state = %v, want probation", r.StateOf(2))
	}
	attackRound(r, ids, 2) // zero tolerance: one violation re-quarantines
	if got := r.StateOf(2); got != Quarantined {
		t.Fatalf("after probation relapse: state = %v, want quarantined", got)
	}
}

func TestViolationsEscalate(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	ids := []int{0, 1}
	for i := 0; i < 3 && !r.Blocked(1); i++ {
		r.ObserveViolation(1)
		r.EndRound(ids)
	}
	if !r.Blocked(1) {
		t.Fatal("repeat validation violations never quarantined the client")
	}
	if rec := r.Records()[1]; rec.Violations != 3 {
		t.Fatalf("violations = %d, want 3", rec.Violations)
	}
}

func TestEndRoundReportsChanges(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	ids := []int{0, 1, 2}
	attackRound(r, ids, 0) // score 0.4, no transitions yet
	r.ObserveDeviations(ids, []float64{100, 1, 1})
	if changed := r.EndRound(ids); len(changed) != 1 || changed[0] != 0 {
		t.Fatalf("changed = %v, want [0]", changed)
	}
}

func TestObserveDeviationsDegenerate(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	// All-zero distances: no honest scale, nobody should be flagged.
	r.ObserveDeviations([]int{0, 1}, []float64{0, 0})
	r.EndRound([]int{0, 1})
	if r.ScoreOf(0) != 0 || r.ScoreOf(1) != 0 {
		t.Fatalf("degenerate round scored clients: %v %v", r.ScoreOf(0), r.ScoreOf(1))
	}
	// ...except non-finite rows, which are always maximal evidence.
	r.ObserveDeviations([]int{0, 1}, []float64{0, math.Inf(1)})
	r.EndRound([]int{0, 1})
	if r.ScoreOf(1) <= r.ScoreOf(0) {
		t.Fatalf("poisoned row (%.2f) not scored above clean row (%.2f)",
			r.ScoreOf(1), r.ScoreOf(0))
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	ids := []int{0, 1, 2, 3, 4}
	quarantine(t, r, ids, 4)
	attackRound(r, ids, 2) // leave a partial score on client 2 too
	blob, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// A restart must not amnesty the attacker: restore into a fresh tracker
	// and check every record survived bit-for-bit.
	fresh := NewReputation(ReputationConfig{})
	if err := fresh.Restore(blob); err != nil {
		t.Fatal(err)
	}
	want, got := r.Records(), fresh.Records()
	if len(want) != len(got) {
		t.Fatalf("restored %d records, want %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("client %d missing after restore", id)
		}
		if g != w {
			t.Fatalf("client %d record %+v, want %+v", id, g, w)
		}
	}
	if !fresh.Blocked(4) {
		t.Fatal("restore amnestied the quarantined client")
	}

	// The two trackers must evolve identically from here.
	attackRound(r, ids, 2)
	attackRound(fresh, ids, 2)
	if r.StateOf(2) != fresh.StateOf(2) || r.ScoreOf(2) != fresh.ScoreOf(2) {
		t.Fatalf("post-restore divergence: %v/%.4f vs %v/%.4f",
			r.StateOf(2), r.ScoreOf(2), fresh.StateOf(2), fresh.ScoreOf(2))
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	if err := r.Restore([]byte("not gob")); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{
		Healthy: "healthy", Suspect: "suspect", Quarantined: "quarantined",
		Probation: "probation", Health(42): "health(42)",
	} {
		if h.String() != want {
			t.Fatalf("Health(%d).String() = %q, want %q", int(h), h.String(), want)
		}
	}
}
