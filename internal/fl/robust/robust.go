// Package robust implements Byzantine-resilient aggregation rules for the
// federation: coordinate-wise median, trimmed mean, and norm-clipped mean
// behind one Aggregator interface, plus the per-client reputation tracker
// (reputation.go) that turns per-round anomaly evidence into a quarantine
// decision.
//
// The package is deliberately free of any dependency on internal/fl: it
// operates on raw parameter matrices, so the fl engine and the TCP
// coordinator can both import it (fl.AggregateRobust adapts []fl.Update).
//
// Threat model. MaxUpdateNorm (PR 4) stops NaN/Inf and exploding updates,
// but a Byzantine client that stays under the norm bound can still steer a
// plain FedAvg mean arbitrarily far — the mean has a breakdown point of 0.
// The rules here bound that influence: the coordinate-wise median and the
// f-trimmed mean tolerate up to f < n/2 (median) or f ≤ trim·n (trimmed)
// arbitrary updates per coordinate, and the norm-clipped mean caps every
// client's pull on the aggregate at MaxNorm regardless of what it sends.
//
// All rules are unweighted on purpose: the FedAvg sample weights are
// client-reported and therefore attacker-controlled — a single colluder
// claiming 10^9 samples would dominate any weighted rule. Honest-path
// weighting is preserved by the default (nil) aggregator, which keeps the
// legacy sample-weighted fl.Aggregate.
//
// Determinism. Every rule is computed coordinate-by-coordinate with a
// fixed per-coordinate algorithm, so results are bit-identical at any
// worker count (coordinates are independent; the parallel path only
// partitions the coordinate range) — the same structural-determinism
// contract as the PR 3 parallel rounds.
package robust

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Report describes what a robust rule discarded or limited in one
// aggregation: it feeds the fl_robust_trimmed_total telemetry and the
// post-trim quorum check (fl.ErrQuorumAfterTrim).
type Report struct {
	// Trimmed is the number of client contributions excluded from every
	// output coordinate (both tails combined for the trimmed mean; the
	// non-finite inputs skipped by any rule are also counted here, once
	// per client at their per-coordinate maximum).
	Trimmed int
	// Clipped is the number of updates whose influence was norm-clipped.
	Clipped int
	// Contributors is the number of inputs that can still influence the
	// aggregate after trimming — the count the post-trim quorum check
	// compares against MinQuorum.
	Contributors int
}

// Aggregator is one robust aggregation rule. Aggregate combines the row
// vectors of params (all rows must share one length) into a fresh output
// vector. center is the pre-round global parameter vector; rules that
// reason about update deltas (the norm-clipped mean) measure against it,
// and every rule falls back to it on coordinates where no finite
// contribution survives. weights carries the clients' claimed sample
// counts; robust rules ignore it (see the package comment) but receive it
// so the plain Mean can stay weight-compatible.
type Aggregator interface {
	Name() string
	Aggregate(center []float64, params [][]float64, weights []float64) ([]float64, Report, error)
	// Contributors returns how many of n inputs remain able to influence
	// the aggregate under this rule (n minus the trimmed tails). The
	// engine rejects a round when this falls below MinQuorum.
	Contributors(n int) int
}

// ErrNoUpdates is returned when a rule is asked to aggregate zero rows.
var ErrNoUpdates = errors.New("robust: aggregate of zero updates")

// checkShape validates the input matrix and returns the row length.
func checkShape(params [][]float64) (int, error) {
	if len(params) == 0 {
		return 0, ErrNoUpdates
	}
	dim := len(params[0])
	for i, row := range params {
		if len(row) != dim {
			return 0, fmt.Errorf("robust: row %d has %d params, want %d", i, len(row), dim)
		}
	}
	return dim, nil
}

// centerAt returns the fallback value for a coordinate with no finite
// contributions: the center's value when finite, else 0.
func centerAt(center []float64, i int) float64 {
	if i < len(center) {
		if v := center[i]; !math.IsNaN(v) && !math.IsInf(v, 0) {
			return v
		}
	}
	return 0
}

// finiteOr saturates the last-resort overflow cases so no rule ever emits a
// non-finite aggregate. Mean and ClippedMean accumulate sum-then-divide (the
// same operation order a streaming fold performs, so batch and stream stay
// bit-identical); a sum of finite terms can overflow to ±Inf, which the
// divide preserves and this clamp turns into ±MaxFloat64. NaN cannot arise
// from the accumulation itself — a saturated partial sum keeps its sign, so
// Inf−Inf never happens — but a non-finite center coordinate can inject one
// through ClippedMean's delta; it falls back.
func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		return -math.MaxFloat64
	}
	if math.IsNaN(v) {
		return fallback
	}
	return v
}

// scratchPool recycles the per-block column scratch Median and TrimmedMean
// sort in, so steady-state rounds stop allocating one slice per block per
// aggregation.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

func getScratch(capHint int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < capHint {
		*p = make([]float64, 0, capHint)
	}
	return p
}

func putScratch(p *[]float64) {
	*p = (*p)[:0]
	scratchPool.Put(p)
}

// parallelCoords splits [0, dim) into contiguous blocks and runs fn on
// them across workers. Coordinates are independent under every rule here,
// so any worker count produces bit-identical output.
func parallelCoords(dim, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const minBlock = 1024
	if workers > dim/minBlock {
		workers = dim / minBlock
	}
	if workers < 2 {
		fn(0, dim)
		return
	}
	var wg sync.WaitGroup
	block := (dim + workers - 1) / workers
	for lo := 0; lo < dim; lo += block {
		hi := lo + block
		if hi > dim {
			hi = dim
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Mean is the unweighted arithmetic mean with non-finite inputs skipped
// per coordinate. It exists as the robust interface's baseline (trim
// fraction 0 of TrimmedMean reduces to it) and for the overhead
// benchmarks; the engine's default weighted FedAvg path stays in
// fl.Aggregate.
type Mean struct {
	// Workers bounds the coordinate-parallel fan-out (0 = GOMAXPROCS).
	Workers int
}

// Name implements Aggregator.
func (Mean) Name() string { return "mean" }

// Contributors implements Aggregator.
func (Mean) Contributors(n int) int { return n }

// Aggregate implements Aggregator.
func (m Mean) Aggregate(center []float64, params [][]float64, _ []float64) ([]float64, Report, error) {
	dim, err := checkShape(params)
	if err != nil {
		return nil, Report{}, err
	}
	out := make([]float64, dim)
	var maxSkipped atomicMax
	parallelCoords(dim, m.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Sum-then-divide in row order: the exact operation sequence
			// MeanStream performs, so the batch and streaming paths are
			// bit-identical. Overflow saturates and finiteOr clamps it.
			n := 0
			var sum float64
			for _, row := range params {
				v := row[i]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				sum += v
				n++
			}
			if n == 0 {
				out[i] = centerAt(center, i)
				continue
			}
			out[i] = finiteOr(sum/float64(n), centerAt(center, i))
		}
		skippedInBlock(params, lo, hi, &maxSkipped)
	})
	return out, Report{Trimmed: maxSkipped.get(), Contributors: len(params)}, nil
}

// Median is the coordinate-wise median: per coordinate, the middle order
// statistic (mean of the two middles for even n). Any minority of
// arbitrary values per coordinate moves the output at most to an honest
// client's value — breakdown point ⌈n/2⌉.
type Median struct {
	// Workers bounds the coordinate-parallel fan-out (0 = GOMAXPROCS).
	Workers int
}

// Name implements Aggregator.
func (Median) Name() string { return "median" }

// Contributors implements Aggregator. The median discards no fixed tail —
// every input participates in the per-coordinate selection — so the
// contributor count is n.
func (Median) Contributors(n int) int { return n }

// Aggregate implements Aggregator.
func (m Median) Aggregate(center []float64, params [][]float64, _ []float64) ([]float64, Report, error) {
	dim, err := checkShape(params)
	if err != nil {
		return nil, Report{}, err
	}
	out := make([]float64, dim)
	var maxSkipped atomicMax
	parallelCoords(dim, m.Workers, func(lo, hi int) {
		sp := getScratch(len(params))
		scratch := *sp
		for i := lo; i < hi; i++ {
			scratch = gatherFinite(scratch[:0], params, i)
			if len(scratch) == 0 {
				out[i] = centerAt(center, i)
				continue
			}
			sort.Float64s(scratch)
			mid := len(scratch) / 2
			if len(scratch)%2 == 1 {
				out[i] = scratch[mid]
			} else {
				// Halve before adding: (a+b) can overflow when both middles
				// sit near ±MaxFloat64; a/2+b/2 cannot.
				out[i] = scratch[mid-1]/2 + scratch[mid]/2
			}
		}
		*sp = scratch
		putScratch(sp)
		skippedInBlock(params, lo, hi, &maxSkipped)
	})
	return out, Report{Trimmed: maxSkipped.get(), Contributors: len(params)}, nil
}

// TrimmedMean is the coordinate-wise f-trimmed mean: per coordinate, sort
// the n values, drop the ⌊f·n⌋ largest and ⌊f·n⌋ smallest, and average
// the rest. With trim fraction f it tolerates up to ⌊f·n⌋ Byzantine
// clients per coordinate; f = 0 reduces exactly to Mean.
type TrimmedMean struct {
	// Frac is the fraction trimmed from EACH tail, clamped to [0, 0.5).
	Frac float64
	// Workers bounds the coordinate-parallel fan-out (0 = GOMAXPROCS).
	Workers int
}

// Name implements Aggregator.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed(%g)", t.frac()) }

func (t TrimmedMean) frac() float64 {
	f := t.Frac
	if f < 0 {
		return 0
	}
	if f >= 0.5 {
		return 0.4999
	}
	return f
}

// trim returns how many values are dropped from each tail at n inputs.
func (t TrimmedMean) trim(n int) int {
	k := int(t.frac() * float64(n))
	if 2*k >= n && n > 0 {
		k = (n - 1) / 2
	}
	return k
}

// Contributors implements Aggregator: n minus both trimmed tails.
func (t TrimmedMean) Contributors(n int) int { return n - 2*t.trim(n) }

// Aggregate implements Aggregator.
func (t TrimmedMean) Aggregate(center []float64, params [][]float64, _ []float64) ([]float64, Report, error) {
	dim, err := checkShape(params)
	if err != nil {
		return nil, Report{}, err
	}
	k := t.trim(len(params))
	out := make([]float64, dim)
	var maxSkipped atomicMax
	parallelCoords(dim, t.Workers, func(lo, hi int) {
		sp := getScratch(len(params))
		scratch := *sp
		for i := lo; i < hi; i++ {
			scratch = gatherFinite(scratch[:0], params, i)
			if len(scratch) == 0 {
				out[i] = centerAt(center, i)
				continue
			}
			sort.Float64s(scratch)
			kk := k
			if 2*kk >= len(scratch) {
				kk = (len(scratch) - 1) / 2
			}
			kept := scratch[kk : len(scratch)-kk]
			var sum float64
			for _, v := range kept {
				sum += v / float64(len(kept))
			}
			out[i] = finiteOr(sum, centerAt(center, i))
		}
		*sp = scratch
		putScratch(sp)
		skippedInBlock(params, lo, hi, &maxSkipped)
	})
	rep := Report{Trimmed: 2*k + maxSkipped.get(), Contributors: t.Contributors(len(params))}
	return out, rep, nil
}

// ClippedMean is the norm-clipped mean: each update's delta from the
// center is scaled down to at most MaxNorm in L2, then the clipped deltas
// are averaged onto the center. No single client can pull the aggregate
// more than MaxNorm/n from the center, whatever it sends.
type ClippedMean struct {
	// MaxNorm is the per-update delta bound; values ≤ 0 disable clipping
	// (the rule degrades to the unweighted mean of center+delta).
	MaxNorm float64
	// Workers bounds the coordinate-parallel fan-out (0 = GOMAXPROCS).
	Workers int
}

// Name implements Aggregator.
func (c ClippedMean) Name() string { return fmt.Sprintf("clipped(%g)", c.MaxNorm) }

// Contributors implements Aggregator.
func (ClippedMean) Contributors(n int) int { return n }

// Aggregate implements Aggregator.
func (c ClippedMean) Aggregate(center []float64, params [][]float64, _ []float64) ([]float64, Report, error) {
	dim, err := checkShape(params)
	if err != nil {
		return nil, Report{}, err
	}
	if len(center) != dim {
		return nil, Report{}, fmt.Errorf("robust: clipped mean needs a %d-param center, have %d", dim, len(center))
	}
	// Per-row clip factors from the delta norms (serial: O(n) rows, each a
	// simple reduction; the coordinate pass below carries the real work).
	scale := make([]float64, len(params))
	finite := make([]bool, len(params))
	clipped := 0
	for r, row := range params {
		var ss float64
		ok := true
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
			d := v - center[i]
			ss += d * d
		}
		finite[r] = ok
		scale[r] = 1
		if !ok {
			continue
		}
		if n := math.Sqrt(ss); c.MaxNorm > 0 && n > c.MaxNorm {
			scale[r] = c.MaxNorm / n
			clipped++
		}
	}
	nFinite := 0
	for _, ok := range finite {
		if ok {
			nFinite++
		}
	}
	out := make([]float64, dim)
	parallelCoords(dim, c.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if nFinite == 0 {
				out[i] = centerAt(center, i)
				continue
			}
			var sum float64
			for r, row := range params {
				// scale 0 marks a row whose delta norm overflowed to +Inf
				// (so MaxNorm/norm == 0): its clipped contribution is
				// exactly zero, and skipping it avoids the Inf·0 = NaN the
				// multiplication would produce on its overflowing
				// coordinates.
				if !finite[r] || scale[r] == 0 {
					continue
				}
				// Sum-then-divide, matching ClippedStream's fold order for
				// batch/stream bit-identity (the scale factors are per-row,
				// so the per-coordinate add sequence is the same).
				sum += (row[i] - center[i]) * scale[r]
			}
			out[i] = finiteOr(center[i]+sum/float64(nFinite), centerAt(center, i))
		}
	})
	rep := Report{Trimmed: len(params) - nFinite, Clipped: clipped, Contributors: len(params)}
	return out, rep, nil
}

// gatherFinite appends the finite values of column i to dst.
func gatherFinite(dst []float64, params [][]float64, i int) []float64 {
	for _, row := range params {
		v := row[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// skippedInBlock records into m the worst per-coordinate count of
// non-finite (skipped) contributions over [lo, hi).
func skippedInBlock(params [][]float64, lo, hi int, m *atomicMax) {
	worst := 0
	for i := lo; i < hi; i++ {
		n := 0
		for _, row := range params {
			v := row[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				n++
			}
		}
		if n > worst {
			worst = n
		}
	}
	m.max(worst)
}

// atomicMax is a mutex-guarded running maximum (blocks race on it).
type atomicMax struct {
	mu sync.Mutex
	v  int
}

func (m *atomicMax) max(v int) {
	m.mu.Lock()
	if v > m.v {
		m.v = v
	}
	m.mu.Unlock()
}

func (m *atomicMax) get() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}

// Distances returns each row's L2 distance from agg — the per-round
// deviation signal the reputation tracker scores. Non-finite coordinates
// contribute the row's worst case (+Inf), so a poisoned update that
// somehow reaches this point scores maximally anomalous.
func Distances(agg []float64, params [][]float64) []float64 {
	out := make([]float64, len(params))
	for r, row := range params {
		var ss float64
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ss = math.Inf(1)
				break
			}
			d := v - agg[i]
			ss += d * d
		}
		out[r] = math.Sqrt(ss)
	}
	return out
}

// New builds an aggregator by flag name: "mean", "median", "trimmed"
// (with trimFrac per tail), or "clipped" (with maxNorm). The empty string
// and "fedavg" return nil, selecting the engine's legacy sample-weighted
// FedAvg path.
func New(name string, trimFrac, maxNorm float64) (Aggregator, error) {
	switch name {
	case "", "fedavg":
		return nil, nil
	case "mean":
		return Mean{}, nil
	case "median":
		return Median{}, nil
	case "trimmed":
		if trimFrac <= 0 || trimFrac >= 0.5 {
			return nil, fmt.Errorf("robust: trimmed mean needs a trim fraction in (0, 0.5), have %g", trimFrac)
		}
		return TrimmedMean{Frac: trimFrac}, nil
	case "clipped":
		if maxNorm <= 0 {
			return nil, fmt.Errorf("robust: clipped mean needs a positive norm bound, have %g", maxNorm)
		}
		return ClippedMean{MaxNorm: maxNorm}, nil
	default:
		return nil, fmt.Errorf("robust: unknown aggregator %q (want mean, median, trimmed, or clipped)", name)
	}
}
