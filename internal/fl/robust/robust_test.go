package robust

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, dim int) [][]float64 {
	m := make([][]float64, rows)
	for r := range m {
		m[r] = make([]float64, dim)
		for i := range m[r] {
			m[r][i] = rng.NormFloat64() * 10
		}
	}
	return m
}

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func aggregators() []Aggregator {
	return []Aggregator{
		Mean{},
		Median{},
		TrimmedMean{Frac: 0.25},
		ClippedMean{MaxNorm: 5},
	}
}

// Property: every rule is permutation-invariant — shuffling the client rows
// must not change the aggregate. The selection rules (median, trimmed mean)
// sort per coordinate, so they owe bit-identical output; the summing rules
// (mean, clipped mean) reassociate the addition under permutation and owe
// equality only up to last-ulp rounding.
func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, agg := range aggregators() {
		bitExact := false
		switch agg.(type) {
		case Median, TrimmedMean:
			bitExact = true
		}
		t.Run(agg.Name(), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rows := 3 + rng.Intn(10)
				dim := 1 + rng.Intn(40)
				center := randVec(rng, dim)
				params := randMatrix(rng, rows, dim)
				base, _, err := agg.Aggregate(center, params, nil)
				if err != nil {
					t.Fatalf("aggregate: %v", err)
				}
				perm := append([][]float64(nil), params...)
				rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
				got, _, err := agg.Aggregate(center, perm, nil)
				if err != nil {
					t.Fatalf("permuted aggregate: %v", err)
				}
				for i := range base {
					if bitExact && base[i] != got[i] {
						t.Fatalf("trial %d: coordinate %d changed under permutation: %v vs %v",
							trial, i, base[i], got[i])
					}
					if !bitExact && math.Abs(base[i]-got[i]) > 1e-9*(1+math.Abs(base[i])) {
						t.Fatalf("trial %d: coordinate %d moved beyond rounding under permutation: %v vs %v",
							trial, i, base[i], got[i])
					}
				}
			}
		})
	}
}

// Property: a trim fraction of 0 reduces the trimmed mean to the unweighted
// mean (up to last-ulp rounding: trimmed sums in sorted order, mean in row
// order).
func TestTrimZeroReducesToMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		rows := 2 + rng.Intn(12)
		dim := 1 + rng.Intn(50)
		center := randVec(rng, dim)
		params := randMatrix(rng, rows, dim)
		want, _, err := Mean{}.Aggregate(center, params, nil)
		if err != nil {
			t.Fatalf("mean: %v", err)
		}
		got, rep, err := TrimmedMean{Frac: 0}.Aggregate(center, params, nil)
		if err != nil {
			t.Fatalf("trimmed(0): %v", err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: trimmed(0) != mean at coordinate %d: %v vs %v",
					trial, i, want[i], got[i])
			}
		}
		if rep.Trimmed != 0 || rep.Contributors != rows {
			t.Fatalf("trimmed(0) report = %+v, want 0 trimmed, %d contributors", rep, rows)
		}
	}
}

// Determinism contract: every rule is bit-identical at any worker count.
func TestWorkerCountDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 5000 // large enough that parallelCoords actually splits
	center := randVec(rng, dim)
	params := randMatrix(rng, 9, dim)
	params[2][17] = math.NaN() // exercise the skip path too
	params[5][4000] = math.Inf(1)
	build := func(workers int) []Aggregator {
		return []Aggregator{
			Mean{Workers: workers},
			Median{Workers: workers},
			TrimmedMean{Frac: 0.2, Workers: workers},
			ClippedMean{MaxNorm: 3, Workers: workers},
		}
	}
	base := build(1)
	for _, workers := range []int{2, 3, 8, 64} {
		for k, agg := range build(workers) {
			want, wantRep, err := base[k].Aggregate(center, params, nil)
			if err != nil {
				t.Fatalf("%s serial: %v", agg.Name(), err)
			}
			got, gotRep, err := agg.Aggregate(center, params, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", agg.Name(), workers, err)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%s: workers=%d differs at coordinate %d: %v vs %v",
						agg.Name(), workers, i, want[i], got[i])
				}
			}
			if wantRep != gotRep {
				t.Fatalf("%s: workers=%d report %+v, serial %+v", agg.Name(), workers, gotRep, wantRep)
			}
		}
	}
}

// A minority of arbitrarily poisoned rows must not move the median beyond
// the honest value range, while the plain mean is dragged out of it.
func TestMedianBreakdownResistance(t *testing.T) {
	honest := [][]float64{{1, 2}, {1.1, 2.1}, {0.9, 1.9}, {1.05, 2.05}, {0.95, 1.95}}
	poisoned := append(append([][]float64{}, honest...), []float64{1e12, -1e12}, []float64{1e12, -1e12})
	med, _, err := Median{}.Aggregate(nil, poisoned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if med[0] < 0.9 || med[0] > 1.1 || med[1] < 1.9 || med[1] > 2.1 {
		t.Fatalf("median %v left the honest range under 2/7 poisoning", med)
	}
	mean, _, err := Mean{}.Aggregate(nil, poisoned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] < 1e10 {
		t.Fatalf("sanity: plain mean %v should have been dragged by the poison", mean)
	}
	tm, _, err := TrimmedMean{Frac: 0.3}.Aggregate(nil, poisoned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tm[0] < 0.9 || tm[0] > 1.1 {
		t.Fatalf("trimmed mean %v left the honest range under 2/7 poisoning", tm)
	}
}

// The clipped mean bounds every client's pull at MaxNorm/n from the center.
func TestClippedMeanBound(t *testing.T) {
	center := []float64{0, 0, 0}
	params := [][]float64{
		{0.1, 0.1, 0.1},
		{-0.1, 0.05, 0},
		{1e9, 1e9, 1e9}, // attacker under no norm validation
	}
	maxNorm := 1.0
	out, rep, err := ClippedMean{MaxNorm: maxNorm}.Aggregate(center, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ss float64
	for i, v := range out {
		d := v - center[i]
		ss += d * d
	}
	if dist := math.Sqrt(ss); dist > maxNorm {
		t.Fatalf("clipped aggregate moved %.3g from center, bound is %g", dist, maxNorm)
	}
	if rep.Clipped != 1 {
		t.Fatalf("report.Clipped = %d, want 1", rep.Clipped)
	}
}

// Non-finite inputs are skipped per coordinate; the aggregate itself must
// stay finite, falling back to the center when a coordinate has no finite
// contribution at all.
func TestNonFiniteHandling(t *testing.T) {
	center := []float64{5, 6, 7}
	params := [][]float64{
		{math.NaN(), 1, math.Inf(1)},
		{math.NaN(), 2, math.Inf(-1)},
	}
	for _, agg := range aggregators() {
		out, _, err := agg.Aggregate(center, params, nil)
		if err != nil {
			t.Fatalf("%s: %v", agg.Name(), err)
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite output %v at coordinate %d", agg.Name(), v, i)
			}
		}
		if _, isClipped := agg.(ClippedMean); !isClipped {
			if out[0] != 5 {
				t.Fatalf("%s: coordinate 0 should fall back to center 5, got %v", agg.Name(), out[0])
			}
			if out[1] != 1.5 {
				t.Fatalf("%s: coordinate 1 should average to 1.5, got %v", agg.Name(), out[1])
			}
		}
	}
}

func TestShapeAndEmptyErrors(t *testing.T) {
	for _, agg := range aggregators() {
		if _, _, err := agg.Aggregate(nil, nil, nil); err == nil {
			t.Fatalf("%s: no error on zero updates", agg.Name())
		}
		if _, _, err := agg.Aggregate([]float64{0, 0}, [][]float64{{1, 2}, {3}}, nil); err == nil {
			t.Fatalf("%s: no error on ragged rows", agg.Name())
		}
	}
}

func TestTrimmedContributors(t *testing.T) {
	tm := TrimmedMean{Frac: 0.25}
	if got := tm.Contributors(12); got != 6 {
		t.Fatalf("trimmed(0.25).Contributors(12) = %d, want 6", got)
	}
	if got := tm.Contributors(3); got != 3 {
		t.Fatalf("trimmed(0.25).Contributors(3) = %d, want 3 (⌊0.25·3⌋ = 0)", got)
	}
	// Degenerate inputs never trim everything away.
	aggressive := TrimmedMean{Frac: 0.49}
	if got := aggressive.Contributors(2); got < 1 {
		t.Fatalf("trimmed(0.49).Contributors(2) = %d, want ≥ 1", got)
	}
}

func TestDistances(t *testing.T) {
	agg := []float64{0, 0}
	d := Distances(agg, [][]float64{{3, 4}, {0, 0}, {math.NaN(), 1}})
	if d[0] != 5 || d[1] != 0 {
		t.Fatalf("distances = %v, want [5 0 +Inf]", d)
	}
	if !math.IsInf(d[2], 1) {
		t.Fatalf("poisoned row distance = %v, want +Inf", d[2])
	}
}

func TestFactory(t *testing.T) {
	if a, err := New("", 0, 0); err != nil || a != nil {
		t.Fatalf("New(\"\") = %v, %v; want nil aggregator (legacy FedAvg)", a, err)
	}
	if a, err := New("fedavg", 0, 0); err != nil || a != nil {
		t.Fatalf("New(fedavg) = %v, %v; want nil aggregator", a, err)
	}
	for _, name := range []string{"mean", "median"} {
		a, err := New(name, 0, 0)
		if err != nil || a == nil {
			t.Fatalf("New(%s) = %v, %v", name, a, err)
		}
	}
	if a, err := New("trimmed", 0.2, 0); err != nil || a.Name() != "trimmed(0.2)" {
		t.Fatalf("New(trimmed, 0.2) = %v, %v", a, err)
	}
	if _, err := New("trimmed", 0, 0); err == nil {
		t.Fatal("New(trimmed, 0) should reject a zero trim fraction")
	}
	if _, err := New("trimmed", 0.5, 0); err == nil {
		t.Fatal("New(trimmed, 0.5) should reject f ≥ 0.5")
	}
	if a, err := New("clipped", 0, 2.5); err != nil || a.Name() != "clipped(2.5)" {
		t.Fatalf("New(clipped, 2.5) = %v, %v", a, err)
	}
	if _, err := New("clipped", 0, 0); err == nil {
		t.Fatal("New(clipped, 0) should reject a zero norm bound")
	}
	if _, err := New("krum", 0, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown aggregator") {
		t.Fatalf("New(krum) error = %v, want unknown-aggregator", err)
	}
}
