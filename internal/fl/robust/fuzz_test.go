package robust

import (
	"math"
	"testing"
)

// FuzzRobustAggregate drives every robust rule with adversarial update
// matrices — random shapes, NaN/Inf poisoning, extreme scalings — and
// requires that no rule ever panics or emits a non-finite aggregate. The
// fuzzer decodes its raw bytes into a params matrix: the first bytes pick
// the shape, the rest fill coordinates through a small value codec that
// deliberately over-samples NaN, ±Inf, and huge magnitudes.
func FuzzRobustAggregate(f *testing.F) {
	f.Add([]byte{3, 4, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{1, 1, 255})
	f.Add([]byte{8, 2, 250, 251, 252, 253, 254, 255, 0, 0, 9, 9, 9, 9, 9, 9, 1, 1})
	f.Add([]byte{12, 3, 128, 64, 32, 16, 8, 4, 2, 1, 250, 250, 250, 250})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		rows := int(data[0])%16 + 1
		dim := int(data[1])%64 + 1
		data = data[2:]
		decode := func(b byte) float64 {
			switch {
			case b >= 250:
				return [6]float64{math.NaN(), math.Inf(1), math.Inf(-1),
					math.MaxFloat64, -math.MaxFloat64, 1e308}[b-250]
			case b >= 200:
				return math.Pow(10, float64(b-225)) // 1e-25 .. 1e24
			default:
				return float64(b) - 100
			}
		}
		params := make([][]float64, rows)
		pos := 0
		for r := range params {
			params[r] = make([]float64, dim)
			for i := range params[r] {
				var b byte
				if len(data) > 0 {
					b = data[pos%len(data)]
					pos++
				}
				params[r][i] = decode(b)
			}
		}
		center := make([]float64, dim)
		for i := range center {
			center[i] = decode(byte(i))
		}
		weights := make([]float64, rows)
		for i := range weights {
			weights[i] = float64(i + 1)
		}
		for _, agg := range []Aggregator{
			Mean{}, Median{},
			TrimmedMean{Frac: 0.1}, TrimmedMean{Frac: 0.49},
			ClippedMean{MaxNorm: 1}, ClippedMean{MaxNorm: 1e300},
		} {
			out, rep, err := agg.Aggregate(center, params, weights)
			if err != nil {
				t.Fatalf("%s: unexpected error on well-shaped input: %v", agg.Name(), err)
			}
			if len(out) != dim {
				t.Fatalf("%s: output dim %d, want %d", agg.Name(), len(out), dim)
			}
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: non-finite aggregate %v at coordinate %d", agg.Name(), v, i)
				}
			}
			if rep.Contributors < 1 || rep.Contributors > rows {
				t.Fatalf("%s: contributors %d out of range [1, %d]", agg.Name(), rep.Contributors, rows)
			}
			if rep.Trimmed < 0 || rep.Clipped < 0 {
				t.Fatalf("%s: negative report %+v", agg.Name(), rep)
			}
		}
		// The deviation signal downstream of aggregation must stay
		// well-defined too: NaN distances would corrupt reputation EWMAs.
		out, _, _ := Median{}.Aggregate(center, params, weights)
		for r, d := range Distances(out, params) {
			if math.IsNaN(d) {
				t.Fatalf("NaN distance for row %d", r)
			}
		}
	})
}
