package robust

import (
	"fmt"
	"math"
)

// Mergeable row sketch. The robust rules (Median, TrimmedMean) need the
// full per-coordinate column of client rows, which is exactly what a
// hierarchical tree cannot ship: a leaf forwards one weighted Partial, not
// its updates. A Sketch bridges the two: it is a bottom-K row reservoir —
// each client row is tagged with a priority key that is a pure function of
// the client ID, and the sketch keeps the K rows with the smallest keys.
// Because the key function is a bijection (a SplitMix64 finalizer), and the
// kept set is "the K smallest keys of the union", merging is associative,
// commutative, and independent of tree shape: any tree over the same client
// set yields byte-identical retained rows at the root.
//
// Exactness and error bound. When the total row count is ≤ K the sketch
// retains every row, and a robust rule evaluated over the retained rows is
// bit-identical to flat aggregation (the rules sort each coordinate's
// column, so row order is immaterial). When the total exceeds K, the
// retained rows are a uniform random K-subsample of the population (the
// keys are a fixed hash of client identity, independent of the row
// values), so by Dvoretzky–Kiefer–Wolfowitz every empirical quantile of
// the subsample is within rank error
//
//	ε = sqrt(ln(2/δ) / (2K))
//
// of the population quantile with probability ≥ 1−δ, per coordinate. The
// sketch median therefore lands between the population's (½−ε)- and
// (½+ε)-quantiles; SampleRankError exposes ε for the bench gate that
// enforces this bound against flat robust aggregation.
type Sketch struct {
	// Cap is K, the maximum number of retained rows.
	Cap int
	// Rows is the total number of rows represented (added directly or via
	// merged sketches); Rows > len(Keys) means the sketch is subsampling.
	Rows int
	// Keys holds the retained rows' priority keys, sorted ascending.
	Keys []uint64
	// Vals holds the retained rows, parallel to Keys.
	Vals [][]float64
}

// NewSketch returns an empty sketch retaining at most capRows rows.
func NewSketch(capRows int) *Sketch {
	if capRows < 1 {
		capRows = 1
	}
	return &Sketch{Cap: capRows}
}

// splitmix64 is the SplitMix64 finalizer — a bijection on uint64, so
// distinct inputs can never collide and the bottom-K order is total.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// KeyClient is the priority key of client id's row. Client and leaf keys
// live in disjoint domains (even/odd pre-images) so a leaf that falls back
// to an implied-mean row can never tie with a real client row.
func KeyClient(id int) uint64 { return splitmix64(2 * uint64(id)) }

// KeyLeaf is the priority key of leaf id's implied-mean fallback row (used
// when a v1 leaf forwards a plain partial with no sketch).
func KeyLeaf(id int) uint64 { return splitmix64(2*uint64(id) + 1) }

// SampleRankError is the DKW rank-error bound ε for a K-row sketch at
// confidence 1−δ: every per-coordinate quantile of the retained rows is
// within ε of the population quantile with probability ≥ 1−δ.
func SampleRankError(capRows int, delta float64) float64 {
	if capRows < 1 || delta <= 0 || delta >= 1 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(capRows)))
}

// Dim returns the retained rows' parameter dimension (0 when empty).
func (s *Sketch) Dim() int {
	if len(s.Vals) == 0 {
		return 0
	}
	return len(s.Vals[0])
}

// Exact reports whether the sketch still holds every represented row.
func (s *Sketch) Exact() bool { return s.Rows == len(s.Keys) }

// Add inserts one row under the given priority key, copying it. Rows with
// equal keys are kept in insertion order (honest trees never produce ties —
// the key function is a bijection over distinct IDs).
func (s *Sketch) Add(key uint64, row []float64) {
	s.Rows++
	if len(s.Keys) == s.Cap && key >= s.Keys[len(s.Keys)-1] {
		return // would be evicted immediately
	}
	// Binary search for the first index with Keys[i] > key (stable).
	lo, hi := 0, len(s.Keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cp := append([]float64(nil), row...)
	s.Keys = append(s.Keys, 0)
	copy(s.Keys[lo+1:], s.Keys[lo:])
	s.Keys[lo] = key
	s.Vals = append(s.Vals, nil)
	copy(s.Vals[lo+1:], s.Vals[lo:])
	s.Vals[lo] = cp
	if len(s.Keys) > s.Cap {
		s.Keys = s.Keys[:s.Cap]
		s.Vals[len(s.Vals)-1] = nil
		s.Vals = s.Vals[:s.Cap]
	}
}

// Merge folds other into s: the union's Cap-smallest keys survive, and the
// represented row counts add. Merge order cannot change the outcome for
// honest inputs (distinct keys); on ties s's rows win. other is not
// modified, but s may alias its retained rows afterwards.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || len(other.Keys) == 0 {
		if other != nil {
			s.Rows += other.Rows
		}
		return nil
	}
	if d, od := s.Dim(), other.Dim(); d != 0 && od != d {
		return fmt.Errorf("robust: sketch merge dimension mismatch: %d vs %d", d, od)
	}
	keys := make([]uint64, 0, min(len(s.Keys)+len(other.Keys), s.Cap))
	vals := make([][]float64, 0, cap(keys))
	i, j := 0, 0
	for len(keys) < s.Cap && (i < len(s.Keys) || j < len(other.Keys)) {
		takeOther := i >= len(s.Keys) ||
			(j < len(other.Keys) && other.Keys[j] < s.Keys[i])
		if takeOther {
			keys = append(keys, other.Keys[j])
			vals = append(vals, other.Vals[j])
			j++
		} else {
			keys = append(keys, s.Keys[i])
			vals = append(vals, s.Vals[i])
			i++
		}
	}
	s.Keys, s.Vals = keys, vals
	s.Rows += other.Rows
	return nil
}

// RowsView returns the retained rows in ascending key order — the
// deterministic row matrix a robust rule aggregates at the tree root. The
// rows alias the sketch's storage; do not mutate them.
func (s *Sketch) RowsView() [][]float64 { return s.Vals }

// Validate checks a sketch decoded from the wire: a sane cap, parallel
// sorted keys, a represented-row count consistent with the retained set,
// and finite rows of the expected dimension. Value bounds (the implied-mean
// norm check) stay with fl.ValidatePartial.
func (s *Sketch) Validate(wantDim int) error {
	if s.Cap < 1 {
		return fmt.Errorf("robust: sketch cap %d", s.Cap)
	}
	if len(s.Keys) != len(s.Vals) {
		return fmt.Errorf("robust: sketch has %d keys but %d rows", len(s.Keys), len(s.Vals))
	}
	if len(s.Keys) > s.Cap {
		return fmt.Errorf("robust: sketch retains %d rows over cap %d", len(s.Keys), s.Cap)
	}
	if s.Rows < len(s.Keys) {
		return fmt.Errorf("robust: sketch claims %d total rows but retains %d", s.Rows, len(s.Keys))
	}
	for i, k := range s.Keys {
		if i > 0 && k < s.Keys[i-1] {
			return fmt.Errorf("robust: sketch keys unsorted at %d", i)
		}
		row := s.Vals[i]
		if len(row) != wantDim {
			return fmt.Errorf("robust: sketch row %d has %d params, want %d", i, len(row), wantDim)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("robust: sketch row %d has non-finite param %d", i, j)
			}
		}
	}
	return nil
}
