package robust

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func sketchRows(n, dim int, rng *rand.Rand) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

// Adding rows in any order, through any tree of merges, must retain the
// same rows in the same order: the kept set is "the K smallest keys of the
// union", which is shape- and order-independent.
func TestSketchMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, dim, capRows = 40, 5, 16
	rows := sketchRows(n, dim, rng)

	flat := NewSketch(capRows)
	for i, r := range rows {
		flat.Add(KeyClient(i), r)
	}

	// A lopsided two-level tree, added in reverse order.
	left, right := NewSketch(capRows), NewSketch(capRows)
	for i := n - 1; i >= 0; i-- {
		dst := left
		if i%3 == 0 {
			dst = right
		}
		dst.Add(KeyClient(i), rows[i])
	}
	merged := NewSketch(capRows)
	if err := merged.Merge(right); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(left); err != nil {
		t.Fatal(err)
	}

	if merged.Rows != flat.Rows || merged.Rows != n {
		t.Fatalf("rows: merged %d flat %d want %d", merged.Rows, flat.Rows, n)
	}
	if len(merged.Keys) != len(flat.Keys) {
		t.Fatalf("retained: merged %d flat %d", len(merged.Keys), len(flat.Keys))
	}
	for i := range merged.Keys {
		if merged.Keys[i] != flat.Keys[i] {
			t.Fatalf("key %d: merged %d flat %d", i, merged.Keys[i], flat.Keys[i])
		}
		for j := range merged.Vals[i] {
			if merged.Vals[i][j] != flat.Vals[i][j] {
				t.Fatalf("row %d differs between merge orders", i)
			}
		}
	}
}

// Below the cap the sketch holds every row, so Median and TrimmedMean over
// the retained rows are bit-identical to flat aggregation — the rules sort
// each coordinate's column, so row order is immaterial.
func TestSketchExactBelowCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim = 24, 7
	rows := sketchRows(n, dim, rng)
	center := make([]float64, dim)

	sk := NewSketch(64)
	for i, r := range rows {
		sk.Add(KeyClient(i), r)
	}
	if !sk.Exact() {
		t.Fatalf("sketch with %d rows under cap 64 is not exact", n)
	}
	for _, rule := range []Aggregator{Median{}, TrimmedMean{Frac: 0.2}, ClippedMean{MaxNorm: 1}} {
		flat, _, err := rule.Aggregate(center, rows, nil)
		if err != nil {
			t.Fatal(err)
		}
		tree, _, err := rule.Aggregate(center, sk.RowsView(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// The sort-based rules see the same per-coordinate multiset, so they
		// are bit-identical; ClippedMean sums in row order, and the sketch's
		// key order differs from roster order, so it is only reassociated.
		_, sums := rule.(ClippedMean)
		for i := range flat {
			if flat[i] == tree[i] {
				continue
			}
			if sums && math.Abs(flat[i]-tree[i]) <= 1e-12*(1+math.Abs(flat[i])) {
				continue
			}
			t.Fatalf("%s: coord %d: flat %v tree %v (want identical below cap)",
				rule.Name(), i, flat[i], tree[i])
		}
	}
}

// Above the cap the retained rows are a uniform subsample; the sketch
// median must land inside the DKW quantile envelope of the population.
func TestSketchSampledWithinRankBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, dim, capRows = 4000, 3, 256
	rows := sketchRows(n, dim, rng)
	center := make([]float64, dim)

	sk := NewSketch(capRows)
	for i, r := range rows {
		sk.Add(KeyClient(i), r)
	}
	if sk.Exact() || len(sk.Keys) != capRows {
		t.Fatalf("expected a saturated sketch: rows %d retained %d", sk.Rows, len(sk.Keys))
	}
	eps := SampleRankError(capRows, 0.01)
	med, _, err := Median{}.Aggregate(center, sk.RowsView(), nil)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float64, n)
	for j := 0; j < dim; j++ {
		for i, r := range rows {
			col[i] = r[j]
		}
		sort.Float64s(col)
		lo := col[int(math.Max(0, (0.5-eps)*float64(n-1)))]
		hi := col[int(math.Min(float64(n-1), math.Ceil((0.5+eps)*float64(n-1))))]
		if med[j] < lo || med[j] > hi {
			t.Fatalf("coord %d: sketch median %v outside [%v, %v] (ε=%.4f)", j, med[j], lo, hi, eps)
		}
	}
}

func TestSketchValidate(t *testing.T) {
	ok := NewSketch(4)
	ok.Add(KeyClient(1), []float64{1, 2})
	ok.Add(KeyClient(2), []float64{3, 4})
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid sketch rejected: %v", err)
	}
	if err := ok.Validate(3); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	bad := &Sketch{Cap: 2, Rows: 1, Keys: []uint64{5, 1}, Vals: [][]float64{{1}, {2}}}
	if err := bad.Validate(1); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	bad2 := &Sketch{Cap: 2, Rows: 2, Keys: []uint64{1, 5}, Vals: [][]float64{{1}, {math.NaN()}}}
	if err := bad2.Validate(1); err == nil {
		t.Fatal("non-finite row accepted")
	}
	bad3 := &Sketch{Cap: 2, Rows: 1, Keys: []uint64{1, 5}, Vals: [][]float64{{1}, {2}}}
	if err := bad3.Validate(1); err == nil {
		t.Fatal("rows < retained accepted")
	}
}

// Client and leaf key domains are disjoint, so a v1 leaf's implied-mean
// fallback row can never tie with (or displace deterministically) a real
// client row of the same numeric ID.
func TestSketchKeyDomains(t *testing.T) {
	seen := map[uint64]bool{}
	for id := 0; id < 1000; id++ {
		for _, k := range []uint64{KeyClient(id), KeyLeaf(id)} {
			if seen[k] {
				t.Fatalf("key collision at id %d", id)
			}
			seen[k] = true
		}
	}
}
