package robust

import (
	"fmt"
	"math"
)

// Streaming counterparts of the rules whose algebra permits them. Mean and
// ClippedMean reduce each coordinate with commutative-group accumulators
// (sums and counts), so they can fold rows one at a time and hold O(dim)
// state; their batch Aggregate methods were restructured to sum-then-divide
// so that folding rows in roster order reproduces the batch result
// BIT-IDENTICALLY (same per-coordinate add sequence, same single divide).
// Median and TrimmedMean are order statistics — they need the full
// per-coordinate column — so they deliberately do not implement StreamRule
// and the transport layer buffers (with a cap) when they are configured.
//
// Streams fold serially: one row at a time on the caller's goroutine. The
// per-row work is a handful of flops per coordinate, dwarfed by the wire
// decode that precedes it, and serial folding is what makes the fold order
// (and hence the result) deterministic.

// Stream is one in-progress streaming aggregation: Reset with the round's
// center, Fold each row in the caller's fixed order, then Finalize. The
// center slice is retained until Finalize and must not be mutated.
type Stream interface {
	Reset(center []float64)
	Fold(row []float64) error
	// Count is the number of rows folded since Reset.
	Count() int
	Finalize() ([]float64, Report, error)
}

// StreamRule is an Aggregator that can aggregate one row at a time in
// O(dim) memory. NewStream returns a reusable stream (Reset recycles its
// accumulators across rounds).
type StreamRule interface {
	Aggregator
	NewStream() Stream
}

// Compile-time: exactly the summing rules stream.
var (
	_ StreamRule = Mean{}
	_ StreamRule = ClippedMean{}
)

// NewStream implements StreamRule.
func (m Mean) NewStream() Stream { return &meanStream{} }

// meanStream folds the unweighted mean: per-coordinate finite sums and
// counts, divided at finalize — the operation sequence Mean.Aggregate
// performs per coordinate, hence bit-identical to it.
type meanStream struct {
	center []float64
	acc    []float64
	cnt    []int32
	rows   int
}

func (s *meanStream) Reset(center []float64) {
	s.center = center
	dim := len(center)
	s.acc = resizeF64(s.acc, dim)
	if cap(s.cnt) >= dim {
		s.cnt = s.cnt[:dim]
		for i := range s.cnt {
			s.cnt[i] = 0
		}
	} else {
		s.cnt = make([]int32, dim)
	}
	s.rows = 0
}

func (s *meanStream) Count() int { return s.rows }

func (s *meanStream) Fold(row []float64) error {
	if len(row) != len(s.acc) {
		return fmt.Errorf("robust: row %d has %d params, want %d", s.rows, len(row), len(s.acc))
	}
	acc, cnt := s.acc, s.cnt
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		acc[i] += v
		cnt[i]++
	}
	s.rows++
	return nil
}

func (s *meanStream) Finalize() ([]float64, Report, error) {
	if s.rows == 0 {
		return nil, Report{}, ErrNoUpdates
	}
	out := make([]float64, len(s.acc))
	maxSkipped := 0
	for i, sum := range s.acc {
		n := int(s.cnt[i])
		if skipped := s.rows - n; skipped > maxSkipped {
			maxSkipped = skipped
		}
		if n == 0 {
			out[i] = centerAt(s.center, i)
			continue
		}
		out[i] = finiteOr(sum/float64(n), centerAt(s.center, i))
	}
	return out, Report{Trimmed: maxSkipped, Contributors: s.rows}, nil
}

// NewStream implements StreamRule.
func (c ClippedMean) NewStream() Stream { return &clippedStream{maxNorm: c.MaxNorm} }

// clippedStream folds the norm-clipped mean: each row's clip factor comes
// from its own delta norm (independent of every other row), so the scaled
// deltas sum coordinate-wise exactly as in the batch rule.
type clippedStream struct {
	maxNorm float64
	center  []float64
	acc     []float64
	rows    int
	nFinite int
	clipped int
}

func (s *clippedStream) Reset(center []float64) {
	s.center = center
	s.acc = resizeF64(s.acc, len(center))
	s.rows = 0
	s.nFinite = 0
	s.clipped = 0
}

func (s *clippedStream) Count() int { return s.rows }

func (s *clippedStream) Fold(row []float64) error {
	if len(row) != len(s.acc) {
		return fmt.Errorf("robust: row %d has %d params, want %d", s.rows, len(row), len(s.acc))
	}
	s.rows++
	var ss float64
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// A non-finite row contributes nothing; it only counts toward
			// the Trimmed tally (rows − nFinite) at finalize.
			return nil
		}
		d := v - s.center[i]
		ss += d * d
	}
	s.nFinite++
	scale := 1.0
	if n := math.Sqrt(ss); s.maxNorm > 0 && n > s.maxNorm {
		scale = s.maxNorm / n
		s.clipped++
	}
	if scale == 0 {
		// Delta norm overflowed to +Inf: the clipped contribution is exactly
		// zero, and skipping the row avoids Inf·0 = NaN (same special case
		// as the batch rule).
		return nil
	}
	acc, center := s.acc, s.center
	for i, v := range row {
		acc[i] += (v - center[i]) * scale
	}
	return nil
}

func (s *clippedStream) Finalize() ([]float64, Report, error) {
	if s.rows == 0 {
		return nil, Report{}, ErrNoUpdates
	}
	out := make([]float64, len(s.acc))
	for i, sum := range s.acc {
		if s.nFinite == 0 {
			out[i] = centerAt(s.center, i)
			continue
		}
		out[i] = finiteOr(s.center[i]+sum/float64(s.nFinite), centerAt(s.center, i))
	}
	rep := Report{Trimmed: s.rows - s.nFinite, Clipped: s.clipped, Contributors: s.rows}
	return out, rep, nil
}

// resizeF64 returns a zeroed length-dim slice, reusing s's storage when it
// is large enough.
func resizeF64(s []float64, dim int) []float64 {
	if cap(s) < dim {
		return make([]float64, dim)
	}
	s = s[:dim]
	for i := range s {
		s[i] = 0
	}
	return s
}
