package robust

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
)

// Health is a client's position in the quarantine state machine.
type Health int

const (
	// Healthy clients participate normally.
	Healthy Health = iota
	// Suspect clients participate but are being watched: their EWMA
	// anomaly score has crossed SuspectScore.
	Suspect
	// Quarantined clients are excluded from rounds entirely: they are not
	// trained (in-process) or exchanged with (TCP), and their updates
	// never reach the aggregate.
	Quarantined
	// Probation clients are re-admitted after serving a quarantine term,
	// under a zero-tolerance rule: one violation or a score relapse sends
	// them straight back to Quarantined.
	Probation
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// ReputationConfig tunes the anomaly EWMA and the quarantine state
// machine. The zero value selects the documented defaults.
type ReputationConfig struct {
	// Alpha is the EWMA smoothing factor in (0, 1]: score ← (1−α)·score +
	// α·sample. Default 0.4 — a persistent attacker crosses SuspectScore
	// in two rounds; one noisy round decays away in three.
	Alpha float64
	// SuspectScore is the EWMA level at or above which a healthy client
	// turns suspect (and a suspect stays suspect). Default 0.5.
	SuspectScore float64
	// ReleaseScore is the EWMA level below which a suspect returns to
	// healthy and a probationer may complete probation. Default 0.25.
	ReleaseScore float64
	// QuarantineAfter is how many consecutive suspect rounds trigger
	// quarantine. Default 2.
	QuarantineAfter int
	// QuarantineTerm is how many rounds a quarantined client sits out
	// before probation. 0 keeps quarantine permanent (no probation) —
	// the conservative default for unattended deployments.
	QuarantineTerm int
	// ProbationRounds is how many consecutive clean probation rounds
	// restore a client to healthy. Default 3.
	ProbationRounds int
	// DeviationSpan scales the deviation signal: a client whose distance
	// from the robust aggregate is (1+DeviationSpan)× the round's median
	// distance scores a full 1.0 anomaly sample; at the median or below
	// it scores 0. Default 3 (i.e. 4× the median distance saturates).
	DeviationSpan float64
}

func (c ReputationConfig) withDefaults() ReputationConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.4
	}
	if c.SuspectScore <= 0 {
		c.SuspectScore = 0.5
	}
	if c.ReleaseScore <= 0 {
		c.ReleaseScore = 0.25
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 2
	}
	if c.ProbationRounds <= 0 {
		c.ProbationRounds = 3
	}
	if c.DeviationSpan <= 0 {
		c.DeviationSpan = 3
	}
	return c
}

// ClientRep is one client's durable reputation record. Fields are
// exported so the whole tracker gob-encodes into the PR 4 checkpoint
// container — a coordinator restart must not amnesty an attacker.
type ClientRep struct {
	// Score is the EWMA anomaly score in [0, 1].
	Score float64
	// State is the client's quarantine state.
	State Health
	// Streak counts consecutive rounds in the state-specific sense:
	// suspect rounds (Suspect), rounds served (Quarantined), or clean
	// rounds (Probation).
	Streak int
	// Violations counts hard violations (validation/norm-bound
	// rejections) over the client's lifetime, for ops visibility.
	Violations int
}

// Reputation scores per-client anomaly evidence and drives the
// healthy → suspect → quarantined → probation state machine. It is not
// internally synchronized: the engine and the coordinator both feed it
// from their serial per-round sections.
type Reputation struct {
	cfg     ReputationConfig
	clients map[int]*ClientRep
	// pending holds this round's worst anomaly sample per client,
	// folded into the EWMA by EndRound.
	pending map[int]float64
}

// NewReputation builds a tracker; the zero config selects defaults.
func NewReputation(cfg ReputationConfig) *Reputation {
	return &Reputation{
		cfg:     cfg.withDefaults(),
		clients: make(map[int]*ClientRep),
		pending: make(map[int]float64),
	}
}

func (r *Reputation) client(id int) *ClientRep {
	c, ok := r.clients[id]
	if !ok {
		c = &ClientRep{}
		r.clients[id] = c
	}
	return c
}

// Observe records an anomaly sample in [0, 1] for a client this round;
// the round's maximum per client feeds the EWMA at EndRound.
func (r *Reputation) Observe(id int, sample float64) {
	if math.IsNaN(sample) {
		sample = 1
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	if cur, ok := r.pending[id]; !ok || sample > cur {
		r.pending[id] = sample
	}
}

// ObserveViolation records a hard violation (validation rejection, norm
// bound hit, quorum-threatening behavior): a full-scale anomaly sample
// plus the lifetime violation counter.
func (r *Reputation) ObserveViolation(id int) {
	r.client(id).Violations++
	r.Observe(id, 1)
}

// ObserveDeviations converts the participants' distances from the robust
// aggregate into anomaly samples: each distance is compared against the
// round's median distance (the scale honest clients set), and the excess
// is normalized by DeviationSpan. ids[i] owns dists[i].
func (r *Reputation) ObserveDeviations(ids []int, dists []float64) {
	if len(ids) != len(dists) || len(ids) == 0 {
		return
	}
	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	if med <= 0 || math.IsInf(med, 0) || math.IsNaN(med) {
		// Degenerate round (identical or poisoned-through updates):
		// distances carry no honest scale; only flag the non-finite ones.
		for i, id := range ids {
			if math.IsInf(dists[i], 0) || math.IsNaN(dists[i]) {
				r.Observe(id, 1)
			} else {
				r.Observe(id, 0)
			}
		}
		return
	}
	for i, id := range ids {
		d := dists[i]
		if math.IsInf(d, 0) || math.IsNaN(d) {
			r.Observe(id, 1)
			continue
		}
		r.Observe(id, (d/med-1)/r.cfg.DeviationSpan)
	}
}

// EndRound folds this round's samples into the EWMA for every listed
// participant (participants with no recorded sample decay toward 0) and
// advances the state machine. Quarantined clients serve their term
// whether or not they are listed. It returns the ids whose Health
// changed this round, in ascending order (for logging/metrics).
func (r *Reputation) EndRound(participants []int) []int {
	seen := make(map[int]bool, len(participants))
	for _, id := range participants {
		seen[id] = true
		c := r.client(id)
		c.Score = (1-r.cfg.Alpha)*c.Score + r.cfg.Alpha*r.pending[id]
	}
	var changed []int
	ids := make([]int, 0, len(r.clients))
	for id := range r.clients {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := r.clients[id]
		before := c.State
		switch c.State {
		case Healthy:
			if !seen[id] {
				break
			}
			if c.Score >= r.cfg.SuspectScore {
				c.State = Suspect
				c.Streak = 1
				if c.Streak >= r.cfg.QuarantineAfter {
					c.State = Quarantined
					c.Streak = 0
				}
			}
		case Suspect:
			if !seen[id] {
				break
			}
			if c.Score >= r.cfg.SuspectScore {
				c.Streak++
				if c.Streak >= r.cfg.QuarantineAfter {
					c.State = Quarantined
					c.Streak = 0
				}
			} else if c.Score < r.cfg.ReleaseScore {
				c.State = Healthy
				c.Streak = 0
			}
		case Quarantined:
			c.Streak++ // rounds served, participant or not
			if r.cfg.QuarantineTerm > 0 && c.Streak >= r.cfg.QuarantineTerm {
				c.State = Probation
				c.Streak = 0
				// Re-enter with a score at the release boundary: one clean
				// streak restores the client, one relapse re-quarantines.
				c.Score = r.cfg.ReleaseScore
			}
		case Probation:
			if !seen[id] {
				break
			}
			if r.pending[id] >= 1 || c.Score >= r.cfg.SuspectScore {
				c.State = Quarantined
				c.Streak = 0
				break
			}
			c.Streak++
			if c.Streak >= r.cfg.ProbationRounds && c.Score < r.cfg.ReleaseScore {
				c.State = Healthy
				c.Streak = 0
			}
		}
		if c.State != before {
			changed = append(changed, id)
		}
	}
	r.pending = make(map[int]float64)
	return changed
}

// Blocked reports whether a client is currently quarantined — the one
// state the engine and coordinator enforce by exclusion.
func (r *Reputation) Blocked(id int) bool {
	c, ok := r.clients[id]
	return ok && c.State == Quarantined
}

// StateOf returns a client's Health (Healthy for unknown clients).
func (r *Reputation) StateOf(id int) Health {
	if c, ok := r.clients[id]; ok {
		return c.State
	}
	return Healthy
}

// ScoreOf returns a client's EWMA anomaly score (0 for unknown clients).
func (r *Reputation) ScoreOf(id int) float64 {
	if c, ok := r.clients[id]; ok {
		return c.Score
	}
	return 0
}

// QuarantinedCount returns how many clients are currently quarantined.
func (r *Reputation) QuarantinedCount() int {
	n := 0
	for _, c := range r.clients {
		if c.State == Quarantined {
			n++
		}
	}
	return n
}

// Records returns a copy of every tracked client's record, keyed by id.
func (r *Reputation) Records() map[int]ClientRep {
	out := make(map[int]ClientRep, len(r.clients))
	for id, c := range r.clients {
		out[id] = *c
	}
	return out
}

// reputationState is the gob layout of a snapshot: records only — the
// config is reconstruction-time wiring, like the rest of the engine's
// configuration, so operators can retune thresholds across a restart
// without amnestying anyone.
type reputationState struct {
	Clients map[int]ClientRep
}

// Snapshot serializes the tracker's durable state for the checkpoint
// container. Pending (intra-round) samples are not captured: snapshots
// happen at round boundaries, where pending is empty.
func (r *Reputation) Snapshot() ([]byte, error) {
	st := reputationState{Clients: make(map[int]ClientRep, len(r.clients))}
	for id, c := range r.clients {
		st.Clients[id] = *c
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("robust: encoding reputation state: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the tracker's records with a snapshot's. The active
// config is kept (see Snapshot).
func (r *Reputation) Restore(blob []byte) error {
	var st reputationState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("robust: decoding reputation state: %w", err)
	}
	r.clients = make(map[int]*ClientRep, len(st.Clients))
	for id, c := range st.Clients {
		cc := c
		r.clients[id] = &cc
	}
	r.pending = make(map[int]float64)
	return nil
}
