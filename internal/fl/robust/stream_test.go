package robust

import (
	"math"
	"math/rand"
	"testing"
)

// streamRows generates a deterministic update matrix with optional
// non-finite poison, exercising the skip paths of both code shapes.
func streamRows(rows, dim int, poison bool, seed int64) (center []float64, params [][]float64) {
	r := rand.New(rand.NewSource(seed))
	center = make([]float64, dim)
	for i := range center {
		center[i] = r.NormFloat64()
	}
	params = make([][]float64, rows)
	for j := range params {
		row := make([]float64, dim)
		for i := range row {
			row[i] = center[i] + r.NormFloat64()*float64(j+1)
		}
		if poison && j%3 == 1 {
			row[r.Intn(dim)] = math.NaN()
		}
		if poison && j%4 == 2 {
			row[r.Intn(dim)] = math.Inf(1 - 2*(j%2))
		}
		params[j] = row
	}
	return center, params
}

// TestStreamMatchesBatchBitExact: folding rows one at a time in row order
// must reproduce the batch rule bit for bit — the contract the transport
// streaming fold relies on for aggregate determinism. Poisoned inputs
// exercise the per-coordinate skip bookkeeping on both sides.
func TestStreamMatchesBatchBitExact(t *testing.T) {
	rules := []StreamRule{
		Mean{},
		Mean{Workers: 3},
		ClippedMean{MaxNorm: 2.5},
		ClippedMean{MaxNorm: 0.1, Workers: 2},
	}
	for _, rule := range rules {
		for _, poison := range []bool{false, true} {
			for _, rows := range []int{1, 2, 7, 32} {
				center, params := streamRows(rows, 17, poison, int64(rows)*7+1)
				wantOut, wantRep, err := rule.Aggregate(center, params, nil)
				if err != nil {
					t.Fatalf("%s batch: %v", rule.Name(), err)
				}
				st := rule.NewStream()
				st.Reset(center)
				for _, row := range params {
					if err := st.Fold(row); err != nil {
						t.Fatalf("%s fold: %v", rule.Name(), err)
					}
				}
				gotOut, gotRep, err := st.Finalize()
				if err != nil {
					t.Fatalf("%s finalize: %v", rule.Name(), err)
				}
				if st.Count() != rows {
					t.Fatalf("%s: stream count %d, want %d", rule.Name(), st.Count(), rows)
				}
				if gotRep != wantRep {
					t.Fatalf("%s rows=%d poison=%v: report %+v, want %+v",
						rule.Name(), rows, poison, gotRep, wantRep)
				}
				for i := range wantOut {
					if math.Float64bits(gotOut[i]) != math.Float64bits(wantOut[i]) {
						t.Fatalf("%s rows=%d poison=%v coord %d: stream %v != batch %v",
							rule.Name(), rows, poison, i, gotOut[i], wantOut[i])
					}
				}
			}
		}
	}
}

// TestStreamReuse: a stream must be reusable across rounds via Reset with
// no bleed-through from the previous fold.
func TestStreamReuse(t *testing.T) {
	rule := ClippedMean{MaxNorm: 1.5}
	st := rule.NewStream()
	for round := 0; round < 3; round++ {
		center, params := streamRows(5, 9, round == 1, int64(round)+41)
		want, _, err := rule.Aggregate(center, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		st.Reset(center)
		for _, row := range params {
			if err := st.Fold(row); err != nil {
				t.Fatal(err)
			}
		}
		got, _, err := st.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("round %d coord %d: %v != %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestStreamErrors: shape violations and empty folds surface as errors,
// matching the batch rules.
func TestStreamErrors(t *testing.T) {
	st := Mean{}.NewStream()
	st.Reset([]float64{0, 0})
	if err := st.Fold([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.Fold([]float64{1}); err == nil {
		t.Fatal("want length-mismatch error")
	}
	empty := Mean{}.NewStream()
	empty.Reset([]float64{0})
	if _, _, err := empty.Finalize(); err == nil {
		t.Fatal("want ErrNoUpdates on empty finalize")
	}
}
