package fl

import (
	"errors"
	"fmt"
	"math"
)

// Sparse-update validation and densification. The binary wire codec can
// deliver updates in compressed shapes (top-k sparse and/or delta-coded
// against the broadcast global); everything downstream of the transport —
// Aggregate, the robust folds, observers — works on dense raw parameter
// vectors only. These helpers are the sole bridge between the two worlds,
// and they fail loudly: a malformed sparse shape is a typed error, never
// a silent misfold.

// Sentinel errors classifying malformed sparse updates. Wrapped errors
// carry the client and coordinate context; match with errors.Is.
var (
	// ErrSparseIndexRange means an index falls outside [0, DenseLen).
	ErrSparseIndexRange = errors.New("fl: sparse index out of range")
	// ErrSparseDuplicateIndex means the same coordinate appears twice.
	ErrSparseDuplicateIndex = errors.New("fl: duplicate sparse index")
	// ErrSparseUnsorted means the index list is not strictly ascending.
	ErrSparseUnsorted = errors.New("fl: sparse indices not ascending")
	// ErrSparseShape means the index and value lists disagree, or the
	// declared dense length does not match the model.
	ErrSparseShape = errors.New("fl: sparse shape mismatch")
)

// ValidateSparse checks a sparse/delta update's structure against the
// model's dense length: index and value counts must agree, DenseLen must
// equal wantLen, indices must be strictly ascending within [0, wantLen)
// (which rules out duplicates), and every value must be finite. Dense
// delta updates (IsDelta with nil Indices) are checked for length and
// finiteness only.
func ValidateSparse(u Update, wantLen int) error {
	if u.DenseLen != wantLen {
		return fmt.Errorf("%w: client %d declares dense length %d, want %d",
			ErrSparseShape, u.ClientID, u.DenseLen, wantLen)
	}
	if u.Indices != nil {
		if len(u.Indices) != len(u.Params) {
			return fmt.Errorf("%w: client %d has %d indices for %d values",
				ErrSparseShape, u.ClientID, len(u.Indices), len(u.Params))
		}
		if len(u.Indices) > wantLen {
			return fmt.Errorf("%w: client %d has %d indices for a %d-long vector",
				ErrSparseShape, u.ClientID, len(u.Indices), wantLen)
		}
		prev := -1
		for j, i := range u.Indices {
			if i < 0 || i >= wantLen {
				return fmt.Errorf("%w: client %d index %d at position %d (dense length %d)",
					ErrSparseIndexRange, u.ClientID, i, j, wantLen)
			}
			if i == prev {
				return fmt.Errorf("%w: client %d index %d at position %d",
					ErrSparseDuplicateIndex, u.ClientID, i, j)
			}
			if i < prev {
				return fmt.Errorf("%w: client %d index %d at position %d after %d",
					ErrSparseUnsorted, u.ClientID, i, j, prev)
			}
			prev = i
		}
	} else if len(u.Params) != wantLen {
		return fmt.Errorf("%w: client %d dense delta has %d params, want %d",
			ErrSparseShape, u.ClientID, len(u.Params), wantLen)
	}
	for j, v := range u.Params {
		if math.IsNaN(v) {
			return fmt.Errorf("fl: client %d sparse update has NaN at position %d", u.ClientID, j)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("fl: client %d sparse update has Inf at position %d", u.ClientID, j)
		}
	}
	return nil
}

// Densify expands a compressed update into the canonical dense raw shape
// against the round's broadcast global parameters: sparse coordinates are
// scattered into a zero delta, and delta values are added to the global.
// The input is validated first; a dense raw update passes through
// untouched. The returned update never aliases global.
func Densify(u Update, global []float64) (Update, error) {
	if !u.Sparse() {
		return u, nil
	}
	if err := ValidateSparse(u, len(global)); err != nil {
		return Update{}, err
	}
	dense := make([]float64, len(global))
	if u.Indices != nil {
		for j, i := range u.Indices {
			dense[i] = u.Params[j]
		}
	} else {
		copy(dense, u.Params)
	}
	if u.IsDelta {
		for i, g := range global {
			dense[i] += g
		}
	}
	out := u
	out.Params = dense
	out.Indices = nil
	out.DenseLen = 0
	out.IsDelta = false
	return out, nil
}
