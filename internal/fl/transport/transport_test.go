package transport

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

func buildClients(t *testing.T, k int) ([]fl.Client, []float64, *datasets.Dataset) {
	t.Helper()
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 3, Train: 60, Test: 60, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := datasets.PartitionIID(train, k, rand.New(rand.NewSource(1)))
	clients := make([]fl.Client, k)
	var initial []float64
	for i := 0; i < k; i++ {
		net := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients[i] = fl.NewLegacyClient(i, net, shards[i], fl.ClientConfig{
			BatchSize: 16, LR: func(int) float64 { return 0.08 }, Momentum: 0.9,
		}, nil, rand.New(rand.NewSource(int64(i+50))))
	}
	return clients, initial, test
}

func TestLoopbackFederationMatchesInProcess(t *testing.T) {
	const k, rounds = 2, 10

	// In-process reference run.
	refClients, initial, test := buildClients(t, k)
	refSrv := fl.NewServer(initial, refClients...)
	if err := refSrv.Run(rounds); err != nil {
		t.Fatal(err)
	}
	refGlobal := refSrv.Global()

	// Networked run with freshly built, identically seeded clients.
	netClients, initial2, _ := buildClients(t, k)
	coord := &Coordinator{NumClients: k, Rounds: rounds, Initial: initial2}

	addrCh := make(chan string, 1)
	var (
		global []float64
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		global, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh

	var cwg sync.WaitGroup
	clientErrs := make([]error, k)
	for i, c := range netClients {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			clientErrs[i] = RunClient(addr, c)
		}(i, c)
	}
	cwg.Wait()
	wg.Wait()

	if srvErr != nil {
		t.Fatal(srvErr)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if len(global) != len(refGlobal) {
		t.Fatalf("global length %d != reference %d", len(global), len(refGlobal))
	}
	for i := range global {
		if math.Abs(global[i]-refGlobal[i]) > 1e-9 {
			t.Fatalf("networked and in-process runs diverged at %d: %v vs %v",
				i, global[i], refGlobal[i])
		}
	}

	// The federated model should beat chance on the test set.
	eval := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, test.In, test.NumClasses)
	if err := nn.SetFlatParams(eval.Params(), global); err != nil {
		t.Fatal(err)
	}
	if acc := fl.Evaluate(eval, test, 32); acc < 0.35 {
		t.Fatalf("networked federation accuracy = %v, want ≥0.35", acc)
	}
}

func TestCoordinatorObserversSeeUpdates(t *testing.T) {
	const k, rounds = 2, 2
	clients, initial, _ := buildClients(t, k)
	rec := &fl.HistoryRecorder{}
	coord := &Coordinator{NumClients: k, Rounds: rounds, Initial: initial,
		Observers: []fl.RoundObserver{rec}}

	addrCh := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	go func() {
		defer wg.Done()
		_, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh
	var cwg sync.WaitGroup
	for _, c := range clients {
		cwg.Add(1)
		go func(c fl.Client) {
			defer cwg.Done()
			if err := RunClient(addr, c); err != nil {
				t.Errorf("client: %v", err)
			}
		}(c)
	}
	cwg.Wait()
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	if len(rec.Rounds) != rounds {
		t.Fatalf("observer saw %d rounds, want %d", len(rec.Rounds), rounds)
	}
	if len(rec.Rounds[0].TrainLosses) != k {
		t.Fatalf("observer saw %d losses, want %d", len(rec.Rounds[0].TrainLosses), k)
	}
}

func TestRunClientDialFailure(t *testing.T) {
	clients, _, _ := buildClients(t, 1)
	if err := RunClient("127.0.0.1:1", clients[0]); err == nil {
		t.Fatal("expected dial error")
	}
}
