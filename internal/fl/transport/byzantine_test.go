package transport

// TCP Byzantine chaos suite: attackers behind real connections, robust
// aggregation on the coordinator, reputation-driven quarantine enforced at
// the transport (no round message for quarantined clients, connection kept
// open), and a coordinator kill→restart→resume proving the quarantine
// rides the durable snapshot — a restart must not amnesty an attacker.

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/fl/robust"
	"github.com/cip-fl/cip/internal/rng"
)

const (
	tbN   = 6 // roster size
	tbBad = 5 // the attacker's client id (f = 1 < n/3)
	tbDim = 4
)

// stepClient is a cheap, stateless, deterministic client: it returns
// global + step on every coordinate. Steps differ slightly per client so
// deviation scores see a realistic honest spread. Being stateless it
// trivially satisfies StatefulClient, which the durable session capture /
// rollback path requires.
type stepClient struct {
	id   int
	step float64
}

func (c *stepClient) ID() int         { return c.id }
func (c *stepClient) NumSamples() int { return 10 }
func (c *stepClient) TrainLocal(_ int, global []float64) (fl.Update, error) {
	p := make([]float64, len(global))
	for i := range p {
		p[i] = global[i] + c.step
	}
	return fl.Update{ClientID: c.id, Params: p, NumSamples: 10, TrainLoss: 1}, nil
}
func (c *stepClient) CaptureState() ([]byte, error) { return []byte{1}, nil }
func (c *stepClient) RestoreState([]byte) error     { return nil }

// byzRoster builds the n-client roster with client tbBad sign-flipping
// every round.
func byzRoster() []fl.Client {
	clients := make([]fl.Client, tbN)
	for i := 0; i < tbN; i++ {
		var c fl.Client = &stepClient{id: i, step: 0.1 + 0.002*float64(i)}
		if i == tbBad {
			c = faults.NewSignFlip(c, 3, nil)
		}
		clients[i] = c
	}
	return clients
}

// runByzFederation drives one coordinator plus the full roster and returns
// the final global.
func runByzFederation(t *testing.T, coord *Coordinator, retry func(i int) RetryConfig) []float64 {
	t.Helper()
	addrCh := make(chan string, 1)
	var (
		global []float64
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		global, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh
	var cwg sync.WaitGroup
	for i, c := range byzRoster() {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			if err := RunClientRetry(addr, c, retry(i)); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i, c)
	}
	cwg.Wait()
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return global
}

func TestTCPByzantineQuarantine(t *testing.T) {
	rep := robust.NewReputation(robust.ReputationConfig{})
	coord := &Coordinator{
		NumClients: tbN, Rounds: 8,
		Initial:    make([]float64, tbDim),
		MinQuorum:  3,
		Robust:     robust.Median{},
		Reputation: rep,
	}
	global := runByzFederation(t, coord, func(i int) RetryConfig {
		return RetryConfig{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond,
			JitterSrc: rng.NewSource(int64(300 + i))}
	})

	if !rep.Blocked(tbBad) {
		t.Fatalf("attacker %d not quarantined (state %v, score %.3f)",
			tbBad, rep.StateOf(tbBad), rep.ScoreOf(tbBad))
	}
	for id := 0; id < tbN-1; id++ {
		if rep.StateOf(id) != robust.Healthy {
			t.Fatalf("honest client %d state = %v, want healthy", id, rep.StateOf(id))
		}
	}
	// The median absorbed the attack: 8 rounds of ~0.105 honest drift.
	for i, v := range global {
		if v < 0.7 {
			t.Fatalf("global[%d] = %.3f — sign-flip attack dragged the TCP aggregate", i, v)
		}
	}
}

// TestTCPByzantineQuarantineSurvivesRestart kills the coordinator after the
// attacker is quarantined, restarts it from the snapshot with a FRESH
// reputation tracker, and requires (a) the attacker stays quarantined
// through the resumed rounds and (b) the final global is bit-identical to
// an uninterrupted durable run — the same determinism bar as the PR 4
// restart tests, now with robust aggregation and quarantine in the loop.
func TestTCPByzantineQuarantineSurvivesRestart(t *testing.T) {
	const rounds, every = 10, 2
	build := func(mgr *checkpoint.Manager, rep *robust.Reputation, afterRound func(int) error,
		restore *checkpoint.Snapshot) *Coordinator {
		return &Coordinator{
			NumClients: tbN, Rounds: rounds,
			Initial:    make([]float64, tbDim),
			MinQuorum:  3,
			Robust:     robust.Median{},
			Reputation: rep,
			Checkpoint: mgr, CheckpointEvery: every,
			AfterRound: afterRound,
			Restore:    restore,
		}
	}
	retry := func(i int) RetryConfig {
		return RetryConfig{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond,
			JitterSrc: rng.NewSource(int64(700 + i))}
	}

	// Reference: uninterrupted durable run.
	refMgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "ref.ckpt")}
	want := runByzFederation(t, build(refMgr, robust.NewReputation(robust.ReputationConfig{}), nil, nil), retry)

	// Crashing run: the attacker is quarantined at the end of round 2; the
	// crash after round 4 rewinds to the round-3 snapshot, so the restarted
	// coordinator replays round 4 and must already know about the attacker.
	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	rep1 := robust.NewReputation(robust.ReputationConfig{})
	first := build(mgr, rep1, faults.CrashAt(4), nil)
	addrCh := make(chan string, 1)
	var (
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, firstErr = first.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh
	clientErrs := make([]error, tbN)
	var cwg sync.WaitGroup
	for i, c := range byzRoster() {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			clientErrs[i] = RunClientRetry(addr, c, retry(i))
		}(i, c)
	}
	wg.Wait() // coordinator process 1 dies
	if !errors.Is(firstErr, faults.ErrCrash) {
		t.Fatalf("first coordinator: got %v, want ErrCrash", firstErr)
	}
	if !rep1.Blocked(tbBad) {
		t.Fatalf("attacker not quarantined before the crash (state %v)", rep1.StateOf(tbBad))
	}

	snap, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State.NextRound != 4 {
		t.Fatalf("snapshot resumes at round %d, want 4", snap.State.NextRound)
	}
	if snap.State.Reputation == nil {
		t.Fatal("snapshot is missing the reputation blob")
	}

	// Fresh tracker: only the snapshot can carry the quarantine across.
	rep2 := robust.NewReputation(robust.ReputationConfig{})
	second := build(mgr, rep2, nil, snap)
	var got []float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		got, err = second.ListenAndRun(addr, nil)
		if err != nil {
			t.Error(err)
		}
	}()
	cwg.Wait()
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	if !rep2.Blocked(tbBad) {
		t.Fatalf("restart amnestied the attacker (state %v)", rep2.StateOf(tbBad))
	}
	for id := 0; id < tbN-1; id++ {
		if rep2.StateOf(id) != robust.Healthy {
			t.Fatalf("honest client %d state after restart = %v, want healthy", id, rep2.StateOf(id))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("global length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("global[%d]: %v vs %v — restarted byzantine federation is not bit-identical",
				i, got[i], want[i])
		}
	}
}

// TestRetryJitterDeterministic pins the satellite fix: backoff jitter runs
// on an injectable internal/rng source, so two configs seeded identically
// produce identical backoff schedules, and the default (nil sources) is
// fixed-seed rather than ambient randomness.
func TestRetryJitterDeterministic(t *testing.T) {
	schedule := func(rc RetryConfig) []time.Duration {
		rc = rc.withDefaults()
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = rc.backoff(i + 1)
		}
		return out
	}
	a := schedule(RetryConfig{JitterSrc: rng.NewSource(42)})
	b := schedule(RetryConfig{JitterSrc: rng.NewSource(42)})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at backoff %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(RetryConfig{JitterSrc: rng.NewSource(43)})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical jitter schedule")
	}
	d1, d2 := schedule(RetryConfig{}), schedule(RetryConfig{})
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("default jitter is not reproducible at backoff %d: %v vs %v", i, d1[i], d2[i])
		}
	}
	// The jittered delay stays within the documented multiplicative band.
	rc := (RetryConfig{JitterSrc: rng.NewSource(7)}).withDefaults()
	for attempt := 1; attempt < 10; attempt++ {
		base := rc.BaseDelay
		for i := 1; i < attempt && base < rc.MaxDelay; i++ {
			base *= 2
		}
		if base > rc.MaxDelay {
			base = rc.MaxDelay
		}
		d := rc.backoff(attempt)
		lo := time.Duration(float64(base) * (1 - rc.Jitter))
		hi := time.Duration(float64(base) * (1 + rc.Jitter))
		if d < lo || d > hi {
			t.Fatalf("backoff(%d) = %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
}
