package transport

import (
	"encoding/gob"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/faults"
)

// echoClient returns the global parameters unchanged — a cheap stand-in
// for a training client in protocol-level tests.
type echoClient struct {
	id    int
	delay time.Duration
	slow  map[int]bool // rounds to delay; nil means never
}

func (c *echoClient) ID() int         { return c.id }
func (c *echoClient) NumSamples() int { return 10 }
func (c *echoClient) TrainLocal(round int, global []float64) (fl.Update, error) {
	if c.slow[round] {
		time.Sleep(c.delay)
	}
	p := make([]float64, len(global))
	copy(p, global)
	return fl.Update{Params: p, NumSamples: 10, TrainLoss: 1}, nil
}

// startCoordinator launches coord and returns its bound address plus a
// wait func yielding the final globals and error.
func startCoordinator(t *testing.T, coord *Coordinator) (string, func() ([]float64, error)) {
	t.Helper()
	addrCh := make(chan string, 1)
	var (
		global []float64
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		global, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	return <-addrCh, func() ([]float64, error) {
		wg.Wait()
		return global, srvErr
	}
}

// TestCoordinatorDropsStragglerAndContinues: a client missing the round
// deadline is dropped; the federation finishes over the survivors and the
// observer records the drop with a timeout reason.
func TestCoordinatorDropsStragglerAndContinues(t *testing.T) {
	rec := &fl.HistoryRecorder{}
	coord := &Coordinator{
		NumClients: 2, Rounds: 4, Initial: []float64{1, 2},
		MinQuorum: 1, RoundTimeout: 250 * time.Millisecond,
		Observers: []fl.RoundObserver{rec},
	}
	addr, wait := startCoordinator(t, coord)

	var cwg sync.WaitGroup
	clientErrs := make([]error, 2)
	clients := []fl.Client{
		&echoClient{id: 0},
		&echoClient{id: 1, delay: 2 * time.Second, slow: map[int]bool{1: true}},
	}
	for i, c := range clients {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			clientErrs[i] = RunClient(addr, c)
		}(i, c)
	}
	global, srvErr := wait()
	cwg.Wait()

	if srvErr != nil {
		t.Fatalf("coordinator should survive the straggler: %v", srvErr)
	}
	if len(global) != 2 {
		t.Fatalf("final global length %d, want 2", len(global))
	}
	if clientErrs[0] != nil {
		t.Fatalf("healthy client failed: %v", clientErrs[0])
	}
	if clientErrs[1] == nil {
		t.Fatal("dropped straggler should see a connection error")
	}
	if len(rec.Rounds) != 4 {
		t.Fatalf("observer saw %d rounds, want 4", len(rec.Rounds))
	}
	if len(rec.Rounds[0].TrainLosses) != 2 {
		t.Fatalf("round 0 aggregated %d updates, want 2", len(rec.Rounds[0].TrainLosses))
	}
	r1 := rec.Rounds[1]
	if len(r1.TrainLosses) != 1 || len(r1.Dropped) != 1 {
		t.Fatalf("round 1: %d updates, %d dropped; want 1 and 1", len(r1.TrainLosses), len(r1.Dropped))
	}
	if r1.Dropped[0].ClientID != 1 || r1.Dropped[0].Reason != fl.FailTimeout {
		t.Fatalf("round 1 dropped = %+v, want client 1 with reason timeout", r1.Dropped[0])
	}
	for _, r := range rec.Rounds[2:] {
		if len(r.TrainLosses) != 1 {
			t.Fatalf("round %d aggregated %d updates after drop, want 1", r.Round, len(r.TrainLosses))
		}
	}
}

// TestAcceptWindowStartsWithQuorum: the coordinator stops waiting for the
// full roster when the accept window closes, as long as quorum is met.
func TestAcceptWindowStartsWithQuorum(t *testing.T) {
	coord := &Coordinator{
		NumClients: 3, Rounds: 2, Initial: []float64{1},
		MinQuorum: 2, AcceptWindow: 400 * time.Millisecond,
	}
	addr, wait := startCoordinator(t, coord)

	var cwg sync.WaitGroup
	for i := 0; i < 2; i++ { // only 2 of 3 show up
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			if err := RunClient(addr, &echoClient{id: i}); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	global, srvErr := wait()
	cwg.Wait()
	if srvErr != nil {
		t.Fatalf("coordinator should start with 2 of 3 clients: %v", srvErr)
	}
	if len(global) != 1 {
		t.Fatalf("unexpected global %v", global)
	}
}

// TestAcceptWindowBelowQuorumErrors: too few clients by the window close
// must be an error, not a hang.
func TestAcceptWindowBelowQuorumErrors(t *testing.T) {
	coord := &Coordinator{
		NumClients: 2, Rounds: 1, Initial: []float64{1},
		MinQuorum: 2, AcceptWindow: 200 * time.Millisecond,
	}
	_, wait := startCoordinator(t, coord)
	if _, err := wait(); err == nil {
		t.Fatal("expected accept-window error with zero clients connected")
	}
}

// TestCoordinatorToleratesGarbageHello: in fault-tolerant mode a peer
// speaking the wrong protocol is discarded without sinking the federation.
func TestCoordinatorToleratesGarbageHello(t *testing.T) {
	coord := &Coordinator{
		NumClients: 2, Rounds: 2, Initial: []float64{1},
		MinQuorum: 1, AcceptWindow: 2 * time.Second,
	}
	addr, wait := startCoordinator(t, coord)

	garbage, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := garbage.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	garbage.Close()

	if err := RunClient(addr, &echoClient{id: 0}); err != nil {
		t.Fatalf("honest client: %v", err)
	}
	if _, err := wait(); err != nil {
		t.Fatalf("coordinator should tolerate the garbage hello: %v", err)
	}
}

// TestCoordinatorBoundsUpdateSize: an update larger than the configured
// byte budget must be rejected instead of allocated.
func TestCoordinatorBoundsUpdateSize(t *testing.T) {
	coord := &Coordinator{
		NumClients: 1, Rounds: 1, Initial: []float64{1, 2},
		MaxUpdateBytes: 2 << 10,
	}
	addr, wait := startCoordinator(t, coord)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(hello{ID: 0, NumSamples: 5}); err != nil {
		t.Fatal(err)
	}
	var w welcome
	if err := dec.Decode(&w); err != nil {
		t.Fatal(err)
	}
	var rm roundMsg
	if err := dec.Decode(&rm); err != nil {
		t.Fatal(err)
	}
	huge := fl.Update{Params: make([]float64, 1<<16), NumSamples: 5}
	for i := range huge.Params {
		huge.Params[i] = float64(i) // defeat trivial encoding of zeros
	}
	enc.Encode(updateMsg{U: huge}) //nolint:errcheck // server may hang up mid-write
	if _, err := wait(); err == nil {
		t.Fatal("coordinator accepted an update past the byte bound")
	}
}

// TestRunClientRetryConnectsToLateServer: the client is launched before
// the coordinator exists and must back off and retry until it is up.
func TestRunClientRetryConnectsToLateServer(t *testing.T) {
	coord := &Coordinator{NumClients: 1, Rounds: 2, Initial: []float64{1}}

	addrCh := make(chan string, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // reserve an address, then start the server late
	addrCh <- addr

	var (
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(300 * time.Millisecond)
		_, srvErr = coord.ListenAndRun(addr, nil)
	}()

	err = RunClientRetry(<-addrCh, &echoClient{id: 0}, RetryConfig{
		MaxAttempts: 20,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Rng:         rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatalf("retrying client should reach the late server: %v", err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
}

// TestRunClientRetryGivesUp: with no server at all, the retry loop must
// return the dial error after MaxAttempts rather than spin forever.
func TestRunClientRetryGivesUp(t *testing.T) {
	start := time.Now()
	err := RunClientRetry("127.0.0.1:1", &echoClient{id: 0}, RetryConfig{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected dial failure")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop took implausibly long")
	}
}

// TestFlakyConnDropIsToleratedByQuorum: a client whose connection dies
// mid-federation (byte-budget fault injection) is dropped; the rest finish.
func TestFlakyConnDropIsToleratedByQuorum(t *testing.T) {
	// Irrational parameter values defeat gob's compact float encoding, so
	// each round moves ~9 bytes per parameter and the byte budget below
	// reliably expires mid-federation (after the handshake, during round 1
	// or 2 of 6).
	initial := make([]float64, 64)
	rng := rand.New(rand.NewSource(8))
	for i := range initial {
		initial[i] = rng.NormFloat64()
	}
	rec := &fl.HistoryRecorder{}
	coord := &Coordinator{
		NumClients: 2, Rounds: 6, Initial: initial,
		MinQuorum: 1, RoundTimeout: 2 * time.Second,
		Observers: []fl.RoundObserver{rec},
	}
	addr, wait := startCoordinator(t, coord)

	var cwg sync.WaitGroup
	clientErrs := make([]error, 2)
	cwg.Add(2)
	go func() {
		defer cwg.Done()
		clientErrs[0] = RunClient(addr, &echoClient{id: 0})
	}()
	go func() {
		defer cwg.Done()
		// Enough budget for hello plus a round or two, then the conn dies.
		clientErrs[1] = RunClientRetry(addr, &echoClient{id: 1}, RetryConfig{
			MaxAttempts: 1,
			Dial:        faults.FlakyDialer(2000),
		})
	}()
	_, srvErr := wait()
	cwg.Wait()

	if srvErr != nil {
		t.Fatalf("coordinator should survive the dropped connection: %v", srvErr)
	}
	if clientErrs[0] != nil {
		t.Fatalf("healthy client failed: %v", clientErrs[0])
	}
	if clientErrs[1] == nil {
		t.Fatal("budgeted client should report its dropped connection")
	}
	dropped := false
	for _, r := range rec.Rounds {
		for _, f := range r.Dropped {
			if f.ClientID == 1 {
				dropped = true
			}
		}
	}
	if !dropped {
		t.Fatal("observer never saw client 1 dropped")
	}
}
