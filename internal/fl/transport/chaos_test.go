package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// TestChaosFederationConverges is the end-to-end fault-injection proof: a
// 4-client loopback federation with one flaky, one slow, and one
// corrupt-update client (all deterministically scheduled) must complete
// every round without coordinator error and land within an accuracy
// tolerance of the fault-free run.
//
// Fault plan:
//   - client 0: healthy
//   - client 1: flaky — training fails at round 1, which ends its session
//     and removes it from the roster
//   - client 2: slow — 150ms straggle on every round, inside the deadline,
//     so it exercises the timeout path but stays in the federation
//   - client 3: corrupt — NaN update at round 0, rejected by validation
//     and dropped
func TestChaosFederationConverges(t *testing.T) {
	const k, rounds = 4, 8
	const tolerance = 0.25 // chaos run may trail the clean run by this much accuracy

	run := func(wrap func(i int, c fl.Client) fl.Client, coord *Coordinator) ([]float64, []error) {
		clients, initial, _ := buildClients(t, k)
		coord.NumClients = k
		coord.Rounds = rounds
		coord.Initial = initial

		addrCh := make(chan string, 1)
		var (
			global []float64
			srvErr error
			wg     sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			global, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
		}()
		addr := <-addrCh

		clientErrs := make([]error, k)
		var cwg sync.WaitGroup
		for i, c := range clients {
			if wrap != nil {
				c = wrap(i, c)
			}
			cwg.Add(1)
			go func(i int, c fl.Client) {
				defer cwg.Done()
				clientErrs[i] = RunClient(addr, c)
			}(i, c)
		}
		cwg.Wait()
		wg.Wait()
		if srvErr != nil {
			t.Fatalf("coordinator error: %v", srvErr)
		}
		return global, clientErrs
	}

	accuracy := func(global []float64) float64 {
		_, _, test := buildClients(t, k)
		eval := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, test.In, test.NumClasses)
		if err := nn.SetFlatParams(eval.Params(), global); err != nil {
			t.Fatal(err)
		}
		return fl.Evaluate(eval, test, 32)
	}

	// Fault-free reference run (fail-stop coordinator).
	cleanGlobal, cleanErrs := run(nil, &Coordinator{})
	for i, err := range cleanErrs {
		if err != nil {
			t.Fatalf("clean run client %d: %v", i, err)
		}
	}
	cleanAcc := accuracy(cleanGlobal)

	// Chaos run with seeded faults and a fault-tolerant coordinator.
	rec := &fl.HistoryRecorder{}
	chaosGlobal, chaosErrs := run(func(i int, c fl.Client) fl.Client {
		switch i {
		case 1:
			return faults.NewFlaky(c, faults.On(1))
		case 2:
			return faults.NewSlow(c, 150*time.Millisecond, nil)
		case 3:
			return faults.NewCorrupt(c, faults.CorruptNaN, faults.On(0))
		}
		return c
	}, &Coordinator{
		MinQuorum:    1,
		RoundTimeout: 20 * time.Second,
		Observers:    []fl.RoundObserver{rec},
	})

	if chaosErrs[0] != nil {
		t.Fatalf("healthy client failed: %v", chaosErrs[0])
	}
	if chaosErrs[1] == nil {
		t.Fatal("flaky client should report its injected failure")
	}
	if chaosErrs[3] == nil {
		t.Fatal("corrupt client should be disconnected after its rejected update")
	}
	if len(rec.Rounds) != rounds {
		t.Fatalf("observer saw %d rounds, want %d", len(rec.Rounds), rounds)
	}
	droppedBy := map[int]fl.FailureReason{}
	for _, r := range rec.Rounds {
		for _, f := range r.Dropped {
			droppedBy[f.ClientID] = f.Reason
		}
	}
	if droppedBy[3] != fl.FailInvalid {
		t.Fatalf("corrupt client dropped with reason %q, want invalid", droppedBy[3])
	}
	if _, ok := droppedBy[1]; !ok {
		t.Fatal("flaky client was never dropped")
	}
	if _, ok := droppedBy[0]; ok {
		t.Fatal("healthy client was dropped")
	}
	if _, ok := droppedBy[2]; ok {
		t.Fatal("slow-but-in-deadline client was dropped")
	}
	// Final rounds aggregate the two survivors (healthy + slow).
	last := rec.Rounds[rounds-1]
	if len(last.TrainLosses) != 2 {
		t.Fatalf("final round aggregated %d updates, want 2 survivors", len(last.TrainLosses))
	}

	chaosAcc := accuracy(chaosGlobal)
	t.Logf("clean accuracy = %.3f, chaos accuracy = %.3f", cleanAcc, chaosAcc)
	if chaosAcc < cleanAcc-tolerance {
		t.Fatalf("chaos accuracy %.3f fell more than %.2f below clean accuracy %.3f",
			chaosAcc, tolerance, cleanAcc)
	}
}
