package transport

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// startLeaf launches a leaf with its local shard of clients and returns
// a wait func for the leaf's outcome (its clients' errors are collected
// into clientErrs, index-aligned with shard).
func startLeaf(t *testing.T, leaf *Leaf, shard []fl.Client, clientErrs []error) func() error {
	t.Helper()
	addrCh := make(chan string, 1)
	var (
		leafErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leafErr = leaf.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh
	var cwg sync.WaitGroup
	for i, c := range shard {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			clientErrs[i] = RunClient(addr, c)
		}(i, c)
	}
	return func() error {
		wg.Wait()
		cwg.Wait()
		return leafErr
	}
}

// vecShard builds the leaf-l shard of the synthetic deterministic roster
// (two clients per leaf, globally unique IDs).
func vecShard(l int) []fl.Client {
	a, b := 2*l, 2*l+1
	return []fl.Client{
		&vecClient{id: a, samples: 5 + 3*a},
		&vecClient{id: b, samples: 5 + 3*b},
	}
}

// TestTreeMatchesFlatFederation: a 4-leaf × 2-client tree must reach the
// same final global as a flat federation over the identical 8 clients.
// The tree re-associates the weighted sum (per-leaf partials instead of
// one flat fold), so the comparison is to reassociation tolerance, not
// bit-exact.
func TestTreeMatchesFlatFederation(t *testing.T) {
	const leaves, perLeaf, rounds = 4, 2, 3
	initial := []float64{0.5, -1.25, 3, 0.0625}

	flat := &Coordinator{
		NumClients: leaves * perLeaf, Rounds: rounds,
		Initial: append([]float64(nil), initial...), Codec: "binary",
	}
	want, _ := runVecFederation(t, flat, leaves*perLeaf)

	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true,
	}
	rootAddr, rootWait := startCoordinator(t, root)

	waits := make([]func() error, leaves)
	clientErrs := make([][]error, leaves)
	for l := 0; l < leaves; l++ {
		clientErrs[l] = make([]error, perLeaf)
		leaf := &Leaf{
			ID: l, Root: rootAddr,
			Local: Coordinator{
				NumClients: perLeaf,
				Initial:    append([]float64(nil), initial...),
			},
		}
		waits[l] = startLeaf(t, leaf, vecShard(l), clientErrs[l])
	}

	got, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root: %v", rootErr)
	}
	for l, wait := range waits {
		if err := wait(); err != nil {
			t.Fatalf("leaf %d: %v", l, err)
		}
		for i, err := range clientErrs[l] {
			if err != nil {
				t.Fatalf("leaf %d client %d: %v", l, i, err)
			}
		}
	}
	for i := range want {
		if diff := math.Abs(got[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("coord %d: tree %v vs flat %v (diff %v)", i, got[i], want[i], diff)
		}
	}
}

// TestTreeSurvivesLeafCrashAndRestart: killing one of four leaves
// mid-federation drops it at the root (quorum 3 holds), and a
// replacement leaf with the same ID rejoins through the root's accept
// loop and serves the remaining rounds.
func TestTreeSurvivesLeafCrashAndRestart(t *testing.T) {
	const leaves, perLeaf, rounds = 4, 2, 8
	initial := []float64{1, -2, 3}

	stopLeaf1 := make(chan struct{})
	var restartOnce sync.Once
	restartErrs := make([]error, perLeaf)
	restartWait := make(chan func() error, 1)

	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true,
		MinQuorum: leaves - 1, RoundTimeout: 2 * time.Second,
		AcceptRejoins: true,
	}
	var rootAddr string
	root.AfterRound = func(round int) error {
		switch round {
		case 1:
			close(stopLeaf1)
		case 3:
			restartOnce.Do(func() {
				leaf := &Leaf{
					ID: 1, Root: rootAddr,
					Local: Coordinator{
						NumClients: perLeaf,
						Initial:    append([]float64(nil), initial...),
					},
				}
				restartWait <- startLeaf(t, leaf, vecShard(1), restartErrs)
				// Let the replacement's hello land so the next round
				// boundary admits it.
				time.Sleep(500 * time.Millisecond)
			})
		}
		return nil
	}
	var rootWait func() ([]float64, error)
	rootAddr, rootWait = startCoordinator(t, root)

	waits := make([]func() error, leaves)
	clientErrs := make([][]error, leaves)
	for l := 0; l < leaves; l++ {
		clientErrs[l] = make([]error, perLeaf)
		leaf := &Leaf{
			ID: l, Root: rootAddr,
			Local: Coordinator{
				NumClients: perLeaf,
				Initial:    append([]float64(nil), initial...),
			},
		}
		if l == 1 {
			leaf.Retry.Stop = stopLeaf1
		}
		waits[l] = startLeaf(t, leaf, vecShard(l), clientErrs[l])
	}

	global, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root should survive the leaf crash: %v", rootErr)
	}
	if len(global) != len(initial) {
		t.Fatalf("root global length %d, want %d", len(global), len(initial))
	}
	for l, wait := range waits {
		err := wait()
		if l == 1 {
			if !errors.Is(err, ErrClientStopped) {
				t.Fatalf("killed leaf returned %v, want ErrClientStopped", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("leaf %d: %v", l, err)
		}
		for i, cerr := range clientErrs[l] {
			if cerr != nil {
				t.Fatalf("leaf %d client %d: %v", l, i, cerr)
			}
		}
	}
	select {
	case wait := <-restartWait:
		if err := wait(); err != nil {
			t.Fatalf("restarted leaf: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("restarted leaf was never launched")
	}
	for i, err := range restartErrs {
		if err != nil {
			t.Fatalf("restarted leaf client %d: %v", i, err)
		}
	}
}

// TestTreeFederationAccuracy: a 4-leaf tree training real models must
// reach the same test accuracy as the flat in-process federation over an
// identically seeded roster. Rounds of nonlinear training amplify the
// tree's floating-point reassociation, so the models are compared on
// what the paper cares about — held-out accuracy — not parameter bits.
func TestTreeFederationAccuracy(t *testing.T) {
	const leaves, perLeaf, rounds = 4, 2, 6
	k := leaves * perLeaf

	refClients, initial, test := buildClients(t, k)
	refSrv := fl.NewServer(initial, refClients...)
	if err := refSrv.Run(rounds); err != nil {
		t.Fatal(err)
	}
	refAcc := evalAccuracy(t, test, refSrv.Global())

	treeClients, initial2, _ := buildClients(t, k)
	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: initial2, Codec: "binary", AcceptPartials: true,
	}
	rootAddr, rootWait := startCoordinator(t, root)
	waits := make([]func() error, leaves)
	clientErrs := make([][]error, leaves)
	for l := 0; l < leaves; l++ {
		clientErrs[l] = make([]error, perLeaf)
		leaf := &Leaf{
			ID: l, Root: rootAddr,
			Local: Coordinator{
				NumClients: perLeaf,
				Initial:    append([]float64(nil), initial2...),
			},
		}
		waits[l] = startLeaf(t, leaf, treeClients[l*perLeaf:(l+1)*perLeaf], clientErrs[l])
	}
	global, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root: %v", rootErr)
	}
	for l, wait := range waits {
		if err := wait(); err != nil {
			t.Fatalf("leaf %d: %v", l, err)
		}
		for i, err := range clientErrs[l] {
			if err != nil {
				t.Fatalf("leaf %d client %d: %v", l, i, err)
			}
		}
	}

	treeAcc := evalAccuracy(t, test, global)
	if treeAcc < 0.35 {
		t.Fatalf("tree federation accuracy = %v, want ≥0.35", treeAcc)
	}
	if diff := math.Abs(treeAcc - refAcc); diff > 0.05 {
		t.Fatalf("tree accuracy %v vs flat %v (diff %v, want ≤0.05)", treeAcc, refAcc, diff)
	}
}

func evalAccuracy(t *testing.T, test *datasets.Dataset, global []float64) float64 {
	t.Helper()
	eval := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, test.In, test.NumClasses)
	if err := nn.SetFlatParams(eval.Params(), global); err != nil {
		t.Fatal(err)
	}
	return fl.Evaluate(eval, test, 32)
}
