package transport

// The depth-3 chaos harness (`make treechaos` runs TestTreeChaos*): a
// root ← 2 interiors ← 4 leaves tree training real models rides out a
// seeded schedule of 2 leaf kills, 1 interior kill (restarting its whole
// failure domain), and a partition in front of the first replacement —
// and must land within 2 accuracy points of the fault-free flat baseline
// with full final-round coverage.

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/telemetry"
)

// buildChaosClients is buildClients with a larger, higher-signal dataset:
// the chaos acceptance bound (±2 accuracy points vs the fault-free flat
// baseline) needs both runs at their convergence plateau and an eval set
// where one sample moves accuracy by a third of a point, not 1.7 points.
func buildChaosClients(t *testing.T, k int) ([]fl.Client, []float64, *datasets.Dataset) {
	t.Helper()
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 3, Train: 240, Test: 300, C: 1, H: 6, W: 6,
		Signal: 0.8, Noise: 0.15, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := datasets.PartitionIID(train, k, rand.New(rand.NewSource(1)))
	clients := make([]fl.Client, k)
	var initial []float64
	for i := 0; i < k; i++ {
		net := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients[i] = fl.NewLegacyClient(i, net, shards[i], fl.ClientConfig{
			BatchSize: 16, LR: func(int) float64 { return 0.05 }, Momentum: 0.9,
		}, nil, rand.New(rand.NewSource(int64(i+50))))
	}
	return clients, initial, test
}

// chaosNode is one killable tree node instance: closing stop tears it
// down (ErrClientStopped), wait joins it and — for client-facing leaves —
// its shard's client goroutines, so the same client objects can be
// handed to a replacement instance without a data race.
type chaosNode struct {
	stop chan struct{}
	wait func() error
	errs []error
}

// TestTreeChaosDepth3 is the ISSUE 10 acceptance scenario.
func TestTreeChaosDepth3(t *testing.T) {
	const (
		interiors, leavesPerInt, perLeaf = 2, 2, 2
		rounds                           = 10
		killWindow                       = 5 // kills land in rounds 1..killWindow
	)
	k := interiors * leavesPerInt * perLeaf

	// Fault-free flat baseline over an identically seeded roster.
	refClients, initial, test := buildChaosClients(t, k)
	refSrv := fl.NewServer(initial, refClients...)
	if err := refSrv.Run(rounds); err != nil {
		t.Fatal(err)
	}
	refAcc := evalAccuracy(t, test, refSrv.Global())

	treeClients, initial2, _ := buildChaosClients(t, k)

	// Seeded kill plans. The two leaf kills target leaves 2 and 3 — both
	// under interior 1 — and must land in distinct rounds: if both of a
	// node's children die in the same round it has zero valid updates and
	// nothing left to degrade with. The interior kill targets interior 0,
	// whose failure domain (itself plus leaves 0 and 1) is disjoint, so
	// the schedules may overlap freely.
	var leafPlan faults.KillPlan
	for seed := int64(11); ; seed++ {
		p := faults.DrawKillPlan(rand.New(rand.NewSource(seed)), killWindow, []int{2, 3}, 2)
		distinct := true
		for r := 0; r < killWindow; r++ {
			if len(p.Victims(r)) > 1 {
				distinct = false
				break
			}
		}
		if distinct {
			leafPlan = p
			break
		}
	}
	intPlan := faults.DrawKillPlan(rand.New(rand.NewSource(13)), killWindow, []int{0}, 1)

	rootReg := telemetry.NewRegistry()
	rootRM := fl.NewMetrics(rootReg)
	intReg := telemetry.NewRegistry()
	intRM := fl.NewMetrics(intReg) // shared by both interiors

	// Orchestration state, mutated only under mu: AfterRound runs on the
	// root's goroutine while the registry is built on the test's, and TCP
	// carries no happens-before edge the race detector can see.
	var (
		mu        sync.Mutex
		leaves    [4]*chaosNode
		interior0 *chaosNode
		intAddrs  [2]string
		restarts  = map[int][]func(){}
		coverage  [rounds]float64
		part      = &faults.Partition{}
		firstLeaf = true
	)

	shardFor := func(l int) []fl.Client { return treeClients[l*perLeaf : (l+1)*perLeaf] }
	launchShard := func(l int, dial func(string) (net.Conn, error)) *chaosNode {
		stop := make(chan struct{})
		leaf := &Leaf{
			ID: l % leavesPerInt, Root: intAddrs[l/leavesPerInt],
			Local: Coordinator{
				NumClients: perLeaf,
				Initial:    append([]float64(nil), initial2...),
			},
			Retry: RetryConfig{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond,
				Stop: stop, Dial: dial, Rng: rand.New(rand.NewSource(int64(100 + l)))},
		}
		errs := make([]error, perLeaf)
		return &chaosNode{stop: stop, wait: startLeaf(t, leaf, shardFor(l), errs), errs: errs}
	}
	launchInterior := func(id int, rootAddr string) *chaosNode {
		stop := make(chan struct{})
		node := &Leaf{
			ID: id, Root: rootAddr,
			Local: Coordinator{
				NumClients: leavesPerInt, MinQuorum: 1,
				RoundTimeout: 2 * time.Second, RoundMetrics: intRM,
				Initial: append([]float64(nil), initial2...),
				Codec:   "binary", AcceptPartials: true, AcceptRejoins: true,
			},
			Retry: RetryConfig{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond,
				Stop: stop, Rng: rand.New(rand.NewSource(int64(200 + id)))},
		}
		addr, wait := startNode(t, node)
		intAddrs[id] = addr
		return &chaosNode{stop: stop, wait: wait}
	}
	// restartLeaf tears down the old instance and brings up a replacement
	// over the same client objects; the first replacement's parent link
	// starts partitioned and heals one round later.
	restartLeaf := func(l, round int) {
		leaves[l].wait() //nolint:errcheck — ErrClientStopped by construction
		var dial func(string) (net.Conn, error)
		if firstLeaf {
			firstLeaf = false
			part.Split()
			dial = part.Gate(nil)
			restarts[round+1] = append(restarts[round+1], part.Heal)
		}
		leaves[l] = launchShard(l, dial)
	}

	var rootAddr string
	root := &Coordinator{
		NumClients: interiors, Rounds: rounds,
		Initial: append([]float64(nil), initial2...),
		Codec:   "binary", AcceptPartials: true, AcceptRejoins: true,
		MinQuorum: 1, RoundTimeout: 2 * time.Second,
		RoundMetrics: rootRM,
	}
	root.AfterRound = func(round int) error {
		mu.Lock()
		defer mu.Unlock()
		coverage[round] = rootRM.RoundCoverage.Value()
		reassembled := false
		for _, f := range restarts[round] {
			f()
			reassembled = true
		}
		if reassembled {
			// Give replacements a round boundary's grace: accept their
			// shard clients, redial upward, park as rejoiners.
			time.Sleep(500 * time.Millisecond)
		}
		if round >= 1 && round <= killWindow {
			for _, v := range leafPlan.Victims(round - 1) {
				v := v
				close(leaves[v].stop)
				restarts[round+1] = append(restarts[round+1], func() { restartLeaf(v, round+1) })
			}
			if len(intPlan.Victims(round-1)) > 0 {
				// Failure-domain restart: an interior restart mints a new
				// local session token, so its children cannot simply
				// rejoin — the whole subtree goes down and comes back.
				close(interior0.stop)
				close(leaves[0].stop)
				close(leaves[1].stop)
				restarts[round+1] = append(restarts[round+1], func() {
					interior0.wait() //nolint:errcheck
					leaves[0].wait() //nolint:errcheck
					leaves[1].wait() //nolint:errcheck
					interior0 = launchInterior(0, rootAddr)
					leaves[0] = launchShard(0, nil)
					leaves[1] = launchShard(1, nil)
				})
			}
		}
		return nil
	}

	addr, rootWait := startCoordinator(t, root)
	rootAddr = addr
	mu.Lock()
	interior0 = launchInterior(0, rootAddr)
	interior1 := launchInterior(1, rootAddr)
	for l := 0; l < 4; l++ {
		leaves[l] = launchShard(l, nil)
	}
	mu.Unlock()

	global, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root should survive the kill schedule: %v", rootErr)
	}
	if err := interior1.wait(); err != nil {
		t.Fatalf("interior 1: %v", err)
	}
	mu.Lock()
	finalInt0, finalLeaves := interior0, leaves
	mu.Unlock()
	if err := finalInt0.wait(); err != nil {
		t.Fatalf("restarted interior 0: %v", err)
	}
	for l, n := range finalLeaves {
		if err := n.wait(); err != nil {
			t.Fatalf("final instance of leaf %d: %v", l, err)
		}
		for i, err := range n.errs {
			if err != nil {
				t.Fatalf("final leaf %d client %d: %v", l, i, err)
			}
		}
	}

	acc := evalAccuracy(t, test, global)
	if acc < 0.35 {
		t.Fatalf("chaos tree accuracy %v, want ≥0.35", acc)
	}
	if diff := math.Abs(acc - refAcc); diff > 0.02 {
		t.Fatalf("chaos tree accuracy %v vs fault-free flat %v (diff %v, want ≤0.02)", acc, refAcc, diff)
	}
	if got := rootRM.TreeShardsLost.Value(); got < 1 {
		t.Fatalf("root recorded %d lost shards, want ≥1 (the interior kill)", got)
	}
	if got := intRM.TreeShardsLost.Value(); got < 1 {
		t.Fatalf("interiors recorded %d lost shards, want ≥1 (the leaf kills)", got)
	}
	if coverage[rounds-1] < 0.999 {
		t.Fatalf("final-round coverage %v, want ≈1 (the tree never fully healed)", coverage[rounds-1])
	}
}
