// Package transport runs the FedAvg protocol of internal/fl over TCP with
// gob-encoded messages, so clients and the aggregation server can live in
// separate processes (or machines). The in-process engine remains the
// default for experiments; this package demonstrates and tests the
// distributed deployment path on the loopback interface.
//
// Protocol (synchronous, one gob stream per client):
//
//	client → server: hello{ID, NumSamples}
//	repeat for each round:
//	    server → client: roundMsg{Round, Params}
//	    client → server: updateMsg{Update}
//	server → client: roundMsg{Done: true}
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"

	"github.com/cip-fl/cip/internal/fl"
)

type hello struct {
	ID         int
	NumSamples int
}

type roundMsg struct {
	Round  int
	Params []float64
	Done   bool
}

type updateMsg struct {
	U fl.Update
}

// Coordinator is the server side of the wire protocol.
type Coordinator struct {
	// NumClients is how many client connections to wait for before round 0.
	NumClients int
	// Rounds is the number of communication rounds to run.
	Rounds int
	// Initial is the initial global parameter vector.
	Initial []float64
	// Observers receive the same per-round view as in-process observers.
	Observers []fl.RoundObserver
}

type clientConn struct {
	id   int
	enc  *gob.Encoder
	dec  *gob.Decoder
	conn net.Conn
}

// ListenAndRun listens on addr, waits for NumClients clients, runs the
// configured number of rounds, and returns the final global parameters.
// Passing ":0" style addresses is supported; the bound address is reported
// through the optional ready callback before blocking on accepts.
func (c *Coordinator) ListenAndRun(addr string, ready func(boundAddr string)) ([]float64, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	defer ln.Close()
	if ready != nil {
		ready(ln.Addr().String())
	}

	conns := make([]*clientConn, 0, c.NumClients)
	for len(conns) < c.NumClients {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		cc := &clientConn{
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
			conn: conn,
		}
		var h hello
		if err := cc.dec.Decode(&h); err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: reading hello: %w", err)
		}
		cc.id = h.ID
		conns = append(conns, cc)
	}
	defer func() {
		for _, cc := range conns {
			cc.conn.Close()
		}
	}()
	// Deterministic aggregation order regardless of connect order.
	sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })

	global := make([]float64, len(c.Initial))
	copy(global, c.Initial)

	for round := 0; round < c.Rounds; round++ {
		updates := make([]fl.Update, len(conns))
		errs := make([]error, len(conns))
		var wg sync.WaitGroup
		for i, cc := range conns {
			wg.Add(1)
			go func(i int, cc *clientConn) {
				defer wg.Done()
				if err := cc.enc.Encode(roundMsg{Round: round, Params: global}); err != nil {
					errs[i] = fmt.Errorf("transport: sending round %d to client %d: %w", round, cc.id, err)
					return
				}
				var um updateMsg
				if err := cc.dec.Decode(&um); err != nil {
					errs[i] = fmt.Errorf("transport: reading update from client %d: %w", cc.id, err)
					return
				}
				updates[i] = um.U
			}(i, cc)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		snapshot := make([]float64, len(global))
		copy(snapshot, global)
		for _, o := range c.Observers {
			o.ObserveRound(round, snapshot, updates)
		}
		global = fl.Aggregate(updates)
	}

	for _, cc := range conns {
		if err := cc.enc.Encode(roundMsg{Done: true}); err != nil {
			return nil, fmt.Errorf("transport: sending done to client %d: %w", cc.id, err)
		}
	}
	return global, nil
}

// RunClient connects a local fl.Client to a coordinator at addr and
// participates until the coordinator signals completion.
func RunClient(addr string, client fl.Client) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	if err := enc.Encode(hello{ID: client.ID(), NumSamples: client.NumSamples()}); err != nil {
		return fmt.Errorf("transport: sending hello: %w", err)
	}
	for {
		var rm roundMsg
		if err := dec.Decode(&rm); err != nil {
			return fmt.Errorf("transport: reading round: %w", err)
		}
		if rm.Done {
			return nil
		}
		u, err := client.TrainLocal(rm.Round, rm.Params)
		if err != nil {
			return fmt.Errorf("transport: local training round %d: %w", rm.Round, err)
		}
		if err := enc.Encode(updateMsg{U: u}); err != nil {
			return fmt.Errorf("transport: sending update: %w", err)
		}
	}
}
