// Package transport runs the FedAvg protocol of internal/fl over TCP, so
// clients and the aggregation server can live in separate processes (or
// machines). The in-process engine remains the default for experiments;
// this package demonstrates and tests the distributed deployment path on
// the loopback interface.
//
// Protocol (synchronous, one stream per client). The handshake is always
// gob; the welcome settles which codec the rest of the session speaks:
//
//	client → server: hello{ID, NumSamples, Token, Codec, Compress, TopKFrac}
//	server → client: welcome{Token, NextRound, Resumed, Codec, Compress, TopKFrac}
//	repeat for each round (gob sessions):
//	    server → client: roundMsg{Round, Params, Durable}
//	    client → server: updateMsg{Update}
//	server → client: roundMsg{Done: true}
//	repeat for each round (binary sessions — internal/fl/wire frames):
//	    server → client: MsgRound frame
//	    client → server: MsgUpdate frame (possibly top-k/quantized delta)
//	server → client: MsgDone frame
//
// Codec negotiation. A client offers Codec "binary" (and optionally a
// compression mode) in its hello; a coordinator configured with Codec
// "binary" accepts the offer and echoes the settled values in the
// welcome. Either side omitting the offer keeps the session on gob —
// old clients interoperate with new coordinators and vice versa, because
// gob ignores unknown fields in both directions. Compressed updates are
// deltas against the broadcast global with client-side error feedback:
// the client accumulates what each lossy round dropped and folds it into
// the next round's delta, so the federation converges to the dense
// behavior; the residual rides in the rollback captures, keeping
// kill→restart→resume bit-identical under compression.
//
// Restart recovery. A coordinator given a checkpoint.Manager mints a
// session token, writes durable snapshots at the configured cadence, and
// announces the last durable round in every round message. Clients retain
// an in-memory capture of their local state for every round the server has
// not yet made durable. When the coordinator process dies and restarts
// from its snapshot, reconnecting clients present the session token, learn
// the resume round from the welcome, roll their local state back to the
// matching capture, and the federation continues bit-identically to an
// uninterrupted run. RunClientRetry rides out the outage with its existing
// backoff.
//
// Fault tolerance. With MinQuorum left at zero the coordinator is
// fail-stop: the first client error aborts the federation (the legacy
// behavior). Setting MinQuorum > 0 turns on quorum-based partial
// aggregation: clients that miss the RoundTimeout deadline, drop their
// connection, or send invalid updates (NaN/Inf/size mismatch) are removed
// from the roster and the round aggregates over the survivors, erroring
// only when fewer than MinQuorum valid updates remain. AcceptWindow bounds
// the initial roster wait so a federation can start with a partial roster
// of at least MinQuorum clients. All inbound gob messages are
// byte-bounded against the expected model size, so a misbehaving peer
// cannot make the coordinator allocate unbounded memory.
package transport

import (
	"bufio"
	crand "crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/robust"
	"github.com/cip-fl/cip/internal/fl/wire"
	"github.com/cip-fl/cip/internal/rng"
	"github.com/cip-fl/cip/internal/telemetry"
)

type hello struct {
	ID         int
	NumSamples int
	// Token is the session token from a previous connection; empty on a
	// client's first contact. A coordinator resumed from a snapshot uses it
	// to recognize returning participants.
	Token string
	// Codec offers a wire codec for the session ("binary"); empty or
	// "gob" keeps the legacy gob stream. Old coordinators never see the
	// field (gob drops it), so the offer degrades to gob automatically.
	Codec string
	// Compress offers an update-compression mode (compress.ParseMode
	// names); meaningful only with a binary codec offer.
	Compress string
	// TopKFrac is the offered top-k fraction for sparse modes (0 means
	// the default).
	TopKFrac float64
	// Partial offers the hierarchical partial-aggregation protocol: the
	// peer is a leaf aggregator that answers each round frame with a
	// MsgPartial (pre-division weighted sums) instead of a MsgUpdate.
	// Requires the binary codec. Old coordinators never see the field
	// (gob drops it) and answer with a welcome that lacks the
	// confirmation, so a leaf dialing a non-root fails loudly instead of
	// being silently treated as a plain client.
	Partial bool
	// PartialV offers a partial-protocol version alongside Partial: 2
	// adds coverage metadata, graceful degradation, robust sketches, and
	// the MsgRound2 broadcast. 0 (old leaves — gob drops the field) and 1
	// both mean the original MsgPartial exchange. The coordinator answers
	// with the settled version, never above the offer.
	PartialV int
}

// welcome is the coordinator's response to a valid hello.
type welcome struct {
	// Token identifies this federation session across coordinator
	// restarts; empty when the coordinator is not checkpointing.
	Token string
	// NextRound is the first round the coordinator will run with this
	// client — 0 on a fresh federation, the resume round after a restart.
	NextRound int
	// Resumed reports whether the coordinator restored from a snapshot.
	Resumed bool
	// Codec is the codec the coordinator settled on for this session:
	// "binary" iff both sides offered it; empty means gob. Old
	// coordinators leave it absent, which decodes as empty — gob.
	Codec string
	// Compress and TopKFrac echo the accepted compression config (empty
	// mode when the session is uncompressed).
	Compress string
	TopKFrac float64
	// Partial confirms the partial-aggregation protocol: this coordinator
	// is a root that will read MsgPartial answers from the peer.
	Partial bool
	// PartialV is the settled partial-protocol version (≤ the hello's
	// offer; 0 decodes as 1 for old roots, keeping new leaves on the v1
	// exchange against them).
	PartialV int
}

type roundMsg struct {
	Round  int
	Params []float64
	Done   bool
	// Durable is the highest round index covered by a durable snapshot
	// (-1 when nothing is durable yet). Clients may discard rollback
	// captures for rounds at or below it, keeping only what a restarted
	// coordinator could still rewind to.
	Durable int
}

type updateMsg struct {
	U fl.Update
}

// maxHelloBytes bounds the gob-encoded size of the handshake message; a
// hello is two ints, so 4 KiB is generous.
const maxHelloBytes = 4 << 10

// errMsgTooLarge is surfaced by budgetReader when a peer's message exceeds
// the size bound derived from the model.
var errMsgTooLarge = errors.New("transport: message exceeds size bound")

// budgetReader enforces a per-message byte allowance on a gob stream: the
// coordinator refreshes the allowance before each expected message, so a
// misbehaving peer cannot stream an arbitrarily large value into the
// decoder. The optional bytes counter feeds transport_decode_bytes_total.
type budgetReader struct {
	r     io.Reader
	n     int64
	bytes *telemetry.Counter
	// tally, when non-nil, accumulates received bytes atomically for the
	// coordinator's per-round byte accounting (independent of telemetry).
	tally *uint64
}

func (b *budgetReader) allow(n int64) { b.n = n }

func (b *budgetReader) Read(p []byte) (int, error) {
	if b.n <= 0 {
		return 0, errMsgTooLarge
	}
	if int64(len(p)) > b.n {
		p = p[:b.n]
	}
	n, err := b.r.Read(p)
	b.n -= int64(n)
	b.bytes.Add(uint64(n))
	if b.tally != nil {
		atomic.AddUint64(b.tally, uint64(n))
	}
	return n, err
}

// countWriter mirrors budgetReader on the outbound side: every byte the
// coordinator sends a client is counted into telemetry and the per-round
// tally.
type countWriter struct {
	w     io.Writer
	bytes *telemetry.Counter
	tally *uint64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.bytes.Add(uint64(n))
	if c.tally != nil {
		atomic.AddUint64(c.tally, uint64(n))
	}
	return n, err
}

// Coordinator is the server side of the wire protocol.
type Coordinator struct {
	// NumClients is how many client connections to wait for before round 0.
	NumClients int
	// Rounds is the number of communication rounds to run.
	Rounds int
	// Initial is the initial global parameter vector.
	Initial []float64
	// Observers receive the same per-round view as in-process observers;
	// observers implementing fl.FailureObserver are additionally told which
	// clients were dropped each round.
	Observers []fl.RoundObserver

	// MinQuorum, when > 0, enables fault-tolerant rounds: it is the
	// minimum number of connected clients needed to start and the minimum
	// number of valid updates a round must produce. 0 keeps the legacy
	// fail-stop behavior (all NumClients must stay healthy).
	MinQuorum int
	// RoundTimeout bounds each client's per-round exchange — sending the
	// global parameters, local training, and receiving the update — via
	// connection read/write deadlines. 0 disables deadlines. Stragglers
	// that miss the deadline are dropped from the roster (fault-tolerant
	// mode) or abort the federation (fail-stop mode).
	RoundTimeout time.Duration
	// AcceptWindow, when > 0, bounds how long ListenAndRun waits for the
	// full NumClients roster; when the window closes the federation starts
	// anyway as long as at least MinQuorum clients are connected.
	AcceptWindow time.Duration
	// MaxUpdateBytes bounds the encoded size of one client update; 0
	// derives a generous bound from len(Initial).
	MaxUpdateBytes int64
	// Codec, when "binary", accepts per-client binary-codec offers from
	// the welcome handshake (internal/fl/wire frames, optionally with
	// top-k/quantized update compression). Empty or "gob" answers every
	// offer with gob, which every client speaks.
	Codec string
	// MaxUpdateNorm, when > 0, rejects updates whose L2 norm exceeds it
	// (counted as validation rejections). 0 disables the bound.
	MaxUpdateNorm float64
	// Robust, when non-nil, replaces the sample-weighted FedAvg mean with
	// a Byzantine-resilient rule (internal/fl/robust). When the rule
	// trims, the post-trim contributor count is checked against MinQuorum
	// (fl.ErrQuorumAfterTrim).
	Robust robust.Aggregator
	// Reputation, when non-nil, scores per-client anomaly evidence and
	// enforces quarantine on the wire: quarantined clients receive no
	// round message (their connection stays open, so a later probation
	// re-admits them) and contribute nothing to the aggregate. The
	// tracker's state is persisted in the coordinator snapshot, so a
	// restart does not amnesty an attacker.
	Reputation *robust.Reputation

	// MaxInflightUpdates bounds how many client exchanges the streaming
	// fold admits at once (0 means 64). Each admitted exchange holds at
	// most one decoded update, so peak aggregator memory is
	// ~MaxInflightUpdates × 8·params regardless of roster size. Rosters
	// no larger than the window behave exactly like the buffered path:
	// every client exchanges concurrently and updates fold in client-ID
	// order.
	MaxInflightUpdates int
	// BufferRounds forces the legacy buffered round path (materialize
	// every update, then aggregate) even for configurations the streaming
	// fold could serve. The scale harness uses it as its baseline.
	BufferRounds bool
	// MaxBufferedUpdates caps the cohort size a buffered round may
	// materialize (0 = unlimited). Median/TrimmedMean, observers, and
	// reputation genuinely need the full update column, so their memory
	// is inherently O(cohort × params); the cap turns a silent OOM into
	// an explicit configuration error.
	MaxBufferedUpdates int
	// SampleFraction, when in (0, 1), samples a per-round cohort of
	// ~fraction × roster from the registered population: weighted without
	// replacement by each client's NumSamples, deterministic given
	// (SampleSeed, round), never below the quorum. Unsampled clients
	// simply receive no round frame and stay blocked on their next read.
	SampleFraction float64
	// SampleSeed seeds the cohort sampler; the per-round stream is
	// derived statelessly from (SampleSeed, round), so a restarted
	// coordinator resumes the same cohort schedule.
	SampleSeed int64
	// AcceptPartials runs the coordinator as an aggregation-tree parent:
	// every roster connection must be a child aggregator (hello with
	// Partial over the binary codec), each round reads one partial per
	// child, and the global advances by the weighted mean of the
	// children's pre-division sums — or, when Robust is set, by the
	// robust rule evaluated over the children's merged row sketches.
	// Requires Codec "binary" and no observers, reputation, or forced
	// buffering. Children may themselves be AcceptPartials coordinators
	// (interior nodes), making the tree arbitrary-depth.
	AcceptPartials bool
	// CoverageFloor, when in (0, 1], aborts a round whose coverage — the
	// fraction of the planned cohort weight that actually reached the
	// aggregate — falls below it. Degraded subtrees and lost shards pull
	// coverage down; the floor turns "quietly aggregate whatever arrived"
	// into an explicit operator policy. 0 accepts any covered fraction
	// that satisfies MinQuorum.
	CoverageFloor float64
	// TreeSketchCap is the per-subtree row-reservoir capacity (K) for
	// robust tree aggregation: child aggregators retain at most K client
	// rows each round and the root evaluates Robust over the merged
	// reservoir. ≤ 0 defaults to 64 when AcceptPartials && Robust != nil.
	// Results are exact below K total rows and within the documented DKW
	// rank bound above it (robust.SampleRankError).
	TreeSketchCap int
	// AcceptRejoins keeps the listener accepting after the federation
	// starts: newcomers are handshaked, parked, and admitted into the
	// roster at the next round boundary (replacing any dead same-ID
	// entry). This is how a killed-and-restarted leaf re-enters a running
	// tree.
	AcceptRejoins bool
	// ReadBufSize is the per-connection buffered-reader size in bytes (0
	// means bufio's default 4 KiB). Load harnesses with 10⁵ in-process
	// connections shrink it so roster memory stays flat.
	ReadBufSize int

	// Checkpoint, when non-nil, makes the federation durable: a snapshot
	// of the coordinator state is written through it at the
	// CheckpointEvery cadence (and on Stop), and round messages announce
	// which rounds are durable so clients can bound their rollback
	// captures.
	Checkpoint *checkpoint.Manager
	// CheckpointEvery is the snapshot cadence in rounds (≤ 1 means every
	// round). The final round always snapshots.
	CheckpointEvery int
	// Restore, when non-nil, resumes the federation from a snapshot
	// (typically Checkpoint.Load()): the global parameters, round index,
	// failure counters, and session token all continue from it.
	Restore *checkpoint.Snapshot
	// Stop, when signaled (closed), ends the run at the next round
	// boundary: a final snapshot is written (when checkpointing) and
	// ListenAndRun returns fl.ErrStopped.
	Stop <-chan struct{}
	// AfterRound, when non-nil, runs after each completed round and its
	// checkpoint write; an error aborts the run immediately (the
	// crash-injection harness simulates coordinator death through it).
	AfterRound func(round int) error

	// Metrics, when non-nil, receives wire-layer telemetry (accepted
	// conns, decode bytes/failures, straggler drops, rejoins).
	Metrics *Metrics
	// RoundMetrics, when non-nil, receives the same per-round telemetry
	// the in-process engine records (round duration, participating and
	// dropped clients, validation rejections).
	RoundMetrics *fl.Metrics
}

func (c *Coordinator) faultTolerant() bool { return c.MinQuorum > 0 }

// quorum is the effective minimum client/update count per round.
func (c *Coordinator) quorum() int {
	if c.MinQuorum > 0 {
		return c.MinQuorum
	}
	return c.NumClients
}

func (c *Coordinator) updateBudget() int64 {
	if c.MaxUpdateBytes > 0 {
		return c.MaxUpdateBytes
	}
	// gob encodes a float64 in at most 9 bytes; 16×params plus slack
	// admits any honest update with a wide margin.
	return 64<<10 + 16*int64(len(c.Initial))
}

// partialBudget is the per-partial receive allowance: the update budget
// widened by the worst-case size of a sketch at the distributed capacity
// (K keys at 8 bytes plus K rows of 8·params each).
func (c *Coordinator) partialBudget(sketchCap int) int64 {
	b := c.updateBudget()
	if sketchCap > 0 {
		b += int64(sketchCap)*8*int64(len(c.Initial)+1) + 1024
	}
	return b
}

// treeSketchCap is the row-reservoir capacity this parent distributes to
// its partial-v2 children: the configured TreeSketchCap, defaulting to 64
// when a robust rule needs rows at all, and 0 (no sketches) for
// mean-family trees.
func (c *Coordinator) treeSketchCap() int {
	if !c.AcceptPartials {
		return 0
	}
	if c.TreeSketchCap > 0 {
		return c.TreeSketchCap
	}
	if c.Robust != nil {
		return 64
	}
	return 0
}

type clientConn struct {
	id      int
	samples int
	enc     *gob.Encoder
	dec     *gob.Decoder
	lim     *budgetReader
	// br is the single buffered reader over lim shared by the gob
	// handshake and the binary frame path. Gob decoders buffer their
	// input, so the frame reader MUST go through the same buffer — raw
	// reads on lim would miss any bytes gob read ahead.
	br   *bufio.Reader
	w    *countWriter
	conn net.Conn
	// binary marks a session negotiated onto the wire-frame codec; cfg is
	// its accepted compression config (Mode None when uncompressed).
	binary bool
	cfg    compress.Config
	// partial marks a leaf-aggregator session: rounds exchange MsgPartial
	// frames instead of updates. partialV is the settled protocol version
	// (1 or 2); v2 children receive MsgRound2 broadcasts and may answer
	// with MsgPartial2 (coverage metadata + sketch).
	partial  bool
	partialV int
	// hadToken records whether the hello carried a session token (feeds
	// the rejoin counter on resumed federations).
	hadToken bool
}

// newConnReader sizes one connection's buffered reader. The default 4 KiB
// is right for a handful of TCP peers; a 100k-connection load harness
// shrinks it so roster memory stays proportional to the window, not the
// population.
func newConnReader(r io.Reader, size int) *bufio.Reader {
	if size > 0 {
		return bufio.NewReaderSize(r, size)
	}
	return bufio.NewReader(r)
}

// decodeUpdate is the byte-budgeted inbound path for one client update:
// refresh the reader's allowance, gob-decode, stamp the authoritative
// client ID (clients cannot impersonate others in the per-round observer
// view), and validate against the expected parameter length. It must
// never panic on hostile bytes — only return an error (fuzzed by
// FuzzDecodeUpdate).
func decodeUpdate(dec *gob.Decoder, lim *budgetReader, budget int64,
	clientID, wantLen int, maxNorm float64) (fl.Update, error) {
	lim.allow(budget)
	var um updateMsg
	if err := dec.Decode(&um); err != nil {
		return fl.Update{}, err
	}
	um.U.ClientID = clientID
	if um.U.Sparse() {
		// The gob protocol is dense-only; sparse shapes arrive exclusively
		// through negotiated binary frames. A gob client poking the new
		// Update fields costs itself the round, not the federation.
		return fl.Update{}, errInvalid{fmt.Errorf(
			"fl: client %d sent a sparse/delta update over the gob protocol", clientID)}
	}
	if err := fl.ValidateUpdateBounded(um.U, wantLen, maxNorm); err != nil {
		return fl.Update{}, errInvalid{err}
	}
	return um.U, nil
}

// decodeUpdateFrame is decodeUpdate's binary twin: read one frame under
// the byte budget, structurally decode it, densify any compressed shape
// against the broadcast global (which performs the semantic sparse-index
// validation), stamp the authoritative client ID, and validate. Hostile
// bytes can only produce an error — wire.ReadFrame checks declared
// lengths against the budget before allocating and wire.DecodeUpdate runs
// under a panic guard (fuzzed by FuzzDecodeFrame).
func decodeUpdateFrame(r io.Reader, lim *budgetReader, budget int64, accepted compress.Mode,
	clientID int, global []float64, maxNorm float64) (fl.Update, compress.Mode, error) {
	lim.allow(wire.HeaderLen + budget)
	f, err := wire.ReadFrame(r, int(budget))
	if err != nil {
		if errors.Is(err, wire.ErrBudget) || errors.Is(err, wire.ErrPayload) ||
			errors.Is(err, wire.ErrTruncated) {
			return fl.Update{}, compress.None, errInvalid{err}
		}
		return fl.Update{}, compress.None, err
	}
	defer f.Release()
	if f.Type != wire.MsgUpdate {
		return fl.Update{}, f.Mode, errInvalid{fmt.Errorf("wire: expected update frame, got type %d", f.Type)}
	}
	// A client may always fall back to an uncompressed update (mode None)
	// — e.g. for a final fine-grained round — but cannot unilaterally
	// switch to a mode the handshake did not accept.
	if f.Mode != accepted && f.Mode != compress.None {
		return fl.Update{}, f.Mode, errInvalid{fmt.Errorf(
			"wire: client %d sent mode %s, negotiated %s", clientID, f.Mode, accepted)}
	}
	u, err := wire.DecodeUpdate(f.Mode, f.Payload)
	if err != nil {
		return fl.Update{}, f.Mode, errInvalid{err}
	}
	u.ClientID = clientID
	if u, err = fl.Densify(u, global); err != nil {
		return fl.Update{}, f.Mode, errInvalid{err}
	}
	if err := fl.ValidateUpdateBounded(u, len(global), maxNorm); err != nil {
		return fl.Update{}, f.Mode, errInvalid{err}
	}
	return u, f.Mode, nil
}

// roundCtx carries one round's shared exchange parameters. bcast, when
// non-nil, is the pre-encoded MsgRound frame shared read-only by every
// binary connection — the per-round encoding cost is paid once, not per
// client. bcast2 is its MsgRound2 twin for partial-v2 children, carrying
// the root-coordinated sample directive and sketch capacity (r2 holds the
// decoded form for the per-connection fallback encode).
type roundCtx struct {
	round   int
	durable int
	global  []float64
	bcast   []byte
	bcast2  []byte
	r2      wire.Round2
	timeout time.Duration
	budget  int64
	maxNorm float64
	met     *Metrics
}

// exchange runs one round against one client: send the globals, wait for
// the update, validate it. RoundTimeout (when set) covers the whole
// exchange through connection deadlines.
func (cc *clientConn) exchange(rc *roundCtx, out *fl.Update) error {
	if rc.timeout > 0 {
		cc.conn.SetDeadline(time.Now().Add(rc.timeout)) //nolint:errcheck
		defer cc.conn.SetDeadline(time.Time{})          //nolint:errcheck
	}
	if cc.binary {
		return cc.exchangeBinary(rc, out)
	}
	if err := cc.enc.Encode(roundMsg{Round: rc.round, Params: rc.global, Durable: rc.durable}); err != nil {
		return fmt.Errorf("transport: sending round %d to client %d: %w", rc.round, cc.id, err)
	}
	u, err := decodeUpdate(cc.dec, cc.lim, rc.budget, cc.id, len(rc.global), rc.maxNorm)
	if err != nil {
		if !errors.As(err, &errInvalid{}) {
			rc.met.decodeFailure()
			return fmt.Errorf("transport: reading update from client %d: %w", cc.id, err)
		}
		return fmt.Errorf("transport: round %d: %w", rc.round, err)
	}
	*out = u
	return nil
}

// sendRound writes the round frame for a binary session, preferring the
// round's shared broadcast bytes over a per-connection encode. Partial-v2
// children get the MsgRound2 broadcast (sampling directive + sketch cap);
// everyone else gets the v1 MsgRound.
func (cc *clientConn) sendRound(rc *roundCtx) error {
	buf := rc.bcast
	var pooled []byte
	if cc.partialV >= 2 {
		if buf = rc.bcast2; buf == nil {
			r2 := rc.r2
			r2.Round, r2.Durable, r2.Params = rc.round, rc.durable, rc.global
			pooled = wire.GetBuffer(wire.HeaderLen + wire.Round2PayloadLen(len(rc.global)))[:0]
			pooled = wire.AppendRound2Frame(pooled, r2)
			buf = pooled
		}
	} else if buf == nil {
		pooled = wire.GetBuffer(wire.HeaderLen + wire.RoundPayloadLen(len(rc.global)))[:0]
		pooled = wire.AppendRoundFrame(pooled, rc.round, rc.durable, rc.global)
		buf = pooled
	}
	_, err := cc.w.Write(buf)
	if pooled != nil {
		wire.PutBuffer(pooled)
	}
	if err != nil {
		return fmt.Errorf("transport: sending round %d to client %d: %w", rc.round, cc.id, err)
	}
	return nil
}

// exchangeBinary is exchange over wire frames: broadcast the MsgRound
// frame, then decode the (possibly compressed) update.
func (cc *clientConn) exchangeBinary(rc *roundCtx, out *fl.Update) error {
	if err := cc.sendRound(rc); err != nil {
		return err
	}
	u, mode, err := decodeUpdateFrame(cc.br, cc.lim, rc.budget, cc.cfg.Mode, cc.id, rc.global, rc.maxNorm)
	if err != nil {
		if !errors.As(err, &errInvalid{}) {
			rc.met.decodeFailure()
			return fmt.Errorf("transport: reading update from client %d: %w", cc.id, err)
		}
		return fmt.Errorf("transport: round %d: %w", rc.round, err)
	}
	if mode != compress.None {
		rc.met.compressedUpdate()
	}
	*out = u
	return nil
}

// exchangePartial is the root side of one leaf exchange: broadcast the
// round frame, then read the MsgPartial carrying the leaf's pre-division
// weighted sums, structurally decoded and semantically validated (round
// match, weight/count positivity, finiteness, implied-mean norm bound).
func (cc *clientConn) exchangePartial(rc *roundCtx, out *fl.Partial) error {
	if rc.timeout > 0 {
		cc.conn.SetDeadline(time.Now().Add(rc.timeout)) //nolint:errcheck
		defer cc.conn.SetDeadline(time.Time{})          //nolint:errcheck
	}
	if err := cc.sendRound(rc); err != nil {
		return err
	}
	cc.lim.allow(wire.HeaderLen + rc.budget)
	f, err := wire.ReadFrame(cc.br, int(rc.budget))
	if err != nil {
		if errors.Is(err, wire.ErrBudget) || errors.Is(err, wire.ErrPayload) ||
			errors.Is(err, wire.ErrTruncated) {
			return fmt.Errorf("transport: round %d: %w", rc.round, errInvalid{err})
		}
		rc.met.decodeFailure()
		return fmt.Errorf("transport: reading partial from leaf %d: %w", cc.id, err)
	}
	defer f.Release()
	var p fl.Partial
	switch {
	case f.Type == wire.MsgPartial:
		p, err = wire.DecodePartial(f.Payload)
	case f.Type == wire.MsgPartial2 && cc.partialV >= 2:
		p, err = wire.DecodePartial2(f.Payload)
	default:
		return fmt.Errorf("transport: round %d: %w", rc.round,
			errInvalid{fmt.Errorf("wire: expected partial frame, got type %d (v%d session)", f.Type, cc.partialV)})
	}
	if err != nil {
		return fmt.Errorf("transport: round %d: %w", rc.round, errInvalid{err})
	}
	// The leaf ID is stamped from the authenticated connection, so one
	// leaf cannot impersonate another in failure accounting.
	p.LeafID = cc.id
	if p.Round != rc.round {
		return fmt.Errorf("transport: round %d: %w", rc.round,
			errInvalid{fmt.Errorf("fl: leaf %d sent a partial for round %d", cc.id, p.Round)})
	}
	if err := fl.ValidatePartial(p, len(rc.global), rc.maxNorm); err != nil {
		return fmt.Errorf("transport: round %d: %w", rc.round, errInvalid{err})
	}
	*out = p
	return nil
}

// errInvalid tags validation failures so failureReason can classify them.
type errInvalid struct{ err error }

func (e errInvalid) Error() string { return e.err.Error() }
func (e errInvalid) Unwrap() error { return e.err }

func failureReason(err error) fl.FailureReason {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fl.FailTimeout
	}
	if errors.As(err, &errInvalid{}) || errors.Is(err, errMsgTooLarge) {
		return fl.FailInvalid
	}
	return fl.FailTransport
}

// negotiate settles one client's codec and compression from its hello.
// The binary codec requires both sides to offer it; compression
// additionally requires a parseable mode. A nonsense compression offer is
// an error (a bad hello), not a silent downgrade.
func (c *Coordinator) negotiate(h hello) (binary bool, cfg compress.Config, err error) {
	binary = c.Codec == wire.CodecBinary && h.Codec == wire.CodecBinary
	if h.Compress == "" {
		return binary, compress.Config{}, nil
	}
	mode, err := compress.ParseMode(h.Compress)
	if err != nil {
		return false, compress.Config{}, fmt.Errorf("transport: client %d: %w", h.ID, err)
	}
	if !binary {
		// Compression only exists on the frame codec; a gob session
		// silently ignoring the offer would surprise the client, so the
		// welcome simply echoes no compression and the client sends dense.
		return binary, compress.Config{}, nil
	}
	return binary, compress.Config{Mode: mode, TopKFrac: h.TopKFrac}.WithDefaults(), nil
}

// handshake performs the server side of one connection's gob handshake:
// read the hello under the byte budget, enforce the session token, and
// settle codec/compression/partial. It deliberately does NOT send the
// welcome — rejoin admission defers the welcome to a round boundary,
// where the promised NextRound is stable.
func (c *Coordinator) handshake(conn net.Conn, token string, rxTally, txTally *uint64) (*clientConn, error) {
	lim := &budgetReader{r: conn, bytes: c.Metrics.decodeBytesCounter(), tally: rxTally}
	cw := &countWriter{w: conn, bytes: c.Metrics.txBytesCounter(), tally: txTally}
	br := newConnReader(lim, c.ReadBufSize)
	cc := &clientConn{
		enc:  gob.NewEncoder(cw),
		dec:  gob.NewDecoder(br),
		lim:  lim,
		br:   br,
		w:    cw,
		conn: conn,
	}
	lim.allow(maxHelloBytes)
	var h hello
	if err := cc.dec.Decode(&h); err != nil {
		c.Metrics.decodeFailure()
		return nil, fmt.Errorf("transport: reading hello: %w", err)
	}
	if h.Token != "" && h.Token != token {
		// A client from some other (or stale) session; admitting it
		// would silently break resume bit-identity.
		return nil, fmt.Errorf("transport: client %d presented an unknown session token", h.ID)
	}
	binary, cfg, err := c.negotiate(h)
	if err != nil {
		return nil, err
	}
	partial := h.Partial
	if partial && c.AcceptPartials && !binary {
		return nil, fmt.Errorf("transport: leaf %d offered partials without the binary codec", h.ID)
	}
	if partial && !c.AcceptPartials {
		// A leaf dialed a plain coordinator: decline the offer in the
		// welcome; the leaf sees the missing confirmation and bails.
		partial = false
	}
	if c.AcceptPartials && !partial {
		return nil, fmt.Errorf("transport: client %d does not speak the partial protocol this root requires", h.ID)
	}
	cc.id = h.ID
	cc.samples = h.NumSamples
	cc.binary = binary
	cc.cfg = cfg
	cc.partial = partial
	if partial {
		// Settle the partial version at min(offer, 2); 0 offers come from
		// pre-PartialV leaves and mean v1.
		cc.partialV = 1
		if h.PartialV >= 2 {
			cc.partialV = 2
		}
	}
	cc.hadToken = h.Token != ""
	return cc, nil
}

// welcomeFor specializes the session welcome for one connection: it
// carries the codec, compression, and partial-protocol confirmation that
// particular handshake settled on, so mixed rosters (old gob clients
// beside compressed binary ones) are first-class.
func (c *Coordinator) welcomeFor(cc *clientConn, w welcome) welcome {
	if cc.binary {
		w.Codec = wire.CodecBinary
		if cc.cfg.Mode != compress.None {
			w.Compress = cc.cfg.Mode.String()
			w.TopKFrac = cc.cfg.TopKFrac
		}
	}
	w.Partial = cc.partial
	w.PartialV = cc.partialV
	return w
}

// acceptClients collects the initial roster, answering each valid hello
// with a welcome carrying the session token, resume round, and the
// settled codec/compression for that client. Any connection accepted
// before an error is closed before returning, so a bad hello from client
// n does not leak clients 1..n-1. rxTally/txTally feed the coordinator's
// per-round byte accounting.
func (c *Coordinator) acceptClients(ln net.Listener, w welcome, rxTally, txTally *uint64) (conns []*clientConn, err error) {
	defer func() {
		if err != nil {
			for _, cc := range conns {
				cc.conn.Close()
			}
		}
	}()
	var deadline time.Time
	if c.AcceptWindow > 0 {
		deadline = time.Now().Add(c.AcceptWindow)
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline) //nolint:errcheck
		}
	}
	seen := make(map[int]bool, c.NumClients)
	for len(conns) < c.NumClients {
		conn, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !deadline.IsZero() {
				if len(conns) >= c.quorum() {
					return conns, nil // start with the partial roster
				}
				return conns, fmt.Errorf("transport: accept window closed with %d of %d clients, need %d",
					len(conns), c.NumClients, c.quorum())
			}
			return conns, fmt.Errorf("transport: accept: %w", err)
		}
		if !deadline.IsZero() {
			conn.SetReadDeadline(deadline) //nolint:errcheck
		}
		cc, herr := c.handshake(conn, w.Token, rxTally, txTally)
		if herr == nil && seen[cc.id] {
			herr = fmt.Errorf("transport: duplicate client id %d", cc.id)
		}
		if herr == nil {
			if werr := cc.enc.Encode(c.welcomeFor(cc, w)); werr != nil {
				herr = fmt.Errorf("transport: sending welcome to client %d: %w", cc.id, werr)
			}
		}
		if herr != nil {
			conn.Close()
			if c.faultTolerant() {
				continue // tolerate a bad peer; keep waiting for the rest
			}
			return conns, herr
		}
		if cc.hadToken && w.Resumed {
			c.Metrics.rejoin()
		}
		seen[cc.id] = true
		conn.SetReadDeadline(time.Time{}) //nolint:errcheck
		conns = append(conns, cc)
		c.Metrics.connAccepted()
		c.Metrics.codecNegotiated(cc.binary)
	}
	return conns, nil
}

// newToken mints a session token for a durable federation.
func newToken() (string, error) {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "", fmt.Errorf("transport: minting session token: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// ListenAndRun listens on addr, waits for the client roster, runs the
// configured number of rounds, and returns the final global parameters.
// Passing ":0" style addresses is supported; the bound address is reported
// through the optional ready callback before blocking on accepts.
//
// With a Checkpoint manager attached the run is durable: snapshots land on
// the CheckpointEvery cadence, a Stop signal exits cleanly at the next
// round boundary (final snapshot, fl.ErrStopped), and a coordinator
// constructed with Restore continues a previous session where its last
// snapshot left off.
func (c *Coordinator) ListenAndRun(addr string, ready func(boundAddr string)) ([]float64, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	defer ln.Close()
	return c.RunWithListener(ln, ready)
}

// RetryConfig controls RunClientRetry's dial behavior: attempts, the
// exponential backoff schedule, and its jitter.
type RetryConfig struct {
	// MaxAttempts is the total number of connection attempts; values ≤ 1
	// mean a single attempt (no retry).
	MaxAttempts int
	// BaseDelay is the delay before the first retry (default 200ms); each
	// further retry doubles it up to MaxDelay (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter randomizes each delay multiplicatively in
	// [1-Jitter, 1+Jitter]; 0 defaults to 0.2, negative disables jitter.
	Jitter float64
	// JitterSrc is the injectable randomness behind the jitter — an
	// internal/rng SplitMix64 source, so tests can seed (and if need be
	// serialize) the exact backoff schedule. Nil uses seed 1. Do not share
	// one source between concurrently retrying clients.
	JitterSrc *rng.Source
	// Rng, when non-nil, overrides JitterSrc entirely (legacy hook).
	Rng *rand.Rand
	// Dial overrides the dialer (fault-injection hook); nil dials TCP.
	Dial func(addr string) (net.Conn, error)
	// Codec, when "binary", offers the wire-frame codec in the hello; the
	// session uses it iff the coordinator accepts. Empty or "gob" stays
	// on gob. Setting Compress implies the binary offer.
	Codec string
	// Compress offers an update-compression mode (compress.ParseMode
	// names: topk, q8, q16, topk8, topk16); empty sends dense updates.
	// Effective only when the coordinator accepts the binary codec.
	Compress string
	// TopKFrac is the top-k fraction offered with sparse modes (0 means
	// the compress package default, 1%).
	TopKFrac float64
	// Stop, when signaled (closed), aborts the client cleanly:
	// RunClientRetry returns ErrClientStopped instead of dialing again,
	// sleeping out a backoff, or blocking on the next round message.
	Stop <-chan struct{}
	// Metrics, when non-nil, counts retry attempts
	// (transport_retry_attempts_total).
	Metrics *Metrics
}

func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.MaxAttempts < 1 {
		rc.MaxAttempts = 1
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 200 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 5 * time.Second
	}
	if rc.Jitter == 0 {
		rc.Jitter = 0.2
	}
	if rc.Jitter < 0 {
		rc.Jitter = 0
	}
	if rc.Rng == nil {
		if rc.JitterSrc == nil {
			rc.JitterSrc = rng.NewSource(1)
		}
		rc.Rng = rand.New(rc.JitterSrc)
	}
	if rc.Dial == nil {
		rc.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if rc.Compress != "" && rc.Codec == "" {
		rc.Codec = wire.CodecBinary // compression exists only on the frame codec
	}
	return rc
}

// backoff returns the sleep before the attempt-th retry (attempt ≥ 1).
func (rc RetryConfig) backoff(attempt int) time.Duration {
	d := rc.BaseDelay
	for i := 1; i < attempt && d < rc.MaxDelay; i++ {
		d *= 2
	}
	if d > rc.MaxDelay {
		d = rc.MaxDelay
	}
	if rc.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + rc.Jitter*(rc.Rng.Float64()*2-1)))
	}
	return d
}

// ErrClientStopped is returned by RunClientRetry when the client is shut
// down through RetryConfig.Stop. It signals a clean, deliberate exit, not
// a failure.
var ErrClientStopped = errors.New("transport: client stopped")

// errFatal tags session errors no retry can fix (protocol violations,
// training failures, impossible rollbacks).
type errFatal struct{ err error }

func (e errFatal) Error() string { return e.err.Error() }
func (e errFatal) Unwrap() error { return e.err }

// sessionState is what a client carries across reconnects of one
// federation session: the session token, its training position, and
// rollback captures of its local state for every round the coordinator has
// not yet made durable.
type sessionState struct {
	token     string
	nextRound int
	joined    bool
	// captures maps completed round r to the client's post-round-r local
	// state; entries at or below the announced durable round are pruned.
	captures map[int][]byte
	// noCapture is set after CaptureState fails once (a client not built
	// for statefulness); further rounds skip the attempt.
	noCapture bool
	// residual is the error-feedback accumulator of a compressed binary
	// session: everything past lossy rounds dropped, folded into the next
	// round's delta. resCaptures snapshots it per completed round
	// alongside captures, so a rollback restores the residual the resumed
	// round's compression depends on — without it, a resumed federation
	// would diverge from an uninterrupted one.
	residual    []float64
	resCaptures map[int][]float64
}

// RunClient connects a local fl.Client to a coordinator at addr and
// participates until the coordinator signals completion. It makes a single
// connection attempt; see RunClientRetry for backoff.
func RunClient(addr string, client fl.Client) error {
	return RunClientRetry(addr, client, RetryConfig{MaxAttempts: 1})
}

// RunClientRetry is RunClient with dial retry and restart recovery:
// connection attempts that fail before the coordinator has started the
// federation are retried with exponential backoff and jitter, so clients
// can be launched before the server is up. Against a durable coordinator
// (one that issued a session token) mid-federation connection losses are
// also retried: the client reconnects, presents the token, rolls its local
// state back to the coordinator's resume round, and continues — with the
// attempt budget refreshed every time a reconnect makes progress, so a
// long outage is bounded by MaxAttempts of consecutive futile dials, not
// by total dials. Against a non-durable coordinator mid-federation errors
// remain fatal (there is nothing to rejoin).
func RunClientRetry(addr string, client fl.Client, rc RetryConfig) error {
	rc = rc.withDefaults()
	st := &sessionState{captures: make(map[int][]byte)}
	var err error
	for attempt := 1; attempt <= rc.MaxAttempts; attempt++ {
		if attempt > 1 {
			rc.Metrics.retryAttempt()
			if !sleepOrStop(rc.backoff(attempt-1), rc.Stop) {
				return ErrClientStopped
			}
		}
		if stopped(rc.Stop) {
			return ErrClientStopped
		}
		joinedBefore, roundBefore := st.joined, st.nextRound
		err = runSession(addr, client, rc, st)
		if err == nil || errors.Is(err, ErrClientStopped) || errors.As(err, &errFatal{}) {
			return err
		}
		if st.joined && st.token == "" {
			// Legacy fail-stop session: the coordinator cannot resume, so a
			// mid-federation drop is final.
			return err
		}
		if st.joined != joinedBefore || st.nextRound > roundBefore {
			attempt = 1 // progress: refresh the backoff budget
		}
	}
	return err
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// sleepOrStop sleeps for d, returning false early if stop fires.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if stop == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// clientFrameBudget bounds one inbound frame on the client side. Clients
// do not know the model size before the first round frame arrives, so the
// bound is a generous constant rather than model-derived.
const clientFrameBudget = 1 << 30

// runSession runs one connect-train session, updating st as the federation
// progresses so a later session can resume.
func runSession(addr string, client fl.Client, rc RetryConfig, st *sessionState) error {
	stop := rc.Stop
	conn, err := rc.Dial(addr)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()

	// While this session blocks in a read, a Stop signal unblocks it by
	// expiring the read deadline; the session then reports ErrClientStopped.
	if stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-stop:
				conn.SetReadDeadline(time.Now()) //nolint:errcheck
			case <-done:
			}
		}()
	}
	stopErr := func(err error) error {
		if stopped(stop) {
			return ErrClientStopped
		}
		return err
	}

	enc := gob.NewEncoder(conn)
	// The gob decoder buffers its input; the binary frame loop must read
	// from the same buffer or it would miss bytes the welcome decode read
	// ahead (the first round frame can arrive right behind the welcome).
	br := bufio.NewReader(conn)
	dec := gob.NewDecoder(br)
	if err := enc.Encode(hello{
		ID: client.ID(), NumSamples: client.NumSamples(), Token: st.token,
		Codec: rc.Codec, Compress: rc.Compress, TopKFrac: rc.TopKFrac,
	}); err != nil {
		return stopErr(fmt.Errorf("transport: sending hello: %w", err))
	}
	var w welcome
	if err := dec.Decode(&w); err != nil {
		return stopErr(fmt.Errorf("transport: reading welcome: %w", err))
	}
	if st.token == "" {
		st.token = w.Token
	} else if w.Token != st.token {
		return errFatal{fmt.Errorf("transport: coordinator session token changed mid-federation")}
	}
	// The welcome settles the session codec: binary iff the coordinator
	// accepted the offer (old coordinators leave the field empty — gob).
	binary := w.Codec == wire.CodecBinary
	var cfg compress.Config
	if binary && w.Compress != "" {
		mode, err := compress.ParseMode(w.Compress)
		if err != nil {
			return errFatal{fmt.Errorf("transport: coordinator accepted unknown compression: %w", err)}
		}
		cfg = compress.Config{Mode: mode, TopKFrac: w.TopKFrac}.WithDefaults()
	}
	if w.NextRound < st.nextRound {
		// The coordinator lost rounds this client already trained; rewind
		// to the capture matching its resume point.
		if err := rollback(client, st, w.NextRound, cfg.Mode != compress.None); err != nil {
			return errFatal{err}
		}
	}
	st.nextRound = w.NextRound

	if binary {
		return runRoundsBinary(conn, br, client, cfg, stopErr, st)
	}
	for {
		var rm roundMsg
		if err := dec.Decode(&rm); err != nil {
			return stopErr(fmt.Errorf("transport: reading round: %w", err))
		}
		st.joined = true
		if rm.Done {
			return nil
		}
		pruneCaptures(st, rm.Durable)
		u, err := client.TrainLocal(rm.Round, rm.Params)
		if err != nil {
			return errFatal{fmt.Errorf("transport: local training round %d: %w", rm.Round, err)}
		}
		if err := enc.Encode(updateMsg{U: u}); err != nil {
			return stopErr(fmt.Errorf("transport: sending update: %w", err))
		}
		st.nextRound = rm.Round + 1
		capture(client, st, rm.Round, nil)
	}
}

// runRoundsBinary is the round loop of a binary-codec session: wire
// frames both directions, with optional compressed (error-feedback)
// updates. The hello/welcome handshake already happened over gob.
func runRoundsBinary(conn net.Conn, r io.Reader, client fl.Client, cfg compress.Config,
	stopErr func(error) error, st *sessionState) error {
	for {
		f, err := wire.ReadFrame(r, clientFrameBudget)
		if err != nil {
			return stopErr(fmt.Errorf("transport: reading round frame: %w", err))
		}
		st.joined = true
		if f.Type == wire.MsgDone {
			f.Release()
			return nil
		}
		if f.Type != wire.MsgRound {
			f.Release()
			return errFatal{fmt.Errorf("transport: unexpected frame type %d mid-federation", f.Type)}
		}
		round, durable, params, err := wire.DecodeRound(f.Payload)
		f.Release()
		if err != nil {
			return errFatal{fmt.Errorf("transport: decoding round frame: %w", err)}
		}
		pruneCaptures(st, durable)
		u, err := client.TrainLocal(round, params)
		if err != nil {
			return errFatal{fmt.Errorf("transport: local training round %d: %w", round, err)}
		}
		if err := sendUpdateBinary(conn, u, params, cfg, st); err != nil {
			return stopErr(err)
		}
		st.nextRound = round + 1
		var resid []float64
		if cfg.Mode != compress.None {
			resid = st.residual
		}
		capture(client, st, round, resid)
	}
}

// sendUpdateBinary encodes and sends one update frame. Uncompressed
// sessions send the raw dense parameters; compressed ones send the
// delta against the broadcast global with the error-feedback residual
// folded in, and keep what the lossy codec dropped as the new residual.
func sendUpdateBinary(conn net.Conn, u fl.Update, broadcast []float64,
	cfg compress.Config, st *sessionState) error {
	var (
		frame []byte
		err   error
	)
	if cfg.Mode == compress.None {
		buf := wire.GetBuffer(wire.HeaderLen + wire.UpdatePayloadLen(compress.None, len(u.Params), 0))[:0]
		frame, err = wire.AppendUpdateFrame(buf, u, nil, compress.None)
	} else {
		if len(u.Params) != len(broadcast) {
			return errFatal{fmt.Errorf("transport: client %d produced %d params for a %d-param model",
				u.ClientID, len(u.Params), len(broadcast))}
		}
		delta := make([]float64, len(u.Params))
		for i := range delta {
			delta[i] = u.Params[i] - broadcast[i]
		}
		var d *compress.Delta
		var newRes []float64
		d, newRes, err = cfg.CompressEF(delta, st.residual)
		if err != nil {
			return errFatal{fmt.Errorf("transport: compressing update: %w", err)}
		}
		buf := wire.GetBuffer(wire.HeaderLen + wire.UpdatePayloadLen(cfg.Mode, d.Len, len(d.Indices)))[:0]
		frame, err = wire.AppendUpdateFrame(buf, u, d, cfg.Mode)
		if err == nil {
			// The residual advances only once the frame is built; a
			// send failure after this point is fine — the round will be
			// replayed from a rollback capture, which restores it.
			st.residual = newRes
		}
	}
	if err != nil {
		wire.PutBuffer(frame)
		return errFatal{fmt.Errorf("transport: encoding update: %w", err)}
	}
	_, werr := conn.Write(frame)
	wire.PutBuffer(frame)
	if werr != nil {
		return fmt.Errorf("transport: sending update: %w", werr)
	}
	return nil
}

// pruneCaptures drops rollback captures (state and residual) for rounds
// the coordinator has made durable — it can never rewind past them.
func pruneCaptures(st *sessionState, durable int) {
	for r := range st.captures {
		if r < durable {
			delete(st.captures, r)
		}
	}
	for r := range st.resCaptures {
		if r < durable {
			delete(st.resCaptures, r)
		}
	}
}

// capture records the client's post-round state for possible rollback,
// plus the compression residual as of the round's send when the session
// is compressed (resid non-nil). Only durable sessions need it, and only
// stateful clients can provide it; everything else degrades silently
// (rollback will then refuse).
func capture(client fl.Client, st *sessionState, round int, resid []float64) {
	if st.token == "" || st.noCapture {
		return
	}
	sc, ok := client.(fl.StatefulClient)
	if !ok {
		st.noCapture = true
		return
	}
	blob, err := sc.CaptureState()
	if err != nil {
		st.noCapture = true
		return
	}
	st.captures[round] = blob
	if resid != nil {
		if st.resCaptures == nil {
			st.resCaptures = make(map[int][]float64)
		}
		st.resCaptures[round] = append([]float64(nil), resid...)
	}
}

// rollback rewinds the client to its post-round-(nextRound-1) capture —
// including, on compressed sessions (needResidual), the error-feedback
// residual as it stood after that round's send.
func rollback(client fl.Client, st *sessionState, nextRound int, needResidual bool) error {
	if nextRound == st.nextRound {
		return nil
	}
	sc, ok := client.(fl.StatefulClient)
	if !ok || st.noCapture {
		return fmt.Errorf("transport: coordinator resumed at round %d but client %d is at %d and cannot roll back",
			nextRound, client.ID(), st.nextRound)
	}
	blob, ok := st.captures[nextRound-1]
	if !ok {
		return fmt.Errorf("transport: coordinator resumed at round %d but client %d holds no capture for round %d",
			nextRound, client.ID(), nextRound-1)
	}
	if needResidual {
		res, ok := st.resCaptures[nextRound-1]
		if !ok {
			return fmt.Errorf("transport: coordinator resumed at round %d but client %d holds no residual capture for round %d",
				nextRound, client.ID(), nextRound-1)
		}
		st.residual = append([]float64(nil), res...)
	}
	if err := sc.RestoreState(blob); err != nil {
		return fmt.Errorf("transport: rolling client %d back to round %d: %w", client.ID(), nextRound-1, err)
	}
	return nil
}
