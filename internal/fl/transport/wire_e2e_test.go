package transport

// End-to-end coverage for the binary wire codec: the gob↔binary
// negotiation matrix (every pairing must complete, and every dense
// pairing must produce the same global bit for bit), compressed
// federations reaching dense-grade accuracy at a fraction of the wire
// bytes, and coordinator crash/restart with a compressed session — the
// client-side error-feedback residual must roll back with the round
// captures so the resumed run stays bit-identical.

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/telemetry"
)

// runWireFederation runs a fresh deterministic federation with one
// RetryConfig per client and returns the final global. The coordinator
// is mutated by mut before serving (codec, checkpointing, metrics, ...).
func runWireFederation(t *testing.T, rounds int, mut func(*Coordinator), rcs []RetryConfig) []float64 {
	t.Helper()
	k := len(rcs)
	clients, initial := buildStatefulClients(t, k)
	coord := &Coordinator{NumClients: k, Rounds: rounds, Initial: initial}
	if mut != nil {
		mut(coord)
	}

	addrCh := make(chan string, 1)
	var (
		global []float64
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		global, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh

	clientErrs := make([]error, k)
	var cwg sync.WaitGroup
	for i, c := range clients {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			rc := rcs[i]
			if rc.MaxAttempts == 0 {
				rc.MaxAttempts = 1
			}
			clientErrs[i] = RunClientRetry(addr, c, rc)
		}(i, c)
	}
	cwg.Wait()
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	return global
}

func sameBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: global length %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: global[%d] = %v, want %v — runs are not bit-identical",
				name, i, got[i], want[i])
		}
	}
}

// TestCodecNegotiationMatrix drives every codec pairing through a real
// loopback federation. Dense sessions are lossless on both codecs, so
// every dense pairing must land on the same global bit for bit; the
// telemetry counters prove which codec each pairing actually settled on.
func TestCodecNegotiationMatrix(t *testing.T) {
	const k, rounds = 2, 4
	gobClients := []RetryConfig{{}, {}}
	binClients := []RetryConfig{{Codec: "binary"}, {Codec: "binary"}}

	want := runWireFederation(t, rounds, nil, gobClients)

	cases := []struct {
		name       string
		coordCodec string
		rcs        []RetryConfig
		wantBinary uint64
	}{
		{"binary-coord-binary-clients", "binary", binClients, k},
		{"binary-coord-gob-clients", "binary", gobClients, 0},
		{"gob-coord-binary-clients", "", binClients, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			met := NewMetrics(reg)
			got := runWireFederation(t, rounds, func(c *Coordinator) {
				c.Codec = tc.coordCodec
				c.Metrics = met
			}, tc.rcs)
			sameBits(t, tc.name, got, want)
			if met.CodecBinary.Value() != tc.wantBinary || met.CodecGob.Value() != k-tc.wantBinary {
				t.Fatalf("negotiated binary=%d gob=%d, want binary=%d gob=%d",
					met.CodecBinary.Value(), met.CodecGob.Value(), tc.wantBinary, k-tc.wantBinary)
			}
			if tc.wantBinary == 0 && met.CompressedUpdates.Value() != 0 {
				t.Fatal("gob session recorded compressed updates")
			}
		})
	}
}

// TestMixedRosterNegotiation: codec choice is per-client. One legacy gob
// client and one binary+compressed client share a federation; both finish,
// and the telemetry shows one connection on each codec with compressed
// updates flowing only from the binary one.
func TestMixedRosterNegotiation(t *testing.T) {
	const rounds = 3
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	runWireFederation(t, rounds, func(c *Coordinator) {
		c.Codec = "binary"
		c.Metrics = met
	}, []RetryConfig{
		{}, // legacy gob client
		{Codec: "binary", Compress: "topk8", TopKFrac: 0.25},
	})
	if met.CodecBinary.Value() != 1 || met.CodecGob.Value() != 1 {
		t.Fatalf("negotiated binary=%d gob=%d, want 1 and 1",
			met.CodecBinary.Value(), met.CodecGob.Value())
	}
	if got := met.CompressedUpdates.Value(); got != rounds {
		t.Fatalf("compressed updates = %d, want %d (one per round from the binary client)",
			got, rounds)
	}
}

// TestCompressedFederationAccuracyAndBytes is the load-bearing check for
// the compression path: a top-k+int8 federation with error feedback must
// reach the same accuracy bar as the dense runs while shrinking the
// per-round wire traffic.
func TestCompressedFederationAccuracyAndBytes(t *testing.T) {
	const k, rounds = 2, 10

	denseReg := telemetry.NewRegistry()
	denseMet := NewMetrics(denseReg)
	runWireFederation(t, rounds, func(c *Coordinator) {
		c.Codec = "binary"
		c.Metrics = denseMet
	}, []RetryConfig{{Codec: "binary"}, {Codec: "binary"}})
	denseBytes := denseMet.RoundBytes.Value()

	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	rc := RetryConfig{Compress: "topk8", TopKFrac: 0.25} // Compress implies the binary offer
	global := runWireFederation(t, rounds, func(c *Coordinator) {
		c.Codec = "binary"
		c.Metrics = met
	}, []RetryConfig{rc, rc})

	_, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 3, Train: 60, Test: 60, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	eval := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, test.In, test.NumClasses)
	if err := nn.SetFlatParams(eval.Params(), global); err != nil {
		t.Fatal(err)
	}
	if acc := fl.Evaluate(eval, test, 32); acc < 0.35 {
		t.Fatalf("compressed federation accuracy = %v, want ≥0.35", acc)
	}

	if met.CompressedUpdates.Value() != k*rounds {
		t.Fatalf("compressed updates = %d, want %d", met.CompressedUpdates.Value(), k*rounds)
	}
	compBytes := met.RoundBytes.Value()
	if denseBytes == 0 || compBytes == 0 {
		t.Fatalf("round-bytes gauge not recorded: dense %v, compressed %v", denseBytes, compBytes)
	}
	// The broadcast half of the round stays dense, so total round bytes
	// shrink by less than the update-only ratio — but must still shrink.
	if compBytes > 0.75*denseBytes {
		t.Fatalf("compressed round moved %v bytes vs %v dense — compression is not load-bearing",
			compBytes, denseBytes)
	}
}

// TestBinaryCompressedRestartResumesBitIdentical is the crash drill on
// the compressed wire path: the coordinator dies after round 2 and
// restarts from its durable snapshot; the clients rejoin, roll back one
// round — including their error-feedback residuals, which ride the same
// capture/rollback machinery — and the finished run must match an
// uninterrupted compressed run bit for bit. A residual that failed to
// roll back would poison every subsequent update.
func TestBinaryCompressedRestartResumesBitIdentical(t *testing.T) {
	const k, rounds, every = 2, 6, 2
	mkRC := func(i int) RetryConfig {
		return RetryConfig{
			Codec: "binary", Compress: "topk16", TopKFrac: 0.25,
			MaxAttempts: 50,
			BaseDelay:   5 * time.Millisecond,
			Rng:         rand.New(rand.NewSource(int64(900 + i))),
		}
	}

	// Uninterrupted compressed durable run: the reference result.
	baseMgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "base.ckpt")}
	want := runWireFederation(t, rounds, func(c *Coordinator) {
		c.Codec = "binary"
		c.Checkpoint = baseMgr
		c.CheckpointEvery = every
	}, []RetryConfig{mkRC(0), mkRC(1)})

	// Crashing run: kill after round 2, restart from the snapshot while
	// the clients are still out there retrying with their EF residuals.
	crashClients, initial := buildStatefulClients(t, k)
	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	first := &Coordinator{
		NumClients: k, Rounds: rounds, Initial: initial, Codec: "binary",
		Checkpoint: mgr, CheckpointEvery: every,
		AfterRound: faults.CrashAt(2),
	}
	addrCh := make(chan string, 1)
	var (
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, firstErr = first.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh

	clientErrs := make([]error, k)
	var cwg sync.WaitGroup
	for i, c := range crashClients {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			clientErrs[i] = RunClientRetry(addr, c, mkRC(i))
		}(i, c)
	}
	wg.Wait() // coordinator process 1 dies
	if !errors.Is(firstErr, faults.ErrCrash) {
		t.Fatalf("first coordinator: got %v, want ErrCrash", firstErr)
	}

	snap, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State.NextRound != 2 {
		t.Fatalf("snapshot resumes at round %d, want 2", snap.State.NextRound)
	}
	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	second := &Coordinator{
		NumClients: k, Rounds: rounds, Initial: initial, Codec: "binary",
		Checkpoint: mgr, CheckpointEvery: every,
		Restore: snap, Metrics: met,
	}
	var got []float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		got, err = second.ListenAndRun(addr, nil)
		if err != nil {
			t.Error(err)
		}
	}()
	cwg.Wait()
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if met.Rejoins.Value() != k {
		t.Fatalf("rejoins = %d, want %d", met.Rejoins.Value(), k)
	}
	sameBits(t, "compressed restart", got, want)
}
