package transport

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
)

// encodeUpdate produces the bytes a well-behaved client would put on the
// wire for the given update — the fuzz corpus starts from these and the
// fuzzer mutates from there.
func encodeUpdate(t testing.TB, u fl.Update) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(updateMsg{U: u}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeUpdate drives the coordinator's byte-budgeted gob decode path
// with arbitrary wire bytes. The invariant under test: hostile input may
// only ever produce an error — never a panic, never an update that fails
// ValidateUpdate. This is the exact code path a malicious or corrupted
// client reaches on a live federation socket.
func FuzzDecodeUpdate(f *testing.F) {
	const wantLen = 4
	valid := fl.Update{Params: []float64{0.1, -0.2, 0.3, 0.4}, NumSamples: 10, TrainLoss: 1.5}
	f.Add(encodeUpdate(f, valid), int64(1<<20))

	// Wrong parameter count: decodes fine, must be rejected by validation.
	short := fl.Update{Params: []float64{1, 2}, NumSamples: 3}
	f.Add(encodeUpdate(f, short), int64(1<<20))

	// NaN and Inf payloads: the poison FedAvg must never aggregate.
	poison := fl.Update{Params: []float64{math.NaN(), 1, 2, math.Inf(1)}, NumSamples: 5}
	f.Add(encodeUpdate(f, poison), int64(1<<20))

	// Truncated stream and raw garbage.
	full := encodeUpdate(f, valid)
	f.Add(full[:len(full)/2], int64(1<<20))
	f.Add([]byte{0xff, 0x00, 0xde, 0xad, 0xbe, 0xef}, int64(1<<20))
	f.Add([]byte{}, int64(1<<20))

	// Tiny budget: even a valid message must bounce off errMsgTooLarge.
	f.Add(full, int64(3))

	f.Fuzz(func(t *testing.T, data []byte, budget int64) {
		// Budgets the coordinator would realistically derive: clamp the
		// fuzzed value into (0, 1 MiB] so the reader logic, not int64
		// overflow, is what gets exercised.
		if budget <= 0 {
			budget = 1
		}
		if budget > 1<<20 {
			budget = 1 << 20
		}
		lim := &budgetReader{r: bytes.NewReader(data)}
		dec := gob.NewDecoder(lim)
		u, err := decodeUpdate(dec, lim, budget, 7, wantLen, 0)
		if err != nil {
			return // any error is acceptable; panics are not
		}
		// A decode that succeeds must have passed validation and carry
		// the coordinator-assigned client ID.
		if u.ClientID != 7 {
			t.Fatalf("decoded update has ClientID %d, want 7", u.ClientID)
		}
		if err := fl.ValidateUpdate(u, wantLen); err != nil {
			t.Fatalf("decodeUpdate returned an update that fails validation: %v", err)
		}
	})
}

// TestDecodeUpdateSeedCorpus pins the seed-corpus expectations even when
// the fuzzer is not running (plain `go test` executes f.Fuzz over the
// seeds only, but the explicit classification below is stronger).
func TestDecodeUpdateSeedCorpus(t *testing.T) {
	const wantLen = 4
	decode := func(data []byte, budget int64) (fl.Update, error) {
		lim := &budgetReader{r: bytes.NewReader(data)}
		return decodeUpdate(gob.NewDecoder(lim), lim, budget, 7, wantLen, 0)
	}

	valid := encodeUpdate(t, fl.Update{Params: []float64{0.1, -0.2, 0.3, 0.4}, NumSamples: 10})
	u, err := decode(valid, 1<<20)
	if err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}
	if u.ClientID != 7 || len(u.Params) != wantLen {
		t.Fatalf("decoded update corrupted: %+v", u)
	}

	// Wrong length and NaN payloads must classify as errInvalid so the
	// coordinator counts them as validation rejections, not wire noise.
	for name, data := range map[string][]byte{
		"short": encodeUpdate(t, fl.Update{Params: []float64{1, 2}, NumSamples: 3}),
		"nan":   encodeUpdate(t, fl.Update{Params: []float64{math.NaN(), 1, 2, 3}, NumSamples: 5}),
	} {
		if _, err := decode(data, 1<<20); err == nil {
			t.Fatalf("%s update accepted", name)
		} else if _, ok := err.(errInvalid); !ok {
			t.Fatalf("%s update failed as %T (%v), want errInvalid", name, err, err)
		}
	}

	// Exhausted budget surfaces errMsgTooLarge via the gob decoder.
	if _, err := decode(valid, 3); err == nil {
		t.Fatal("over-budget message accepted")
	}

	// Truncation and garbage are wire errors, not validation errors.
	if _, err := decode(valid[:len(valid)/2], 1<<20); err == nil {
		t.Fatal("truncated message accepted")
	}
	if _, err := decode([]byte{0xff, 0x00, 0xde, 0xad}, 1<<20); err == nil {
		t.Fatal("garbage accepted")
	}
}
