package transport

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/fl"
)

// TestCoordinatorClientDisconnect: a client that vanishes mid-round must
// surface as an error from the coordinator, not a hang.
func TestCoordinatorClientDisconnect(t *testing.T) {
	coord := &Coordinator{NumClients: 1, Rounds: 3, Initial: []float64{1, 2}}
	addrCh := make(chan string, 1)
	var (
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{ID: 0, NumSamples: 5}); err != nil {
		t.Fatal(err)
	}
	// Read the welcome and first round message, then drop the connection.
	dec := gob.NewDecoder(conn)
	var w welcome
	if err := dec.Decode(&w); err != nil {
		t.Fatal(err)
	}
	var rm roundMsg
	if err := dec.Decode(&rm); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung after client disconnect")
	}
	if srvErr == nil {
		t.Fatal("coordinator should report an error after client disconnect")
	}
}

// TestCoordinatorRejectsGarbageHello: a connection speaking a different
// protocol must not wedge the handshake.
func TestCoordinatorRejectsGarbageHello(t *testing.T) {
	coord := &Coordinator{NumClients: 1, Rounds: 1, Initial: []float64{1}}
	addrCh := make(chan string, 1)
	var (
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung on garbage hello")
	}
	if srvErr == nil {
		t.Fatal("coordinator should reject a malformed hello")
	}
}

// failingClient errors on its first local-training call.
type failingClient struct{ id int }

func (c *failingClient) ID() int         { return c.id }
func (c *failingClient) NumSamples() int { return 1 }
func (c *failingClient) TrainLocal(int, []float64) (fl.Update, error) {
	return fl.Update{}, errTrain
}

var errTrain = &trainError{}

type trainError struct{}

func (*trainError) Error() string { return "train failed" }

// TestRunClientPropagatesTrainError: a client whose local training fails
// must return the error to its operator (and the coordinator sees the
// closed stream).
func TestRunClientPropagatesTrainError(t *testing.T) {
	coord := &Coordinator{NumClients: 1, Rounds: 2, Initial: []float64{0}}
	addrCh := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a }) //nolint:errcheck
	}()
	addr := <-addrCh

	err := RunClient(addr, &failingClient{id: 0})
	if err == nil {
		t.Fatal("RunClient should propagate the training error")
	}
	wg.Wait()
}
