package transport

// Crash harness for the TCP deployment path: the coordinator process is
// killed between rounds (faults.CrashAt), restarted on the same address
// from its durable snapshot, and the surviving clients — riding the
// outage on RunClientRetry — reconnect with their session token, roll
// their local state back to the resume round, and finish. The final
// global must be bit-identical to an uninterrupted durable run.

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// buildStatefulClients is buildClients with resumable clients: each runs
// on a serializable RNG source and tracks its shard order, so it can
// capture and roll back local state across a coordinator restart.
func buildStatefulClients(t *testing.T, k int) ([]fl.Client, []float64) {
	t.Helper()
	train, _, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 3, Train: 60, Test: 60, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := datasets.PartitionIID(train, k, rand.New(rand.NewSource(1)))
	clients := make([]fl.Client, k)
	var initial []float64
	for i := 0; i < k; i++ {
		net := model.NewClassifier(rand.New(rand.NewSource(7)), model.VGG, train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(net.Params())
		}
		clients[i] = fl.NewStatefulLegacyClient(i, net, shards[i], fl.ClientConfig{
			BatchSize: 16, LR: func(int) float64 { return 0.08 }, Momentum: 0.9,
		}, nil, int64(i+50))
	}
	return clients, initial
}

func TestCoordinatorRestartResumesBitIdentical(t *testing.T) {
	const k, rounds, every = 2, 6, 2

	// Uninterrupted durable run: the reference result.
	baseClients, initial := buildStatefulClients(t, k)
	baseMgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "base.ckpt")}
	base := &Coordinator{
		NumClients: k, Rounds: rounds, Initial: initial,
		Checkpoint: baseMgr, CheckpointEvery: every,
	}
	addrCh := make(chan string, 1)
	var (
		wantGlobal []float64
		baseErr    error
		wg         sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		wantGlobal, baseErr = base.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh
	var cwg sync.WaitGroup
	for _, c := range baseClients {
		cwg.Add(1)
		go func(c fl.Client) {
			defer cwg.Done()
			if err := RunClient(addr, c); err != nil {
				t.Error(err)
			}
		}(c)
	}
	cwg.Wait()
	wg.Wait()
	if baseErr != nil {
		t.Fatal(baseErr)
	}

	// Crashing run: checkpoints land after rounds 1, 3, 5; the crash after
	// round 2 rewinds the federation to round 2, so reconnecting clients
	// must roll back one round from their in-memory captures.
	crashClients, initial2 := buildStatefulClients(t, k)
	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	first := &Coordinator{
		NumClients: k, Rounds: rounds, Initial: initial2,
		Checkpoint: mgr, CheckpointEvery: every,
		AfterRound: faults.CrashAt(2),
	}
	addrCh2 := make(chan string, 1)
	var firstErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, firstErr = first.ListenAndRun("127.0.0.1:0", func(a string) { addrCh2 <- a })
	}()
	addr2 := <-addrCh2

	clientErrs := make([]error, k)
	for i, c := range crashClients {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			clientErrs[i] = RunClientRetry(addr2, c, RetryConfig{
				MaxAttempts: 50,
				BaseDelay:   5 * time.Millisecond,
				Rng:         rand.New(rand.NewSource(int64(900 + i))),
			})
		}(i, c)
	}
	wg.Wait() // coordinator process 1 dies
	if !errors.Is(firstErr, faults.ErrCrash) {
		t.Fatalf("first coordinator: got %v, want ErrCrash", firstErr)
	}

	// Restart on the same address from the snapshot; the clients are still
	// out there retrying.
	snap, err := mgr.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State.NextRound != 2 {
		t.Fatalf("snapshot resumes at round %d, want 2", snap.State.NextRound)
	}
	second := &Coordinator{
		NumClients: k, Rounds: rounds, Initial: initial2,
		Checkpoint: mgr, CheckpointEvery: every,
		Restore: snap,
	}
	var gotGlobal []float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var err error
		gotGlobal, err = second.ListenAndRun(addr2, nil)
		if err != nil {
			t.Error(err)
		}
	}()
	cwg.Wait()
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	if len(gotGlobal) != len(wantGlobal) {
		t.Fatalf("global length %d vs %d", len(gotGlobal), len(wantGlobal))
	}
	for i := range wantGlobal {
		if gotGlobal[i] != wantGlobal[i] {
			t.Fatalf("global[%d]: %v vs %v — restarted federation is not bit-identical",
				i, gotGlobal[i], wantGlobal[i])
		}
	}
}

// TestClientStopsCleanlyMidFederation drives the client-side graceful
// shutdown: a Stop signal mid-round makes RunClientRetry return
// ErrClientStopped instead of hanging on the next round message.
func TestClientStopsCleanlyMidFederation(t *testing.T) {
	const k = 2
	clients, initial := buildStatefulClients(t, k)
	mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "state.ckpt")}
	stopSrv := make(chan struct{})
	coord := &Coordinator{
		NumClients: k, Rounds: 1000, Initial: initial,
		Checkpoint: mgr, CheckpointEvery: 1,
		AfterRound: func(round int) error {
			if round == 1 {
				close(stopSrv)
			}
			return nil
		},
		Stop: stopSrv,
	}
	addrCh := make(chan string, 1)
	var (
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh

	stopClients := make(chan struct{})
	clientErrs := make([]error, k)
	var cwg sync.WaitGroup
	for i, c := range clients {
		cwg.Add(1)
		go func(i int, c fl.Client) {
			defer cwg.Done()
			clientErrs[i] = RunClientRetry(addr, c, RetryConfig{
				MaxAttempts: 20,
				BaseDelay:   5 * time.Millisecond,
				Stop:        stopClients,
			})
		}(i, c)
	}
	wg.Wait()
	if !errors.Is(srvErr, fl.ErrStopped) {
		t.Fatalf("coordinator: got %v, want ErrStopped", srvErr)
	}
	// The coordinator is gone; stop the clients, which are either blocked
	// on a dead connection or backing off toward a redial.
	close(stopClients)
	cwg.Wait()
	for i, err := range clientErrs {
		if !errors.Is(err, ErrClientStopped) {
			t.Fatalf("client %d: got %v, want ErrClientStopped", i, err)
		}
	}
}
