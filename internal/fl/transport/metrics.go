package transport

import (
	"github.com/cip-fl/cip/internal/telemetry"
)

// Metrics is the wire-layer telemetry catalogue. Construct with
// NewMetrics and attach via Coordinator.Metrics (server side) or
// RetryConfig.Metrics (client side); a nil *Metrics disables all
// recording at zero cost.
type Metrics struct {
	// ConnsAccepted counts client connections accepted into the roster
	// (after a valid, non-duplicate hello).
	ConnsAccepted *telemetry.Counter // transport_conns_accepted_total
	// DecodeBytes counts inbound bytes consumed through the byte-budgeted
	// gob decode path (hellos and updates).
	DecodeBytes *telemetry.Counter // transport_decode_bytes_total
	// DecodeFailures counts gob decode errors on inbound messages,
	// including budget overruns.
	DecodeFailures *telemetry.Counter // transport_decode_failures_total
	// RetryAttempts counts client dial/handshake retries (attempts beyond
	// each session's first).
	RetryAttempts *telemetry.Counter // transport_retry_attempts_total
	// StragglersDropped counts clients dropped for missing the round
	// deadline.
	StragglersDropped *telemetry.Counter // transport_stragglers_dropped_total
	// Rejoins counts clients readmitted into a resumed federation with a
	// valid session token after a coordinator restart.
	Rejoins *telemetry.Counter // transport_rejoins_total
	// TxBytes counts outbound bytes written to clients (round broadcasts
	// and done frames, both codecs).
	TxBytes *telemetry.Counter // transport_tx_bytes_total
	// RoundBytes is the total wire bytes (rx + tx) of the most recent
	// round — the quantity the compression work drives down.
	RoundBytes *telemetry.Gauge // transport_round_bytes
	// CodecBinary and CodecGob count roster connections by the codec the
	// welcome handshake settled on.
	CodecBinary *telemetry.Counter // transport_codec_binary_total
	CodecGob    *telemetry.Counter // transport_codec_gob_total
	// CompressedUpdates counts updates received in a compressed (top-k /
	// quantized) wire shape.
	CompressedUpdates *telemetry.Counter // transport_compressed_updates_total
	// InflightUpdates is the number of client exchanges currently admitted
	// into the streaming fold window (bounded by MaxInflightUpdates; pairs
	// with fl_round_peak_update_bytes to make the constant-memory claim
	// observable).
	InflightUpdates *telemetry.Gauge // transport_inflight_updates
	// Partials counts leaf partials accepted into root aggregates.
	Partials *telemetry.Counter // transport_partials_total
}

// NewMetrics registers the transport metrics on reg. A nil reg returns
// nil, which disables recording.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		ConnsAccepted: reg.Counter("transport_conns_accepted_total",
			"Client connections accepted into the roster."),
		DecodeBytes: reg.Counter("transport_decode_bytes_total",
			"Inbound bytes consumed by the byte-budgeted gob decoder."),
		DecodeFailures: reg.Counter("transport_decode_failures_total",
			"Gob decode errors on inbound messages, including budget overruns."),
		RetryAttempts: reg.Counter("transport_retry_attempts_total",
			"Client dial/handshake retries beyond the first attempt."),
		StragglersDropped: reg.Counter("transport_stragglers_dropped_total",
			"Clients dropped for missing the round deadline."),
		Rejoins: reg.Counter("transport_rejoins_total",
			"Clients readmitted with a session token after a coordinator restart."),
		TxBytes: reg.Counter("transport_tx_bytes_total",
			"Outbound bytes written to clients."),
		RoundBytes: reg.Gauge("transport_round_bytes",
			"Total wire bytes (rx + tx) of the most recent round."),
		CodecBinary: reg.Counter("transport_codec_binary_total",
			"Roster connections negotiated onto the binary codec."),
		CodecGob: reg.Counter("transport_codec_gob_total",
			"Roster connections kept on the legacy gob codec."),
		CompressedUpdates: reg.Counter("transport_compressed_updates_total",
			"Updates received in a compressed wire shape."),
		InflightUpdates: reg.Gauge("transport_inflight_updates",
			"Client exchanges currently admitted into the streaming fold window."),
		Partials: reg.Counter("transport_partials_total",
			"Leaf partials accepted into root aggregates."),
	}
}

func (m *Metrics) codecNegotiated(binary bool) {
	if m == nil {
		return
	}
	if binary {
		m.CodecBinary.Inc()
	} else {
		m.CodecGob.Inc()
	}
}

func (m *Metrics) inflight(n int) {
	if m == nil {
		return
	}
	m.InflightUpdates.Set(float64(n))
}

func (m *Metrics) partialAccepted() {
	if m == nil {
		return
	}
	m.Partials.Inc()
}

func (m *Metrics) compressedUpdate() {
	if m == nil {
		return
	}
	m.CompressedUpdates.Inc()
}

func (m *Metrics) roundBytes(n uint64) {
	if m == nil {
		return
	}
	m.RoundBytes.Set(float64(n))
}

// txBytesCounter returns the byte counter countWriters feed, or nil.
func (m *Metrics) txBytesCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.TxBytes
}

func (m *Metrics) rejoin() {
	if m == nil {
		return
	}
	m.Rejoins.Inc()
}

func (m *Metrics) connAccepted() {
	if m == nil {
		return
	}
	m.ConnsAccepted.Inc()
}

func (m *Metrics) decodeFailure() {
	if m == nil {
		return
	}
	m.DecodeFailures.Inc()
}

func (m *Metrics) retryAttempt() {
	if m == nil {
		return
	}
	m.RetryAttempts.Inc()
}

func (m *Metrics) stragglerDropped() {
	if m == nil {
		return
	}
	m.StragglersDropped.Inc()
}

// decodeBytesCounter returns the byte counter budgetReaders feed, or nil.
func (m *Metrics) decodeBytesCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.DecodeBytes
}
