package transport

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/robust"
	"github.com/cip-fl/cip/internal/fl/wire"
	"github.com/cip-fl/cip/internal/rng"
)

// defaultInflight is the streaming fold window when MaxInflightUpdates is
// unset: large enough that small rosters degenerate to the legacy
// all-concurrent behavior, small enough that peak update memory at scale
// is a few hundred kilobytes per thousand parameters.
const defaultInflight = 64

// rejoinHandshakeTimeout bounds how long a parked rejoin connection may
// take to produce its hello; without it a silent dialer would pin an
// accept goroutine forever.
const rejoinHandshakeTimeout = 10 * time.Second

// session is the run state of one coordinator federation: the roster, the
// evolving global, the rejoin parking lot, and the per-round fold.
type session struct {
	c          *Coordinator
	global     []float64
	active     []*clientConn
	failCounts map[int]int
	// durable is the highest round covered by a snapshot on disk (-1 when
	// nothing is durable); leaves overwrite it with the root's announce.
	durable int
	token   string
	resumed bool
	// rxTally/txTally accumulate every wire byte either direction; the
	// per-round delta lands in the transport_round_bytes gauge.
	rxTally, txTally uint64

	// acc is the streaming accumulator, reused across rounds; nil means
	// the configuration needs the buffered path.
	acc fl.Accumulator
	// fold is the weighted-mean fold used for leaf-partial extraction: it
	// aliases acc when the streaming rule is the plain mean, and is a
	// dedicated fold on buffered leaf configurations.
	fold *fl.Fold
	// wantPartial marks a leaf session: rounds end by exposing the
	// pre-division fold through partial instead of advancing global.
	wantPartial bool
	leafID      int
	partial     fl.Partial
	// leafMean is the scratch for the leaf-local mean that reputation
	// scoring on a buffered leaf measures deviations against.
	leafMean []float64

	// treeFrac/treeSeed/sketchCap hold the parent's per-round tree
	// directive (MsgRound2): the sampling fraction and seed client-facing
	// shards apply, and the row-reservoir capacity partials carry. A root
	// sources the directive from its own configuration; leaves overwrite
	// these from each round frame (zeroed again on v1 round frames).
	treeFrac  float64
	treeSeed  int64
	sketchCap int
	// degradeOK marks a leaf whose parent speaks partial v2: losing local
	// quorum with at least one valid update forwards a degraded partial
	// (coverage metadata intact) instead of failing the subtree.
	degradeOK bool
	// plannedWeight/coveredWeight accumulate one round's planned versus
	// delivered cohort weight; their ratio is the round's coverage.
	plannedWeight, coveredWeight float64
	// sketch is the round's row reservoir: client rows on a client-facing
	// shard, merged child reservoirs on interior nodes and the robust
	// root. Nil when the tree needs no rows (mean-family rules).
	sketch *robust.Sketch
	// lastCoverage is the most recent round's coverage (1 until a round
	// tracks any); snapshots persist it for operator forensics.
	lastCoverage float64

	// peakInflight is the largest number of simultaneously admitted
	// exchanges the most recent streaming round reached.
	peakInflight int

	pendingMu sync.Mutex
	pending   []*clientConn
	// acceptDone is closed when the rejoin accept loop exits.
	acceptDone chan struct{}
}

// streamingAccumulator reports whether the coordinator's configuration can
// aggregate with a constant-memory streaming fold: no round observers
// (they need the full update column), no reputation tracker (it scores
// every update against the finished aggregate), no forced buffering, and
// an aggregation rule with a streaming form (the weighted mean, or a
// robust.StreamRule like Mean/ClippedMean). Median and TrimmedMean need
// the full per-coordinate column and stay on the buffered path.
func (c *Coordinator) streamingAccumulator() (fl.Accumulator, bool) {
	if c.BufferRounds || len(c.Observers) > 0 || c.Reputation != nil {
		return nil, false
	}
	return fl.NewAccumulator(c.Robust)
}

// RunWithListener is ListenAndRun over an already-bound listener, so the
// in-memory load harness can drive a coordinator through net.Pipe without
// touching the network stack. The listener is closed before returning
// when the rejoin accept loop owns it.
func (c *Coordinator) RunWithListener(ln net.Listener, ready func(boundAddr string)) ([]float64, error) {
	if c.AcceptPartials {
		if c.BufferRounds || len(c.Observers) > 0 || c.Reputation != nil {
			return nil, errors.New("transport: partial aggregation supports no observers, reputation, or forced buffering")
		}
		if c.Codec != wire.CodecBinary {
			return nil, errors.New("transport: partial aggregation requires the binary codec")
		}
	}
	global := make([]float64, len(c.Initial))
	copy(global, c.Initial)
	startRound := 0
	token := ""
	failCounts := make(map[int]int)
	if c.Restore != nil {
		st := &c.Restore.State
		if len(st.Global) != len(c.Initial) {
			return nil, fmt.Errorf("transport: snapshot has %d global params, coordinator expects %d",
				len(st.Global), len(c.Initial))
		}
		copy(global, st.Global)
		startRound = st.NextRound
		token = c.Restore.Token
		for id, n := range st.FailCounts {
			failCounts[id] = n
		}
		if c.Reputation != nil && st.Reputation != nil {
			if err := c.Reputation.Restore(st.Reputation); err != nil {
				return nil, fmt.Errorf("transport: restoring reputation state: %w", err)
			}
		}
	} else if c.Checkpoint != nil {
		t, err := newToken()
		if err != nil {
			return nil, err
		}
		token = t
	}
	s := &session{
		c:            c,
		global:       global,
		failCounts:   failCounts,
		durable:      startRound - 1,
		token:        token,
		resumed:      c.Restore != nil,
		lastCoverage: 1,
	}
	// A robust tree root cannot stream: the rule needs the merged row
	// reservoir, so partials are buffered and tallied into the sketch.
	if acc, ok := c.streamingAccumulator(); ok && !(c.AcceptPartials && c.Robust != nil) {
		s.acc = acc
		if f, isMean := acc.(*fl.Fold); isMean {
			s.fold = f
		}
	}
	every := c.CheckpointEvery
	if every < 1 {
		every = 1
	}
	// saveSnapshot persists the state as of entering nextRound. Snapshots
	// are round-boundary-only by design: a mid-round streaming
	// accumulator is never captured, so a restart replays the interrupted
	// round from its start — the same semantics the buffered path always
	// had.
	saveSnapshot := func(nextRound int) error {
		if c.Checkpoint == nil {
			return nil
		}
		snap := &checkpoint.Snapshot{Token: token}
		snap.State.NextRound = nextRound
		snap.State.Global = append([]float64(nil), s.global...)
		snap.State.LastCoverage = s.lastCoverage
		if len(s.failCounts) > 0 {
			snap.State.FailCounts = make(map[int]int, len(s.failCounts))
			for id, n := range s.failCounts {
				snap.State.FailCounts[id] = n
			}
		}
		if c.Reputation != nil {
			blob, err := c.Reputation.Snapshot()
			if err != nil {
				return fmt.Errorf("transport: capturing reputation state: %w", err)
			}
			snap.State.Reputation = blob
		}
		if err := c.Checkpoint.Save(snap); err != nil {
			return fmt.Errorf("transport: checkpoint after round %d: %w", nextRound-1, err)
		}
		s.durable = nextRound - 1
		return nil
	}

	if ready != nil {
		ready(ln.Addr().String())
	}
	active, err := c.acceptClients(ln, welcome{
		Token: token, NextRound: startRound, Resumed: s.resumed,
	}, &s.rxTally, &s.txTally)
	if err != nil {
		return nil, err
	}
	s.active = active
	defer s.closeConns()
	// Deterministic aggregation order regardless of connect order.
	sort.Slice(s.active, func(i, j int) bool { return s.active[i].id < s.active[j].id })

	if c.AcceptRejoins {
		s.acceptDone = make(chan struct{})
		go s.acceptLoop(ln)
		defer func() {
			ln.Close() //nolint:errcheck — unblocks the accept loop; double close is benign
			<-s.acceptDone
		}()
	}

	for round := startRound; round < c.Rounds; round++ {
		if err := s.runRound(round); err != nil {
			return nil, err
		}
		wrote := false
		if c.Checkpoint != nil && ((round+1)%every == 0 || round == c.Rounds-1) {
			if err := saveSnapshot(round + 1); err != nil {
				return nil, err
			}
			wrote = true
		}
		if c.AfterRound != nil {
			if err := c.AfterRound(round); err != nil {
				return nil, err
			}
		}
		if c.Stop != nil {
			select {
			case <-c.Stop:
				if !wrote {
					if err := saveSnapshot(round + 1); err != nil {
						return nil, err
					}
				}
				return nil, fl.ErrStopped
			default:
			}
		}
	}

	if err := s.sendDone(); err != nil {
		return nil, err
	}
	return s.global, nil
}

// closeConns tears down every roster and parked connection at run end.
func (s *session) closeConns() {
	for _, cc := range s.active {
		cc.conn.Close()
	}
	s.pendingMu.Lock()
	pend := s.pending
	s.pending = nil
	s.pendingMu.Unlock()
	for _, cc := range pend {
		cc.conn.Close()
	}
}

// sendDone signals completion to every surviving client.
func (s *session) sendDone() error {
	c := s.c
	for _, cc := range s.active {
		if c.RoundTimeout > 0 {
			cc.conn.SetWriteDeadline(time.Now().Add(c.RoundTimeout)) //nolint:errcheck
		}
		var err error
		if cc.binary {
			_, err = cc.w.Write(wire.AppendDoneFrame(nil))
		} else {
			err = cc.enc.Encode(roundMsg{Done: true})
		}
		if err != nil && !c.faultTolerant() {
			return fmt.Errorf("transport: sending done to client %d: %w", cc.id, err)
		}
	}
	return nil
}

// acceptLoop keeps accepting connections after the federation starts
// (AcceptRejoins): each newcomer is handshaked under a deadline and
// parked; admission happens at the next round boundary. The loop exits
// when the listener closes.
func (s *session) acceptLoop(ln net.Listener) {
	defer close(s.acceptDone)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(rejoinHandshakeTimeout)) //nolint:errcheck
			cc, err := s.c.handshake(conn, s.token, &s.rxTally, &s.txTally)
			if err != nil {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{}) //nolint:errcheck
			s.pendingMu.Lock()
			s.pending = append(s.pending, cc)
			s.pendingMu.Unlock()
		}(conn)
	}
}

// admitPending welcomes parked rejoin connections into the roster at a
// round boundary: each is welcomed with NextRound = the admitted round,
// replaces any same-ID roster entry (a dead connection the round loop has
// not yet noticed, or the ghost of the crashed process this one
// replaces), and exchanges from this round on. Welcomes are deferred to
// the boundary because a welcome sent mid-round would promise a NextRound
// the coordinator is still mutating.
func (s *session) admitPending(round int) {
	s.pendingMu.Lock()
	pend := s.pending
	s.pending = nil
	s.pendingMu.Unlock()
	if len(pend) == 0 {
		return
	}
	for _, cc := range pend {
		w := s.c.welcomeFor(cc, welcome{Token: s.token, NextRound: round, Resumed: s.resumed})
		if err := cc.enc.Encode(w); err != nil {
			cc.conn.Close()
			continue
		}
		replaced := false
		for i, old := range s.active {
			if old.id == cc.id {
				old.conn.Close()
				s.active[i] = cc
				replaced = true
				break
			}
		}
		if !replaced {
			s.active = append(s.active, cc)
		}
		if cc.hadToken && s.resumed {
			s.c.Metrics.rejoin()
		}
		s.c.Metrics.connAccepted()
		s.c.Metrics.codecNegotiated(cc.binary)
	}
	sort.Slice(s.active, func(i, j int) bool { return s.active[i].id < s.active[j].id })
}

// sampleCohort picks this round's cohort from the eligible roster by
// weighted sampling without replacement (Efraimidis–Spirakis: each client
// draws key u^(1/w) with w = its sample count, top-n keys win), so
// clients holding more data are proportionally likelier to participate,
// selection is deterministic given (SampleSeed, round), and a restarted
// coordinator resumes the same cohort schedule. The returned idle set is
// the eligible remainder: it receives no round frame, which in this
// synchronous protocol simply leaves those clients blocked on their next
// read until a later round samples them.
func (s *session) sampleCohort(round int, eligible []*clientConn) (cohort, idle []*clientConn) {
	f, seed := s.effectiveSample()
	if f <= 0 || f >= 1 || len(eligible) < 2 {
		return eligible, nil
	}
	n := int(f*float64(len(eligible)) + 0.5)
	if q := s.c.quorum(); n < q {
		n = q
	}
	if n < 1 {
		n = 1
	}
	if n >= len(eligible) {
		return eligible, nil
	}
	// Per-round stateless derivation: mixing the round index into the
	// seed (SplitMix64's increment) gives every round an independent
	// stream with no sampler state to checkpoint.
	src := rng.NewSource(int64(uint64(seed) ^ (uint64(round)+1)*0x9E3779B97F4A7C15))
	r := rand.New(src)
	type keyed struct {
		key float64
		cc  *clientConn
	}
	keys := make([]keyed, len(eligible))
	for i, cc := range eligible {
		w := float64(cc.samples)
		if w <= 0 {
			w = 1
		}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		keys[i] = keyed{key: math.Pow(u, 1/w), cc: cc}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return keys[i].key > keys[j].key
		}
		return keys[i].cc.id < keys[j].cc.id
	})
	cohort = make([]*clientConn, 0, n)
	idle = make([]*clientConn, 0, len(eligible)-n)
	for i := range keys {
		if i < n {
			cohort = append(cohort, keys[i].cc)
		} else {
			idle = append(idle, keys[i].cc)
		}
	}
	sort.Slice(cohort, func(i, j int) bool { return cohort[i].id < cohort[j].id })
	return cohort, idle
}

// effectiveSample resolves which cohort-sampling directive this node
// applies locally. A tree parent never thins its child aggregators — the
// directive rides MsgRound2 and is applied by the client-facing shards,
// each mixing its leaf ID into the distributed seed so sibling shards
// draw independent cohorts from one root-coordinated fraction. Everything
// else samples from local configuration.
func (s *session) effectiveSample() (frac float64, seed int64) {
	if s.c.AcceptPartials {
		return 0, 0
	}
	if s.wantPartial && s.treeFrac > 0 {
		return s.treeFrac, s.treeSeed ^ int64(robust.KeyLeaf(s.leafID))
	}
	return s.c.SampleFraction, s.c.SampleSeed
}

// distSample is the sampling directive a tree parent broadcasts to its
// partial-v2 children this round: the root's own configuration, relayed
// unchanged by interior nodes so the whole tree acts on one directive.
func (s *session) distSample() (frac float64, seed int64) {
	if s.wantPartial {
		return s.treeFrac, s.treeSeed
	}
	return s.c.SampleFraction, s.c.SampleSeed
}

// distSketchCap is the row-reservoir capacity in force this round: the
// parent's directive on leaves and interior nodes, the configured
// capacity at the root. It sizes the local reservoir, the inbound partial
// byte budget, and the capacity distributed onward.
func (s *session) distSketchCap() int {
	if s.wantPartial {
		return s.sketchCap
	}
	return s.c.treeSketchCap()
}

// tallyUpdate credits one accepted client update to the round's coverage
// ledger (its fold weight counts as both planned and delivered) and, when
// the round carries a row reservoir, retains the update as a client-keyed
// sketch row.
func (s *session) tallyUpdate(u fl.Update) {
	w := float64(u.NumSamples)
	if w <= 0 {
		w = 1
	}
	s.plannedWeight += w
	s.coveredWeight += w
	if s.sketch != nil {
		s.sketch.Add(robust.KeyClient(u.ClientID), u.Params)
	}
}

// tallyPartial credits one accepted child partial: planned weight is the
// child's own expectation (falling back to its delivered weight when the
// child predates coverage metadata), delivered weight is what arrived.
// Child reservoirs merge into the local one; a sketchless (v1) child
// contributes its implied mean as a single leaf-keyed row, so robust
// rules still see every subtree.
func (s *session) tallyPartial(p fl.Partial) error {
	expect := p.ExpectWeight
	if expect <= 0 {
		expect = p.Weight
	}
	s.plannedWeight += expect
	s.coveredWeight += p.Weight
	if s.sketch == nil {
		return nil
	}
	if p.Sketch != nil {
		return s.sketch.Merge(p.Sketch)
	}
	row := make([]float64, len(p.Sum))
	for i, v := range p.Sum {
		row[i] = v / p.Weight
	}
	s.sketch.Add(robust.KeyLeaf(p.LeafID), row)
	return nil
}

// stampPartial finishes the round's outgoing partial with the v2
// extension fields: the planned (pre-failure) cohort weight, the
// degradation flag, and the round's row reservoir. A v1 parent link
// simply never encodes them.
func (s *session) stampPartial(degraded bool) {
	s.partial.ExpectWeight = s.plannedWeight
	s.partial.Degraded = degraded
	s.partial.Sketch = s.sketch
}

// runRound executes one communication round over the current roster:
// admit parked rejoiners, split out quarantined clients, sample the
// cohort, exchange (streaming or buffered), enforce quorum, aggregate,
// and record telemetry. On success s.global holds the new aggregate (or,
// on a leaf, s.partial holds the pre-division sums for the root).
func (s *session) runRound(round int) error {
	c := s.c
	roundStart := time.Now()
	s.admitPending(round)
	bytesBefore := atomic.LoadUint64(&s.rxTally) + atomic.LoadUint64(&s.txTally)

	// Quarantined clients are skipped for the round: no round message,
	// no update, no influence. Their connections stay open so a later
	// probation can re-admit them without a reconnect.
	eligible := s.active
	var blocked []*clientConn
	var failures []fl.ClientFailure
	if c.Reputation != nil {
		eligible = make([]*clientConn, 0, len(s.active))
		for _, cc := range s.active {
			if c.Reputation.Blocked(cc.id) {
				blocked = append(blocked, cc)
				failures = append(failures, fl.ClientFailure{
					ClientID: cc.id, Round: round, Reason: fl.FailQuarantined,
					Err: fmt.Errorf("transport: client %d is quarantined", cc.id),
				})
				continue
			}
			eligible = append(eligible, cc)
		}
	}
	cohort, idle := s.sampleCohort(round, eligible)

	s.plannedWeight, s.coveredWeight = 0, 0
	s.sketch = nil
	distCap := s.distSketchCap()
	if distCap > 0 {
		s.sketch = robust.NewSketch(distCap)
	}
	budget := c.updateBudget()
	if c.AcceptPartials {
		budget = c.partialBudget(distCap)
	}
	rc := &roundCtx{
		round: round, durable: s.durable, global: s.global,
		timeout: c.RoundTimeout, budget: budget,
		maxNorm: c.MaxUpdateNorm, met: c.Metrics,
	}
	if c.AcceptPartials {
		frac, seed := s.distSample()
		rc.r2 = wire.Round2{SampleFrac: frac, SampleSeed: seed, SketchCap: distCap}
	}
	var wantV1, wantV2 bool
	for _, cc := range cohort {
		if !cc.binary {
			continue
		}
		if cc.partialV >= 2 {
			wantV2 = true
		} else {
			wantV1 = true
		}
	}
	if wantV1 {
		buf := wire.GetBuffer(wire.HeaderLen + wire.RoundPayloadLen(len(s.global)))[:0]
		rc.bcast = wire.AppendRoundFrame(buf, round, s.durable, s.global)
		defer wire.PutBuffer(rc.bcast)
	}
	if wantV2 {
		r2 := rc.r2
		r2.Round, r2.Durable, r2.Params = round, s.durable, s.global
		buf := wire.GetBuffer(wire.HeaderLen + wire.Round2PayloadLen(len(s.global)))[:0]
		rc.bcast2 = wire.AppendRound2Frame(buf, r2)
		defer wire.PutBuffer(rc.bcast2)
	}

	var (
		survivors []*clientConn
		valid     []fl.Update
		nValid    int
		heldPeak  int
	)
	if s.acc != nil {
		s.acc.Begin(s.global)
		var ffs []fl.ClientFailure
		var err error
		survivors, ffs, nValid, err = s.runStream(rc, cohort)
		if err != nil {
			return err
		}
		failures = append(failures, ffs...)
		heldPeak = s.peakInflight
	} else {
		var ffs []fl.ClientFailure
		var nPartials int
		var err error
		survivors, valid, nPartials, ffs, err = s.runBuffered(rc, cohort)
		if err != nil {
			return err
		}
		failures = append(failures, ffs...)
		nValid = len(valid) + nPartials
		heldPeak = len(cohort)
	}
	s.active = append(append(survivors, idle...), blocked...)
	sort.Slice(s.active, func(i, j int) bool { return s.active[i].id < s.active[j].id })
	degraded := false
	if nValid < c.quorum() {
		if !(s.wantPartial && s.degradeOK && nValid >= 1) {
			return fmt.Errorf("transport: round %d: quorum lost: %d valid updates, need %d",
				round, nValid, c.quorum())
		}
		// Graceful degradation: the parent speaks partial v2, so a
		// below-quorum shard forwards what it has — flagged Degraded, its
		// planned weight intact — instead of stalling or leaving the tree.
		degraded = true
	}
	coverage := 1.0
	if s.plannedWeight > 0 {
		coverage = s.coveredWeight / s.plannedWeight
	}
	s.lastCoverage = coverage
	if c.AcceptPartials {
		c.RoundMetrics.RecordRoundCoverage(coverage)
		if c.CoverageFloor > 0 && coverage < c.CoverageFloor {
			return fmt.Errorf("transport: round %d: coverage %.4f below floor %.4f (%.1f of %.1f planned cohort weight arrived)",
				round, coverage, c.CoverageFloor, s.coveredWeight, s.plannedWeight)
		}
	}
	c.RoundMetrics.RecordRoundPeakUpdateBytes(uint64(heldPeak) * 8 * uint64(len(s.global)))

	var report robust.Report
	if s.acc != nil {
		if s.wantPartial {
			s.partial = s.fold.PartialView(s.leafID, round)
			s.stampPartial(degraded)
			report = robust.Report{Contributors: nValid}
		} else {
			agg, rep, err := s.acc.Finalize()
			if err != nil {
				return fmt.Errorf("transport: round %d: %w", round, err)
			}
			s.global = agg
			report = rep
		}
	} else if c.AcceptPartials {
		// Robust tree root: the rule runs over the merged row reservoir —
		// exact per-client rows while the tree's total stays within the
		// sketch capacity, a uniform K-subsample (documented rank bound)
		// above it. Subtree-level quorum was already enforced on nValid.
		agg, rep, err := c.Robust.Aggregate(s.global, s.sketch.RowsView(), nil)
		if err != nil {
			return fmt.Errorf("transport: round %d: %w", round, err)
		}
		s.global = agg
		report = rep
	} else {
		snapshot := make([]float64, len(s.global))
		copy(snapshot, s.global)
		for _, o := range c.Observers {
			if fo, ok := o.(fl.FailureObserver); ok {
				fo.ObserveFailures(round, failures)
			}
		}
		for _, o := range c.Observers {
			o.ObserveRound(round, snapshot, valid)
		}
		if s.wantPartial {
			s.fold.Reset(len(s.global))
			for _, u := range valid {
				if err := s.fold.Fold(u); err != nil {
					return fmt.Errorf("transport: round %d: %w", round, err)
				}
			}
			s.partial = s.fold.PartialView(s.leafID, round)
			s.stampPartial(degraded)
			report = robust.Report{Contributors: nValid}
			if c.Reputation != nil {
				if len(s.leafMean) != len(s.global) {
					s.leafMean = make([]float64, len(s.global))
				}
				if err := s.fold.FinalizeInto(s.leafMean); err != nil {
					return fmt.Errorf("transport: round %d: %w", round, err)
				}
				s.scoreReputation(s.leafMean, valid, failures)
			}
		} else {
			agg, rep, err := fl.AggregateRobust(c.Robust, s.global, valid, c.MinQuorum)
			if err != nil {
				return fmt.Errorf("transport: round %d: %w", round, err)
			}
			s.scoreReputation(agg, valid, failures)
			s.global = agg
			report = rep
		}
	}

	c.Metrics.roundBytes(atomic.LoadUint64(&s.rxTally) + atomic.LoadUint64(&s.txTally) - bytesBefore)
	c.RoundMetrics.RecordRound(roundStart, nValid, len(failures), len(s.global))
	c.RoundMetrics.RecordRobust(report)
	c.RoundMetrics.RecordReputation(c.Reputation)
	return nil
}

// scoreReputation feeds one buffered round's evidence to the reputation
// tracker: per-client deviation from the aggregate, plus round
// participation for probation accounting.
func (s *session) scoreReputation(agg []float64, valid []fl.Update, failures []fl.ClientFailure) {
	rep := s.c.Reputation
	if rep == nil {
		return
	}
	ids := make([]int, len(valid))
	params := make([][]float64, len(valid))
	for i, u := range valid {
		ids[i] = u.ClientID
		params[i] = u.Params
	}
	rep.ObserveDeviations(ids, robust.Distances(agg, params))
	roundIDs := ids
	for _, f := range failures {
		if f.Reason != fl.FailQuarantined {
			roundIDs = append(roundIDs, f.ClientID)
		}
	}
	rep.EndRound(roundIDs)
}

// classifyFailure handles one failed exchange in fault-tolerant mode:
// close the connection, record telemetry and reputation evidence, and
// return the failure record.
func (s *session) classifyFailure(cc *clientConn, round int, err error) fl.ClientFailure {
	c := s.c
	cc.conn.Close()
	reason := failureReason(err)
	switch reason {
	case fl.FailTimeout:
		c.Metrics.stragglerDropped()
	case fl.FailInvalid:
		c.RoundMetrics.RecordValidationRejection()
		if c.Reputation != nil {
			c.Reputation.ObserveViolation(cc.id)
		}
	}
	// The failed member's registered weight was planned but never arrives,
	// pulling the round's coverage below 1; losing a partial child means a
	// whole subtree dropped out mid-round.
	w := float64(cc.samples)
	if w <= 0 {
		w = 1
	}
	s.plannedWeight += w
	if cc.partial {
		c.RoundMetrics.RecordTreeShardLost()
	}
	s.failCounts[cc.id]++
	return fl.ClientFailure{ClientID: cc.id, Round: round, Reason: reason, Err: err}
}

// runBuffered is the legacy round body: every cohort member exchanges
// concurrently, every update is materialized, and classification happens
// afterwards in roster order. Configurations that need the full update
// column (Median/TrimmedMean, observers, reputation) use it — including
// the robust tree root, whose partial children are tallied into the round
// sketch here (nPartials counts them toward quorum). Its memory is
// inherently O(cohort × params), so MaxBufferedUpdates turns a silent
// OOM into an explicit error.
func (s *session) runBuffered(rc *roundCtx, cohort []*clientConn) (survivors []*clientConn, valid []fl.Update, nPartials int, failures []fl.ClientFailure, err error) {
	c := s.c
	if c.MaxBufferedUpdates > 0 && len(cohort) > c.MaxBufferedUpdates {
		return nil, nil, 0, nil, fmt.Errorf(
			"transport: round %d: cohort of %d exceeds MaxBufferedUpdates %d (this configuration buffers the full update column; shrink the cohort or switch to a streaming-capable rule)",
			rc.round, len(cohort), c.MaxBufferedUpdates)
	}
	rc.met.inflight(len(cohort))
	defer rc.met.inflight(0)
	updates := make([]fl.Update, len(cohort))
	parts := make([]fl.Partial, len(cohort))
	errs := make([]error, len(cohort))
	var wg sync.WaitGroup
	for i, cc := range cohort {
		wg.Add(1)
		go func(i int, cc *clientConn) {
			defer wg.Done()
			if cc.partial {
				errs[i] = cc.exchangePartial(rc, &parts[i])
			} else {
				errs[i] = cc.exchange(rc, &updates[i])
			}
		}(i, cc)
	}
	wg.Wait()

	valid = make([]fl.Update, 0, len(cohort))
	survivors = make([]*clientConn, 0, len(cohort))
	for i, cc := range cohort {
		err := errs[i]
		if err == nil && cc.partial {
			err = s.tallyPartial(parts[i])
		}
		if err != nil {
			if !c.faultTolerant() {
				return nil, nil, 0, nil, err
			}
			failures = append(failures, s.classifyFailure(cc, rc.round, err))
			continue
		}
		if cc.partial {
			rc.met.partialAccepted()
			nPartials++
		} else {
			s.tallyUpdate(updates[i])
			valid = append(valid, updates[i])
		}
		survivors = append(survivors, cc)
	}
	return survivors, valid, nPartials, failures, nil
}

// runStream executes one round's exchanges through the bounded streaming
// window: a pool of min(W, cohort) workers claims cohort positions from a
// shared counter, the ordered-admission gate keeps at most W exchanges in
// flight (position i may start only once i < foldedBase+W, so the round
// frame is broadcast at admission and at most ~W decoded updates are ever
// live), and this goroutine folds each result in strict roster-position
// order. Because the fold order is the cohort's ID order regardless of
// arrival timing, the aggregate is bit-identical to the buffered path's.
//
// Deadlock-freedom: the folder only waits on position base, and position
// base always passes the gate (base < base+W), so some worker is always
// able to complete it.
func (s *session) runStream(rc *roundCtx, cohort []*clientConn) (survivors []*clientConn, failures []fl.ClientFailure, nValid int, err error) {
	c := s.c
	s.peakInflight = 0
	if len(cohort) == 0 {
		return nil, nil, 0, nil
	}
	w := c.MaxInflightUpdates
	if w <= 0 {
		w = defaultInflight
	}
	if w > len(cohort) {
		w = len(cohort)
	}
	type slot struct {
		u    fl.Update
		p    fl.Partial
		err  error
		done bool
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ring     = make([]slot, w)
		base     int
		claimed  = int64(-1)
		aborted  bool
		inflight int
		peak     int
	)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pos := int(atomic.AddInt64(&claimed, 1))
				if pos >= len(cohort) {
					return
				}
				mu.Lock()
				for pos >= base+w && !aborted {
					cond.Wait()
				}
				if aborted {
					mu.Unlock()
					return
				}
				inflight++
				if inflight > peak {
					peak = inflight
				}
				rc.met.inflight(inflight)
				mu.Unlock()
				cc := cohort[pos]
				var sl slot
				if cc.partial {
					sl.err = cc.exchangePartial(rc, &sl.p)
				} else {
					sl.err = cc.exchange(rc, &sl.u)
				}
				sl.done = true
				// Ring slots cannot collide: the gate bounds live
				// positions to [base, base+w), and distinct positions in
				// a w-wide window map to distinct slots mod w.
				mu.Lock()
				ring[pos%w] = sl
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	advance := func() {
		mu.Lock()
		base++
		inflight--
		rc.met.inflight(inflight)
		cond.Broadcast()
		mu.Unlock()
	}
	for pos := 0; pos < len(cohort); pos++ {
		mu.Lock()
		for !ring[pos%w].done {
			cond.Wait()
		}
		sl := ring[pos%w]
		ring[pos%w] = slot{}
		mu.Unlock()
		cc := cohort[pos]
		if sl.err == nil {
			if cc.partial {
				sl.err = s.acc.FoldPartial(sl.p)
				if sl.err == nil {
					sl.err = s.tallyPartial(sl.p)
				}
				if sl.err == nil {
					rc.met.partialAccepted()
				}
			} else {
				sl.err = s.acc.Fold(sl.u)
				if sl.err == nil {
					s.tallyUpdate(sl.u)
				}
			}
		}
		if sl.err == nil {
			nValid++
			survivors = append(survivors, cc)
			advance()
			continue
		}
		if !c.faultTolerant() {
			// Fail-stop: this is the earliest error in fold order, the
			// same error the buffered path would surface. Unblock gate
			// waiters, cut the in-flight I/O, and drain the pool.
			mu.Lock()
			aborted = true
			cond.Broadcast()
			mu.Unlock()
			for _, other := range cohort {
				other.conn.Close()
			}
			wg.Wait()
			rc.met.inflight(0)
			return nil, nil, 0, sl.err
		}
		failures = append(failures, s.classifyFailure(cc, rc.round, sl.err))
		advance()
	}
	wg.Wait()
	rc.met.inflight(0)
	s.peakInflight = peak
	return survivors, failures, nValid, nil
}
