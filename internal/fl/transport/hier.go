package transport

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/wire"
)

// Leaf is the mid-tier of a hierarchical aggregation tree: a coordinator
// for its local client shard and a client of the root. It runs the
// ordinary coordinator protocol against its roster, but instead of
// advancing the global itself it forwards one pre-division weighted
// partial (Σ wᵢ·uᵢ, Σ wᵢ, count) per round to the root over a MsgPartial
// frame. The root — a Coordinator with AcceptPartials — folds one partial
// per leaf, so its per-round traffic and memory scale with the number of
// leaves, not the client population. Because the weighted mean is
// associative over (sum, weight) pairs, a leaf/root tree computes
// bit-identically the same aggregate as a flat federation folding the
// same updates in the same order.
//
// Reputation and quarantine stay at the leaf (the only tier that sees
// individual updates); the root validates each partial structurally and
// semantically (weight and count positivity, finiteness, implied-mean
// norm bound) before folding it.
type Leaf struct {
	// ID identifies this leaf to the root (its client ID in the root's
	// roster).
	ID int
	// Root is the root coordinator's address, dialed through Retry.
	Root string
	// Local configures the shard-facing coordinator: roster size, quorum,
	// timeouts, codec, sampling, reputation. Rounds is ignored (the root
	// drives the schedule), and Robust, AcceptPartials, Checkpoint, and
	// Restore must be unset — partials only compose under the weighted
	// mean, and leaves are deliberately stateless across rounds (every
	// round's partial depends only on the root's broadcast).
	Local Coordinator
	// Retry controls dialing the root: backoff, jitter, compression-free
	// binary codec, and the Stop channel for clean shutdown.
	Retry RetryConfig
}

// ListenAndRun binds the shard listener on addr and runs the leaf; see
// RunWithListener.
func (l *Leaf) ListenAndRun(addr string, ready func(boundAddr string)) ([]float64, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	defer ln.Close()
	return l.RunWithListener(ln, ready)
}

// RunWithListener accepts the local shard roster, joins the root, and
// relays rounds until the root signals completion: each MsgRound from the
// root is re-broadcast to the shard, the shard's updates are folded into
// a weighted partial (streaming when the local configuration allows it),
// and the partial is sent up. It returns the last globals the root
// broadcast. A lost root connection is redialed with backoff (the attempt
// budget refreshing on progress, as in RunClientRetry); a lost local
// quorum is fatal — a leaf that cannot cover its shard must leave the
// tree so the root's quorum accounting sees it.
func (l *Leaf) RunWithListener(ln net.Listener, ready func(boundAddr string)) ([]float64, error) {
	c := &l.Local
	switch {
	case c.Robust != nil:
		return nil, errors.New("transport: leaf shards cannot use a robust rule: partials only compose under the weighted mean")
	case c.AcceptPartials:
		return nil, errors.New("transport: a leaf cannot itself accept partials (single-level trees only)")
	case c.Checkpoint != nil || c.Restore != nil:
		return nil, errors.New("transport: leaves are stateless; checkpoint the root instead")
	}
	s := &session{
		c:           c,
		global:      append([]float64(nil), c.Initial...),
		failCounts:  make(map[int]int),
		durable:     -1,
		wantPartial: true,
		leafID:      l.ID,
	}
	if acc, ok := c.streamingAccumulator(); ok {
		s.acc = acc
		s.fold = acc.(*fl.Fold) // Robust is nil, so the accumulator is the mean fold
	} else {
		s.fold = fl.NewFold(len(c.Initial))
	}

	if ready != nil {
		ready(ln.Addr().String())
	}
	active, err := c.acceptClients(ln, welcome{NextRound: 0}, &s.rxTally, &s.txTally)
	if err != nil {
		return nil, err
	}
	s.active = active
	defer s.closeConns()
	sort.Slice(s.active, func(i, j int) bool { return s.active[i].id < s.active[j].id })
	if c.AcceptRejoins {
		s.acceptDone = make(chan struct{})
		go s.acceptLoop(ln)
		defer func() {
			ln.Close() //nolint:errcheck — unblocks the accept loop; double close is benign
			<-s.acceptDone
		}()
	}

	rc := l.Retry.withDefaults()
	rootToken := ""
	var lastErr error
	for attempt := 1; attempt <= rc.MaxAttempts; attempt++ {
		if attempt > 1 {
			rc.Metrics.retryAttempt()
			if !sleepOrStop(rc.backoff(attempt-1), rc.Stop) {
				return nil, ErrClientStopped
			}
		}
		if stopped(rc.Stop) {
			return nil, ErrClientStopped
		}
		progressed, finished, err := l.rootSession(s, rc, &rootToken)
		if finished {
			if derr := s.sendDone(); derr != nil {
				return nil, derr
			}
			return s.global, nil
		}
		if errors.Is(err, ErrClientStopped) || errors.As(err, &errFatal{}) {
			return nil, err
		}
		if progressed {
			attempt = 1 // refresh the backoff budget, as RunClientRetry does
		}
		lastErr = err
	}
	return nil, lastErr
}

// rootSession runs one dial-relay session against the root. progressed
// reports whether at least one round completed (refreshing the retry
// budget); finished reports a clean MsgDone end.
func (l *Leaf) rootSession(s *session, rc RetryConfig, rootToken *string) (progressed, finished bool, err error) {
	conn, err := rc.Dial(l.Root)
	if err != nil {
		return false, false, fmt.Errorf("transport: leaf %d dialing root %s: %w", l.ID, l.Root, err)
	}
	defer conn.Close()
	stop := rc.Stop
	if stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-stop:
				conn.SetReadDeadline(time.Now()) //nolint:errcheck
			case <-done:
			}
		}()
	}
	stopErr := func(err error) error {
		if stopped(stop) {
			return ErrClientStopped
		}
		return err
	}

	samples := 0
	for _, cc := range s.active {
		samples += cc.samples
	}
	enc := gob.NewEncoder(conn)
	br := bufio.NewReader(conn)
	dec := gob.NewDecoder(br)
	if err := enc.Encode(hello{
		ID: l.ID, NumSamples: samples, Token: *rootToken,
		Codec: wire.CodecBinary, Partial: true,
	}); err != nil {
		return false, false, stopErr(fmt.Errorf("transport: leaf %d sending hello: %w", l.ID, err))
	}
	var w welcome
	if err := dec.Decode(&w); err != nil {
		return false, false, stopErr(fmt.Errorf("transport: leaf %d reading welcome: %w", l.ID, err))
	}
	if !w.Partial {
		return false, false, errFatal{fmt.Errorf(
			"transport: coordinator at %s did not confirm the partial protocol (not a root, or too old)", l.Root)}
	}
	if w.Codec != wire.CodecBinary {
		return false, false, errFatal{errors.New("transport: root accepted partials without the binary codec")}
	}
	if *rootToken == "" {
		*rootToken = w.Token
	} else if w.Token != *rootToken {
		return false, false, errFatal{errors.New("transport: root session token changed mid-federation")}
	}

	for {
		f, err := wire.ReadFrame(br, clientFrameBudget)
		if err != nil {
			return progressed, false, stopErr(fmt.Errorf("transport: leaf %d reading round frame: %w", l.ID, err))
		}
		switch f.Type {
		case wire.MsgDone:
			f.Release()
			return progressed, true, nil
		case wire.MsgRound:
			round, durable, params, derr := wire.DecodeRound(f.Payload)
			f.Release()
			if derr != nil {
				return progressed, false, errFatal{fmt.Errorf("transport: leaf %d decoding round frame: %w", l.ID, derr)}
			}
			// The root's broadcast is this round's center; its durable
			// announce passes through so shard clients bound their
			// rollback captures against the root's snapshots.
			s.global = params
			s.durable = durable
			if rerr := s.runRound(round); rerr != nil {
				// Local quorum loss (or any round failure) is fatal: a
				// leaf that cannot cover its shard leaves the tree and
				// lets the root's quorum accounting decide.
				return progressed, false, errFatal{rerr}
			}
			buf := wire.GetBuffer(wire.HeaderLen + wire.PartialPayloadLen(len(s.partial.Sum)))[:0]
			buf = wire.AppendPartialFrame(buf, s.partial)
			_, werr := conn.Write(buf)
			wire.PutBuffer(buf)
			if werr != nil {
				return progressed, false, stopErr(fmt.Errorf("transport: leaf %d sending partial: %w", l.ID, werr))
			}
			progressed = true
		default:
			f.Release()
			return progressed, false, errFatal{fmt.Errorf("transport: leaf %d: unexpected frame type %d from root", l.ID, f.Type)}
		}
	}
}
