package transport

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/wire"
)

// Leaf is one non-root node of an aggregation tree: a coordinator for the
// tier below it and a client of its parent. A client-facing leaf runs the
// ordinary coordinator protocol against its shard roster; an interior
// node (Local.AcceptPartials) instead serves child aggregators, so trees
// compose to arbitrary depth. Either way, instead of advancing the global
// itself the node forwards one pre-division weighted partial (Σ wᵢ·uᵢ,
// Σ wᵢ, count) per round to its parent. The root — a Coordinator with
// AcceptPartials — folds one partial per child, so every tier's per-round
// traffic and memory scale with its fan-out, not the client population.
// Because the weighted mean is associative over (sum, weight) pairs, a
// tree computes bit-identically the same mean aggregate as a flat
// federation folding the same updates in the same order.
//
// Partial protocol v2 (negotiated per link, falling back to v1 against
// old parents) extends the tree with failure-domain awareness:
//
//   - Graceful degradation: a node that loses its local quorum but still
//     holds ≥1 valid update forwards a Degraded partial carrying its full
//     planned weight, so the parent's coverage accounting sees exactly
//     how much of the subtree went missing instead of losing the whole
//     shard (see Coordinator.CoverageFloor for the root-side policy).
//   - Failover: when the per-parent retry budget against Root is
//     exhausted, the node re-parents to each address in AltParents in
//     order, with a fresh backoff ramp per parent. Session tokens are
//     checked across failovers, so every address must front the same
//     federation session.
//   - Row sketches: when the root runs a robust rule, a bottom-k row
//     reservoir (internal/fl/robust.Sketch) rides each partial and merges
//     losslessly at every tier, letting median/trimmed-mean evaluate at
//     the root over per-client rows the mean-only partials cannot carry.
//   - Root-coordinated sampling: the root's SampleFraction/SampleSeed
//     ride the MsgRound2 broadcast down the tree; client-facing shards
//     apply it with their leaf ID mixed into the seed (quorum-clamped
//     per shard), so one directive thins the whole population.
//
// Reputation and quarantine stay at the client-facing tier (the only one
// that sees individual updates); every parent validates each partial
// structurally and semantically (weight/count positivity, finiteness,
// expectation bound, sketch shape, implied-mean norm bound) before
// folding it.
type Leaf struct {
	// ID identifies this node to its parent (its client ID in the
	// parent's roster).
	ID int
	// Root is the parent's address, dialed through Retry.
	Root string
	// AltParents are fallback parent addresses tried in order after the
	// per-parent retry budget against Root (then each earlier alternate)
	// is exhausted — the re-parenting path when a parent dies for good.
	// Every address must belong to the same federation session.
	AltParents []string
	// PartialVersion caps the partial-protocol version offered to the
	// parent: 0 (default) and 2 offer v2 — coverage metadata, graceful
	// degradation, sketches, MsgRound2 — while 1 pins the legacy v1
	// exchange. The parent settles at min(offer, its own version).
	PartialVersion int
	// Local configures the tier-facing coordinator: roster size, quorum,
	// timeouts, codec, sampling, reputation. Setting AcceptPartials makes
	// this an interior node serving child aggregators (binary codec
	// required). Rounds is ignored (the root drives the schedule), and
	// Robust, Checkpoint, and Restore must be unset — robust evaluation
	// runs at the root over merged row sketches, and non-root nodes are
	// deliberately stateless across rounds (every round's partial depends
	// only on the root's broadcast).
	Local Coordinator
	// Retry controls dialing the parent: backoff, jitter,
	// compression-free binary codec, and the Stop channel for clean
	// shutdown. MaxAttempts is the consecutive-failure budget per parent
	// address (refreshed whenever a session makes round progress).
	Retry RetryConfig
}

// partialOffer is the protocol version this leaf offers its parent.
func (l *Leaf) partialOffer() int {
	if l.PartialVersion == 1 {
		return 1
	}
	return 2
}

// ListenAndRun binds the shard listener on addr and runs the leaf; see
// RunWithListener.
func (l *Leaf) ListenAndRun(addr string, ready func(boundAddr string)) ([]float64, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	defer ln.Close()
	return l.RunWithListener(ln, ready)
}

// RunWithListener accepts the local roster (clients on a leaf, child
// aggregators on an interior node), joins the parent, and relays rounds
// until the root signals completion: each round frame from the parent is
// re-broadcast downward, the tier's contributions are folded into a
// weighted partial (streaming when the local configuration allows it),
// and the partial is sent up. It returns the last globals the root
// broadcast. A lost parent connection is redialed with backoff — the
// attempt budget refreshing on progress, as in RunClientRetry — and when
// one parent's budget runs dry the node fails over to the next AltParents
// address. A lost local quorum is fatal on a v1 parent link; on a v2 link
// the node degrades gracefully as long as one valid contribution remains
// (see Leaf).
func (l *Leaf) RunWithListener(ln net.Listener, ready func(boundAddr string)) ([]float64, error) {
	c := &l.Local
	switch {
	case c.Robust != nil:
		return nil, errors.New("transport: non-root tree nodes cannot use a robust rule: robust evaluation runs at the root over merged row sketches")
	case c.AcceptPartials && c.Codec != wire.CodecBinary:
		return nil, errors.New("transport: an interior aggregator requires the binary codec")
	case c.AcceptPartials && (c.BufferRounds || len(c.Observers) > 0 || c.Reputation != nil):
		return nil, errors.New("transport: an interior aggregator supports no observers, reputation, or forced buffering")
	case c.Checkpoint != nil || c.Restore != nil:
		return nil, errors.New("transport: tree nodes are stateless; checkpoint the root instead")
	}
	s := &session{
		c:            c,
		global:       append([]float64(nil), c.Initial...),
		failCounts:   make(map[int]int),
		durable:      -1,
		wantPartial:  true,
		leafID:       l.ID,
		lastCoverage: 1,
	}
	if acc, ok := c.streamingAccumulator(); ok {
		s.acc = acc
		s.fold = acc.(*fl.Fold) // Robust is nil, so the accumulator is the mean fold
	} else {
		s.fold = fl.NewFold(len(c.Initial))
	}

	if ready != nil {
		ready(ln.Addr().String())
	}
	active, err := c.acceptClients(ln, welcome{NextRound: 0}, &s.rxTally, &s.txTally)
	if err != nil {
		return nil, err
	}
	s.active = active
	defer s.closeConns()
	sort.Slice(s.active, func(i, j int) bool { return s.active[i].id < s.active[j].id })
	if c.AcceptRejoins {
		s.acceptDone = make(chan struct{})
		go s.acceptLoop(ln)
		defer func() {
			ln.Close() //nolint:errcheck — unblocks the accept loop; double close is benign
			<-s.acceptDone
		}()
	}

	rc := l.Retry.withDefaults()
	parents := append([]string{l.Root}, l.AltParents...)
	parent := 0
	rootToken := ""
	var lastErr error
	for attempt := 1; attempt <= rc.MaxAttempts; attempt++ {
		if attempt > 1 {
			rc.Metrics.retryAttempt()
			if !sleepOrStop(rc.backoff(attempt-1), rc.Stop) {
				return nil, ErrClientStopped
			}
		}
		if stopped(rc.Stop) {
			return nil, ErrClientStopped
		}
		progressed, finished, err := l.rootSession(s, rc, parents[parent], &rootToken)
		if finished {
			if derr := s.sendDone(); derr != nil {
				return nil, derr
			}
			return s.global, nil
		}
		if errors.Is(err, ErrClientStopped) || errors.As(err, &errFatal{}) {
			return nil, err
		}
		if progressed {
			attempt = 1 // refresh the backoff budget, as RunClientRetry does
		}
		lastErr = err
		if attempt == rc.MaxAttempts && parent+1 < len(parents) {
			// This parent's consecutive-failure budget is spent: fail over
			// to the next address with a fresh budget and backoff ramp.
			parent++
			attempt = 0
		}
	}
	return nil, lastErr
}

// rootSession runs one dial-relay session against the parent at addr.
// progressed reports whether at least one round completed (refreshing the
// retry budget); finished reports a clean MsgDone end.
func (l *Leaf) rootSession(s *session, rc RetryConfig, addr string, rootToken *string) (progressed, finished bool, err error) {
	conn, err := rc.Dial(addr)
	if err != nil {
		return false, false, fmt.Errorf("transport: leaf %d dialing parent %s: %w", l.ID, addr, err)
	}
	defer conn.Close()
	stop := rc.Stop
	if stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-stop:
				conn.SetReadDeadline(time.Now()) //nolint:errcheck
			case <-done:
			}
		}()
	}
	stopErr := func(err error) error {
		if stopped(stop) {
			return ErrClientStopped
		}
		return err
	}

	samples := 0
	for _, cc := range s.active {
		samples += cc.samples
	}
	enc := gob.NewEncoder(conn)
	br := bufio.NewReader(conn)
	dec := gob.NewDecoder(br)
	if err := enc.Encode(hello{
		ID: l.ID, NumSamples: samples, Token: *rootToken,
		Codec: wire.CodecBinary, Partial: true, PartialV: l.partialOffer(),
	}); err != nil {
		return false, false, stopErr(fmt.Errorf("transport: leaf %d sending hello: %w", l.ID, err))
	}
	var w welcome
	if err := dec.Decode(&w); err != nil {
		return false, false, stopErr(fmt.Errorf("transport: leaf %d reading welcome: %w", l.ID, err))
	}
	if !w.Partial {
		return false, false, errFatal{fmt.Errorf(
			"transport: coordinator at %s did not confirm the partial protocol (not a tree parent, or too old)", addr)}
	}
	if w.Codec != wire.CodecBinary {
		return false, false, errFatal{errors.New("transport: parent accepted partials without the binary codec")}
	}
	if *rootToken == "" {
		*rootToken = w.Token
	} else if w.Token != *rootToken {
		return false, false, errFatal{errors.New("transport: parent session token changed mid-federation")}
	}
	// The settled version governs this link: v2 enables degraded partials
	// and the extension frame; v1 (or an old parent leaving the field 0)
	// keeps the legacy exchange.
	v2 := w.PartialV >= 2
	s.degradeOK = v2

	for {
		f, err := wire.ReadFrame(br, clientFrameBudget)
		if err != nil {
			return progressed, false, stopErr(fmt.Errorf("transport: leaf %d reading round frame: %w", l.ID, err))
		}
		var round int
		switch f.Type {
		case wire.MsgDone:
			f.Release()
			return progressed, true, nil
		case wire.MsgRound:
			r, durable, params, derr := wire.DecodeRound(f.Payload)
			f.Release()
			if derr != nil {
				return progressed, false, errFatal{fmt.Errorf("transport: leaf %d decoding round frame: %w", l.ID, derr)}
			}
			// The parent's broadcast is this round's center; its durable
			// announce passes through so shard clients bound their
			// rollback captures against the root's snapshots. A v1 round
			// frame carries no tree directive, so none is in force.
			s.global = params
			s.durable = durable
			s.treeFrac, s.treeSeed, s.sketchCap = 0, 0, 0
			round = r
		case wire.MsgRound2:
			r2, derr := wire.DecodeRound2(f.Payload)
			f.Release()
			if derr != nil {
				return progressed, false, errFatal{fmt.Errorf("transport: leaf %d decoding round frame: %w", l.ID, derr)}
			}
			s.global = r2.Params
			s.durable = r2.Durable
			s.treeFrac, s.treeSeed, s.sketchCap = r2.SampleFrac, r2.SampleSeed, r2.SketchCap
			round = r2.Round
		default:
			f.Release()
			return progressed, false, errFatal{fmt.Errorf("transport: leaf %d: unexpected frame type %d from parent", l.ID, f.Type)}
		}
		if rerr := s.runRound(round); rerr != nil {
			// Unrecoverable round failure (quorum loss on a v1 link, local
			// coverage floor, ...): the node leaves the tree and lets the
			// parent's coverage accounting decide.
			return progressed, false, errFatal{rerr}
		}
		var buf []byte
		if v2 {
			k := 0
			if s.partial.Sketch != nil {
				k = len(s.partial.Sketch.Keys)
			}
			buf = wire.GetBuffer(wire.HeaderLen + wire.Partial2PayloadLen(len(s.partial.Sum), k, s.partial.Sketch != nil))[:0]
			buf = wire.AppendPartial2Frame(buf, s.partial)
		} else {
			buf = wire.GetBuffer(wire.HeaderLen + wire.PartialPayloadLen(len(s.partial.Sum)))[:0]
			buf = wire.AppendPartialFrame(buf, s.partial)
		}
		// One Write per frame: a connection cut mid-call tears the frame
		// on the wire, which the parent's byte-budgeted reader discards
		// whole (the torn-frame chaos tests depend on this).
		_, werr := conn.Write(buf)
		wire.PutBuffer(buf)
		if werr != nil {
			return progressed, false, stopErr(fmt.Errorf("transport: leaf %d sending partial: %w", l.ID, werr))
		}
		progressed = true
	}
}
