package transport

// Tests for the arbitrary-depth aggregation tree: depth-3 parity with the
// flat federation, graceful degradation and coverage accounting, robust
// rules through merged row sketches, parent failover, mid-partial-frame
// kills (in-process and over TCP), v1↔v2 partial negotiation, the
// root-coordinated sampling directive, and bit-identical root restart.

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/checkpoint"
	"github.com/cip-fl/cip/internal/fl/faults"
	"github.com/cip-fl/cip/internal/fl/robust"
	"github.com/cip-fl/cip/internal/fl/wire"
	"github.com/cip-fl/cip/internal/telemetry"
)

// startNode launches one tree node (interior or client-facing leaf) and
// returns its bound address plus a wait func for its outcome.
func startNode(t *testing.T, node *Leaf) (string, func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	var (
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err = node.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	return <-addrCh, func() error {
		wg.Wait()
		return err
	}
}

// vecParams replicates vecClient.TrainLocal's deterministic update.
func vecParams(id, round int, global []float64) []float64 {
	p := make([]float64, len(global))
	for i := range p {
		p[i] = global[i] + float64(id+1)*0.01*float64(i+1) + float64(round)*0.001
	}
	return p
}

// TestDepth3TreeMatchesFlat: a root ← 2 interiors ← 4 leaves ← 8 clients
// tree must agree with the flat federation over the identical roster to
// reassociation tolerance (three tiers of weighted-sum reassociation).
func TestDepth3TreeMatchesFlat(t *testing.T) {
	const interiors, leavesPer, perLeaf, rounds = 2, 2, 2, 3
	initial := []float64{0.5, -1.25, 3, 0.0625}
	nLeaves := interiors * leavesPer

	flat := &Coordinator{
		NumClients: nLeaves * perLeaf, Rounds: rounds,
		Initial: append([]float64(nil), initial...), Codec: "binary",
	}
	want, _ := runVecFederation(t, flat, nLeaves*perLeaf)

	root := &Coordinator{
		NumClients: interiors, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true,
	}
	rootAddr, rootWait := startCoordinator(t, root)

	intWaits := make([]func() error, interiors)
	leafWaits := make([]func() error, nLeaves)
	clientErrs := make([][]error, nLeaves)
	for i := 0; i < interiors; i++ {
		interior := &Leaf{
			ID: i, Root: rootAddr,
			Local: Coordinator{
				NumClients: leavesPer,
				Initial:    append([]float64(nil), initial...),
				Codec:      "binary", AcceptPartials: true,
			},
		}
		intAddr, wait := startNode(t, interior)
		intWaits[i] = wait
		for j := 0; j < leavesPer; j++ {
			g := i*leavesPer + j
			clientErrs[g] = make([]error, perLeaf)
			leaf := &Leaf{
				ID: j, Root: intAddr,
				Local: Coordinator{
					NumClients: perLeaf,
					Initial:    append([]float64(nil), initial...),
				},
			}
			leafWaits[g] = startLeaf(t, leaf, vecShard(g), clientErrs[g])
		}
	}

	got, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root: %v", rootErr)
	}
	for i, wait := range intWaits {
		if err := wait(); err != nil {
			t.Fatalf("interior %d: %v", i, err)
		}
	}
	for g, wait := range leafWaits {
		if err := wait(); err != nil {
			t.Fatalf("leaf %d: %v", g, err)
		}
		for i, err := range clientErrs[g] {
			if err != nil {
				t.Fatalf("leaf %d client %d: %v", g, i, err)
			}
		}
	}
	for i := range want {
		if diff := math.Abs(got[i] - want[i]); diff > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("coord %d: depth-3 tree %v vs flat %v", i, got[i], want[i])
		}
	}
}

// dieClient is a vecClient that fails training from dieRound on, ending
// its session and shrinking its leaf's valid set below quorum.
type dieClient struct {
	vecClient
	dieRound int
}

func (c *dieClient) TrainLocal(round int, global []float64) (fl.Update, error) {
	if round >= c.dieRound {
		return fl.Update{}, errTrain
	}
	return c.vecClient.TrainLocal(round, global)
}

// TestDegradedPartialCarriesCoverage: a leaf that loses local quorum on a
// v2 link forwards a degraded partial instead of dying, and the root's
// coverage gauge dips by exactly the missing shard weight that round.
func TestDegradedPartialCarriesCoverage(t *testing.T) {
	const leaves, perLeaf, rounds = 2, 2, 5
	initial := []float64{1, -2, 3}
	reg := telemetry.NewRegistry()
	rm := fl.NewMetrics(reg)

	coverages := make([]float64, rounds)
	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true,
		RoundMetrics: rm,
		AfterRound: func(round int) error {
			coverages[round] = rm.RoundCoverage.Value()
			return nil
		},
	}
	rootAddr, rootWait := startCoordinator(t, root)

	// Leaf 0's second client (samples 8) dies at round 2. MinQuorum 2 (the
	// full roster) makes the leaf fault-tolerant at the exchange yet below
	// quorum afterwards, so round 2 degrades instead of failing the shard.
	shard0 := []fl.Client{
		&vecClient{id: 0, samples: 5},
		&dieClient{vecClient: vecClient{id: 1, samples: 8}, dieRound: 2},
	}
	errs0 := make([]error, len(shard0))
	wait0 := startLeaf(t, &Leaf{
		ID: 0, Root: rootAddr,
		Local: Coordinator{NumClients: perLeaf, MinQuorum: perLeaf,
			Initial: append([]float64(nil), initial...)},
	}, shard0, errs0)
	errs1 := make([]error, perLeaf)
	wait1 := startLeaf(t, &Leaf{
		ID: 1, Root: rootAddr,
		Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
	}, vecShard(1), errs1)

	global, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root should ride out the degraded shard: %v", rootErr)
	}
	if len(global) != len(initial) {
		t.Fatalf("global length %d, want %d", len(global), len(initial))
	}
	if err := wait0(); err != nil {
		t.Fatalf("degraded leaf should finish: %v", err)
	}
	if err := wait1(); err != nil {
		t.Fatalf("healthy leaf: %v", err)
	}

	// Leaf 1's shard (vecShard(1): ids 2,3 → samples 11,14) is always
	// whole. In round 2 leaf 0 plans 13 but delivers 5, so the root sees
	// 30 of 38 planned weight; afterwards the dead client has left the
	// cohort entirely and coverage recovers (the rounds stay degraded —
	// one survivor under quorum 2 — but the shrunken plan is met in full).
	const whole = 11 + 14
	wantDip := (5.0 + whole) / (13.0 + whole)
	for r := 0; r < rounds; r++ {
		want := 1.0
		if r == 2 {
			want = wantDip
		}
		if math.Abs(coverages[r]-want) > 1e-12 {
			t.Fatalf("round %d coverage %v, want %v", r, coverages[r], want)
		}
	}
}

// TestCoverageFloorAbortsRound: the same degraded federation under a
// coverage floor above the surviving weight aborts cleanly at the root.
func TestCoverageFloorAbortsRound(t *testing.T) {
	const leaves, perLeaf, rounds = 2, 2, 5
	initial := []float64{1, -2, 3}
	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true,
		CoverageFloor: 0.9,
	}
	rootAddr, rootWait := startCoordinator(t, root)

	shard0 := []fl.Client{
		&vecClient{id: 0, samples: 5},
		&dieClient{vecClient: vecClient{id: 1, samples: 8}, dieRound: 2},
	}
	errs0 := make([]error, len(shard0))
	wait0 := startLeaf(t, &Leaf{
		ID: 0, Root: rootAddr,
		Local: Coordinator{NumClients: perLeaf, MinQuorum: perLeaf,
			Initial: append([]float64(nil), initial...)},
	}, shard0, errs0)
	errs1 := make([]error, perLeaf)
	wait1 := startLeaf(t, &Leaf{
		ID: 1, Root: rootAddr,
		Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
	}, vecShard(1), errs1)

	_, rootErr := rootWait()
	if rootErr == nil || !strings.Contains(rootErr.Error(), "below floor") {
		t.Fatalf("root error %v, want a coverage-floor abort", rootErr)
	}
	// The tree tears down with the root; children exit with whatever the
	// broken parent link produced.
	wait0() //nolint:errcheck
	wait1() //nolint:errcheck
}

// TestTreeMedianMatchesFlatRobust: with the reservoir above the client
// count, the root's median over merged sketch rows is bit-identical to
// the flat robust federation over the same updates (per-coordinate sort
// makes row order irrelevant).
func TestTreeMedianMatchesFlatRobust(t *testing.T) {
	const leaves, perLeaf, rounds = 4, 2, 3
	initial := []float64{0.5, -1.25, 3, 0.0625}

	flat := &Coordinator{
		NumClients: leaves * perLeaf, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", Robust: robust.Median{},
	}
	want, _ := runVecFederation(t, flat, leaves*perLeaf)

	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true, Robust: robust.Median{},
	}
	rootAddr, rootWait := startCoordinator(t, root)
	waits := make([]func() error, leaves)
	clientErrs := make([][]error, leaves)
	for l := 0; l < leaves; l++ {
		clientErrs[l] = make([]error, perLeaf)
		waits[l] = startLeaf(t, &Leaf{
			ID: l, Root: rootAddr,
			Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
		}, vecShard(l), clientErrs[l])
	}
	got, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("robust root: %v", rootErr)
	}
	for l, wait := range waits {
		if err := wait(); err != nil {
			t.Fatalf("leaf %d: %v", l, err)
		}
		for i, err := range clientErrs[l] {
			if err != nil {
				t.Fatalf("leaf %d client %d: %v", l, i, err)
			}
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coord %d: tree median %v vs flat %v — sketch path lost exactness", i, got[i], want[i])
		}
	}
}

// startProxy forwards TCP connections to target until stopped; stopping
// kills the live connections, simulating a dead parent whose address no
// longer answers.
func startProxy(t *testing.T, target string) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close() //nolint:errcheck
				continue
			}
			mu.Lock()
			conns = append(conns, c, up)
			mu.Unlock()
			go func() {
				_, _ = io.Copy(up, c)
				up.Close() //nolint:errcheck
			}()
			go func() {
				_, _ = io.Copy(c, up)
				c.Close() //nolint:errcheck
			}()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close() //nolint:errcheck
		mu.Lock()
		for _, c := range conns {
			c.Close() //nolint:errcheck
		}
		mu.Unlock()
	}
}

// TestLeafFailsOverToAltParent: a leaf whose primary parent address dies
// mid-federation exhausts that parent's retry budget, fails over to the
// alternate address (the same session), rejoins with its token, and
// finishes.
func TestLeafFailsOverToAltParent(t *testing.T) {
	const leaves, perLeaf, rounds = 2, 2, 6
	initial := []float64{1, -2, 3}
	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true, AcceptRejoins: true,
		MinQuorum: 1, RoundTimeout: 2 * time.Second,
	}
	var stopProxy func()
	var once sync.Once
	root.AfterRound = func(round int) error {
		if round == 1 {
			once.Do(stopProxy)
		}
		// Pace the rounds: without live pacing the root burns through the
		// remaining rounds in microseconds, finishing before the orphaned
		// leaf can fail over and rejoin.
		if round >= 1 {
			time.Sleep(150 * time.Millisecond)
		}
		return nil
	}
	rootAddr, rootWait := startCoordinator(t, root)
	proxyAddr, stop := startProxy(t, rootAddr)
	stopProxy = stop

	errs0 := make([]error, perLeaf)
	wait0 := startLeaf(t, &Leaf{
		ID: 0, Root: rootAddr,
		Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
	}, vecShard(0), errs0)

	// Leaf 1 reaches the federation through the proxy; when the proxy
	// dies after round 1 its per-parent budget burns down fast and the
	// alternate (direct) address takes over.
	errs1 := make([]error, perLeaf)
	wait1 := startLeaf(t, &Leaf{
		ID: 1, Root: proxyAddr, AltParents: []string{rootAddr},
		Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
		Retry: RetryConfig{MaxAttempts: 2, BaseDelay: 20 * time.Millisecond,
			Rng: rand.New(rand.NewSource(3))},
	}, vecShard(1), errs1)

	global, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root: %v", rootErr)
	}
	if len(global) != len(initial) {
		t.Fatalf("global length %d, want %d", len(global), len(initial))
	}
	if err := wait0(); err != nil {
		t.Fatalf("leaf 0: %v", err)
	}
	if err := wait1(); err != nil {
		t.Fatalf("failed-over leaf should finish through the alternate parent: %v", err)
	}
	for i, err := range errs1 {
		if err != nil {
			t.Fatalf("failed-over leaf client %d: %v", i, err)
		}
	}
}

// pipeAddr/pipeListener host a coordinator over in-memory pipes, the
// in-process flavor of the mid-frame-kill test.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn, 16), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

func (l *pipeListener) Dial(string) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		client.Close() //nolint:errcheck
		server.Close() //nolint:errcheck
		return nil, net.ErrClosed
	}
}

// testMidPartialKill is the shared body of the mid-partial-frame kill
// test: leaf 1's second partial frame is torn in half on the wire and the
// link killed under it. The parent's byte-budgeted reader discards the
// torn frame and drops the shard for that round (quorum 1 holds); the
// leaf redials, rejoins with its session token, and serves the rest.
func testMidPartialKill(t *testing.T, inProcess bool) {
	const leaves, perLeaf, rounds = 2, 2, 5
	initial := []float64{1, -2, 3}
	reg := telemetry.NewRegistry()
	rm := fl.NewMetrics(reg)
	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true, AcceptRejoins: true,
		MinQuorum: 1, RoundTimeout: 2 * time.Second,
		RoundMetrics: rm,
		// Pace the rounds so the cut leaf's redial+rejoin lands before the
		// federation ends (see TestLeafFailsOverToAltParent).
		AfterRound: func(int) error { time.Sleep(150 * time.Millisecond); return nil },
	}

	var (
		rootAddr string
		rootWait func() ([]float64, error)
		baseDial func(string) (net.Conn, error)
	)
	if inProcess {
		pl := newPipeListener()
		rootAddr = "pipe"
		baseDial = pl.Dial
		var (
			global []float64
			err    error
			wg     sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			global, err = root.RunWithListener(pl, nil)
		}()
		rootWait = func() ([]float64, error) {
			wg.Wait()
			return global, err
		}
	} else {
		rootAddr, rootWait = startCoordinator(t, root)
		baseDial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}

	// Leaf 1's first parent connection tears its second partial frame
	// (round 1) mid-write; later dials are clean.
	var (
		cutMu sync.Mutex
		cut   *faults.CutConn
	)
	cutDial := func(addr string) (net.Conn, error) {
		c, err := baseDial(addr)
		if err != nil {
			return nil, err
		}
		cutMu.Lock()
		defer cutMu.Unlock()
		if cut == nil {
			cut = faults.CutFrame(c, wire.MsgPartial2, 1)
			return cut, nil
		}
		return c, nil
	}

	errs0 := make([]error, perLeaf)
	wait0 := startLeaf(t, &Leaf{
		ID: 0, Root: rootAddr,
		Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
		Retry: RetryConfig{MaxAttempts: 5, BaseDelay: 20 * time.Millisecond, Dial: baseDial,
			Rng: rand.New(rand.NewSource(4))},
	}, vecShard(0), errs0)
	errs1 := make([]error, perLeaf)
	wait1 := startLeaf(t, &Leaf{
		ID: 1, Root: rootAddr,
		Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
		Retry: RetryConfig{MaxAttempts: 5, BaseDelay: 20 * time.Millisecond, Dial: cutDial,
			Rng: rand.New(rand.NewSource(5))},
	}, vecShard(1), errs1)

	global, rootErr := rootWait()
	if rootErr != nil {
		t.Fatalf("root should discard the torn frame and continue: %v", rootErr)
	}
	if len(global) != len(initial) {
		t.Fatalf("global length %d, want %d", len(global), len(initial))
	}
	if err := wait0(); err != nil {
		t.Fatalf("leaf 0: %v", err)
	}
	if err := wait1(); err != nil {
		t.Fatalf("cut leaf should rejoin and finish: %v", err)
	}
	cutMu.Lock()
	fired := cut != nil && cut.Fired()
	cutMu.Unlock()
	if !fired {
		t.Fatal("the scheduled mid-frame cut never fired")
	}
	if rm.TreeShardsLost.Value() < 1 {
		t.Fatal("shard-lost counter did not record the torn partial")
	}
}

func TestMidPartialFrameKillOverTCP(t *testing.T)   { testMidPartialKill(t, false) }
func TestMidPartialFrameKillInProcess(t *testing.T) { testMidPartialKill(t, true) }

// TestPartialVersionNegotiationMatrix drives {v1, v2} leaves against mean
// and median roots. Mean roots fold identical sums either way; median
// roots see per-client rows from v2 leaves and an implied-mean fallback
// row per v1 leaf, matching the simulated reference exactly.
func TestPartialVersionNegotiationMatrix(t *testing.T) {
	const perLeaf, rounds = 2, 3
	initial := []float64{0.5, -1.25, 3, 0.0625}

	runTree := func(rule robust.Aggregator, versions []int) []float64 {
		t.Helper()
		root := &Coordinator{
			NumClients: len(versions), Rounds: rounds,
			Initial: append([]float64(nil), initial...),
			Codec:   "binary", AcceptPartials: true, Robust: rule,
		}
		rootAddr, rootWait := startCoordinator(t, root)
		waits := make([]func() error, len(versions))
		clientErrs := make([][]error, len(versions))
		for l, v := range versions {
			clientErrs[l] = make([]error, perLeaf)
			waits[l] = startLeaf(t, &Leaf{
				ID: l, Root: rootAddr, PartialVersion: v,
				Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
			}, vecShard(l), clientErrs[l])
		}
		global, rootErr := rootWait()
		if rootErr != nil {
			t.Fatalf("root (versions %v): %v", versions, rootErr)
		}
		for l, wait := range waits {
			if err := wait(); err != nil {
				t.Fatalf("leaf %d (v%d): %v", l, versions[l], err)
			}
			for i, err := range clientErrs[l] {
				if err != nil {
					t.Fatalf("leaf %d client %d: %v", l, i, err)
				}
			}
		}
		return global
	}

	// simulateMedian replays the tree semantics: v2 leaves contribute one
	// row per client, v1 leaves their fold's implied mean, and the root
	// takes the per-coordinate median.
	simulateMedian := func(versions []int) []float64 {
		g := append([]float64(nil), initial...)
		for r := 0; r < rounds; r++ {
			var rows [][]float64
			for l, v := range versions {
				ids := []int{2 * l, 2*l + 1}
				if v == 1 {
					sum := make([]float64, len(g))
					w := 0.0
					for _, id := range ids {
						p := vecParams(id, r, g)
						ww := float64(5 + 3*id)
						for i := range sum {
							sum[i] += ww * p[i]
						}
						w += ww
					}
					row := make([]float64, len(sum))
					for i := range sum {
						row[i] = sum[i] / w
					}
					rows = append(rows, row)
				} else {
					for _, id := range ids {
						rows = append(rows, vecParams(id, r, g))
					}
				}
			}
			agg, _, err := robust.Median{}.Aggregate(g, rows, nil)
			if err != nil {
				t.Fatal(err)
			}
			g = agg
		}
		return g
	}

	meanRef := runTree(nil, []int{2, 2})
	for _, versions := range [][]int{{1, 2}, {1, 1}} {
		got := runTree(nil, versions)
		for i := range meanRef {
			if got[i] != meanRef[i] {
				t.Fatalf("mean root, versions %v, coord %d: %v vs all-v2 %v",
					versions, i, got[i], meanRef[i])
			}
		}
	}
	for _, versions := range [][]int{{2, 2}, {1, 2}, {1, 1}} {
		got := runTree(robust.Median{}, versions)
		want := simulateMedian(versions)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("median root, versions %v, coord %d: %v vs simulated %v",
					versions, i, got[i], want[i])
			}
		}
	}
}

// TestRootSamplingDirectiveThinsShards: the root's SampleFraction rides
// the round broadcast down the tree and each client-facing leaf draws its
// own quorum-clamped cohort — exactly two of four clients per leaf per
// round here, with the leaf-mixed seed rotating membership.
func TestRootSamplingDirectiveThinsShards(t *testing.T) {
	const leaves, perLeaf, rounds = 2, 4, 8
	initial := []float64{1, -2, 3}
	root := &Coordinator{
		NumClients: leaves, Rounds: rounds,
		Initial: append([]float64(nil), initial...),
		Codec:   "binary", AcceptPartials: true,
		SampleFraction: 0.5, SampleSeed: 9,
	}
	rootAddr, rootWait := startCoordinator(t, root)

	shards := make([][]fl.Client, leaves)
	waits := make([]func() error, leaves)
	clientErrs := make([][]error, leaves)
	for l := 0; l < leaves; l++ {
		shards[l] = make([]fl.Client, perLeaf)
		for j := 0; j < perLeaf; j++ {
			id := l*perLeaf + j
			shards[l][j] = &vecClient{id: id, samples: 5 + 3*id}
		}
		clientErrs[l] = make([]error, perLeaf)
		waits[l] = startLeaf(t, &Leaf{
			ID: l, Root: rootAddr,
			Local: Coordinator{
				NumClients: perLeaf, MinQuorum: 2,
				Initial: append([]float64(nil), initial...),
			},
		}, shards[l], clientErrs[l])
	}

	if _, rootErr := rootWait(); rootErr != nil {
		t.Fatalf("root: %v", rootErr)
	}
	for l, wait := range waits {
		if err := wait(); err != nil {
			t.Fatalf("leaf %d: %v", l, err)
		}
	}

	for l := 0; l < leaves; l++ {
		total, touched := 0, 0
		for _, c := range shards[l] {
			n := int(c.(*vecClient).rounds)
			total += n
			if n > 0 {
				touched++
			}
		}
		if total != 2*rounds {
			t.Fatalf("leaf %d trained %d client-rounds, want %d (frac 0.5 of %d, quorum-clamped)",
				l, total, 2*rounds, perLeaf)
		}
		if touched < 3 {
			t.Fatalf("leaf %d only ever sampled %d distinct clients; the per-round draw is not rotating", l, touched)
		}
	}
}

// TestTreeRootRestartResumesBitIdentical: the root (the only stateful
// node) is crashed between rounds and restarted from its snapshot on the
// same address; the leaves ride the outage on their retry budget and the
// final global must match the uninterrupted durable run bit for bit —
// for the mean tree and for the sketch-fed clipped-mean tree.
func TestTreeRootRestartResumesBitIdentical(t *testing.T) {
	const leaves, perLeaf, rounds = 2, 2, 6
	initial := []float64{0.5, -1.25, 3, 0.0625}

	for _, tc := range []struct {
		name string
		rule func() robust.Aggregator
	}{
		{"mean", func() robust.Aggregator { return nil }},
		{"clipped-mean", func() robust.Aggregator { return robust.ClippedMean{MaxNorm: 1e9} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runOnce := func(crash bool) []float64 {
				t.Helper()
				mgr := &checkpoint.Manager{Path: filepath.Join(t.TempDir(), "root.ckpt")}
				root := &Coordinator{
					NumClients: leaves, Rounds: rounds,
					Initial: append([]float64(nil), initial...),
					Codec:   "binary", AcceptPartials: true, Robust: tc.rule(),
					Checkpoint: mgr, CheckpointEvery: 1,
				}
				if crash {
					root.AfterRound = faults.CrashAt(2)
				}
				rootAddr, rootWait := startCoordinator(t, root)

				waits := make([]func() error, leaves)
				clientErrs := make([][]error, leaves)
				for l := 0; l < leaves; l++ {
					clientErrs[l] = make([]error, perLeaf)
					waits[l] = startLeaf(t, &Leaf{
						ID: l, Root: rootAddr,
						Local: Coordinator{NumClients: perLeaf, Initial: append([]float64(nil), initial...)},
						Retry: RetryConfig{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond,
							Rng: rand.New(rand.NewSource(int64(700 + l)))},
					}, vecShard(l), clientErrs[l])
				}

				global, rootErr := rootWait()
				if crash {
					if !errors.Is(rootErr, faults.ErrCrash) {
						t.Fatalf("first root: got %v, want ErrCrash", rootErr)
					}
					snap, err := mgr.Load()
					if err != nil {
						t.Fatal(err)
					}
					second := &Coordinator{
						NumClients: leaves, Rounds: rounds,
						Initial: append([]float64(nil), initial...),
						Codec:   "binary", AcceptPartials: true, Robust: tc.rule(),
						Checkpoint: mgr, CheckpointEvery: 1,
						Restore: snap,
					}
					var err2 error
					global, err2 = second.ListenAndRun(rootAddr, nil)
					if err2 != nil {
						t.Fatalf("restarted root: %v", err2)
					}
				} else if rootErr != nil {
					t.Fatalf("root: %v", rootErr)
				}
				for l, wait := range waits {
					if err := wait(); err != nil {
						t.Fatalf("leaf %d: %v", l, err)
					}
					for i, err := range clientErrs[l] {
						if err != nil {
							t.Fatalf("leaf %d client %d: %v", l, i, err)
						}
					}
				}
				return global
			}

			want := runOnce(false)
			got := runOnce(true)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("coord %d: restarted %v vs uninterrupted %v — resume is not bit-identical",
						i, got[i], want[i])
				}
			}
		})
	}
}
