package transport

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/fl"
)

// vecClient produces a deterministic update from (id, round, global), so
// any two federations over the same roster must agree bit for bit.
type vecClient struct {
	id      int
	samples int
	rounds  int32 // TrainLocal invocations, for sampling assertions
}

func (c *vecClient) ID() int         { return c.id }
func (c *vecClient) NumSamples() int { return c.samples }
func (c *vecClient) TrainLocal(round int, global []float64) (fl.Update, error) {
	atomic.AddInt32(&c.rounds, 1)
	p := make([]float64, len(global))
	for i := range p {
		p[i] = global[i] + float64(c.id+1)*0.01*float64(i+1) + float64(round)*0.001
	}
	return fl.Update{Params: p, NumSamples: c.samples, TrainLoss: 1}, nil
}

// runVecFederation runs one federation over n fresh vecClients and
// returns the final global plus the clients (for participation counts).
func runVecFederation(t *testing.T, coord *Coordinator, n int) ([]float64, []*vecClient) {
	t.Helper()
	addr, wait := startCoordinator(t, coord)
	clients := make([]*vecClient, n)
	var cwg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		clients[i] = &vecClient{id: i, samples: 5 + 3*i}
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			errs[i] = RunClient(addr, clients[i])
		}(i)
	}
	global, srvErr := wait()
	cwg.Wait()
	if srvErr != nil {
		t.Fatalf("coordinator: %v", srvErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	return global, clients
}

// TestStreamingMatchesBufferedBitExact: the streaming fold must produce
// bit-identical globals to the legacy buffered path for every window
// size, including w=1 (fully serialized) and w≥roster (fully
// concurrent), regardless of client arrival order.
func TestStreamingMatchesBufferedBitExact(t *testing.T) {
	const n = 5
	mk := func() *Coordinator {
		return &Coordinator{
			NumClients: n, Rounds: 3,
			Initial: []float64{0.5, -1.25, 3, 0.0625},
			Codec:   "binary",
		}
	}
	base := mk()
	base.BufferRounds = true
	want, _ := runVecFederation(t, base, n)

	for _, w := range []int{1, 2, 64} {
		coord := mk()
		coord.MaxInflightUpdates = w
		got, _ := runVecFederation(t, coord, n)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("window %d coord %d: streaming %v != buffered %v", w, i, got[i], want[i])
			}
		}
	}
}

// TestSampledCohortsAreDeterministic: SampleFraction selects exactly
// round(f·roster) clients per round (never below quorum), and the
// per-client participation schedule is a pure function of (seed, round):
// two federations with the same seed pick identical cohorts.
func TestSampledCohortsAreDeterministic(t *testing.T) {
	const n, rounds = 4, 6
	run := func(seed int64) []int32 {
		coord := &Coordinator{
			NumClients: n, Rounds: rounds, Initial: []float64{1, 2},
			MinQuorum: 2, SampleFraction: 0.5, SampleSeed: seed,
		}
		_, clients := runVecFederation(t, coord, n)
		counts := make([]int32, n)
		var total int32
		for i, c := range clients {
			counts[i] = atomic.LoadInt32(&c.rounds)
			total += counts[i]
		}
		if total != rounds*2 {
			t.Fatalf("seed %d: %d total exchanges, want %d (2 per round)", seed, total, rounds*2)
		}
		return counts
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: client %d trained %d vs %d rounds", i, a[i], b[i])
		}
	}
	// A weighted sampler must not be degenerate: over 6 rounds of 2-of-4,
	// no single client can own every slot.
	for i, c := range a {
		if c == rounds {
			t.Fatalf("client %d sampled every round — sampler looks degenerate: %v", i, a)
		}
	}
}

// TestRejoinJoinsMidFederation: with AcceptRejoins, a client that dials
// after the federation has started is parked by the accept loop and
// admitted at the next round boundary, then participates normally.
func TestRejoinJoinsMidFederation(t *testing.T) {
	const rounds = 5
	late := &vecClient{id: 2, samples: 9}
	lateErr := make(chan error, 1)
	var launched bool
	var addr string
	coord := &Coordinator{
		NumClients: 2, Rounds: rounds, Initial: []float64{1, -2, 3},
		MinQuorum: 2, AcceptRejoins: true,
	}
	coord.AfterRound = func(round int) error {
		if round == 1 && !launched {
			launched = true
			go func() { lateErr <- RunClient(addr, late) }()
			// Give the hello/park handshake time to land so the round-2
			// boundary admits the newcomer.
			time.Sleep(500 * time.Millisecond)
		}
		return nil
	}

	var wait func() ([]float64, error)
	addr, wait = startCoordinator(t, coord)
	var cwg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			errs[i] = RunClient(addr, &vecClient{id: i, samples: 10})
		}(i)
	}
	_, srvErr := wait()
	cwg.Wait()
	if srvErr != nil {
		t.Fatalf("coordinator: %v", srvErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("original client %d: %v", i, err)
		}
	}
	if err := <-lateErr; err != nil {
		t.Fatalf("late client: %v", err)
	}
	got := atomic.LoadInt32(&late.rounds)
	if got == 0 || got > rounds-2 {
		t.Fatalf("late client trained %d rounds, want 1..%d", got, rounds-2)
	}
}
