// Package compress implements uniform quantization of parameter-update
// vectors, the standard communication-efficiency technique for federated
// learning (Konečný et al., which the paper builds on for its FL
// substrate). A Quantizer maps a []float64 update into b-bit integer
// codes plus a per-vector scale; Decode reconstructs an approximation
// whose error shrinks exponentially in b.
package compress

import (
	"fmt"
	"math"
)

// Quantizer uniformly quantizes vectors to Bits bits per coordinate.
type Quantizer struct {
	// Bits per coordinate, in [1, 16].
	Bits int
}

// Quantized is a compressed vector: codes plus the affine range that maps
// them back to floats.
type Quantized struct {
	Codes    []uint16
	Min, Max float64
	Bits     int
	// N retains the original length for validation.
	N int
}

// Encode compresses v. It returns an error for invalid bit widths.
func (q Quantizer) Encode(v []float64) (*Quantized, error) {
	if q.Bits < 1 || q.Bits > 16 {
		return nil, fmt.Errorf("compress: bits must be in [1,16], got %d", q.Bits)
	}
	out := &Quantized{Codes: make([]uint16, len(v)), Bits: q.Bits, N: len(v)}
	if len(v) == 0 {
		return out, nil
	}
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	out.Min, out.Max = lo, hi
	levels := float64(uint32(1)<<q.Bits - 1)
	span := hi - lo
	if span == 0 {
		return out, nil // constant vector: all codes zero
	}
	for i, x := range v {
		c := math.Round((x - lo) / span * levels)
		if c < 0 {
			c = 0
		} else if c > levels {
			c = levels
		}
		out.Codes[i] = uint16(c)
	}
	return out, nil
}

// Decode reconstructs the approximate vector.
func (z *Quantized) Decode() []float64 {
	out := make([]float64, z.N)
	span := z.Max - z.Min
	if span == 0 {
		for i := range out {
			out[i] = z.Min
		}
		return out
	}
	levels := float64(uint32(1)<<z.Bits - 1)
	for i, c := range z.Codes {
		out[i] = z.Min + float64(c)/levels*span
	}
	return out
}

// MaxError returns the worst-case reconstruction error of the encoding:
// half a quantization step.
func (z *Quantized) MaxError() float64 {
	span := z.Max - z.Min
	if span == 0 {
		return 0
	}
	levels := float64(uint32(1)<<z.Bits - 1)
	return span / levels / 2
}

// CompressedBits returns the payload size in bits (codes only; the two
// range floats and lengths are constant overhead).
func (z *Quantized) CompressedBits() int { return z.N * z.Bits }
