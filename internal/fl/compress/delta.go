package compress

// Load-bearing update compression for the federated wire path: top-k
// sparsification and int8/int16 uniform quantization of parameter-update
// deltas, composed with error feedback so the information a lossy round
// drops is carried into the next one instead of lost (Seide et al.'s
// 1-bit SGD trick, which the communication-efficiency line the MI-defense
// survey treats as a first-class knob builds on).
//
// The split of responsibilities:
//
//   - This file owns the MATH: deterministic top-k selection, delta
//     quantize/dequantize, the error-feedback fold, and the per-client
//     residual Bank the in-process engine checkpoints.
//   - internal/fl/wire owns the BYTES: the little-endian frame layout a
//     Delta occupies on the wire.
//   - internal/fl owns the SEMANTICS: sparse-shape validation and the
//     densify step that turns a decoded delta back into raw parameters.
//
// Everything here is deterministic: the same input vector and residual
// produce the same Delta and the same new residual, bit for bit, which is
// what lets a killed-and-resumed federation replay compressed rounds
// identically.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
)

// Mode enumerates the update-compression codecs a client can negotiate.
// The zero value is None (dense raw parameters, no compression).
type Mode uint8

const (
	// None sends dense raw parameters (no compression).
	None Mode = 0
	// TopK sends the k largest-magnitude delta coordinates as raw floats.
	TopK Mode = 1
	// Q8 sends the dense delta uniformly quantized to 8-bit codes.
	Q8 Mode = 2
	// Q16 sends the dense delta uniformly quantized to 16-bit codes.
	Q16 Mode = 3
	// TopKQ8 composes top-k selection with 8-bit quantized values.
	TopKQ8 Mode = 4
	// TopKQ16 composes top-k selection with 16-bit quantized values.
	TopKQ16 Mode = 5

	// modeCount bounds the valid mode range for decoders.
	modeCount = 6
)

// Valid reports whether m names a known mode.
func (m Mode) Valid() bool { return m < modeCount }

// Sparse reports whether m sends index/value pairs rather than a dense body.
func (m Mode) Sparse() bool { return m == TopK || m == TopKQ8 || m == TopKQ16 }

// Bits returns the quantization width of m's values (0 = raw float64).
func (m Mode) Bits() int {
	switch m {
	case Q8, TopKQ8:
		return 8
	case Q16, TopKQ16:
		return 16
	default:
		return 0
	}
}

// String returns the flag-level name of m.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case TopK:
		return "topk"
	case Q8:
		return "q8"
	case Q16:
		return "q16"
	case TopKQ8:
		return "topk8"
	case TopKQ16:
		return "topk16"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode maps the flag-level names (as accepted by -compress) onto
// modes. The empty string and "none" both mean no compression.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "none":
		return None, nil
	case "topk":
		return TopK, nil
	case "q8", "int8":
		return Q8, nil
	case "q16", "int16":
		return Q16, nil
	case "topk8", "topk-q8":
		return TopKQ8, nil
	case "topk16", "topk-q16":
		return TopKQ16, nil
	default:
		return None, fmt.Errorf("compress: unknown mode %q (want none, topk, q8, q16, topk8, topk16)", s)
	}
}

// DefaultTopKFrac is the top-k fraction used when a sparse mode is
// selected without an explicit fraction: 1% of coordinates per round.
const DefaultTopKFrac = 0.01

// Config selects a compression codec for one client.
type Config struct {
	Mode Mode
	// TopKFrac is the fraction of coordinates a sparse mode keeps, in
	// (0, 1]; 0 means DefaultTopKFrac. Ignored by dense modes.
	TopKFrac float64
}

// WithDefaults fills zero fields and clamps TopKFrac into (0, 1].
func (c Config) WithDefaults() Config {
	if !c.Mode.Sparse() {
		c.TopKFrac = 0
		return c
	}
	if c.TopKFrac <= 0 {
		c.TopKFrac = DefaultTopKFrac
	}
	if c.TopKFrac > 1 {
		c.TopKFrac = 1
	}
	return c
}

// K returns how many coordinates a sparse mode keeps for an n-long vector:
// at least 1, at most n.
func (c Config) K(n int) int {
	c = c.WithDefaults()
	if n <= 0 {
		return 0
	}
	k := int(c.TopKFrac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Delta is one compressed update delta: the lossy representation of a
// parameter-delta vector that crosses the wire. Exactly one of
// Values/Codes is populated, keyed on Bits.
type Delta struct {
	// Len is the dense length of the underlying delta vector.
	Len int
	// Indices, when non-nil, holds the strictly ascending coordinates of
	// a sparse delta; nil means the body is dense (Len entries).
	Indices []int
	// Values holds raw float64 values when Bits == 0.
	Values []float64
	// Bits is the quantization width (0, 8, or 16).
	Bits int
	// Min and Max are the affine dequantization range when Bits > 0.
	Min, Max float64
	// Codes holds the quantized values when Bits > 0.
	Codes []uint16
}

// TopKSelect returns the indices of the k largest-|v| coordinates in
// strictly ascending index order. Selection is deterministic: magnitude
// ties break toward the lower index, so the same vector always produces
// the same support whatever the caller's platform or worker count.
func TopKSelect(v []float64, k int) []int {
	if k >= len(v) {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ma, mb := math.Abs(v[idx[a]]), math.Abs(v[idx[b]])
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	idx = idx[:k]
	sort.Ints(idx)
	return idx
}

// Compress encodes the dense delta vector v under c. The zero-value
// config (Mode None) stores v losslessly.
func (c Config) Compress(v []float64) (*Delta, error) {
	c = c.WithDefaults()
	if !c.Mode.Valid() {
		return nil, fmt.Errorf("compress: invalid mode %d", c.Mode)
	}
	d := &Delta{Len: len(v)}
	body := v
	if c.Mode.Sparse() {
		d.Indices = TopKSelect(v, c.K(len(v)))
		body = make([]float64, len(d.Indices))
		for j, i := range d.Indices {
			body[j] = v[i]
		}
	}
	if bits := c.Mode.Bits(); bits > 0 {
		z, err := Quantizer{Bits: bits}.Encode(body)
		if err != nil {
			return nil, err
		}
		d.Bits = bits
		d.Min, d.Max = z.Min, z.Max
		d.Codes = z.Codes
	} else {
		if c.Mode.Sparse() {
			d.Values = body
		} else {
			d.Values = append([]float64(nil), body...)
		}
	}
	return d, nil
}

// Decode reconstructs the dense approximate delta.
func (d *Delta) Decode() []float64 {
	out := make([]float64, d.Len)
	d.DecodeInto(out)
	return out
}

// DecodeInto writes the dense approximate delta into out (which must have
// length d.Len); untouched coordinates of a sparse delta are zeroed.
func (d *Delta) DecodeInto(out []float64) {
	for i := range out {
		out[i] = 0
	}
	vals := d.Values
	if d.Bits > 0 {
		z := Quantized{Codes: d.Codes, Min: d.Min, Max: d.Max, Bits: d.Bits, N: len(d.Codes)}
		vals = z.Decode()
	}
	if d.Indices == nil {
		copy(out, vals)
		return
	}
	for j, i := range d.Indices {
		out[i] = vals[j]
	}
}

// WireBytes returns the body size this delta occupies in the binary wire
// codec (indices, values/codes, and the quantization range — excluding
// the fixed per-update header). Telemetry and the bench harness use it to
// report bytes-per-round.
func (d *Delta) WireBytes() int {
	n := 0
	if d.Indices != nil {
		n += 4 + 4*len(d.Indices) // k prefix + uint32 indices
	}
	if d.Bits > 0 {
		n += 16 + len(d.Codes)*d.Bits/8 // min/max + codes
	} else {
		n += 8 * len(d.Values)
	}
	return n
}

// CompressEF is Compress with error feedback: the residual the previous
// round's compression left behind is folded into this round's delta
// before selection/quantization, and the information this round drops
// becomes the new residual. A nil residual is treated as zero. Returns
// the compressed delta and the new residual (always a fresh slice of
// len(delta)); neither input is modified.
func (c Config) CompressEF(delta, residual []float64) (*Delta, []float64, error) {
	v := make([]float64, len(delta))
	copy(v, delta)
	if residual != nil {
		if len(residual) != len(delta) {
			return nil, nil, fmt.Errorf("compress: residual has %d entries, delta %d",
				len(residual), len(delta))
		}
		for i, r := range residual {
			v[i] += r
		}
	}
	d, err := c.Compress(v)
	if err != nil {
		return nil, nil, err
	}
	// New residual: what the decoded delta fails to carry of v.
	dec := d.Decode()
	for i := range v {
		v[i] -= dec[i]
	}
	return d, v, nil
}

// Bank holds per-client error-feedback residuals on the server side, for
// the in-process engine's simulation of the wire compression path. Its
// state is part of the federation's durable closure: Snapshot/Restore
// ride fl.ServerState through the checkpoint container, so a killed and
// resumed run replays compressed rounds bit-identically.
type Bank struct {
	Cfg Config
	// residuals maps client ID to its accumulated error-feedback residual.
	residuals map[int][]float64
}

// NewBank creates a bank for the given codec config.
func NewBank(cfg Config) *Bank {
	return &Bank{Cfg: cfg.WithDefaults(), residuals: make(map[int][]float64)}
}

// RoundTrip simulates one client's update crossing the compressed wire:
// the raw post-training params become a delta against the broadcast
// global, the client's residual is folded in, the delta is compressed and
// immediately decoded, and the reconstruction global+decoded is returned
// along with the wire-body byte count. The dropped information becomes
// the client's new residual.
func (b *Bank) RoundTrip(clientID int, global, params []float64) ([]float64, int, error) {
	if len(params) != len(global) {
		return nil, 0, fmt.Errorf("compress: client %d update has %d params, global has %d",
			clientID, len(params), len(global))
	}
	if b.Cfg.Mode == None {
		out := append([]float64(nil), params...)
		return out, 8 * len(params), nil
	}
	delta := make([]float64, len(params))
	for i := range params {
		delta[i] = params[i] - global[i]
	}
	d, res, err := b.Cfg.CompressEF(delta, b.residuals[clientID])
	if err != nil {
		return nil, 0, fmt.Errorf("compress: client %d: %w", clientID, err)
	}
	b.residuals[clientID] = res
	out := d.Decode()
	for i := range out {
		out[i] += global[i]
	}
	return out, d.WireBytes(), nil
}

// Residual returns the client's current residual (nil if none), exposed
// for the property tests that bound it.
func (b *Bank) Residual(clientID int) []float64 { return b.residuals[clientID] }

// bankState is the gob layout of a Bank's durable state. The config is
// included so a restore onto a differently configured bank is caught
// instead of silently replaying with the wrong codec.
type bankState struct {
	Mode      uint8
	TopKFrac  float64
	Residuals map[int][]float64
}

// Snapshot serializes the bank's residuals for the checkpoint container.
func (b *Bank) Snapshot() ([]byte, error) {
	st := bankState{Mode: uint8(b.Cfg.Mode), TopKFrac: b.Cfg.TopKFrac, Residuals: b.residuals}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("compress: encoding bank state: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore rewinds the bank to a snapshotted state. The snapshot's codec
// config must match the bank's.
func (b *Bank) Restore(blob []byte) error {
	var st bankState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("compress: decoding bank state: %w", err)
	}
	if Mode(st.Mode) != b.Cfg.Mode || st.TopKFrac != b.Cfg.TopKFrac {
		return fmt.Errorf("compress: snapshot was taken under %s/%g, bank is configured %s/%g",
			Mode(st.Mode), st.TopKFrac, b.Cfg.Mode, b.Cfg.TopKFrac)
	}
	if st.Residuals == nil {
		st.Residuals = make(map[int][]float64)
	}
	b.residuals = st.Residuals
	return nil
}
