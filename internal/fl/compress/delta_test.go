package compress

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestParseModeRoundTrip(t *testing.T) {
	for m := Mode(0); m.Valid(); m++ {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("zstd"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	for s, want := range map[string]Mode{"": None, "int8": Q8, "int16": Q16, "topk-q8": TopKQ8} {
		if got, _ := ParseMode(s); got != want {
			t.Fatalf("ParseMode(%q) = %v, want %v", s, got, want)
		}
	}
}

// TestTopKSelectDeterministic: same vector, same support, always — and
// magnitude ties break toward the lower index.
func TestTopKSelectDeterministic(t *testing.T) {
	v := []float64{1, -3, 3, 0.5, -3, 2}
	got := TopKSelect(v, 3)
	want := []int{1, 2, 4} // |−3| = |3| = |−3| tie broken by index
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopKSelect = %v, want %v", got, want)
	}
	for i := 0; i < 10; i++ {
		if again := TopKSelect(v, 3); !reflect.DeepEqual(again, got) {
			t.Fatalf("nondeterministic selection: %v vs %v", again, got)
		}
	}
	if got := TopKSelect(v, 99); len(got) != len(v) {
		t.Fatalf("k > n should select everything, got %v", got)
	}
}

func TestTopKSelectNaN(t *testing.T) {
	v := []float64{1, math.NaN(), 2, math.NaN()}
	got := TopKSelect(v, 2)
	if len(got) != 2 {
		t.Fatalf("NaN input broke selection: %v", got)
	}
	// Whatever the ordering chose, it must be a valid ascending support.
	if got[0] >= got[1] || got[0] < 0 || got[1] >= len(v) {
		t.Fatalf("invalid support %v", got)
	}
}

// TestQuantizeErrorBound: the property the wire format's lossiness rests
// on — for any vector and either width, |decode(encode(x)) − x| is at
// most half a quantization step, (max−min)/(2^bits − 1)/2.
func TestQuantizeErrorBound(t *testing.T) {
	for _, cfg := range []Config{{Mode: Q8}, {Mode: Q16}} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			v := randVec(r, 1+r.Intn(200))
			d, err := cfg.Compress(v)
			if err != nil {
				return false
			}
			back := d.Decode()
			lo, hi := v[0], v[0]
			for _, x := range v {
				lo, hi = math.Min(lo, x), math.Max(hi, x)
			}
			bound := (hi-lo)/float64(uint32(1)<<cfg.Mode.Bits()-1)/2 + 1e-12
			for i := range v {
				if math.Abs(back[i]-v[i]) > bound {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", cfg.Mode, err)
		}
	}
}

// TestErrorFeedbackResidualBounded: the error-feedback invariant — the
// residual never grows without bound under repeated compression of fresh
// deltas. For top-k the compression operator is a contraction on what it
// keeps, so ‖residual‖ stays within a constant factor of the per-round
// delta norm instead of accumulating.
func TestErrorFeedbackResidualBounded(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, cfg := range []Config{
		{Mode: TopK, TopKFrac: 0.1},
		{Mode: TopKQ8, TopKFrac: 0.1},
		{Mode: Q8},
	} {
		var residual []float64
		const n, rounds = 200, 120
		deltaNorm := 0.0
		var resNorm float64
		for round := 0; round < rounds; round++ {
			delta := randVec(r, n)
			var ss float64
			for _, x := range delta {
				ss += x * x
			}
			deltaNorm = math.Max(deltaNorm, math.Sqrt(ss))
			var err error
			_, residual, err = cfg.CompressEF(delta, residual)
			if err != nil {
				t.Fatal(err)
			}
			ss = 0
			for _, x := range residual {
				ss += x * x
			}
			resNorm = math.Sqrt(ss)
		}
		// A divergent accumulator would be ~rounds × deltaNorm by now.
		if resNorm > 10*deltaNorm {
			t.Errorf("%s: residual norm %v after %d rounds (delta norm ≤ %v) — error feedback diverged",
				cfg.Mode, resNorm, rounds, deltaNorm)
		}
	}
}

// TestErrorFeedbackConvergesToDense: compressing a CONSTANT target delta
// with error feedback, the cumulative transmitted signal converges to the
// cumulative dense signal — the residual carries forward exactly what was
// dropped, so nothing is ever lost, only delayed. This is the property
// that lets a top-k federation reach the dense aggregate over rounds.
func TestErrorFeedbackConvergesToDense(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	const n, rounds = 64, 400
	target := randVec(r, n)
	for _, cfg := range []Config{
		{Mode: TopK, TopKFrac: 0.05},
		{Mode: TopKQ16, TopKFrac: 0.05},
	} {
		var residual []float64
		sent := make([]float64, n)
		// relAt measures how far the cumulative compressed signal is
		// from the cumulative dense signal R×target, relatively.
		relAt := func(round int) float64 {
			var num, den float64
			for i := range target {
				want := float64(round) * target[i]
				num += (want - sent[i]) * (want - sent[i])
				den += want * want
			}
			return math.Sqrt(num / den)
		}
		var relEarly float64
		for round := 0; round < rounds; round++ {
			d, newRes, err := cfg.CompressEF(target, residual)
			if err != nil {
				t.Fatal(err)
			}
			residual = newRes
			for i, v := range d.Decode() {
				sent[i] += v
			}
			if round+1 == 50 {
				relEarly = relAt(50)
			}
		}
		// The residual stabilizes at a constant while the dense signal
		// grows linearly, so the relative gap must shrink ~1/R and end
		// small: the compressed federation converges to the dense one.
		relLate := relAt(rounds)
		if relLate > 0.05 {
			t.Errorf("%s: cumulative compressed signal is %.2f%% away from dense after %d rounds",
				cfg.Mode, 100*relLate, rounds)
		}
		if relLate > relEarly/2 {
			t.Errorf("%s: gap did not shrink with rounds: %.3f at 50, %.3f at %d",
				cfg.Mode, relEarly, relLate, rounds)
		}
		// And the gap must be exactly the residual (conservation law).
		for i := range target {
			gap := float64(rounds)*target[i] - sent[i]
			if math.Abs(gap-residual[i]) > 1e-9*(1+math.Abs(gap)) {
				t.Fatalf("%s: conservation broken at %d: gap %v, residual %v",
					cfg.Mode, i, gap, residual[i])
			}
		}
	}
}

func TestCompressEFRejectsLengthMismatch(t *testing.T) {
	cfg := Config{Mode: TopK}
	if _, _, err := cfg.CompressEF(make([]float64, 4), make([]float64, 5)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWireBytesMatchesShape(t *testing.T) {
	v := randVec(rand.New(rand.NewSource(13)), 100)
	cases := map[Mode]int{
		TopK:    4 + 10*4 + 10*8,
		TopKQ8:  4 + 16 + 10*4 + 10,
		TopKQ16: 4 + 16 + 10*4 + 20,
		Q8:      16 + 100,
		Q16:     16 + 200,
		None:    800,
	}
	for mode, want := range cases {
		d, err := Config{Mode: mode, TopKFrac: 0.1}.Compress(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.WireBytes(); got != want {
			t.Errorf("%s: WireBytes = %d, want %d", mode, got, want)
		}
	}
}

func TestBankRoundTripAndSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	cfg := Config{Mode: TopKQ8, TopKFrac: 0.1}
	global := randVec(r, 50)

	// Two banks fed identical sequences stay bit-identical; a third
	// restored from a mid-stream snapshot rejoins the stream exactly.
	a, b := NewBank(cfg), NewBank(cfg)
	var snap []byte
	params := make([][]float64, 6)
	for i := range params {
		params[i] = randVec(r, 50)
	}
	outA := make([][]float64, len(params))
	for i, p := range params {
		var err error
		outA[i], _, err = a.RoundTrip(1, global, p)
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			snap, err = a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, p := range params {
		out, _, err := b.RoundTrip(1, global, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, outA[i]) {
			t.Fatalf("banks diverged at step %d", i)
		}
	}
	c := NewBank(cfg)
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < len(params); i++ {
		out, _, err := c.RoundTrip(1, global, params[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, outA[i]) {
			t.Fatalf("restored bank diverged at step %d", i)
		}
	}
}

func TestBankRestoreRejectsConfigMismatch(t *testing.T) {
	snap, err := NewBank(Config{Mode: TopK, TopKFrac: 0.5}).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewBank(Config{Mode: Q8}).Restore(snap); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	if err := NewBank(Config{Mode: TopK, TopKFrac: 0.25}).Restore(snap); err == nil {
		t.Fatal("fraction mismatch accepted")
	}
	if err := NewBank(Config{Mode: TopK, TopKFrac: 0.5}).Restore([]byte("garbage")); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestBankModeNoneIsLossless(t *testing.T) {
	b := NewBank(Config{})
	global := []float64{1, 2, 3}
	params := []float64{4, 5, 6}
	out, bytes, err := b.RoundTrip(0, global, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, params) || bytes != 24 {
		t.Fatalf("RoundTrip = %v (%d bytes)", out, bytes)
	}
	if _, _, err := b.RoundTrip(0, global, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
