// The federation-level quantization test lives in an external test
// package: internal/fl imports compress (the error-feedback bank rides on
// RoundPolicy), so an in-package test cannot import fl back.
package compress_test

import (
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

// quantizingClient wraps a client and quantizes its reported update — the
// deployment where bandwidth matters.
type quantizingClient struct {
	inner fl.Client
	bits  int
}

func (c *quantizingClient) ID() int         { return c.inner.ID() }
func (c *quantizingClient) NumSamples() int { return c.inner.NumSamples() }
func (c *quantizingClient) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := c.inner.TrainLocal(round, global)
	if err != nil {
		return fl.Update{}, err
	}
	z, err := compress.Quantizer{Bits: c.bits}.Encode(u.Params)
	if err != nil {
		return fl.Update{}, err
	}
	u.Params = z.Decode() // simulate the server-side reconstruction
	return u, nil
}

// TestFedAvgSurvives8BitQuantization: with 10-bit updates the federated
// model's accuracy stays close to the uncompressed run while the payload
// shrinks ~6x vs float64.
func TestFedAvgSurvivesQuantization(t *testing.T) {
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Train: 80, Test: 80, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k, rounds = 2, 30
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(3)), model.VGG,
			train.In, train.NumClasses)
	}
	run := func(quantBits int) float64 {
		shards := datasets.PartitionIID(train, k, rand.New(rand.NewSource(4)))
		clients := make([]fl.Client, k)
		for i := 0; i < k; i++ {
			var c fl.Client = fl.NewLegacyClient(i, build(), shards[i], fl.ClientConfig{
				BatchSize: 16, LR: func(int) float64 { return 0.04 }, Momentum: 0.9,
			}, nil, rand.New(rand.NewSource(int64(30+i))))
			if quantBits > 0 {
				c = &quantizingClient{inner: c, bits: quantBits}
			}
			clients[i] = c
		}
		net := build()
		srv := fl.NewServer(nn.FlattenParams(net.Params()), clients...)
		if err := srv.Run(rounds); err != nil {
			t.Fatal(err)
		}
		if err := nn.SetFlatParams(net.Params(), srv.Global()); err != nil {
			t.Fatal(err)
		}
		return fl.Evaluate(net, test, 64)
	}
	full := run(0)
	quant := run(10)
	if full < 0.5 {
		t.Fatalf("setup: uncompressed federation should learn, got %v", full)
	}
	if quant < full-0.15 {
		t.Fatalf("10-bit quantization cost too much accuracy: %v vs %v", quant, full)
	}
}
