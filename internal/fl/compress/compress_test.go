package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
)

func TestEncodeDecodeBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := 1 + r.Intn(16)
		v := make([]float64, 1+r.Intn(100))
		for i := range v {
			v[i] = r.NormFloat64() * 10
		}
		z, err := Quantizer{Bits: bits}.Encode(v)
		if err != nil {
			return false
		}
		back := z.Decode()
		bound := z.MaxError() + 1e-12
		for i := range v {
			if math.Abs(back[i]-v[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorShrinksWithBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 500)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	mse := func(bits int) float64 {
		z, err := Quantizer{Bits: bits}.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		back := z.Decode()
		s := 0.0
		for i := range v {
			d := back[i] - v[i]
			s += d * d
		}
		return s / float64(len(v))
	}
	if !(mse(4) > mse(8) && mse(8) > mse(12)) {
		t.Fatalf("quantization error should shrink with bits: %v, %v, %v",
			mse(4), mse(8), mse(12))
	}
}

func TestConstantVector(t *testing.T) {
	v := []float64{3, 3, 3}
	z, err := Quantizer{Bits: 8}.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range z.Decode() {
		if got != 3 {
			t.Fatalf("constant vector decoded to %v", got)
		}
	}
	if z.MaxError() != 0 {
		t.Fatalf("constant vector max error = %v", z.MaxError())
	}
}

func TestInvalidBits(t *testing.T) {
	for _, bits := range []int{0, 17, -1} {
		if _, err := (Quantizer{Bits: bits}).Encode([]float64{1}); err == nil {
			t.Errorf("bits=%d accepted", bits)
		}
	}
}

func TestCompressedBits(t *testing.T) {
	z, err := Quantizer{Bits: 8}.Encode(make([]float64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if got := z.CompressedBits(); got != 800 {
		t.Fatalf("CompressedBits = %d, want 800", got)
	}
}

// quantizingClient wraps a client and quantizes its reported update — the
// deployment where bandwidth matters.
type quantizingClient struct {
	inner fl.Client
	bits  int
}

func (c *quantizingClient) ID() int         { return c.inner.ID() }
func (c *quantizingClient) NumSamples() int { return c.inner.NumSamples() }
func (c *quantizingClient) TrainLocal(round int, global []float64) (fl.Update, error) {
	u, err := c.inner.TrainLocal(round, global)
	if err != nil {
		return fl.Update{}, err
	}
	z, err := Quantizer{Bits: c.bits}.Encode(u.Params)
	if err != nil {
		return fl.Update{}, err
	}
	u.Params = z.Decode() // simulate the server-side reconstruction
	return u, nil
}

// TestFedAvgSurvives8BitQuantization: with 10-bit updates the federated
// model's accuracy stays close to the uncompressed run while the payload
// shrinks ~6x vs float64.
func TestFedAvgSurvivesQuantization(t *testing.T) {
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Train: 80, Test: 80, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k, rounds = 2, 30
	build := func() nn.Layer {
		return model.NewClassifier(rand.New(rand.NewSource(3)), model.VGG,
			train.In, train.NumClasses)
	}
	run := func(quantBits int) float64 {
		shards := datasets.PartitionIID(train, k, rand.New(rand.NewSource(4)))
		clients := make([]fl.Client, k)
		for i := 0; i < k; i++ {
			var c fl.Client = fl.NewLegacyClient(i, build(), shards[i], fl.ClientConfig{
				BatchSize: 16, LR: func(int) float64 { return 0.04 }, Momentum: 0.9,
			}, nil, rand.New(rand.NewSource(int64(30+i))))
			if quantBits > 0 {
				c = &quantizingClient{inner: c, bits: quantBits}
			}
			clients[i] = c
		}
		net := build()
		srv := fl.NewServer(nn.FlattenParams(net.Params()), clients...)
		if err := srv.Run(rounds); err != nil {
			t.Fatal(err)
		}
		if err := nn.SetFlatParams(net.Params(), srv.Global()); err != nil {
			t.Fatal(err)
		}
		return fl.Evaluate(net, test, 64)
	}
	full := run(0)
	quant := run(10)
	if full < 0.5 {
		t.Fatalf("setup: uncompressed federation should learn, got %v", full)
	}
	if quant < full-0.15 {
		t.Fatalf("10-bit quantization cost too much accuracy: %v vs %v", quant, full)
	}
}
