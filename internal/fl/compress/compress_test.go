package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := 1 + r.Intn(16)
		v := make([]float64, 1+r.Intn(100))
		for i := range v {
			v[i] = r.NormFloat64() * 10
		}
		z, err := Quantizer{Bits: bits}.Encode(v)
		if err != nil {
			return false
		}
		back := z.Decode()
		bound := z.MaxError() + 1e-12
		for i := range v {
			if math.Abs(back[i]-v[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorShrinksWithBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 500)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	mse := func(bits int) float64 {
		z, err := Quantizer{Bits: bits}.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		back := z.Decode()
		s := 0.0
		for i := range v {
			d := back[i] - v[i]
			s += d * d
		}
		return s / float64(len(v))
	}
	if !(mse(4) > mse(8) && mse(8) > mse(12)) {
		t.Fatalf("quantization error should shrink with bits: %v, %v, %v",
			mse(4), mse(8), mse(12))
	}
}

func TestConstantVector(t *testing.T) {
	v := []float64{3, 3, 3}
	z, err := Quantizer{Bits: 8}.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range z.Decode() {
		if got != 3 {
			t.Fatalf("constant vector decoded to %v", got)
		}
	}
	if z.MaxError() != 0 {
		t.Fatalf("constant vector max error = %v", z.MaxError())
	}
}

func TestInvalidBits(t *testing.T) {
	for _, bits := range []int{0, 17, -1} {
		if _, err := (Quantizer{Bits: bits}).Encode([]float64{1}); err == nil {
			t.Errorf("bits=%d accepted", bits)
		}
	}
}

func TestCompressedBits(t *testing.T) {
	z, err := Quantizer{Bits: 8}.Encode(make([]float64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if got := z.CompressedBits(); got != 800 {
		t.Fatalf("CompressedBits = %d, want 800", got)
	}
}
