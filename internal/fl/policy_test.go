package fl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// faultyClient fails, poisons, or mis-sizes its update on demand.
type faultyClient struct {
	countingClient
	failAlways bool
	nanAlways  bool
	extraDim   int
}

func (c *faultyClient) TrainLocal(round int, global []float64) (Update, error) {
	if c.failAlways {
		return Update{}, errors.New("boom")
	}
	u, err := c.countingClient.TrainLocal(round, global)
	if err != nil {
		return u, err
	}
	if c.nanAlways {
		u.Params[0] = math.NaN()
	}
	if c.extraDim > 0 {
		u.Params = append(u.Params, make([]float64, c.extraDim)...)
	}
	return u, nil
}

func TestRoundPolicyDropsFailingClientAndAggregatesQuorum(t *testing.T) {
	good := make([]*countingClient, 3)
	clients := []Client{}
	for i := range good {
		good[i] = &countingClient{id: i}
		clients = append(clients, good[i])
	}
	bad := &faultyClient{countingClient: countingClient{id: 3}, failAlways: true}
	clients = append(clients, bad)

	rec := &HistoryRecorder{}
	srv := NewServer([]float64{1, 2}, clients...)
	srv.Policy = &RoundPolicy{MinQuorum: 3}
	srv.Observers = append(srv.Observers, rec)
	if err := srv.Run(4); err != nil {
		t.Fatal(err)
	}
	for _, c := range good {
		if c.rounds != 4 {
			t.Fatalf("good client %d trained %d rounds, want 4", c.id, c.rounds)
		}
	}
	if len(rec.Rounds) != 4 {
		t.Fatalf("observer saw %d rounds, want 4", len(rec.Rounds))
	}
	for _, r := range rec.Rounds {
		if len(r.TrainLosses) != 3 {
			t.Fatalf("round %d aggregated %d updates, want 3", r.Round, len(r.TrainLosses))
		}
		if len(r.Dropped) != 1 || r.Dropped[0].ClientID != 3 || r.Dropped[0].Reason != FailTrain {
			t.Fatalf("round %d dropped = %+v, want client 3 with reason train", r.Round, r.Dropped)
		}
	}
}

func TestRoundPolicyQuorumLost(t *testing.T) {
	clients := []Client{
		&countingClient{id: 0},
		&faultyClient{countingClient: countingClient{id: 1}, failAlways: true},
	}
	srv := NewServer([]float64{0}, clients...)
	srv.Policy = &RoundPolicy{MinQuorum: 2}
	if err := srv.Run(1); err == nil {
		t.Fatal("expected quorum-lost error with 1 valid update and MinQuorum=2")
	}
}

func TestRoundPolicyMaxFailuresCap(t *testing.T) {
	clients := []Client{
		&countingClient{id: 0},
		&countingClient{id: 1},
		&faultyClient{countingClient: countingClient{id: 2}, failAlways: true},
		&faultyClient{countingClient: countingClient{id: 3}, failAlways: true},
	}
	srv := NewServer([]float64{0}, clients...)
	srv.Policy = &RoundPolicy{MinQuorum: 1, MaxFailures: 1}
	if err := srv.Run(1); err == nil {
		t.Fatal("expected error: 2 failures exceed MaxFailures=1")
	}
}

func TestRoundPolicyRejectsInvalidUpdates(t *testing.T) {
	clients := []Client{
		&countingClient{id: 0},
		&faultyClient{countingClient: countingClient{id: 1}, nanAlways: true},
		&faultyClient{countingClient: countingClient{id: 2}, extraDim: 5},
	}
	rec := &HistoryRecorder{}
	srv := NewServer([]float64{1, 1}, clients...)
	srv.Policy = &RoundPolicy{MinQuorum: 1}
	srv.Observers = append(srv.Observers, rec)
	if err := srv.Run(2); err != nil {
		t.Fatal(err)
	}
	for _, r := range rec.Rounds {
		if len(r.TrainLosses) != 1 {
			t.Fatalf("round %d aggregated %d updates, want 1", r.Round, len(r.TrainLosses))
		}
		if len(r.Dropped) != 2 {
			t.Fatalf("round %d dropped %d clients, want 2", r.Round, len(r.Dropped))
		}
		for _, f := range r.Dropped {
			if f.Reason != FailInvalid {
				t.Fatalf("dropped client %d reason = %q, want invalid", f.ClientID, f.Reason)
			}
		}
	}
}

// TestSampledRoundQuorumAgainstParticipants: with client sampling on, the
// quorum check must apply to the sampled participants, so a sampled round
// where some participants fail still succeeds as long as enough of the
// *sample* produced valid updates — it must not demand the full roster.
func TestSampledRoundQuorumAgainstParticipants(t *testing.T) {
	const k, rounds = 10, 12
	clients := make([]Client, k)
	for i := 0; i < k; i++ {
		if i < 2 {
			clients[i] = &faultyClient{countingClient: countingClient{id: i}, failAlways: true}
		} else {
			clients[i] = &countingClient{id: i}
		}
	}
	rec := &HistoryRecorder{}
	srv := NewServer([]float64{0}, clients...)
	srv.SampleFraction = 0.5
	srv.SampleRng = rand.New(rand.NewSource(3))
	srv.Policy = &RoundPolicy{MinQuorum: 3}
	srv.Observers = append(srv.Observers, rec)
	// Worst case a round samples both failing clients: 3 of 5 participants
	// still succeed, which meets MinQuorum=3. Every round must pass.
	if err := srv.Run(rounds); err != nil {
		t.Fatal(err)
	}
	sawFailure := false
	for _, r := range rec.Rounds {
		// Valid + dropped must cover exactly the sampled participants.
		if got := len(r.TrainLosses) + len(r.Dropped); got != 5 {
			t.Fatalf("round %d accounted for %d participants, want 5", r.Round, got)
		}
		if len(r.Dropped) > 0 {
			sawFailure = true
			for _, f := range r.Dropped {
				if f.ClientID >= 2 {
					t.Fatalf("round %d dropped healthy client %d", r.Round, f.ClientID)
				}
			}
		}
	}
	if !sawFailure {
		t.Fatal("sampling never selected a failing client; test needs a different seed")
	}
}

func TestAggregateLengthMismatchError(t *testing.T) {
	updates := []Update{
		{ClientID: 0, Params: []float64{1}, NumSamples: 1},
		{ClientID: 1, Params: []float64{1, 2}, NumSamples: 1},
	}
	if _, err := Aggregate(updates); err == nil {
		t.Fatal("expected error aggregating mismatched param lengths")
	}
	// Shorter-first must also error, not panic.
	if _, err := Aggregate([]Update{updates[0], {ClientID: 2, Params: []float64{1, 2, 3}}}); err == nil {
		t.Fatal("expected error when a longer Params follows a shorter one")
	}
	if _, err := Aggregate(nil); err == nil {
		t.Fatal("expected error aggregating zero updates")
	}
}

func TestValidateUpdate(t *testing.T) {
	ok := Update{ClientID: 1, Params: []float64{0, 1.5, -2}}
	if err := ValidateUpdate(ok, 3); err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}
	cases := []Update{
		{Params: []float64{0, 1}},               // short
		{Params: []float64{0, 1, 2, 3}},         // long
		{Params: []float64{0, math.NaN(), 2}},   // NaN
		{Params: []float64{0, math.Inf(-1), 2}}, // -Inf
		{Params: []float64{math.Inf(1), 1, 2}},  // +Inf
	}
	for i, u := range cases {
		if err := ValidateUpdate(u, 3); err == nil {
			t.Fatalf("case %d: invalid update accepted", i)
		}
	}
}
