package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/robust"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire fixtures")

// goldenVector is the fixed input behind every fixture. Values are exact
// in binary floating point so the fixtures are stable across platforms.
func goldenVector() []float64 {
	return []float64{0.5, -1.25, 3, 0, -0.0078125, 42.5, -6, 0.015625}
}

func goldenGlobal() []float64 {
	return []float64{1, 1, 1, 1, 1, 1, 1, 1}
}

// goldenFrames builds the committed conformance corpus: one frame per
// codec version × message type × compression mode, always from the same
// inputs. Any byte-level change to the wire format shows up as a reviewed
// fixture diff instead of a silent incompatibility.
func goldenFrames(t *testing.T) map[string][]byte {
	t.Helper()
	sk := robust.NewSketch(4)
	for i := 1; i <= 3; i++ {
		row := goldenVector()
		for j := range row {
			row[j] *= 0.5 * float64(i) // exact in binary floating point
		}
		sk.Add(robust.KeyClient(i), row)
	}
	frames := map[string][]byte{
		"v1_round": AppendRoundFrame(nil, 3, 1, goldenVector()),
		"v1_done":  AppendDoneFrame(nil),
		"v1_partial": AppendPartialFrame(nil, fl.Partial{
			LeafID: 2, Round: 3, Sum: goldenVector(), Weight: 40, Count: 4,
		}),
		"v2_partial": AppendPartial2Frame(nil, fl.Partial{
			LeafID: 2, Round: 3, Sum: goldenVector(), Weight: 40, Count: 4,
			ExpectWeight: 48, Degraded: true, Sketch: sk,
		}),
		"v2_round": AppendRound2Frame(nil, Round2{
			Round: 3, Durable: 1, SampleFrac: 0.5, SampleSeed: 42,
			SketchCap: 64, Params: goldenVector(),
		}),
	}
	global := goldenGlobal()
	params := goldenVector()
	u := fl.Update{ClientID: 5, NumSamples: 17, TrainLoss: 0.375}
	for _, cfg := range allModes() {
		cfg := cfg.WithDefaults()
		var frame []byte
		var err error
		if cfg.Mode == compress.None {
			uu := u
			uu.Params = params
			frame, err = AppendUpdateFrame(nil, uu, nil, cfg.Mode)
		} else {
			delta := make([]float64, len(params))
			for i := range delta {
				delta[i] = params[i] - global[i]
			}
			var d *compress.Delta
			d, err = cfg.Compress(delta)
			if err == nil {
				frame, err = AppendUpdateFrame(nil, u, d, cfg.Mode)
			}
		}
		if err != nil {
			t.Fatalf("building %s fixture: %v", cfg.Mode, err)
		}
		frames[fmt.Sprintf("v1_update_%s", cfg.Mode)] = frame
	}
	return frames
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".hex")
}

// TestGoldenWireFormat pins the exact bytes of every frame kind. A
// mismatch means the wire format changed: either bump Version and add new
// fixtures, or revert — never regenerate silently.
func TestGoldenWireFormat(t *testing.T) {
	frames := goldenFrames(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for name, frame := range frames {
			data := hex.EncodeToString(frame) + "\n"
			if err := os.WriteFile(goldenPath(name), []byte(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, frame := range frames {
		raw, err := os.ReadFile(goldenPath(name))
		if err != nil {
			t.Fatalf("missing fixture %s (run with -update to create): %v", name, err)
		}
		want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
		if err != nil {
			t.Fatalf("fixture %s is not hex: %v", name, err)
		}
		if !bytes.Equal(frame, want) {
			t.Errorf("%s: encoder output diverged from the committed wire format\n got %x\nwant %x",
				name, frame, want)
		}
	}
}

// TestGoldenFramesDecode proves every committed fixture still decodes —
// the other half of conformance: bytes written by any past version of the
// encoder must keep parsing.
func TestGoldenFramesDecode(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.hex"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden fixtures found (%v)", err)
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		f, err := ReadFrame(bytes.NewReader(frame), len(frame))
		if err != nil {
			t.Fatalf("%s: ReadFrame: %v", path, err)
		}
		switch f.Type {
		case MsgRound:
			if _, _, _, err := DecodeRound(f.Payload); err != nil {
				t.Errorf("%s: DecodeRound: %v", path, err)
			}
		case MsgUpdate:
			u, err := DecodeUpdate(f.Mode, f.Payload)
			if err != nil {
				t.Errorf("%s: DecodeUpdate: %v", path, err)
				break
			}
			if _, err := fl.Densify(u, goldenGlobal()); err != nil {
				t.Errorf("%s: Densify: %v", path, err)
			}
		case MsgDone:
			if len(f.Payload) != 0 {
				t.Errorf("%s: done frame carries %d payload bytes", path, len(f.Payload))
			}
		case MsgPartial:
			if _, err := DecodePartial(f.Payload); err != nil {
				t.Errorf("%s: DecodePartial: %v", path, err)
			}
		case MsgPartial2:
			p, err := DecodePartial2(f.Payload)
			if err != nil {
				t.Errorf("%s: DecodePartial2: %v", path, err)
				break
			}
			if err := fl.ValidatePartial(p, len(p.Sum), 0); err != nil {
				t.Errorf("%s: ValidatePartial: %v", path, err)
			}
		case MsgRound2:
			if _, err := DecodeRound2(f.Payload); err != nil {
				t.Errorf("%s: DecodeRound2: %v", path, err)
			}
		}
		f.Release()
	}
}
