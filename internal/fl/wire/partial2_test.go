package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/robust"
)

// TestPartial2FrameRoundTrip drives the v2 partial codec through random
// shapes: with/without sketch, degraded or not, empty and saturated
// reservoirs. Decode(Encode(p)) must reproduce every field bit-exactly.
func TestPartial2FrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(16)
		p := fl.Partial{
			LeafID:       rng.Intn(100),
			Round:        rng.Intn(1000),
			Sum:          make([]float64, dim),
			Weight:       1 + rng.Float64()*100,
			Count:        1 + rng.Intn(50),
			ExpectWeight: 100 + rng.Float64()*100,
			Degraded:     rng.Intn(2) == 0,
		}
		for i := range p.Sum {
			p.Sum[i] = rng.NormFloat64()
		}
		if rng.Intn(3) > 0 {
			sk := robust.NewSketch(1 + rng.Intn(8))
			rows := rng.Intn(2 * sk.Cap)
			for r := 0; r < rows; r++ {
				row := make([]float64, dim)
				for i := range row {
					row[i] = rng.NormFloat64()
				}
				sk.Add(robust.KeyClient(r), row)
			}
			p.Sketch = sk
		}

		frame := AppendPartial2Frame(nil, p)
		f, err := ReadFrame(bytes.NewReader(frame), len(frame))
		if err != nil {
			t.Fatalf("trial %d: ReadFrame: %v", trial, err)
		}
		if f.Type != MsgPartial2 {
			t.Fatalf("trial %d: frame type %d", trial, f.Type)
		}
		got, err := DecodePartial2(f.Payload)
		f.Release()
		if err != nil {
			t.Fatalf("trial %d: DecodePartial2: %v", trial, err)
		}
		if got.LeafID != p.LeafID || got.Round != p.Round || got.Count != p.Count ||
			got.Weight != p.Weight || got.ExpectWeight != p.ExpectWeight || got.Degraded != p.Degraded {
			t.Fatalf("trial %d: header fields diverged: got %+v want %+v", trial, got, p)
		}
		for i := range p.Sum {
			if got.Sum[i] != p.Sum[i] {
				t.Fatalf("trial %d: sum[%d] %v != %v", trial, i, got.Sum[i], p.Sum[i])
			}
		}
		if (got.Sketch == nil) != (p.Sketch == nil) {
			t.Fatalf("trial %d: sketch presence diverged", trial)
		}
		if p.Sketch != nil {
			if got.Sketch.Cap != p.Sketch.Cap || got.Sketch.Rows != p.Sketch.Rows ||
				len(got.Sketch.Keys) != len(p.Sketch.Keys) {
				t.Fatalf("trial %d: sketch shape diverged: got %+v want %+v", trial, got.Sketch, p.Sketch)
			}
			for i, k := range p.Sketch.Keys {
				if got.Sketch.Keys[i] != k {
					t.Fatalf("trial %d: sketch key %d diverged", trial, i)
				}
				for j, v := range p.Sketch.Vals[i] {
					if got.Sketch.Vals[i][j] != v {
						t.Fatalf("trial %d: sketch row %d coord %d diverged", trial, i, j)
					}
				}
			}
		}
	}
}

func TestRound2FrameRoundTrip(t *testing.T) {
	want := Round2{
		Round: 7, Durable: -1, SampleFrac: 0.25, SampleSeed: -12345,
		SketchCap: 64, Params: []float64{0.5, -1.25, 3},
	}
	frame := AppendRound2Frame(nil, want)
	f, err := ReadFrame(bytes.NewReader(frame), len(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if f.Type != MsgRound2 {
		t.Fatalf("frame type %d", f.Type)
	}
	got, err := DecodeRound2(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != want.Round || got.Durable != want.Durable ||
		got.SampleFrac != want.SampleFrac || got.SampleSeed != want.SampleSeed ||
		got.SketchCap != want.SketchCap || len(got.Params) != len(want.Params) {
		t.Fatalf("got %+v want %+v", got, want)
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("param %d diverged", i)
		}
	}
}

// TestDecodePartial2RejectsSizeLies covers the structural guards: declared
// counts beyond what the payload can carry must be rejected before any
// allocation proportional to the claim.
func TestDecodePartial2RejectsSizeLies(t *testing.T) {
	good := AppendPartial2Frame(nil, fl.Partial{
		LeafID: 1, Round: 1, Sum: []float64{1, 2}, Weight: 3, Count: 1,
	})[HeaderLen:]
	if _, err := DecodePartial2(good); err != nil {
		t.Fatalf("control payload rejected: %v", err)
	}
	// Inflate the parameter count field without supplying bytes.
	lie := append([]byte(nil), good...)
	lie[32] = 0xFF
	lie[33] = 0xFF
	lie[34] = 0xFF
	lie[35] = 0x7F
	if _, err := DecodePartial2(lie); err == nil {
		t.Fatal("inflated param count decoded")
	}
	// Truncated head.
	if _, err := DecodePartial2(good[:10]); err == nil {
		t.Fatal("truncated payload decoded")
	}
}
