package wire

import (
	"math/bits"
	"sync"
)

// Byte-buffer arena for frame payloads, mirroring the tensor scratch
// arena (internal/tensor/pool.go): power-of-two size classes, each a
// small mutex-guarded LIFO freelist. The coordinator decodes one update
// per client per round on the accept path's hot loop; with the arena a
// steady-state round performs zero payload allocations. Like the tensor
// arena, the freelists are GC-immune (a sync.Pool would be flushed by the
// training allocator's constant GC pressure) and bounded per class, so
// idle wire memory stays proportional to peak concurrent connections.
//
// Invariants (same as DESIGN.md §9's arena rules):
//   - A pooled buffer's contents are UNINITIALIZED beyond what the
//     caller writes/reads into it.
//   - After PutBuffer the slice (and any alias of it) must not be
//     touched.

// maxBufClass bounds pooled buffers to 2^maxBufClass bytes (64 MiB);
// larger requests fall through to plain allocation.
const maxBufClass = 26

type bufClass struct {
	mu   sync.Mutex
	free [][]byte
}

var bufPools [maxBufClass + 1]bufClass

// bufClassCap bounds idle buffers per class: small classes cycle hard and
// are cheap to keep; big ones keep at most two.
func bufClassCap(c int) int {
	if c <= 20 { // ≤ 1 MiB buffers
		return 16
	}
	return 2
}

// bufPoolClass returns the smallest class whose capacity 2^class holds n,
// or -1 when n is too large to pool.
func bufPoolClass(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c > maxBufClass {
		return -1
	}
	return c
}

// GetBuffer returns a length-n byte slice backed by pooled storage.
// Contents are uninitialized. Pair every GetBuffer with exactly one
// PutBuffer once the buffer is dead.
func GetBuffer(n int) []byte {
	c := bufPoolClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	p := &bufPools[c]
	p.mu.Lock()
	var b []byte
	if last := len(p.free) - 1; last >= 0 {
		b = p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
	}
	p.mu.Unlock()
	if b == nil {
		b = make([]byte, 1<<c)
	}
	return b[:cap(b)][:n]
}

// PutBuffer returns b's storage to the pool. b should have come from
// GetBuffer and must not be used afterwards; foreign or overflow slices
// are left to the GC.
func PutBuffer(b []byte) {
	if b == nil {
		return
	}
	c := bufPoolClass(cap(b))
	if c < 0 || cap(b) != 1<<c {
		return
	}
	p := &bufPools[c]
	p.mu.Lock()
	if len(p.free) < bufClassCap(c) {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}
