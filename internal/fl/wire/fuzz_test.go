package wire

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/robust"
)

// seedGolden seeds a fuzzer with every committed golden frame, so the
// corpus starts from valid wire bytes and mutates outward.
func seedGolden(f *testing.F, add func([]byte)) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.hex"))
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		frame, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
		if err != nil {
			continue
		}
		add(frame)
	}
	if len(files) == 0 {
		f.Fatal("no golden corpus to seed from")
	}
}

// FuzzDecodeFrame hammers the full inbound path a hostile client reaches:
// frame header parse, budget check, payload read, structural update
// decode, densify. The invariants: never panic, never allocate a payload
// past the byte budget, and released buffers never double-free.
func FuzzDecodeFrame(f *testing.F) {
	seedGolden(f, func(b []byte) { f.Add(b, 4096) })
	f.Add([]byte{Magic, Version, MsgUpdate, 0, 0xFF, 0xFF, 0xFF, 0xFF}, 64)
	f.Fuzz(func(t *testing.T, data []byte, budget int) {
		if budget < 0 {
			budget = -budget
		}
		budget %= 1 << 20
		fr, err := ReadFrame(bytes.NewReader(data), budget)
		if err != nil {
			return // any error is acceptable; a panic is not
		}
		defer fr.Release()
		if budget > 0 && len(fr.Payload) > budget {
			t.Fatalf("payload of %d bytes escaped budget %d", len(fr.Payload), budget)
		}
		switch fr.Type {
		case MsgRound:
			if _, _, params, err := DecodeRound(fr.Payload); err == nil {
				// A successful round decode allocates only what the
				// payload itself carried.
				if 8*len(params) > len(fr.Payload) {
					t.Fatalf("round decode expanded %d payload bytes to %d params",
						len(fr.Payload), len(params))
				}
			}
		case MsgUpdate:
			u, err := DecodeUpdate(fr.Mode, fr.Payload)
			if err != nil {
				return
			}
			// Structural decode may expand ≤8x (int8 codes to float64);
			// anything more means an attacker-controlled length slipped
			// through the size arithmetic.
			if len(u.Params) > len(fr.Payload) || len(u.Indices) > len(fr.Payload) {
				t.Fatalf("update decode expanded %d payload bytes to %d params / %d indices",
					len(fr.Payload), len(u.Params), len(u.Indices))
			}
			// Densify must validate-or-error, never panic, whatever the
			// decoded shape claims.
			global := make([]float64, 64)
			if dense, err := fl.Densify(u, global); err == nil && dense.Sparse() {
				t.Fatal("densify returned a sparse update without error")
			}
		case MsgPartial:
			if p, err := DecodePartial(fr.Payload); err == nil {
				if 8*len(p.Sum) > len(fr.Payload) {
					t.Fatalf("partial decode expanded %d payload bytes to %d sums",
						len(fr.Payload), len(p.Sum))
				}
				// Semantic validation must classify-or-error, never panic.
				_ = fl.ValidatePartial(p, len(p.Sum), 1e6)
			}
		case MsgPartial2:
			if p, err := DecodePartial2(fr.Payload); err == nil {
				checkPartial2Expansion(t, p, len(fr.Payload))
				_ = fl.ValidatePartial(p, len(p.Sum), 1e6)
			}
		case MsgRound2:
			if r, err := DecodeRound2(fr.Payload); err == nil {
				if 8*len(r.Params) > len(fr.Payload) {
					t.Fatalf("round2 decode expanded %d payload bytes to %d params",
						len(fr.Payload), len(r.Params))
				}
			}
		}
	})
}

// checkPartial2Expansion asserts a decoded v2 partial allocated no more
// floats than the payload itself carried (8 bytes each), sketch included.
func checkPartial2Expansion(t *testing.T, p fl.Partial, payloadLen int) {
	t.Helper()
	floats := len(p.Sum)
	if p.Sketch != nil {
		floats += len(p.Sketch.Keys)
		for _, row := range p.Sketch.Vals {
			floats += len(row)
		}
	}
	if 8*floats > payloadLen {
		t.Fatalf("partial2 decode expanded %d payload bytes to %d floats", payloadLen, floats)
	}
}

// FuzzDecodePartial hammers both partial decoders directly (no frame
// header) — the bytes a hostile or torn leaf connection can feed the
// root's partial exchange. Invariants: never panic, never allocate beyond
// the payload's own size arithmetic, and semantic validation classifies
// without panicking whatever the structural decode admits.
func FuzzDecodePartial(f *testing.F) {
	seedGolden(f, func(b []byte) {
		if len(b) > HeaderLen && (b[2] == MsgPartial || b[2] == MsgPartial2) {
			f.Add(b[2] == MsgPartial2, b[HeaderLen:])
		}
	})
	f.Add(true, []byte{})
	f.Fuzz(func(t *testing.T, v2 bool, payload []byte) {
		if v2 {
			p, err := DecodePartial2(payload)
			if err != nil {
				return
			}
			checkPartial2Expansion(t, p, len(payload))
			if err := fl.ValidatePartial(p, len(p.Sum), 1e6); err == nil && p.Sketch != nil {
				// A validated sketch must be structurally sound enough to
				// merge without panicking.
				m := robust.NewSketch(p.Sketch.Cap)
				if err := m.Merge(p.Sketch); err != nil && p.Sketch.Dim() == m.Dim() {
					t.Fatalf("validated sketch failed to merge: %v", err)
				}
			}
			return
		}
		p, err := DecodePartial(payload)
		if err != nil {
			return
		}
		if 8*len(p.Sum) > len(payload) {
			t.Fatalf("partial decode expanded %d payload bytes to %d sums", len(payload), len(p.Sum))
		}
		_ = fl.ValidatePartial(p, len(p.Sum), 1e6)
	})
}

// FuzzDecompressUpdate hammers the compressed-update payload decoder for
// each mode directly (no frame header), plus the densify step — the
// decompression path of the tentpole. Same invariants: no panic, no
// over-allocation past the payload's own size arithmetic.
func FuzzDecompressUpdate(f *testing.F) {
	seedGolden(f, func(b []byte) {
		if len(b) > HeaderLen && b[2] == MsgUpdate {
			f.Add(b[3], b[HeaderLen:])
		}
	})
	f.Fuzz(func(t *testing.T, modeByte byte, payload []byte) {
		mode := compress.Mode(modeByte)
		u, err := DecodeUpdate(mode, payload)
		if err != nil {
			return
		}
		if !mode.Valid() {
			t.Fatalf("invalid mode %d decoded successfully", modeByte)
		}
		if len(u.Params) > len(payload)+1 || len(u.Indices) > len(payload)+1 {
			t.Fatalf("mode %s expanded %d payload bytes to %d params / %d indices",
				mode, len(payload), len(u.Params), len(u.Indices))
		}
		global := make([]float64, 32)
		dense, err := fl.Densify(u, global)
		if err != nil {
			return
		}
		if u.Sparse() && len(dense.Params) != len(global) {
			t.Fatalf("densify produced %d params for a %d-param model",
				len(dense.Params), len(global))
		}
	})
}
