package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/compress"
)

func testVector(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// allModes is every codec mode with a sensible config for a small vector.
func allModes() []compress.Config {
	return []compress.Config{
		{Mode: compress.None},
		{Mode: compress.TopK, TopKFrac: 0.25},
		{Mode: compress.Q8},
		{Mode: compress.Q16},
		{Mode: compress.TopKQ8, TopKFrac: 0.25},
		{Mode: compress.TopKQ16, TopKFrac: 0.25},
	}
}

func TestRoundFrameRoundTrip(t *testing.T) {
	params := testVector(37, 1)
	frame := AppendRoundFrame(nil, 12, -1, params)
	f, err := ReadFrame(bytes.NewReader(frame), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if f.Type != MsgRound || f.Mode != compress.None {
		t.Fatalf("frame header = type %d mode %d", f.Type, f.Mode)
	}
	round, durable, got, err := DecodeRound(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if round != 12 || durable != -1 {
		t.Fatalf("round,durable = %d,%d want 12,-1", round, durable)
	}
	for i := range params {
		if got[i] != params[i] {
			t.Fatalf("param %d: %v != %v", i, got[i], params[i])
		}
	}
}

func TestDoneFrameRoundTrip(t *testing.T) {
	f, err := ReadFrame(bytes.NewReader(AppendDoneFrame(nil)), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if f.Type != MsgDone || len(f.Payload) != 0 {
		t.Fatalf("done frame: type %d, %d payload bytes", f.Type, len(f.Payload))
	}
}

// TestUpdateFrameRoundTrip proves every mode's wire round-trip is exact:
// the decoded update, densified against the global, must equal the
// compressed delta's in-process reconstruction bit for bit. That identity
// is what makes the TCP path and the in-process Bank path (and therefore
// checkpoint resume across them) agree.
func TestUpdateFrameRoundTrip(t *testing.T) {
	global := testVector(64, 2)
	params := testVector(64, 3)
	for _, cfg := range allModes() {
		cfg := cfg.WithDefaults()
		t.Run(cfg.Mode.String(), func(t *testing.T) {
			u := fl.Update{ClientID: 7, NumSamples: 41, TrainLoss: 0.625}
			var d *compress.Delta
			var wantDense []float64
			if cfg.Mode == compress.None {
				u.Params = params
				wantDense = params
			} else {
				delta := make([]float64, len(params))
				for i := range delta {
					delta[i] = params[i] - global[i]
				}
				var err error
				d, err = cfg.Compress(delta)
				if err != nil {
					t.Fatal(err)
				}
				dec := d.Decode()
				wantDense = make([]float64, len(global))
				for i := range wantDense {
					wantDense[i] = global[i] + dec[i]
				}
			}
			frame, err := AppendUpdateFrame(nil, u, d, cfg.Mode)
			if err != nil {
				t.Fatal(err)
			}
			f, err := ReadFrame(bytes.NewReader(frame), len(frame))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Release()
			if f.Type != MsgUpdate || f.Mode != cfg.Mode {
				t.Fatalf("frame header = type %d mode %s", f.Type, f.Mode)
			}
			got, err := DecodeUpdate(f.Mode, f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if got.ClientID != 7 || got.NumSamples != 41 || got.TrainLoss != 0.625 {
				t.Fatalf("update header = %+v", got)
			}
			dense, err := fl.Densify(got, global)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantDense {
				if dense.Params[i] != wantDense[i] {
					t.Fatalf("%s: param %d: wire %v, in-process %v",
						cfg.Mode, i, dense.Params[i], wantDense[i])
				}
			}
			if cfg.Mode != compress.None {
				// The frame body should be exactly what Delta.WireBytes
				// promises (plus the fixed 20-byte update header).
				if want := d.WireBytes() + 20; len(f.Payload) != want {
					t.Fatalf("%s: payload %d bytes, WireBytes promises %d",
						cfg.Mode, len(f.Payload), want)
				}
			}
		})
	}
}

func TestReadFrameRejects(t *testing.T) {
	params := testVector(8, 4)
	good := AppendRoundFrame(nil, 0, -1, params)

	t.Run("budget", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(good), 8)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("err = %v, want ErrBudget", err)
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 0x00
		if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrMagic) {
			t.Fatalf("err = %v, want ErrMagic", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[1] = 99
		if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("type", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = 9
		if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrFrameType) {
			t.Fatalf("err = %v, want ErrFrameType", err)
		}
	})
	t.Run("mode", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[3] = 200
		if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrPayload) {
			t.Fatalf("err = %v, want ErrPayload", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader(good[:len(good)-3]), 0); err == nil {
			t.Fatal("truncated frame accepted")
		}
	})
}

func TestDecodeUpdateRejectsSizeLies(t *testing.T) {
	u := fl.Update{ClientID: 1, NumSamples: 10, Params: testVector(16, 5)}
	frame, err := AppendUpdateFrame(nil, u, nil, compress.None)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[HeaderLen:]

	// Lie about denseLen: body no longer matches.
	bad := append([]byte(nil), payload...)
	bad[16] = 0xFF
	if _, err := DecodeUpdate(compress.None, bad); !errors.Is(err, ErrPayload) {
		t.Fatalf("dense-length lie: err = %v, want ErrPayload", err)
	}
	// Truncated header.
	if _, err := DecodeUpdate(compress.None, payload[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short payload: err = %v, want ErrTruncated", err)
	}
	// Sparse k lie.
	cfg := compress.Config{Mode: compress.TopK, TopKFrac: 0.5}
	d, err := cfg.Compress(testVector(16, 6))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := AppendUpdateFrame(nil, fl.Update{ClientID: 1}, d, compress.TopK)
	if err != nil {
		t.Fatal(err)
	}
	sp := append([]byte(nil), sf[HeaderLen:]...)
	sp[20] = 0xEE // k prefix
	if _, err := DecodeUpdate(compress.TopK, sp); !errors.Is(err, ErrPayload) {
		t.Fatalf("k lie: err = %v, want ErrPayload", err)
	}
}

// TestDecodeUpdateQuantizedNaNRangeSurfacesDownstream: hostile min/max in
// a quantized body decode to non-finite params, which fl validation (not
// the structural decode) rejects.
func TestDecodeUpdateQuantizedNaNRangeSurfacesDownstream(t *testing.T) {
	cfg := compress.Config{Mode: compress.Q8}
	d, err := cfg.Compress(testVector(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := AppendUpdateFrame(nil, fl.Update{ClientID: 3}, d, compress.Q8)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), frame[HeaderLen:]...)
	// Overwrite min with NaN.
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		payload[20+i] = byte(nan >> (8 * i))
	}
	u, err := DecodeUpdate(compress.Q8, payload)
	if err != nil {
		t.Fatalf("structural decode should pass: %v", err)
	}
	if _, err := fl.Densify(u, make([]float64, 8)); err == nil {
		t.Fatal("NaN-range update densified without error")
	}
}

func TestBufferPoolReuse(t *testing.T) {
	b := GetBuffer(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("len,cap = %d,%d", len(b), cap(b))
	}
	b[0] = 0xAB
	PutBuffer(b)
	b2 := GetBuffer(900)
	if cap(b2) != 1024 {
		t.Fatalf("expected class reuse, cap = %d", cap(b2))
	}
	PutBuffer(b2)
	// Oversized requests fall through and PutBuffer ignores them.
	huge := GetBuffer(1 << 27)
	if len(huge) != 1<<27 {
		t.Fatalf("oversized len = %d", len(huge))
	}
	PutBuffer(huge)
	// Foreign non-power-of-two slices are ignored too.
	PutBuffer(make([]byte, 1000))
}
