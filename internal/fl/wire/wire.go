// Package wire is the federation's binary update codec: length-prefixed,
// versioned, little-endian frames carrying rounds and updates with zero
// reflection on the hot path. It replaces gob between negotiating peers
// (the welcome handshake decides per client; old clients keep gob).
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       1     magic 0xCF
//	1       1     version (currently 1)
//	2       1     frame type (1=round, 2=update, 3=done, 4=partial)
//	3       1     compression mode (compress.Mode; 0 except on updates)
//	4       4     payload length, uint32
//	8       n     payload
//
// Payloads (see codec.go) are fixed arithmetic over the header fields:
// every length is validated against the declared payload size BEFORE any
// allocation, the whole decode path is bounded by the caller's byte
// budget, and — like the checkpoint container decoder — DecodeFrame
// converts any latent panic into an error, because these bytes arrive
// from the least-trusted peer in the system.
//
// Payload buffers come from a power-of-two pooled arena (buffer.go, the
// PR 3 scratch-arena pattern applied to bytes) so steady-state rounds
// allocate nothing per update.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/cip-fl/cip/internal/fl/compress"
)

const (
	// Magic is the first byte of every frame.
	Magic = 0xCF
	// Version is the codec version this package speaks. Decoders reject
	// other versions; negotiation keeps old peers on gob instead.
	Version = 1
	// HeaderLen is the fixed frame-header size.
	HeaderLen = 8
)

// Frame types.
const (
	// MsgRound carries the broadcast global parameters for one round.
	MsgRound = 1
	// MsgUpdate carries one client's (possibly compressed) update.
	MsgUpdate = 2
	// MsgDone tells a client the federation is complete.
	MsgDone = 3
	// MsgPartial carries one leaf aggregator's pre-division weighted sums
	// for a round (hierarchical aggregation; negotiated via the hello/
	// welcome Partial capability, so old peers never see it).
	MsgPartial = 4
	// MsgPartial2 is the v2 partial: MsgPartial plus coverage metadata
	// (expected weight, degraded flag) and an optional mergeable row
	// sketch for robust tree aggregation. Negotiated via the hello/welcome
	// PartialV field; v1 peers never see it.
	MsgPartial2 = 5
	// MsgRound2 is the v2 round broadcast sent to partial-v2 children:
	// MsgRound plus the root-coordinated sample fraction/seed and the
	// sketch capacity the subtree should build at.
	MsgRound2 = 6
)

// Codec names for flag/handshake use.
const (
	// CodecGob names the legacy reflection-driven gob stream.
	CodecGob = "gob"
	// CodecBinary names this package's framed binary codec.
	CodecBinary = "binary"
)

// Errors the decode path classifies. All are terminal for the connection;
// match with errors.Is.
var (
	// ErrMagic means the stream is not positioned at a frame.
	ErrMagic = errors.New("wire: bad magic byte")
	// ErrVersion means the peer speaks a codec version we do not.
	ErrVersion = errors.New("wire: unsupported codec version")
	// ErrFrameType means an unknown frame type.
	ErrFrameType = errors.New("wire: unknown frame type")
	// ErrBudget means a declared payload exceeds the receive byte budget.
	ErrBudget = errors.New("wire: frame exceeds byte budget")
	// ErrTruncated means a payload is shorter than its fields require.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrPayload means a payload's internal lengths are inconsistent.
	ErrPayload = errors.New("wire: malformed payload")
)

// Frame is one decoded frame header plus its raw payload. Payload storage
// is pooled: call Release when done with it.
type Frame struct {
	Type    byte
	Mode    compress.Mode
	Payload []byte
}

// Release returns the frame's payload buffer to the arena. The payload
// (and anything aliasing it) must not be touched afterwards.
func (f *Frame) Release() {
	PutBuffer(f.Payload)
	f.Payload = nil
}

// ReadFrame reads one frame from r. The declared payload length is
// checked against budget (≤ 0 means no limit) before any allocation, so
// a hostile 4 GiB length prefix costs nothing. The returned payload is
// pooled; pair with Frame.Release.
func ReadFrame(r io.Reader, budget int) (Frame, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != Magic {
		return Frame{}, fmt.Errorf("%w: 0x%02x", ErrMagic, hdr[0])
	}
	if hdr[1] != Version {
		return Frame{}, fmt.Errorf("%w: %d (speaking %d)", ErrVersion, hdr[1], Version)
	}
	typ := hdr[2]
	if typ != MsgRound && typ != MsgUpdate && typ != MsgDone && typ != MsgPartial &&
		typ != MsgPartial2 && typ != MsgRound2 {
		return Frame{}, fmt.Errorf("%w: %d", ErrFrameType, typ)
	}
	mode := compress.Mode(hdr[3])
	if !mode.Valid() {
		return Frame{}, fmt.Errorf("%w: compression mode %d", ErrPayload, hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if budget > 0 && n > uint32(budget) {
		return Frame{}, fmt.Errorf("%w: payload of %d bytes, budget %d", ErrBudget, n, budget)
	}
	payload := GetBuffer(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutBuffer(payload)
		return Frame{}, err
	}
	return Frame{Type: typ, Mode: mode, Payload: payload}, nil
}

// AppendHeader appends a frame header to dst and returns the extended
// slice. The payload of length n must follow.
func AppendHeader(dst []byte, typ byte, mode compress.Mode, n int) []byte {
	var hdr [HeaderLen]byte
	hdr[0] = Magic
	hdr[1] = Version
	hdr[2] = typ
	hdr[3] = byte(mode)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(n))
	return append(dst, hdr[:]...)
}

// WriteFrame writes one complete frame (header + payload) to w.
func WriteFrame(w io.Writer, typ byte, mode compress.Mode, payload []byte) error {
	buf := GetBuffer(0)[:0]
	buf = AppendHeader(buf, typ, mode, len(payload))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	PutBuffer(buf)
	return err
}
