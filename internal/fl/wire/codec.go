package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/compress"
	"github.com/cip-fl/cip/internal/fl/robust"
)

// Payload codecs. Layouts (little-endian throughout):
//
// Round (MsgRound, mode always None):
//
//	round   uint32
//	durable int32   (last durable round; -1 when durability is off)
//	n       uint32  (parameter count)
//	params  n × float64
//
// Update (MsgUpdate; body depends on the frame's compression mode):
//
//	clientID   uint32
//	numSamples uint32
//	trainLoss  float64
//	denseLen   uint32  (dense length of the model vector)
//	body:
//	  none:   denseLen × float64           raw dense parameters
//	  topk:   k uint32, k × uint32 indices, k × float64 delta values
//	  q8/q16: min float64, max float64, denseLen × (1|2) byte codes
//	  topk8/topk16:
//	          k uint32, min float64, max float64,
//	          k × uint32 indices, k × (1|2) byte codes
//
// Compressed bodies are DELTAS against the round's broadcast global (the
// decode side surfaces them as fl.Update{IsDelta: true} for fl.Densify);
// mode none carries raw parameters, making an uncompressed binary
// federation bit-identical to a gob one.
//
// Done (MsgDone): empty payload.
//
// Partial (MsgPartial, mode always None) — a leaf aggregator's
// pre-division contribution for one round:
//
//	round   uint32
//	leafID  uint32
//	count   uint32  (client updates folded into the sums)
//	weight  float64 (total FedAvg weight Σ w)
//	n       uint32  (parameter count)
//	sum     n × float64 (weighted parameter sums Σ w·v)
//
// Partial v2 (MsgPartial2, mode always None) — the v1 fields plus
// coverage metadata and an optional mergeable row sketch (negotiated by
// the hello/welcome PartialV capability):
//
//	round   uint32
//	leafID  uint32
//	count   uint32
//	flags   uint32  (bit0 = degraded, bit1 = sketch present)
//	weight  float64
//	expect  float64 (the subtree's planned cohort weight this round)
//	n       uint32
//	sum     n × float64
//	sketch (only when flags bit1):
//	  cap  uint32
//	  rows uint32  (total rows the sketch represents)
//	  k    uint32  (retained rows; keys sorted ascending)
//	  keys k × uint64
//	  vals k × n × float64
//
// Round v2 (MsgRound2, mode always None) — the round broadcast an
// aggregator sends its partial-v2 children, carrying the root-coordinated
// shard-sampling directive and sketch capacity alongside the v1 fields:
//
//	round      uint32
//	durable    int32
//	sampleFrac float64
//	sampleSeed uint64
//	sketchCap  uint32
//	n          uint32
//	params     n × float64
//
// Every decoder validates the exact size arithmetic before touching the
// body, allocates nothing larger than ~8× the received payload, and runs
// under a panic guard — the update path parses attacker-controlled bytes.

const (
	roundHeadLen    = 12
	updateHeadLen   = 20
	partialHeadLen  = 24
	partial2HeadLen = 36
	sketchHeadLen   = 12
	round2HeadLen   = 32
)

// Partial2 flag bits.
const (
	partial2Degraded  = 1 << 0
	partial2HasSketch = 1 << 1
)

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

func appendF64s(dst []byte, vs []float64) []byte {
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func getU32(b []byte) uint32  { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64  { return binary.LittleEndian.Uint64(b) }
func getF64(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// RoundPayloadLen returns the round payload size for n parameters.
func RoundPayloadLen(n int) int { return roundHeadLen + 8*n }

// AppendRoundFrame appends a complete MsgRound frame (header + payload)
// broadcasting params for the given round. durable is the coordinator's
// last durable round (-1 when durability is off).
func AppendRoundFrame(dst []byte, round, durable int, params []float64) []byte {
	dst = AppendHeader(dst, MsgRound, compress.None, RoundPayloadLen(len(params)))
	dst = appendU32(dst, uint32(round))
	dst = appendU32(dst, uint32(int32(durable)))
	dst = appendU32(dst, uint32(len(params)))
	return appendF64s(dst, params)
}

// AppendDoneFrame appends a complete MsgDone frame.
func AppendDoneFrame(dst []byte) []byte {
	return AppendHeader(dst, MsgDone, compress.None, 0)
}

// DecodeRound parses a MsgRound payload.
func DecodeRound(payload []byte) (round, durable int, params []float64, err error) {
	defer recoverDecode(&err)
	if len(payload) < roundHeadLen {
		return 0, 0, nil, fmt.Errorf("%w: round payload of %d bytes", ErrTruncated, len(payload))
	}
	round = int(getU32(payload[0:]))
	durable = int(int32(getU32(payload[4:])))
	n := int(getU32(payload[8:]))
	if len(payload) != RoundPayloadLen(n) {
		return 0, 0, nil, fmt.Errorf("%w: round declares %d params in %d bytes, want %d",
			ErrPayload, n, len(payload), RoundPayloadLen(n))
	}
	params = make([]float64, n)
	for i := range params {
		params[i] = getF64(payload[roundHeadLen+8*i:])
	}
	return round, durable, params, nil
}

// PartialPayloadLen returns the partial payload size for n parameters.
func PartialPayloadLen(n int) int { return partialHeadLen + 8*n }

// AppendPartialFrame appends a complete MsgPartial frame carrying a leaf's
// pre-division weighted sums for one round.
func AppendPartialFrame(dst []byte, p fl.Partial) []byte {
	dst = AppendHeader(dst, MsgPartial, compress.None, PartialPayloadLen(len(p.Sum)))
	dst = appendU32(dst, uint32(p.Round))
	dst = appendU32(dst, uint32(p.LeafID))
	dst = appendU32(dst, uint32(p.Count))
	dst = appendF64(dst, p.Weight)
	dst = appendU32(dst, uint32(len(p.Sum)))
	return appendF64s(dst, p.Sum)
}

// DecodePartial parses a MsgPartial payload. Like the update decoder it
// performs only the structural checks (exact size arithmetic, panic
// guard); semantic validation (weight/count positivity, finiteness, the
// implied-mean norm bound) is fl.ValidatePartial's job at the root.
func DecodePartial(payload []byte) (p fl.Partial, err error) {
	defer recoverDecode(&err)
	if len(payload) < partialHeadLen {
		return fl.Partial{}, fmt.Errorf("%w: partial payload of %d bytes", ErrTruncated, len(payload))
	}
	p.Round = int(getU32(payload[0:]))
	p.LeafID = int(getU32(payload[4:]))
	p.Count = int(int32(getU32(payload[8:])))
	p.Weight = getF64(payload[12:])
	n := int(getU32(payload[20:]))
	if len(payload) != PartialPayloadLen(n) {
		return fl.Partial{}, fmt.Errorf("%w: partial declares %d params in %d bytes, want %d",
			ErrPayload, n, len(payload), PartialPayloadLen(n))
	}
	p.Sum = make([]float64, n)
	for i := range p.Sum {
		p.Sum[i] = getF64(payload[partialHeadLen+8*i:])
	}
	return p, nil
}

// Partial2PayloadLen returns the v2 partial payload size for n parameters
// and k retained sketch rows (k is ignored when the sketch is absent).
func Partial2PayloadLen(n, k int, hasSketch bool) int {
	size := partial2HeadLen + 8*n
	if hasSketch {
		size += sketchHeadLen + 8*k + 8*k*n
	}
	return size
}

// AppendPartial2Frame appends a complete MsgPartial2 frame carrying a
// subtree's pre-division sums, coverage metadata, and (when present) its
// mergeable row sketch.
func AppendPartial2Frame(dst []byte, p fl.Partial) []byte {
	var k int
	var flags uint32
	if p.Degraded {
		flags |= partial2Degraded
	}
	if p.Sketch != nil {
		flags |= partial2HasSketch
		k = len(p.Sketch.Keys)
	}
	dst = AppendHeader(dst, MsgPartial2, compress.None, Partial2PayloadLen(len(p.Sum), k, p.Sketch != nil))
	dst = appendU32(dst, uint32(p.Round))
	dst = appendU32(dst, uint32(p.LeafID))
	dst = appendU32(dst, uint32(p.Count))
	dst = appendU32(dst, flags)
	dst = appendF64(dst, p.Weight)
	dst = appendF64(dst, p.ExpectWeight)
	dst = appendU32(dst, uint32(len(p.Sum)))
	dst = appendF64s(dst, p.Sum)
	if p.Sketch != nil {
		dst = appendU32(dst, uint32(p.Sketch.Cap))
		dst = appendU32(dst, uint32(p.Sketch.Rows))
		dst = appendU32(dst, uint32(k))
		for _, key := range p.Sketch.Keys {
			dst = appendU64(dst, key)
		}
		for _, row := range p.Sketch.Vals {
			dst = appendF64s(dst, row)
		}
	}
	return dst
}

// DecodePartial2 parses a MsgPartial2 payload. Structural checks only
// (exact size arithmetic, bounded allocation, panic guard); semantic
// validation — including the sketch's sorted-keys/finiteness/row-count
// invariants — is fl.ValidatePartial's job at the parent.
func DecodePartial2(payload []byte) (p fl.Partial, err error) {
	defer recoverDecode(&err)
	if len(payload) < partial2HeadLen {
		return fl.Partial{}, fmt.Errorf("%w: partial2 payload of %d bytes", ErrTruncated, len(payload))
	}
	p.Round = int(getU32(payload[0:]))
	p.LeafID = int(getU32(payload[4:]))
	p.Count = int(int32(getU32(payload[8:])))
	flags := getU32(payload[12:])
	p.Weight = getF64(payload[16:])
	p.ExpectWeight = getF64(payload[24:])
	p.Degraded = flags&partial2Degraded != 0
	hasSketch := flags&partial2HasSketch != 0
	n := int(getU32(payload[32:]))
	// Every parameter costs ≥ 8 payload bytes, so a declared count beyond
	// len/8 is a lie — reject before the size products below can overflow.
	if n > len(payload)/8 {
		return fl.Partial{}, fmt.Errorf("%w: partial2 declares %d params in %d bytes", ErrPayload, n, len(payload))
	}
	if !hasSketch {
		if len(payload) != Partial2PayloadLen(n, 0, false) {
			return fl.Partial{}, fmt.Errorf("%w: partial2 declares %d params in %d bytes, want %d",
				ErrPayload, n, len(payload), Partial2PayloadLen(n, 0, false))
		}
	}
	p.Sum = make([]float64, n)
	for i := range p.Sum {
		p.Sum[i] = getF64(payload[partial2HeadLen+8*i:])
	}
	if !hasSketch {
		return p, nil
	}
	body := payload[partial2HeadLen+8*n:]
	if len(body) < sketchHeadLen {
		return fl.Partial{}, fmt.Errorf("%w: partial2 sketch head of %d bytes", ErrTruncated, len(body))
	}
	sk := &robust.Sketch{
		Cap:  int(getU32(body[0:])),
		Rows: int(int32(getU32(body[4:]))),
	}
	k := int(getU32(body[8:]))
	if k > len(body)/8 {
		return fl.Partial{}, fmt.Errorf("%w: partial2 sketch declares %d rows in %d bytes", ErrPayload, k, len(body))
	}
	if len(payload) != Partial2PayloadLen(n, k, true) {
		return fl.Partial{}, fmt.Errorf("%w: partial2 sketch of %d×%d in %d bytes, want %d",
			ErrPayload, k, n, len(payload), Partial2PayloadLen(n, k, true))
	}
	body = body[sketchHeadLen:]
	sk.Keys = make([]uint64, k)
	for i := range sk.Keys {
		sk.Keys[i] = getU64(body[8*i:])
	}
	body = body[8*k:]
	sk.Vals = make([][]float64, k)
	for i := range sk.Vals {
		row := make([]float64, n)
		for j := range row {
			row[j] = getF64(body[8*(i*n+j):])
		}
		sk.Vals[i] = row
	}
	p.Sketch = sk
	return p, nil
}

// Round2 is the decoded form of a MsgRound2 broadcast: the v1 round fields
// plus the root-coordinated shard-sampling directive and sketch capacity.
type Round2 struct {
	Round      int
	Durable    int
	SampleFrac float64
	SampleSeed int64
	SketchCap  int
	Params     []float64
}

// Round2PayloadLen returns the v2 round payload size for n parameters.
func Round2PayloadLen(n int) int { return round2HeadLen + 8*n }

// AppendRound2Frame appends a complete MsgRound2 frame.
func AppendRound2Frame(dst []byte, r Round2) []byte {
	dst = AppendHeader(dst, MsgRound2, compress.None, Round2PayloadLen(len(r.Params)))
	dst = appendU32(dst, uint32(r.Round))
	dst = appendU32(dst, uint32(int32(r.Durable)))
	dst = appendF64(dst, r.SampleFrac)
	dst = appendU64(dst, uint64(r.SampleSeed))
	dst = appendU32(dst, uint32(r.SketchCap))
	dst = appendU32(dst, uint32(len(r.Params)))
	return appendF64s(dst, r.Params)
}

// DecodeRound2 parses a MsgRound2 payload.
func DecodeRound2(payload []byte) (r Round2, err error) {
	defer recoverDecode(&err)
	if len(payload) < round2HeadLen {
		return Round2{}, fmt.Errorf("%w: round2 payload of %d bytes", ErrTruncated, len(payload))
	}
	r.Round = int(getU32(payload[0:]))
	r.Durable = int(int32(getU32(payload[4:])))
	r.SampleFrac = getF64(payload[8:])
	r.SampleSeed = int64(getU64(payload[16:]))
	r.SketchCap = int(int32(getU32(payload[24:])))
	n := int(getU32(payload[28:]))
	if len(payload) != Round2PayloadLen(n) {
		return Round2{}, fmt.Errorf("%w: round2 declares %d params in %d bytes, want %d",
			ErrPayload, n, len(payload), Round2PayloadLen(n))
	}
	r.Params = make([]float64, n)
	for i := range r.Params {
		r.Params[i] = getF64(payload[round2HeadLen+8*i:])
	}
	return r, nil
}

// UpdatePayloadLen returns the update payload size for a dense length and
// a compressed body of k kept coordinates under mode (k is ignored by
// dense modes).
func UpdatePayloadLen(mode compress.Mode, denseLen, k int) int {
	n := updateHeadLen
	switch mode {
	case compress.None:
		n += 8 * denseLen
	case compress.TopK:
		n += 4 + 12*k
	case compress.Q8:
		n += 16 + denseLen
	case compress.Q16:
		n += 16 + 2*denseLen
	case compress.TopKQ8:
		n += 4 + 16 + 5*k
	case compress.TopKQ16:
		n += 4 + 16 + 6*k
	}
	return n
}

// AppendUpdateFrame appends a complete MsgUpdate frame. For mode None, u
// carries the raw dense parameters and d must be nil; for every other
// mode, d is the compressed delta (as produced by compress.Config
// under the same mode) and u contributes only ClientID, NumSamples, and
// TrainLoss.
func AppendUpdateFrame(dst []byte, u fl.Update, d *compress.Delta, mode compress.Mode) ([]byte, error) {
	var denseLen, k int
	if mode == compress.None {
		if d != nil {
			return nil, fmt.Errorf("wire: mode none takes no delta")
		}
		denseLen = len(u.Params)
	} else {
		if d == nil {
			return nil, fmt.Errorf("wire: mode %s requires a delta", mode)
		}
		if d.Bits != mode.Bits() || (d.Indices == nil) == mode.Sparse() {
			return nil, fmt.Errorf("wire: delta shape does not match mode %s", mode)
		}
		denseLen = d.Len
		k = len(d.Indices)
	}
	dst = AppendHeader(dst, MsgUpdate, mode, UpdatePayloadLen(mode, denseLen, k))
	dst = appendU32(dst, uint32(u.ClientID))
	dst = appendU32(dst, uint32(u.NumSamples))
	dst = appendF64(dst, u.TrainLoss)
	dst = appendU32(dst, uint32(denseLen))
	if mode == compress.None {
		return appendF64s(dst, u.Params), nil
	}
	if mode.Sparse() {
		dst = appendU32(dst, uint32(k))
	}
	if mode.Bits() > 0 {
		dst = appendF64(dst, d.Min)
		dst = appendF64(dst, d.Max)
	}
	for _, i := range d.Indices {
		dst = appendU32(dst, uint32(i))
	}
	switch mode.Bits() {
	case 0:
		dst = appendF64s(dst, d.Values)
	case 8:
		for _, c := range d.Codes {
			dst = append(dst, byte(c))
		}
	case 16:
		for _, c := range d.Codes {
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], c)
			dst = append(dst, b[:]...)
		}
	}
	return dst, nil
}

// DecodeUpdate parses a MsgUpdate payload under the frame's compression
// mode. Mode None yields a canonical dense raw update; compressed modes
// yield sparse/delta updates (Update.Sparse() true) that the caller must
// run through fl.Densify against the broadcast global — which also
// performs the semantic index validation (range, order, duplicates) this
// structural decode leaves to it. DenseLen is the client's CLAIM about
// the model size; nothing is allocated from it, and fl.Densify checks it
// against the real model.
func DecodeUpdate(mode compress.Mode, payload []byte) (u fl.Update, err error) {
	defer recoverDecode(&err)
	if !mode.Valid() {
		return fl.Update{}, fmt.Errorf("%w: compression mode %d", ErrPayload, mode)
	}
	if len(payload) < updateHeadLen {
		return fl.Update{}, fmt.Errorf("%w: update payload of %d bytes", ErrTruncated, len(payload))
	}
	u.ClientID = int(getU32(payload[0:]))
	u.NumSamples = int(int32(getU32(payload[4:])))
	u.TrainLoss = getF64(payload[8:])
	denseLen := int(getU32(payload[16:]))
	body := payload[updateHeadLen:]

	if mode == compress.None {
		if len(body) != 8*denseLen {
			return fl.Update{}, fmt.Errorf("%w: dense body of %d bytes for %d params",
				ErrPayload, len(body), denseLen)
		}
		u.Params = make([]float64, denseLen)
		for i := range u.Params {
			u.Params[i] = getF64(body[8*i:])
		}
		return u, nil
	}

	u.DenseLen = denseLen
	u.IsDelta = true
	k := denseLen // dense quantized modes carry denseLen values
	if mode.Sparse() {
		if len(body) < 4 {
			return fl.Update{}, fmt.Errorf("%w: sparse body of %d bytes", ErrTruncated, len(body))
		}
		k = int(getU32(body))
		body = body[4:]
	}
	// Exact-size check before any allocation: k and denseLen are
	// attacker-controlled, but from here on every allocation is bounded
	// by the (budget-checked) payload length itself.
	want := UpdatePayloadLen(mode, denseLen, k) - updateHeadLen
	if mode.Sparse() {
		want -= 4
	}
	if len(body) != want {
		return fl.Update{}, fmt.Errorf("%w: %s body of %d bytes, want %d (k=%d, dense=%d)",
			ErrPayload, mode, len(body), want, k, denseLen)
	}
	var min, max float64
	if mode.Bits() > 0 {
		min, max = getF64(body[0:]), getF64(body[8:])
		body = body[16:]
	}
	if mode.Sparse() {
		u.Indices = make([]int, k)
		for j := range u.Indices {
			u.Indices[j] = int(getU32(body[4*j:]))
		}
		body = body[4*k:]
	}
	switch mode.Bits() {
	case 0:
		u.Params = make([]float64, k)
		for j := range u.Params {
			u.Params[j] = getF64(body[8*j:])
		}
	case 8:
		codes := make([]uint16, k)
		for j := range codes {
			codes[j] = uint16(body[j])
		}
		u.Params = dequantize(codes, min, max, 8)
	case 16:
		codes := make([]uint16, k)
		for j := range codes {
			codes[j] = binary.LittleEndian.Uint16(body[2*j:])
		}
		u.Params = dequantize(codes, min, max, 16)
	}
	return u, nil
}

// dequantize expands quantized codes through the compress package's
// affine decode, so wire and in-process reconstructions are bit-identical.
func dequantize(codes []uint16, min, max float64, bits int) []float64 {
	z := compress.Quantized{Codes: codes, Min: min, Max: max, Bits: bits, N: len(codes)}
	return z.Decode()
}

// recoverDecode converts a decoder panic into an error, mirroring the
// checkpoint container's guard: a parser bug on attacker-controlled bytes
// must cost one connection, not the coordinator process.
func recoverDecode(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: decoder panic: %v", ErrPayload, r)
	}
}
