// Package fl implements the federated-learning substrate the paper trains
// on: FedAvg clients and server, communication rounds, and the
// malicious-server observation and alteration hooks that the internal
// membership inference attacks of Nasr et al. (S&P'19) require.
//
// The design keeps attack logic out of the engine: a malicious server is
// modeled as (a) a RoundObserver that receives every client's local update
// each round (the passive attack's vantage point) and (b) an AlterFunc that
// may rewrite the model a victim client receives (the active attack's
// gradient-ascent injection point).
package fl

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/cip-fl/cip/internal/rng"
)

// Update is what a client returns from one round of local training.
//
// The canonical shape is dense: Params holds the full post-training
// parameter vector and Indices/DenseLen/IsDelta are zero. The binary wire
// path additionally produces compressed shapes — sparse (Indices non-nil:
// Params holds only the coordinates named by Indices) and/or delta
// (IsDelta: values are offsets from the round's broadcast global rather
// than raw parameters). Compressed updates exist only between decode and
// Densify; Aggregate and the robust folds accept dense raw updates
// exclusively and reject anything else with an explicit error.
type Update struct {
	// ClientID identifies the producing client (filled in by the server).
	ClientID int
	// Params is the client's post-training flat parameter vector — or,
	// for a sparse update, the values of the coordinates in Indices.
	Params []float64
	// NumSamples weights this client in the FedAvg aggregate.
	NumSamples int
	// TrainLoss is the client's mean local training loss this round;
	// Fig. 7's EMD heterogeneity measure is computed over these.
	TrainLoss float64
	// Indices, when non-nil, marks the update sparse: Params[j] is the
	// value at dense coordinate Indices[j]. Indices must be strictly
	// ascending and in [0, DenseLen).
	Indices []int
	// DenseLen is the dense vector length a sparse update expands to.
	DenseLen int
	// IsDelta marks Params as offsets from the broadcast global
	// parameters instead of raw post-training values.
	IsDelta bool
}

// Sparse reports whether the update is in a compressed (sparse or delta)
// shape that must be densified before aggregation.
func (u Update) Sparse() bool { return u.Indices != nil || u.IsDelta }

// Client is one federated-learning participant.
type Client interface {
	// ID returns the client's stable index.
	ID() int
	// NumSamples returns the local training-set size.
	NumSamples() int
	// TrainLocal loads the global parameters, runs the client's local
	// training for the round, and returns the resulting update.
	TrainLocal(round int, global []float64) (Update, error)
}

// RoundObserver receives the state a (potentially malicious) server can see
// every round: the pre-round global parameters and each client's update.
type RoundObserver interface {
	ObserveRound(round int, global []float64, updates []Update)
}

// AlterFunc lets a malicious server rewrite the parameters sent to one
// client. Returning nil keeps the genuine global parameters.
type AlterFunc func(round int, clientID int, global []float64) []float64

// Server coordinates FedAvg over a set of clients.
type Server struct {
	Clients   []Client
	Observers []RoundObserver
	// Alter, when non-nil, may substitute the parameters each client
	// receives (malicious-server active attacks).
	Alter AlterFunc
	// SampleFraction, when in (0, 1), trains only that fraction of clients
	// per round (McMahan et al.'s client-sampling parameter C); 0 or ≥1
	// trains everyone. SampleRng drives the selection (nil seeds from 0).
	SampleFraction float64
	SampleRng      *rand.Rand
	// SamplerSrc, when set (and SampleRng is nil), drives client sampling
	// through a serializable source so CaptureState can checkpoint the
	// sampler's exact position (required for durable runs that sample).
	SamplerSrc *rng.Source
	// Policy, when non-nil, enables fault-tolerant rounds: failing or
	// invalid clients are dropped and the round aggregates over the
	// surviving quorum. Nil keeps fail-stop semantics.
	Policy *RoundPolicy
	// Metrics, when non-nil, receives per-round telemetry (round
	// duration, participating/dropped clients, validation rejections).
	Metrics *Metrics
	// Workers bounds how many clients train concurrently within one round
	// (each client owns its model, optimizer, and RNG, so local training is
	// an independent map over participants). 0 means GOMAXPROCS. Results
	// are bit-identical for every worker count: parameters are altered in
	// a serial pre-pass, updates land in an index-addressed slice, and
	// observers and aggregation run serially in roster order.
	Workers int

	global []float64
	// fold and spare are the pooled aggregation state: the fold's
	// accumulator and the output buffer FinalizeInto fills, swapped with
	// global each round so steady-state aggregation allocates nothing.
	// Safe because TrainLocal contractually copies the broadcast
	// parameters (training mutates them) and observers receive a fresh
	// Global() snapshot, so nothing retains the swapped buffers.
	fold  *Fold
	spare []float64
	// round is the next round index to run; Run loops it up to its total,
	// so a server restored from a checkpoint continues where it left off.
	round int
	// failCounts accumulates per-client failures across rounds under a
	// RoundPolicy; it is part of the durable state (ServerState).
	failCounts map[int]int
}

// NewServer creates a server with the given initial global parameters.
func NewServer(initial []float64, clients ...Client) *Server {
	g := make([]float64, len(initial))
	copy(g, initial)
	return &Server{Clients: clients, global: g}
}

// Global returns a copy of the current global parameter vector.
func (s *Server) Global() []float64 {
	out := make([]float64, len(s.global))
	copy(out, s.global)
	return out
}

// RunRound executes one communication round: broadcast, local training on
// the (possibly sampled) clients, then weighted FedAvg aggregation.
func (s *Server) RunRound(round int) error {
	if len(s.Clients) == 0 {
		return errors.New("fl: server has no clients")
	}
	start := time.Now()
	participants := s.sampleClients()
	if s.Policy != nil {
		if err := s.runRoundQuorum(round, start, participants); err != nil {
			return err
		}
		s.round = round + 1
		return nil
	}
	outcomes, workers, busy := s.trainParticipants(round, participants)
	updates := make([]Update, len(participants))
	for i, c := range participants {
		if err := outcomes[i].err; err != nil {
			return fmt.Errorf("fl: client %d round %d: %w", c.ID(), round, err)
		}
		u := outcomes[i].update
		if len(u.Params) != len(s.global) {
			return fmt.Errorf("fl: client %d returned %d params, want %d",
				c.ID(), len(u.Params), len(s.global))
		}
		updates[i] = u
	}
	for _, o := range s.Observers {
		o.ObserveRound(round, s.Global(), updates)
	}
	if s.fold == nil || cap(s.spare) < len(s.global) {
		s.fold = NewFold(len(s.global))
		s.spare = make([]float64, len(s.global))
	} else {
		s.fold.Reset(len(s.global))
		s.spare = s.spare[:len(s.global)]
	}
	for _, u := range updates {
		if err := s.fold.Fold(u); err != nil {
			return fmt.Errorf("fl: round %d: %w", round, err)
		}
	}
	if err := s.fold.FinalizeInto(s.spare); err != nil {
		return fmt.Errorf("fl: round %d: %w", round, err)
	}
	s.global, s.spare = s.spare, s.global
	s.round = round + 1
	s.Metrics.RecordRound(start, len(updates), 0, len(s.global))
	s.Metrics.RecordWorkerPool(workers, busy, time.Since(start))
	return nil
}

// sampleClients returns this round's participants in stable ID order. The
// Server-level SampleFraction wins; when unset, the RoundPolicy's knob
// (the flag-wired spelling) applies.
func (s *Server) sampleClients() []Client {
	f := s.SampleFraction
	if f <= 0 && s.Policy != nil {
		f = s.Policy.SampleFraction
	}
	if f <= 0 || f >= 1 || len(s.Clients) < 2 {
		return s.Clients
	}
	n := int(f*float64(len(s.Clients)) + 0.5)
	if n < 1 {
		n = 1
	}
	if s.SampleRng == nil {
		if s.SamplerSrc != nil {
			s.SampleRng = rand.New(s.SamplerSrc)
		} else {
			s.SampleRng = rand.New(rand.NewSource(0))
		}
	}
	perm := s.SampleRng.Perm(len(s.Clients))[:n]
	// Keep deterministic ordering so observers can index stably.
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	out := make([]Client, n)
	for i, idx := range perm {
		out[i] = s.Clients[idx]
	}
	return out
}

// Run executes communication rounds until the server has completed rounds
// of them in total. A freshly constructed server runs rounds 0..rounds-1;
// a server restored from a checkpoint continues from its restored round.
func (s *Server) Run(rounds int) error {
	for s.round < rounds {
		if err := s.RunRound(s.round); err != nil {
			return err
		}
	}
	return nil
}

// Aggregate computes the sample-weighted FedAvg mean of the updates. All
// update vectors must share one length; a mismatch is reported as an error
// instead of panicking, so one misbehaving client cannot crash the
// aggregator. It is the batch form of Fold: updates fold in slice order,
// so the result is bit-identical to a streaming fold over the same order.
func Aggregate(updates []Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, errZeroFold
	}
	f := NewFold(len(updates[0].Params))
	for _, u := range updates {
		if err := f.Fold(u); err != nil {
			return nil, err
		}
	}
	out, _, err := f.Finalize()
	return out, err
}
