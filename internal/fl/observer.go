package fl

// HistoryRecorder is a RoundObserver that keeps the per-round state a
// malicious server would see. The internal passive attack reads local
// models from here; Fig. 7's EMD heterogeneity analysis reads the
// per-client training-loss series.
type HistoryRecorder struct {
	// KeepParams controls whether local parameter vectors are retained
	// (they dominate memory). Loss histories are always kept.
	KeepParams bool
	// OnlyRounds, when non-empty, restricts parameter retention to these
	// rounds — the paper's passive attack observes "several latest
	// iterations" (Table I's attacking iterations).
	OnlyRounds map[int]bool

	Rounds []RoundRecord

	// pending holds failures reported for the round currently being
	// observed; ObserveRound folds them into the next RoundRecord.
	pending []ClientFailure
}

// RoundRecord is the retained view of one communication round.
type RoundRecord struct {
	Round       int
	Global      []float64   // pre-round global parameters (nil unless kept)
	LocalParams [][]float64 // per-client post-training parameters (nil unless kept)
	TrainLosses []float64   // per-client mean local training loss
	// Dropped lists the clients excluded from this round's aggregate
	// (fault-tolerant runs only; nil in fail-stop runs).
	Dropped []ClientFailure
}

// ObserveFailures implements FailureObserver: the per-round dropped-client
// set is retained alongside the surviving updates, so attack analyses know
// exactly which clients each aggregate was built from.
func (h *HistoryRecorder) ObserveFailures(round int, failures []ClientFailure) {
	h.pending = append([]ClientFailure(nil), failures...)
}

// ObserveRound implements RoundObserver.
func (h *HistoryRecorder) ObserveRound(round int, global []float64, updates []Update) {
	rec := RoundRecord{Round: round, TrainLosses: make([]float64, len(updates))}
	if len(h.pending) > 0 {
		rec.Dropped = h.pending
		h.pending = nil
	}
	keep := h.KeepParams && (len(h.OnlyRounds) == 0 || h.OnlyRounds[round])
	if keep {
		rec.Global = global
		rec.LocalParams = make([][]float64, len(updates))
	}
	for i, u := range updates {
		rec.TrainLosses[i] = u.TrainLoss
		if keep {
			p := make([]float64, len(u.Params))
			copy(p, u.Params)
			rec.LocalParams[i] = p
		}
	}
	h.Rounds = append(h.Rounds, rec)
}

// ClientLossSeries returns client i's training-loss trajectory across all
// observed rounds.
func (h *HistoryRecorder) ClientLossSeries(i int) []float64 {
	out := make([]float64, 0, len(h.Rounds))
	for _, r := range h.Rounds {
		if i < len(r.TrainLosses) {
			out = append(out, r.TrainLosses[i])
		}
	}
	return out
}

// KeptRounds returns the records that retained parameter vectors.
func (h *HistoryRecorder) KeptRounds() []RoundRecord {
	var out []RoundRecord
	for _, r := range h.Rounds {
		if r.LocalParams != nil {
			out = append(out, r)
		}
	}
	return out
}
