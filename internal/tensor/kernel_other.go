//go:build !amd64

package tensor

// hasFMAKernel reports whether a fused-multiply-add assembly micro-kernel
// is in use; only the amd64 build has one.
const hasFMAKernel = false

// microKernel computes the mr×nr tile into c (overwriting it) with the
// portable Go kernel.
func microKernel(c *[mr * nr]float64, a0, a1, a2, a3, bp []float64, kcb int) {
	microKernelGo(c, a0, a1, a2, a3, bp, kcb)
}

// axpyRow adds alpha·src into dst (equal lengths) with the portable loop.
func axpyRow(dst, src []float64, alpha float64) {
	axpyRowGo(dst, src, alpha)
}

// reluKernel rectifies with the portable loop.
func reluKernel(dst, x []float64) { reluGo(dst, x) }

// reluGateKernel gates gradients with the portable loop.
func reluGateKernel(dst, y, g []float64) { reluGateGo(dst, y, g) }
