//go:build !amd64 && !arm64

package tensor

// hasFMAKernel reports whether a fused-multiply-add assembly micro-kernel
// is in use; only the amd64 build has one.
const hasFMAKernel = false

// microKernel computes the mr×nr tile into c (overwriting it) with the
// portable Go kernel.
func microKernel(c *[mr * nr]float64, a0, a1, a2, a3, bp []float64, kcb int) {
	microKernelGo(c, a0, a1, a2, a3, bp, kcb)
}

// axpyRow adds alpha·src into dst (equal lengths) with the portable loop.
func axpyRow(dst, src []float64, alpha float64) {
	axpyRowGo(dst, src, alpha)
}

// reluKernel rectifies with the portable loop.
func reluKernel(dst, x []float64) { reluGo(dst, x) }

// reluGateKernel gates gradients with the portable loop.
func reluGateKernel(dst, y, g []float64) { reluGateGo(dst, y, g) }

// microKernel32 computes the mr32×nr32 tile into c (overwriting it) with
// the portable Go kernel.
func microKernel32(c *[mr32 * nr32]float32, a0, a1, a2, a3, a4, a5, bp []float32, kcb int) {
	microKernel32Go(c, a0, a1, a2, a3, a4, a5, bp, kcb)
}

// axpyRow32 adds alpha·src into dst (equal lengths) with the portable loop.
func axpyRow32(dst, src []float32, alpha float32) {
	axpyRow32Go(dst, src, alpha)
}

// relu32Kernel rectifies with the portable loop.
func relu32Kernel(dst, x []float32) { relu32Go(dst, x) }

// reluGate32Kernel gates gradients with the portable loop.
func reluGate32Kernel(dst, y, g []float32) { reluGate32Go(dst, y, g) }

// kernelFeatures lists the SIMD features the active micro-kernels use;
// none on the portable build.
func kernelFeatures() []string { return nil }
