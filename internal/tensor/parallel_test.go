package tensor

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// TestRowWorkers pins the worker math: small volumes and thin matrices stay
// serial, large ones clamp to min(GOMAXPROCS, rows).
func TestRowWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(16)
	defer runtime.GOMAXPROCS(prev)

	cases := []struct {
		name         string
		rows, volume int
		want         int
	}{
		{"below threshold", 256, parallelThreshold - 1, 1},
		{"at threshold", 256, parallelThreshold, 16},
		{"thin matrix stays serial", 2*mr - 1, 1 << 30, 1},
		{"clamped to rows", 9, 1 << 30, 9},
		{"big square", 4096, 1 << 30, 16},
	}
	for _, c := range cases {
		if got := rowWorkers(c.rows, c.volume); got != c.want {
			t.Errorf("%s: rowWorkers(%d, %d) = %d, want %d",
				c.name, c.rows, c.volume, got, c.want)
		}
	}

	runtime.GOMAXPROCS(1)
	if got := rowWorkers(4096, 1<<30); got != 1 {
		t.Errorf("GOMAXPROCS=1: rowWorkers = %d, want 1", got)
	}
}

// TestParallelRowsPartition checks that the chunks handed to fn tile
// [0, rows) exactly once, that every interior boundary is micro-kernel
// aligned (no mr-row tile straddles two workers), and that the chunk count
// never exceeds the worker cap.
func TestParallelRowsPartition(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	for _, rows := range []int{16, 70, 100, 257} {
		var mu sync.Mutex
		var chunks [][2]int
		parallelRows(rows, 1<<30, func(lo, hi int) {
			mu.Lock()
			chunks = append(chunks, [2]int{lo, hi})
			mu.Unlock()
		})
		sort.Slice(chunks, func(i, j int) bool { return chunks[i][0] < chunks[j][0] })
		next := 0
		for _, c := range chunks {
			if c[0] != next {
				t.Fatalf("rows=%d: chunk starts at %d, want %d (chunks %v)",
					rows, c[0], next, chunks)
			}
			if c[1] != rows && (c[1]-c[0])%mr != 0 {
				t.Fatalf("rows=%d: interior chunk %v not %d-row aligned", rows, c, mr)
			}
			next = c[1]
		}
		if next != rows {
			t.Fatalf("rows=%d: coverage ends at %d", rows, next)
		}
		if len(chunks) > 8 {
			t.Fatalf("rows=%d: %d chunks exceed the worker cap 8", rows, len(chunks))
		}
	}
}

// TestGEMMMatchesNaiveEdgeShapes drives the blocked kernel through shapes
// that stress every edge: partial mr/nr tiles, single rows and columns, and
// sizes straddling the kc/nc cache blocks and the parallel threshold. FMA
// fuses the multiply-add rounding step, so comparison uses a tolerance.
func TestGEMMMatchesNaiveEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33, 63, 65, 127, 129}
	for trial := 0; trial < 60; trial++ {
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		a, b := New(m, k), New(k, n)
		a.RandNormal(rng, 0, 1)
		b.RandNormal(rng, 0, 1)
		if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
			t.Fatalf("MatMul(%dx%d, %dx%d) diverges from naive reference", m, k, k, n)
		}
	}
	// Straddle the cache blocks (kcBlock=256, ncBlock=512).
	for _, s := range [][3]int{{4, 300, 520}, {70, 257, 64}, {130, 512, 9}} {
		a, b := New(s[0], s[1]), New(s[1], s[2])
		a.RandNormal(rng, 0, 1)
		b.RandNormal(rng, 0, 1)
		if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-8) {
			t.Fatalf("MatMul%v diverges from naive reference", s)
		}
	}
}

// TestMatMulTransBBiasIntoMatchesNaive checks the fused-bias epilogue the
// dense and conv layers use: dst = a·bᵀ + bias, row-broadcast.
func TestMatMulTransBBiasIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, s := range [][3]int{{1, 1, 1}, {5, 9, 3}, {33, 65, 17}, {70, 70, 70}} {
		m, k, n := s[0], s[1], s[2]
		a, bt := New(m, k), New(n, k)
		a.RandNormal(rng, 0, 1)
		bt.RandNormal(rng, 0, 1)
		bias := make([]float64, n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		want := naiveMatMul(a, Transpose(bt))
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want.Set(want.At(i, j)+bias[j], i, j)
			}
		}
		dst := GetTensor(m, n)
		MatMulTransBBiasInto(dst, a, bt, bias)
		if !Equal(dst, want, 1e-9) {
			t.Fatalf("MatMulTransBBiasInto(%dx%d · (%dx%d)ᵀ) diverges from reference",
				m, k, n, k)
		}
		PutTensor(dst)
	}
}
