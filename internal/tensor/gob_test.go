package tensor

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// TestGobRoundTrip: tensors must survive gob encoding unchanged — the
// transport layer and model artifacts depend on it.
func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(2, 3, 4)
	x.RandNormal(rng, 0, 1)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x); err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !Equal(x, &back, 0) {
		t.Fatal("gob round trip changed tensor contents")
	}
}

func TestGobEmptyTensor(t *testing.T) {
	x := New(0)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x); err != nil {
		t.Fatal(err)
	}
	var back Tensor
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Size() != 0 {
		t.Fatalf("empty tensor round trip size = %d", back.Size())
	}
}
