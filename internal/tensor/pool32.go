package tensor

import "sync"

// The float32 scratch arena mirrors pool.go exactly — same size classes
// (poolClass), same per-class retention bounds (classCap), same
// mutex-guarded GC-immune LIFO rationale, same caller invariants
// (DESIGN.md §9) — over float32 storage. A class's capacity is 2^class
// ELEMENTS, so the f32 arena's resident bytes are half the f64 arena's at
// the same fill. The shared pool counters (PoolStats, tensor_pool_*
// metrics) account Gets/misses/Puts from both arenas.

// classList32 is one size class's float32 freelist.
type classList32 struct {
	mu   sync.Mutex
	free []*Tensor32
}

var scratchPools32 [maxPoolClass + 1]classList32

// GetTensor32 returns a float32 tensor of the given shape backed by pooled
// storage. Contents are uninitialized. Pair every GetTensor32 with exactly
// one PutTensor32 once the buffer is dead.
func GetTensor32(shape ...int) *Tensor32 {
	n := shapeVolume(shape)
	c := poolClass(n)
	poolGets.inc()
	if c < 0 {
		poolMisses.inc()
		return &Tensor32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
	}
	p := &scratchPools32[c]
	p.mu.Lock()
	var t *Tensor32
	if last := len(p.free) - 1; last >= 0 {
		t = p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
	}
	p.mu.Unlock()
	if t == nil {
		poolMisses.inc()
		t = &Tensor32{Data: make([]float32, 1<<c)}
	}
	t.Data = t.Data[:cap(t.Data)][:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// PutTensor32 returns t's storage to the pool. t must have come from
// GetTensor32 and must not be used afterwards.
func PutTensor32(t *Tensor32) {
	if t == nil {
		return
	}
	c := poolClass(cap(t.Data))
	if c < 0 || cap(t.Data) != 1<<c {
		// Overflow allocation (or a foreign tensor): let the GC have it.
		return
	}
	p := &scratchPools32[c]
	p.mu.Lock()
	if len(p.free) < classCap(c) {
		p.free = append(p.free, t)
		p.mu.Unlock()
		poolPuts.inc()
		return
	}
	p.mu.Unlock()
}
