//go:build arm64

#include "textflag.h"

// func neonKernel6x16(a0, a1, a2, a3, a4, a5, bp, c *float32, kc int)
//
// Computes the 6×16 float32 micro-tile c[r][j] = Σ_p a{r}[p] * bp[p*16+j]
// for p in [0, kc), overwriting c. The twenty-four accumulators (V8..V31,
// four 4-lane registers per row) stay live across the whole k-loop; each
// iteration streams 16 packed B values (one 4-register VLD1) and
// broadcasts one A value per row through a GPR word load + VDUP, issuing
// 24 FMLAs = 192 single FLOPs. Six rows (rather than the f64-style four)
// keep enough independent accumulator chains in flight to cover FMLA
// latency, mirroring the amd64 6×16 kernel.
TEXT ·neonKernel6x16(SB), NOSPLIT, $0-72
	MOVD a0+0(FP), R0
	MOVD a1+8(FP), R1
	MOVD a2+16(FP), R2
	MOVD a3+24(FP), R3
	MOVD a4+32(FP), R4
	MOVD a5+40(FP), R5
	MOVD bp+48(FP), R12
	MOVD c+56(FP), R13
	MOVD kc+64(FP), R14

	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
	VEOR V18.B16, V18.B16, V18.B16
	VEOR V19.B16, V19.B16, V19.B16
	VEOR V20.B16, V20.B16, V20.B16
	VEOR V21.B16, V21.B16, V21.B16
	VEOR V22.B16, V22.B16, V22.B16
	VEOR V23.B16, V23.B16, V23.B16
	VEOR V24.B16, V24.B16, V24.B16
	VEOR V25.B16, V25.B16, V25.B16
	VEOR V26.B16, V26.B16, V26.B16
	VEOR V27.B16, V27.B16, V27.B16
	VEOR V28.B16, V28.B16, V28.B16
	VEOR V29.B16, V29.B16, V29.B16
	VEOR V30.B16, V30.B16, V30.B16
	VEOR V31.B16, V31.B16, V31.B16

loop:
	VLD1.P 64(R12), [V0.S4, V1.S4, V2.S4, V3.S4] // b[0:16]

	MOVWU.P 4(R0), R15                           // a0[p] bits
	VDUP    R15, V4.S4
	MOVWU.P 4(R1), R15                           // a1[p] bits
	VDUP    R15, V5.S4
	VFMLA   V0.S4, V4.S4, V8.S4
	VFMLA   V1.S4, V4.S4, V9.S4
	VFMLA   V2.S4, V4.S4, V10.S4
	VFMLA   V3.S4, V4.S4, V11.S4
	VFMLA   V0.S4, V5.S4, V12.S4
	VFMLA   V1.S4, V5.S4, V13.S4
	VFMLA   V2.S4, V5.S4, V14.S4
	VFMLA   V3.S4, V5.S4, V15.S4

	MOVWU.P 4(R2), R15                           // a2[p] bits
	VDUP    R15, V6.S4
	MOVWU.P 4(R3), R15                           // a3[p] bits
	VDUP    R15, V7.S4
	VFMLA   V0.S4, V6.S4, V16.S4
	VFMLA   V1.S4, V6.S4, V17.S4
	VFMLA   V2.S4, V6.S4, V18.S4
	VFMLA   V3.S4, V6.S4, V19.S4
	VFMLA   V0.S4, V7.S4, V20.S4
	VFMLA   V1.S4, V7.S4, V21.S4
	VFMLA   V2.S4, V7.S4, V22.S4
	VFMLA   V3.S4, V7.S4, V23.S4

	MOVWU.P 4(R4), R15                           // a4[p] bits
	VDUP    R15, V4.S4
	MOVWU.P 4(R5), R15                           // a5[p] bits
	VDUP    R15, V5.S4
	VFMLA   V0.S4, V4.S4, V24.S4
	VFMLA   V1.S4, V4.S4, V25.S4
	VFMLA   V2.S4, V4.S4, V26.S4
	VFMLA   V3.S4, V4.S4, V27.S4
	VFMLA   V0.S4, V5.S4, V28.S4
	VFMLA   V1.S4, V5.S4, V29.S4
	VFMLA   V2.S4, V5.S4, V30.S4
	VFMLA   V3.S4, V5.S4, V31.S4

	SUBS $1, R14
	BNE  loop

	VST1.P [V8.S4, V9.S4, V10.S4, V11.S4], 64(R13)
	VST1.P [V12.S4, V13.S4, V14.S4, V15.S4], 64(R13)
	VST1.P [V16.S4, V17.S4, V18.S4, V19.S4], 64(R13)
	VST1.P [V20.S4, V21.S4, V22.S4, V23.S4], 64(R13)
	VST1.P [V24.S4, V25.S4, V26.S4, V27.S4], 64(R13)
	VST1   [V28.S4, V29.S4, V30.S4, V31.S4], (R13)
	RET

// func neonAxpy32(dst, src *float32, alpha float32, n int)
//
// dst[i] += alpha * src[i] for i in [0, n); n must be a positive multiple
// of 4 (the Go dispatcher handles the scalar remainder).
TEXT ·neonAxpy32(SB), NOSPLIT, $0-32
	MOVD  dst+0(FP), R0
	MOVD  src+8(FP), R1
	MOVWU alpha+16(FP), R3
	VDUP  R3, V0.S4
	MOVD  n+24(FP), R2
	LSR   $2, R2, R2

axpylp:
	VLD1.P 16(R1), [V1.S4]
	VLD1   (R0), [V2.S4]
	VFMLA  V1.S4, V0.S4, V2.S4
	VST1.P [V2.S4], 16(R0)
	SUBS   $1, R2
	BNE    axpylp
	RET
