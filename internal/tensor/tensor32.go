package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor32 is the dense, row-major float32 sibling of Tensor — the storage
// type of the f32 compute tier (DESIGN.md §14). It deliberately carries
// only what the kernels, benches, and tests need: training code keeps
// float64 storage and reaches the f32 kernels through the precision
// policy, so Tensor32 is the tier's native surface rather than a parallel
// re-implementation of the whole tensor API.
type Tensor32 struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the flat row-major backing store; len(Data) == product(Shape).
	Data []float32
}

// New32 returns a zero-filled float32 tensor with the given shape.
func New32(shape ...int) *Tensor32 {
	n := shapeVolume(shape)
	return &Tensor32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice32 wraps data in a tensor with the given shape. The slice is
// used directly (not copied); its length must match the shape volume.
func FromSlice32(data []float32, shape ...int) *Tensor32 {
	t := &Tensor32{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)",
			len(data), shape, t.Size()))
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor32) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dims returns the number of dimensions.
func (t *Tensor32) Dims() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor32) Clone() *Tensor32 {
	c := New32(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero sets every element to 0.
func (t *Tensor32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor32) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor32) SameShape(o *Tensor32) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// RandNormal fills t with float32-rounded samples from N(mean, std²),
// drawn from the same generator sequence the float64 initializers use.
func (t *Tensor32) RandNormal(rng *rand.Rand, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(mean + rng.NormFloat64()*std)
	}
}

// Equal32 reports whether a and b have the same shape and elementwise
// values within tolerance tol.
func Equal32(a, b *Tensor32, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i])-float64(b.Data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor32) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor32%v%v…", t.Shape, t.Data[:n])
}
