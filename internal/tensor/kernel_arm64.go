//go:build arm64

package tensor

import "os"

// Advanced SIMD (NEON) is architecturally mandatory on AArch64 — every
// arm64 CPU Go targets has it, so "feature detection" is a build-time fact
// rather than a CPUID probe. hasNEONKernel exists anyway so the dispatch
// mirrors the amd64 structure and so CIP_NONEON=1 can force the portable
// kernels for A/B correctness and perf comparisons. It is read once at
// init and constant afterwards, keeping kernel dispatch — and therefore
// bit-reproducibility — fixed for the life of the process.
var hasNEONKernel = os.Getenv("CIP_NONEON") == ""

// hasFMAKernel reports whether the amd64 AVX2+FMA micro-kernel is in use;
// never on arm64.
const hasFMAKernel = false

// The float64 path stays portable on arm64 for now: NEON is only 2 lanes
// of float64 per register, so the win over the compiler's scalar FMADD
// code is far smaller than the f32 tier's (ROADMAP item 4 tracks an f64
// NEON kernel as follow-up). The f32 tier — what the precision policy
// selects for training — is where arm64 leaves the pure-Go path.

// microKernel computes the mr×nr tile into c (overwriting it) with the
// portable Go kernel.
func microKernel(c *[mr * nr]float64, a0, a1, a2, a3, bp []float64, kcb int) {
	microKernelGo(c, a0, a1, a2, a3, bp, kcb)
}

// axpyRow adds alpha·src into dst (equal lengths) with the portable loop.
func axpyRow(dst, src []float64, alpha float64) {
	axpyRowGo(dst, src, alpha)
}

// reluKernel rectifies with the portable loop.
func reluKernel(dst, x []float64) { reluGo(dst, x) }

// reluGateKernel gates gradients with the portable loop.
func reluGateKernel(dst, y, g []float64) { reluGateGo(dst, y, g) }

// microKernel32 computes the mr32×nr32 tile into c (overwriting it),
// dispatching to the NEON FMLA kernel. Like the amd64 FMA kernel, FMLA
// fuses the multiply-add rounding step, so results can differ from the
// portable kernel in the last ulp; dispatch is constant per process, so
// GEMM stays bit-for-bit deterministic across runs and worker counts.
func microKernel32(c *[mr32 * nr32]float32, a0, a1, a2, a3, a4, a5, bp []float32, kcb int) {
	if hasNEONKernel && kcb > 0 {
		neonKernel6x16(&a0[0], &a1[0], &a2[0], &a3[0], &a4[0], &a5[0], &bp[0], &c[0], kcb)
		return
	}
	microKernel32Go(c, a0, a1, a2, a3, a4, a5, bp, kcb)
}

// neonKernel6x16 accumulates c[6][16] = Σ_p a{r}[p] * bp[p*16+j] over p in
// [0, kc) with NEON FMLA, overwriting c. Implemented in kernel_arm64.s.
//
//go:noescape
func neonKernel6x16(a0, a1, a2, a3, a4, a5, bp, c *float32, kc int)

// neonAxpy32 computes dst[i] += alpha*src[i] for i in [0, n) with NEON
// FMLA; n must be a positive multiple of 4. Implemented in kernel_arm64.s.
//
//go:noescape
func neonAxpy32(dst, src *float32, alpha float32, n int)

// axpyRow32 adds alpha·src into dst (equal lengths), running the 4-lane
// NEON body and finishing any sub-vector remainder with the portable loop.
func axpyRow32(dst, src []float32, alpha float32) {
	if hasNEONKernel {
		if n4 := len(dst) &^ 3; n4 > 0 {
			neonAxpy32(&dst[0], &src[0], alpha, n4)
			dst, src = dst[n4:], src[n4:]
		}
	}
	axpyRow32Go(dst, src, alpha)
}

// relu32Kernel rectifies with the portable loop (the rectifier is memory-
// bound; the GEMM kernel is where NEON pays).
func relu32Kernel(dst, x []float32) { relu32Go(dst, x) }

// reluGate32Kernel gates gradients with the portable loop.
func reluGate32Kernel(dst, y, g []float32) { reluGate32Go(dst, y, g) }

// kernelFeatures lists the SIMD features the active micro-kernels use.
func kernelFeatures() []string {
	if hasNEONKernel {
		return []string{"neon"}
	}
	return nil
}
