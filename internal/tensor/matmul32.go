package tensor

import (
	"fmt"
	"time"
)

// The float32 compute tier's GEMM. It reuses the Goto/BLIS decomposition,
// cache-block sizes, and row-parallel fan-out of the float64 driver in
// matmul.go — only the element width and the micro-tile change:
//
//   - The micro-kernel is mr32×nr32 = 6×16: with 8 float32 lanes per AVX2
//     register (4 per NEON register) a 16-wide tile costs the same two
//     register loads per packed-B row as the float64 kernel's 8-wide tile,
//     while each FMA moves twice the FLOPs. The tile is 6 rows instead of
//     the f64 kernel's 4 because 8 accumulator registers sit exactly at
//     the FMA-latency × throughput product — the f64 kernel can't quite
//     keep both FMA ports busy, and a 4×16 f32 kernel inherits the same
//     stall, capping the tier below 2x. Twelve accumulators give the
//     scheduler slack, so the f32 kernel reaches the FMA-port bound.
//   - One generic driver serves two callers. The PURE path (MatMul32 and
//     friends) instantiates it with T = float32: f32 storage in, f32 out.
//     The MIXED path (the f64 entry points in matmul.go running under the
//     F32 precision policy) instantiates it with T = float64: operands are
//     narrowed once — A up front, B at pack time — the micro-kernel
//     accumulates one k-block in f32, and storeRow32 widens the partial
//     sums into the float64 destination, so accumulation ACROSS k-blocks
//     (and the bias epilogue) stays float64.
//   - A kcBlock×nr32 packed panel of float32 is 16 KiB — the same
//     footprint as the float64 panel — so the f64 cache-block tuning
//     carries over unchanged.
//
// Determinism matches the f64 driver: every output element is computed by
// exactly one worker with a fixed k-accumulation order, so results are
// bit-identical for any worker count (parallel32_test.go holds this for
// both instantiations).

// nr32 is the f32 micro-kernel width: two 8-lane AVX2 registers, or four
// 4-lane NEON registers. mr32 is the tile height; the f32 parallel
// fan-out aligns its chunks to mr32 (not the f64 mr) so row grouping —
// and therefore which rows run the assembly tile versus the scalar
// remainder — is identical at every worker count.
const (
	nr32 = 16
	mr32 = 6
)

// elem constrains the generic driver to the two storage widths.
type elem interface{ ~float32 | ~float64 }

// gemmShape32 carries one product's geometry through the f32 driver. T is
// the storage type of B, bias, and the destination; A is always narrowed
// to float32 before the driver runs.
type gemmShape32[T elem] struct {
	m, k, n int
	transB  bool // b is n×k instead of k×n
	bias    []T  // optional epilogue bias, length n
}

// MatMul32 returns a·b for 2-D float32 tensors a (m×k) and b (k×n).
func MatMul32(a, b *Tensor32) *Tensor32 {
	m, k, n := gemmDims32("MatMul32", a, b, false)
	out := New32(m, n)
	gemm32(out.Data, a.Data, b.Data, gemmShape32[float32]{m: m, k: k, n: n})
	return out
}

// MatMul32Into computes dst = a·b, reusing dst's storage (shape must be
// m×n). dst must not alias a or b. Returns dst.
func MatMul32Into(dst, a, b *Tensor32) *Tensor32 {
	m, k, n := gemmDims32("MatMul32Into", a, b, false)
	checkDst32("MatMul32Into", dst, m, n)
	gemm32(dst.Data, a.Data, b.Data, gemmShape32[float32]{m: m, k: k, n: n})
	return dst
}

// MatMulTransB32 returns a·bᵀ where a is m×k and b is n×k.
func MatMulTransB32(a, b *Tensor32) *Tensor32 {
	m, k, n := gemmDims32("MatMulTransB32", a, b, true)
	out := New32(m, n)
	gemm32(out.Data, a.Data, b.Data, gemmShape32[float32]{m: m, k: k, n: n, transB: true})
	return out
}

// MatMulBias32Into computes dst = a·b + bias (bias broadcast across rows,
// length n), fused into the GEMM epilogue. dst must not alias a or b.
func MatMulBias32Into(dst, a, b *Tensor32, bias []float32) *Tensor32 {
	m, k, n := gemmDims32("MatMulBias32Into", a, b, false)
	checkDst32("MatMulBias32Into", dst, m, n)
	if len(bias) != n {
		panic(fmt.Sprintf("tensor: MatMulBias32Into bias length %d, want %d", len(bias), n))
	}
	gemm32(dst.Data, a.Data, b.Data, gemmShape32[float32]{m: m, k: k, n: n, bias: bias})
	return dst
}

// gemmDims32 validates operand ranks/shapes and returns (m, k, n).
func gemmDims32(op string, a, b *Tensor32, transB bool) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-D operands, got %v and %v", op, a.Shape, b.Shape))
	}
	m, k = a.Shape[0], a.Shape[1]
	var kb int
	if transB {
		n, kb = b.Shape[0], b.Shape[1]
	} else {
		kb, n = b.Shape[0], b.Shape[1]
	}
	if kb != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v·%v", op, a.Shape, b.Shape))
	}
	return m, k, n
}

func checkDst32(op string, dst *Tensor32, m, n int) {
	if dst.Dims() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.Shape, m, n))
	}
}

// gemmMixed is the F32-policy entry for the float64-facing GEMMs: narrow A
// once into a pooled f32 buffer, then run the generic driver with float64
// B/bias/destination (B narrows at pack time, partial sums widen at store
// time). Called from matmul.go's gemm before its own timing starts; the
// generic driver records the GEMM metrics instead.
func gemmMixed(dst, a, b []float64, s gemmShape) {
	a32 := GetTensor32(s.m * s.k)
	NarrowSlice(a32.Data, a[:s.m*s.k])
	gemm32(dst, a32.Data, b, gemmShape32[float64]{m: s.m, k: s.k, n: s.n, transB: s.transB, bias: s.bias})
	PutTensor32(a32)
}

// gemm32 is the blocked driver: dst (m×n, fully overwritten) =
// widen(a32·op(narrow(b))) + bias, with the widening a no-op for
// T = float32.
func gemm32[T elem](dst []T, a32 []float32, b []T, s gemmShape32[T]) {
	if s.m == 0 || s.n == 0 {
		return
	}
	if s.k == 0 {
		fillBias32(dst, s)
		return
	}
	vol := s.m * s.n * s.k
	timed := vol >= gemmTimedVolume
	var start time.Time
	if timed {
		start = time.Now()
	}

	panelStride := kcBlock * nr32
	bpack := GetTensor32(panelStride * (ncBlock/nr32 + 1))
	serial := rowWorkers(s.m, vol) < 2
	for jc := 0; jc < s.n; jc += ncBlock {
		ncb := min(ncBlock, s.n-jc)
		for pc := 0; pc < s.k; pc += kcBlock {
			kcb := min(kcBlock, s.k-pc)
			packB32(bpack.Data, b, pc, jc, kcb, ncb, s)
			first := pc == 0
			if serial {
				// Direct call: a closure here would heap-allocate its
				// captured loop variables on every cache block.
				gemmRows32(dst, a32, bpack.Data, 0, s.m, pc, jc, kcb, ncb, s, first)
			} else {
				gemmRows32Parallel(dst, a32, bpack.Data, vol, pc, jc, kcb, ncb, s, first)
			}
		}
	}
	PutTensor32(bpack)

	if timed {
		recordGEMM(vol, time.Since(start))
	}
}

// fillBias32 handles the degenerate k == 0 product: dst = bias (or zero).
func fillBias32[T elem](dst []T, s gemmShape32[T]) {
	for i := 0; i < s.m; i++ {
		row := dst[i*s.n : (i+1)*s.n]
		if s.bias == nil {
			for j := range row {
				row[j] = 0
			}
		} else {
			copy(row, s.bias)
		}
	}
}

// packB32 packs the (kcb × ncb) block of op(b) at (pc, jc) into nr32-wide
// float32 column panels, narrowing each element as it lands (a no-op for
// float32 sources). Layout matches packB: panel jp holds columns
// [jc+jp*nr32, jc+jp*nr32+nr32) as kcb rows of nr32 contiguous values,
// zero-padded past ncb so the micro-kernel never sees a ragged panel.
func packB32[T elem](dst []float32, b []T, pc, jc, kcb, ncb int, s gemmShape32[T]) {
	panels := (ncb + nr32 - 1) / nr32
	b32, pure := any(b).([]float32)
	for jp := 0; jp < panels; jp++ {
		w := min(nr32, ncb-jp*nr32)
		po := jp * kcb * nr32
		if pure && !s.transB && w == nr32 {
			// Pure-f32 full-width panel: each packed row is a straight
			// 16-element copy of the source row, no narrowing loop.
			for p := 0; p < kcb; p++ {
				copy(dst[po+p*nr32:po+p*nr32+nr32], b32[(pc+p)*s.n+jc+jp*nr32:])
			}
			continue
		}
		if s.transB {
			// op(b) = bᵀ with b n×k: column jc+j of op(b) is row jc+j of b.
			for j := 0; j < w; j++ {
				src := b[(jc+jp*nr32+j)*s.k+pc : (jc+jp*nr32+j)*s.k+pc+kcb]
				for p, v := range src {
					dst[po+p*nr32+j] = float32(v)
				}
			}
			if w < nr32 {
				for p := 0; p < kcb; p++ {
					for j := w; j < nr32; j++ {
						dst[po+p*nr32+j] = 0
					}
				}
			}
			continue
		}
		for p := 0; p < kcb; p++ {
			src := b[(pc+p)*s.n+jc+jp*nr32:]
			d := dst[po+p*nr32 : po+p*nr32+nr32]
			for j := 0; j < w; j++ {
				d[j] = float32(src[j])
			}
			for j := w; j < nr32; j++ {
				d[j] = 0
			}
		}
	}
}

// gemmRows32Parallel fans one cache block's row range out over
// parallelRows; a separate function for the same closure-allocation reason
// as gemmRowsParallel.
func gemmRows32Parallel[T elem](dst []T, a32, bpack []float32, vol, pc, jc, kcb, ncb int, s gemmShape32[T], first bool) {
	parallelRowsAligned(s.m, vol, mr32, func(lo, hi int) {
		gemmRows32(dst, a32, bpack, lo, hi, pc, jc, kcb, ncb, s, first)
	})
}

// gemmRows32 computes rows [i0, i1) of dst against the packed B block.
// first marks the k-block that overwrites dst (folding in the bias); later
// k-blocks accumulate — in dst's own precision, so the mixed path sums its
// f32 k-block partials in float64.
func gemmRows32[T elem](dst []T, a32, bpack []float32, i0, i1, pc, jc, kcb, ncb int, s gemmShape32[T], first bool) {
	panels := (ncb + nr32 - 1) / nr32
	var ctile [mr32 * nr32]float32
	i := i0
	for ; i+mr32 <= i1; i += mr32 {
		a0 := a32[(i+0)*s.k+pc : (i+0)*s.k+pc+kcb]
		a1 := a32[(i+1)*s.k+pc : (i+1)*s.k+pc+kcb]
		a2 := a32[(i+2)*s.k+pc : (i+2)*s.k+pc+kcb]
		a3 := a32[(i+3)*s.k+pc : (i+3)*s.k+pc+kcb]
		a4 := a32[(i+4)*s.k+pc : (i+4)*s.k+pc+kcb]
		a5 := a32[(i+5)*s.k+pc : (i+5)*s.k+pc+kcb]
		for jp := 0; jp < panels; jp++ {
			bp := bpack[jp*kcb*nr32 : (jp+1)*kcb*nr32]
			microKernel32(&ctile, a0, a1, a2, a3, a4, a5, bp, kcb)
			j := jc + jp*nr32
			w := min(nr32, ncb-jp*nr32)
			for r := 0; r < mr32; r++ {
				storeRow32(dst[(i+r)*s.n+j:], ctile[r*nr32:(r+1)*nr32], w, j, first, s.bias)
			}
		}
	}
	// Row remainder (1..mr32-1 rows): run the full 6-row kernel with the
	// missing row slices aliased to the last valid row — the kernel only
	// reads A and keeps one independent accumulator chain per row, so the
	// valid rows' results are bit-identical to a full tile's — then store
	// just the valid rows. This keeps the remainder on the assembly kernel
	// instead of a scalar loop (at m=256, mr32=6 leaves 4 remainder rows;
	// scalar ones cost more than the other 252 combined saved).
	if rem := i1 - i; rem > 0 {
		var rows [mr32][]float32
		for r := 0; r < mr32; r++ {
			ri := min(i+r, i1-1)
			rows[r] = a32[ri*s.k+pc : ri*s.k+pc+kcb]
		}
		for jp := 0; jp < panels; jp++ {
			bp := bpack[jp*kcb*nr32 : (jp+1)*kcb*nr32]
			microKernel32(&ctile, rows[0], rows[1], rows[2], rows[3], rows[4], rows[5], bp, kcb)
			j := jc + jp*nr32
			w := min(nr32, ncb-jp*nr32)
			for r := 0; r < rem; r++ {
				storeRow32(dst[(i+r)*s.n+j:], ctile[r*nr32:(r+1)*nr32], w, j, first, s.bias)
			}
		}
	}
}

// storeRow32 writes w computed lanes into dst, widening each f32 partial
// sum to dst's precision, either overwriting (+bias) on the first k-block
// or accumulating on later ones.
func storeRow32[T elem](dst []T, c []float32, w, j int, first bool, bias []T) {
	if first {
		if bias == nil {
			// Pure-f32 overwrite is a straight copy (the widening T(·) is
			// the identity); the common single-k-block product never takes
			// the accumulate branch at all.
			if d32, pure := any(dst).([]float32); pure {
				copy(d32[:w], c[:w])
				return
			}
		}
		if bias != nil {
			for x := 0; x < w; x++ {
				dst[x] = T(c[x]) + bias[j+x]
			}
			return
		}
		for x := 0; x < w; x++ {
			dst[x] = T(c[x])
		}
		return
	}
	for x := 0; x < w; x++ {
		dst[x] += T(c[x])
	}
}

// microKernel32Go is the portable mr32×nr32 tile. Unlike the float64
// kernel it keeps the accumulators in a stack array rather than named
// scalars; it is the fallback for CPUs without the assembly kernels, not a
// path the supported architectures hit.
func microKernel32Go(c *[mr32 * nr32]float32, a0, a1, a2, a3, a4, a5, bp []float32, kcb int) {
	var acc [mr32 * nr32]float32
	for p := 0; p < kcb; p++ {
		b := bp[p*nr32 : p*nr32+nr32 : p*nr32+nr32]
		a := [mr32]float32{a0[p], a1[p], a2[p], a3[p], a4[p], a5[p]}
		for r := 0; r < mr32; r++ {
			av := a[r]
			cr := acc[r*nr32 : (r+1)*nr32]
			for x, bv := range b {
				cr[x] += av * bv
			}
		}
	}
	*c = acc
}

// transADirect32 is the F32-policy version of transADirect: both operands
// narrow once into pooled f32 buffers, the rank-1 updates accumulate in
// f32 through axpyRow32, and the finished product widens into the float64
// destination. Serial by construction, like its f64 sibling.
func transADirect32(dst, a, b []float64, m, k, n int) {
	vol := m * k * n
	timed := vol >= gemmTimedVolume
	var start time.Time
	if timed {
		start = time.Now()
	}
	a32 := GetTensor32(k * m)
	b32 := GetTensor32(k * n)
	d32 := GetTensor32(m * n)
	NarrowSlice(a32.Data, a[:k*m])
	NarrowSlice(b32.Data, b[:k*n])
	for i := range d32.Data[:m*n] {
		d32.Data[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a32.Data[p*m : (p+1)*m]
		brow := b32.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			axpyRow32(d32.Data[i*n:(i+1)*n], brow, av)
		}
	}
	WidenSlice(dst[:m*n], d32.Data[:m*n])
	PutTensor32(d32)
	PutTensor32(b32)
	PutTensor32(a32)
	if timed {
		recordGEMM(vol, time.Since(start))
	}
}

// axpyRow32Go is the portable dst += alpha·src loop behind axpyRow32.
func axpyRow32Go(dst, src []float32, alpha float32) {
	for j, v := range src[:len(dst)] {
		dst[j] += alpha * v
	}
}
