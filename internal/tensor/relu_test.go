package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestReluIntoMatchesScalar pins the AVX2 rectifier (and its sub-vector
// remainder handling) to the scalar definition, including NaN and signed
// zero: both gate to +0.
func TestReluIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 4, 5, 8, 31, 64, 1000, 1027} {
		x := New(n)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		if n >= 4 {
			x.Data[0] = math.NaN()
			x.Data[1] = math.Copysign(0, -1)
			x.Data[2] = 0
			x.Data[3] = math.Inf(1)
		}
		got := ReluInto(New(n), x)
		for i, v := range x.Data {
			want := 0.0
			if v > 0 {
				want = v
			}
			g := got.Data[i]
			if g != want || math.Signbit(g) {
				t.Fatalf("n=%d: ReluInto(%g)[%d] = %g, want %g", n, v, i, g, want)
			}
		}
	}
}

// TestReluGateIntoMatchesScalar pins the backward gate kernel: gradient
// lanes pass exactly where y > 0 and zero elsewhere (NaN y gates closed).
func TestReluGateIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 4, 7, 32, 999} {
		y, g := New(n), New(n)
		for i := range y.Data {
			y.Data[i] = rng.NormFloat64()
			g.Data[i] = rng.NormFloat64()
		}
		if n >= 2 {
			y.Data[0] = math.NaN()
			y.Data[1] = 0
		}
		got := ReluGateInto(New(n), y, g)
		for i := range y.Data {
			want := 0.0
			if y.Data[i] > 0 {
				want = g.Data[i]
			}
			if got.Data[i] != want {
				t.Fatalf("n=%d: gate[%d] = %g, want %g (y=%g g=%g)",
					n, i, got.Data[i], want, y.Data[i], g.Data[i])
			}
		}
	}
}
