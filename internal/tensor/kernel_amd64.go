//go:build amd64

package tensor

// The AVX2 micro-kernel needs FMA3, AVX2, and OS support for saving YMM
// state. Detection runs once at init; hasFMAKernel is read-only afterwards.
var hasFMAKernel = detectFMAKernel()

func detectFMAKernel() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set: the OS saves YMM
	// registers across context switches.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// microKernel computes the mr×nr tile into c (overwriting it), dispatching
// to the AVX2+FMA assembly kernel when the CPU supports it.
//
// The FMA kernel rounds once per multiply-add, so its results can differ
// from the portable kernel in the last ulp; callers comparing against a
// scalar reference must use a tolerance (see the GEMM property tests).
// Within one process the dispatch is constant, so GEMM stays bit-for-bit
// deterministic across runs and across worker counts.
func microKernel(c *[mr * nr]float64, a0, a1, a2, a3, bp []float64, kcb int) {
	if hasFMAKernel && kcb > 0 {
		fmaKernel4x8(&a0[0], &a1[0], &a2[0], &a3[0], &bp[0], &c[0], kcb)
		return
	}
	microKernelGo(c, a0, a1, a2, a3, bp, kcb)
}

// fmaKernel4x8 accumulates c[4][8] = Σ_p a{r}[p] * bp[p*8+j] over p in
// [0, kc) with AVX2 FMA, overwriting c. Implemented in kernel_amd64.s.
//
//go:noescape
func fmaKernel4x8(a0, a1, a2, a3, bp, c *float64, kc int)

// fmaAxpy computes dst[i] += alpha*src[i] for i in [0, n) with AVX2 FMA.
// Implemented in kernel_amd64.s.
//
//go:noescape
func fmaAxpy(dst, src *float64, alpha float64, n int)

// axpyRow adds alpha·src into dst (equal lengths), dispatching to the FMA
// kernel when the CPU supports it. Like microKernel, the FMA path rounds
// once per multiply-add, so it can differ from the portable loop in the
// last ulp.
func axpyRow(dst, src []float64, alpha float64) {
	if hasFMAKernel && len(dst) > 0 {
		fmaAxpy(&dst[0], &src[0], alpha, len(dst))
		return
	}
	axpyRowGo(dst, src, alpha)
}

// avxRelu computes dst[i] = max(src[i], 0) for i in [0, n), n a multiple
// of 4. Implemented in kernel_amd64.s.
//
//go:noescape
func avxRelu(dst, src *float64, n int)

// avxReluGate computes dst[i] = g[i] masked by y[i] > 0 for i in [0, n),
// n a multiple of 4. Implemented in kernel_amd64.s.
//
//go:noescape
func avxReluGate(dst, y, grad *float64, n int)

// reluKernel rectifies with the AVX2 kernel, finishing any sub-vector
// remainder with the portable loop.
func reluKernel(dst, x []float64) {
	if hasFMAKernel {
		if n4 := len(x) &^ 3; n4 > 0 {
			avxRelu(&dst[0], &x[0], n4)
			dst, x = dst[n4:], x[n4:]
		}
	}
	reluGo(dst, x)
}

// reluGateKernel gates gradients with the AVX2 kernel, finishing any
// sub-vector remainder with the portable loop.
func reluGateKernel(dst, y, g []float64) {
	if hasFMAKernel {
		if n4 := len(y) &^ 3; n4 > 0 {
			avxReluGate(&dst[0], &y[0], &g[0], n4)
			dst, y, g = dst[n4:], y[n4:], g[n4:]
		}
	}
	reluGateGo(dst, y, g)
}

// --- float32 tier ---------------------------------------------------------
//
// The f32 kernels gate on the same AVX2+FMA+OSXSAVE detection as the f64
// ones: every instruction they add (VFMADD231PS, VBROADCASTSS, VMAXPS,
// VCMPPS) is part of the same feature envelope.

// microKernel32 computes the mr32×nr32 tile into c (overwriting it),
// dispatching to the widened 8-lane-per-register AVX2+FMA kernel when the
// CPU supports it. Same rounding caveat as microKernel: FMA fuses the
// multiply-add, so results differ from the portable kernel in the last
// ulp but stay bit-identical within one process.
func microKernel32(c *[mr32 * nr32]float32, a0, a1, a2, a3, a4, a5, bp []float32, kcb int) {
	if hasFMAKernel && kcb > 0 {
		fmaKernel6x16(&a0[0], &a1[0], &a2[0], &a3[0], &a4[0], &a5[0], &bp[0], &c[0], kcb)
		return
	}
	microKernel32Go(c, a0, a1, a2, a3, a4, a5, bp, kcb)
}

// fmaKernel6x16 accumulates c[6][16] = Σ_p a{r}[p] * bp[p*16+j] over p in
// [0, kc) with AVX2 FMA, overwriting c. Implemented in kernel_amd64.s.
//
//go:noescape
func fmaKernel6x16(a0, a1, a2, a3, a4, a5, bp, c *float32, kc int)

// fmaAxpy32 computes dst[i] += alpha*src[i] for i in [0, n) with AVX2 FMA.
// Implemented in kernel_amd64.s.
//
//go:noescape
func fmaAxpy32(dst, src *float32, alpha float32, n int)

// axpyRow32 adds alpha·src into dst (equal lengths), dispatching to the
// f32 FMA kernel when the CPU supports it.
func axpyRow32(dst, src []float32, alpha float32) {
	if hasFMAKernel && len(dst) > 0 {
		fmaAxpy32(&dst[0], &src[0], alpha, len(dst))
		return
	}
	axpyRow32Go(dst, src, alpha)
}

// avxRelu32 computes dst[i] = max(src[i], 0) for i in [0, n), n a multiple
// of 8. Implemented in kernel_amd64.s.
//
//go:noescape
func avxRelu32(dst, src *float32, n int)

// avxReluGate32 computes dst[i] = g[i] masked by y[i] > 0 for i in [0, n),
// n a multiple of 8. Implemented in kernel_amd64.s.
//
//go:noescape
func avxReluGate32(dst, y, grad *float32, n int)

// relu32Kernel rectifies with the AVX2 kernel, finishing any sub-vector
// remainder with the portable loop.
func relu32Kernel(dst, x []float32) {
	if hasFMAKernel {
		if n8 := len(x) &^ 7; n8 > 0 {
			avxRelu32(&dst[0], &x[0], n8)
			dst, x = dst[n8:], x[n8:]
		}
	}
	relu32Go(dst, x)
}

// reluGate32Kernel gates gradients with the AVX2 kernel, finishing any
// sub-vector remainder with the portable loop.
func reluGate32Kernel(dst, y, g []float32) {
	if hasFMAKernel {
		if n8 := len(y) &^ 7; n8 > 0 {
			avxReluGate32(&dst[0], &y[0], &g[0], n8)
			dst, y, g = dst[n8:], y[n8:], g[n8:]
		}
	}
	reluGate32Go(dst, y, g)
}

// kernelFeatures lists the SIMD features the active micro-kernels use.
func kernelFeatures() []string {
	if hasFMAKernel {
		return []string{"avx2", "fma"}
	}
	return nil
}

// cpuidex executes CPUID with the given leaf/subleaf.
//
//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE, checked by the caller).
//
//go:noescape
func xgetbv0() (eax, edx uint32)
