//go:build amd64

package tensor

// The AVX2 micro-kernel needs FMA3, AVX2, and OS support for saving YMM
// state. Detection runs once at init; hasFMAKernel is read-only afterwards.
var hasFMAKernel = detectFMAKernel()

func detectFMAKernel() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set: the OS saves YMM
	// registers across context switches.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// microKernel computes the mr×nr tile into c (overwriting it), dispatching
// to the AVX2+FMA assembly kernel when the CPU supports it.
//
// The FMA kernel rounds once per multiply-add, so its results can differ
// from the portable kernel in the last ulp; callers comparing against a
// scalar reference must use a tolerance (see the GEMM property tests).
// Within one process the dispatch is constant, so GEMM stays bit-for-bit
// deterministic across runs and across worker counts.
func microKernel(c *[mr * nr]float64, a0, a1, a2, a3, bp []float64, kcb int) {
	if hasFMAKernel && kcb > 0 {
		fmaKernel4x8(&a0[0], &a1[0], &a2[0], &a3[0], &bp[0], &c[0], kcb)
		return
	}
	microKernelGo(c, a0, a1, a2, a3, bp, kcb)
}

// fmaKernel4x8 accumulates c[4][8] = Σ_p a{r}[p] * bp[p*8+j] over p in
// [0, kc) with AVX2 FMA, overwriting c. Implemented in kernel_amd64.s.
//
//go:noescape
func fmaKernel4x8(a0, a1, a2, a3, bp, c *float64, kc int)

// fmaAxpy computes dst[i] += alpha*src[i] for i in [0, n) with AVX2 FMA.
// Implemented in kernel_amd64.s.
//
//go:noescape
func fmaAxpy(dst, src *float64, alpha float64, n int)

// axpyRow adds alpha·src into dst (equal lengths), dispatching to the FMA
// kernel when the CPU supports it. Like microKernel, the FMA path rounds
// once per multiply-add, so it can differ from the portable loop in the
// last ulp.
func axpyRow(dst, src []float64, alpha float64) {
	if hasFMAKernel && len(dst) > 0 {
		fmaAxpy(&dst[0], &src[0], alpha, len(dst))
		return
	}
	axpyRowGo(dst, src, alpha)
}

// avxRelu computes dst[i] = max(src[i], 0) for i in [0, n), n a multiple
// of 4. Implemented in kernel_amd64.s.
//
//go:noescape
func avxRelu(dst, src *float64, n int)

// avxReluGate computes dst[i] = g[i] masked by y[i] > 0 for i in [0, n),
// n a multiple of 4. Implemented in kernel_amd64.s.
//
//go:noescape
func avxReluGate(dst, y, grad *float64, n int)

// reluKernel rectifies with the AVX2 kernel, finishing any sub-vector
// remainder with the portable loop.
func reluKernel(dst, x []float64) {
	if hasFMAKernel {
		if n4 := len(x) &^ 3; n4 > 0 {
			avxRelu(&dst[0], &x[0], n4)
			dst, x = dst[n4:], x[n4:]
		}
	}
	reluGo(dst, x)
}

// reluGateKernel gates gradients with the AVX2 kernel, finishing any
// sub-vector remainder with the portable loop.
func reluGateKernel(dst, y, g []float64) {
	if hasFMAKernel {
		if n4 := len(y) &^ 3; n4 > 0 {
			avxReluGate(&dst[0], &y[0], &g[0], n4)
			dst, y, g = dst[n4:], y[n4:], g[n4:]
		}
	}
	reluGateGo(dst, y, g)
}

// cpuidex executes CPUID with the given leaf/subleaf.
//
//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE, checked by the caller).
//
//go:noescape
func xgetbv0() (eax, edx uint32)
