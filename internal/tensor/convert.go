package tensor

import "fmt"

// Precision interchange helpers. The FL boundary (updates, checkpoints,
// the wire codec) is float64 by contract; these are the only conversions
// the f32 compute tier performs, and they follow IEEE-754 semantics
// exactly as Go's conversions define them:
//
//   - NaN narrows to NaN and widens to NaN (payload not preserved), so a
//     poisoned update still trips ValidateUpdate after a round-trip.
//   - ±Inf narrows to ±Inf; finite float64 values beyond ±MaxFloat32
//     overflow to ±Inf, which ValidateUpdate also rejects — narrowing can
//     surface invalid updates, never hide them.
//   - float64 values below the float32 subnormal range flush toward zero;
//     float32 subnormals widen exactly. Both directions keep finiteness.
//
// internal/fl's FuzzNarrowWidenValidate holds these properties.

// NarrowSlice writes float32(src[i]) into dst. Lengths must match.
func NarrowSlice(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: NarrowSlice length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// WidenSlice writes float64(src[i]) into dst. Lengths must match.
func WidenSlice(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: WidenSlice length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Narrow returns a fresh float32 copy of src.
func Narrow(src []float64) []float32 {
	dst := make([]float32, len(src))
	NarrowSlice(dst, src)
	return dst
}

// Widen returns a fresh float64 copy of src.
func Widen(src []float32) []float64 {
	dst := make([]float64, len(src))
	WidenSlice(dst, src)
	return dst
}

// NarrowTensor returns a Tensor32 copy of t.
func NarrowTensor(t *Tensor) *Tensor32 {
	out := New32(t.Shape...)
	NarrowSlice(out.Data, t.Data)
	return out
}

// WidenTensor returns a float64 Tensor copy of t.
func WidenTensor(t *Tensor32) *Tensor {
	out := New(t.Shape...)
	WidenSlice(out.Data, t.Data)
	return out
}
