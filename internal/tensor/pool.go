package tensor

import (
	"math/bits"
	"sync"
)

// The scratch arena hands out pooled tensors for transient buffers on the
// training hot path (im2col columns, GEMM products, packed panels,
// transposes) so conv forward/backward stop allocating per batch.
//
// Buffers are binned by power-of-two capacity; GetTensor returns a tensor
// whose backing slice comes from the smallest class that fits, and
// PutTensor returns it. The *Tensor header itself is pooled along with its
// storage, so a hit performs zero heap allocations.
//
// Each class is a small mutex-guarded LIFO rather than a sync.Pool:
// training allocates large escaping activations every step, so the GC runs
// constantly and would flush a sync.Pool right when the next minibatch
// wants its buffers back. The freelist is GC-immune and bounded (see
// classCap), so resident scratch memory is proportional to the peak number
// of concurrently live buffers, exactly like any arena.
//
// Invariants callers must keep (DESIGN.md §9):
//   - A pooled tensor's contents are UNINITIALIZED; call Zero if needed.
//   - After PutTensor the tensor (and anything aliasing its Data, e.g. a
//     Reshape view) must not be touched — the storage will be handed to an
//     arbitrary other goroutine.
//   - Never PutTensor a tensor that escapes to a caller (returned values,
//     layer caches that outlive the call).

// maxPoolClass bounds pooled buffers to 2^maxPoolClass float64s (64 MiB);
// larger requests fall through to plain allocation.
const maxPoolClass = 23

// classList is one size class's freelist.
type classList struct {
	mu   sync.Mutex
	free []*Tensor
}

var scratchPools [maxPoolClass + 1]classList

// classCap bounds how many idle buffers a class retains: small classes keep
// more (they're cheap and heavily cycled), big ones at most two so the
// arena can never pin more than a few hundred MiB even if every class
// saturates.
func classCap(c int) int {
	if c <= 17 { // ≤ 1 MiB buffers
		return 16
	}
	return 2
}

// poolClass returns the smallest class whose capacity 2^class holds n, or
// -1 when n is too large to pool.
func poolClass(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c > maxPoolClass {
		return -1
	}
	return c
}

// GetTensor returns a tensor of the given shape backed by pooled storage.
// Contents are uninitialized. Pair every GetTensor with exactly one
// PutTensor once the buffer is dead.
func GetTensor(shape ...int) *Tensor {
	n := shapeVolume(shape)
	c := poolClass(n)
	poolGets.inc()
	if c < 0 {
		poolMisses.inc()
		return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
	}
	p := &scratchPools[c]
	p.mu.Lock()
	var t *Tensor
	if last := len(p.free) - 1; last >= 0 {
		t = p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
	}
	p.mu.Unlock()
	if t == nil {
		poolMisses.inc()
		t = &Tensor{Data: make([]float64, 1<<c)}
	}
	t.Data = t.Data[:cap(t.Data)][:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// PutTensor returns t's storage to the pool. t must have come from
// GetTensor and must not be used afterwards.
func PutTensor(t *Tensor) {
	if t == nil {
		return
	}
	c := poolClass(cap(t.Data))
	if c < 0 || cap(t.Data) != 1<<c {
		// Overflow allocation (or a foreign tensor): let the GC have it.
		return
	}
	p := &scratchPools[c]
	p.mu.Lock()
	if len(p.free) < classCap(c) {
		p.free = append(p.free, t)
		p.mu.Unlock()
		poolPuts.inc()
		return
	}
	p.mu.Unlock()
}
