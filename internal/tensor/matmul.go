package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the matrix volume (rows*cols*inner) above which
// MatMul fans out across goroutines. Below it the goroutine overhead
// outweighs the parallel speedup.
const parallelThreshold = 64 * 64 * 64

// MatMul returns a·b for 2-D tensors a (m×k) and b (k×n).
// Large products are computed in parallel across row blocks.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v·%v", a.Shape, b.Shape))
	}
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulTransA returns aᵀ·b where a is k×m and b is k×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA needs 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v·%v", a.Shape, b.Shape))
	}
	n := b.Shape[1]
	// Transpose a once; the row-major kernel is much more cache friendly
	// than striding through a column-wise.
	at := Transpose(a)
	out := New(m, n)
	matmulInto(out.Data, at.Data, b.Data, m, k, n)
	return out
}

// MatMulTransB returns a·bᵀ where a is m×k and b is n×k.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB needs 2-D operands, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v·%v", a.Shape, b.Shape))
	}
	out := New(m, n)
	parallelRows(m, m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				br := b.Data[j*k : (j+1)*k]
				s := 0.0
				for p := 0; p < k; p++ {
					s += ar[p] * br[p]
				}
				out.Data[i*n+j] = s
			}
		}
	})
	return out
}

// matmulInto computes out = a·b with a m×k, b k×n, all row-major flat
// slices, using an ikj loop order (streaming writes over out rows).
func matmulInto(out, a, b []float64, m, k, n int) {
	parallelRows(m, m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a[i*k+p]
				if av == 0 {
					continue
				}
				br := b[p*n : (p+1)*n]
				for j, bv := range br {
					or[j] += av * bv
				}
			}
		}
	})
}

// parallelRows splits [0, rows) into contiguous chunks and runs fn on each,
// in parallel when volume exceeds parallelThreshold.
func parallelRows(rows, volume int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if volume < parallelThreshold || workers < 2 || rows < 2 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D operand, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// MatVec returns a·x for a 2-D a (m×n) and a flat x of length n.
func MatVec(a, x *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVec needs a 2-D matrix, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	if x.Size() != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v·%v", a.Shape, x.Shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}
