package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// The GEMM in this file follows the classic Goto/BLIS decomposition at a
// scale tuned for this repo's model sizes (k of tens to hundreds, n from a
// handful of conv channels up to a few thousand dense units):
//
//   - B is packed one (kcBlock × ncBlock) block at a time into nr-wide
//     column panels so the micro-kernel streams it contiguously. The final
//     panel is zero-padded, which keeps the kernel free of column edge
//     cases; padded lanes are masked at store time.
//   - The micro-kernel computes an mr×nr tile of C with all accumulators in
//     registers. On amd64 with AVX2+FMA it is the 4×8 assembly kernel in
//     kernel_amd64.s; everywhere else (and for row remainders) the pure-Go
//     kernels below run.
//   - Rows are split across a bounded worker pool per (kc, nc) block. Every
//     output element is computed by exactly one worker with a fixed
//     k-accumulation order, so results are bit-identical for any worker
//     count — the property the federation determinism tests rely on.
//
// Transposed operands never materialize a transposed copy on the heap:
// MatMulTransA packs Aᵀ into a pooled scratch buffer and MatMulTransB packs
// B's rows directly into column panels.
const (
	mr = 4 // micro-kernel rows
	nr = 8 // micro-kernel cols (one AVX2 register pair of float64)

	// kcBlock × nr panel ≈ 16 KiB: two panels plus the A rows stay L1/L2
	// resident. ncBlock bounds the packed block to kcBlock×ncBlock ≈ 1 MiB.
	kcBlock = 256
	ncBlock = 512
)

// parallelThreshold is the matrix volume (rows*cols*inner) above which
// GEMM and the im2col kernels fan out across goroutines. Below it the
// goroutine overhead outweighs the parallel speedup.
const parallelThreshold = 64 * 64 * 64

// MatMul returns a·b for 2-D tensors a (m×k) and b (k×n).
// Large products are computed in parallel across row blocks.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := gemmDims("MatMul", a, b, false, false)
	out := New(m, n)
	gemm(out.Data, a.Data, b.Data, gemmShape{m: m, k: a.Shape[1], n: n})
	return out
}

// MatMulInto computes dst = a·b, reusing dst's storage (shape must be m×n).
// dst must not alias a or b. Returns dst.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, _, n := gemmDims("MatMulInto", a, b, false, false)
	checkDst("MatMulInto", dst, m, n)
	gemm(dst.Data, a.Data, b.Data, gemmShape{m: m, k: a.Shape[1], n: n})
	return dst
}

// MatMulBiasInto computes dst = a·b + bias (bias broadcast across rows,
// length n), fused into the GEMM epilogue. dst must not alias a or b.
func MatMulBiasInto(dst, a, b *Tensor, bias []float64) *Tensor {
	m, _, n := gemmDims("MatMulBiasInto", a, b, false, false)
	checkDst("MatMulBiasInto", dst, m, n)
	checkBias("MatMulBiasInto", bias, n)
	gemm(dst.Data, a.Data, b.Data, gemmShape{m: m, k: a.Shape[1], n: n, bias: bias})
	return dst
}

// MatMulTransA returns aᵀ·b where a is k×m and b is k×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, _, n := gemmDims("MatMulTransA", a, b, true, false)
	out := New(m, n)
	MatMulTransAInto(out, a, b)
	return out
}

// transADirectMaxM is the output-height ceiling for the direct aᵀ·b path.
// The weight-gradient products (dW = gradᵀ·cols) have m = channels or
// classes but k = batch·positions, so the blocked kernel spends more time
// packing B (k·n panel writes) than on the m·n·k arithmetic; below this m
// the whole dst stays cache-resident and rank-1 accumulation wins.
const transADirectMaxM = 32

// MatMulTransAInto computes dst = aᵀ·b where a is k×m and b is k×n, without
// allocating. Small m takes the direct rank-1 path; otherwise Aᵀ is staged
// through a pooled scratch buffer into the blocked kernel. dst must not
// alias a or b. Returns dst.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	m, k, n := gemmDims("MatMulTransAInto", a, b, true, false)
	checkDst("MatMulTransAInto", dst, m, n)
	if m <= transADirectMaxM {
		transADirect(dst.Data, a.Data, b.Data, m, k, n)
		return dst
	}
	// The row-major kernel wants A's rows contiguous; transpose into a
	// pooled buffer instead of striding through a column-wise (or
	// allocating a fresh transpose per call, as the pre-pool code did).
	at := GetTensor(m, k)
	TransposeInto(at, a)
	gemm(dst.Data, at.Data, b.Data, gemmShape{m: m, k: k, n: n})
	PutTensor(at)
	return dst
}

// transADirect accumulates dst = aᵀ·b (a k×m, b k×n) one rank-1 update per
// row of a, reading both operands in storage order with no transpose or
// packing. Rows of a that came through a ReLU backward are frequently zero,
// so zero lanes skip their n-wide update entirely. Serial by construction,
// hence trivially bit-identical across worker counts.
func transADirect(dst, a, b []float64, m, k, n int) {
	if useF32() {
		transADirect32(dst, a, b, m, k, n)
		return
	}
	vol := m * k * n
	timed := vol >= gemmTimedVolume
	var start time.Time
	if timed {
		start = time.Now()
	}
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			axpyRow(dst[i*n:(i+1)*n], brow, av)
		}
	}
	if timed {
		recordGEMM(vol, time.Since(start))
	}
}

// axpyRowGo is the portable dst += alpha·src loop behind axpyRow.
func axpyRowGo(dst, src []float64, alpha float64) {
	for j, v := range src[:len(dst)] {
		dst[j] += alpha * v
	}
}

// MatMulTransB returns a·bᵀ where a is m×k and b is n×k.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := gemmDims("MatMulTransB", a, b, false, true)
	out := New(m, n)
	gemm(out.Data, a.Data, b.Data, gemmShape{m: m, k: a.Shape[1], n: n, transB: true})
	return out
}

// MatMulTransBInto computes dst = a·bᵀ where a is m×k and b is n×k. dst
// must not alias a or b. Returns dst.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	m, k, n := gemmDims("MatMulTransBInto", a, b, false, true)
	checkDst("MatMulTransBInto", dst, m, n)
	gemm(dst.Data, a.Data, b.Data, gemmShape{m: m, k: k, n: n, transB: true})
	return dst
}

// MatMulTransBBiasInto computes dst = a·bᵀ + bias (bias broadcast across
// rows, length n), fused into the GEMM epilogue — the convolution forward
// pass in one call. dst must not alias a or b.
func MatMulTransBBiasInto(dst, a, b *Tensor, bias []float64) *Tensor {
	m, k, n := gemmDims("MatMulTransBBiasInto", a, b, false, true)
	checkDst("MatMulTransBBiasInto", dst, m, n)
	checkBias("MatMulTransBBiasInto", bias, n)
	gemm(dst.Data, a.Data, b.Data, gemmShape{m: m, k: k, n: n, transB: true, bias: bias})
	return dst
}

// gemmDims validates operand ranks/shapes and returns (m, k, n) for the
// requested transposition.
func gemmDims(op string, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: %s needs 2-D operands, got %v and %v", op, a.Shape, b.Shape))
	}
	if transA {
		k, m = a.Shape[0], a.Shape[1]
	} else {
		m, k = a.Shape[0], a.Shape[1]
	}
	var kb int
	if transB {
		n, kb = b.Shape[0], b.Shape[1]
	} else {
		kb, n = b.Shape[0], b.Shape[1]
	}
	if kb != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v·%v", op, a.Shape, b.Shape))
	}
	return m, k, n
}

func checkDst(op string, dst *Tensor, m, n int) {
	if dst.Dims() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.Shape, m, n))
	}
}

func checkBias(op string, bias []float64, n int) {
	if len(bias) != n {
		panic(fmt.Sprintf("tensor: %s bias length %d, want %d", op, len(bias), n))
	}
}

// gemmShape carries one product's geometry through the blocked driver.
type gemmShape struct {
	m, k, n int
	transB  bool      // b is n×k instead of k×n
	bias    []float64 // optional epilogue bias, length n
}

// gemm is the blocked driver: dst (m×n, fully overwritten) = a·op(b) + bias.
// Under the F32 precision policy the product routes through the f32 tier
// (matmul32.go): operands narrow at pack time, the widened f32
// micro-kernel computes each k-block, and partial sums accumulate in
// float64 — same blocked structure, so worker-count determinism holds.
func gemm(dst, a, b []float64, s gemmShape) {
	if s.m == 0 || s.n == 0 {
		return
	}
	if s.k == 0 {
		fillBias(dst, s)
		return
	}
	if useF32() {
		gemmMixed(dst, a, b, s)
		return
	}
	vol := s.m * s.n * s.k
	timed := vol >= gemmTimedVolume
	var start time.Time
	if timed {
		start = time.Now()
	}

	panelStride := kcBlock * nr
	bpack := GetTensor(panelStride * (ncBlock/nr + 1))
	serial := rowWorkers(s.m, vol) < 2
	for jc := 0; jc < s.n; jc += ncBlock {
		ncb := min(ncBlock, s.n-jc)
		for pc := 0; pc < s.k; pc += kcBlock {
			kcb := min(kcBlock, s.k-pc)
			packB(bpack.Data, b, pc, jc, kcb, ncb, s)
			first := pc == 0
			if serial {
				// Direct call: a closure here would heap-allocate its
				// captured loop variables on every cache block.
				gemmRows(dst, a, bpack.Data, 0, s.m, pc, jc, kcb, ncb, s, first)
			} else {
				gemmRowsParallel(dst, a, bpack.Data, vol, pc, jc, kcb, ncb, s, first)
			}
		}
	}
	PutTensor(bpack)

	if timed {
		recordGEMM(vol, time.Since(start))
	}
}

// fillBias handles the degenerate k == 0 product: dst = bias (or zero).
func fillBias(dst []float64, s gemmShape) {
	for i := 0; i < s.m; i++ {
		row := dst[i*s.n : (i+1)*s.n]
		if s.bias == nil {
			for j := range row {
				row[j] = 0
			}
		} else {
			copy(row, s.bias)
		}
	}
}

// packB packs the (kcb × ncb) block of op(b) at (pc, jc) into nr-wide
// column panels laid out panel-major: panel jp holds columns
// [jc+jp*nr, jc+jp*nr+nr) as kcb rows of nr contiguous values. Columns past
// ncb are zero-padded so the micro-kernel never sees a ragged panel.
func packB(dst, b []float64, pc, jc, kcb, ncb int, s gemmShape) {
	panels := (ncb + nr - 1) / nr
	for jp := 0; jp < panels; jp++ {
		w := min(nr, ncb-jp*nr)
		po := jp * kcb * nr
		if s.transB {
			// op(b) = bᵀ with b n×k: column jc+j of op(b) is row jc+j of b.
			for j := 0; j < w; j++ {
				src := b[(jc+jp*nr+j)*s.k+pc : (jc+jp*nr+j)*s.k+pc+kcb]
				for p, v := range src {
					dst[po+p*nr+j] = v
				}
			}
			if w < nr {
				for p := 0; p < kcb; p++ {
					for j := w; j < nr; j++ {
						dst[po+p*nr+j] = 0
					}
				}
			}
			continue
		}
		for p := 0; p < kcb; p++ {
			src := b[(pc+p)*s.n+jc+jp*nr:]
			d := dst[po+p*nr : po+p*nr+nr]
			for j := 0; j < w; j++ {
				d[j] = src[j]
			}
			for j := w; j < nr; j++ {
				d[j] = 0
			}
		}
	}
}

// gemmRows computes rows [i0, i1) of dst against the packed B block. first
// marks the k-block that overwrites dst (folding in the bias); later
// k-blocks accumulate.
// gemmRowsParallel fans one cache block's row range out over parallelRows.
// It exists as a separate function so the closure (and the captures it
// forces onto the heap) is only materialized on the parallel path; the
// serial path in gemm calls gemmRows directly and allocates nothing.
func gemmRowsParallel(dst, a, bpack []float64, vol, pc, jc, kcb, ncb int, s gemmShape, first bool) {
	parallelRows(s.m, vol, func(lo, hi int) {
		gemmRows(dst, a, bpack, lo, hi, pc, jc, kcb, ncb, s, first)
	})
}

func gemmRows(dst, a, bpack []float64, i0, i1, pc, jc, kcb, ncb int, s gemmShape, first bool) {
	panels := (ncb + nr - 1) / nr
	var ctile [mr * nr]float64
	i := i0
	for ; i+mr <= i1; i += mr {
		a0 := a[(i+0)*s.k+pc : (i+0)*s.k+pc+kcb]
		a1 := a[(i+1)*s.k+pc : (i+1)*s.k+pc+kcb]
		a2 := a[(i+2)*s.k+pc : (i+2)*s.k+pc+kcb]
		a3 := a[(i+3)*s.k+pc : (i+3)*s.k+pc+kcb]
		for jp := 0; jp < panels; jp++ {
			bp := bpack[jp*kcb*nr : (jp+1)*kcb*nr]
			microKernel(&ctile, a0, a1, a2, a3, bp, kcb)
			j := jc + jp*nr
			w := min(nr, ncb-jp*nr)
			for r := 0; r < mr; r++ {
				storeRow(dst[(i+r)*s.n+j:], ctile[r*nr:(r+1)*nr], w, j, first, s.bias)
			}
		}
	}
	// Row remainder: 1×nr scalar tiles.
	for ; i < i1; i++ {
		ar := a[i*s.k+pc : i*s.k+pc+kcb]
		for jp := 0; jp < panels; jp++ {
			bp := bpack[jp*kcb*nr : (jp+1)*kcb*nr]
			microKernel1(&ctile, ar, bp, kcb)
			j := jc + jp*nr
			w := min(nr, ncb-jp*nr)
			storeRow(dst[i*s.n+j:], ctile[:nr], w, j, first, s.bias)
		}
	}
}

// storeRow writes w computed lanes into dst, either overwriting (+bias) on
// the first k-block or accumulating on later ones.
func storeRow(dst, c []float64, w, j int, first bool, bias []float64) {
	if first {
		if bias != nil {
			for x := 0; x < w; x++ {
				dst[x] = c[x] + bias[j+x]
			}
			return
		}
		for x := 0; x < w; x++ {
			dst[x] = c[x]
		}
		return
	}
	for x := 0; x < w; x++ {
		dst[x] += c[x]
	}
}

// microKernelGo is the portable mr×nr register tile: 32 accumulators kept
// live across the full k-block, B streamed from the packed panel.
func microKernelGo(c *[mr * nr]float64, a0, a1, a2, a3, bp []float64, kcb int) {
	var c00, c01, c02, c03, c04, c05, c06, c07 float64
	var c10, c11, c12, c13, c14, c15, c16, c17 float64
	var c20, c21, c22, c23, c24, c25, c26, c27 float64
	var c30, c31, c32, c33, c34, c35, c36, c37 float64
	for p := 0; p < kcb; p++ {
		b := bp[p*nr : p*nr+nr : p*nr+nr]
		av := a0[p]
		c00 += av * b[0]
		c01 += av * b[1]
		c02 += av * b[2]
		c03 += av * b[3]
		c04 += av * b[4]
		c05 += av * b[5]
		c06 += av * b[6]
		c07 += av * b[7]
		av = a1[p]
		c10 += av * b[0]
		c11 += av * b[1]
		c12 += av * b[2]
		c13 += av * b[3]
		c14 += av * b[4]
		c15 += av * b[5]
		c16 += av * b[6]
		c17 += av * b[7]
		av = a2[p]
		c20 += av * b[0]
		c21 += av * b[1]
		c22 += av * b[2]
		c23 += av * b[3]
		c24 += av * b[4]
		c25 += av * b[5]
		c26 += av * b[6]
		c27 += av * b[7]
		av = a3[p]
		c30 += av * b[0]
		c31 += av * b[1]
		c32 += av * b[2]
		c33 += av * b[3]
		c34 += av * b[4]
		c35 += av * b[5]
		c36 += av * b[6]
		c37 += av * b[7]
	}
	c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7] = c00, c01, c02, c03, c04, c05, c06, c07
	c[8], c[9], c[10], c[11], c[12], c[13], c[14], c[15] = c10, c11, c12, c13, c14, c15, c16, c17
	c[16], c[17], c[18], c[19], c[20], c[21], c[22], c[23] = c20, c21, c22, c23, c24, c25, c26, c27
	c[24], c[25], c[26], c[27], c[28], c[29], c[30], c[31] = c30, c31, c32, c33, c34, c35, c36, c37
}

// microKernel1 is the 1×nr row-remainder tile.
func microKernel1(c *[mr * nr]float64, ar, bp []float64, kcb int) {
	var c0, c1, c2, c3, c4, c5, c6, c7 float64
	for p := 0; p < kcb; p++ {
		b := bp[p*nr : p*nr+nr : p*nr+nr]
		av := ar[p]
		c0 += av * b[0]
		c1 += av * b[1]
		c2 += av * b[2]
		c3 += av * b[3]
		c4 += av * b[4]
		c5 += av * b[5]
		c6 += av * b[6]
		c7 += av * b[7]
	}
	c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7] = c0, c1, c2, c3, c4, c5, c6, c7
}

// rowWorkers returns how many workers a row-partitioned kernel over the
// given row count and m*n*k volume should use: 1 (serial) for small work,
// otherwise GOMAXPROCS clamped to the row count. Callers on the hot path
// check for 1 and invoke their body directly, so the serial case never
// allocates a closure.
func rowWorkers(rows, volume int) int {
	workers := runtime.GOMAXPROCS(0)
	if volume < parallelThreshold || workers < 2 || rows < 2*mr {
		return 1
	}
	return min(workers, rows)
}

// parallelRows splits [0, rows) into contiguous chunks and runs fn on each,
// in parallel when volume exceeds parallelThreshold. Chunk boundaries are
// aligned to the micro-kernel height so no mr-row tile straddles workers,
// and at most min(GOMAXPROCS, ceil(rows/chunk)) goroutines are spawned.
// Results are independent of the worker count: chunking only partitions
// rows, never the accumulation order within an output element.
func parallelRows(rows, volume int, fn func(lo, hi int)) {
	parallelRowsAligned(rows, volume, mr, fn)
}

// parallelRowsAligned is parallelRows with an explicit tile height: the
// f64 driver aligns chunks to mr, the f32 driver to its taller mr32 tile.
// Alignment is what keeps results worker-count independent — every chunk
// start is a tile-height multiple, so the same rows land in full tiles
// (assembly kernel) versus the row remainder (scalar kernel) no matter
// how many workers split the range.
func parallelRowsAligned(rows, volume, align int, fn func(lo, hi int)) {
	workers := rowWorkers(rows, volume)
	if workers < 2 {
		fn(0, rows)
		return
	}
	// Compute the chunk from the clamped worker count, then round up to a
	// multiple of the tile height; the number of spawned goroutines is
	// ceil(rows/chunk), which never exceeds workers.
	chunk := (rows + workers - 1) / workers
	chunk = (chunk + align - 1) / align * align
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs a 2-D operand, got %v", a.Shape))
	}
	out := New(a.Shape[1], a.Shape[0])
	TransposeInto(out, a)
	return out
}

// transposeTile is the cache-block edge for TransposeInto: an 8×8 tile of
// float64 is 512 B, so source and destination tiles both sit in L1.
const transposeTile = 8

// TransposeInto writes aᵀ into dst (shape n×m for a m×n), blocked so both
// the row-major reads and the column-major writes stay cache-resident.
// dst must not alias a. Hot paths pass a pooled dst (see GetTensor) so
// transposition allocates nothing.
func TransposeInto(dst, a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: TransposeInto needs a 2-D operand, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	checkDst("TransposeInto", dst, n, m)
	for ii := 0; ii < m; ii += transposeTile {
		ih := min(ii+transposeTile, m)
		for jj := 0; jj < n; jj += transposeTile {
			jh := min(jj+transposeTile, n)
			for i := ii; i < ih; i++ {
				row := a.Data[i*n : (i+1)*n]
				for j := jj; j < jh; j++ {
					dst.Data[j*m+i] = row[j]
				}
			}
		}
	}
	return dst
}

// MatVec returns a·x for a 2-D a (m×n) and a flat x of length n.
func MatVec(a, x *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatVec needs a 2-D matrix, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	if x.Size() != n {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v·%v", a.Shape, x.Shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}
