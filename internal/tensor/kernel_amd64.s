//go:build amd64

#include "textflag.h"

// func fmaKernel4x8(a0, a1, a2, a3, bp, c *float64, kc int)
//
// Computes the 4×8 micro-tile c[r][j] = Σ_p a{r}[p] * bp[p*8+j] for
// p in [0, kc), overwriting c. The eight accumulators (Y4..Y11) stay in
// registers across the whole k-loop; each iteration streams 8 packed B
// values (two YMM loads) and broadcasts one A value per row, issuing
// 8 FMAs = 64 double FLOPs.
TEXT ·fmaKernel4x8(SB), NOSPLIT, $0-56
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ bp+32(FP), R12
	MOVQ c+40(FP), R13
	MOVQ kc+48(FP), CX

	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

loop:
	VMOVUPD (R12), Y0            // b[0:4]
	VMOVUPD 32(R12), Y1          // b[4:8]

	VBROADCASTSD (R8), Y2        // a0[p]
	VBROADCASTSD (R9), Y3        // a1[p]
	VFMADD231PD Y0, Y2, Y4
	VFMADD231PD Y1, Y2, Y5
	VFMADD231PD Y0, Y3, Y6
	VFMADD231PD Y1, Y3, Y7

	VBROADCASTSD (R10), Y2       // a2[p]
	VBROADCASTSD (R11), Y3       // a3[p]
	VFMADD231PD Y0, Y2, Y8
	VFMADD231PD Y1, Y2, Y9
	VFMADD231PD Y0, Y3, Y10
	VFMADD231PD Y1, Y3, Y11

	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $64, R12
	DECQ CX
	JNZ  loop

	VMOVUPD Y4, (R13)
	VMOVUPD Y5, 32(R13)
	VMOVUPD Y6, 64(R13)
	VMOVUPD Y7, 96(R13)
	VMOVUPD Y8, 128(R13)
	VMOVUPD Y9, 160(R13)
	VMOVUPD Y10, 192(R13)
	VMOVUPD Y11, 224(R13)
	VZEROUPPER
	RET

// func fmaAxpy(dst, src *float64, alpha float64, n int)
//
// dst[i] += alpha * src[i] for i in [0, n). The 8-wide body issues two
// YMM load/FMA/store triples per iteration; the remainder runs scalar
// FMA so every lane rounds once, like the main loop.
TEXT ·fmaAxpy(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	VBROADCASTSD alpha+16(FP), Y0
	MOVQ         n+24(FP), CX

	MOVQ CX, BX
	SHRQ $3, BX
	JZ   tail

loop8:
	VMOVUPD      (SI), Y1
	VMOVUPD      32(SI), Y2
	VFMADD213PD  (DI), Y0, Y1
	VFMADD213PD  32(DI), Y0, Y2
	VMOVUPD      Y1, (DI)
	VMOVUPD      Y2, 32(DI)
	ADDQ         $64, SI
	ADDQ         $64, DI
	DECQ         BX
	JNZ          loop8

tail:
	ANDQ $7, CX
	JZ   done

tailloop:
	VMOVSD       (SI), X1
	VFMADD213SD  (DI), X0, X1
	VMOVSD       X1, (DI)
	ADDQ         $8, SI
	ADDQ         $8, DI
	DECQ         CX
	JNZ          tailloop

done:
	VZEROUPPER
	RET

// func avxRelu(dst, src *float64, n int)
//
// dst[i] = max(src[i], 0) for i in [0, n); n must be a positive multiple
// of 4. VMAXPD with src as the first source returns the zero operand when
// src is NaN, matching the scalar `v > 0` gate.
TEXT ·avxRelu(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   src+8(FP), SI
	MOVQ   n+16(FP), CX
	SHRQ   $2, CX
	VXORPD Y0, Y0, Y0

relulp:
	VMOVUPD (SI), Y1
	VMAXPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     relulp

	VZEROUPPER
	RET

// func avxReluGate(dst, y, grad *float64, n int)
//
// dst[i] = g[i] where y[i] > 0, else 0, for i in [0, n); n must be a
// positive multiple of 4. The compare uses predicate GT_OQ, so NaN y
// lanes gate to zero like the scalar comparison.
TEXT ·avxReluGate(SB), NOSPLIT, $0-32
	MOVQ   dst+0(FP), DI
	MOVQ   y+8(FP), SI
	MOVQ   grad+16(FP), DX
	MOVQ   n+24(FP), CX
	SHRQ   $2, CX
	VXORPD Y0, Y0, Y0

gatelp:
	VMOVUPD (SI), Y1
	VCMPPD  $30, Y0, Y1, Y2      // Y2 = (y > 0) lane mask (GT_OQ)
	VANDPD  (DX), Y2, Y3
	VMOVUPD Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gatelp

	VZEROUPPER
	RET

// func fmaKernel6x16(a0, a1, a2, a3, a4, a5, bp, c *float32, kc int)
//
// The widened float32 micro-tile: c[r][j] = Σ_p a{r}[p] * bp[p*16+j] for
// p in [0, kc), overwriting c. Each k step streams 16 packed B values
// (two YMM loads) and broadcasts one A value per row, issuing 12 FMAs =
// 192 single FLOPs with 8 float32 lanes per register.
//
// The tile is 6×16 rather than mirroring the f64 kernel's 4-row shape
// because of the FMA latency×throughput product: with 2 FMA ports and
// ~4-cycle latency the scheduler needs more than 8 independent
// accumulator chains to keep both ports saturated, and a 4-row f32 tile
// has exactly 8 — inheriting the f64 kernel's port stall and capping the
// tier below 2x. Twelve accumulators (Y4..Y15) give the scheduler slack.
// The body is also unrolled 2× with offset addressing so pointer bumps
// and the loop branch amortize over two k steps.
//
// The k-summation order is identical to a rolled loop (p ascending), so
// unrolling changes nothing about which floats are added when —
// bit-reproducibility is untouched.

// FMASTEP32 is one k step at byte offset off into the packed B panel and
// byte offset aoff into the six A rows.
#define FMASTEP32(off, aoff) \
	VMOVUPS      off(R12), Y0       \
	VMOVUPS      (off+32)(R12), Y1  \
	VBROADCASTSS aoff(R8), Y2       \
	VBROADCASTSS aoff(R9), Y3       \
	VFMADD231PS  Y0, Y2, Y4         \
	VFMADD231PS  Y1, Y2, Y5         \
	VFMADD231PS  Y0, Y3, Y6         \
	VFMADD231PS  Y1, Y3, Y7         \
	VBROADCASTSS aoff(R10), Y2      \
	VBROADCASTSS aoff(R11), Y3      \
	VFMADD231PS  Y0, Y2, Y8         \
	VFMADD231PS  Y1, Y2, Y9         \
	VFMADD231PS  Y0, Y3, Y10        \
	VFMADD231PS  Y1, Y3, Y11        \
	VBROADCASTSS aoff(DX), Y2      \
	VBROADCASTSS aoff(SI), Y3      \
	VFMADD231PS  Y0, Y2, Y12        \
	VFMADD231PS  Y1, Y2, Y13        \
	VFMADD231PS  Y0, Y3, Y14        \
	VFMADD231PS  Y1, Y3, Y15

TEXT ·fmaKernel6x16(SB), NOSPLIT, $0-72
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ a4+32(FP), DX
	MOVQ a5+40(FP), SI
	MOVQ bp+48(FP), R12
	MOVQ c+56(FP), R13
	MOVQ kc+64(FP), CX

	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13
	VXORPS Y14, Y14, Y14
	VXORPS Y15, Y15, Y15

	MOVQ CX, BX
	SHRQ $1, CX
	JZ   ktail32

kpair32:
	FMASTEP32(0, 0)
	FMASTEP32(64, 4)

	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, DX
	ADDQ $8, SI
	ADDQ $128, R12
	DECQ CX
	JNZ  kpair32

ktail32:
	ANDQ $1, BX
	JZ   kstore32

	FMASTEP32(0, 0)

kstore32:
	VMOVUPS Y4, (R13)
	VMOVUPS Y5, 32(R13)
	VMOVUPS Y6, 64(R13)
	VMOVUPS Y7, 96(R13)
	VMOVUPS Y8, 128(R13)
	VMOVUPS Y9, 160(R13)
	VMOVUPS Y10, 192(R13)
	VMOVUPS Y11, 224(R13)
	VMOVUPS Y12, 256(R13)
	VMOVUPS Y13, 288(R13)
	VMOVUPS Y14, 320(R13)
	VMOVUPS Y15, 352(R13)
	VZEROUPPER
	RET

// func fmaAxpy32(dst, src *float32, alpha float32, n int)
//
// dst[i] += alpha * src[i] for i in [0, n). 16-wide body (two YMM
// triples), scalar-FMA remainder so every lane rounds once.
TEXT ·fmaAxpy32(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	VBROADCASTSS alpha+16(FP), Y0
	MOVQ         n+24(FP), CX

	MOVQ CX, BX
	SHRQ $4, BX
	JZ   tail32

loop16:
	VMOVUPS      (SI), Y1
	VMOVUPS      32(SI), Y2
	VFMADD213PS  (DI), Y0, Y1
	VFMADD213PS  32(DI), Y0, Y2
	VMOVUPS      Y1, (DI)
	VMOVUPS      Y2, 32(DI)
	ADDQ         $64, SI
	ADDQ         $64, DI
	DECQ         BX
	JNZ          loop16

tail32:
	ANDQ $15, CX
	JZ   done32

tailloop32:
	VMOVSS       (SI), X1
	VFMADD213SS  (DI), X0, X1
	VMOVSS       X1, (DI)
	ADDQ         $4, SI
	ADDQ         $4, DI
	DECQ         CX
	JNZ          tailloop32

done32:
	VZEROUPPER
	RET

// func avxRelu32(dst, src *float32, n int)
//
// dst[i] = max(src[i], 0) for i in [0, n); n must be a positive multiple
// of 8. Same NaN-gates-to-zero contract as avxRelu.
TEXT ·avxRelu32(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   src+8(FP), SI
	MOVQ   n+16(FP), CX
	SHRQ   $3, CX
	VXORPS Y0, Y0, Y0

relulp32:
	VMOVUPS (SI), Y1
	VMAXPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     relulp32

	VZEROUPPER
	RET

// func avxReluGate32(dst, y, grad *float32, n int)
//
// dst[i] = g[i] where y[i] > 0, else 0, for i in [0, n); n must be a
// positive multiple of 8. GT_OQ predicate, so NaN y lanes gate to zero.
TEXT ·avxReluGate32(SB), NOSPLIT, $0-32
	MOVQ   dst+0(FP), DI
	MOVQ   y+8(FP), SI
	MOVQ   grad+16(FP), DX
	MOVQ   n+24(FP), CX
	SHRQ   $3, CX
	VXORPS Y0, Y0, Y0

gatelp32:
	VMOVUPS (SI), Y1
	VCMPPS  $30, Y0, Y1, Y2      // Y2 = (y > 0) lane mask (GT_OQ)
	VANDPS  (DX), Y2, Y3
	VMOVUPS Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gatelp32

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
