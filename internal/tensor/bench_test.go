package tensor

import (
	"math/rand"
	"testing"
)

func benchMats(n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(n, n), New(n, n)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)
	return a, b
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchMats(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	x, y := benchMats(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTransB128(b *testing.B) {
	x, y := benchMats(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTransB(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := ConvGeom{InC: 3, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(32, 3, 12, 12)
	x.RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2Col(x, g)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := ConvGeom{InC: 3, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(32, 3, 12, 12)
	x.RandNormal(rng, 0, 1)
	cols := Im2Col(x, g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Col2Im(cols, 32, g)
	}
}

// BenchmarkConvLowering measures the full conv-layer compute pipeline
// (im2col, forward GEMM with fused bias, weight-gradient GEMM, input-
// gradient GEMM, col2im) on pooled buffers — the path internal/nn's Conv2D
// runs per minibatch. Steady state allocates nothing: every buffer cycles
// through the scratch arena.
func BenchmarkConvLowering(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := ConvGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	const n, outC = 16, 16
	k := g.InC * g.KH * g.KW
	rows := n * g.OutH() * g.OutW()
	x := New(n, g.InC, g.InH, g.InW)
	x.RandNormal(rng, 0, 1)
	w := New(outC, k)
	w.RandNormal(rng, 0, 1)
	bias := make([]float64, outC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cols := GetTensor(rows, k)
		Im2ColInto(cols, x, g)
		prod := GetTensor(rows, outC)
		MatMulTransBBiasInto(prod, cols, w, bias)
		dW := GetTensor(outC, k)
		MatMulTransAInto(dW, prod, cols)
		PutTensor(dW)
		MatMulInto(cols, prod, w) // reuse cols as grad-columns dst
		dx := GetTensor(n, g.InC, g.InH, g.InW)
		Col2ImInto(dx, cols, n, g)
		PutTensor(dx)
		PutTensor(prod)
		PutTensor(cols)
	}
}
