package tensor

import (
	"math/rand"
	"testing"
)

func benchMats(n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(n, n), New(n, n)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)
	return a, b
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchMats(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	x, y := benchMats(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTransB128(b *testing.B) {
	x, y := benchMats(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTransB(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := ConvGeom{InC: 3, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(32, 3, 12, 12)
	x.RandNormal(rng, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2Col(x, g)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := ConvGeom{InC: 3, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(32, 3, 12, 12)
	x.RandNormal(rng, 0, 1)
	cols := Im2Col(x, g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Col2Im(cols, 32, g)
	}
}
