// Package tensor provides dense float64 tensors and the numeric kernels
// (parallel matmul, im2col, reductions, initializers) that the neural
// network stack in internal/nn is built on.
//
// Tensors are row-major, backed by a flat []float64, and carry an explicit
// shape. All operations either allocate a fresh result or write into a
// caller-supplied destination; no operation mutates its inputs unless the
// name says so (e.g. AddInPlace).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the flat row-major backing store; len(Data) == product(Shape).
	Data []float64
}

// panicNegDim reports a negative dimension. It deliberately takes only the
// offending value: formatting the whole shape slice would force every
// variadic call site of New/GetTensor to heap-allocate its argument.
func panicNegDim(d int) {
	panic(fmt.Sprintf("tensor: negative dimension %d in shape", d))
}

// shapeVolume validates shape and returns its element count.
func shapeVolume(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panicNegDim(d)
		}
		n *= d
	}
	return n
}

// tensorAlloc co-locates a tensor header with inline shape storage so New
// costs two heap objects (header+shape, data) instead of three.
type tensorAlloc struct {
	t    Tensor
	dims [4]int
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := shapeVolume(shape)
	if len(shape) <= len(tensorAlloc{}.dims) {
		a := &tensorAlloc{}
		a.t.Shape = a.dims[:copy(a.dims[:len(shape)], shape)]
		a.t.Data = make([]float64, n)
		return &a.t
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); its length must match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)",
			len(data), shape, t.Size()))
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal volume. The backing
// data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := FromSlice(t.Data, shape...)
	return v
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddInPlace adds b into a elementwise.
func AddInPlace(a, b *Tensor) {
	assertSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AxpyInPlace computes a += alpha*b elementwise, through the FMA axpy
// kernel where the CPU has one.
func AxpyInPlace(a *Tensor, alpha float64, b *Tensor) {
	assertSameShape("AxpyInPlace", a, b)
	axpyRow(a.Data, b.Data, alpha)
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a *Tensor, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// Apply returns f applied elementwise to a.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// Clamp returns a with every element clipped into [lo, hi].
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	return Apply(a, func(v float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// ClampInPlace clips every element of a into [lo, hi].
func ClampInPlace(a *Tensor, lo, hi float64) {
	for i, v := range a.Data {
		if v < lo {
			a.Data[i] = lo
		} else if v > hi {
			a.Data[i] = hi
		}
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the first maximum element.
func (t *Tensor) Argmax() int {
	if len(t.Data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, arg := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}

// L1Norm returns the sum of absolute values.
func (t *Tensor) L1Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += math.Abs(v)
	}
	return s
}

// L2Norm returns the Euclidean norm.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	assertSameShape("Dot", a, b)
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// RandUniform fills t with samples from U[lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// RandNormal fills t with samples from N(mean, std²).
func (t *Tensor) RandNormal(rng *rand.Rand, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = mean + rng.NormFloat64()*std
	}
}

// HeInit fills t with He-normal initialization for a layer with the given
// fan-in, the standard init for ReLU networks.
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	t.RandNormal(rng, 0, std)
}

// XavierInit fills t with Glorot-uniform initialization.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	t.RandUniform(rng, -limit, limit)
}

// Equal reports whether a and b have the same shape and elementwise values
// within tolerance tol.
func Equal(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values),
// useful in test failures.
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
