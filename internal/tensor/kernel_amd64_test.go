package tensor

import (
	"math/rand"
	"testing"
)

// TestScalarKernelMatchesFMA verifies the Go fallback micro-kernel against
// the AVX2+FMA assembly path on machines that have it. Both run the same
// blocked schedule, so the only divergence is FMA's fused rounding step.
func TestScalarKernelMatchesFMA(t *testing.T) {
	if !hasFMAKernel {
		t.Skip("no FMA micro-kernel on this CPU")
	}
	defer func() { hasFMAKernel = true }()
	rng := rand.New(rand.NewSource(9))
	for _, s := range [][3]int{{17, 33, 29}, {64, 64, 64}, {70, 257, 64}} {
		a, b := New(s[0], s[1]), New(s[1], s[2])
		a.RandNormal(rng, 0, 1)
		b.RandNormal(rng, 0, 1)
		fma := MatMul(a, b)
		hasFMAKernel = false
		scalar := MatMul(a, b)
		hasFMAKernel = true
		if !Equal(fma, scalar, 1e-10) {
			t.Fatalf("FMA and scalar micro-kernels diverge on %v", s)
		}
	}
}
