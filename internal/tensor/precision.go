package tensor

import (
	"fmt"
	"sync/atomic"
)

// Precision selects which floating-point width the GEMM compute tier runs
// at. It is a process-wide policy, not a per-call option: kernel dispatch
// must be constant while kernels run so that repeated executions of the
// same product are bit-identical (the property the federation determinism
// tests rely on). Set it once at startup — the `-precision` flag on
// ciptrain/cipbench does exactly that — before any training work begins.
//
// Under F32 the f64-facing GEMM entry points (MatMul, MatMulInto, the
// fused-bias and transposed variants, and the rank-1 aᵀ·b path) narrow
// their operands to float32 at pack time, run the widened f32 micro-kernels
// (8 lanes per AVX2 register, 4 per NEON register), and widen the per-block
// partial sums back into the float64 destination. Storage, layer caches,
// optimizer state, and everything crossing the FL boundary stay []float64,
// so the wire codec, compression banks, robust folds, and checkpoint
// container are untouched byte-for-byte.
//
// Numerics: an F32 run and an F64 run are DIFFERENT computations — each
// multiply-add rounds at its own width — but each is bit-reproducible on
// its own: for a fixed precision, kernel, and operand values, results are
// identical across runs and across worker counts (DESIGN.md §14).
type Precision uint8

const (
	// F64 is the default full-precision tier: every GEMM computes in
	// float64, as all code before the f32 tier did.
	F64 Precision = iota
	// F32 runs GEMM compute through the float32 micro-kernels with
	// float64 storage and interchange.
	F32
)

// String returns the CLI spelling of p.
func (p Precision) String() string {
	if p == F32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision maps the CLI spellings onto the policy values.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	}
	return F64, fmt.Errorf("unknown precision %q (want f32 or f64)", s)
}

// currentPrecision holds the active policy. Atomic so tests that flip the
// policy around a workload are race-clean against concurrent kernels; the
// production contract remains "set once before training".
var currentPrecision atomic.Uint32

// SetPrecision installs the process-wide compute precision. Call it once
// at startup, before training starts: flipping it mid-run changes which
// kernel subsequent GEMMs dispatch to, which breaks run-to-run
// bit-reproducibility (each precision remains self-consistent, but a mixed
// trace is neither).
func SetPrecision(p Precision) { currentPrecision.Store(uint32(p)) }

// CurrentPrecision reports the active compute precision.
func CurrentPrecision() Precision { return Precision(currentPrecision.Load()) }

// useF32 is the per-GEMM dispatch check (one atomic load per product).
func useF32() bool { return currentPrecision.Load() == uint32(F32) }
