package tensor

import "fmt"

// Float32 rectifier kernels — the f32 tier's siblings of relu.go, with the
// same NaN-gates-to-zero contract on the vector and scalar paths.

// Relu32Into writes the positive part of x into dst elementwise: dst[i] =
// max(x[i], 0). dst and x must have equal sizes; dst may alias x.
func Relu32Into(dst, x *Tensor32) *Tensor32 {
	if len(dst.Data) != len(x.Data) {
		panic(fmt.Sprintf("tensor: Relu32Into size mismatch %v vs %v", dst.Shape, x.Shape))
	}
	relu32Kernel(dst.Data, x.Data)
	return dst
}

// ReluGate32Into writes grad gated by y's sign into dst: dst[i] = grad[i]
// where y[i] > 0, else 0 — the ReLU backward pass. All three tensors must
// have equal sizes; dst may alias grad.
func ReluGate32Into(dst, y, grad *Tensor32) *Tensor32 {
	if len(dst.Data) != len(y.Data) || len(dst.Data) != len(grad.Data) {
		panic(fmt.Sprintf("tensor: ReluGate32Into size mismatch %v, %v, %v",
			dst.Shape, y.Shape, grad.Shape))
	}
	reluGate32Kernel(dst.Data, y.Data, grad.Data)
	return dst
}

// Axpy32InPlace computes a += alpha*b elementwise through the f32 axpy
// kernel.
func Axpy32InPlace(a *Tensor32, alpha float32, b *Tensor32) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Axpy32InPlace shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	if len(a.Data) > 0 {
		axpyRow32(a.Data, b.Data, alpha)
	}
}

// relu32Go is the portable rectifier loop.
func relu32Go(dst, x []float32) {
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// reluGate32Go is the portable gradient gate loop.
func reluGate32Go(dst, y, g []float32) {
	for i, v := range y {
		if v > 0 {
			dst[i] = g[i]
		} else {
			dst[i] = 0
		}
	}
}
