package tensor

import "fmt"

// Elementwise rectifier kernels. The activation layers in internal/nn are
// pure elementwise passes over conv-sized tensors, which makes them branchy
// scalar loops in Go; on amd64 they dispatch to AVX2 max/compare kernels
// (kernel_amd64.s) instead. NaN inputs gate to zero on both paths, matching
// the scalar `v > 0` comparison.

// ReluInto writes the positive part of x into dst elementwise: dst[i] =
// max(x[i], 0). dst and x must have equal sizes; dst may alias x.
func ReluInto(dst, x *Tensor) *Tensor {
	if len(dst.Data) != len(x.Data) {
		panic(fmt.Sprintf("tensor: ReluInto size mismatch %v vs %v", dst.Shape, x.Shape))
	}
	reluKernel(dst.Data, x.Data)
	return dst
}

// ReluGateInto writes grad gated by y's sign into dst: dst[i] = grad[i]
// where y[i] > 0, else 0 — the ReLU backward pass. All three tensors must
// have equal sizes; dst may alias grad.
func ReluGateInto(dst, y, grad *Tensor) *Tensor {
	if len(dst.Data) != len(y.Data) || len(dst.Data) != len(grad.Data) {
		panic(fmt.Sprintf("tensor: ReluGateInto size mismatch %v, %v, %v",
			dst.Shape, y.Shape, grad.Shape))
	}
	reluGateKernel(dst.Data, y.Data, grad.Data)
	return dst
}

// reluGo is the portable rectifier loop.
func reluGo(dst, x []float64) {
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// reluGateGo is the portable gradient gate loop.
func reluGateGo(dst, y, g []float64) {
	for i, v := range y {
		if v > 0 {
			dst[i] = g[i]
		} else {
			dst[i] = 0
		}
	}
}
