package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul32 is the scalar float32 reference (plain triple loop,
// ascending k) the blocked kernel is judged against.
func naiveMatMul32(a, b *Tensor32) *Tensor32 {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

func randMat32(rng *rand.Rand, m, n int) *Tensor32 {
	t := New32(m, n)
	t.RandNormal(rng, 0, 1)
	return t
}

// TestMatMul32MatchesNaiveEdgeShapes drives the f32 blocked kernel through
// shapes that stress every edge: partial mr/nr32 tiles, single rows and
// columns, and sizes straddling the kc/nc cache blocks and the parallel
// threshold. FMA/FMLA fuse the multiply-add rounding and the blocked
// kernel sums k in panel order, so the comparison tolerance scales with k
// at float32 epsilon.
func TestMatMul32MatchesNaiveEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 33, 63, 65, 127, 129}
	shapes := [][3]int{{4, 300, 520}, {70, 257, 64}, {130, 512, 9}}
	for trial := 0; trial < 60; trial++ {
		shapes = append(shapes, [3]int{
			dims[rng.Intn(len(dims))], dims[rng.Intn(len(dims))], dims[rng.Intn(len(dims))]})
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randMat32(rng, m, k), randMat32(rng, k, n)
		tol := 1e-4 * math.Sqrt(float64(k))
		if !Equal32(MatMul32(a, b), naiveMatMul32(a, b), tol) {
			t.Fatalf("MatMul32(%dx%d, %dx%d) diverges from naive reference", m, k, k, n)
		}
	}
}

// TestMatMulTransB32MatchesNaive checks the f32 transposed-B pack path.
func TestMatMulTransB32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, s := range [][3]int{{1, 1, 1}, {5, 9, 3}, {33, 65, 17}, {70, 70, 70}} {
		m, k, n := s[0], s[1], s[2]
		a, bt := randMat32(rng, m, k), randMat32(rng, n, k)
		// Reference: materialize bᵀ and multiply naively.
		b := New32(k, n)
		for i := 0; i < n; i++ {
			for p := 0; p < k; p++ {
				b.Data[p*n+i] = bt.Data[i*k+p]
			}
		}
		if !Equal32(MatMulTransB32(a, bt), naiveMatMul32(a, b), 1e-4*math.Sqrt(float64(k))) {
			t.Fatalf("MatMulTransB32(%dx%d · (%dx%d)ᵀ) diverges from reference", m, k, n, k)
		}
	}
}

// TestMatMulBias32IntoEpilogue checks the fused-bias f32 epilogue.
func TestMatMulBias32IntoEpilogue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, k, n := 9, 33, 21
	a, b := randMat32(rng, m, k), randMat32(rng, k, n)
	bias := make([]float32, n)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	want := naiveMatMul32(a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want.Data[i*n+j] += bias[j]
		}
	}
	dst := New32(m, n)
	MatMulBias32Into(dst, a, b, bias)
	if !Equal32(dst, want, 1e-4*math.Sqrt(float64(k))) {
		t.Fatal("MatMulBias32Into diverges from naive reference + bias")
	}
}

// TestMixedGEMMWidensPureF32 pins the mixed path's contract: for a product
// with a single k-block (k ≤ kcBlock) and no bias, running the f64 entry
// point under the F32 policy must produce EXACTLY the widened pure-f32
// product — the narrow-compute-widen round trip introduces no extra
// arithmetic.
func TestMixedGEMMWidensPureF32(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range [][3]int{{5, 7, 3}, {64, 64, 64}, {33, 256, 70}, {128, 100, 520}} {
		m, k, n := s[0], s[1], s[2]
		a, b := New(m, k), New(k, n)
		a.RandNormal(rng, 0, 1)
		b.RandNormal(rng, 0, 1)

		SetPrecision(F32)
		mixed := MatMul(a, b)
		SetPrecision(F64)

		pure := MatMul32(NarrowTensor(a), NarrowTensor(b))
		for i := range mixed.Data {
			if mixed.Data[i] != float64(pure.Data[i]) {
				t.Fatalf("(%d,%d,%d): mixed[%d] = %v, widened pure f32 = %v",
					m, k, n, i, mixed.Data[i], float64(pure.Data[i]))
			}
		}
	}
}

// TestMixedGEMMAccumulatesF64AcrossBlocks checks the other half of the
// contract: with k spanning multiple kcBlocks the mixed path sums its
// f32 block partials in float64, so it is generally CLOSER to the f64
// result than an end-to-end f32 accumulation — and must stay within a
// float32-scale tolerance of the f64 product.
func TestMixedGEMMAccumulatesF64AcrossBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 16, 3*kcBlock+17, 24
	a, b := New(m, k), New(k, n)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)

	want := MatMul(a, b)
	SetPrecision(F32)
	mixed := MatMul(a, b)
	SetPrecision(F64)

	tol := 1e-4 * math.Sqrt(float64(k))
	if !Equal(mixed, want, tol) {
		t.Fatalf("mixed-precision GEMM drifts more than %g from the f64 product", tol)
	}
}

// TestMixedTransADirect drives the rank-1 aᵀ·b path (m ≤ transADirectMaxM)
// under the F32 policy against the f64 reference.
func TestMixedTransADirect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k, m, n := 500, 16, 72 // m ≤ transADirectMaxM forces the direct path
	a, b := New(k, m), New(k, n)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)
	// Sprinkle exact zeros so the skip-zero-lane branch runs.
	for i := 0; i < len(a.Data); i += 7 {
		a.Data[i] = 0
	}

	want := MatMulTransA(a, b)
	SetPrecision(F32)
	got := MatMulTransA(a, b)
	SetPrecision(F64)

	if !Equal(got, want, 1e-3*math.Sqrt(float64(k))) {
		t.Fatal("F32-policy transADirect diverges from the f64 rank-1 product")
	}
}

// TestPrecisionParse pins the CLI spellings.
func TestPrecisionParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"f32", F32, true}, {"float32", F32, true},
		{"f64", F64, true}, {"float64", F64, true}, {"", F64, true},
		{"f16", F64, false}, {"double", F64, false},
	} {
		got, err := ParsePrecision(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if F32.String() != "f32" || F64.String() != "f64" {
		t.Error("Precision.String spellings drifted from the CLI names")
	}
}

// TestRelu32Kernels checks the f32 rectifier forward and gate against the
// scalar definition, across the vector body and the sub-vector remainder,
// including the NaN-gates-to-zero contract.
func TestRelu32Kernels(t *testing.T) {
	nan := float32(math.NaN())
	for _, size := range []int{1, 7, 8, 9, 64, 100} {
		x := New32(size)
		g := New32(size)
		rng := rand.New(rand.NewSource(int64(size)))
		x.RandNormal(rng, 0, 1)
		g.RandNormal(rng, 0, 1)
		x.Data[0] = nan
		if size > 8 {
			x.Data[size-1] = nan
		}

		fwd := Relu32Into(New32(size), x)
		gate := ReluGate32Into(New32(size), x, g)
		for i, v := range x.Data {
			wantF, wantG := float32(0), float32(0)
			if v > 0 {
				wantF, wantG = v, g.Data[i]
			}
			if fwd.Data[i] != wantF {
				t.Fatalf("size %d: relu[%d] = %v, want %v (x=%v)", size, i, fwd.Data[i], wantF, v)
			}
			if gate.Data[i] != wantG {
				t.Fatalf("size %d: gate[%d] = %v, want %v (x=%v)", size, i, gate.Data[i], wantG, v)
			}
		}
	}
}

// TestAxpy32Kernel checks the f32 axpy against the scalar loop across
// vector-body and remainder lengths.
func TestAxpy32Kernel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, size := range []int{1, 3, 4, 5, 16, 17, 100} {
		a, b := New32(size), New32(size)
		a.RandNormal(rng, 0, 1)
		b.RandNormal(rng, 0, 1)
		want := make([]float32, size)
		const alpha = float32(0.37)
		for i := range want {
			want[i] = a.Data[i] + alpha*b.Data[i]
		}
		Axpy32InPlace(a, alpha, b)
		for i := range want {
			if math.Abs(float64(a.Data[i])-float64(want[i])) > 1e-6 {
				t.Fatalf("size %d: axpy[%d] = %v, want %v", size, i, a.Data[i], want[i])
			}
		}
	}
}

// TestPool32RoundTrip checks the f32 arena recycles storage like the f64
// one: a Get after a Put of the same class reuses the buffer.
func TestPool32RoundTrip(t *testing.T) {
	a := GetTensor32(100)
	data := &a.Data[0]
	PutTensor32(a)
	b := GetTensor32(120) // same power-of-two class (128)
	defer PutTensor32(b)
	if &b.Data[0] != data {
		t.Error("pooled f32 buffer was not reused within its size class")
	}
	if len(b.Data) != 120 {
		t.Errorf("reused buffer has length %d, want 120", len(b.Data))
	}
}

// TestConvertSemantics pins the IEEE-754 narrowing cases the FL boundary
// depends on: NaN stays NaN, ±Inf stays ±Inf, overflow saturates to Inf,
// and sub-f32-range values flush toward zero (finite).
func TestConvertSemantics(t *testing.T) {
	src := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64, // overflow → ±Inf
		1e-300, -1e-300, // below f32 subnormals → ±0
		1.5, -2.25, 0, // exactly representable
	}
	dst := Narrow(src)
	back := Widen(dst)
	if !math.IsNaN(back[0]) {
		t.Error("NaN did not survive the narrow/widen round trip")
	}
	if !math.IsInf(back[1], 1) || !math.IsInf(back[2], -1) {
		t.Error("±Inf did not survive the round trip")
	}
	if !math.IsInf(back[3], 1) || !math.IsInf(back[4], -1) {
		t.Error("beyond-MaxFloat32 values must overflow to ±Inf")
	}
	if back[5] != 0 || back[6] != 0 {
		t.Error("sub-f32-range values must flush to zero")
	}
	for i := 7; i < 10; i++ {
		if back[i] != src[i] {
			t.Errorf("exactly-representable value %v round-tripped to %v", src[i], back[i])
		}
	}
	if got := Widen(Narrow([]float64{3.5})); got[0] != 3.5 {
		t.Error("representable scalar drifted")
	}
}
