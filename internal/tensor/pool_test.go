package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPoolClassSizing(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11},
		{1 << maxPoolClass, maxPoolClass},
		{1<<maxPoolClass + 1, -1},
	}
	for _, c := range cases {
		if got := poolClass(c.n); got != c.class {
			t.Errorf("poolClass(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetPutReusesStorageLIFO(t *testing.T) {
	a := GetTensor(33, 7)
	data := &a.Data[0]
	PutTensor(a)
	b := GetTensor(7, 33) // same size class, different shape
	if &b.Data[0] != data {
		t.Fatal("pooled storage was not reused LIFO")
	}
	if b.Shape[0] != 7 || b.Shape[1] != 33 || len(b.Data) != 231 {
		t.Fatalf("reused tensor has shape %v, len %d; want [7 33], 231", b.Shape, len(b.Data))
	}
	PutTensor(b)
}

func TestPutTensorRespectsClassCap(t *testing.T) {
	const n = 64 // class 6
	c := poolClass(n)
	// Drain the class so the test owns its state.
	var drained []*Tensor
	for {
		p := &scratchPools[c]
		p.mu.Lock()
		empty := len(p.free) == 0
		p.mu.Unlock()
		if empty {
			break
		}
		drained = append(drained, GetTensor(n))
	}
	held := make([]*Tensor, 0, classCap(c)+5)
	for i := 0; i < classCap(c)+5; i++ {
		held = append(held, &Tensor{Shape: []int{n}, Data: make([]float64, 1<<c)[:n]})
	}
	for _, h := range held {
		PutTensor(h)
	}
	p := &scratchPools[c]
	p.mu.Lock()
	got := len(p.free)
	p.mu.Unlock()
	if got != classCap(c) {
		t.Fatalf("class %d retains %d buffers, want cap %d", c, got, classCap(c))
	}
	for _, d := range drained {
		PutTensor(d)
	}
}

func TestGetTensorOverflowFallsThrough(t *testing.T) {
	n := 1<<maxPoolClass + 1
	x := GetTensor(n)
	if len(x.Data) != n || x.Shape[0] != n {
		t.Fatalf("overflow tensor has len %d shape %v", len(x.Data), x.Shape)
	}
	PutTensor(x) // must be a no-op, not a pool entry with a foreign capacity
	y := GetTensor(16)
	if cap(y.Data) != 16 {
		t.Fatalf("pool handed out a buffer with capacity %d from class 4", cap(y.Data))
	}
	PutTensor(y)
}

// TestPoolConcurrentGetPut exercises the freelist locking under -race.
func TestPoolConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				x := GetTensor(1+rng.Intn(64), 1+rng.Intn(64))
				x.Data[0] = float64(i)
				PutTensor(x)
			}
		}(int64(w))
	}
	wg.Wait()
}
