package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if got := x.Size(); got != 24 {
		t.Fatalf("Size() = %d, want 24", got)
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := x.Data[2*4+1]; got != 7.5 {
		t.Fatalf("flat layout wrong: Data[9] = %v, want 7.5", got)
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 0, 3)
	if got := x.At(0, 3); got != 5 {
		t.Fatalf("reshape does not share data: got %v, want 5", got)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)

	tests := []struct {
		name string
		got  *Tensor
		want []float64
	}{
		{"Add", Add(a, b), []float64{6, 8, 10, 12}},
		{"Sub", Sub(a, b), []float64{-4, -4, -4, -4}},
		{"Mul", Mul(a, b), []float64{5, 12, 21, 32}},
		{"Scale", Scale(a, 2), []float64{2, 4, 6, 8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i, v := range tt.want {
				if tt.got.Data[i] != v {
					t.Fatalf("%s[%d] = %v, want %v", tt.name, i, tt.got.Data[i], v)
				}
			}
		})
	}
}

func TestAxpyInPlace(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	AxpyInPlace(a, 0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("AxpyInPlace = %v, want [6 12]", a.Data)
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float64{-2, 0.5, 3}, 3)
	c := Clamp(a, 0, 1)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Clamp[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
	if a.Data[0] != -2 {
		t.Fatal("Clamp mutated its input")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, 1}, 4)
	if got := a.Sum(); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
	if got := a.Mean(); got != 1.75 {
		t.Errorf("Mean = %v, want 1.75", got)
	}
	if got := a.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := a.Min(); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := a.Argmax(); got != 2 {
		t.Errorf("Argmax = %v, want 2", got)
	}
	if got := a.L1Norm(); got != 9 {
		t.Errorf("L1Norm = %v, want 9", got)
	}
	if got := a.L2Norm(); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Errorf("L2Norm = %v, want sqrt(27)", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// naiveMatMul is the reference implementation for property testing.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a, b := New(m, k), New(k, n)
		a.RandNormal(r, 0, 1)
		b.RandNormal(r, 0, 1)
		return Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := New(70, 70), New(70, 70)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)
	if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul diverges from naive reference")
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := New(5, 7), New(5, 4) // aᵀ·b : (7×5)(5×4)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulTransA diverges from Transpose+MatMul")
	}

	c, d := New(6, 3), New(8, 3) // c·dᵀ : (6×3)(3×8)
	c.RandNormal(rng, 0, 1)
	d.RandNormal(rng, 0, 1)
	got2 := MatMulTransB(c, d)
	want2 := MatMul(c, Transpose(d))
	if !Equal(got2, want2, 1e-12) {
		t.Fatal("MatMulTransB diverges from MatMul+Transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(15), 1+r.Intn(15)
		a := New(m, n)
		a.RandNormal(r, 0, 1)
		return Equal(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.Data[0] != -2 || y.Data[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", y.Data)
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if good.OutH() != 8 || good.OutW() != 8 {
		t.Fatalf("same-padding geometry output = %dx%d, want 8x8", good.OutH(), good.OutW())
	}
	bad := []ConvGeom{
		{InC: 0, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 0},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: -1},
		{InC: 3, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

// naiveConv computes convolution directly for the im2col cross-check.
func naiveConv(x *Tensor, w *Tensor, g ConvGeom) *Tensor {
	n := x.Shape[0]
	outC := w.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	out := New(n, outC, oh, ow)
	for b := 0; b < n; b++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for c := 0; c < g.InC; c++ {
						for ky := 0; ky < g.KH; ky++ {
							for kx := 0; kx < g.KW; kx++ {
								iy := oy*g.Stride + ky - g.Pad
								ix := ox*g.Stride + kx - g.Pad
								if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
									s += x.At(b, c, iy, ix) * w.At(oc, c, ky, kx)
								}
							}
						}
					}
					out.Set(s, b, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := ConvGeom{InC: 3, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	n, outC := 2, 4
	x := New(n, g.InC, g.InH, g.InW)
	w := New(outC, g.InC, g.KH, g.KW)
	x.RandNormal(rng, 0, 1)
	w.RandNormal(rng, 0, 1)

	cols := Im2Col(x, g)
	wm := w.Reshape(outC, g.InC*g.KH*g.KW)
	prod := MatMulTransB(cols, wm) // [n*oh*ow, outC]

	oh, ow := g.OutH(), g.OutW()
	got := New(n, outC, oh, ow)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for oc := 0; oc < outC; oc++ {
					got.Set(prod.At((b*oh+oy)*ow+ox, oc), b, oc, oy, ox)
				}
			}
		}
	}
	want := naiveConv(x, w, g)
	if !Equal(got, want, 1e-9) {
		t.Fatal("im2col-based convolution diverges from naive convolution")
	}
}

func TestIm2ColStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := ConvGeom{InC: 2, InH: 7, InW: 7, KH: 3, KW: 3, Stride: 2, Pad: 1}
	x := New(1, g.InC, g.InH, g.InW)
	w := New(3, g.InC, g.KH, g.KW)
	x.RandNormal(rng, 0, 1)
	w.RandNormal(rng, 0, 1)
	cols := Im2Col(x, g)
	if cols.Shape[0] != g.OutH()*g.OutW() || cols.Shape[1] != g.InC*g.KH*g.KW {
		t.Fatalf("Im2Col shape = %v, want [%d %d]", cols.Shape, g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	}
}

// TestCol2ImAdjoint checks the defining adjoint property
// <Im2Col(x), c> == <x, Col2Im(c)> for random x and c, which is exactly
// what the conv backward pass relies on.
func TestCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ConvGeom{
			InC: 1 + r.Intn(3), InH: 4 + r.Intn(4), InW: 4 + r.Intn(4),
			KH: 1 + r.Intn(3), KW: 1 + r.Intn(3), Stride: 1 + r.Intn(2), Pad: r.Intn(2),
		}
		if g.Validate() != nil {
			return true // skip degenerate draws
		}
		n := 1 + r.Intn(2)
		x := New(n, g.InC, g.InH, g.InW)
		x.RandNormal(r, 0, 1)
		cols := Im2Col(x, g)
		c := New(cols.Shape...)
		c.RandNormal(r, 0, 1)
		lhs := Dot(cols, c)
		rhs := Dot(x, Col2Im(c, n, g))
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := New(10000)
	x.HeInit(rng, 50)
	std := math.Sqrt(2.0 / 50.0)
	var s, s2 float64
	for _, v := range x.Data {
		s += v
		s2 += v * v
	}
	mean := s / float64(len(x.Data))
	sampleStd := math.Sqrt(s2/float64(len(x.Data)) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("HeInit mean = %v, want ≈0", mean)
	}
	if math.Abs(sampleStd-std) > 0.02 {
		t.Errorf("HeInit std = %v, want ≈%v", sampleStd, std)
	}

	y := New(1000)
	y.XavierInit(rng, 30, 70)
	limit := math.Sqrt(6.0 / 100.0)
	if y.Max() > limit || y.Min() < -limit {
		t.Errorf("XavierInit out of range [%v, %v]: [%v, %v]", -limit, limit, y.Min(), y.Max())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing data")
	}
}
