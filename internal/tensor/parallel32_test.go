package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// TestMatMul32DeterministicAcrossWorkers pins the f32 tier's determinism
// contract: the blocked GEMM partitions rows but never splits a k-sum
// across workers, so the product must be BIT-identical at any GOMAXPROCS.
func TestMatMul32DeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Big enough to clear parallelThreshold and span several mr-chunks.
	m, k, n := 96, 310, 530
	a, b := randMat32(rng, m, k), randMat32(rng, k, n)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	ref := MatMul32(a, b)

	for _, workers := range []int{2, 3, 5, 8} {
		runtime.GOMAXPROCS(workers)
		got := MatMul32(a, b)
		for i := range ref.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(ref.Data[i]) {
				t.Fatalf("GOMAXPROCS=%d: element %d differs in bits from the serial run", workers, i)
			}
		}
	}
}

// TestMixedGEMMDeterministicAcrossWorkers runs the same sweep through the
// f64 entry point under the F32 policy — the mixed narrow/compute/widen
// pipeline must also be bit-reproducible at any worker count.
func TestMixedGEMMDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, k, n := 96, 300, 520
	a, b := New(m, k), New(k, n)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)

	SetPrecision(F32)
	defer SetPrecision(F64)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	ref := MatMul(a, b)

	for _, workers := range []int{2, 3, 5, 8} {
		runtime.GOMAXPROCS(workers)
		got := MatMul(a, b)
		for i := range ref.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(ref.Data[i]) {
				t.Fatalf("GOMAXPROCS=%d: mixed-precision element %d differs in bits", workers, i)
			}
		}
	}
}

// TestMatMul32ParallelMatchesSerialEdgeChunks checks row partitioning at
// shapes where m barely exceeds one mr-aligned chunk per worker, the spot
// where off-by-one partitioning bugs live.
func TestMatMul32ParallelMatchesSerialEdgeChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	for _, m := range []int{5, 8, 9, 13} {
		k, n := 128, 600 // volume past parallelThreshold even for small m
		a, b := randMat32(rng, m, k), randMat32(rng, k, n)
		runtime.GOMAXPROCS(1)
		ref := MatMul32(a, b)
		runtime.GOMAXPROCS(4)
		got := MatMul32(a, b)
		for i := range ref.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(ref.Data[i]) {
				t.Fatalf("m=%d: parallel run differs from serial at element %d", m, i)
			}
		}
	}
}
