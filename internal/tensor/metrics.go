package tensor

import (
	"sync/atomic"
	"time"

	"github.com/cip-fl/cip/internal/telemetry"
)

// Kernel-layer observability: the package always keeps cheap atomic
// counters (a few adds per conv call), and EnableMetrics additionally
// mirrors them into a telemetry.Registry so GEMM throughput and pool
// behavior show up on /metrics next to the federation gauges.

// gemmTimedVolume is the m*n*k volume above which GEMM wall time is
// measured for the GFLOP/s gauge. Small products skip the clock entirely.
const gemmTimedVolume = parallelThreshold

// hotCounter is an always-on atomic counter with an optional telemetry
// mirror, attachable at runtime (EnableMetrics may race with kernels, so
// the mirror pointer is atomic).
type hotCounter struct {
	v      atomic.Uint64
	mirror atomic.Pointer[telemetry.Counter]
}

func (c *hotCounter) inc() {
	c.v.Add(1)
	if m := c.mirror.Load(); m != nil {
		m.Inc()
	}
}

func (c *hotCounter) value() uint64 { return c.v.Load() }

func (c *hotCounter) attach(m *telemetry.Counter) {
	if m != nil {
		c.mirror.Store(m)
	}
}

var (
	poolGets   hotCounter
	poolMisses hotCounter
	poolPuts   hotCounter

	gemmOps       hotCounter
	gemmFlopTotal atomic.Uint64 // raw FLOPs; mirrored as a counter

	gemmFlopCounter atomic.Pointer[telemetry.Counter]
	gemmGFLOPS      atomic.Pointer[telemetry.Gauge]
)

// recordGEMM accounts one timed GEMM: 2*m*n*k FLOPs over dur.
func recordGEMM(vol int, dur time.Duration) {
	flops := uint64(2 * vol)
	gemmOps.inc()
	gemmFlopTotal.Add(flops)
	if m := gemmFlopCounter.Load(); m != nil {
		m.Add(flops)
	}
	if g := gemmGFLOPS.Load(); g != nil && dur > 0 {
		g.Set(float64(flops) / dur.Seconds() / 1e9)
	}
}

// EnableMetrics mirrors the kernel counters into reg:
//
//	tensor_gemm_gflops              gauge   throughput of the last large GEMM
//	tensor_gemm_flops_total         counter FLOPs executed by timed GEMMs
//	tensor_gemm_ops_total           counter timed GEMM invocations
//	tensor_pool_gets_total          counter scratch-arena Get calls
//	tensor_pool_misses_total        counter Gets that had to allocate
//	tensor_pool_puts_total          counter buffers returned to the arena
//
// Pool hit rate = 1 - misses/gets. A nil registry is a no-op. Safe to call
// while kernels are running; counts observed before the call are not
// replayed into the registry.
func EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	gemmGFLOPS.Store(reg.Gauge("tensor_gemm_gflops",
		"Throughput of the most recent large GEMM, in GFLOP/s."))
	gemmFlopCounter.Store(reg.Counter("tensor_gemm_flops_total",
		"Floating-point operations executed by timed GEMMs."))
	gemmOps.attach(reg.Counter("tensor_gemm_ops_total",
		"Timed GEMM invocations."))
	poolGets.attach(reg.Counter("tensor_pool_gets_total",
		"Scratch-arena GetTensor calls."))
	poolMisses.attach(reg.Counter("tensor_pool_misses_total",
		"GetTensor calls that allocated because no pooled buffer fit."))
	poolPuts.attach(reg.Counter("tensor_pool_puts_total",
		"Buffers returned to the scratch arena."))
}

// PoolStats reports the scratch arena's lifetime Get/miss/Put counts —
// the pool hit rate is 1 - misses/gets.
func PoolStats() (gets, misses, puts uint64) {
	return poolGets.value(), poolMisses.value(), poolPuts.value()
}

// GEMMStats reports how many large GEMMs ran and their total FLOPs.
func GEMMStats() (ops, flops uint64) {
	return gemmOps.value(), gemmFlopTotal.Load()
}

// HasFMAKernel reports whether the AVX2+FMA assembly micro-kernel is
// active on this CPU (false on non-amd64 builds or older hardware).
func HasFMAKernel() bool { return hasFMAKernel }

// KernelFeatures lists the SIMD features the active micro-kernels use on
// this host ("avx2"/"fma" on capable amd64, "neon" on arm64, empty on the
// portable build) — recorded in the bench reports so BENCH_*.json says
// which compute tier produced it.
func KernelFeatures() []string { return kernelFeatures() }
