package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution. Images are stored
// NCHW (batch, channels, height, width) and kernels OIHW.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	KH, KW        int // kernel height / width
	Stride, Pad   int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate returns an error when the geometry is degenerate.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive dims: %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got %d", g.Stride)
	}
	if g.Pad < 0 {
		return fmt.Errorf("tensor: conv pad must be non-negative, got %d", g.Pad)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry yields empty output: %+v", g)
	}
	return nil
}

// Im2Col lowers a batch of NCHW images x (shape [N, C, H, W]) into a matrix
// of shape [N*OutH*OutW, C*KH*KW], so that convolution becomes one matmul
// against the reshaped kernel.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	n := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	cols := New(n*oh*ow, g.InC*g.KH*g.KW)
	rowLen := g.InC * g.KH * g.KW
	imgLen := g.InC * g.InH * g.InW

	parallelRows(n, n*oh*ow*rowLen, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			img := x.Data[b*imgLen : (b+1)*imgLen]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := cols.Data[((b*oh+oy)*ow+ox)*rowLen : ((b*oh+oy)*ow+ox+1)*rowLen]
					idx := 0
					for c := 0; c < g.InC; c++ {
						chOff := c * g.InH * g.InW
						for ky := 0; ky < g.KH; ky++ {
							iy := oy*g.Stride + ky - g.Pad
							for kx := 0; kx < g.KW; kx++ {
								ix := ox*g.Stride + kx - g.Pad
								if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
									row[idx] = img[chOff+iy*g.InW+ix]
								} else {
									row[idx] = 0
								}
								idx++
							}
						}
					}
				}
			}
		}
	})
	return cols
}

// Col2Im scatters a columns matrix (as produced by Im2Col) back into an
// NCHW image tensor, accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used in the convolution backward pass.
func Col2Im(cols *Tensor, n int, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	out := New(n, g.InC, g.InH, g.InW)
	imgLen := g.InC * g.InH * g.InW

	// Accumulation into overlapping pixels makes per-batch parallelism the
	// only safe fan-out (rows within one image overlap).
	parallelRows(n, n*oh*ow*rowLen, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			img := out.Data[b*imgLen : (b+1)*imgLen]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := cols.Data[((b*oh+oy)*ow+ox)*rowLen : ((b*oh+oy)*ow+ox+1)*rowLen]
					idx := 0
					for c := 0; c < g.InC; c++ {
						chOff := c * g.InH * g.InW
						for ky := 0; ky < g.KH; ky++ {
							iy := oy*g.Stride + ky - g.Pad
							for kx := 0; kx < g.KW; kx++ {
								ix := ox*g.Stride + kx - g.Pad
								if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
									img[chOff+iy*g.InW+ix] += row[idx]
								}
								idx++
							}
						}
					}
				}
			}
		}
	})
	return out
}
