package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution. Images are stored
// NCHW (batch, channels, height, width) and kernels OIHW.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	KH, KW        int // kernel height / width
	Stride, Pad   int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate returns an error when the geometry is degenerate.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive dims: %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got %d", g.Stride)
	}
	if g.Pad < 0 {
		return fmt.Errorf("tensor: conv pad must be non-negative, got %d", g.Pad)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry yields empty output: %+v", g)
	}
	return nil
}

// Im2Col lowers a batch of NCHW images x (shape [N, C, H, W]) into a matrix
// of shape [N*OutH*OutW, C*KH*KW], so that convolution becomes one matmul
// against the reshaped kernel.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	n := x.Shape[0]
	return Im2ColInto(New(n*g.OutH()*g.OutW(), g.InC*g.KH*g.KW), x, g)
}

// Im2ColInto is Im2Col writing into a caller-supplied (typically pooled)
// destination of shape [N*OutH*OutW, C*KH*KW]. Every element of dst is
// overwritten, so an uninitialized pooled buffer is fine. Returns dst.
func Im2ColInto(cols, x *Tensor, g ConvGeom) *Tensor {
	n := x.Shape[0]
	oh, ow := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	checkDst("Im2ColInto", cols, n*oh*ow, rowLen)

	if vol := n * oh * ow * rowLen; rowWorkers(n, vol) < 2 {
		im2colRange(cols, x, g, 0, n)
	} else {
		parallelRows(n, vol, func(lo, hi int) { im2colRange(cols, x, g, lo, hi) })
	}
	return cols
}

// im2colRange lowers images [lo, hi) of the batch. Per (oy, ox, ky) the
// in-bounds kx run [klo, khi) is computed once and shared by every channel,
// so the inner loops carry no bounds checks; runs are short (KW elements),
// so they are copied with explicit loops rather than memmove calls.
func im2colRange(cols, x *Tensor, g ConvGeom, lo, hi int) {
	oh, ow := g.OutH(), g.OutW()
	khkw := g.KH * g.KW
	rowLen := g.InC * khkw
	chLen := g.InH * g.InW
	imgLen := g.InC * chLen
	for b := lo; b < hi; b++ {
		img := x.Data[b*imgLen : (b+1)*imgLen]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((b*oh+oy)*ow+ox)*rowLen : ((b*oh+oy)*ow+ox+1)*rowLen]
				ix0 := ox*g.Stride - g.Pad
				klo, khi := 0, g.KW
				if ix0 < 0 {
					klo = -ix0
				}
				if ix0+g.KW > g.InW {
					khi = g.InW - ix0
				}
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					base := ky * g.KW
					if iy < 0 || iy >= g.InH {
						for c := 0; c < g.InC; c++ {
							r := row[c*khkw+base : c*khkw+base+g.KW]
							for kx := range r {
								r[kx] = 0
							}
						}
						continue
					}
					rowOff := iy * g.InW
					for c := 0; c < g.InC; c++ {
						r := row[c*khkw+base : c*khkw+base+g.KW]
						src := img[c*chLen+rowOff:]
						for kx := 0; kx < klo; kx++ {
							r[kx] = 0
						}
						for kx := klo; kx < khi; kx++ {
							r[kx] = src[ix0+kx]
						}
						for kx := khi; kx < g.KW; kx++ {
							r[kx] = 0
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters a columns matrix (as produced by Im2Col) back into an
// NCHW image tensor, accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used in the convolution backward pass.
func Col2Im(cols *Tensor, n int, g ConvGeom) *Tensor {
	return Col2ImInto(New(n, g.InC, g.InH, g.InW), cols, n, g)
}

// Col2ImInto is Col2Im writing into a caller-supplied destination of shape
// [N, InC, InH, InW]. dst is zeroed before accumulation, so a pooled
// buffer is fine. Returns dst.
func Col2ImInto(out, cols *Tensor, n int, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if out.Dims() != 4 || out.Shape[0] != n || out.Shape[1] != g.InC ||
		out.Shape[2] != g.InH || out.Shape[3] != g.InW {
		panic(fmt.Sprintf("tensor: Col2ImInto destination shape %v, want [%d %d %d %d]",
			out.Shape, n, g.InC, g.InH, g.InW))
	}
	out.Zero()

	// Accumulation into overlapping pixels makes per-batch parallelism the
	// only safe fan-out (rows within one image overlap).
	if vol := n * oh * ow * rowLen; rowWorkers(n, vol) < 2 {
		col2imRange(out, cols, g, 0, n)
	} else {
		parallelRows(n, vol, func(lo, hi int) { col2imRange(out, cols, g, lo, hi) })
	}
	return out
}

// col2imRange scatters columns for images [lo, hi) of the batch, the
// mirror of im2colRange's loop structure with loads and stores swapped:
// the in-bounds kx run is computed once per output position and the
// channel-inner loops accumulate without bounds checks.
func col2imRange(out, cols *Tensor, g ConvGeom, lo, hi int) {
	oh, ow := g.OutH(), g.OutW()
	khkw := g.KH * g.KW
	rowLen := g.InC * khkw
	chLen := g.InH * g.InW
	imgLen := g.InC * chLen
	for b := lo; b < hi; b++ {
		img := out.Data[b*imgLen : (b+1)*imgLen]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((b*oh+oy)*ow+ox)*rowLen : ((b*oh+oy)*ow+ox+1)*rowLen]
				ix0 := ox*g.Stride - g.Pad
				klo, khi := 0, g.KW
				if ix0 < 0 {
					klo = -ix0
				}
				if ix0+g.KW > g.InW {
					khi = g.InW - ix0
				}
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					base := ky * g.KW
					rowOff := iy * g.InW
					for c := 0; c < g.InC; c++ {
						r := row[c*khkw+base : c*khkw+base+g.KW]
						dst := img[c*chLen+rowOff:]
						for kx := klo; kx < khi; kx++ {
							dst[ix0+kx] += r[kx]
						}
					}
				}
			}
		}
	}
}
