package defenses

import (
	"math"
	"math/rand"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// AdvRegStep implements adversarial regularization (Nasr et al., CCS'18):
// an inference network h is trained to distinguish the target model's
// softmax outputs on training members from its outputs on reference
// (non-member) data, and the target model's loss gains a term
// λ·log h(member outputs) that penalizes being distinguishable. Raising
// Lambda trades accuracy for membership privacy — the knob the paper
// sweeps in Fig. 6.
type AdvRegStep struct {
	// Lambda is the privacy/utility knob λ.
	Lambda float64
	// Reference is held-out non-member data used to ground the inference
	// network's "non-member" class.
	Reference *datasets.Dataset

	attack *nn.Sequential // inference network h
	attOpt *nn.Adam
	rng    *rand.Rand
	k      int // number of classes
}

// NewAdvRegStep builds an adversarial-regularization step. reference must
// be disjoint from the training data.
func NewAdvRegStep(lambda float64, reference *datasets.Dataset, numClasses int,
	rng *rand.Rand) *AdvRegStep {
	r := rand.New(rand.NewSource(rng.Int63()))
	// h takes [softmax(x) ‖ one-hot(y)] and scores membership (2 logits).
	attack := nn.NewSequential(
		nn.NewDense(r, 2*numClasses, 64),
		nn.ReLU{},
		nn.NewDense(r, 64, 2),
	)
	return &AdvRegStep{
		Lambda:    lambda,
		Reference: reference,
		attack:    attack,
		attOpt:    nn.NewAdam(1e-3),
		rng:       r,
		k:         numClasses,
	}
}

// attackInput concatenates softmax probabilities and label one-hots.
func (s *AdvRegStep) attackInput(probs *tensor.Tensor, y []int) *tensor.Tensor {
	n := probs.Shape[0]
	out := tensor.New(n, 2*s.k)
	for i := 0; i < n; i++ {
		copy(out.Data[i*2*s.k:], probs.Data[i*s.k:(i+1)*s.k])
		out.Data[i*2*s.k+s.k+y[i]] = 1
	}
	return out
}

// Step implements fl.TrainStep: first one update of the inference network,
// then the target update with the adversarial penalty.
func (s *AdvRegStep) Step(net nn.Layer, opt nn.Optimizer, x *tensor.Tensor, y []int) float64 {
	n := x.Shape[0]

	// Draw a reference batch of the same size.
	refIdx := make([]int, n)
	for i := range refIdx {
		refIdx[i] = s.rng.Intn(s.Reference.Len())
	}
	ref := s.Reference.Subset(refIdx)
	rx, ry := ref.Batch(0, ref.Len())

	// --- Phase 1: train the inference network h. ---
	memLogits, _ := net.Forward(x, false)
	memProbs := nn.Softmax(memLogits)
	refLogits, _ := net.Forward(rx, false)
	refProbs := nn.Softmax(refLogits)

	attIn := concatRows(s.attackInput(memProbs, y), s.attackInput(refProbs, ry))
	attLabels := make([]int, 2*n)
	for i := 0; i < n; i++ {
		attLabels[i] = 1 // member
	}
	nn.ZeroGrads(s.attack.Params())
	attOut, attCache := s.attack.Forward(attIn, true)
	attRes := nn.SoftmaxCrossEntropy(attOut, attLabels)
	s.attack.Backward(attCache, attRes.Grad)
	s.attOpt.Step(s.attack.Params())

	// --- Phase 2: train the target model. ---
	nn.ZeroGrads(net.Params())
	logits, cache := net.Forward(x, true)
	res := nn.SoftmaxCrossEntropy(logits, y)

	// Gradient of λ·mean(log h_member(softmax(z))) with respect to logits,
	// chained through h and the softmax. Minimizing it makes members look
	// like reference data to h.
	probs := nn.Softmax(logits)
	hIn := s.attackInput(probs, y)
	hOut, hCache := s.attack.Forward(hIn, true)
	hProbs := nn.Softmax(hOut)
	// d/d hOut of mean(log p_member): via softmax-CE identity, for target
	// class "member"(=1): (p − onehot)/n would be CE's grad; log p_member's
	// gradient is the negative of that.
	gradH := tensor.New(hOut.Shape...)
	for i := 0; i < n; i++ {
		p := hProbs.Data[i*2 : (i+1)*2]
		gradH.Data[i*2] = p[0] / float64(n)         // −(0 − p0)/n
		gradH.Data[i*2+1] = (p[1] - 1) / float64(n) // −(1 − p1)/n ... sign folded below
	}
	// gradH currently holds d/d hOut of −mean(log p_member); scale by −λ to
	// get d/d hOut of λ·mean(log p_member)·(−1) — the target minimizes
	// CE + λ·log h, so the penalty gradient is +λ·d(log h)/dθ.
	nn.ZeroGrads(s.attack.Params()) // discard h grads from this pass
	gradHIn := s.attack.Backward(hCache, tensor.Scale(gradH, -s.Lambda))
	nn.ZeroGrads(s.attack.Params())

	// Only the first k columns of h's input came from softmax(logits).
	gradProbs := tensor.New(n, s.k)
	for i := 0; i < n; i++ {
		copy(gradProbs.Data[i*s.k:(i+1)*s.k], gradHIn.Data[i*2*s.k:i*2*s.k+s.k])
	}
	penaltyGrad := softmaxBackward(probs, gradProbs)

	total := tensor.Add(res.Grad, penaltyGrad)
	nn.TrainBackward(net, cache, total)
	opt.Step(net.Params())

	// Report the combined objective value for monitoring.
	var pen float64
	for i := 0; i < n; i++ {
		pen += math.Log(math.Max(hProbs.Data[i*2+1], 1e-12))
	}
	return res.Loss + s.Lambda*pen/float64(n)
}

func concatRows(a, b *tensor.Tensor) *tensor.Tensor {
	na, nb, d := a.Shape[0], b.Shape[0], a.Shape[1]
	out := tensor.New(na+nb, d)
	copy(out.Data, a.Data)
	copy(out.Data[na*d:], b.Data)
	return out
}
