package defenses

import (
	"math/rand"

	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// FrozenFeatures is a fixed, non-learned random-feature frontend
// (flatten → random projection → ReLU). It stands in for Handcrafted-DP's
// ScatterNet features: because the frontend has no trainable parameters,
// DP noise is only paid on the small linear head, which is why HDP's
// accuracy/ε curve dominates plain DP's (Fig. 4, Fig. 6).
//
// The projection is derived deterministically from a seed so every FL
// client shares the same frontend and FedAvg aggregates only head
// parameters.
type FrozenFeatures struct {
	W *tensor.Tensor // [features, inputSize], fixed
}

// NewFrozenFeatures builds a frontend with the given output feature count.
func NewFrozenFeatures(seed int64, in model.Input, features int) *FrozenFeatures {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(features, in.Size())
	w.HeInit(rng, in.Size())
	return &FrozenFeatures{W: w}
}

type frozenCache struct{}

// Forward computes relu(W·flatten(x)ᵀ).
func (f *FrozenFeatures) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, nn.Cache) {
	n := x.Shape[0]
	flat := x.Reshape(n, x.Size()/n)
	out := tensor.MatMulTransB(flat, f.W)
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out, frozenCache{}
}

// Backward returns a zero gradient: the frontend is frozen and always the
// first layer, so nothing upstream consumes its input gradient.
func (f *FrozenFeatures) Backward(_ nn.Cache, grad *tensor.Tensor) *tensor.Tensor {
	return tensor.New(grad.Shape[0], f.W.Shape[1])
}

// Params returns nil: frozen features are not trained and not aggregated.
func (f *FrozenFeatures) Params() []*nn.Param { return nil }

// NewHDPClassifier builds the Handcrafted-DP model: frozen features plus a
// trainable linear head. Train it with a DPStep to realize HDP.
func NewHDPClassifier(rng *rand.Rand, frontendSeed int64, in model.Input,
	features, numClasses int) *nn.Sequential {
	return nn.NewSequential(
		NewFrozenFeatures(frontendSeed, in, features),
		nn.NewDense(rng, features, numClasses),
	)
}

var _ nn.Layer = (*FrozenFeatures)(nil)
