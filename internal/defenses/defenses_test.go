package defenses

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

func easyData(t *testing.T, seed int64) (*datasets.Dataset, *datasets.Dataset) {
	t.Helper()
	train, test, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 3, Train: 60, Test: 60, C: 1, H: 6, W: 6,
		Signal: 0.5, Noise: 0.15, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func trainWith(t *testing.T, step fl.TrainStep, train *datasets.Dataset, epochs int) nn.Layer {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	net := model.NewClassifier(rng, model.VGG, train.In, train.NumClasses)
	opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	cfg := fl.ClientConfig{BatchSize: 16}
	for e := 0; e < epochs; e++ {
		if _, err := fl.TrainEpochs(net, opt, step, train, cfg, rng); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestDPStepNoNoiseMatchesClippedDescent(t *testing.T) {
	train, _ := easyData(t, 1)
	rng := rand.New(rand.NewSource(2))
	step := NewDPStep(1000, 0, 1, rng) // huge clip, zero noise ≈ plain SGD
	x, y := train.Batch(0, 16)

	netA := model.NewClassifier(rand.New(rand.NewSource(3)), model.VGG, train.In, train.NumClasses)
	netB := model.NewClassifier(rand.New(rand.NewSource(3)), model.VGG, train.In, train.NumClasses)
	optA := nn.NewSGD(0.05)
	optB := nn.NewSGD(0.05)

	// Per-example averaging of per-example gradients equals the batch
	// gradient, so with no clipping and no noise the updates coincide.
	step.Step(netA, optA, x, y)
	fl.PlainStep{}.Step(netB, optB, x, y)

	pa := nn.FlattenParams(netA.Params())
	pb := nn.FlattenParams(netB.Params())
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-9 {
			t.Fatalf("DP(σ=0, C=∞) diverged from plain SGD at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestDPStepClipBoundsUpdateNorm(t *testing.T) {
	train, _ := easyData(t, 2)
	rng := rand.New(rand.NewSource(4))
	const clip = 0.01
	step := NewDPStep(clip, 0, 1, rng)
	net := model.NewClassifier(rand.New(rand.NewSource(5)), model.VGG, train.In, train.NumClasses)
	before := nn.FlattenParams(net.Params())
	opt := nn.NewSGD(1.0)
	x, y := train.Batch(0, 8)
	step.Step(net, opt, x, y)
	after := nn.FlattenParams(net.Params())
	var sq float64
	for i := range before {
		d := after[i] - before[i]
		sq += d * d
	}
	// Mean of 8 clipped per-example grads has norm ≤ clip; lr=1.
	if norm := math.Sqrt(sq); norm > clip+1e-9 {
		t.Fatalf("DP update norm %v exceeds clip %v", norm, clip)
	}
}

func TestDPNoiseDestroysUtilityMonotonically(t *testing.T) {
	train, test := easyData(t, 3)
	rng := rand.New(rand.NewSource(6))
	accLow := fl.Evaluate(trainWith(t, NewDPStep(1.0, 0.05, 4, rng), train, 12), test, 32)
	accHigh := fl.Evaluate(trainWith(t, NewDPStep(1.0, 20.0, 4, rng), train, 12), test, 32)
	if accLow < 0.5 {
		t.Fatalf("low-noise DP accuracy %v, want ≥0.5 on easy data", accLow)
	}
	if accHigh > accLow-0.15 {
		t.Fatalf("high noise should hurt accuracy: low σ %v vs high σ %v", accLow, accHigh)
	}
}

func TestNoiseMultiplierForCalibration(t *testing.T) {
	s1 := NoiseMultiplierFor(1, 1e-5, 100)
	s8 := NoiseMultiplierFor(8, 1e-5, 100)
	s128 := NoiseMultiplierFor(128, 1e-5, 100)
	if !(s1 > s8 && s8 > s128) {
		t.Fatalf("σ should fall as ε grows: σ(1)=%v σ(8)=%v σ(128)=%v", s1, s8, s128)
	}
	if more := NoiseMultiplierFor(8, 1e-5, 1000); more <= s8 {
		t.Fatalf("σ should grow with steps: %v vs %v", more, s8)
	}
	if NoiseMultiplierFor(0, 1e-5, 10) != 0 || NoiseMultiplierFor(1, 0, 10) != 0 {
		t.Fatal("degenerate budgets should disable noise, not panic")
	}
}

func TestHDPSharedFrontendDeterministic(t *testing.T) {
	in := model.Input{C: 1, H: 6, W: 6}
	a := NewFrozenFeatures(42, in, 32)
	b := NewFrozenFeatures(42, in, 32)
	if !tensor.Equal(a.W, b.W, 0) {
		t.Fatal("same seed should give identical frozen frontends")
	}
	c := NewFrozenFeatures(43, in, 32)
	if tensor.Equal(a.W, c.W, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestHDPOnlyHeadIsTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := model.Input{C: 1, H: 6, W: 6}
	net := NewHDPClassifier(rng, 42, in, 32, 3)
	want := 32*3 + 3 // dense head only
	if got := nn.NumParams(net.Params()); got != want {
		t.Fatalf("HDP trainable params = %d, want %d", got, want)
	}
}

func TestHDPLearnsUnderDP(t *testing.T) {
	train, test := easyData(t, 8)
	rng := rand.New(rand.NewSource(9))
	net := NewHDPClassifier(rng, 42, train.In, 64, train.NumClasses)
	opt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	step := NewDPStep(1.0, 0.3, 4, rng)
	for e := 0; e < 20; e++ {
		if _, err := fl.TrainEpochs(net, opt, step, train, fl.ClientConfig{BatchSize: 16}, rng); err != nil {
			t.Fatal(err)
		}
	}
	if acc := fl.Evaluate(net, test, 32); acc < 0.45 {
		t.Fatalf("HDP accuracy under DP noise = %v, want ≥0.45", acc)
	}
}

// TestHDPBeatsPlainDPAtSameNoise reproduces the paper's core HDP claim:
// at identical noise levels, training only a head over frozen features
// yields better accuracy than DP training of the full model.
func TestHDPBeatsPlainDPAtSameNoise(t *testing.T) {
	train, test := easyData(t, 10)
	rng := rand.New(rand.NewSource(11))
	const sigma = 1.2

	hdp := NewHDPClassifier(rng, 42, train.In, 64, train.NumClasses)
	hdpOpt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	hdpStep := NewDPStep(1.0, sigma, 4, rng)

	plain := model.NewClassifier(rand.New(rand.NewSource(12)), model.VGG, train.In, train.NumClasses)
	plainOpt := &nn.SGD{LR: 0.05, Momentum: 0.9}
	plainStep := NewDPStep(1.0, sigma, 4, rng)

	cfg := fl.ClientConfig{BatchSize: 16}
	for e := 0; e < 15; e++ {
		if _, err := fl.TrainEpochs(hdp, hdpOpt, hdpStep, train, cfg, rng); err != nil {
			t.Fatal(err)
		}
		if _, err := fl.TrainEpochs(plain, plainOpt, plainStep, train, cfg, rng); err != nil {
			t.Fatal(err)
		}
	}
	hdpAcc := fl.Evaluate(hdp, test, 32)
	plainAcc := fl.Evaluate(plain, test, 32)
	if hdpAcc <= plainAcc {
		t.Fatalf("HDP (%v) should beat plain DP (%v) at σ=%v", hdpAcc, plainAcc, sigma)
	}
}

func TestAdvRegLearnsAndPenalizes(t *testing.T) {
	train, test := easyData(t, 13)
	ref := test.Clone()
	rng := rand.New(rand.NewSource(14))
	step := NewAdvRegStep(0.5, ref, train.NumClasses, rng)
	net := trainWith(t, step, train, 15)
	if acc := fl.Evaluate(net, test, 32); acc < 0.45 {
		t.Fatalf("AdvReg accuracy = %v, want ≥0.45", acc)
	}
}

func TestAdvRegHighLambdaHurtsFit(t *testing.T) {
	// The privacy/utility trade-off: a crushing λ keeps the model from
	// fitting its own training data, while a mild λ fits fine.
	train, test := easyData(t, 15)
	ref := test.Clone()
	rng := rand.New(rand.NewSource(16))
	low := fl.Evaluate(trainWith(t, NewAdvRegStep(0.1, ref.Clone(), train.NumClasses, rng), train, 15), train, 32)
	high := fl.Evaluate(trainWith(t, NewAdvRegStep(50, ref.Clone(), train.NumClasses, rng), train, 15), train, 32)
	if high >= low-0.05 {
		t.Fatalf("λ=50 train accuracy (%v) should fall well below λ=0.1's (%v)", high, low)
	}
}

func TestMixupMMDLearns(t *testing.T) {
	train, test := easyData(t, 17)
	ref := test.Clone()
	rng := rand.New(rand.NewSource(18))
	step := NewMixupMMDStep(1.0, 0.4, ref, train.NumClasses, rng)
	net := trainWith(t, step, train, 18)
	if acc := fl.Evaluate(net, test, 32); acc < 0.45 {
		t.Fatalf("MixupMMD accuracy = %v, want ≥0.45", acc)
	}
}

func TestMixupMMDPullsOutputsTogether(t *testing.T) {
	// Train one model with µ=0 and one with large µ; the mean softmax
	// distance between member and reference outputs must shrink.
	train, test := easyData(t, 19)
	ref := test.Clone()
	rng := rand.New(rand.NewSource(20))

	dist := func(net nn.Layer) float64 {
		mx, _ := train.Batch(0, train.Len())
		rx, _ := ref.Batch(0, ref.Len())
		ml, _ := net.Forward(mx, false)
		rl, _ := net.Forward(rx, false)
		mp := nn.Softmax(ml)
		rp := nn.Softmax(rl)
		k := mp.Shape[1]
		diff := make([]float64, k)
		for i := 0; i < mp.Shape[0]; i++ {
			for j := 0; j < k; j++ {
				diff[j] += mp.Data[i*k+j]/float64(mp.Shape[0]) - rp.Data[i*k+j]/float64(rp.Shape[0])
			}
		}
		s := 0.0
		for _, d := range diff {
			s += d * d
		}
		return math.Sqrt(s)
	}

	noMMD := trainWith(t, NewMixupMMDStep(0, 0.4, ref.Clone(), train.NumClasses, rng), train, 15)
	withMMD := trainWith(t, NewMixupMMDStep(25, 0.4, ref.Clone(), train.NumClasses, rng), train, 15)
	if d0, d1 := dist(noMMD), dist(withMMD); d1 >= d0 {
		t.Fatalf("MMD penalty should shrink output gap: µ=0 gives %v, µ=25 gives %v", d0, d1)
	}
}

func TestRelaxLossKeepsLossNearTarget(t *testing.T) {
	train, _ := easyData(t, 21)
	rng := rand.New(rand.NewSource(22))
	const omega = 0.8

	netPlain := model.NewClassifier(rand.New(rand.NewSource(23)), model.VGG, train.In, train.NumClasses)
	netRelax := model.NewClassifier(rand.New(rand.NewSource(23)), model.VGG, train.In, train.NumClasses)
	optP := &nn.SGD{LR: 0.05, Momentum: 0.9}
	optR := &nn.SGD{LR: 0.05, Momentum: 0.9}
	relax := NewRelaxLossStep(omega)
	cfg := fl.ClientConfig{BatchSize: 16}
	for e := 0; e < 25; e++ {
		if _, err := fl.TrainEpochs(netPlain, optP, nil, train, cfg, rng); err != nil {
			t.Fatal(err)
		}
		if _, err := fl.TrainEpochs(netRelax, optR, relax, train, cfg, rng); err != nil {
			t.Fatal(err)
		}
	}
	plainLoss := fl.MeanLoss(netPlain, train, 32)
	relaxLoss := fl.MeanLoss(netRelax, train, 32)
	if relaxLoss <= plainLoss {
		t.Fatalf("RelaxLoss train loss (%v) should stay above plain training's (%v)",
			relaxLoss, plainLoss)
	}
	if relaxLoss > 3*omega {
		t.Fatalf("RelaxLoss train loss %v drifted far above target ω=%v", relaxLoss, omega)
	}
}

func TestRelaxLossZeroOmegaIsPlainDescent(t *testing.T) {
	train, _ := easyData(t, 24)
	x, y := train.Batch(0, 16)
	netA := model.NewClassifier(rand.New(rand.NewSource(25)), model.VGG, train.In, train.NumClasses)
	netB := model.NewClassifier(rand.New(rand.NewSource(25)), model.VGG, train.In, train.NumClasses)
	NewRelaxLossStep(0).Step(netA, nn.NewSGD(0.05), x, y)
	fl.PlainStep{}.Step(netB, nn.NewSGD(0.05), x, y)
	pa, pb := nn.FlattenParams(netA.Params()), nn.FlattenParams(netB.Params())
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-12 {
			t.Fatal("ω=0 RelaxLoss should match plain descent while loss > 0")
		}
	}
}
