// Package defenses implements the five baseline defenses the paper
// compares CIP against in RQ1 (Fig. 4, Fig. 5, Fig. 6):
//
//   - DP: DP-SGD-style local differential privacy (per-microbatch gradient
//     clipping plus calibrated Gaussian noise), usable as LDP under a
//     malicious server.
//   - HDP: "Handcrafted DP" (Tramèr & Boneh) — a frozen, non-learned
//     feature frontend with DP training of only the linear head, trading
//     learned features for a much better accuracy/ε curve.
//   - AR: adversarial regularization (Nasr et al.) — a min-max game where
//     an inference network tries to tell members from reference data and
//     the target model is penalized for being distinguishable.
//   - MM: Mixup + MMD (Li et al.) — mixup training plus a maximum-mean-
//     discrepancy penalty pulling the member output distribution toward a
//     reference distribution.
//   - RL: RelaxLoss (Chen et al.) — once the loss falls below a target,
//     alternate gradient ascent and posterior flattening instead of
//     further descent.
//
// Every defense implements fl.TrainStep, so it drops into the same
// federated training loop as the undefended baseline; the experiment
// harness sweeps each defense's privacy knob (ε, λ, µ, ω) exactly as the
// paper does.
package defenses

import (
	"github.com/cip-fl/cip/internal/tensor"
)

// softmaxBackward maps a gradient with respect to softmax probabilities to
// a gradient with respect to logits: dL/dz_i = p_i (g_i − Σ_j p_j g_j).
func softmaxBackward(probs, gradProbs *tensor.Tensor) *tensor.Tensor {
	n, k := probs.Shape[0], probs.Shape[1]
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		p := probs.Data[i*k : (i+1)*k]
		g := gradProbs.Data[i*k : (i+1)*k]
		dot := 0.0
		for j := range p {
			dot += p[j] * g[j]
		}
		o := out.Data[i*k : (i+1)*k]
		for j := range p {
			o[j] = p[j] * (g[j] - dot)
		}
	}
	return out
}
