package defenses

import (
	"math/rand"

	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// MixupMMDStep implements the Mixup + MMD defense (Li et al., CODASPY'21):
// the target model trains on mixup-blended sample pairs, and a maximum-
// mean-discrepancy penalty with weight Mu pulls the softmax output
// distribution on training members toward the distribution on reference
// (non-member) data, erasing the output signature MI attacks exploit.
//
// The MMD uses the linear kernel, for which
// MMD² = ‖mean(p_member) − mean(p_ref)‖² and the gradient with respect to
// each member output is 2·(mean_member − mean_ref)/n. The paper's Gaussian
// kernel adds smoothing but the same pull-together geometry; the linear
// form keeps the penalty exactly differentiable through our stack.
type MixupMMDStep struct {
	// Mu is the MMD penalty weight µ, the paper's privacy knob.
	Mu float64
	// MixAlpha shapes the mixup coefficient distribution (0 disables
	// mixup, leaving pure MMD).
	MixAlpha float64
	// Reference is held-out non-member data grounding the MMD target.
	Reference *datasets.Dataset

	rng *rand.Rand
	k   int
}

// NewMixupMMDStep builds the defense step.
func NewMixupMMDStep(mu, mixAlpha float64, reference *datasets.Dataset,
	numClasses int, rng *rand.Rand) *MixupMMDStep {
	return &MixupMMDStep{
		Mu:        mu,
		MixAlpha:  mixAlpha,
		Reference: reference,
		rng:       rand.New(rand.NewSource(rng.Int63())),
		k:         numClasses,
	}
}

// Step implements fl.TrainStep.
func (s *MixupMMDStep) Step(net nn.Layer, opt nn.Optimizer, x *tensor.Tensor, y []int) float64 {
	n := x.Shape[0]
	ss := x.Size() / n

	// Mixup: pair each sample with a random partner.
	lam := 1.0
	partner := make([]int, n)
	if s.MixAlpha > 0 {
		// Beta(α, α) approximated by a symmetric draw; mixup is robust to
		// the exact shape of the coefficient distribution.
		lam = 0.5 + (s.rng.Float64()-0.5)*s.MixAlpha
		if lam < 0 {
			lam = 0
		} else if lam > 1 {
			lam = 1
		}
		for i := range partner {
			partner[i] = s.rng.Intn(n)
		}
	} else {
		for i := range partner {
			partner[i] = i
		}
	}
	mixed := tensor.New(x.Shape...)
	for i := 0; i < n; i++ {
		a := x.Data[i*ss : (i+1)*ss]
		b := x.Data[partner[i]*ss : (partner[i]+1)*ss]
		m := mixed.Data[i*ss : (i+1)*ss]
		for j := range m {
			m[j] = lam*a[j] + (1-lam)*b[j]
		}
	}

	nn.ZeroGrads(net.Params())
	logits, cache := net.Forward(mixed, true)

	// Mixup loss: λ·CE(y) + (1−λ)·CE(y_partner).
	resA := nn.SoftmaxCrossEntropy(logits, y)
	yb := make([]int, n)
	for i := range yb {
		yb[i] = y[partner[i]]
	}
	resB := nn.SoftmaxCrossEntropy(logits, yb)
	grad := tensor.Add(tensor.Scale(resA.Grad, lam), tensor.Scale(resB.Grad, 1-lam))

	// MMD penalty on the ORIGINAL (unmixed) member outputs vs reference.
	if s.Mu > 0 && s.Reference.Len() > 0 {
		refIdx := make([]int, n)
		for i := range refIdx {
			refIdx[i] = s.rng.Intn(s.Reference.Len())
		}
		ref := s.Reference.Subset(refIdx)
		rx, _ := ref.Batch(0, ref.Len())

		memLogits, memCache := net.Forward(x, true)
		memProbs := nn.Softmax(memLogits)
		refLogits, _ := net.Forward(rx, false)
		refProbs := nn.Softmax(refLogits)

		diff := make([]float64, s.k) // mean_member − mean_ref
		for i := 0; i < n; i++ {
			for j := 0; j < s.k; j++ {
				diff[j] += memProbs.Data[i*s.k+j] - refProbs.Data[i*s.k+j]
			}
		}
		for j := range diff {
			diff[j] /= float64(n)
		}
		// d(µ·MMD²)/d p_i = 2µ·diff/n for every member sample i.
		gradProbs := tensor.New(n, s.k)
		for i := 0; i < n; i++ {
			for j := 0; j < s.k; j++ {
				gradProbs.Data[i*s.k+j] = 2 * s.Mu * diff[j] / float64(n)
			}
		}
		nn.TrainBackward(net, memCache, softmaxBackward(memProbs, gradProbs))
	}

	nn.TrainBackward(net, cache, grad)
	opt.Step(net.Params())
	return lam*resA.Loss + (1-lam)*resB.Loss
}
