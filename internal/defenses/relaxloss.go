package defenses

import (
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// RelaxLossStep implements RelaxLoss (Chen et al., ICLR'22): ordinary
// descent while the batch loss is above the target ω, and once the loss
// falls below ω it alternates (a) gradient ascent, keeping the loss
// hovering around ω instead of collapsing toward zero, and (b) posterior
// flattening, which replaces the one-hot target with a softened label that
// keeps the true-class probability but spreads the rest uniformly.
// A higher ω keeps member losses higher — less separable from
// non-members — at some accuracy cost; ω is the knob the paper sweeps.
type RelaxLossStep struct {
	// Omega is the target loss level ω.
	Omega float64

	step int
}

// NewRelaxLossStep constructs a RelaxLoss step with the given target.
func NewRelaxLossStep(omega float64) *RelaxLossStep {
	return &RelaxLossStep{Omega: omega}
}

// Step implements fl.TrainStep.
func (s *RelaxLossStep) Step(net nn.Layer, opt nn.Optimizer, x *tensor.Tensor, y []int) float64 {
	s.step++
	nn.ZeroGrads(net.Params())
	logits, cache := net.Forward(x, true)
	res := nn.SoftmaxCrossEntropy(logits, y)

	grad := res.Grad
	if res.Loss <= s.Omega {
		if s.step%2 == 1 {
			// Gradient ascent: push the loss back up toward ω.
			grad = tensor.Scale(res.Grad, -1)
		} else {
			// Posterior flattening: CE toward softened targets
			// q_y = p_y, q_{j≠y} = (1−p_y)/(K−1); gradient is p − q.
			n, k := logits.Shape[0], logits.Shape[1]
			grad = tensor.New(n, k)
			inv := 1.0 / float64(n)
			for i := 0; i < n; i++ {
				py := res.Probs.Data[i*k+y[i]]
				rest := (1 - py) / float64(k-1)
				for j := 0; j < k; j++ {
					q := rest
					if j == y[i] {
						q = py
					}
					grad.Data[i*k+j] = (res.Probs.Data[i*k+j] - q) * inv
				}
			}
		}
	}
	nn.TrainBackward(net, cache, grad)
	opt.Step(net.Params())
	return res.Loss
}
