package defenses

import (
	"math"
	"math/rand"

	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/tensor"
)

// DPStep is the DP-SGD training step (Abadi et al.): gradients are
// computed per microbatch, clipped to an L2 bound, summed, perturbed with
// Gaussian noise of standard deviation NoiseMultiplier·Clip, and averaged.
// Run inside each client's local loop this realizes local DP, the variant
// that still defends against a malicious server (§V-A).
type DPStep struct {
	// Clip is the per-microbatch gradient L2 bound C.
	Clip float64
	// NoiseMultiplier is σ; the added noise is N(0, (σC)²) per coordinate.
	NoiseMultiplier float64
	// MicrobatchSize controls the clipping granularity (1 = per-example,
	// the strictest and slowest). Defaults to 1.
	MicrobatchSize int

	rng *rand.Rand
}

// NewDPStep constructs a DP training step with its own noise source.
func NewDPStep(clip, noiseMultiplier float64, microbatch int, rng *rand.Rand) *DPStep {
	if microbatch <= 0 {
		microbatch = 1
	}
	return &DPStep{
		Clip:            clip,
		NoiseMultiplier: noiseMultiplier,
		MicrobatchSize:  microbatch,
		rng:             rand.New(rand.NewSource(rng.Int63())),
	}
}

// Step implements fl.TrainStep.
func (s *DPStep) Step(net nn.Layer, opt nn.Optimizer, x *tensor.Tensor, y []int) float64 {
	params := net.Params()
	n := x.Shape[0]
	ss := x.Size() / n

	accum := make([]float64, nn.NumParams(params))
	var lossSum float64
	micro := 0
	for start := 0; start < n; start += s.MicrobatchSize {
		end := start + s.MicrobatchSize
		if end > n {
			end = n
		}
		mb := tensor.FromSlice(x.Data[start*ss:end*ss], append([]int{end - start}, x.Shape[1:]...)...)
		my := y[start:end]

		nn.ZeroGrads(params)
		logits, cache := net.Forward(mb, true)
		res := nn.SoftmaxCrossEntropy(logits, my)
		nn.TrainBackward(net, cache, res.Grad)
		nn.ClipGradNorm(params, s.Clip)
		addToVector(accum, params)
		lossSum += res.Loss * float64(end-start)
		micro++
	}

	std := s.NoiseMultiplier * s.Clip
	inv := 1.0 / float64(micro)
	off := 0
	for _, p := range params {
		for i := range p.Grad.Data {
			noise := 0.0
			if std > 0 {
				noise = s.rng.NormFloat64() * std
			}
			p.Grad.Data[i] = (accum[off+i] + noise) * inv
		}
		off += p.Grad.Size()
	}
	opt.Step(params)
	return lossSum / float64(n)
}

func addToVector(dst []float64, params []*nn.Param) {
	off := 0
	for _, p := range params {
		for i, g := range p.Grad.Data {
			dst[off+i] += g
		}
		off += p.Grad.Size()
	}
}

// NoiseMultiplierFor calibrates the DP-SGD noise multiplier σ for a total
// (ε, δ) budget spent over the given number of steps, using the Gaussian
// mechanism σ_step = √(2·ln(1.25/δ))/ε_step combined with advanced
// composition ε_step ≈ ε/√(2·T·ln(1/δ)). This is a standard, slightly
// conservative approximation of the moments accountant: smaller ε or more
// steps yields more noise, which is the behavior the paper's ε sweeps
// exercise (Fig. 5, Fig. 6).
func NoiseMultiplierFor(eps, delta float64, steps int) float64 {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0
	}
	if steps < 1 {
		steps = 1
	}
	epsStep := eps / math.Sqrt(2*float64(steps)*math.Log(1/delta))
	return math.Sqrt(2*math.Log(1.25/delta)) / epsStep
}

// EpsilonFor inverts NoiseMultiplierFor: the total ε spent by running the
// Gaussian mechanism with noise multiplier σ for the given number of
// steps at the given δ. NoiseMultiplierFor and EpsilonFor are exact
// inverses, which the accounting tests rely on.
func EpsilonFor(sigma, delta float64, steps int) float64 {
	if sigma <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	if steps < 1 {
		steps = 1
	}
	epsStep := math.Sqrt(2*math.Log(1.25/delta)) / sigma
	return epsStep * math.Sqrt(2*float64(steps)*math.Log(1/delta))
}
