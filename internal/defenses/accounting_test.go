package defenses

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAccountingRoundTrip: NoiseMultiplierFor and EpsilonFor are exact
// inverses across the whole budget range.
func TestAccountingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eps := math.Exp(r.Float64()*8 - 2) // ε in ≈[0.14, 400]
		delta := math.Pow(10, -3-4*r.Float64())
		steps := 1 + r.Intn(5000)
		sigma := NoiseMultiplierFor(eps, delta, steps)
		back := EpsilonFor(sigma, delta, steps)
		return math.Abs(back-eps) < 1e-9*eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonForMonotonicity(t *testing.T) {
	// Less noise ⇒ more ε; more steps ⇒ more ε.
	if !(EpsilonFor(0.5, 1e-5, 100) > EpsilonFor(2.0, 1e-5, 100)) {
		t.Fatal("ε should grow as σ shrinks")
	}
	if !(EpsilonFor(1.0, 1e-5, 1000) > EpsilonFor(1.0, 1e-5, 100)) {
		t.Fatal("ε should grow with steps")
	}
}

func TestEpsilonForDegenerate(t *testing.T) {
	if !math.IsInf(EpsilonFor(0, 1e-5, 10), 1) {
		t.Fatal("σ=0 should give infinite ε")
	}
	if !math.IsInf(EpsilonFor(1, 0, 10), 1) {
		t.Fatal("δ=0 should give infinite ε")
	}
}
