// Package telemetry is the repo's stdlib-only observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms) that
// exposes both Prometheus text exposition and expvar-style JSON over
// HTTP, plus a leveled structured logger.
//
// Two design rules keep the hot paths honest:
//
//  1. Everything is nil-safe. A nil *Registry hands out nil metrics, and
//     every method on a nil metric is a no-op that performs zero heap
//     allocations, so library code can be instrumented unconditionally
//     and pays nothing when telemetry is off (see the no-op benchmark).
//  2. Updates are lock-free. Counters and histogram buckets are atomic
//     adds; gauges and histogram sums are CAS loops over float64 bits.
//     The registry mutex guards only metric creation, never updates.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the metric families a Registry can hold.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry owns a namespace of metrics. The zero value is not useful;
// create one with NewRegistry. A nil *Registry is valid everywhere and
// produces nil (no-op) metrics.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is the common view exposition needs of every family.
type metric interface {
	metricName() string
	metricHelp() string
	kind() Kind
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register adds m under its name, or returns the existing metric of the
// same name. Re-registering a name as a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.metrics[m.metricName()]; ok {
		if prev.kind() != m.kind() {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)",
				m.metricName(), m.kind(), prev.kind()))
		}
		return prev
	}
	r.metrics[m.metricName()] = m
	return m
}

// snapshot returns the metrics sorted by name for deterministic exposition.
func (r *Registry) snapshot() []metric {
	r.mu.Lock()
	out := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].metricName() < out[j].metricName() })
	return out
}

// Counter registers (or fetches) a monotonically increasing counter.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&Counter{name: name, help: help}).(*Counter)
}

// Gauge registers (or fetches) a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&Gauge{name: name, help: help}).(*Gauge)
}

// Histogram registers (or fetches) a histogram over the given bucket
// upper bounds (ascending; a +Inf bucket is implicit). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending at %d", name, i))
		}
	}
	bounds := append([]float64(nil), buckets...)
	h := &Histogram{name: name, help: help, bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1)}
	return r.register(h).(*Histogram)
}

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver and safe for concurrent use.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) kind() Kind         { return KindCounter }

// Gauge is a float64 metric that can go up and down. All methods are safe
// on a nil receiver and safe for concurrent use.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) kind() Kind         { return KindGauge }

// Histogram counts observations into a fixed bucket layout. All methods
// are safe on a nil receiver and safe for concurrent use.
type Histogram struct {
	name, help string
	bounds     []float64       // ascending upper bounds; +Inf implicit
	counts     []atomic.Uint64 // len(bounds)+1, non-cumulative
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow bucket. Nil receiver returns nil.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) kind() Kind         { return KindHistogram }

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor — the layout used for the duration histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bucket bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets needs width > 0, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets is the default layout for wall-time histograms: 1ms to
// ~8.7min in powers of two.
func DurationBuckets() []float64 { return ExpBuckets(0.001, 2, 20) }
