package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// formatFloat renders a float the way both exposition formats need:
// shortest round-trip representation, +Inf spelled per format by the
// caller.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			m.metricName(), m.metricHelp(), m.metricName(), m.kind()); err != nil {
			return err
		}
		var err error
		switch v := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s %d\n", v.name, v.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s %s\n", v.name, formatFloat(v.Value()))
		case *Histogram:
			cum := uint64(0)
			counts := v.BucketCounts()
			for i, b := range v.bounds {
				cum += counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					v.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				v.name, cum, v.name, formatFloat(v.Sum()), v.name, v.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteExpvar writes every registered metric as one JSON object in the
// expvar /debug/vars style: counters and gauges as bare numbers,
// histograms as {"count":…,"sum":…,"buckets":{"<le>":…}} with
// non-cumulative buckets keyed by upper bound ("+Inf" for the overflow).
// Sorted by metric name; a nil registry writes "{}".
func (r *Registry) WriteExpvar(w io.Writer) error {
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	if r != nil {
		for i, m := range r.snapshot() {
			sep := ",\n"
			if i == 0 {
				sep = "\n"
			}
			var err error
			switch v := m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%q: %d", sep, v.name, v.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%q: %s", sep, v.name, jsonFloat(v.Value()))
			case *Histogram:
				if _, err = fmt.Fprintf(w, "%s%q: {\"count\": %d, \"sum\": %s, \"buckets\": {",
					sep, v.name, v.Count(), jsonFloat(v.Sum())); err != nil {
					return err
				}
				counts := v.BucketCounts()
				for j, b := range v.bounds {
					if _, err = fmt.Fprintf(w, "%q: %d, ", formatFloat(b), counts[j]); err != nil {
						return err
					}
				}
				_, err = fmt.Fprintf(w, "\"+Inf\": %d}}", counts[len(counts)-1])
			}
			if err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// jsonFloat renders a float as valid JSON (NaN/Inf are not representable
// in JSON; they become null, which keeps the document parseable).
func jsonFloat(v float64) string {
	if v != v || v > 1.7e308 || v < -1.7e308 {
		return "null"
	}
	return formatFloat(v)
}

// Handler serves the Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck
	})
}

// ExpvarHandler serves the expvar-style JSON document.
func (r *Registry) ExpvarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteExpvar(w) //nolint:errcheck
	})
}

// NewMux builds the debug mux every instrumented binary serves:
// /metrics (Prometheus), /debug/vars (expvar JSON), and the
// net/http/pprof suite under /debug/pprof/.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", r.ExpvarHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry endpoint on addr (":0" picks a free port)
// and returns immediately; the HTTP server runs on its own goroutine
// until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(r)}
	go srv.Serve(ln) //nolint:errcheck
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
