// Package telemetry_test holds the end-to-end acceptance test for the
// observability layer: a real loopback federation with telemetry enabled
// must expose non-zero round, drop, and training-loss metrics over both
// the Prometheus and expvar endpoints. It lives in an external test
// package because it imports core/fl/transport, which import telemetry.
package telemetry_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cip-fl/cip/internal/core"
	"github.com/cip-fl/cip/internal/datasets"
	"github.com/cip-fl/cip/internal/fl"
	"github.com/cip-fl/cip/internal/fl/transport"
	"github.com/cip-fl/cip/internal/model"
	"github.com/cip-fl/cip/internal/nn"
	"github.com/cip-fl/cip/internal/telemetry"
)

// poisonClient is a misbehaving federation member: its update has the
// right length but carries NaN, so the coordinator must reject it
// (FailInvalid) and count it as dropped.
type poisonClient struct {
	id      int
	wantLen int
}

func (p *poisonClient) ID() int         { return p.id }
func (p *poisonClient) NumSamples() int { return 10 }
func (p *poisonClient) TrainLocal(round int, global []float64) (fl.Update, error) {
	params := make([]float64, p.wantLen)
	for i := range params {
		params[i] = math.NaN()
	}
	return fl.Update{ClientID: p.id, Params: params, NumSamples: 10}, nil
}

func TestEndToEndFederationExposesMetrics(t *testing.T) {
	const (
		good   = 2
		total  = 3 // 2 honest CIP clients + 1 poison
		rounds = 2
	)

	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	train, _, err := datasets.SyntheticTabular(datasets.TabularConfig{
		Classes: 3, Train: 60, Test: 30, Features: 16, Sharpness: 0.4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := datasets.PartitionIID(train, good, rand.New(rand.NewSource(1)))

	cfg := core.TrainConfig{
		Alpha:     0.9,
		LambdaT:   1e-6,
		LambdaM:   0.3,
		BatchSize: 16,
		LR:        func(int) float64 { return 0.05 },
		Momentum:  0.9,
		Metrics:   core.NewMetrics(reg),
	}
	clients := make([]fl.Client, 0, total)
	var initial []float64
	for i := 0; i < good; i++ {
		dual := core.NewDualChannelModel(rand.New(rand.NewSource(7)), model.MLP,
			train.In, train.NumClasses)
		if initial == nil {
			initial = nn.FlattenParams(dual.Params())
		}
		clients = append(clients, core.NewClient(i, dual, shards[i], cfg,
			core.BlendSeed(5, i), rand.New(rand.NewSource(int64(50+i)))))
	}
	clients = append(clients, &poisonClient{id: good, wantLen: len(initial)})

	coord := &transport.Coordinator{
		NumClients:   total,
		Rounds:       rounds,
		Initial:      initial,
		MinQuorum:    good,
		RoundTimeout: 30 * time.Second,
		Metrics:      transport.NewMetrics(reg),
		RoundMetrics: fl.NewMetrics(reg),
	}

	addrCh := make(chan string, 1)
	var (
		srvErr error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = coord.ListenAndRun("127.0.0.1:0", func(a string) { addrCh <- a })
	}()
	addr := <-addrCh

	var cwg sync.WaitGroup
	for _, c := range clients {
		cwg.Add(1)
		go func(c fl.Client) {
			defer cwg.Done()
			// The poison client is dropped mid-federation, so its
			// connection errors out; honest clients must not.
			err := transport.RunClient(addr, c)
			if err != nil && c.ID() != good {
				t.Errorf("honest client %d: %v", c.ID(), err)
			}
		}(c)
	}
	cwg.Wait()
	wg.Wait()
	if srvErr != nil {
		t.Fatal(srvErr)
	}

	// --- Prometheus endpoint ---
	prom := httpGet(t, fmt.Sprintf("http://%s/metrics", srv.Addr()))
	for _, name := range []string{"fl_round_duration", "fl_clients_dropped_total", "train_step2_loss"} {
		if !strings.Contains(prom, name) {
			t.Fatalf("/metrics missing %s:\n%s", name, prom)
		}
	}
	if !promValueNonZero(prom, "fl_round_duration_seconds_count") {
		t.Fatalf("fl_round_duration_seconds_count is zero:\n%s", prom)
	}
	if !promValueNonZero(prom, "fl_clients_dropped_total") {
		t.Fatalf("fl_clients_dropped_total is zero:\n%s", prom)
	}
	if !promValueNonZero(prom, "train_step2_loss") {
		t.Fatalf("train_step2_loss is zero:\n%s", prom)
	}

	// --- expvar endpoint ---
	body := httpGet(t, fmt.Sprintf("http://%s/debug/vars", srv.Addr()))
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	hist, ok := vars["fl_round_duration_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("fl_round_duration_seconds missing or not a histogram object: %v", vars)
	}
	if n, _ := hist["count"].(float64); n < rounds {
		t.Fatalf("fl_round_duration_seconds count = %v, want ≥ %d", hist["count"], rounds)
	}
	if dropped, _ := vars["fl_clients_dropped_total"].(float64); dropped < 1 {
		t.Fatalf("fl_clients_dropped_total = %v, want ≥ 1", vars["fl_clients_dropped_total"])
	}
	if loss, _ := vars["train_step2_loss"].(float64); loss <= 0 {
		t.Fatalf("train_step2_loss = %v, want > 0", vars["train_step2_loss"])
	}

	// The wire layer saw all three connections and some decode traffic.
	if conns, _ := vars["transport_conns_accepted_total"].(float64); conns != total {
		t.Fatalf("transport_conns_accepted_total = %v, want %d", conns, total)
	}
	if decoded, _ := vars["transport_decode_bytes_total"].(float64); decoded <= 0 {
		t.Fatalf("transport_decode_bytes_total = %v, want > 0", decoded)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// promValueNonZero scans the exposition text for `name value` sample
// lines (skipping # comments and labeled series) and reports whether the
// metric exists with a non-zero value.
func promValueNonZero(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			return fields[1] != "0" && fields[1] != "0.0"
		}
	}
	return false
}
