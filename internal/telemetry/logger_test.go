package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
}

func TestLoggerFormatAndLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.now = fixedClock

	l.Debug("dropped")
	l.Info("round complete", "round", 3, "clients", 2)
	l.Warn("spaced value", "msg", "has spaces")

	got := b.String()
	want := "2024-03-01T12:00:00Z INFO round complete round=3 clients=2\n" +
		"2024-03-01T12:00:00Z WARN spaced value msg=\"has spaces\"\n"
	if got != want {
		t.Fatalf("log output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLoggerWithFieldsAndMissingValue(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug)
	l.now = fixedClock
	child := l.With("client", 7)
	child.Error("decode failed", "orphan")

	want := "2024-03-01T12:00:00Z ERROR decode failed client=7 orphan=(MISSING)\n"
	if got := b.String(); got != want {
		t.Fatalf("log output = %q, want %q", got, want)
	}
}

func TestLoggerNilIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	l.SetLevel(LevelError)
	if l.With("k", "v") != nil {
		t.Fatal("With on nil logger must stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
}

func TestLoggerSetLevel(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelError)
	l.now = fixedClock
	l.Info("hidden")
	l.SetLevel(LevelDebug)
	l.Debug("visible")
	if got := b.String(); !strings.Contains(got, "visible") || strings.Contains(got, "hidden") {
		t.Fatalf("SetLevel not honored: %q", got)
	}
}

func TestLoggerConcurrentWholeLines(t *testing.T) {
	var b lockedBuilder
	l := NewLogger(&b, LevelInfo)
	l.now = fixedClock
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("tick", "worker", id)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "2024-03-01T12:00:00Z INFO tick worker=") {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"debug", LevelDebug, true},
		{"INFO", LevelInfo, true},
		{"", LevelInfo, true},
		{"warning", LevelWarn, true},
		{"error", LevelError, true},
		{"verbose", LevelInfo, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// lockedBuilder lets concurrent logger goroutines share one buffer; the
// logger serializes writes itself, but the test's final read needs a
// consistent view.
type lockedBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuilder) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuilder) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}
