package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	// Run with -race: 8 goroutines hammering one counter must lose no
	// increments and trip no race reports.
	reg := NewRegistry()
	c := reg.Counter("test_total", "test counter")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeConcurrentAdds(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge", "test gauge")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*perWorker)*0.5; got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_hist", "test histogram", []float64{1, 2, 4})
	// Prometheus buckets are upper-inclusive: le="1" contains v == 1.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 4.1, 100} {
		h.Observe(v)
	}
	want := []uint64{
		2, // ≤ 1: 0.5, 1.0
		2, // (1, 2]: 1.5, 2.0
		2, // (2, 4]: 3.9, 4.0
		2, // +Inf: 4.1, 100
	}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); sum < 117 || sum > 118 {
		t.Fatalf("sum = %v, want 117", sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_conc_hist", "h", []float64{0.5})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	if h.Sum() != workers*perWorker {
		t.Fatalf("sum = %v, want %d", h.Sum(), workers*perWorker)
	}
}

func TestRegistryReregisterSameKindReturnsSameMetric(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "first")
	b := reg.Counter("dup_total", "second")
	if a != b {
		t.Fatal("re-registering the same counter name must return the same metric")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliases must share state")
	}
}

func TestRegistryReregisterKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clash", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("clash", "g")
}

func TestPrometheusGoldenOutput(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_requests_total", "Total requests.").Add(7)
	reg.Gauge("a_temperature", "Current temperature.").Set(36.5)
	h := reg.Histogram("c_latency_seconds", "Request latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP a_temperature Current temperature.
# TYPE a_temperature gauge
a_temperature 36.5
# HELP b_requests_total Total requests.
# TYPE b_requests_total counter
b_requests_total 7
# HELP c_latency_seconds Request latency.
# TYPE c_latency_seconds histogram
c_latency_seconds_bucket{le="0.1"} 1
c_latency_seconds_bucket{le="0.5"} 2
c_latency_seconds_bucket{le="+Inf"} 3
c_latency_seconds_sum 2.35
c_latency_seconds_count 3
`
	if got := b.String(); got != golden {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestExpvarGoldenOutput(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_requests_total", "Total requests.").Add(7)
	reg.Gauge("a_temperature", "Current temperature.").Set(36.5)
	h := reg.Histogram("c_latency_seconds", "Request latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WriteExpvar(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `{
"a_temperature": 36.5,
"b_requests_total": 7,
"c_latency_seconds": {"count": 3, "sum": 2.35, "buckets": {"0.1": 1, "0.5": 1, "+Inf": 1}}
}
`
	if got := b.String(); got != golden {
		t.Fatalf("expvar exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestNilRegistryAndMetricsAreSafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("y", "")
	h := reg.Histogram("z", "", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("nil registry must write no Prometheus output")
	}
	b.Reset()
	if err := reg.WriteExpvar(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "{\n}\n" {
		t.Fatalf("nil registry expvar = %q, want empty object", got)
	}
}

// BenchmarkNoopMetrics is the acceptance gate for the off path: with
// telemetry disabled (nil registry → nil metrics), instrumented library
// code must allocate nothing.
func BenchmarkNoopMetrics(b *testing.B) {
	var reg *Registry
	c := reg.Counter("noop_total", "")
	g := reg.Gauge("noop_gauge", "")
	h := reg.Histogram("noop_hist", "", []float64{1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(2)
		g.Set(float64(i))
		g.Add(1)
		h.Observe(float64(i))
	}
}

func TestNoopMetricsZeroAllocs(t *testing.T) {
	var reg *Registry
	c := reg.Counter("noop_total", "")
	g := reg.Gauge("noop_gauge", "")
	h := reg.Histogram("noop_hist", "", []float64{1, 2})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("no-op metric path allocated %v times per op, want 0", allocs)
	}
}
